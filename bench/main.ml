(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per paper artefact
   (Table I and Figs. 8-13), timing the scheduling kernel each experiment
   exercises on a small fixed workload.

   Part 2 — the full reproduction harness: regenerates every table and
   figure of the evaluation at the configured scale (ALADDIN_SCALE,
   default 0.05 here so a bench run stays in minutes; use the
   experiments_main binary for larger scales). *)

open Bechamel

let bench_workload =
  lazy (Alibaba.generate { (Alibaba.scaled 0.005) with Alibaba.seed = 42 })

let machines_for w = max 8 (Workload.n_containers w / 10)

let replay_test ~name sched_of =
  Test.make ~name
    (Staged.stage (fun () ->
         let w = Lazy.force bench_workload in
         ignore
           (Replay.run_workload (sched_of ()) w ~n_machines:(machines_for w))))

(* Table I: the common substrate every scheduler shares — building the
   tiered flow network over a batch. *)
let test_table1 =
  Test.make ~name:"table1/flow-graph-build"
    (Staged.stage (fun () ->
         let w = Lazy.force bench_workload in
         let cluster =
           Cluster.create
             (Workload.topology w ~n_machines:(machines_for w))
             ~constraints:(Workload.constraint_set w)
         in
         ignore (Aladdin.Flow_graph.build cluster w.Workload.containers)))

(* Fig. 8: workload generation and characterisation. *)
let test_fig8 =
  Test.make ~name:"fig8/trace-generate"
    (Staged.stage (fun () ->
         ignore
           (Workload_stats.compute
              (Alibaba.generate
                 { (Alibaba.scaled 0.002) with Alibaba.seed = 7 }))))

(* Fig. 9: placement quality — one bench per scheduler family. *)
let test_fig9_aladdin =
  replay_test ~name:"fig9/aladdin" (fun () -> Sched_zoo.aladdin ~base:16 ())

let test_fig9_firmament =
  replay_test ~name:"fig9/firmament-quincy" (fun () ->
      Sched_zoo.firmament Cost_model.Quincy ~reschd:8)

let test_fig9_medea =
  replay_test ~name:"fig9/medea" (fun () -> Sched_zoo.medea ~a:1. ~b:1. ~c:0.)

let test_fig9_gokube =
  replay_test ~name:"fig9/gokube" (fun () -> Sched_zoo.gokube ())

(* Fig. 10/11: the capacity-planning bisection. *)
let test_fig10 =
  Test.make ~name:"fig10/capacity-plan-aladdin"
    (Staged.stage (fun () ->
         let w = Lazy.force bench_workload in
         ignore (Capacity_planner.plan (Sched_zoo.aladdin ()) w)))

(* Fig. 12: the three Aladdin policies (the IL/DL latency ablation). *)
let test_fig12_plain =
  replay_test ~name:"fig12/aladdin-plain" (fun () ->
      Sched_zoo.aladdin ~il:false ~dl:false ())

let test_fig12_il =
  replay_test ~name:"fig12/aladdin-il" (fun () ->
      Sched_zoo.aladdin ~il:true ~dl:false ())

let test_fig12_il_dl =
  replay_test ~name:"fig12/aladdin-il-dl" (fun () -> Sched_zoo.aladdin ())

(* Fig. 13: the worst arrival characteristic (CSA). *)
let test_fig13 =
  Test.make ~name:"fig13/aladdin-csa"
    (Staged.stage (fun () ->
         let w = Lazy.force bench_workload in
         let w = Arrival.apply Arrival.Small_anti_affinity_first w in
         ignore
           (Replay.run_workload (Sched_zoo.aladdin ()) w
              ~n_machines:(machines_for w))))

let tests =
  Test.make_grouped ~name:"aladdin-bench"
    [
      test_table1;
      test_fig8;
      test_fig9_aladdin;
      test_fig9_firmament;
      test_fig9_medea;
      test_fig9_gokube;
      test_fig10;
      test_fig12_plain;
      test_fig12_il;
      test_fig12_il_dl;
      test_fig13;
    ]

let run_microbenches () =
  Format.printf "== Bechamel micro-benchmarks ==@.";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        let est =
          match Analyze.OLS.estimates v with
          | Some (e :: _) -> e
          | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e9 then Format.printf "%-45s %10.3f s/run@." name (ns /. 1e9)
      else if ns >= 1e6 then
        Format.printf "%-45s %10.3f ms/run@." name (ns /. 1e6)
      else Format.printf "%-45s %10.0f ns/run@." name ns)
    rows;
  Format.printf "@."

(* Part 3 — the incremental-scheduling bench: replay a multi-batch
   workload twice, from scratch and warm-started, and record per-batch
   latency for (a) the scalar min-cost solver path (projection + SSP) and
   (b) the full Aladdin scheduler. Results go to BENCH_sched.json. *)

let getenv_int = Engine.Env.int

(* The whole ALADDIN_* stack configuration — fault harness, deadline
   ladder, solver pin, cells counts — now comes from the engine's one
   parser; only the bench-local ALADDIN_BENCH_* tier knobs stay here.
   ALADDIN_FAULT_RATE > 0 runs the sched bench under the fault harness;
   ALADDIN_DEADLINE_MS > 0 runs it deadline-bounded (registry ladder on
   the solver columns, scheduler ladder + auditor on the scheduler
   columns); the recovery/deadline/audit counters land in
   BENCH_sched.json's obs section. *)
let env_spec = Engine.Stack.of_env ()
let fault_rate = env_spec.Engine.Stack.fault_rate
let deadline_ms = env_spec.Engine.Stack.deadline_ms
let ladder_active = deadline_ms > 0.

(* Force-link the sharded cells solver: its typed-error counters
   (cells.solver.errors) must register so the schema check can assert
   their presence even though the bench drives it via Cells_scheduler. *)
let _ = Aladdin.Cells_solver.solve

let install_faults () = Engine.Stack.install_faults env_spec

(* Re-roll cost/capacity on the forward arcs of a projection (flows are
   still zero right after the build, so capacities may shrink freely). *)
let perturb_graph g =
  if Fault.active () then
    for a = 0 to Flownet.Graph.n_arcs g - 1 do
      if Flownet.Graph.is_forward a then begin
        let cost, cap =
          Fault.perturb_arc ~cost:(Flownet.Graph.cost g a)
            ~capacity:(Flownet.Graph.capacity g a)
        in
        if cost <> Flownet.Graph.cost g a then Flownet.Graph.set_cost g a cost;
        if cap <> Flownet.Graph.capacity g a then
          Flownet.Graph.set_capacity g a cap
      end
    done

let ms_of t0 t1 = Int64.to_float (Int64.sub t1 t0) /. 1e6

let json_float_array a =
  "["
  ^ String.concat "," (List.map (Printf.sprintf "%.4f") (Array.to_list a))
  ^ "]"

let sum = Array.fold_left ( +. ) 0.

(* The bench runs at named scale tiers. "current" is the historical default
   config; "full" is the paper's scale (10k machines, 100k containers over
   1000 batches) — the headline proving ground. Both run by default and both
   land in BENCH_sched.json under "tiers"; setting any legacy
   ALADDIN_BENCH_MACHINES/BATCHES/BATCH_SIZE variable collapses the run to
   a single "custom" tier with those values. *)
let tier_plan () =
  let custom =
    Sys.getenv_opt "ALADDIN_BENCH_MACHINES" <> None
    || Sys.getenv_opt "ALADDIN_BENCH_BATCHES" <> None
    || Sys.getenv_opt "ALADDIN_BENCH_BATCH_SIZE" <> None
  in
  let tier_of_name = function
    | "current" -> Some ("current", 1000, 50, 48)
    | "full" -> Some ("full", 10_000, 1000, 100)
    | _ -> None
  in
  if custom then
    [
      ( "custom",
        getenv_int "ALADDIN_BENCH_MACHINES" 1000,
        getenv_int "ALADDIN_BENCH_BATCHES" 50,
        getenv_int "ALADDIN_BENCH_BATCH_SIZE" 48 );
    ]
  else
    match Sys.getenv_opt "ALADDIN_BENCH_TIERS" with
    | Some s ->
        let names = String.split_on_char ',' s |> List.map String.trim in
        let tiers = List.filter_map tier_of_name names in
        if tiers = [] then [ ("current", 1000, 50, 48) ] else tiers
    | None -> [ ("current", 1000, 50, 48); ("full", 10_000, 1000, 100) ]

(* Formatted JSON pieces one tier run produces; the last tier's also fill
   the legacy top-level sections. *)
type tier_out = {
  t_config : string;
  t_per_batch : string;
  t_summary : string;
  t_gc : string;
  t_placed : string;
  t_cells : string;
}

let run_sched_tier ~tier ~machines ~batches ~per_batch ~seed ~backend
    ~backend_name ~caps =
  Format.printf
    "== Incremental scheduling bench [%s] (%d machines, %d batches of ~%d, \
     solver %s) ==@."
    tier machines batches per_batch backend_name;
  let factor = float_of_int (batches * per_batch) /. 100_000. in
  let w =
    Alibaba.generate { (Alibaba.scaled factor) with Alibaba.seed = seed }
  in
  let containers = w.Workload.containers in
  let n = Array.length containers in
  let per = max 1 ((n + batches - 1) / batches) in
  let waves =
    let rec go i acc =
      if i >= n then List.rev acc
      else
        let len = min per (n - i) in
        go (i + len) (Array.sub containers i len :: acc)
    in
    go 0 []
  in
  let n_waves = List.length waves in
  let mk_cluster () =
    Cluster.create
      (Workload.topology w ~n_machines:machines)
      ~constraints:(Workload.constraint_set w)
  in
  let cl_cold = mk_cluster () in
  let cl_warm = mk_cluster () in
  (* Engine-built stacks: under a deadline they become the first rung of
     the degradation ladder, with the post-batch auditor outermost — the
     bench then measures the whole graceful-degradation path. *)
  let build kind =
    (Engine.Stack.build { env_spec with Engine.Stack.kind }).Engine.Stack
      .scheduler
  in
  let sched_cold = build Engine.Stack.Aladdin in
  let sched_warm = build Engine.Stack.Aladdin_warm in
  (* heterogeneous machine prices (a Firmament-style cost model): the
     min-cost solve is then cost-directed rather than a pure feasibility
     max-flow, as in the paper's solver-overhead comparison *)
  let machine_cost m = 1 + (Machine.id m * 7919 mod 1024) in
  let cache = Aladdin.Flow_graph.projection_cache ~machine_cost () in
  let warm = Aladdin.Flow_graph.projection_warm cache in
  Obs.reset ();
  (* Word/compaction deltas around each solve accumulate here; the warm
     column is the zero-allocation claim's witness (a small constant per
     solve is the result boxing plus the sampler's own floor). *)
  let gc_cold = Obs.gc_scope "gc.solver_cold" in
  let gc_warm = Obs.gc_scope "gc.solver_warm" in
  install_faults ();
  if fault_rate > 0. then
    Format.printf "fault injection active (rate %.3f, seed %d)@." fault_rate
      env_spec.Engine.Stack.fault_seed;
  let ladder_rungs = Flownet.Registry.rungs_of_env () in
  if ladder_active then
    Format.printf "deadline active (%.3f ms per solve, ladder %s)@."
      deadline_ms
      (String.concat " -> " ladder_rungs);
  let solver_cold = Array.make n_waves 0. in
  let solver_warm = Array.make n_waves 0. in
  let sched_cold_ms = Array.make n_waves 0. in
  let sched_warm_ms = Array.make n_waves 0. in
  let placed_cold = ref 0 and placed_warm = ref 0 in
  List.iteri
    (fun i wave ->
      (* both solver paths see the same pre-batch cluster state; capping
         the flow at the batch demand lets either solver stop as soon as
         everything is placed instead of proving no path remains *)
      let fg = Aladdin.Flow_graph.build cl_warm wave in
      let demand =
        Array.fold_left
          (fun acc (c : Container.t) ->
            acc + Resource.get c.Container.demand Resource.cpu_dim)
          0 wave
      in
      let t0 = Obs.now_ns () in
      let g, src, dst = Aladdin.Flow_graph.scalar_projection ~machine_cost fg in
      perturb_graph g;
      let st_cold =
        Obs.with_gc gc_cold (fun () ->
            if ladder_active then
              fst
                (Flownet.Registry.solve_ladder ~rungs:ladder_rungs ~deadline_ms
                   ~max_flow:demand g ~src ~dst)
            else Flownet.Registry.solve backend ~max_flow:demand g ~src ~dst)
      in
      let t1 = Obs.now_ns () in
      let gi, si, ti =
        Aladdin.Flow_graph.scalar_projection_incremental cache fg
      in
      (* Non-warm-start backends just solve the incremental projection
         cold — the warm column then measures the projection reuse alone. *)
      let st_warm =
        Obs.with_gc gc_warm (fun () ->
            if ladder_active then
              fst
                (Flownet.Registry.solve_ladder ~rungs:ladder_rungs ~deadline_ms
                   ~warm ~max_flow:demand gi ~src:si ~dst:ti)
            else
              Flownet.Registry.solve backend ~warm ~max_flow:demand gi ~src:si
                ~dst:ti)
      in
      let t2 = Obs.now_ns () in
      (match (st_cold, st_warm) with
      | Ok cold, Ok warm ->
          (* Perturbed arcs make the two solves incomparable — the
             equivalence gate only holds on the unfaulted bench. Backends
             that ignore the max_flow cap still find equal flows (both
             columns solve equivalent networks); cost equality additionally
             needs a min-cost backend, since pure max-flow solvers route
             through whichever paths their arc order visits first. *)
          (* Under the ladder the two columns may win at different rungs
             (different algorithms, different tie-breaking), so the
             equivalence gate only holds on the unbounded bench. *)
          if not (Fault.active () || ladder_active) then begin
            if cold.Flownet.Mincost.flow <> warm.Flownet.Mincost.flow then
              failwith "sched bench: incremental solver flow diverged";
            if
              caps.Flownet.Solver_intf.min_cost
              && cold.Flownet.Mincost.cost <> warm.Flownet.Mincost.cost
            then failwith "sched bench: incremental solver cost diverged"
          end
      | Error e, _ | _, Error e ->
          if not (Fault.active () || ladder_active) then
            failwith
              ("sched bench: solver failed: " ^ Flownet.Error.to_string e));
      solver_cold.(i) <- ms_of t0 t1;
      solver_warm.(i) <- ms_of t1 t2;
      let t3 = Obs.now_ns () in
      let out_cold = sched_cold.Scheduler.schedule cl_cold wave in
      let t4 = Obs.now_ns () in
      let out_warm = sched_warm.Scheduler.schedule cl_warm wave in
      let t5 = Obs.now_ns () in
      placed_cold := !placed_cold + List.length out_cold.Scheduler.placed;
      placed_warm := !placed_warm + List.length out_warm.Scheduler.placed;
      sched_cold_ms.(i) <- ms_of t3 t4;
      sched_warm_ms.(i) <- ms_of t4 t5)
    waves;
  (* A short Firmament replay so the baseline's firmament.* counters and
     histograms show up in the obs section alongside the Aladdin ones. *)
  let cl_firm = mk_cluster () in
  let firm = Sched_zoo.firmament Cost_model.Quincy ~reschd:8 in
  List.iter
    (fun wave -> ignore (firm.Scheduler.schedule cl_firm wave))
    (match waves with a :: b :: _ -> [ a; b ] | rest -> rest);
  (* Exercise the trace parser (through the fault harness's line
     corruption when active) so trace.parse_errors is registered and
     reported alongside the solver/scheduler recovery counters. *)
  (match
     Trace_io.to_string w |> String.split_on_char '\n'
     |> List.map Fault.corrupt_line |> String.concat "\n"
     |> Trace_io.of_string
   with
  | Ok _ | Error _ -> ());
  let solver_speedup = sum solver_cold /. Float.max 1e-9 (sum solver_warm) in
  let sched_speedup =
    sum sched_cold_ms /. Float.max 1e-9 (sum sched_warm_ms)
  in
  Format.printf
    "solver: from-scratch %.2f ms, warm %.2f ms over %d batches (%.2fx)@."
    (sum solver_cold) (sum solver_warm) n_waves solver_speedup;
  Format.printf
    "scheduler: from-scratch %.2f ms, warm %.2f ms over %d batches (%.2fx)@."
    (sum sched_cold_ms) (sum sched_warm_ms) n_waves sched_speedup;
  let gcount name = Obs.count (Obs.counter name) in
  let warm_words_per_solve =
    float_of_int (gcount "gc.solver_warm.minor_words")
    /. float_of_int (max 1 n_waves)
  in
  Format.printf
    "gc: warm solve %.0f minor words/solve, cold %.0f; placed %d cold / %d \
     warm of %d@."
    warm_words_per_solve
    (float_of_int (gcount "gc.solver_cold.minor_words")
    /. float_of_int (max 1 n_waves))
    !placed_cold !placed_warm n;
  if ladder_active then
    Format.printf
      "deadline: %d exceeded, %d ladder escalations, audit %d violations / %d \
       repairs / %d unrepaired@."
      (gcount "deadline.exceeded")
      (gcount "ladder.escalations")
      (gcount "audit.violations")
      (gcount "audit.repairs")
      (gcount "audit.unrepaired");
  if not (Fault.active () || ladder_active) then begin
    (* Headline configs must actually place work... *)
    if !placed_warm = 0 || !placed_cold = 0 then
      failwith "sched bench: headline config placed no containers";
    (* ...and the warm min-cost solve must stay allocation-free: a small
       constant per solve is result boxing + GC-sampling floor, anything
       scaling with the graph (tens of thousands of words at these tiers)
       means an O(n) allocation crept back into the hot path. *)
    let max_warm_words =
      float_of_int (getenv_int "ALADDIN_BENCH_MAX_WARM_WORDS" 2048)
    in
    if
      caps.Flownet.Solver_intf.warm_start
      && warm_words_per_solve > max_warm_words
    then
      failwith
        (Printf.sprintf
           "sched bench: warm solve allocates %.0f minor words/solve (budget \
            %.0f)"
           warm_words_per_solve max_warm_words)
  end;
  Fault.clear ();
  (* Sharded-cells columns: replay the same waves through the cells
     composite at each ALADDIN_CELLS count (default "1,4"; the 1-cell run
     anchors the speedup baseline and is placement-equivalent to the warm
     stack). Runs clean — no faults, no ladder — so the timings are
     comparable across counts. *)
  let cells_counts = Engine.Stack.cells_sweep_of_env () in
  (* Supervision rides along when ALADDIN_SUPERVISE* is set — with no
     faults installed it is behaviour-neutral, but its counters land in
     the supervision section so chaos CI can check the families exist. *)
  let supervise_env = (Engine.Stack.of_env ()).Engine.Stack.supervise in
  let cells_runs =
    List.map
      (fun n_cells ->
        let cl = mk_cluster () in
        let built =
          Engine.Stack.build
            {
              Engine.Stack.default with
              Engine.Stack.kind = Engine.Stack.Cells;
              cells = Some n_cells;
              supervise = supervise_env;
            }
        in
        let sched = built.Engine.Stack.scheduler in
        let batch_ms = Array.make n_waves 0. in
        let placed = ref 0 in
        let fixup_ms = ref 0. and crit_ms = ref 0. and active = ref 0 in
        List.iteri
          (fun i wave ->
            let t0 = Obs.now_ns () in
            let o = sched.Scheduler.schedule cl wave in
            batch_ms.(i) <- ms_of t0 (Obs.now_ns ());
            placed := !placed + List.length o.Scheduler.placed;
            match built.Engine.Stack.breakdown () with
            | None -> ()
            | Some b ->
                fixup_ms := !fixup_ms +. b.Cells.Coordinator.fixup_ms;
                crit_ms :=
                  !crit_ms
                  +. Array.fold_left Float.max 0. b.Cells.Coordinator.cell_ms;
                active := !active + b.Cells.Coordinator.active_cells)
          waves;
        built.Engine.Stack.shutdown ();
        let total = sum batch_ms in
        Format.printf
          "cells(%d): %.2f ms over %d batches (critical-path %.2f ms, fixup \
           %.2f ms, %.2f active cells/batch), placed %d@."
          n_cells total n_waves !crit_ms !fixup_ms
          (float_of_int !active /. float_of_int (max 1 n_waves))
          !placed;
        (n_cells, batch_ms, total, !placed, !fixup_ms, !crit_ms, !active))
      cells_counts
  in
  let cells_json =
    match cells_runs with
    | [] -> {|{"counts":[],"runs":{}}|}
    | (_, _, base_total, _, _, _, _) :: _ ->
        let runs =
          String.concat ","
            (List.map
               (fun (n, batch_ms, total, placed, fixup, crit, active) ->
                 Printf.sprintf
                   {|"%d":{"batch_ms":%s,"total_ms":%.4f,"critical_path_ms":%.4f,"fixup_ms":%.4f,"active_cells_per_batch":%.4f,"placed":%d,"speedup_vs_first":%.4f}|}
                   n (json_float_array batch_ms) total crit fixup
                   (float_of_int active /. float_of_int (max 1 n_waves))
                   placed
                   (base_total /. Float.max 1e-9 total))
               cells_runs)
        in
        Printf.sprintf {|{"counts":[%s],"runs":{%s}}|}
          (String.concat "," (List.map string_of_int cells_counts))
          runs
  in
  Format.printf "@.";
  let gc_json prefix =
    Printf.sprintf
      {|{"minor_words":%d,"major_words":%d,"compactions":%d}|}
      (gcount (prefix ^ ".minor_words"))
      (gcount (prefix ^ ".major_words"))
      (gcount (prefix ^ ".compactions"))
  in
  {
    t_config =
      Printf.sprintf
        {|{"tier":"%s","label":"%s","machines":%d,"batches":%d,"containers":%d,"per_batch":%d,"seed":%d,"deadline_ms":%g,"ladder":"%s"}|}
        tier
        (if ladder_active then "deadline-ladder" else "headline")
        machines n_waves n per_batch seed deadline_ms
        (if ladder_active then String.concat "," ladder_rungs else "");
    t_per_batch =
      Printf.sprintf
        {|{"solver_cold_ms":%s,"solver_warm_ms":%s,"sched_cold_ms":%s,"sched_warm_ms":%s}|}
        (json_float_array solver_cold)
        (json_float_array solver_warm)
        (json_float_array sched_cold_ms)
        (json_float_array sched_warm_ms);
    t_summary =
      Printf.sprintf
        {|{"solver_cold_total_ms":%.4f,"solver_warm_total_ms":%.4f,"solver_speedup":%.4f,"sched_cold_total_ms":%.4f,"sched_warm_total_ms":%.4f,"sched_speedup":%.4f}|}
        (sum solver_cold) (sum solver_warm) solver_speedup (sum sched_cold_ms)
        (sum sched_warm_ms) sched_speedup;
    t_gc =
      Printf.sprintf {|{"solver_cold":%s,"solver_warm":%s}|}
        (gc_json "gc.solver_cold") (gc_json "gc.solver_warm");
    t_placed =
      Printf.sprintf {|{"cold":%d,"warm":%d}|} !placed_cold !placed_warm;
    t_cells = cells_json;
  }

(* Open-loop serving phase (runs after the batch tiers, sharing their
   fault configuration): the lib/serve front end drives the chosen
   scheduler stack through a load sweep to saturation; tail latencies,
   queue depth and shed/reject counts become the "serve" section of
   BENCH_sched.json. ALADDIN_SERVE_* knobs configure it (see
   Serve.Runner.config_of_env); ALADDIN_SERVE_MACHINES sizes the cluster
   and ALADDIN_SERVE_SCHED picks the stack ("aladdin", "aladdin-warm",
   "cells", "gokube", or any registry backend name). *)
let run_serve_phase ~seed =
  let sspec = Engine.Stack.serve_of_env () in
  let cfg, machines =
    match sspec.Engine.Stack.serve with
    | Some sv ->
        (sv.Engine.Stack.serve_cfg, sv.Engine.Stack.serve_machines)
    | None -> assert false (* serve_of_env always attaches a serve config *)
  in
  let factor = Float.max 0.002 (float_of_int machines /. 10_000.) in
  let w =
    Alibaba.generate { (Alibaba.scaled factor) with Alibaba.seed = seed }
  in
  Format.printf "== Open-loop serving sweep (%d machines, sched %s) ==@."
    machines (Engine.Stack.label sspec);
  let r = Engine.Stack.serve_sweep sspec ~workload:w in
  if r.Serve.Runner.calibrated then
    Format.printf "calibrated base rate: %.1f req/s@." r.Serve.Runner.base_rate;
  List.iter
    (fun (p : Serve.Runner.point) ->
      Format.printf
        "  rate %9.1f/s: p50 %8.3f ms  p99 %9.3f ms  p999 %9.3f ms  \
         depth_max %5d  shed %d  rejected %d%s@."
        p.Serve.Runner.rate p.Serve.Runner.p50_ms p.Serve.Runner.p99_ms
        p.Serve.Runner.p999_ms p.Serve.Runner.queue_depth_max
        p.Serve.Runner.shed p.Serve.Runner.rejected
        (if p.Serve.Runner.saturated then "  [saturated]" else ""))
    r.Serve.Runner.points;
  Serve.Runner.sweep_json cfg r

let run_sched_bench () =
  let seed = getenv_int "ALADDIN_BENCH_SEED" 42 in
  let backend = Flownet.Registry.of_env () in
  let backend_name = Flownet.Registry.name backend in
  let caps = Flownet.Registry.caps backend in
  let outs =
    List.map
      (fun (tier, machines, batches, per_batch) ->
        ( tier,
          run_sched_tier ~tier ~machines ~batches ~per_batch ~seed ~backend
            ~backend_name ~caps ))
      (tier_plan ())
  in
  let _, last = List.nth outs (List.length outs - 1) in
  let tiers_json =
    String.concat ","
      (List.map
         (fun (tier, o) ->
           Printf.sprintf
             {|"%s":{"config":%s,"summary":%s,"gc":%s,"containers_placed":%s,"cells":%s}|}
             tier o.t_config o.t_summary o.t_gc o.t_placed o.t_cells)
         outs)
  in
  (* the serve phase shares the last tier's obs epoch (no reset), so the
     top-level obs snapshot carries both the tier's and the serve
     counters *)
  let serve_json = run_serve_phase ~seed in
  let supervision_json =
    let c name = Obs.count (Obs.counter name) in
    Printf.sprintf
      {|{"enabled":%b,"counters":{"cells.supervisor.cell_failures":%d,"cells.supervisor.retries":%d,"cells.supervisor.stalls":%d,"cells.supervisor.quarantines":%d,"cells.supervisor.reinstatements":%d,"cells.supervisor.probes":%d,"cells.supervisor.redistributed_machines":%d,"cells.batch_retries":%d,"serve.resume.resumes":%d,"serve.resume.replayed_batches":%d,"serve.resume.replayed_requests":%d,"serve.taken_requests":%d,"fault.cell_crashes":%d,"fault.cell_stalls":%d,"fault.cell_slowdowns":%d,"fault.cell_corruptions":%d}}|}
      (Option.is_some (Engine.Stack.of_env ()).Engine.Stack.supervise)
      (c "cells.supervisor.cell_failures")
      (c "cells.supervisor.retries")
      (c "cells.supervisor.stalls")
      (c "cells.supervisor.quarantines")
      (c "cells.supervisor.reinstatements")
      (c "cells.supervisor.probes")
      (c "cells.supervisor.redistributed_machines")
      (c "cells.batch_retries")
      (c "serve.resume.resumes")
      (c "serve.resume.replayed_batches")
      (c "serve.resume.replayed_requests")
      (c "serve.taken_requests")
      (c "fault.cell_crashes")
      (c "fault.cell_stalls")
      (c "fault.cell_slowdowns")
      (c "fault.cell_corruptions")
  in
  let oc = open_out "BENCH_sched.json" in
  Printf.fprintf oc
    {|{"config":%s,
"solver":{"backend":"%s","min_cost":%b,"supports_max_flow":%b,"warm_start":%b},
"per_batch":%s,
"summary":%s,
"cells":%s,
"tiers":{%s},
"serve":%s,
"supervision":%s,
"obs":%s}
|}
    last.t_config backend_name caps.Flownet.Solver_intf.min_cost
    caps.Flownet.Solver_intf.supports_max_flow
    caps.Flownet.Solver_intf.warm_start last.t_per_batch last.t_summary
    last.t_cells tiers_json serve_json supervision_json (Obs.json ());
  close_out oc;
  Format.printf "wrote BENCH_sched.json@.@."

let run_full_harness () =
  let cfg =
    match Sys.getenv_opt "ALADDIN_SCALE" with
    | Some _ -> Exp_config.of_env ()
    | None -> Exp_config.make ~factor:0.05 ()
  in
  Format.printf
    "== Full reproduction harness (scale %.2f; set ALADDIN_SCALE to change) ==@."
    cfg.Exp_config.factor;
  Table1.print ();
  Fig8.print cfg;
  Fig9.print cfg;
  Fig10.print cfg;
  Fig12.print cfg;
  Fig13.print cfg;
  Ablations.print cfg;
  Heterogeneous.print cfg;
  Online.print cfg;
  Failure.print cfg

let () =
  if Sys.getenv_opt "ALADDIN_BENCH_ONLY_SCHED" = Some "1" then
    run_sched_bench ()
  else begin
    run_microbenches ();
    run_sched_bench ();
    run_full_harness ()
  end
