(* Pairing-free binary heap keyed by (time, sequence) so equal-time events
   preserve insertion order. Cancellation removes the entry eagerly
   (replace with the last element, re-sift) rather than tombstoning, so
   [pending] stays exact and a cancelled payload is never popped. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable n : int;
  mutable clock : float;
  mutable next_seq : int;
}

type handle = int

let create () = { heap = [||]; n = 0; clock = 0.; next_seq = 0 }
let now t = t.clock
let is_empty t = t.n = 0
let pending t = t.n

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t fill =
  let cap = max 8 (2 * Array.length t.heap) in
  let heap = Array.make cap fill in
  Array.blit t.heap 0 heap 0 t.n;
  t.heap <- heap

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let sift_up t i =
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      swap t !i parent;
      i := parent
    end
    else continue := false
  done

let sift_down t i =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.n && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.n && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done

let schedule_handle t ~at payload =
  if at < t.clock then invalid_arg "Des.schedule: in the past";
  let e = { time = at; seq = t.next_seq; payload } in
  if t.n >= Array.length t.heap then grow t e;
  t.next_seq <- t.next_seq + 1;
  let i = t.n in
  t.n <- t.n + 1;
  t.heap.(i) <- e;
  sift_up t i;
  e.seq

let schedule t ~at payload = ignore (schedule_handle t ~at payload)

let after_handle t ~delay payload =
  if delay < 0. then invalid_arg "Des.after: negative delay";
  schedule_handle t ~at:(t.clock +. delay) payload

let after t ~delay payload = ignore (after_handle t ~delay payload)

let cancel t h =
  let idx = ref (-1) in
  for i = 0 to t.n - 1 do
    if t.heap.(i).seq = h then idx := i
  done;
  if !idx < 0 then false
  else begin
    t.n <- t.n - 1;
    if !idx < t.n then begin
      t.heap.(!idx) <- t.heap.(t.n);
      (* the moved element may belong above or below its new slot *)
      sift_down t !idx;
      sift_up t !idx
    end;
    true
  end

let next t =
  if t.n = 0 then None
  else begin
    let top = t.heap.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.heap.(0) <- t.heap.(t.n);
      sift_down t 0
    end;
    t.clock <- top.time;
    Some (top.time, top.payload)
  end
