(* Post-batch invariant auditor. Every invariant is re-derived from first
   principles — machine container lists, raw demand vectors, the
   constraint set — rather than trusting the incrementally maintained
   bookkeeping (free vectors, blacklists) the schedulers themselves use,
   so a bug or an injected fault in that bookkeeping is caught one batch
   after it lands instead of corrupting the rest of the run. *)

type violation =
  | Capacity_overrun of { machine : Machine.id; container : Container.t }
  | Anti_affinity of {
      machine : Machine.id;
      container : Container.t;
      conflict : Application.id;
    }
  | Offline_placement of { machine : Machine.id; container : Container.t }
  | Lost_container of { container : Container.t }
  | Priority_inversion of {
      machine : Machine.id;
      blocked : Container.t;
      victim : Container.t;
    }

let pp_violation ppf = function
  | Capacity_overrun { machine; container } ->
      Format.fprintf ppf "capacity overrun: container %d on machine %d"
        container.Container.id machine
  | Anti_affinity { machine; container; conflict } ->
      Format.fprintf ppf
        "anti-affinity: container %d (app %d) on machine %d conflicts with \
         app %d"
        container.Container.id container.Container.app machine conflict
  | Offline_placement { machine; container } ->
      Format.fprintf ppf "offline placement: container %d on machine %d"
        container.Container.id machine
  | Lost_container { container } ->
      Format.fprintf ppf "lost container: %d neither placed nor undeployed"
        container.Container.id
  | Priority_inversion { machine; blocked; victim } ->
      Format.fprintf ppf
        "priority inversion: container %d (prio %d) undeployed while %d \
         (prio %d) holds machine %d it fits on"
        blocked.Container.id blocked.Container.priority victim.Container.id
        victim.Container.priority machine

let c_batches = Obs.counter "audit.batches"
let c_violations = Obs.counter "audit.violations"
let c_repairs = Obs.counter "audit.repairs"
let c_unrepaired = Obs.counter "audit.unrepaired"

(* Victim order for evictions: lowest priority goes first; ties evict the
   latest id so earlier containers keep their seats deterministically. *)
let victim_order (a : Container.t) (b : Container.t) =
  match compare a.Container.priority b.Container.priority with
  | 0 -> compare b.Container.id a.Container.id
  | c -> c

let check cluster ~batch ~(outcome : Scheduler.outcome) =
  let cs = Cluster.constraints cluster in
  let nm = Cluster.n_machines cluster in
  let viols = ref [] in
  let add v = viols := v :: !viols in
  for mid = 0 to nm - 1 do
    let m = Cluster.machine cluster mid in
    let cts = Machine.containers m in
    if cts <> [] then
      if Cluster.is_offline cluster mid then
        List.iter
          (fun c -> add (Offline_placement { machine = mid; container = c }))
          cts
      else begin
        (* Anti-affinity (both anti-within and across-app): keep a maximal
           conflict-free subset, highest priority first; the rest are
           violations. Conflict is re-tested pairwise through the
           constraint set, not through the cluster's blacklist. *)
        let order = List.sort victim_order (List.rev cts) in
        (* victim_order ascending = worst first; keep from the back *)
        let keep = ref [] in
        let victims = ref [] in
        List.iter
          (fun (c : Container.t) ->
            match
              List.find_opt
                (fun (k : Container.t) ->
                  Constraint_set.conflict cs c.Container.app k.Container.app)
                !keep
            with
            | Some k ->
                victims :=
                  Anti_affinity
                    { machine = mid; container = c; conflict = k.Container.app }
                  :: !victims
            | None -> keep := c :: !keep)
          (List.rev order);
        List.iter add !victims;
        (* Capacity: raw demand sums against raw capacity, per dimension. *)
        let cap = Resource.to_array (Machine.capacity m) in
        let used = Array.make (Array.length cap) 0 in
        let add_demand sign (c : Container.t) =
          Array.iteri
            (fun d x -> used.(d) <- used.(d) + (sign * x))
            (Resource.to_array c.Container.demand)
        in
        List.iter (add_demand 1) cts;
        let over () =
          let o = ref false in
          Array.iteri (fun d u -> if u > cap.(d) then o := true) used;
          !o
        in
        if over () then
          List.iter
            (fun c ->
              if over () then begin
                add_demand (-1) c;
                add (Capacity_overrun { machine = mid; container = c })
              end)
            (List.sort victim_order cts)
      end
  done;
  (* Conservation: every batch container is accounted for exactly once —
     placed on a live machine or reported undeployed. *)
  let undep = Hashtbl.create 64 in
  List.iter
    (fun (c : Container.t) -> Hashtbl.replace undep c.Container.id ())
    outcome.Scheduler.undeployed;
  Array.iter
    (fun (c : Container.t) ->
      if
        Cluster.machine_of cluster c.Container.id = None
        && not (Hashtbl.mem undep c.Container.id)
      then add (Lost_container { container = c }))
    batch;
  (* Batch-scoped priority inversion: an undeployed batch container that
     would fit (capacity and affinity re-derived) on the machine of a
     strictly lower-priority batch container placed this batch. *)
  let batch_ids = Hashtbl.create 64 in
  Array.iter
    (fun (c : Container.t) -> Hashtbl.replace batch_ids c.Container.id ())
    batch;
  let placed_batch =
    List.filter_map
      (fun (cid, _) ->
        if Hashtbl.mem batch_ids cid then Cluster.container cluster cid
        else None)
      outcome.Scheduler.placed
  in
  List.iter
    (fun (u : Container.t) ->
      if
        Hashtbl.mem batch_ids u.Container.id
        && Cluster.machine_of cluster u.Container.id = None
      then
        let found = ref None in
        List.iter
          (fun (p : Container.t) ->
            if !found = None && p.Container.priority < u.Container.priority
            then
              match Cluster.machine_of cluster p.Container.id with
              | Some mid when not (Cluster.is_offline cluster mid) ->
                  let m = Cluster.machine cluster mid in
                  let free_after =
                    Resource.add (Machine.free m) p.Container.demand
                  in
                  let conflict_free =
                    List.for_all
                      (fun (b : Container.t) ->
                        b.Container.id = p.Container.id
                        || not
                             (Constraint_set.conflict cs u.Container.app
                                b.Container.app))
                      (Machine.containers m)
                  in
                  if
                    Resource.fits ~demand:u.Container.demand ~within:free_after
                    && conflict_free
                  then found := Some (mid, p)
              | _ -> ())
          placed_batch;
        match !found with
        | Some (mid, p) ->
            add (Priority_inversion { machine = mid; blocked = u; victim = p })
        | None -> ())
    outcome.Scheduler.undeployed;
  List.rev !viols

let default_place cluster (c : Container.t) =
  let nm = Cluster.n_machines cluster in
  let rec go mid =
    if mid >= nm then None
    else if Cluster.admissible cluster c mid = Ok () then Some mid
    else go (mid + 1)
  in
  go 0

(* One repair sweep over a violation list: quarantine (evict) every
   violating placement, then try to re-place the evictee through [place].
   Containers that cannot be re-placed are returned as displaced — the
   caller reports them undeployed, which itself restores the conservation
   invariant. *)
let repair ?(place = default_place) cluster viols =
  let displaced = ref [] in
  let replace (c : Container.t) =
    match place cluster c with
    | Some mid -> Cluster.place cluster c mid = Ok ()
    | None -> false
  in
  let evict_and_replace (c : Container.t) =
    (match Cluster.machine_of cluster c.Container.id with
    | Some _ -> Cluster.remove cluster c.Container.id
    | None -> ());
    if not (replace c) then displaced := c :: !displaced
  in
  List.iter
    (fun v ->
      Obs.incr c_repairs;
      match v with
      | Capacity_overrun { container; _ }
      | Anti_affinity { container; _ }
      | Offline_placement { container; _ } ->
          evict_and_replace container
      | Lost_container { container } ->
          if not (replace container) then displaced := container :: !displaced
      | Priority_inversion { machine; blocked; victim } ->
          if
            Cluster.machine_of cluster victim.Container.id = Some machine
            && Cluster.machine_of cluster blocked.Container.id = None
          then begin
            Cluster.remove cluster victim.Container.id;
            (match Cluster.place cluster blocked machine with
            | Ok () -> ()
            | Error _ ->
                (* the slot was re-derived as admissible; if it is not,
                   put the victim back rather than lose both *)
                ignore (Cluster.place cluster victim machine));
            if Cluster.machine_of cluster victim.Container.id = None then
              evict_and_replace victim
          end)
    viols;
  !displaced

(* Outcome re-derived from post-repair cluster state: batch containers
   currently placed, everything else (plus non-batch evictees that found
   no new seat) undeployed. *)
let amend cluster ~batch ~displaced (outcome : Scheduler.outcome) =
  let placed = ref [] and undeployed = ref [] in
  Array.iter
    (fun (c : Container.t) ->
      match Cluster.machine_of cluster c.Container.id with
      | Some mid -> placed := (c.Container.id, mid) :: !placed
      | None -> undeployed := c :: !undeployed)
    batch;
  let batch_ids = Hashtbl.create 64 in
  Array.iter
    (fun (c : Container.t) -> Hashtbl.replace batch_ids c.Container.id ())
    batch;
  let extra =
    List.filter
      (fun (c : Container.t) ->
        (not (Hashtbl.mem batch_ids c.Container.id))
        && Cluster.machine_of cluster c.Container.id = None)
      displaced
  in
  {
    outcome with
    Scheduler.placed = List.rev !placed;
    undeployed = List.rev !undeployed @ extra;
  }

let run ?(max_passes = 3) ?place cluster ~batch ~outcome =
  Obs.incr c_batches;
  let displaced = ref [] in
  let outcome = ref outcome in
  let remaining = ref (check cluster ~batch ~outcome:!outcome) in
  let pass = ref 0 in
  while !remaining <> [] && !pass < max_passes do
    incr pass;
    Obs.add c_violations (List.length !remaining);
    let d = repair ?place cluster !remaining in
    displaced := d @ !displaced;
    outcome := amend cluster ~batch ~displaced:!displaced !outcome;
    remaining := check cluster ~batch ~outcome:!outcome
  done;
  Obs.add c_unrepaired (List.length !remaining);
  (!outcome, !remaining)

let wrap ?max_passes ?place t =
  {
    t with
    Scheduler.schedule =
      (fun cluster batch ->
        let o = t.Scheduler.schedule cluster batch in
        fst (run ?max_passes ?place cluster ~batch ~outcome:o));
  }
