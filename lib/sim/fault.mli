(** Seeded fault-injection harness.

    A single process-wide configuration (installed with {!install}) drives
    every injection point: trace-line corruption, arc cost/capacity
    perturbation in the solver projections, machine revocation between
    replay waves, and outright solver-step failures. All draws come from
    one [Random.State] seeded at {!install}, so a given seed reproduces
    the exact same fault schedule.

    With no configuration installed every probe is a no-op, so the hooks
    cost nothing on production paths. Injection events are counted under
    the [fault.*] {!Obs} counters. *)

type t = {
  seed : int;
  trace_line_corruption : float;  (** per-line probability of mangling *)
  arc_cost_flip : float;          (** per-arc probability of a cost flip *)
  arc_capacity_drop : float;      (** per-arc probability of a capacity drop *)
  machine_revocation : float;     (** per-wave probability of losing a machine *)
  solver_step_failure : float;    (** per-step probability of {!Injected} *)
  solver_failure_budget : int;
      (** Maximum number of solver-step failures actually raised; [-1] is
          unlimited. A finite budget makes recovery tests deterministic:
          budget 1 with rate 1.0 fails the warm attempt and lets the cold
          retry through. *)
}

exception Injected of string
(** Raised by {!trip_solver_step} when an injection fires. The scheduler
    treats it like any other typed batch failure: restore and degrade. *)

val make :
  ?trace_line_corruption:float ->
  ?arc_cost_flip:float ->
  ?arc_capacity_drop:float ->
  ?machine_revocation:float ->
  ?solver_step_failure:float ->
  ?solver_failure_budget:int ->
  seed:int ->
  unit ->
  t
(** All probabilities default to [0.]; budget defaults to [-1]. *)

val install : t -> unit
(** Make [t] the active configuration (re-seeding the draw stream). *)

val clear : unit -> unit
(** Remove the active configuration; every probe becomes a no-op. *)

val active : unit -> bool

val trip_solver_step : string -> unit
(** [trip_solver_step site] raises [Injected site] with probability
    [solver_step_failure] while the failure budget lasts; otherwise
    returns. *)

val corrupt_line : string -> string
(** Mangle a trace line (truncate, garble a char, blank it, or splice in a
    non-numeric token) with probability [trace_line_corruption]; returns
    the line unchanged otherwise. *)

val perturb_arc : cost:int -> capacity:int -> int * int
(** Possibly flipped [(cost, capacity)] for one arc: the cost is negated
    (minus one, so 0 flips too) with probability [arc_cost_flip], the
    capacity dropped to 0 with probability [arc_capacity_drop]. *)

val pick_revocation : n_machines:int -> int option
(** With probability [machine_revocation], a machine id to revoke. *)
