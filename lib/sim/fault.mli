(** Seeded fault-injection harness.

    A single process-wide configuration (installed with {!install}) drives
    every injection point: trace-line corruption, arc cost/capacity
    perturbation in the solver projections, machine revocation between
    replay waves, outright solver-step failures, and a one-shot process
    kill for crash-recovery drills. All draws come from one splitmix64
    {!Rng} stream seeded at {!install}, so a given seed reproduces the
    exact same fault schedule — and because every draw advances the stream
    by exactly one step, the position is a plain counter that a
    crash-recovery journal can record ({!stream_position}) and replay to
    ({!fast_forward}).

    With no configuration installed every probe is a no-op, so the hooks
    cost nothing on production paths. Injection events are counted under
    the [fault.*] {!Obs} counters. *)

type t = {
  seed : int;
  trace_line_corruption : float;  (** per-line probability of mangling *)
  arc_cost_flip : float;          (** per-arc probability of a cost flip *)
  arc_capacity_drop : float;      (** per-arc probability of a capacity drop *)
  machine_revocation : float;     (** per-wave probability of losing a machine *)
  solver_step_failure : float;    (** per-step probability of {!Injected} *)
  solver_failure_budget : int;
      (** Maximum number of solver-step failures actually raised; [-1] is
          unlimited. A finite budget makes recovery tests deterministic:
          budget 1 with rate 1.0 fails the warm attempt and lets the cold
          retry through. *)
  process_kill_after : int;
      (** {!trip_process_kill} raises {!Killed} on probe number
          [process_kill_after] (0 kills at the first probe); [-1] never.
          One-shot: after firing, the countdown disarms so a resumed run
          gets past the same point. *)
  cell_crash : float;  (** per-probe probability a cell task crashes *)
  cell_stall : float;
      (** per-probe probability a cell task stalls for [cell_stall_s] —
          long enough to trip the supervisor's join timeout *)
  cell_slow : float;
      (** per-probe probability of latency inflation by
          [cell_stall_s / 4] — slow, but inside the join timeout *)
  cell_corrupt : float;
      (** per-probe probability of mirror corruption (a duplicated
          placement event), surfacing as a phase-2 [Desync] *)
  cell_stall_s : float;  (** stall duration in wall seconds *)
  cell_targets : int list;
      (** cells eligible for domain faults; [[]] means every cell —
          pinning one index makes quarantine drills deterministic *)
  cell_fault_budget : int;
      (** max number of domain-fault firings across all classes;
          [-1] unlimited *)
}

exception Injected of string
(** Raised by {!trip_solver_step} when an injection fires. The scheduler
    treats it like any other typed batch failure: restore and degrade. *)

exception Killed of string
(** Raised by {!trip_process_kill}: the simulated process death. Nothing
    catches this below the run driver — schedulers must not treat it as
    recoverable, and {!Replay.run} lets it escape so the caller can
    exercise journal recovery. *)

val make :
  ?trace_line_corruption:float ->
  ?arc_cost_flip:float ->
  ?arc_capacity_drop:float ->
  ?machine_revocation:float ->
  ?solver_step_failure:float ->
  ?solver_failure_budget:int ->
  ?process_kill_after:int ->
  ?cell_crash:float ->
  ?cell_stall:float ->
  ?cell_slow:float ->
  ?cell_corrupt:float ->
  ?cell_stall_s:float ->
  ?cell_targets:int list ->
  ?cell_fault_budget:int ->
  seed:int ->
  unit ->
  t
(** All probabilities default to [0.]; budgets/countdowns default to
    [-1]; [cell_stall_s] defaults to [0.05] wall seconds. *)

val install : t -> unit
(** Make [t] the active configuration (re-seeding the draw stream). *)

val clear : unit -> unit
(** Remove the active configuration; every probe becomes a no-op. *)

val active : unit -> bool

val stream_position : unit -> (int * int * int) option
(** [(draws, failures_left, kill_countdown)] of the installed
    configuration — everything a journal needs to resume the fault
    schedule mid-run. *)

val fast_forward :
  ?kill_countdown:int -> draws:int -> failures_left:int -> unit -> unit
(** Advance the installed stream to a recorded {!stream_position}. Used on
    journal resume, right after {!install} with the original config. The
    kill countdown is per-process: unless [?kill_countdown] re-arms it
    explicitly, the resumed run keeps the countdown of the configuration
    it was installed with — restoring the journaled countdown would make
    recovery re-execute its own crash.
    @raise Invalid_argument when nothing is installed or the stream is
    already past [draws]. *)

val trip_solver_step : string -> unit
(** [trip_solver_step site] raises [Injected site] with probability
    [solver_step_failure] while the failure budget lasts; otherwise
    returns. *)

val trip_process_kill : string -> unit
(** Deterministic process-kill probe (no randomness): counts down
    [process_kill_after] and raises [Killed site] when it hits zero.
    {!Replay} probes it once per committed batch. *)

val corrupt_line : string -> string
(** Mangle a trace line (truncate, garble a char, blank it, or splice in a
    non-numeric token) with probability [trace_line_corruption]; returns
    the line unchanged otherwise. *)

val perturb_arc : cost:int -> capacity:int -> int * int
(** Possibly flipped [(cost, capacity)] for one arc: the cost is negated
    (minus one, so 0 flips too) with probability [arc_cost_flip], the
    capacity dropped to 0 with probability [arc_capacity_drop]. *)

type cell_verdict = [ `None | `Crash | `Stall of float | `Slow of float ]

val cell_fault : cell:int -> cell_verdict
(** Domain-level fault verdict for one cell task, probed at task start.
    [`Crash] means the prober should raise {!Injected}; [`Stall s] /
    [`Slow s] mean it should sleep [s] wall seconds ([cell_stall_s] and
    [cell_stall_s / 4] respectively) before (or instead of a timely)
    solve. Verdicts are drawn from a side stream hashed per
    [(seed, cell, probe index, class)] — deterministic per cell whatever
    the domain interleaving, and consuming {e no} draws from the main
    counted stream, so domain faults never perturb the journaled fault
    schedule. Honors [cell_targets] and [cell_fault_budget]; counted
    under [fault.cell_crashes] / [.cell_stalls] / [.cell_slowdowns]. *)

val cell_corrupt : cell:int -> bool
(** Mirror-corruption verdict for one cell task, probed after its solve:
    [true] tells the coordinator to corrupt the cell's event trace (a
    duplicated placement), which phase 2 then detects as a [Desync].
    Same side-stream discipline as {!cell_fault}; counted under
    [fault.cell_corruptions]. *)

val pick_revocation :
  ?is_offline:(int -> bool) -> n_machines:int -> unit -> int option
(** With probability [machine_revocation], a machine id to revoke, drawn
    uniformly over the machines for which [is_offline] is false — a
    machine already down cannot be revoked again (the old behaviour drew
    any id, double-counting [fault.revoked_machines] on repeats while the
    revocation itself no-opped). Returns [None] without counting when
    every machine is already offline. Exactly two draws are consumed per
    firing probe regardless of the online set, keeping the stream position
    schedule-independent. *)
