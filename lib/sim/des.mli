(** Minimal discrete-event simulation core: a time-ordered event queue with
    a monotonically advancing virtual clock. Used by the mixed
    long-lived/short-lived workload runner (§IV.D). *)

type 'a t

type handle
(** Identifies one scheduled event, for {!cancel}. *)

val create : unit -> 'a t

val now : 'a t -> float
(** Current virtual time (the timestamp of the last popped event). *)

val schedule : 'a t -> at:float -> 'a -> unit
(** @raise Invalid_argument when scheduling in the past. *)

val after : 'a t -> delay:float -> 'a -> unit
(** Schedule relative to {!now}. @raise Invalid_argument on negative
    delay. *)

val schedule_handle : 'a t -> at:float -> 'a -> handle
val after_handle : 'a t -> delay:float -> 'a -> handle
(** As {!schedule} / {!after}, returning a handle the event can later be
    cancelled through (e.g. a timeout disarmed by the completion it was
    guarding). *)

val cancel : 'a t -> handle -> bool
(** Remove the event eagerly if still pending; [false] when it already
    popped or was cancelled. Cancellation keeps {!pending} exact and does
    not disturb the ordering of the remaining events. *)

val next : 'a t -> (float * 'a) option
(** Pop the earliest event and advance the clock. Ties pop in insertion
    order. *)

val is_empty : 'a t -> bool
val pending : 'a t -> int
