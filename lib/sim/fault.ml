type t = {
  seed : int;
  trace_line_corruption : float;
  arc_cost_flip : float;
  arc_capacity_drop : float;
  machine_revocation : float;
  solver_step_failure : float;
  solver_failure_budget : int;
  process_kill_after : int;
  cell_crash : float;
  cell_stall : float;
  cell_slow : float;
  cell_corrupt : float;
  cell_stall_s : float;
  cell_targets : int list;
  cell_fault_budget : int;
}

exception Injected of string
exception Killed of string

(* Draws come from the repository's splitmix64 Rng rather than
   Stdlib.Random: every Rng operation advances the state by exactly one
   next_int64 step, so the stream position is just a draw count — which is
   what lets a crash-recovery journal record "where the fault schedule was"
   and fast-forward to it on resume. *)
type state = {
  cfg : t;
  rng : Rng.t;
  mutable failures_left : int;
  mutable draws : int;
  mutable kill_countdown : int;
  mutable cell_budget_left : int;
  cell_probes : (int, int) Hashtbl.t;  (* per-cell probe count *)
}

let installed : state option ref = ref None

(* One lock serialises every draw and state mutation, so concurrent
   domains (the cells coordinator probes from worker tasks) keep the
   draw-counted stream well-defined: each draw lands at exactly one
   stream position and the counters stay exact. The [None] fast path —
   no fault configuration installed, i.e. every production run — stays
   lock-free; probes re-check under the lock before drawing. *)
let lock = Mutex.create ()

let with_state f =
  match !installed with
  | None -> None
  | Some _ ->
      Mutex.protect lock (fun () ->
          match !installed with None -> None | Some st -> Some (f st))

let c_solver = Obs.counter "fault.injected_solver_failures"
let c_lines = Obs.counter "fault.corrupted_lines"
let c_arcs = Obs.counter "fault.flipped_arcs"
let c_revoked = Obs.counter "fault.revoked_machines"
let c_kills = Obs.counter "fault.process_kills"
let c_cell_crashes = Obs.counter "fault.cell_crashes"
let c_cell_stalls = Obs.counter "fault.cell_stalls"
let c_cell_slowdowns = Obs.counter "fault.cell_slowdowns"
let c_cell_corruptions = Obs.counter "fault.cell_corruptions"

let make ?(trace_line_corruption = 0.) ?(arc_cost_flip = 0.)
    ?(arc_capacity_drop = 0.) ?(machine_revocation = 0.)
    ?(solver_step_failure = 0.) ?(solver_failure_budget = -1)
    ?(process_kill_after = -1) ?(cell_crash = 0.) ?(cell_stall = 0.)
    ?(cell_slow = 0.) ?(cell_corrupt = 0.) ?(cell_stall_s = 0.05)
    ?(cell_targets = []) ?(cell_fault_budget = -1) ~seed () =
  {
    seed;
    trace_line_corruption;
    arc_cost_flip;
    arc_capacity_drop;
    machine_revocation;
    solver_step_failure;
    solver_failure_budget;
    process_kill_after;
    cell_crash;
    cell_stall;
    cell_slow;
    cell_corrupt;
    cell_stall_s;
    cell_targets;
    cell_fault_budget;
  }

let install cfg =
  Mutex.protect lock (fun () ->
      installed :=
    Some
      {
        cfg;
        rng = Rng.create cfg.seed;
        failures_left = cfg.solver_failure_budget;
        draws = 0;
        kill_countdown = cfg.process_kill_after;
        cell_budget_left = cfg.cell_fault_budget;
        cell_probes = Hashtbl.create 8;
      })

let clear () = Mutex.protect lock (fun () -> installed := None)
let active () = !installed <> None

(* Counted wrappers — every probe draws through these so [draws] stays an
   exact measure of stream position. *)
let rfloat st =
  st.draws <- st.draws + 1;
  Rng.float st.rng

let rint st bound =
  st.draws <- st.draws + 1;
  Rng.int st.rng bound

(* No draw is consumed for a zero-probability fault class, so enabling one
   class does not perturb the schedule of the others. *)
let draw st p = p > 0. && rfloat st < p

let stream_position () =
  with_state (fun st -> (st.draws, st.failures_left, st.kill_countdown))

let fast_forward ?kill_countdown ~draws ~failures_left () =
  match
    with_state (fun st ->
        if draws < st.draws then
          invalid_arg "Fault.fast_forward: stream already past that position";
        while st.draws < draws do
          ignore (rfloat st)
        done;
        st.failures_left <- failures_left;
        (* The kill countdown is a per-process drill device: a resumed run
           keeps the countdown of the configuration it was launched with
           (usually disarmed) unless the caller explicitly re-arms it —
           otherwise recovery would faithfully re-execute its own crash. *)
        Option.iter (fun k -> st.kill_countdown <- k) kill_countdown)
  with
  | Some () -> ()
  | None -> invalid_arg "Fault.fast_forward: no configuration installed"

let trip_solver_step site =
  let tripped =
    with_state (fun st ->
        if st.failures_left <> 0 && draw st st.cfg.solver_step_failure then begin
          if st.failures_left > 0 then st.failures_left <- st.failures_left - 1;
          Obs.incr c_solver;
          true
        end
        else false)
  in
  if tripped = Some true then raise (Injected site)

let trip_process_kill site =
  let killed =
    with_state (fun st ->
        if st.kill_countdown = 0 then begin
          st.kill_countdown <- -1;
          (* one-shot: the resumed run must get past this point *)
          Obs.incr c_kills;
          true
        end
        else begin
          if st.kill_countdown > 0 then
            st.kill_countdown <- st.kill_countdown - 1;
          false
        end)
  in
  if killed = Some true then raise (Killed site)

let corrupt_line line =
  match
    with_state (fun st ->
      if not (draw st st.cfg.trace_line_corruption) then line
      else begin
        Obs.incr c_lines;
        let len = String.length line in
        match rint st 4 with
        | 0 ->
            (* Truncate mid-line. *)
            if len = 0 then "?" else String.sub line 0 (rint st len)
        | 1 ->
            (* Garble one character. *)
            if len = 0 then "?"
            else begin
              let b = Bytes.of_string line in
              Bytes.set b (rint st len) '?';
              Bytes.to_string b
            end
        | 2 -> ""
        | _ ->
            (* Splice a non-numeric token into a field position. *)
            let cut = if len = 0 then 0 else rint st len in
            String.sub line 0 cut ^ " NaN " ^ String.sub line cut (len - cut)
      end)
  with
  | None -> line
  | Some l -> l

let perturb_arc ~cost ~capacity =
  match
    with_state (fun st ->
      let cost =
        if draw st st.cfg.arc_cost_flip then begin
          Obs.incr c_arcs;
          -cost - 1
        end
        else cost
      in
      let capacity =
        if draw st st.cfg.arc_capacity_drop then begin
          Obs.incr c_arcs;
          0
        end
        else capacity
      in
      (cost, capacity))
  with
  | None -> (cost, capacity)
  | Some r -> r

(* ---- domain-level (cell) faults --------------------------------------

   Cell verdicts are drawn from a side stream keyed on
   (seed, cell, per-cell probe index, fault class) rather than the main
   counted stream: cell tasks probe concurrently from worker domains, so
   routing them through the shared stream would make the journaled draw
   count depend on domain interleaving. A pure per-probe splitmix64 hash
   keeps every verdict deterministic per (cell, probe) regardless of
   execution order — and leaves the main stream position untouched, so
   enabling domain faults never perturbs the schedule of the arc/solver/
   revocation classes. Each class hashes independently, preserving the
   "enabling one class does not perturb the others" rule. *)

type cell_verdict = [ `None | `Crash | `Stall of float | `Slow of float ]

let side_draw st ~cell ~probe ~klass =
  Rng.float
    (Rng.create
       (st.cfg.seed
       lxor (cell * 0x9e3779b9)
       lxor (probe * 0x85ebca6b)
       lxor (klass * 0xc2b2ae35)))

let targeted st cell =
  st.cfg.cell_targets = [] || List.mem cell st.cfg.cell_targets

let next_probe st cell =
  let k =
    match Hashtbl.find_opt st.cell_probes cell with Some k -> k | None -> 0
  in
  Hashtbl.replace st.cell_probes cell (k + 1);
  k

let spend st =
  if st.cell_budget_left > 0 then
    st.cell_budget_left <- st.cell_budget_left - 1

let cell_fault ~cell =
  match
    with_state (fun st ->
        let cfg = st.cfg in
        if
          (cfg.cell_crash = 0. && cfg.cell_stall = 0. && cfg.cell_slow = 0.)
          || not (targeted st cell)
        then `None
        else begin
          let probe = next_probe st cell in
          if st.cell_budget_left = 0 then `None
          else
            let fire p klass =
              p > 0. && side_draw st ~cell ~probe ~klass < p
            in
            if fire cfg.cell_crash 1 then begin
              spend st;
              Obs.incr c_cell_crashes;
              `Crash
            end
            else if fire cfg.cell_stall 2 then begin
              spend st;
              Obs.incr c_cell_stalls;
              `Stall cfg.cell_stall_s
            end
            else if fire cfg.cell_slow 3 then begin
              spend st;
              Obs.incr c_cell_slowdowns;
              `Slow (cfg.cell_stall_s /. 4.)
            end
            else `None
        end)
  with
  | None -> `None
  | Some v -> (v : cell_verdict)

let cell_corrupt ~cell =
  match
    with_state (fun st ->
        if st.cfg.cell_corrupt = 0. || not (targeted st cell) then false
        else begin
          let probe = next_probe st cell in
          if st.cell_budget_left = 0 then false
          else if side_draw st ~cell ~probe ~klass:4 < st.cfg.cell_corrupt
          then begin
            spend st;
            Obs.incr c_cell_corruptions;
            true
          end
          else false
        end)
  with
  | None -> false
  | Some v -> v

let pick_revocation ?(is_offline = fun _ -> false) ~n_machines () =
  Option.join
    (with_state (fun st ->
      if n_machines > 0 && draw st st.cfg.machine_revocation then begin
        (* Draw among the machines still online: revoking an offline
           machine would be a no-op drain, yet the old draw-any-id scheme
           still counted it under fault.revoked_machines — double-counting
           the fault and silently weakening the chaos schedule. One index
           draw is consumed whether or not a candidate exists, so the
           stream position stays independent of cluster state size. *)
        let online = ref [] in
        let n_online = ref 0 in
        for mid = n_machines - 1 downto 0 do
          if not (is_offline mid) then begin
            online := mid :: !online;
            incr n_online
          end
        done;
        let k = rint st (max 1 !n_online) in
        if !n_online = 0 then None
        else begin
          Obs.incr c_revoked;
          Some (List.nth !online k)
        end
      end
      else None))
