type t = {
  seed : int;
  trace_line_corruption : float;
  arc_cost_flip : float;
  arc_capacity_drop : float;
  machine_revocation : float;
  solver_step_failure : float;
  solver_failure_budget : int;
  process_kill_after : int;
}

exception Injected of string
exception Killed of string

(* Draws come from the repository's splitmix64 Rng rather than
   Stdlib.Random: every Rng operation advances the state by exactly one
   next_int64 step, so the stream position is just a draw count — which is
   what lets a crash-recovery journal record "where the fault schedule was"
   and fast-forward to it on resume. *)
type state = {
  cfg : t;
  rng : Rng.t;
  mutable failures_left : int;
  mutable draws : int;
  mutable kill_countdown : int;
}

let installed : state option ref = ref None

(* One lock serialises every draw and state mutation, so concurrent
   domains (the cells coordinator probes from worker tasks) keep the
   draw-counted stream well-defined: each draw lands at exactly one
   stream position and the counters stay exact. The [None] fast path —
   no fault configuration installed, i.e. every production run — stays
   lock-free; probes re-check under the lock before drawing. *)
let lock = Mutex.create ()

let with_state f =
  match !installed with
  | None -> None
  | Some _ ->
      Mutex.protect lock (fun () ->
          match !installed with None -> None | Some st -> Some (f st))

let c_solver = Obs.counter "fault.injected_solver_failures"
let c_lines = Obs.counter "fault.corrupted_lines"
let c_arcs = Obs.counter "fault.flipped_arcs"
let c_revoked = Obs.counter "fault.revoked_machines"
let c_kills = Obs.counter "fault.process_kills"

let make ?(trace_line_corruption = 0.) ?(arc_cost_flip = 0.)
    ?(arc_capacity_drop = 0.) ?(machine_revocation = 0.)
    ?(solver_step_failure = 0.) ?(solver_failure_budget = -1)
    ?(process_kill_after = -1) ~seed () =
  {
    seed;
    trace_line_corruption;
    arc_cost_flip;
    arc_capacity_drop;
    machine_revocation;
    solver_step_failure;
    solver_failure_budget;
    process_kill_after;
  }

let install cfg =
  Mutex.protect lock (fun () ->
      installed :=
    Some
      {
        cfg;
        rng = Rng.create cfg.seed;
        failures_left = cfg.solver_failure_budget;
        draws = 0;
        kill_countdown = cfg.process_kill_after;
      })

let clear () = Mutex.protect lock (fun () -> installed := None)
let active () = !installed <> None

(* Counted wrappers — every probe draws through these so [draws] stays an
   exact measure of stream position. *)
let rfloat st =
  st.draws <- st.draws + 1;
  Rng.float st.rng

let rint st bound =
  st.draws <- st.draws + 1;
  Rng.int st.rng bound

(* No draw is consumed for a zero-probability fault class, so enabling one
   class does not perturb the schedule of the others. *)
let draw st p = p > 0. && rfloat st < p

let stream_position () =
  with_state (fun st -> (st.draws, st.failures_left, st.kill_countdown))

let fast_forward ?kill_countdown ~draws ~failures_left () =
  match
    with_state (fun st ->
        if draws < st.draws then
          invalid_arg "Fault.fast_forward: stream already past that position";
        while st.draws < draws do
          ignore (rfloat st)
        done;
        st.failures_left <- failures_left;
        (* The kill countdown is a per-process drill device: a resumed run
           keeps the countdown of the configuration it was launched with
           (usually disarmed) unless the caller explicitly re-arms it —
           otherwise recovery would faithfully re-execute its own crash. *)
        Option.iter (fun k -> st.kill_countdown <- k) kill_countdown)
  with
  | Some () -> ()
  | None -> invalid_arg "Fault.fast_forward: no configuration installed"

let trip_solver_step site =
  let tripped =
    with_state (fun st ->
        if st.failures_left <> 0 && draw st st.cfg.solver_step_failure then begin
          if st.failures_left > 0 then st.failures_left <- st.failures_left - 1;
          Obs.incr c_solver;
          true
        end
        else false)
  in
  if tripped = Some true then raise (Injected site)

let trip_process_kill site =
  let killed =
    with_state (fun st ->
        if st.kill_countdown = 0 then begin
          st.kill_countdown <- -1;
          (* one-shot: the resumed run must get past this point *)
          Obs.incr c_kills;
          true
        end
        else begin
          if st.kill_countdown > 0 then
            st.kill_countdown <- st.kill_countdown - 1;
          false
        end)
  in
  if killed = Some true then raise (Killed site)

let corrupt_line line =
  match
    with_state (fun st ->
      if not (draw st st.cfg.trace_line_corruption) then line
      else begin
        Obs.incr c_lines;
        let len = String.length line in
        match rint st 4 with
        | 0 ->
            (* Truncate mid-line. *)
            if len = 0 then "?" else String.sub line 0 (rint st len)
        | 1 ->
            (* Garble one character. *)
            if len = 0 then "?"
            else begin
              let b = Bytes.of_string line in
              Bytes.set b (rint st len) '?';
              Bytes.to_string b
            end
        | 2 -> ""
        | _ ->
            (* Splice a non-numeric token into a field position. *)
            let cut = if len = 0 then 0 else rint st len in
            String.sub line 0 cut ^ " NaN " ^ String.sub line cut (len - cut)
      end)
  with
  | None -> line
  | Some l -> l

let perturb_arc ~cost ~capacity =
  match
    with_state (fun st ->
      let cost =
        if draw st st.cfg.arc_cost_flip then begin
          Obs.incr c_arcs;
          -cost - 1
        end
        else cost
      in
      let capacity =
        if draw st st.cfg.arc_capacity_drop then begin
          Obs.incr c_arcs;
          0
        end
        else capacity
      in
      (cost, capacity))
  with
  | None -> (cost, capacity)
  | Some r -> r

let pick_revocation ?(is_offline = fun _ -> false) ~n_machines () =
  Option.join
    (with_state (fun st ->
      if n_machines > 0 && draw st st.cfg.machine_revocation then begin
        (* Draw among the machines still online: revoking an offline
           machine would be a no-op drain, yet the old draw-any-id scheme
           still counted it under fault.revoked_machines — double-counting
           the fault and silently weakening the chaos schedule. One index
           draw is consumed whether or not a candidate exists, so the
           stream position stays independent of cluster state size. *)
        let online = ref [] in
        let n_online = ref 0 in
        for mid = n_machines - 1 downto 0 do
          if not (is_offline mid) then begin
            online := mid :: !online;
            incr n_online
          end
        done;
        let k = rint st (max 1 !n_online) in
        if !n_online = 0 then None
        else begin
          Obs.incr c_revoked;
          Some (List.nth !online k)
        end
      end
      else None))
