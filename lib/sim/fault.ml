type t = {
  seed : int;
  trace_line_corruption : float;
  arc_cost_flip : float;
  arc_capacity_drop : float;
  machine_revocation : float;
  solver_step_failure : float;
  solver_failure_budget : int;
}

exception Injected of string

type state = { cfg : t; rng : Random.State.t; mutable failures_left : int }

let installed : state option ref = ref None

let c_solver = Obs.counter "fault.injected_solver_failures"
let c_lines = Obs.counter "fault.corrupted_lines"
let c_arcs = Obs.counter "fault.flipped_arcs"
let c_revoked = Obs.counter "fault.revoked_machines"

let make ?(trace_line_corruption = 0.) ?(arc_cost_flip = 0.)
    ?(arc_capacity_drop = 0.) ?(machine_revocation = 0.)
    ?(solver_step_failure = 0.) ?(solver_failure_budget = -1) ~seed () =
  {
    seed;
    trace_line_corruption;
    arc_cost_flip;
    arc_capacity_drop;
    machine_revocation;
    solver_step_failure;
    solver_failure_budget;
  }

let install cfg =
  installed :=
    Some
      {
        cfg;
        rng = Random.State.make [| cfg.seed |];
        failures_left = cfg.solver_failure_budget;
      }

let clear () = installed := None
let active () = !installed <> None

let draw st p = p > 0. && Random.State.float st.rng 1.0 < p

let trip_solver_step site =
  match !installed with
  | None -> ()
  | Some st ->
      if
        st.failures_left <> 0
        && draw st st.cfg.solver_step_failure
      then begin
        if st.failures_left > 0 then st.failures_left <- st.failures_left - 1;
        Obs.incr c_solver;
        raise (Injected site)
      end

let corrupt_line line =
  match !installed with
  | None -> line
  | Some st ->
      if not (draw st st.cfg.trace_line_corruption) then line
      else begin
        Obs.incr c_lines;
        let len = String.length line in
        match Random.State.int st.rng 4 with
        | 0 ->
            (* Truncate mid-line. *)
            if len = 0 then "?" else String.sub line 0 (Random.State.int st.rng len)
        | 1 ->
            (* Garble one character. *)
            if len = 0 then "?"
            else begin
              let b = Bytes.of_string line in
              Bytes.set b (Random.State.int st.rng len) '?';
              Bytes.to_string b
            end
        | 2 -> ""
        | _ ->
            (* Splice a non-numeric token into a field position. *)
            let cut = if len = 0 then 0 else Random.State.int st.rng len in
            String.sub line 0 cut ^ " NaN " ^ String.sub line cut (len - cut)
      end

let perturb_arc ~cost ~capacity =
  match !installed with
  | None -> (cost, capacity)
  | Some st ->
      let cost =
        if draw st st.cfg.arc_cost_flip then begin
          Obs.incr c_arcs;
          -cost - 1
        end
        else cost
      in
      let capacity =
        if draw st st.cfg.arc_capacity_drop then begin
          Obs.incr c_arcs;
          0
        end
        else capacity
      in
      (cost, capacity)

let pick_revocation ~n_machines =
  match !installed with
  | None -> None
  | Some st ->
      if n_machines > 0 && draw st st.cfg.machine_revocation then begin
        Obs.incr c_revoked;
        Some (Random.State.int st.rng n_machines)
      end
      else None
