(* Append-only batch-commit journal. One text line per committed wave,
   carrying everything needed to resume the replay as if the crash never
   happened: the full placement map (placements move across batches via
   migration/preemption/drain, so per-wave deltas would not reconstruct
   the state), the offline machine set, and the fault stream position
   (the splitmix64 draw count — see Fault — plus the failure budget and
   kill countdown). Each line ends in a checksum so a record half-written
   at the moment of death is detected and dropped rather than trusted. *)

type commit = {
  next_pos : int;
  placements : (Container.id * Machine.id) list;
  offline : Machine.id list;
  fault : (int * int * int) option;
  serve : (int * int) option;
      (* serving commits: (requests in the batch, failed flag 0/1) —
         optional "S" section so pre-existing replay journals still parse *)
}

type corruption =
  | Bad_checksum
  | Bad_keyword of { expected : string; got : string }
  | Bad_field of string
  | Trailing_tokens

type t = { oc : out_channel; mutable commits : int }

let c_commits = Obs.counter "journal.commits"
let c_corrupt = Obs.counter "journal.corrupt_records"
let c_dropped = Obs.counter "journal.dropped_commits"

let pp_corruption ppf = function
  | Bad_checksum -> Format.fprintf ppf "checksum mismatch"
  | Bad_keyword { expected; got } ->
      Format.fprintf ppf "keyword mismatch: expected %S, got %S" expected got
  | Bad_field what -> Format.fprintf ppf "bad field: %s" what
  | Trailing_tokens -> Format.fprintf ppf "trailing tokens after placements"

let checksum s =
  let h = ref 5381 in
  String.iter
    (fun ch -> h := (((!h lsl 5) + !h) + Char.code ch) land 0x3FFFFFFF)
    s;
  !h

let encode c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "C %d F" c.next_pos);
  (match c.fault with
  | Some (draws, failures_left, kill_countdown) ->
      Buffer.add_string buf
        (Printf.sprintf " %d %d %d" draws failures_left kill_countdown)
  | None -> Buffer.add_string buf " -1 0 0");
  (match c.serve with
  | Some (nreq, failed) ->
      Buffer.add_string buf (Printf.sprintf " S %d %d" nreq failed)
  | None -> ());
  Buffer.add_string buf (Printf.sprintf " O %d" (List.length c.offline));
  List.iter
    (fun mid -> Buffer.add_string buf (Printf.sprintf " %d" mid))
    c.offline;
  Buffer.add_string buf (Printf.sprintf " P %d" (List.length c.placements));
  List.iter
    (fun (cid, mid) -> Buffer.add_string buf (Printf.sprintf " %d %d" cid mid))
    c.placements;
  let body = Buffer.contents buf in
  Printf.sprintf "%s # %d" body (checksum body)

(* Typed record parser. Every malformation maps to a {!corruption}
   constructor — no catch-all: a [failwith] here used to masquerade a
   mid-file keyword mismatch as an anonymous exception, which (depending
   on the caller) either crashed the resume or silently skipped the
   record while trusting everything after it. *)
exception Corrupt of corruption

let decode line =
  let corrupt c = raise (Corrupt c) in
  try
    let body, tail =
      match String.rindex_opt line '#' with
      | None -> corrupt Bad_checksum
      | Some i when i < 1 || line.[i - 1] <> ' ' -> corrupt Bad_checksum
      | Some i ->
          ( String.sub line 0 (i - 1),
            String.sub line (i + 1) (String.length line - i - 1) )
    in
    (match int_of_string_opt (String.trim tail) with
    | Some h when h = checksum body -> ()
    | _ -> corrupt Bad_checksum);
    let toks =
      String.split_on_char ' ' body
      |> List.filter (fun s -> s <> "")
      |> Array.of_list
    in
    let pos = ref 0 in
    let next what =
      if !pos >= Array.length toks then
        corrupt (Bad_field (what ^ ": record truncated"));
      let t = toks.(!pos) in
      incr pos;
      t
    in
    let int what =
      let t = next what in
      match int_of_string_opt t with
      | Some v -> v
      | None -> corrupt (Bad_field (Printf.sprintf "%s: %S is not an int" what t))
    in
    let expect kw =
      let got = next kw in
      if got <> kw then corrupt (Bad_keyword { expected = kw; got })
    in
    expect "C";
    let next_pos = int "next_pos" in
    expect "F";
    let draws = int "fault.draws" in
    let failures_left = int "fault.failures_left" in
    let kill_countdown = int "fault.kill_countdown" in
    let serve =
      if !pos < Array.length toks && toks.(!pos) = "S" then begin
        incr pos;
        let nreq = int "serve.requests" in
        Some (nreq, int "serve.failed")
      end
      else None
    in
    expect "O";
    let no = int "n_offline" in
    let offline = List.init no (fun _ -> int "offline machine") in
    expect "P";
    let np = int "n_placements" in
    let placements =
      List.init np (fun _ ->
          let cid = int "placement container" in
          (cid, int "placement machine"))
    in
    if !pos <> Array.length toks then corrupt Trailing_tokens;
    Ok
      {
        next_pos;
        placements;
        offline;
        fault =
          (if draws < 0 then None
           else Some (draws, failures_left, kill_countdown));
        serve;
      }
  with Corrupt c -> Error c

let create path = { oc = open_out path; commits = 0 }

(* A corrupt record is dropped together with everything after it — the
   torn-tail treatment generalised. A record that fails its checksum or
   parse mid-file means the file itself is damaged (not just cut short by
   a crash), so later records cannot be trusted as the true history: the
   resume point is the last commit *before* the corruption. Valid-looking
   commits discarded from the suffix are counted separately so a recovery
   report can distinguish "torn tail" from "lost real history". *)
let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let records = ref [] in
    (try
       while true do
         records := decode (input_line ic) :: !records
       done
     with End_of_file -> ());
    close_in ic;
    let rec prefix acc = function
      | [] -> List.rev acc
      | Ok c :: rest -> prefix (c :: acc) rest
      | Error _ :: rest ->
          Obs.incr c_corrupt;
          List.iter
            (function Ok _ -> Obs.incr c_dropped | Error _ -> Obs.incr c_corrupt)
            rest;
          List.rev acc
    in
    prefix [] (List.rev !records)
  end

let last path =
  match List.rev (load path) with [] -> None | c :: _ -> Some c

let open_append path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { oc; commits = List.length (load path) }

let append t commit =
  output_string t.oc (encode commit);
  output_char t.oc '\n';
  flush t.oc;
  t.commits <- t.commits + 1;
  Obs.incr c_commits

let commits t = t.commits
let close t = close_out t.oc

let placement_fingerprint placements =
  List.sort compare placements
  |> List.fold_left
       (fun acc (cid, mid) -> (acc * 1_000_003) + (cid * 8191) + mid)
       0
