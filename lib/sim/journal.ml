(* Append-only batch-commit journal. One text line per committed wave,
   carrying everything needed to resume the replay as if the crash never
   happened: the full placement map (placements move across batches via
   migration/preemption/drain, so per-wave deltas would not reconstruct
   the state), the offline machine set, and the fault stream position
   (the splitmix64 draw count — see Fault — plus the failure budget and
   kill countdown). Each line ends in a checksum so a record half-written
   at the moment of death is detected and dropped rather than trusted. *)

type commit = {
  next_pos : int;
  placements : (Container.id * Machine.id) list;
  offline : Machine.id list;
  fault : (int * int * int) option;
}

type t = { oc : out_channel; mutable commits : int }

let c_commits = Obs.counter "journal.commits"

let checksum s =
  let h = ref 5381 in
  String.iter
    (fun ch -> h := (((!h lsl 5) + !h) + Char.code ch) land 0x3FFFFFFF)
    s;
  !h

let encode c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "C %d F" c.next_pos);
  (match c.fault with
  | Some (draws, failures_left, kill_countdown) ->
      Buffer.add_string buf
        (Printf.sprintf " %d %d %d" draws failures_left kill_countdown)
  | None -> Buffer.add_string buf " -1 0 0");
  Buffer.add_string buf (Printf.sprintf " O %d" (List.length c.offline));
  List.iter
    (fun mid -> Buffer.add_string buf (Printf.sprintf " %d" mid))
    c.offline;
  Buffer.add_string buf (Printf.sprintf " P %d" (List.length c.placements));
  List.iter
    (fun (cid, mid) -> Buffer.add_string buf (Printf.sprintf " %d %d" cid mid))
    c.placements;
  let body = Buffer.contents buf in
  Printf.sprintf "%s # %d" body (checksum body)

let decode line =
  match String.rindex_opt line '#' with
  | None -> None
  | Some i when i < 1 || line.[i - 1] <> ' ' -> None
  | Some i -> (
      let body = String.sub line 0 (i - 1) in
      let tail = String.sub line (i + 1) (String.length line - i - 1) in
      match int_of_string_opt (String.trim tail) with
      | Some h when h = checksum body -> (
          let toks =
            String.split_on_char ' ' body
            |> List.filter (fun s -> s <> "")
            |> Array.of_list
          in
          let pos = ref 0 in
          let next () =
            let t = toks.(!pos) in
            incr pos;
            t
          in
          let int () = int_of_string (next ()) in
          let expect kw =
            if next () <> kw then failwith "journal keyword mismatch"
          in
          try
            expect "C";
            let next_pos = int () in
            expect "F";
            let draws = int () in
            let failures_left = int () in
            let kill_countdown = int () in
            expect "O";
            let no = int () in
            let offline = List.init no (fun _ -> int ()) in
            expect "P";
            let np = int () in
            let placements =
              List.init np (fun _ ->
                  let cid = int () in
                  (cid, int ()))
            in
            if !pos <> Array.length toks then None
            else
              Some
                {
                  next_pos;
                  placements;
                  offline;
                  fault =
                    (if draws < 0 then None
                     else Some (draws, failures_left, kill_countdown));
                }
          with _ -> None)
      | _ -> None)

let create path = { oc = open_out path; commits = 0 }

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let commits = ref [] in
    (try
       while true do
         match decode (input_line ic) with
         | Some c -> commits := c :: !commits
         | None -> () (* torn or corrupt record: skip, keep scanning *)
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !commits
  end

let last path =
  match List.rev (load path) with [] -> None | c :: _ -> Some c

let open_append path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { oc; commits = List.length (load path) }

let append t commit =
  output_string t.oc (encode commit);
  output_char t.oc '\n';
  flush t.oc;
  t.commits <- t.commits + 1;
  Obs.incr c_commits

let commits t = t.commits
let close t = close_out t.oc

let placement_fingerprint placements =
  List.sort compare placements
  |> List.fold_left
       (fun acc (cid, mid) -> (acc * 1_000_003) + (cid * 8191) + mid)
       0
