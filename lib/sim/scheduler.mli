(** The interface every scheduler in this repository implements, and the
    outcome record the evaluation metrics are computed from.

    A scheduler receives a mutable {!Cluster.t} (it may already host
    containers from earlier batches) and a submission batch; it deploys what
    it can by mutating the cluster and reports the rest. *)

type outcome = {
  placed : (Container.id * Machine.id) list;
      (** final placements made for this batch *)
  undeployed : Container.t list;
      (** batch containers left unscheduled — the Fig. 9 quality metric *)
  violations : Violation.t list;
      (** constraint violations the scheduler *tolerated* *)
  migrations : int;  (** container moves performed (Fig. 13(b)) *)
  preemptions : int; (** evictions performed *)
  rounds : int;      (** internal scheduling rounds/iterations used *)
}

type t = {
  name : string;
  schedule : Cluster.t -> Container.t array -> outcome;
}

val empty_outcome : outcome
val merge : outcome -> outcome -> outcome
(** Concatenates placements/violations and sums the counters. *)

val undeployed_count : outcome -> int
val pp_outcome : Format.formatter -> outcome -> unit

val reject_outcome : Container.t array -> outcome
(** The whole batch reported undeployed, nothing else touched. *)

(** {2 Middleware}

    Combinators layering the concerns every scheduler shares, so the
    schedulers themselves only implement placement. Conventional stack,
    innermost first:
    {[
      base |> with_faults ~label |> with_transaction ~prefix ~recoverable
           |> with_obs ~prefix
    ]}
    — the fault probe sits inside the transaction so a tripped batch is
    restored and rejected instead of crashing the run. *)

val with_obs : prefix:string -> t -> t
(** Per-batch observability: [<prefix>.batches] / [.containers_placed] /
    [.containers_undeployed] counters and a [<prefix>.batch_ns] latency
    histogram around each [schedule] call. *)

val with_faults : label:string -> t -> t
(** Fault-harness probe at batch entry ({!Fault.trip_solver_step} under
    [label]); a no-op unless a fault config is installed. *)

val faults_recoverable : exn -> bool
(** True exactly for {!Fault.Injected} — the [recoverable] predicate for
    schedulers with no typed error channel of their own. *)

val with_transaction :
  prefix:string -> recoverable:(exn -> bool) -> ?fallback:(unit -> t) -> t -> t
(** Transactional batches: placements are snapshotted before the inner
    scheduler runs; a [recoverable] exception restores them and either
    retries once on the scheduler built by [fallback] (counted in
    [<prefix>.fallback_to_cold]) or rejects the batch wholesale
    ([<prefix>.rejected_batches], all containers undeployed). Containers
    whose machine vanished mid-restore are counted in
    [<prefix>.restore_drops]. Anything non-recoverable propagates. *)

val with_deadline :
  ?deadline_ms:float -> ?shed:bool -> (string * t) list -> t
(** Deadline-bounded degradation ladder over the labelled rung schedulers,
    ordered best-first. Each batch: arm a fresh ambient
    {!Flownet.Deadline} of [deadline_ms] (default [ALADDIN_DEADLINE_MS];
    no deadline → the first rung runs unbounded) and run the rung; on
    {!Flownet.Deadline.Expired} restore the pre-batch snapshot and
    escalate to the next rung ([ladder.escalations],
    [ladder.restore_drops]). When every rung has expired and [shed] is on
    (default), admission control sheds the lowest-priority half of the
    batch ([ladder.shed_containers], reported undeployed) and restarts the
    ladder on the remainder, so every batch completes — under a zero
    budget the outcome degenerates to all-undeployed rather than a hang
    or a crash. The winning rung's [ladder.rung.<label>] counter is
    incremented per batch.

    Rung [recoverable] predicates must NOT treat
    {!Flownet.Deadline.Expired} as recoverable, or their transaction
    middleware would swallow the escalation signal. *)
