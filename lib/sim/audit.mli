(** Post-batch invariant auditor: re-derives the placement invariants from
    raw cluster state after every batch, quarantines violating placements
    and repairs them, so one corrupted batch cannot silently poison the
    rest of a run.

    Invariants checked, each from first principles (machine container
    lists, raw demand vectors, the constraint set) rather than from the
    incrementally maintained bookkeeping the schedulers trust:

    - {b capacity}: per-dimension demand sums within machine capacity;
    - {b anti-affinity}: no conflicting pair (within or across apps)
      shares a machine;
    - {b liveness}: no container sits on an offline machine;
    - {b conservation}: every batch container is placed or reported
      undeployed, exactly once;
    - {b priority} (batch-scoped): no undeployed container of strictly
      higher priority would fit on the machine a lower-priority batch
      container received.

    Counters: [audit.batches], [audit.violations] (found),
    [audit.repairs] (repair actions), [audit.unrepaired] (still violated
    after the repair passes — zero in a healthy run). *)

type violation =
  | Capacity_overrun of { machine : Machine.id; container : Container.t }
  | Anti_affinity of {
      machine : Machine.id;
      container : Container.t;
      conflict : Application.id;
    }
  | Offline_placement of { machine : Machine.id; container : Container.t }
  | Lost_container of { container : Container.t }
  | Priority_inversion of {
      machine : Machine.id;
      blocked : Container.t;   (** undeployed, higher priority *)
      victim : Container.t;    (** placed, lower priority, seat fits *)
    }

val pp_violation : Format.formatter -> violation -> unit

val check :
  Cluster.t ->
  batch:Container.t array ->
  outcome:Scheduler.outcome ->
  violation list
(** Pure detection — no mutation, deterministic order (by machine id, then
    the conservation and priority sweeps). *)

val default_place : Cluster.t -> Container.t -> Machine.id option
(** First admissible machine by id — the fallback re-placement policy.
    Core layers plug a migration-powered policy instead. *)

val run :
  ?max_passes:int ->
  ?place:(Cluster.t -> Container.t -> Machine.id option) ->
  Cluster.t ->
  batch:Container.t array ->
  outcome:Scheduler.outcome ->
  Scheduler.outcome * violation list
(** Check-repair passes (at most [max_passes], default 3) until clean:
    violating placements are evicted and re-placed through [place]
    (default {!default_place}; the policy may itself migrate other
    containers to make room, as long as the returned machine is
    admissible), and containers with no seat left are folded into the
    outcome's [undeployed]. Returns the amended outcome — [placed] and
    [undeployed] re-derived from the post-repair cluster — and any
    violations still standing (counted under [audit.unrepaired]). *)

val wrap :
  ?max_passes:int ->
  ?place:(Cluster.t -> Container.t -> Machine.id option) ->
  Scheduler.t ->
  Scheduler.t
(** Middleware: audit-and-repair after every batch, outermost in the
    stack (outside the transaction, so it sees exactly the state the
    batch committed). *)
