(** Trace replay: feed a workload's containers to a scheduler (optionally in
    arrival batches) against a fresh or existing cluster, timing the
    placement decisions the way the paper does — RPCs and task execution
    are outside the measured region. *)

type run = {
  scheduler : string;
  outcome : Scheduler.outcome;
  elapsed_s : float;            (** wall-clock of scheduling code only *)
  n_submitted : int;
  cluster : Cluster.t;          (** final state, for utilization metrics *)
}

val run :
  ?batch:int ->
  ?journal:Journal.t ->
  ?resume:Journal.commit ->
  Scheduler.t ->
  cluster:Cluster.t ->
  containers:Container.t array ->
  run
(** [batch] splits the submission into waves of that size (default: one
    wave with everything, the paper's simultaneous-arrival setting).
    Timing uses a monotonic clock, so NTP steps cannot skew [elapsed_s].

    When a {!Fault} configuration is installed, each wave may be preceded
    by a machine revocation (the machine goes offline and its containers
    rejoin the wave, counted under [replay.machine_revocations]), and an
    injected failure escaping the scheduler marks the wave undeployed
    ([replay.failed_batches]) instead of aborting the replay.

    With [?journal], every completed wave appends a {!Journal.commit}
    (then probes {!Fault.trip_process_kill}, whose [Killed] exception
    escapes this driver by design — crash drills must look like
    crashes). With [?resume], the cluster, offline set, fault stream and
    wave position are rebuilt from the commit before the loop starts
    ([journal.resumes]); the returned [outcome] then covers only the
    waves run after the resume point, while the final cluster placements
    match an uninterrupted run exactly. *)

val run_workload :
  ?batch:int ->
  ?order:Arrival.order ->
  Scheduler.t ->
  Workload.t ->
  n_machines:int ->
  run
(** Convenience: build a homogeneous cluster from the workload's machine
    shape and replay all containers in the given order. *)

val per_container_ms : run -> float
(** Eq. 11: average placement latency per container, in milliseconds. *)
