(** Trace replay: feed a workload's containers to a scheduler (optionally in
    arrival batches) against a fresh or existing cluster, timing the
    placement decisions the way the paper does — RPCs and task execution
    are outside the measured region. *)

type run = {
  scheduler : string;
  outcome : Scheduler.outcome;
  elapsed_s : float;            (** wall-clock of scheduling code only *)
  n_submitted : int;
  cluster : Cluster.t;          (** final state, for utilization metrics *)
}

val run :
  ?batch:int ->
  Scheduler.t ->
  cluster:Cluster.t ->
  containers:Container.t array ->
  run
(** [batch] splits the submission into waves of that size (default: one
    wave with everything, the paper's simultaneous-arrival setting).
    Timing uses a monotonic clock, so NTP steps cannot skew [elapsed_s].

    When a {!Fault} configuration is installed, each wave may be preceded
    by a machine revocation (the machine goes offline and its containers
    rejoin the wave, counted under [replay.machine_revocations]), and an
    injected failure escaping the scheduler marks the wave undeployed
    ([replay.failed_batches]) instead of aborting the replay. *)

val run_workload :
  ?batch:int ->
  ?order:Arrival.order ->
  Scheduler.t ->
  Workload.t ->
  n_machines:int ->
  run
(** Convenience: build a homogeneous cluster from the workload's machine
    shape and replay all containers in the given order. *)

val per_container_ms : run -> float
(** Eq. 11: average placement latency per container, in milliseconds. *)
