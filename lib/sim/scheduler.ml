type outcome = {
  placed : (Container.id * Machine.id) list;
  undeployed : Container.t list;
  violations : Violation.t list;
  migrations : int;
  preemptions : int;
  rounds : int;
}

type t = {
  name : string;
  schedule : Cluster.t -> Container.t array -> outcome;
}

let empty_outcome =
  {
    placed = [];
    undeployed = [];
    violations = [];
    migrations = 0;
    preemptions = 0;
    rounds = 0;
  }

let merge a b =
  {
    placed = a.placed @ b.placed;
    undeployed = a.undeployed @ b.undeployed;
    violations = a.violations @ b.violations;
    migrations = a.migrations + b.migrations;
    preemptions = a.preemptions + b.preemptions;
    rounds = a.rounds + b.rounds;
  }

let undeployed_count o = List.length o.undeployed

let reject_outcome batch = { empty_outcome with undeployed = Array.to_list batch }

(* ---- Middleware ------------------------------------------------------- *)
(* Combinators [t -> t] layering the cross-cutting concerns every scheduler
   wants — obs timing, fault-injection probes, transactional batches — so
   the schedulers themselves only implement placement. Conventional stack,
   innermost first: with_faults (probe inside the transaction, so a tripped
   batch is rejected, not crashed), with_transaction, with_obs. *)

let with_obs ~prefix t =
  let h_batch = Obs.histogram (prefix ^ ".batch_ns") in
  let c_batches = Obs.counter (prefix ^ ".batches") in
  let c_placed = Obs.counter (prefix ^ ".containers_placed") in
  let c_undeployed = Obs.counter (prefix ^ ".containers_undeployed") in
  let schedule cluster batch =
    Obs.incr c_batches;
    let t0 = Obs.now_ns () in
    let o = t.schedule cluster batch in
    Obs.observe_ns h_batch (Int64.sub (Obs.now_ns ()) t0);
    Obs.add c_placed (List.length o.placed);
    Obs.add c_undeployed (List.length o.undeployed);
    o
  in
  { t with schedule }

let with_faults ~label t =
  {
    t with
    schedule =
      (fun cluster batch ->
        Fault.trip_solver_step label;
        t.schedule cluster batch);
  }

let faults_recoverable = function Fault.Injected _ -> true | _ -> false

(* Pre-batch placements, as (container, machine) so they can be replayed. *)
let snapshot cluster =
  List.filter_map
    (fun (cid, mid) ->
      Option.map (fun c -> (c, mid)) (Cluster.container cluster cid))
    (Cluster.placements cluster)

let restore ~on_drop cluster snap =
  Cluster.reset cluster;
  List.iter
    (fun (c, mid) ->
      match Cluster.place ~force:true cluster c mid with
      | Ok () -> ()
      | Error _ ->
          (* Only possible if the machine itself vanished or shrank since
             the snapshot (e.g. a revocation landing mid-restore); the
             container is genuinely displaced. Count it, keep restoring. *)
          on_drop ())
    snap

let with_transaction ~prefix ~recoverable ?fallback t =
  let c_fallback = Obs.counter (prefix ^ ".fallback_to_cold") in
  let c_rejected = Obs.counter (prefix ^ ".rejected_batches") in
  let c_drops = Obs.counter (prefix ^ ".restore_drops") in
  let schedule cluster batch =
    let snap = snapshot cluster in
    let restore () = restore ~on_drop:(fun () -> Obs.incr c_drops) cluster snap in
    let reject () =
      Obs.incr c_rejected;
      restore ();
      reject_outcome batch
    in
    match t.schedule cluster batch with
    | outcome -> outcome
    | exception e when recoverable e -> (
        restore ();
        match fallback with
        | None ->
            Obs.incr c_rejected;
            reject_outcome batch
        | Some mk -> (
            (* The fallback builds a replacement scheduler for the retry —
               typically the same algorithm with suspect warm state dropped —
               and the batch runs once more on the restored cluster. *)
            Obs.incr c_fallback;
            match (mk ()).schedule cluster batch with
            | outcome -> outcome
            | exception e when recoverable e -> reject ()))
  in
  { t with schedule }

(* ---- Degradation ladder ----------------------------------------------- *)
(* Every rung attempt runs under a fresh ambient deadline; expiry surfaces
   as Flownet.Deadline.Expired (deliberately NOT in any rung's [recoverable]
   predicate, so it passes through the rung's own with_transaction without
   being swallowed), the snapshot is restored, and the next rung tries.
   When the whole ladder is exhausted the admission-control knob sheds the
   lowest-priority half of the batch and restarts the ladder from the top —
   the preferred solver gets first shot at the smaller batch — so every
   batch terminates with an outcome even under a zero budget. *)

(* Registered at module init (not ladder construction) so the counters are
   present — at zero — in every obs dump, deadline-bounded run or not. *)
let c_ladder_escalations = Obs.counter "ladder.escalations"
let c_ladder_shed = Obs.counter "ladder.shed_containers"
let c_ladder_drops = Obs.counter "ladder.restore_drops"

let with_deadline ?deadline_ms ?(shed = true) rungs =
  if rungs = [] then invalid_arg "Scheduler.with_deadline: empty ladder";
  let c_escalations = c_ladder_escalations in
  let c_shed = c_ladder_shed in
  let c_drops = c_ladder_drops in
  let rungs =
    List.map
      (fun (label, r) -> (r, Obs.counter ("ladder.rung." ^ label)))
      rungs
  in
  let budget () =
    match deadline_ms with
    | Some ms -> Some (Flownet.Deadline.make ~wall_ms:ms ())
    | None ->
        Option.map
          (fun ms -> Flownet.Deadline.make ~wall_ms:ms ())
          (Flownet.Deadline.of_env ())
  in
  let schedule cluster batch =
    let snap = snapshot cluster in
    let restore () = restore ~on_drop:(fun () -> Obs.incr c_drops) cluster snap in
    let attempt rung batch =
      match budget () with
      | None -> rung.schedule cluster batch
      | Some d ->
          Flownet.Deadline.with_ambient d (fun () -> rung.schedule cluster batch)
    in
    let rec ladder batch shed_acc = function
      | (rung, c_rung) :: rest -> (
          match attempt rung batch with
          | o ->
              Obs.incr c_rung;
              { o with undeployed = o.undeployed @ shed_acc }
          | exception Flownet.Deadline.Expired _ ->
              Obs.incr c_escalations;
              restore ();
              ladder batch shed_acc rest)
      | [] when shed && Array.length batch > 0 ->
          (* Highest priority first; ties keep earlier arrivals. *)
          let order = Array.copy batch in
          Array.sort
            (fun (a : Container.t) (b : Container.t) ->
              match compare b.priority a.priority with
              | 0 -> compare a.arrival b.arrival
              | c -> c)
            order;
          let keep_n = Array.length order / 2 in
          let kept = Array.sub order 0 keep_n in
          let dropped =
            Array.to_list (Array.sub order keep_n (Array.length order - keep_n))
          in
          Obs.add c_shed (List.length dropped);
          ladder kept (dropped @ shed_acc) rungs
      | [] -> { empty_outcome with undeployed = Array.to_list batch @ shed_acc }
    in
    ladder batch [] rungs
  in
  let name =
    "ladder(" ^ String.concat "," (List.map (fun (r, _) -> r.name) rungs) ^ ")"
  in
  { name; schedule }

let pp_outcome ppf o =
  Format.fprintf ppf
    "placed=%d undeployed=%d violations=%d (anti=%d) migrations=%d \
     preemptions=%d rounds=%d"
    (List.length o.placed) (List.length o.undeployed)
    (List.length o.violations)
    (Violation.count_anti_affinity o.violations)
    o.migrations o.preemptions o.rounds
