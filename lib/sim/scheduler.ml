type outcome = {
  placed : (Container.id * Machine.id) list;
  undeployed : Container.t list;
  violations : Violation.t list;
  migrations : int;
  preemptions : int;
  rounds : int;
}

type t = {
  name : string;
  schedule : Cluster.t -> Container.t array -> outcome;
}

let empty_outcome =
  {
    placed = [];
    undeployed = [];
    violations = [];
    migrations = 0;
    preemptions = 0;
    rounds = 0;
  }

let merge a b =
  {
    placed = a.placed @ b.placed;
    undeployed = a.undeployed @ b.undeployed;
    violations = a.violations @ b.violations;
    migrations = a.migrations + b.migrations;
    preemptions = a.preemptions + b.preemptions;
    rounds = a.rounds + b.rounds;
  }

let undeployed_count o = List.length o.undeployed

let reject_outcome batch = { empty_outcome with undeployed = Array.to_list batch }

(* ---- Middleware ------------------------------------------------------- *)
(* Combinators [t -> t] layering the cross-cutting concerns every scheduler
   wants — obs timing, fault-injection probes, transactional batches — so
   the schedulers themselves only implement placement. Conventional stack,
   innermost first: with_faults (probe inside the transaction, so a tripped
   batch is rejected, not crashed), with_transaction, with_obs. *)

let with_obs ~prefix t =
  let h_batch = Obs.histogram (prefix ^ ".batch_ns") in
  let c_batches = Obs.counter (prefix ^ ".batches") in
  let c_placed = Obs.counter (prefix ^ ".containers_placed") in
  let c_undeployed = Obs.counter (prefix ^ ".containers_undeployed") in
  let schedule cluster batch =
    Obs.incr c_batches;
    let t0 = Obs.now_ns () in
    let o = t.schedule cluster batch in
    Obs.observe_ns h_batch (Int64.sub (Obs.now_ns ()) t0);
    Obs.add c_placed (List.length o.placed);
    Obs.add c_undeployed (List.length o.undeployed);
    o
  in
  { t with schedule }

let with_faults ~label t =
  {
    t with
    schedule =
      (fun cluster batch ->
        Fault.trip_solver_step label;
        t.schedule cluster batch);
  }

let faults_recoverable = function Fault.Injected _ -> true | _ -> false

(* Pre-batch placements, as (container, machine) so they can be replayed. *)
let snapshot cluster =
  List.filter_map
    (fun (cid, mid) ->
      Option.map (fun c -> (c, mid)) (Cluster.container cluster cid))
    (Cluster.placements cluster)

let restore ~on_drop cluster snap =
  Cluster.reset cluster;
  List.iter
    (fun (c, mid) ->
      match Cluster.place ~force:true cluster c mid with
      | Ok () -> ()
      | Error _ ->
          (* Only possible if the machine itself vanished or shrank since
             the snapshot (e.g. a revocation landing mid-restore); the
             container is genuinely displaced. Count it, keep restoring. *)
          on_drop ())
    snap

let with_transaction ~prefix ~recoverable ?fallback t =
  let c_fallback = Obs.counter (prefix ^ ".fallback_to_cold") in
  let c_rejected = Obs.counter (prefix ^ ".rejected_batches") in
  let c_drops = Obs.counter (prefix ^ ".restore_drops") in
  let schedule cluster batch =
    let snap = snapshot cluster in
    let restore () = restore ~on_drop:(fun () -> Obs.incr c_drops) cluster snap in
    let reject () =
      Obs.incr c_rejected;
      restore ();
      reject_outcome batch
    in
    match t.schedule cluster batch with
    | outcome -> outcome
    | exception e when recoverable e -> (
        restore ();
        match fallback with
        | None ->
            Obs.incr c_rejected;
            reject_outcome batch
        | Some mk -> (
            (* The fallback builds a replacement scheduler for the retry —
               typically the same algorithm with suspect warm state dropped —
               and the batch runs once more on the restored cluster. *)
            Obs.incr c_fallback;
            match (mk ()).schedule cluster batch with
            | outcome -> outcome
            | exception e when recoverable e -> reject ()))
  in
  { t with schedule }

let pp_outcome ppf o =
  Format.fprintf ppf
    "placed=%d undeployed=%d violations=%d (anti=%d) migrations=%d \
     preemptions=%d rounds=%d"
    (List.length o.placed) (List.length o.undeployed)
    (List.length o.violations)
    (Violation.count_anti_affinity o.violations)
    o.migrations o.preemptions o.rounds
