type run = {
  scheduler : string;
  outcome : Scheduler.outcome;
  elapsed_s : float;
  n_submitted : int;
  cluster : Cluster.t;
}

let c_revocations = Obs.counter "replay.machine_revocations"
let c_failed_batches = Obs.counter "replay.failed_batches"
let c_resumes = Obs.counter "journal.resumes"
let c_resume_drops = Obs.counter "journal.resume_drops"

(* Monotonic wall-clock for the measured region: gettimeofday is subject to
   NTP steps, which can make a wave appear to take negative (or wildly
   long) time and skew the per-container latency. *)
let now_s () = Int64.to_float (Obs.now_ns ()) *. 1e-9

(* Between waves, the fault harness may revoke a machine: it goes offline
   and its containers are drained back into the incoming wave, like a
   hardware failure landing between scheduling rounds. *)
let apply_revocation cluster wave =
  match
    Fault.pick_revocation
      ~is_offline:(Cluster.is_offline cluster)
      ~n_machines:(Cluster.n_machines cluster) ()
  with
  | None -> wave
  | Some mid ->
      Obs.incr c_revocations;
      Cluster.set_offline cluster mid true;
      let displaced = Cluster.drain cluster mid in
      if displaced = [] then wave
      else Array.append wave (Array.of_list displaced)

(* Rebuild the cluster a journal commit describes. Containers are looked
   up in the submission array (drained/evicted containers keep their
   identity, so every placed id resolves there); a placement whose
   machine no longer admits it — impossible unless the topology changed
   between runs — is counted under [journal.resume_drops] rather than
   aborting the resume. *)
let restore_commit cluster ~containers (c : Journal.commit) =
  Obs.incr c_resumes;
  let by_id = Hashtbl.create (Array.length containers) in
  Array.iter
    (fun (ct : Container.t) -> Hashtbl.replace by_id ct.Container.id ct)
    containers;
  Cluster.reset cluster;
  List.iter
    (fun mid -> Cluster.set_offline cluster mid false)
    (List.init (Cluster.n_machines cluster) (fun i -> i));
  List.iter
    (fun (cid, mid) ->
      match Hashtbl.find_opt by_id cid with
      | Some ct -> (
          match Cluster.place ~force:true cluster ct mid with
          | Ok () -> ()
          | Error _ -> Obs.incr c_resume_drops)
      | None -> Obs.incr c_resume_drops)
    c.Journal.placements;
  List.iter (fun mid -> Cluster.set_offline cluster mid true) c.Journal.offline;
  (match c.Journal.fault with
  | Some (draws, failures_left, _kill_countdown) when Fault.active () ->
      Fault.fast_forward ~draws ~failures_left ()
  | _ -> ());
  c.Journal.next_pos

let offline_set cluster =
  List.filter
    (Cluster.is_offline cluster)
    (List.init (Cluster.n_machines cluster) (fun i -> i))

let run ?batch ?journal ?resume (sched : Scheduler.t) ~cluster ~containers =
  let n = Array.length containers in
  let batch = match batch with Some b when b > 0 -> b | _ -> max n 1 in
  let outcome = ref Scheduler.empty_outcome in
  let elapsed = ref 0. in
  let pos = ref 0 in
  (match resume with
  | Some commit -> pos := restore_commit cluster ~containers commit
  | None -> ());
  while !pos < n do
    let len = min batch (n - !pos) in
    let wave = Array.sub containers !pos len in
    let wave = if Fault.active () then apply_revocation cluster wave else wave in
    let t0 = now_s () in
    let o =
      match sched.Scheduler.schedule cluster wave with
      | o -> o
      | exception Fault.Injected _ when Fault.active () ->
          (* A scheduler without its own recovery layer let an injected
             failure escape: report the whole wave undeployed and keep the
             replay going — the driver must outlive its schedulers. *)
          Obs.incr c_failed_batches;
          { Scheduler.empty_outcome with undeployed = Array.to_list wave }
    in
    elapsed := !elapsed +. (now_s () -. t0);
    outcome := Scheduler.merge !outcome o;
    pos := !pos + len;
    match journal with
    | None -> ()
    | Some j ->
        Journal.append j
          {
            Journal.next_pos = !pos;
            placements = Cluster.placements cluster;
            offline = offline_set cluster;
            fault = Fault.stream_position ();
            serve = None;
          };
        (* The simulated process death sits just after the commit: the
           wave that finished is durable, everything after it is lost.
           Fault.Killed escapes this driver by design. *)
        Fault.trip_process_kill "replay.batch_commit"
  done;
  {
    scheduler = sched.Scheduler.name;
    outcome = !outcome;
    elapsed_s = !elapsed;
    n_submitted = n;
    cluster;
  }

let run_workload ?batch ?(order = Arrival.As_submitted) sched w ~n_machines =
  let w = Arrival.apply order w in
  let cluster =
    Cluster.create
      (Workload.topology w ~n_machines)
      ~constraints:(Workload.constraint_set w)
  in
  run ?batch sched ~cluster ~containers:w.Workload.containers

let per_container_ms r =
  if r.n_submitted = 0 then 0.
  else 1000. *. r.elapsed_s /. float_of_int r.n_submitted
