type run = {
  scheduler : string;
  outcome : Scheduler.outcome;
  elapsed_s : float;
  n_submitted : int;
  cluster : Cluster.t;
}

let c_revocations = Obs.counter "replay.machine_revocations"
let c_failed_batches = Obs.counter "replay.failed_batches"

(* Monotonic wall-clock for the measured region: gettimeofday is subject to
   NTP steps, which can make a wave appear to take negative (or wildly
   long) time and skew the per-container latency. *)
let now_s () = Int64.to_float (Obs.now_ns ()) *. 1e-9

(* Between waves, the fault harness may revoke a machine: it goes offline
   and its containers are drained back into the incoming wave, like a
   hardware failure landing between scheduling rounds. *)
let apply_revocation cluster wave =
  match Fault.pick_revocation ~n_machines:(Cluster.n_machines cluster) with
  | None -> wave
  | Some mid ->
      Obs.incr c_revocations;
      Cluster.set_offline cluster mid true;
      let displaced = Cluster.drain cluster mid in
      if displaced = [] then wave
      else Array.append wave (Array.of_list displaced)

let run ?batch (sched : Scheduler.t) ~cluster ~containers =
  let n = Array.length containers in
  let batch = match batch with Some b when b > 0 -> b | _ -> max n 1 in
  let outcome = ref Scheduler.empty_outcome in
  let elapsed = ref 0. in
  let pos = ref 0 in
  while !pos < n do
    let len = min batch (n - !pos) in
    let wave = Array.sub containers !pos len in
    let wave = if Fault.active () then apply_revocation cluster wave else wave in
    let t0 = now_s () in
    let o =
      match sched.Scheduler.schedule cluster wave with
      | o -> o
      | exception Fault.Injected _ when Fault.active () ->
          (* A scheduler without its own recovery layer let an injected
             failure escape: report the whole wave undeployed and keep the
             replay going — the driver must outlive its schedulers. *)
          Obs.incr c_failed_batches;
          { Scheduler.empty_outcome with undeployed = Array.to_list wave }
    in
    elapsed := !elapsed +. (now_s () -. t0);
    outcome := Scheduler.merge !outcome o;
    pos := !pos + len
  done;
  {
    scheduler = sched.Scheduler.name;
    outcome = !outcome;
    elapsed_s = !elapsed;
    n_submitted = n;
    cluster;
  }

let run_workload ?batch ?(order = Arrival.As_submitted) sched w ~n_machines =
  let w = Arrival.apply order w in
  let cluster =
    Cluster.create
      (Workload.topology w ~n_machines)
      ~constraints:(Workload.constraint_set w)
  in
  run ?batch sched ~cluster ~containers:w.Workload.containers

let per_container_ms r =
  if r.n_submitted = 0 then 0.
  else 1000. *. r.elapsed_s /. float_of_int r.n_submitted
