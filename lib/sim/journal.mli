(** Append-only crash-recovery journal for batch replays.

    {!Replay.run} appends one {!commit} after every completed wave; a run
    killed mid-flight (e.g. by {!Fault.trip_process_kill}) resumes from
    the {!last} committed record and provably reproduces the placements
    of an uninterrupted run, because a commit carries the {e entire}
    resumable state:

    - the full placement map (not per-wave deltas — migrations,
      preemptions and drains move containers across waves);
    - the offline machine set;
    - the fault stream position (splitmix64 draw count, failure budget,
      kill countdown), so the resumed fault schedule continues exactly
      where the dead process left it.

    Records are single text lines ending in a checksum. A line torn by
    the crash fails the checksum; any undecodable record — bad checksum,
    keyword mismatch, truncated or non-numeric field — is a typed
    {!corruption}, and {!load} drops it {e together with every record
    after it}: a mid-file corruption means the file is damaged, so the
    suffix cannot be trusted as true history and the resume point is the
    last commit before the damage. Counters: [journal.commits],
    [journal.corrupt_records] (undecodable lines),
    [journal.dropped_commits] (valid-looking commits discarded from a
    corrupt suffix), and [journal.resumes] / [journal.resume_drops],
    incremented by the resuming {!Replay.run}. *)

type commit = {
  next_pos : int;  (** submission index of the first wave still to run *)
  placements : (Container.id * Machine.id) list;
  offline : Machine.id list;
  fault : (int * int * int) option;
      (** [(draws, failures_left, kill_countdown)] from
          {!Fault.stream_position}; [None] when no fault config was
          installed *)
  serve : (int * int) option;
      (** serving-runner commits only: [(requests in the batch, failed
          flag)] — enough for {!Serve.Runner} to rebuild per-batch request
          accounting on resume. Encoded as an optional [S] section, so
          journals written before it existed still decode ([None]). *)
}

type corruption =
  | Bad_checksum      (** torn tail, mangled body, or a non-record line *)
  | Bad_keyword of { expected : string; got : string }
      (** framing keyword ([C]/[F]/[O]/[P]) out of place — previously a
          bare [failwith] that defeated crash recovery *)
  | Bad_field of string  (** truncated record or non-numeric field *)
  | Trailing_tokens      (** spliced line: valid prefix, extra tokens *)

val pp_corruption : Format.formatter -> corruption -> unit

val decode : string -> (commit, corruption) result
(** Parse one journal line. Never raises — every malformation is a typed
    [Error]. *)

type t
(** An open journal sink. *)

val create : string -> t
(** Open for writing, truncating any previous journal at that path. *)

val open_append : string -> t
(** Open for appending after a resume, keeping the committed prefix. *)

val append : t -> commit -> unit
(** Write one commit record and flush it to the OS — after [append]
    returns, a process kill cannot lose that wave. *)

val commits : t -> int
val close : t -> unit

val load : string -> commit list
(** The trustworthy prefix, in order: commits up to (excluding) the first
    corrupt record; the corrupt record and everything after it are
    dropped and counted ([journal.corrupt_records] /
    [journal.dropped_commits]). A missing file is an empty journal. *)

val last : string -> commit option
(** The most recent trustworthy commit — the resume point. *)

val placement_fingerprint : (Container.id * Machine.id) list -> int
(** Order-insensitive fingerprint of a placement map (sorted fold), for
    equality assertions between resumed and uninterrupted runs. *)
