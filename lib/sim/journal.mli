(** Append-only crash-recovery journal for batch replays.

    {!Replay.run} appends one {!commit} after every completed wave; a run
    killed mid-flight (e.g. by {!Fault.trip_process_kill}) resumes from
    the {!last} committed record and provably reproduces the placements
    of an uninterrupted run, because a commit carries the {e entire}
    resumable state:

    - the full placement map (not per-wave deltas — migrations,
      preemptions and drains move containers across waves);
    - the offline machine set;
    - the fault stream position (splitmix64 draw count, failure budget,
      kill countdown), so the resumed fault schedule continues exactly
      where the dead process left it.

    Records are single text lines ending in a checksum; a line torn by
    the crash fails the checksum and is skipped on {!load}. Counters:
    [journal.commits] (and [journal.resumes], incremented by the
    resuming {!Replay.run}). *)

type commit = {
  next_pos : int;  (** submission index of the first wave still to run *)
  placements : (Container.id * Machine.id) list;
  offline : Machine.id list;
  fault : (int * int * int) option;
      (** [(draws, failures_left, kill_countdown)] from
          {!Fault.stream_position}; [None] when no fault config was
          installed *)
}

type t
(** An open journal sink. *)

val create : string -> t
(** Open for writing, truncating any previous journal at that path. *)

val open_append : string -> t
(** Open for appending after a resume, keeping the committed prefix. *)

val append : t -> commit -> unit
(** Write one commit record and flush it to the OS — after [append]
    returns, a process kill cannot lose that wave. *)

val commits : t -> int
val close : t -> unit

val load : string -> commit list
(** All valid commits, in order; a missing file is an empty journal and
    torn/corrupt lines are dropped. *)

val last : string -> commit option
(** The most recent valid commit — the resume point. *)

val placement_fingerprint : (Container.id * Machine.id) list -> int
(** Order-insensitive fingerprint of a placement map (sorted fold), for
    equality assertions between resumed and uninterrupted runs. *)
