type config = {
  cost_model : Cost_model.t;
  reschd : int;
  max_rounds : int;
  solver : string;
}

let default =
  {
    cost_model = Cost_model.Quincy;
    reschd = 4;
    max_rounds = 8;
    solver = Flownet.Registry.env_name ();
  }

let name c =
  Printf.sprintf "Firmament-%s(%d)" (Cost_model.name c.cost_model) c.reschd

let solve_hist = Obs.histogram "firmament.solve_ns"
let c_solves = Obs.counter "firmament.solves"
let c_rounds = Obs.counter "firmament.rounds"
let c_solver_errors = Obs.counter "firmament.solver_errors"

let backend config =
  match Flownet.Registry.find config.solver with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Firmament: unknown solver %S (known: %s)" config.solver
           (String.concat ", " (Flownet.Registry.names ())))

let slot_size_millis batch =
  if Array.length batch = 0 then 1000
  else begin
    let total =
      Array.fold_left
        (fun acc (c : Container.t) ->
          acc + (Resource.to_array c.Container.demand).(Resource.cpu_dim))
        0 batch
    in
    max 1 (total / Array.length batch)
  end

(* One scheduling round: solve the slot network, return per-machine quotas
   (how many pending tasks the flow routed to each machine). [penalty]
   carries the cost feedback from earlier rounds' conflicts — the
   multi-round mechanism that steers the flow away from machines where
   placements kept failing. *)
let solve_round config cluster ~n_pending ~slot ~penalty =
  let topo = Cluster.topology cluster in
  let nr = Topology.n_racks topo in
  let nn = Topology.n_machines topo in
  let source = 0 and sink = 1 and unsched = 2 and agg = 3 in
  let rv x = 4 + x in
  let nv y = 4 + nr + y in
  (* super source bounding total flow to the pending count, so both
     solvers can run to their natural max flow *)
  let super = 4 + nr + nn in
  let g =
    Flownet.Graph.create ~arc_hint:(6 + nr + (3 * nn)) (5 + nr + nn)
  in
  ignore (Flownet.Graph.add_arc g ~src:super ~dst:source ~cap:n_pending ~cost:0);
  ignore
    (Flownet.Graph.add_arc g ~src:source ~dst:agg ~cap:n_pending ~cost:0);
  ignore
    (Flownet.Graph.add_arc g ~src:source ~dst:unsched ~cap:n_pending
       ~cost:Cost_model.unscheduled_cost);
  ignore (Flownet.Graph.add_arc g ~src:unsched ~dst:sink ~cap:n_pending ~cost:0);
  for x = 0 to nr - 1 do
    ignore (Flownet.Graph.add_arc g ~src:agg ~dst:(rv x) ~cap:n_pending ~cost:0)
  done;
  let machine_arc = Array.make nn (-1) in
  for y = 0 to nn - 1 do
    let m = Cluster.machine cluster y in
    let free_cpu = (Resource.to_array (Machine.free m)).(Resource.cpu_dim) in
    let slots = free_cpu / slot in
    ignore
      (Flownet.Graph.add_arc g ~src:(rv (Topology.rack_of topo y)) ~dst:(nv y)
         ~cap:slots ~cost:0);
    machine_arc.(y) <-
      Flownet.Graph.add_arc g ~src:(nv y) ~dst:sink ~cap:slots
        ~cost:(Cost_model.machine_cost config.cost_model m + (5_000 * penalty.(y)))
  done;
  Obs.incr c_solves;
  let solved =
    Obs.time solve_hist (fun () ->
        match Flownet.Registry.solve (backend config) g ~src:super ~dst:sink with
        | Ok _ -> true
        | Error _ ->
            (* A failed solve yields no quotas for this round; the
               outer loop sees no progress and stops cleanly. *)
            Obs.incr c_solver_errors;
            false)
  in
  if not solved then Array.make nn 0
  else
    Array.map
      (fun arc -> if arc < 0 then 0 else Flownet.Graph.flow g arc)
      machine_arc

let schedule config cluster batch =
  let pending = ref (Array.to_list batch) in
  let terminal = ref [] in
  let round = ref 0 in
  let progress = ref true in
  let penalty = Array.make (Cluster.n_machines cluster) 0 in
  while !pending <> [] && !progress && !round < config.max_rounds do
    incr round;
    (* Rounds are coarse; sample the wall clock each time. The inner flow
       solve additionally picks the ambient deadline up on its own. *)
    Flownet.Deadline.check_ambient "firmament.round";
    let pending_arr = Array.of_list !pending in
    let n_pending = Array.length pending_arr in
    let slot = slot_size_millis pending_arr in
    let quotas = solve_round config cluster ~n_pending ~slot ~penalty in
    (* Extraction: the flow decided *which* machines receive how many
       slots; any task-to-slot decomposition is cost-equivalent, so tasks
       are dealt round-robin over the selected machines (in cost order) —
       block-filling would dump whole anti-within apps on one machine. *)
    let machine_order =
      let ids =
        Array.of_list
          (List.filter
             (fun i -> quotas.(i) > 0)
             (List.init (Array.length quotas) (fun i -> i)))
      in
      Array.sort
        (fun a b ->
          Int.compare
            (Cost_model.machine_cost config.cost_model (Cluster.machine cluster a))
            (Cost_model.machine_cost config.cost_model (Cluster.machine cluster b)))
        ids;
      ids
    in
    let remaining = Array.map (fun q -> q) quotas in
    let assignments = Queue.create () in
    let next_task = ref 0 in
    let made_progress = ref true in
    while !next_task < n_pending && !made_progress do
      made_progress := false;
      Array.iter
        (fun mid ->
          if remaining.(mid) > 0 && !next_task < n_pending then begin
            Queue.push (pending_arr.(!next_task), mid) assignments;
            incr next_task;
            remaining.(mid) <- remaining.(mid) - 1;
            made_progress := true
          end)
        machine_order
    done;
    (* Tasks beyond the total quota stay pending (the flow sent them to the
       unscheduled aggregator). *)
    let unrouted = ref [] in
    for i = n_pending - 1 downto !next_task do
      unrouted := pending_arr.(i) :: !unrouted
    done;
    let requeued = ref [] in
    let conflicts_per_machine = Hashtbl.create 64 in
    let placed_this_round = ref 0 in
    (* On conflict, rescheduling first tries the other machines the flow
       gave quota to (the solver would reassign the task within the same
       solution); only then does the reschd(i) budget decide between
       another round and giving up. *)
    let spill c =
      let placed = ref false in
      Array.iter
        (fun mid ->
          if (not !placed) && remaining.(mid) > 0 then
            match Cluster.place cluster c mid with
            | Ok () ->
                remaining.(mid) <- remaining.(mid) - 1;
                placed := true
            | Error _ -> ())
        machine_order;
      !placed
    in
    Queue.iter
      (fun ((c : Container.t), mid) ->
        match Cluster.place cluster c mid with
        | Ok () -> incr placed_this_round
        | Error _ ->
            if spill c then incr placed_this_round
            else begin
              let k =
                Option.value ~default:0
                  (Hashtbl.find_opt conflicts_per_machine mid)
              in
              Hashtbl.replace conflicts_per_machine mid (k + 1);
              (* reschd(i): at most i conflicted containers per machine are
                 picked for another round; the rest are given up on. *)
              if k < config.reschd then requeued := c :: !requeued
              else terminal := c :: !terminal
            end)
      assignments;
    Hashtbl.iter
      (fun mid k -> penalty.(mid) <- penalty.(mid) + k)
      conflicts_per_machine;
    (* penalised rounds with requeues still count as progress: the next
       solve sees different costs *)
    progress := !placed_this_round > 0 || !requeued <> [];
    pending := List.rev_append !requeued !unrouted
  done;
  Obs.add c_rounds !round;
  let undeployed = !terminal @ !pending in
  let placed =
    Array.to_list batch
    |> List.filter_map (fun (c : Container.t) ->
           Option.map
             (fun mid -> (c.Container.id, mid))
             (Cluster.machine_of cluster c.Container.id))
  in
  {
    Scheduler.placed;
    undeployed;
    violations = Classify.violations_of_undeployed cluster undeployed;
    migrations = 0;
    preemptions = 0;
    rounds = !round;
  }

let make ?(config = default) () =
  {
    Scheduler.name = name config;
    schedule = (fun cluster batch -> schedule config cluster batch);
  }
  |> Scheduler.with_faults ~label:"firmament.schedule"
  |> Scheduler.with_transaction ~prefix:"firmament"
       ~recoverable:Scheduler.faults_recoverable
  |> Scheduler.with_obs ~prefix:"firmament"
