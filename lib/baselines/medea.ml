type weights = { a : float; b : float; c : float }

type config = {
  weights : weights;
  exact_max_cells : int;
  node_budget : int;
  local_search_passes : int;
}

let default =
  {
    weights = { a = 1.; b = 1.; c = 0. };
    exact_max_cells = 64;
    node_budget = 50_000;
    local_search_passes = 2;
  }

let fmt_weight w =
  if Float.is_integer w then string_of_int (int_of_float w)
  else Printf.sprintf "%g" w

let name c =
  Printf.sprintf "MEDEA(%s,%s,%s)" (fmt_weight c.weights.a)
    (fmt_weight c.weights.b) (fmt_weight c.weights.c)

let place_reward = 10.
let violation_penalty = 5.

(* ---------- exact ILP path (small instances) ---------- *)

let solve_exact config cluster batch =
  let n = Array.length batch in
  let nm = Cluster.n_machines cluster in
  let cs = Cluster.constraints cluster in
  let m = Lp.Model.create () in
  let x = Array.make_matrix n nm (-1) in
  for i = 0 to n - 1 do
    for j = 0 to nm - 1 do
      x.(i).(j) <-
        Lp.Model.add_var ~upper:1.0 ~integer:true
          ~name:(Printf.sprintf "x_%d_%d" i j)
          m
    done
  done;
  let z = Array.init nm (fun j ->
      Lp.Model.add_var ~upper:1.0 ~integer:true
        ~name:(Printf.sprintf "z_%d" j) m)
  in
  let tolerant = config.weights.c > 0. in
  let viols = ref [] in
  (* each container placed at most once *)
  for i = 0 to n - 1 do
    Lp.Model.add_constraint m
      (List.init nm (fun j -> (x.(i).(j), 1.0)))
      Lp.Model.Le 1.0
  done;
  (* capacity per machine and dimension, against current free resources *)
  let dims = Resource.dims batch.(0).Container.demand in
  for j = 0 to nm - 1 do
    let free = Resource.to_array (Machine.free (Cluster.machine cluster j)) in
    for d = 0 to dims - 1 do
      Lp.Model.add_constraint m
        (List.init n (fun i ->
             (x.(i).(j),
              float_of_int (Resource.to_array batch.(i).Container.demand).(d))))
        Lp.Model.Le
        (float_of_int free.(d))
    done;
    (* machine-used indicators *)
    for i = 0 to n - 1 do
      Lp.Model.add_constraint m
        [ (x.(i).(j), 1.0); (z.(j), -1.0) ]
        Lp.Model.Le 0.0
    done
  done;
  (* anti-affinity between batch containers *)
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      if Constraint_set.conflict cs batch.(i).Container.app batch.(k).Container.app
      then
        for j = 0 to nm - 1 do
          if tolerant then begin
            let y =
              Lp.Model.add_var ~upper:1.0 ~integer:true
                ~name:(Printf.sprintf "y_%d_%d_%d" i k j)
                m
            in
            viols := y :: !viols;
            Lp.Model.add_constraint m
              [ (x.(i).(j), 1.0); (x.(k).(j), 1.0); (y, -1.0) ]
              Lp.Model.Le 1.0
          end
          else
            Lp.Model.add_constraint m
              [ (x.(i).(j), 1.0); (x.(k).(j), 1.0) ]
              Lp.Model.Le 1.0
        done
    done
  done;
  (* anti-affinity against already-deployed apps *)
  for i = 0 to n - 1 do
    for j = 0 to nm - 1 do
      let machine = Cluster.machine cluster j in
      let blocked = ref false in
      Machine.iter_apps machine (fun app _ ->
          if Constraint_set.conflict cs batch.(i).Container.app app then
            blocked := true);
      if !blocked then
        if tolerant then begin
          let y =
            Lp.Model.add_var ~upper:1.0 ~integer:true
              ~name:(Printf.sprintf "yd_%d_%d" i j)
              m
          in
          viols := y :: !viols;
          Lp.Model.add_constraint m
            [ (x.(i).(j), 1.0); (y, -1.0) ]
            Lp.Model.Le 0.0
        end
        else
          Lp.Model.add_constraint m [ (x.(i).(j), 1.0) ] Lp.Model.Le 0.0
    done
  done;
  let w = config.weights in
  let obj =
    List.concat
      [
        List.concat
          (List.init n (fun i ->
               List.init nm (fun j ->
                   ( x.(i).(j),
                     w.a
                     *. (place_reward +. float_of_int batch.(i).Container.priority)
                   ))));
        List.init nm (fun j -> (z.(j), -.w.b));
        List.map (fun y -> (y, -.((1. -. w.c) *. violation_penalty))) !viols;
      ]
  in
  Lp.Model.set_objective m obj;
  match Lp.Ilp.solve ~node_budget:config.node_budget m with
  | Lp.Ilp.Infeasible -> None
  | Lp.Ilp.Solved { x = sol; _ } ->
      let plan = ref [] in
      for i = 0 to n - 1 do
        for j = 0 to nm - 1 do
          if sol.(x.(i).(j)) > 0.5 then plan := (i, j) :: !plan
        done
      done;
      Some (List.rev !plan)

(* ---------- heuristic path (trace scale) ---------- *)

(* Weighted greedy: the score mirrors the ILP objective restricted to one
   container. Returns (machine, forced?) or None. *)
let greedy_pick config cluster (c : Container.t) =
  let w = config.weights in
  let nm = Cluster.n_machines cluster in
  let best = ref None in
  let consider mid score forced =
    match !best with
    | Some (_, s, _) when s >= score -> ()
    | _ -> best := Some (mid, score, forced)
  in
  for mid = 0 to nm - 1 do
    let m = Cluster.machine cluster mid in
    let packing =
      if Machine.is_used m then
        w.b *. Resource.utilization ~used:(Machine.used m)
                 ~capacity:(Machine.capacity m)
      else -.w.b
    in
    match Cluster.admissible cluster c mid with
    | Ok () -> consider mid ((w.a *. place_reward) +. packing) false
    | Error Cluster.No_capacity -> ()
    | Error (Cluster.Blacklisted _) ->
        if w.c > 0. then
          consider mid
            ((w.a *. place_reward) +. packing
            -. ((1. -. w.c) *. violation_penalty))
            true
  done;
  Option.map (fun (mid, _, forced) -> (mid, forced)) !best

(* Local search: try to empty lightly-loaded machines by moving their
   containers onto other used machines — the fragmentation term of the
   objective. *)
let defragment config cluster =
  let moves = ref 0 in
  for _pass = 1 to config.local_search_passes do
    let machines = Cluster.machines cluster in
    let light =
      Array.to_list machines
      |> List.filter (fun m ->
             Machine.is_used m && Machine.utilization m < 0.34)
      |> List.sort (fun a b ->
             Float.compare (Machine.utilization a) (Machine.utilization b))
    in
    List.iter
      (fun m ->
        List.iter
          (fun (c : Container.t) ->
            let nm = Array.length machines in
            let target = ref None in
            for mid = 0 to nm - 1 do
              if !target = None && mid <> Machine.id m then begin
                let cand = machines.(mid) in
                if
                  Machine.is_used cand
                  && Machine.utilization cand > Machine.utilization m
                  && Cluster.admissible cluster c mid = Ok ()
                then target := Some mid
              end
            done;
            match !target with
            | Some mid ->
                Cluster.remove cluster c.Container.id;
                (match Cluster.place cluster c mid with
                | Ok () -> incr moves
                | Error _ ->
                    (* lost the spot to a blacklist we created: put back.
                       The container's own slot is still free, so only a
                       blacklist can object — force past it (recorded as a
                       violation) rather than lose a deployed container. *)
                    (match Cluster.place ~force:true cluster c (Machine.id m) with
                    | Ok () -> ()
                    | Error _ ->
                        (* No capacity on its own former slot: the cluster
                           is inconsistent — drop the move, keep running. *)
                        ()))
            | None -> ())
          (Machine.containers m))
      light
  done;
  !moves

let schedule config cluster batch =
  let n = Array.length batch in
  let nm = Cluster.n_machines cluster in
  let forced_violations = ref [] in
  let undeployed = ref [] in
  let moves = ref 0 in
  let exact_plan =
    if n > 0 && n * nm <= config.exact_max_cells then
      solve_exact config cluster batch
    else None
  in
  (match exact_plan with
  | Some plan ->
      let assigned = Hashtbl.create n in
      List.iter
        (fun (i, j) ->
          Hashtbl.replace assigned i ();
          let c = batch.(i) in
          let forced = Cluster.admissible cluster c j <> Ok () in
          (match Cluster.admissible cluster c j with
          | Error (Cluster.Blacklisted against) ->
              forced_violations :=
                Violation.Anti_affinity
                  { container = c.Container.id; machine = j; against }
                :: !forced_violations
          | _ -> ());
          match Cluster.place ~force:forced cluster c j with
          | Ok () -> ()
          | Error _ -> undeployed := c :: !undeployed)
        plan;
      Array.iteri
        (fun i c ->
          if not (Hashtbl.mem assigned i) then undeployed := c :: !undeployed)
        batch
  | None ->
      (* ILP would favor feasibility of the big rows first: priority, then
         demand, descending. *)
      let order = Array.copy batch in
      Array.sort
        (fun (a : Container.t) (b : Container.t) ->
          match Int.compare b.Container.priority a.Container.priority with
          | 0 ->
              Resource.compare b.Container.demand a.Container.demand
          | c -> c)
        order;
      Array.iter
        (fun (c : Container.t) ->
          match greedy_pick config cluster c with
          | None -> undeployed := c :: !undeployed
          | Some (mid, forced) -> (
              (match Cluster.admissible cluster c mid with
              | Error (Cluster.Blacklisted against) when forced ->
                  forced_violations :=
                    Violation.Anti_affinity
                      { container = c.Container.id; machine = mid; against }
                    :: !forced_violations
              | _ -> ());
              match Cluster.place ~force:forced cluster c mid with
              | Ok () -> ()
              | Error _ -> undeployed := c :: !undeployed))
        order;
      moves := defragment config cluster);
  let placed =
    Array.to_list batch
    |> List.filter_map (fun (c : Container.t) ->
           Option.map
             (fun mid -> (c.Container.id, mid))
             (Cluster.machine_of cluster c.Container.id))
  in
  let undeployed = List.rev !undeployed in
  {
    Scheduler.placed;
    undeployed;
    violations =
      !forced_violations @ Classify.violations_of_undeployed cluster undeployed;
    migrations = !moves;
    preemptions = 0;
    rounds = 1;
  }

let make ?(config = default) () =
  {
    Scheduler.name = name config;
    schedule = (fun cluster batch -> schedule config cluster batch);
  }
  |> Scheduler.with_faults ~label:"medea.schedule"
  |> Scheduler.with_transaction ~prefix:"medea"
       ~recoverable:Scheduler.faults_recoverable
  |> Scheduler.with_obs ~prefix:"medea"
