type config = { preemption : bool; max_requeues : int }

let default = { preemption = true; max_requeues = 2 }

(* LeastRequestedPriority: 10 * free_after / capacity, averaged over
   dimensions. BalancedResourceAllocation: 10 - 10*spread between the
   per-dimension fractions (0 for one-dimensional resources). *)
let score m (c : Container.t) =
  let cap = Resource.to_array (Machine.capacity m) in
  let free = Resource.to_array (Machine.free m) in
  let demand = Resource.to_array c.Container.demand in
  let dims = Array.length cap in
  let fracs =
    Array.init dims (fun d ->
        if cap.(d) = 0 then 0.
        else float_of_int (free.(d) - demand.(d)) /. float_of_int cap.(d))
  in
  let least =
    10. *. Array.fold_left ( +. ) 0. fracs /. float_of_int dims
  in
  let balanced =
    if dims < 2 then 10.
    else begin
      let requested = Array.map (fun f -> 1. -. f) fracs in
      let mean =
        Array.fold_left ( +. ) 0. requested /. float_of_int dims
      in
      let dev =
        Array.fold_left (fun acc r -> acc +. Float.abs (r -. mean)) 0. requested
        /. float_of_int dims
      in
      10. *. (1. -. dev)
    end
  in
  least +. balanced

let pick cluster (c : Container.t) =
  let nm = Cluster.n_machines cluster in
  let best = ref None in
  for mid = 0 to nm - 1 do
    if Cluster.admissible cluster c mid = Ok () then begin
      let s = score (Cluster.machine cluster mid) c in
      match !best with
      | Some (_, s') when s' >= s -> ()
      | _ -> best := Some (mid, s)
    end
  done;
  Option.map fst !best

(* k8s-1.11 preemption: evict strictly-lower-priority pods to free
   *resources* only. Inter-pod anti-affinity is handled by the filter, not
   by preemption — a machine hosting any conflicting pod is ineligible.
   This "supports the two constraint kinds separately" behaviour is what
   the paper contrasts with Aladdin's global view. *)
let preempt cluster (c : Container.t) =
  let cs = Cluster.constraints cluster in
  let nm = Cluster.n_machines cluster in
  let best = ref None in
  for mid = 0 to nm - 1 do
    let m = Cluster.machine cluster mid in
    let conflicts =
      List.exists
        (fun (b : Container.t) ->
          Constraint_set.conflict cs c.Container.app b.Container.app)
        (Machine.containers m)
    in
    if not conflicts then begin
      let victims =
        List.filter
          (fun (b : Container.t) -> b.Container.priority < c.Container.priority)
          (Machine.containers m)
        |> List.sort (fun (a : Container.t) (b : Container.t) ->
               Resource.compare a.Container.demand b.Container.demand)
      in
      let rec take freed acc = function
        | [] -> None
        | (b : Container.t) :: tl ->
            let freed = Resource.add freed b.Container.demand in
            let acc = b :: acc in
            if Resource.fits ~demand:c.Container.demand ~within:freed then
              Some acc
            else take freed acc tl
      in
      if Resource.fits ~demand:c.Container.demand ~within:(Machine.free m) then
        (match !best with
        | Some (_, e') when List.length e' = 0 -> ()
        | _ -> best := Some (mid, []))
      else
        match take (Machine.free m) [] victims with
        | Some evict -> (
            match !best with
            | Some (_, e') when List.length e' <= List.length evict -> ()
            | _ -> best := Some (mid, evict))
        | None -> ()
    end
  done;
  match !best with Some (_, []) -> None | other -> other

let schedule config cluster batch =
  let queue = Queue.create () in
  Array.iter (fun c -> Queue.push c queue) batch;
  let requeues = Hashtbl.create 64 in
  let undeployed = ref [] in
  let preemptions = ref 0 in
  let rounds = ref 0 in
  while not (Queue.is_empty queue) do
    incr rounds;
    let c = Queue.pop queue in
    match pick cluster c with
    | Some mid -> (
        match Cluster.place cluster c mid with
        | Ok () -> ()
        | Error _ ->
            (* [pick] scored this machine as feasible; if placement is
               denied anyway, report the container undeployed rather than
               crash the batch. *)
            undeployed := c :: !undeployed)
    | None -> (
        let handled =
          if config.preemption && c.Container.priority > 0 then
            match preempt cluster c with
            | Some (mid, evict) ->
                List.iter
                  (fun (b : Container.t) ->
                    Cluster.remove cluster b.Container.id;
                    let k =
                      1
                      + Option.value ~default:0
                          (Hashtbl.find_opt requeues b.Container.id)
                    in
                    Hashtbl.replace requeues b.Container.id k;
                    if k <= config.max_requeues then Queue.push b queue
                    else undeployed := b :: !undeployed)
                  evict;
                preemptions := !preemptions + List.length evict;
                (match Cluster.place cluster c mid with
                | Ok () -> ()
                | Error _ -> undeployed := c :: !undeployed);
                true
            | None -> false
          else false
        in
        if not handled then undeployed := c :: !undeployed)
  done;
  let placed =
    Array.to_list batch
    |> List.filter_map (fun (c : Container.t) ->
           Option.map
             (fun mid -> (c.Container.id, mid))
             (Cluster.machine_of cluster c.Container.id))
  in
  let undeployed = List.rev !undeployed in
  {
    Scheduler.placed;
    undeployed;
    violations = Classify.violations_of_undeployed cluster undeployed;
    migrations = 0;
    preemptions = !preemptions;
    rounds = !rounds;
  }

let make ?(config = default) () =
  {
    Scheduler.name = "Go-Kube";
    schedule = (fun cluster batch -> schedule config cluster batch);
  }
  |> Scheduler.with_faults ~label:"gokube.schedule"
  |> Scheduler.with_transaction ~prefix:"gokube"
       ~recoverable:Scheduler.faults_recoverable
  |> Scheduler.with_obs ~prefix:"gokube"
