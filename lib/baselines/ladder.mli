(** Degradation-ladder construction: turns the rung names accepted by
    [ALADDIN_LADDER] into schedulers and stacks them under
    {!Scheduler.with_deadline}.

    Rung vocabulary: any {!Flownet.Registry} backend name (["mincost"],
    ["cost-scaling"], ["dinic"], ["push-relabel"]) runs a Firmament stack
    pinned to that solver, and ["gokube"] is the Go-Kube greedy scorer —
    the natural terminal rung, since it never touches a flow network and
    therefore cannot exhaust a solver budget. *)

val rung : string -> Scheduler.t
(** Scheduler for one rung name.
    @raise Invalid_argument on an unknown name. *)

val default_rungs : string list
(** {!Flownet.Registry.default_rungs} with ["gokube"] appended. *)

val make :
  ?deadline_ms:float ->
  ?shed:bool ->
  ?rungs:string list ->
  ?first:string * Scheduler.t ->
  unit ->
  Scheduler.t
(** The full ladder scheduler: rungs from [?rungs] (default
    [ALADDIN_LADDER] via {!Flownet.Registry.rungs_of_env} when set,
    {!default_rungs} — ending on the solver-free ["gokube"] terminal —
    otherwise), each built by {!rung}, optionally preceded by [?first] —
    a custom preferred scheduler (e.g. the Aladdin stack itself) that
    gets the budget's first shot. Deadline, shedding and counters as
    documented on {!Scheduler.with_deadline}. *)
