(* Rung construction for the degradation ladder: maps the rung names
   Flownet.Registry.rungs_of_env accepts onto actual schedulers. Flow-solver
   names become a Firmament stack pinned to that backend (the cheap greedy
   extraction is shared; only the solve under it degrades), and "gokube" is
   the Go-Kube scorer — the terminal rung that touches no flow network at
   all, so it can never exhaust a solver budget. *)

let rung name =
  if name = "gokube" then Gokube.make ()
  else
    match Flownet.Registry.find name with
    | Some _ ->
        Firmament.make ~config:{ Firmament.default with solver = name } ()
    | None ->
        invalid_arg
          (Printf.sprintf "Ladder.rung: unknown rung %s (known: %s)" name
             (String.concat ", " (Flownet.Registry.names () @ [ "gokube" ])))

let default_rungs = Flownet.Registry.default_rungs @ [ "gokube" ]

let make ?deadline_ms ?shed ?rungs ?first () =
  let names =
    match rungs with
    | Some r -> r
    | None when Sys.getenv_opt "ALADDIN_LADDER" <> None ->
        Flownet.Registry.rungs_of_env ()
    | None ->
        (* unlike the registry's solver-only ladder, the scheduler-level
           default ends on the solver-free terminal rung *)
        default_rungs
  in
  let names = if names = [] then default_rungs else names in
  let built = List.map (fun n -> (n, rung n)) names in
  let built = match first with Some r -> r :: built | None -> built in
  Scheduler.with_deadline ?deadline_ms ?shed built
