(** Firmament baseline: min-cost max-flow scheduling over a one-dimensional
    slot-based network with pluggable cost models, plus the multi-round
    conflict-rescheduling mechanism the paper evaluates as
    Firmament-{TRIVIAL,QUINCY,OCTOPUS}(reschd).

    The flow network is s → C/U → racks → machines → t with linear scalar
    capacities (slots). That linearity is the point of comparison: it can
    express neither anti-affinity nor priority, so conflicts only surface
    when a flow assignment is applied to the real cluster, and are then
    retried for up to [reschd] containers per machine per round (a timeout
    bounds the rounds). *)

type config = {
  cost_model : Cost_model.t;
  reschd : int;      (** rescheduling budget per machine per round *)
  max_rounds : int;  (** round timeout *)
  solver : string;
      (** {!Flownet.Registry} backend name. ["mincost"] and
          ["cost-scaling"] are both exact, so placement quality is
          identical and only solve latency differs; the pure max-flow
          backends are selectable too but ignore arc costs. *)
}

val default : config
(** QUINCY, reschd 4, 8 rounds; solver from [ALADDIN_SOLVER]
    (["mincost"] when unset). *)

val name : config -> string
(** e.g. ["Firmament-QUINCY(4)"]. *)

val make : ?config:config -> unit -> Scheduler.t

val slot_size_millis : Container.t array -> int
(** The scalar slot the 1-D network quantizes demand into: the mean CPU
    demand of the batch, in millicores (exposed for tests). *)
