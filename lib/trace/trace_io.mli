(** Plain-text serialisation of workloads, so generated traces can be saved
    once and replayed across runs and tools.

    Line-oriented format (fields space-separated, lists comma-separated):
    {v
    # aladdin-trace v1
    machine <unit,unit,...>
    app <id> <name> <n> <priority> <within:0|1> <demand units> <across ids|->
    container <id> <app-id>
    v}
    Containers appear in submission order. [Application.make] normalises
    whitespace out of app names, so [to_string] output always round-trips
    through {!of_string} (the field separator cannot appear in a name). *)

val save : Workload.t -> string -> unit
(** @raise Sys_error on IO failure. *)

val load : string -> (Workload.t, Trace_error.t) result
(** Malformed input yields [Error] naming the offending line and field —
    never an exception. @raise Sys_error on IO failure. *)

val to_string : Workload.t -> string
val of_string : string -> (Workload.t, Trace_error.t) result
