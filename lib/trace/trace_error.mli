(** Structured parse errors for the trace loaders ({!Trace_io},
    {!Alibaba_csv}): the 1-based source line, the field that failed, and a
    human-readable message. Every error returned by a loader is tallied
    under the [trace.parse_errors] {!Obs} counter. *)

type t = { line : int; field : string; message : string }

val record : t -> t
(** Tally the error under [trace.parse_errors] and return it unchanged —
    call exactly once per [Error] a loader returns. *)

val to_string : t -> string
