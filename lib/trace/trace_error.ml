type t = { line : int; field : string; message : string }

let c_parse_errors = Obs.counter "trace.parse_errors"

let record e =
  Obs.incr c_parse_errors;
  e

let to_string e =
  Printf.sprintf "line %d, field %s: %s" e.line e.field e.message
