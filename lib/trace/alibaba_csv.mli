(** Loader for the *public* Alibaba cluster-trace schema
    ([github.com/alibaba/clusterdata], v2018 `container_meta.csv`), so the
    real trace can be replayed by anyone who has it:

    {v container_id,machine_id,time_stamp,app_du,status,cpu_request,cpu_limit,mem_size v}

    Mapping into a {!Workload.t}:
    - rows are grouped by [app_du] into applications; each app's demand is
      the per-container maximum of its rows (isomorphism, §IV.A);
    - [cpu_request] is in centi-cores (400 = 4 cores);
    - [mem_size] is the trace's normalized memory (0–100), scaled to
      [machine_mem_gb];
    - rows whose [status] is not [started]/[allocated] are skipped.

    The public trace carries no constraint annotations (those statistics
    exist only in the paper), so constraints are synthesised the way Fig. 8
    reports them: [anti_within_multi] gives every multi-container app
    anti-affinity-within, and [priority_centile] marks the apps with the
    largest total CPU request as high-priority. Both knobs can be turned
    off for a constraint-free replay. *)

type options = {
  machine_cpu : float;
  machine_mem_gb : float;
  cpu_only : bool;
  anti_within_multi : bool;
  priority_centile : float;  (** e.g. 0.16 → top 16% of apps by total CPU *)
}

val default_options : options
(** 32 CPU / 64 GB machines, CPU-only, anti-within for multi-container
    apps, top 16% priority — the paper's setting. *)

val of_string :
  ?options:options -> string -> (Workload.t, Trace_error.t) result
(** Parse CSV content. A line that fails to parse yields [Error] naming the
    line and column — never an exception; a header line is skipped
    automatically. *)

val load : ?options:options -> string -> (Workload.t, Trace_error.t) result
(** Read a file. @raise Sys_error on IO failure. *)
