let header = "# aladdin-trace v1"

exception Parse of Trace_error.t

let fail ~line ~field fmt =
  Printf.ksprintf
    (fun message -> raise (Parse { Trace_error.line; field; message }))
    fmt

let int_field ~line ~field s =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> fail ~line ~field "not an integer: %S" s

let vec_to_string v =
  String.concat "," (List.map string_of_int (Array.to_list (Resource.to_array v)))

let vec_of_string ~line ~field s =
  let units =
    Array.of_list (List.map (int_field ~line ~field) (String.split_on_char ',' s))
  in
  match Resource.of_array units with
  | v -> v
  | exception Invalid_argument msg -> fail ~line ~field "%s" msg

let ids_to_string = function
  | [] -> "-"
  | l -> String.concat "," (List.map string_of_int l)

let ids_of_string ~line ~field = function
  | "-" -> []
  | s -> List.map (int_field ~line ~field) (String.split_on_char ',' s)

let to_string (w : Workload.t) =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "machine %s\n" (vec_to_string w.Workload.machine_capacity));
  Array.iter
    (fun (a : Application.t) ->
      Buffer.add_string buf
        (Printf.sprintf "app %d %s %d %d %d %s %s\n" a.Application.id
           a.Application.name a.Application.n_containers a.Application.priority
           (if a.Application.anti_affinity_within then 1 else 0)
           (vec_to_string a.Application.demand)
           (ids_to_string a.Application.anti_affinity_across)))
    w.Workload.apps;
  Array.iter
    (fun (c : Container.t) ->
      Buffer.add_string buf
        (Printf.sprintf "container %d %d\n" c.Container.id c.Container.app))
    w.Workload.containers;
  Buffer.contents buf

let of_string s =
  let machine = ref None in
  let machine_line = ref 0 in
  let apps = ref [] in
  let containers = ref [] in
  let app_by_id = Hashtbl.create 64 in
  let header_seen = ref false in
  let last_line = ref 0 in
  try
    List.iteri
      (fun i raw ->
        let line = i + 1 in
        last_line := line;
        let text = String.trim raw in
        if text = "" then ()
        else if not !header_seen then begin
          (* The first non-blank line must be the version header. *)
          if text = header then header_seen := true
          else fail ~line ~field:"header" "missing %S header" header
        end
        else
          match String.split_on_char ' ' text with
          | "#" :: _ -> () (* comment *)
          | [ "machine"; v ] ->
              if !machine <> None then
                fail ~line ~field:"machine" "duplicate machine line (first at line %d)"
                  !machine_line;
              machine := Some (vec_of_string ~line ~field:"machine" v);
              machine_line := line
          | "machine" :: rest ->
              fail ~line ~field:"machine" "expected 1 field, got %d"
                (List.length rest)
          | [ "app"; id; name; n; prio; within; demand; across ] -> (
              let within =
                match int_field ~line ~field:"within" within with
                | 0 -> false
                | 1 -> true
                | v -> fail ~line ~field:"within" "expected 0 or 1, got %d" v
              in
              match
                Application.make
                  ~id:(int_field ~line ~field:"id" id)
                  ~name
                  ~n_containers:(int_field ~line ~field:"n" n)
                  ~demand:(vec_of_string ~line ~field:"demand" demand)
                  ~priority:(int_field ~line ~field:"priority" prio)
                  ~anti_affinity_within:within
                  ~anti_affinity_across:(ids_of_string ~line ~field:"across" across)
                  ()
              with
              | a ->
                  Hashtbl.replace app_by_id a.Application.id a;
                  apps := a :: !apps
              | exception Invalid_argument msg -> fail ~line ~field:"app" "%s" msg)
          | "app" :: rest ->
              fail ~line ~field:"app" "expected 7 fields, got %d" (List.length rest)
          | [ "container"; id; app ] ->
              let app = int_field ~line ~field:"app" app in
              let a =
                match Hashtbl.find_opt app_by_id app with
                | Some a -> a
                | None ->
                    fail ~line ~field:"app"
                      "container references app %d before its app line" app
              in
              containers :=
                Container.make
                  ~id:(int_field ~line ~field:"id" id)
                  ~app ~demand:a.Application.demand
                  ~priority:a.Application.priority
                  ~arrival:(List.length !containers)
                :: !containers
          | "container" :: rest ->
              fail ~line ~field:"container" "expected 2 fields, got %d"
                (List.length rest)
          | kw :: _ -> fail ~line ~field:kw "unknown record type"
          | [] -> ())
      (String.split_on_char '\n' s);
    if not !header_seen then
      fail ~line:1 ~field:"header" "empty trace: missing %S header" header;
    let machine_capacity =
      match !machine with
      | Some m -> m
      | None -> fail ~line:!last_line ~field:"machine" "missing machine line"
    in
    match
      Workload.make
        ~apps:(Array.of_list (List.rev !apps))
        ~containers:(Array.of_list (List.rev !containers))
        ~machine_capacity
    with
    | w -> Ok w
    | exception Invalid_argument msg ->
        fail ~line:!last_line ~field:"workload" "%s" msg
  with Parse e -> Error (Trace_error.record e)

let save w path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string w))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
