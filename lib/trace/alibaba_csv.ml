type options = {
  machine_cpu : float;
  machine_mem_gb : float;
  cpu_only : bool;
  anti_within_multi : bool;
  priority_centile : float;
}

let default_options =
  {
    machine_cpu = 32.;
    machine_mem_gb = 64.;
    cpu_only = true;
    anti_within_multi = true;
    priority_centile = 0.16;
  }

type row = {
  app_du : string;
  cpu_request : int;  (* centi-cores *)
  mem_norm : float;   (* 0..100 *)
}

exception Parse of Trace_error.t

let fail ~line ~field fmt =
  Printf.ksprintf
    (fun message -> raise (Parse { Trace_error.line; field; message }))
    fmt

let parse_row ~line_no line =
  match String.split_on_char ',' line with
  | _container :: _machine :: _ts :: app_du :: status :: cpu_request
    :: _cpu_limit :: mem_size :: _ ->
      let status = String.lowercase_ascii (String.trim status) in
      if status <> "started" && status <> "allocated" then None
      else begin
        let cpu_request =
          match int_of_string_opt (String.trim cpu_request) with
          | Some c when c > 0 -> c
          | _ ->
              fail ~line:line_no ~field:"cpu_request"
                "expected a positive integer, got %S" (String.trim cpu_request)
        in
        let mem_norm =
          match float_of_string_opt (String.trim mem_size) with
          | Some m when m >= 0. -> Float.min 100. m
          | _ ->
              fail ~line:line_no ~field:"mem_size"
                "expected a nonnegative number, got %S" (String.trim mem_size)
        in
        Some { app_du = String.trim app_du; cpu_request; mem_norm }
      end
  | _ ->
      fail ~line:line_no ~field:"row" "expected >= 8 comma-separated columns"

let looks_like_header line =
  let l = String.lowercase_ascii line in
  String.length l >= 12 && String.sub l 0 12 = "container_id"

let of_string ?(options = default_options) content =
  try
    let rows = ref [] in
    List.iteri
      (fun i line ->
        let line = String.trim line in
        if line <> "" && not (i = 0 && looks_like_header line) then
          match parse_row ~line_no:(i + 1) line with
          | Some r -> rows := r :: !rows
          | None -> ())
      (String.split_on_char '\n' content);
    let rows = List.rev !rows in
    if rows = [] then fail ~line:1 ~field:"rows" "no usable rows";
  (* group by app_du, preserving first-seen order *)
  let order = ref [] in
  let groups : (string, row list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt groups r.app_du with
      | Some l -> l := r :: !l
      | None ->
          Hashtbl.replace groups r.app_du (ref [ r ]);
          order := r.app_du :: !order)
    rows;
  let order = List.rev !order in
  let demand_of rs =
    (* isomorphism: the per-container max over the group's rows *)
    let cpu_centi = List.fold_left (fun m r -> max m r.cpu_request) 0 rs in
    let mem_norm = List.fold_left (fun m r -> Float.max m r.mem_norm) 0. rs in
    let cpu = float_of_int cpu_centi /. 100. in
    if options.cpu_only then Resource.cpu_only cpu
    else
      Resource.make ~cpu
        ~mem_gb:(Float.max 0.25 (mem_norm /. 100. *. options.machine_mem_gb))
  in
  (* priority: top centile of apps by total cpu request *)
  let totals =
    List.map
      (fun du ->
        let rs = !(Hashtbl.find groups du) in
        (du, List.fold_left (fun acc r -> acc + r.cpu_request) 0 rs))
      order
  in
  let by_total =
    List.sort (fun (_, a) (_, b) -> Int.compare b a) totals |> List.map fst
  in
  let n_priority =
    int_of_float (Float.round (options.priority_centile *. float_of_int (List.length order)))
  in
  let priority_set = Hashtbl.create 64 in
  List.iteri
    (fun i du -> if i < n_priority then Hashtbl.replace priority_set du ())
    by_total;
  let apps =
    List.mapi
      (fun id du ->
        let rs = !(Hashtbl.find groups du) in
        let n = List.length rs in
        Application.make ~id ~name:du ~n_containers:n ~demand:(demand_of rs)
          ~priority:(if Hashtbl.mem priority_set du then 1 else 0)
          ~anti_affinity_within:(options.anti_within_multi && n > 1)
          ())
      order
  in
  let containers =
    List.concat_map
      (fun (a : Application.t) ->
        Application.containers a
          ~first_id:(1_000_000 * a.Application.id)
          ~first_arrival:0)
      apps
    |> Array.of_list
  in
  let containers =
    Array.mapi (fun i (c : Container.t) -> { c with Container.id = i }) containers
  in
  let machine_capacity =
    if options.cpu_only then Resource.cpu_only options.machine_cpu
    else Resource.make ~cpu:options.machine_cpu ~mem_gb:options.machine_mem_gb
  in
    Ok (Workload.make ~apps:(Array.of_list apps) ~containers ~machine_capacity)
  with Parse e -> Error (Trace_error.record e)

let load ?options path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ?options (really_input_string ic (in_channel_length ic)))
