type order =
  | As_submitted
  | High_priority_first
  | Low_priority_first
  | Large_anti_affinity_first
  | Small_anti_affinity_first

let all =
  [
    ("submitted", As_submitted);
    ("CHP", High_priority_first);
    ("CLP", Low_priority_first);
    ("CLA", Large_anti_affinity_first);
    ("CSA", Small_anti_affinity_first);
  ]

let abbrev o =
  match List.find_opt (fun (_, o') -> o' = o) all with
  | Some (s, _) -> s
  (* true invariant: [all] enumerates every constructor of [order], so the
     lookup cannot miss; a new constructor without an [all] entry is a
     compile-time-adjacent bug we want loud, not a recoverable condition. *)
  | None -> assert false

let of_string s =
  List.assoc_opt (String.uppercase_ascii s)
    (List.map (fun (k, v) -> (String.uppercase_ascii k, v)) all)

let stable_sort_by key w =
  let containers = Array.copy w.Workload.containers in
  let decorated =
    Array.map (fun (c : Container.t) -> (key c, c.Container.arrival, c)) containers
  in
  Array.sort
    (fun (k1, a1, _) (k2, a2, _) ->
      match Int.compare k1 k2 with 0 -> Int.compare a1 a2 | c -> c)
    decorated;
  Workload.with_containers w (Array.map (fun (_, _, c) -> c) decorated)

let apply order w =
  match order with
  | As_submitted -> w
  | High_priority_first ->
      stable_sort_by (fun (c : Container.t) -> -c.Container.priority) w
  | Low_priority_first ->
      stable_sort_by (fun (c : Container.t) -> c.Container.priority) w
  | Large_anti_affinity_first | Small_anti_affinity_first ->
      let degrees = Workload.anti_affinity_degrees w in
      let deg (c : Container.t) =
        Option.value ~default:0 (Hashtbl.find_opt degrees c.Container.app)
      in
      let sign =
        match order with Large_anti_affinity_first -> -1 | _ -> 1
      in
      stable_sort_by (fun c -> sign * deg c) w
