(** Environment-variable parsing shared by every driver. A malformed
    value falls back to the default rather than aborting — bench runs are
    long and a typo'd knob should not kill one at startup. *)

val int : string -> int -> int
val float : string -> float -> float
val string : string -> string -> string
val int_opt : string -> int option
val float_opt : string -> float option
val string_opt : string -> string option

val set : string -> bool
(** Whether the variable is present at all (even if malformed). *)
