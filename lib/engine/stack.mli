(** The engine: one declarative description of a whole scheduler stack —
    scheduler kind, solver backend, middleware (deadline ladder, auditor,
    fault injection), cells sharding and the serving front end — built the
    same way no matter which driver asks.

    Every driver (bench, experiments_main, fault_smoke, examples) used to
    hand-assemble its own stack from [ALADDIN_*] knobs; {!of_env} /
    {!of_args} are now the single parser and {!build} the single
    assembler, so a configuration expressible in one harness is
    expressible in all of them. Construction is behaviour-preserving by
    test: an engine-built stack places identically (same seed, same
    placement fingerprint) to the hand-built stacks it replaced. *)

type kind =
  | Aladdin  (** the paper's scheduler, cold projections *)
  | Aladdin_warm  (** warm-started projections (PR 2) *)
  | Cells  (** [Aladdin.Cells_scheduler] sharded over domains *)
  | Firmament
  | Medea
  | Gokube
  | Ladder  (** the bare degradation ladder, no preferred first rung *)

type dijkstra = Auto | Heap | Dial

type serve = {
  serve_cfg : Serve.Runner.config;
  serve_machines : int;  (** cluster size for the serving sweep *)
}

type spec = {
  kind : kind;
  (* Aladdin options *)
  il : bool;
  dl : bool;
  weight_base : int option;  (** [None] = computed weights *)
  (* Firmament options *)
  cost_model : Cost_model.t;
  reschd : int;
  (* Medea weights *)
  medea_a : float;
  medea_b : float;
  medea_c : float;
  (* solver layer *)
  solver : string option;
      (** pin a {!Flownet.Registry} backend; [None] follows
          [ALADDIN_SOLVER] / the registry default *)
  dijkstra : dijkstra option;  (** [None] = leave the current policy *)
  (* cells sharding *)
  cells : int option;  (** [None] = {!Cells.Partition.default_cells} *)
  cells_mode : Cells.Coordinator.mode option;
  supervise : Cells.Supervisor.config option;
      (** attach a {!Cells.Supervisor} to the cells coordinator:
          per-cell retry/backoff, join timeouts, quarantine with machine
          redistribution *)
  (* middleware *)
  deadline_ms : float;  (** > 0 wraps the stack in the deadline ladder *)
  ladder_rungs : string list option;
  audit : bool;  (** wrap outermost in {!Audit.wrap} with repair *)
  fault_rate : float;  (** > 0: {!install_faults} arms every fault class *)
  fault_seed : int;
  (* serving front end *)
  serve : serve option;
}

val default : spec
(** [kind = Aladdin], no middleware, library defaults everywhere. *)

val label : spec -> string
(** Short stable name ("aladdin-warm", "cells(4)", ...) used as the
    ladder first-rung label and in reports. *)

val of_name : ?base:spec -> string -> (spec, string) result
(** [base] (default {!default}) with the kind named by the string:
    "aladdin", "aladdin-warm", "aladdin-plain", "aladdin-il", "cells",
    "firmament" (or "firmament-trivial" / "-quincy" / "-octopus"),
    "medea", "gokube", "ladder", or any registry backend name (which
    builds a Firmament stack pinned to that solver, as the serving phase
    and ladder rungs always did). *)

val of_env : ?base:spec -> unit -> spec
(** [base] (default {!default}) overlaid with every [ALADDIN_*] stack
    knob present in the environment: [ALADDIN_SOLVER],
    [ALADDIN_DIJKSTRA], [ALADDIN_CELLS] (last entry),
    [ALADDIN_CELLS_MODE], [ALADDIN_DEADLINE_MS] (also arms {!audit}, as
    the bench always audited deadline-bounded runs), [ALADDIN_LADDER],
    [ALADDIN_FAULT_RATE], [ALADDIN_FAULT_SEED], and [ALADDIN_SUPERVISE]
    (any [ALADDIN_SUPERVISE*] knob implies supervision on, config from
    {!Cells.Supervisor.config_of_env}). Unset variables leave [base]
    untouched. *)

val of_args : ?base:spec -> string list -> (spec, string) result
(** CLI form of {!of_env}: [--sched NAME --solver NAME --dijkstra
    auto|heap|dial --cells N --cells-mode auto|domains|sequential
    --deadline-ms F --ladder r1,r2 --audit --fault-rate F --fault-seed N
    --serve --serve-machines N --supervise --supervise-retries N
    --supervise-threshold N --supervise-cooldown N
    --supervise-timeout-ms F --supervise-backoff-ms F]. [--serve]
    attaches {!Serve.Runner.config_of_env}; [--supervise] (implied by
    any [--supervise-*] knob) attaches
    {!Cells.Supervisor.config_of_env}. Unknown arguments are an
    [Error]. *)

val cells_sweep_of_env : unit -> int list
(** The cell-count sweep [ALADDIN_CELLS] requests (default [[1; 4]] —
    the 1-cell run anchors speedups). *)

val serve_of_env : ?base:spec -> unit -> spec
(** {!of_env} for the serving phase: the stack named by
    [ALADDIN_SERVE_SCHED] (default "aladdin") carrying a {!serve} config
    from [ALADDIN_SERVE_*] with [ALADDIN_SERVE_MACHINES] (default 500)
    machines. *)

type built = {
  spec : spec;
  scheduler : Scheduler.t;
  epoch : Obs.epoch;  (** taken at build: scopes counters to this run *)
  shutdown : unit -> unit;  (** release cells domains; no-op otherwise *)
  breakdown : unit -> Cells.Coordinator.breakdown option;
      (** last batch's per-cell timing, [None] unless [kind = Cells] *)
}

val build : spec -> built
(** Assemble the stack: base scheduler by {!kind} (its own middleware
    included, as each [make] always did), then the deadline ladder when
    [deadline_ms > 0] with this stack as preferred first rung, then the
    invariant auditor outermost when [audit].
    @raise Invalid_argument on an unknown solver or ladder rung name. *)

val run_counters : built -> (string * int) list
(** Counters incremented since {!build}, via the built stack's
    {!Obs.epoch} — back-to-back runs in one process don't bleed into
    each other's numbers. *)

val install_faults : spec -> unit
(** Arm {!Fault.install} with every fault class at [fault_rate] when
    positive; otherwise do nothing (any previously installed
    configuration is left alone). *)

val serve_sweep :
  ?n_machines:int -> spec -> workload:Workload.t ->
  Serve.Runner.sweep_result
(** Drive the stack through {!Serve.Runner.sweep} on a cluster of
    [?n_machines] (default the spec's [serve_machines]) built from the
    workload's topology; every per-point stack is engine-built and shut
    down after the sweep.
    @raise Invalid_argument when the spec carries no {!serve} config. *)
