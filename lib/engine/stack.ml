(* One declarative stack spec shared by every driver. [build] mirrors the
   hand assembly the bench/fault_smoke/serve drivers used to do inline —
   the differential suite (test_engine) pins the equivalence down to
   placement fingerprints, so any change here must stay bit-compatible
   with the constructions it replaced. *)

type kind =
  | Aladdin
  | Aladdin_warm
  | Cells
  | Firmament
  | Medea
  | Gokube
  | Ladder

type dijkstra = Auto | Heap | Dial

type serve = { serve_cfg : Serve.Runner.config; serve_machines : int }

type spec = {
  kind : kind;
  il : bool;
  dl : bool;
  weight_base : int option;
  cost_model : Cost_model.t;
  reschd : int;
  medea_a : float;
  medea_b : float;
  medea_c : float;
  solver : string option;
  dijkstra : dijkstra option;
  cells : int option;
  cells_mode : Cells.Coordinator.mode option;
  supervise : Cells.Supervisor.config option;
  deadline_ms : float;
  ladder_rungs : string list option;
  audit : bool;
  fault_rate : float;
  fault_seed : int;
  serve : serve option;
}

let default =
  {
    kind = Aladdin;
    il = true;
    dl = true;
    weight_base = None;
    cost_model = Firmament.default.Firmament.cost_model;
    reschd = Firmament.default.Firmament.reschd;
    medea_a = Medea.default.Medea.weights.Medea.a;
    medea_b = Medea.default.Medea.weights.Medea.b;
    medea_c = Medea.default.Medea.weights.Medea.c;
    solver = None;
    dijkstra = None;
    cells = None;
    cells_mode = None;
    supervise = None;
    deadline_ms = 0.;
    ladder_rungs = None;
    audit = false;
    fault_rate = 0.;
    fault_seed = 1337;
    serve = None;
  }

let label spec =
  match spec.kind with
  | Aladdin ->
      if spec.il && not spec.dl then "aladdin-il"
      else if (not spec.il) && not spec.dl then "aladdin-plain"
      else "aladdin"
  | Aladdin_warm -> "aladdin-warm"
  | Cells -> (
      match spec.cells with
      | Some n -> Printf.sprintf "cells(%d)" n
      | None -> "cells")
  | Firmament ->
      "firmament-" ^ String.lowercase_ascii (Cost_model.name spec.cost_model)
  | Medea -> "medea"
  | Gokube -> "gokube"
  | Ladder -> "ladder"

let known_names =
  [
    "aladdin";
    "aladdin-warm";
    "aladdin-plain";
    "aladdin-il";
    "cells";
    "firmament";
    "firmament-trivial";
    "firmament-quincy";
    "firmament-octopus";
    "medea";
    "gokube";
    "ladder";
  ]

let of_name ?(base = default) s =
  match String.lowercase_ascii (String.trim s) with
  | "aladdin" -> Ok { base with kind = Aladdin; il = true; dl = true }
  | "aladdin-warm" -> Ok { base with kind = Aladdin_warm; il = true; dl = true }
  | "aladdin-plain" -> Ok { base with kind = Aladdin; il = false; dl = false }
  | "aladdin-il" -> Ok { base with kind = Aladdin; il = true; dl = false }
  | "cells" -> Ok { base with kind = Cells }
  | "firmament" -> Ok { base with kind = Firmament }
  | "firmament-trivial" ->
      Ok { base with kind = Firmament; cost_model = Cost_model.Trivial }
  | "firmament-quincy" ->
      Ok { base with kind = Firmament; cost_model = Cost_model.Quincy }
  | "firmament-octopus" ->
      Ok { base with kind = Firmament; cost_model = Cost_model.Octopus }
  | "medea" -> Ok { base with kind = Medea }
  | "gokube" | "go-kube" -> Ok { base with kind = Gokube }
  | "ladder" -> Ok { base with kind = Ladder }
  | name -> (
      (* a registry backend name runs a Firmament stack pinned to that
         solver, exactly as Ladder.rung / the serving phase always did *)
      match Flownet.Registry.find name with
      | Some _ -> Ok { base with kind = Firmament; solver = Some name }
      | None ->
          Error
            (Printf.sprintf "unknown scheduler %S (known: %s)" s
               (String.concat ", "
                  (known_names @ Flownet.Registry.names ()))))

let dijkstra_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "heap" -> Some Heap
  | "dial" -> Some Dial
  | "auto" -> Some Auto
  | _ -> None

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "domains" -> Some `Domains
  | "sequential" | "seq" -> Some `Sequential
  | "auto" -> Some `Auto
  | _ -> None

let of_env ?(base = default) () =
  let spec = base in
  let spec =
    if Env.set "ALADDIN_SOLVER" then
      { spec with solver = Some (Flownet.Registry.env_name ()) }
    else spec
  in
  let spec =
    match Env.string_opt "ALADDIN_DIJKSTRA" with
    | Some s -> { spec with dijkstra = dijkstra_of_string s }
    | None -> spec
  in
  let spec =
    if Env.set "ALADDIN_CELLS" then
      { spec with cells = Some (Cells.Partition.default_cells ()) }
    else spec
  in
  let spec =
    if Env.set "ALADDIN_CELLS_MODE" then
      { spec with cells_mode = Some (Cells.Coordinator.mode_of_env ()) }
    else spec
  in
  let spec =
    (* ALADDIN_SUPERVISE turns supervision on; any sub-knob implies it *)
    if
      List.exists Env.set
        [
          "ALADDIN_SUPERVISE"; "ALADDIN_SUPERVISE_RETRIES";
          "ALADDIN_SUPERVISE_BACKOFF_MS"; "ALADDIN_SUPERVISE_JITTER";
          "ALADDIN_SUPERVISE_THRESHOLD"; "ALADDIN_SUPERVISE_COOLDOWN";
          "ALADDIN_SUPERVISE_TIMEOUT_MS"; "ALADDIN_SUPERVISE_EWMA";
          "ALADDIN_SUPERVISE_SEED";
        ]
    then { spec with supervise = Some (Cells.Supervisor.config_of_env ()) }
    else spec
  in
  let spec =
    match Env.float_opt "ALADDIN_DEADLINE_MS" with
    | Some d ->
        (* the bench always ran deadline-bounded stacks under the
           auditor; keep that coupling declarative *)
        { spec with deadline_ms = d; audit = spec.audit || d > 0. }
    | None -> spec
  in
  let spec =
    if Env.set "ALADDIN_LADDER" then
      { spec with ladder_rungs = Some (Flownet.Registry.rungs_of_env ()) }
    else spec
  in
  let spec =
    match Env.float_opt "ALADDIN_FAULT_RATE" with
    | Some r -> { spec with fault_rate = r }
    | None -> spec
  in
  let spec =
    match Env.int_opt "ALADDIN_FAULT_SEED" with
    | Some s -> { spec with fault_seed = s }
    | None -> spec
  in
  spec

let serve_env_serve () =
  {
    serve_cfg = Serve.Runner.config_of_env ();
    serve_machines = Env.int "ALADDIN_SERVE_MACHINES" 500;
  }

let serve_of_env ?(base = default) () =
  match of_name ~base (Env.string "ALADDIN_SERVE_SCHED" "aladdin") with
  | Ok spec -> { spec with serve = Some (serve_env_serve ()) }
  | Error e -> invalid_arg ("Stack.serve_of_env: " ^ e)

let rung_names = lazy (Flownet.Registry.names () @ [ "gokube" ])

let of_args ?(base = default) args =
  let ( let* ) = Result.bind in
  let int_arg flag v k =
    match int_of_string_opt v with
    | Some n -> k n
    | None -> Error (Printf.sprintf "%s: not an integer: %S" flag v)
  in
  let float_arg flag v k =
    match float_of_string_opt v with
    | Some f -> k f
    | None -> Error (Printf.sprintf "%s: not a number: %S" flag v)
  in
  let with_serve spec f =
    let sv =
      match spec.serve with Some sv -> sv | None -> serve_env_serve ()
    in
    { spec with serve = Some (f sv) }
  in
  let with_supervise spec f =
    let sc =
      match spec.supervise with
      | Some sc -> sc
      | None -> Cells.Supervisor.config_of_env ()
    in
    { spec with supervise = Some (f sc) }
  in
  let rec go spec = function
    | [] -> Ok spec
    | "--sched" :: v :: rest ->
        let* spec = of_name ~base:spec v in
        go spec rest
    | "--solver" :: v :: rest -> (
        match Flownet.Registry.find v with
        | Some _ -> go { spec with solver = Some v } rest
        | None ->
            Error
              (Printf.sprintf "--solver: unknown backend %S (known: %s)" v
                 (String.concat ", " (Flownet.Registry.names ()))))
    | "--dijkstra" :: v :: rest -> (
        match dijkstra_of_string v with
        | Some p -> go { spec with dijkstra = Some p } rest
        | None ->
            Error
              (Printf.sprintf "--dijkstra: %S (expected auto|heap|dial)" v))
    | "--cells" :: v :: rest ->
        int_arg "--cells" v (fun n ->
            if n < 1 then Error "--cells: must be >= 1"
            else go { spec with cells = Some n } rest)
    | "--cells-mode" :: v :: rest -> (
        match mode_of_string v with
        | Some m -> go { spec with cells_mode = Some m } rest
        | None ->
            Error
              (Printf.sprintf
                 "--cells-mode: %S (expected auto|domains|sequential)" v))
    | "--deadline-ms" :: v :: rest ->
        float_arg "--deadline-ms" v (fun d ->
            go { spec with deadline_ms = d; audit = spec.audit || d > 0. } rest)
    | "--ladder" :: v :: rest ->
        let rungs = String.split_on_char ',' v |> List.map String.trim in
        let unknown =
          List.filter (fun r -> not (List.mem r (Lazy.force rung_names))) rungs
        in
        if unknown <> [] then
          Error
            (Printf.sprintf "--ladder: unknown rung(s) %s (known: %s)"
               (String.concat ", " unknown)
               (String.concat ", " (Lazy.force rung_names)))
        else go { spec with ladder_rungs = Some rungs } rest
    | "--audit" :: rest -> go { spec with audit = true } rest
    | "--no-audit" :: rest -> go { spec with audit = false } rest
    | "--fault-rate" :: v :: rest ->
        float_arg "--fault-rate" v (fun r ->
            go { spec with fault_rate = r } rest)
    | "--fault-seed" :: v :: rest ->
        int_arg "--fault-seed" v (fun s -> go { spec with fault_seed = s } rest)
    | "--serve" :: rest -> go (with_serve spec Fun.id) rest
    | "--serve-machines" :: v :: rest ->
        int_arg "--serve-machines" v (fun n ->
            go (with_serve spec (fun sv -> { sv with serve_machines = n })) rest)
    | "--supervise" :: rest -> go (with_supervise spec Fun.id) rest
    | "--supervise-retries" :: v :: rest ->
        int_arg "--supervise-retries" v (fun n ->
            if n < 0 then Error "--supervise-retries: must be >= 0"
            else
              go
                (with_supervise spec (fun sc ->
                     { sc with Cells.Supervisor.max_retries = n }))
                rest)
    | "--supervise-threshold" :: v :: rest ->
        int_arg "--supervise-threshold" v (fun n ->
            if n < 1 then Error "--supervise-threshold: must be >= 1"
            else
              go
                (with_supervise spec (fun sc ->
                     { sc with Cells.Supervisor.failure_threshold = n }))
                rest)
    | "--supervise-cooldown" :: v :: rest ->
        int_arg "--supervise-cooldown" v (fun n ->
            if n < 1 then Error "--supervise-cooldown: must be >= 1"
            else
              go
                (with_supervise spec (fun sc ->
                     { sc with Cells.Supervisor.cooldown = n }))
                rest)
    | "--supervise-timeout-ms" :: v :: rest ->
        float_arg "--supervise-timeout-ms" v (fun d ->
            go
              (with_supervise spec (fun sc ->
                   { sc with Cells.Supervisor.join_timeout_ms = Float.max 0. d }))
              rest)
    | "--supervise-backoff-ms" :: v :: rest ->
        float_arg "--supervise-backoff-ms" v (fun d ->
            go
              (with_supervise spec (fun sc ->
                   { sc with Cells.Supervisor.backoff_ms = Float.max 0. d }))
              rest)
    | [ flag ]
      when List.mem flag
             [
               "--sched"; "--solver"; "--dijkstra"; "--cells"; "--cells-mode";
               "--deadline-ms"; "--ladder"; "--fault-rate"; "--fault-seed";
               "--serve-machines"; "--supervise-retries";
               "--supervise-threshold"; "--supervise-cooldown";
               "--supervise-timeout-ms"; "--supervise-backoff-ms";
             ] ->
        Error (flag ^ " requires a value")
    | arg :: _ -> Error (Printf.sprintf "unknown stack argument %S" arg)
  in
  go base args

let cells_sweep_of_env () =
  match Cells.Partition.cells_of_env () with Some ns -> ns | None -> [ 1; 4 ]

type built = {
  spec : spec;
  scheduler : Scheduler.t;
  epoch : Obs.epoch;
  shutdown : unit -> unit;
  breakdown : unit -> Cells.Coordinator.breakdown option;
}

let noop () = ()
let no_breakdown () = None

let aladdin_options spec =
  {
    Aladdin.Aladdin_scheduler.default_options with
    il = spec.il;
    dl = spec.dl;
    weight_base = spec.weight_base;
  }

let build spec =
  (match spec.dijkstra with
  | Some Auto -> Flownet.Dijkstra.set_queue_policy Flownet.Dijkstra.Auto
  | Some Heap -> Flownet.Dijkstra.set_queue_policy Flownet.Dijkstra.Force_heap
  | Some Dial -> Flownet.Dijkstra.set_queue_policy Flownet.Dijkstra.Force_dial
  | None -> ());
  let base, shutdown, breakdown =
    match spec.kind with
    | Aladdin ->
        ( Aladdin.Aladdin_scheduler.make ~options:(aladdin_options spec) (),
          noop,
          no_breakdown )
    | Aladdin_warm ->
        ( Aladdin.Aladdin_scheduler.make_warm ~options:(aladdin_options spec) (),
          noop,
          no_breakdown )
    | Cells ->
        let comp =
          Aladdin.Cells_scheduler.create ?cells:spec.cells
            ?mode:spec.cells_mode ?supervise:spec.supervise ()
        in
        ( Aladdin.Cells_scheduler.scheduler comp,
          (fun () -> Aladdin.Cells_scheduler.shutdown comp),
          fun () -> Aladdin.Cells_scheduler.last_breakdown comp )
    | Firmament ->
        let solver =
          match spec.solver with
          | Some s -> s
          | None -> Firmament.default.Firmament.solver
        in
        ( Firmament.make
            ~config:
              {
                Firmament.default with
                cost_model = spec.cost_model;
                reschd = spec.reschd;
                solver;
              }
            (),
          noop,
          no_breakdown )
    | Medea ->
        ( Medea.make
            ~config:
              {
                Medea.default with
                weights =
                  { Medea.a = spec.medea_a; b = spec.medea_b; c = spec.medea_c };
              }
            (),
          noop,
          no_breakdown )
    | Gokube -> (Gokube.make (), noop, no_breakdown)
    | Ladder ->
        ( Ladder.make
            ?deadline_ms:
              (if spec.deadline_ms > 0. then Some spec.deadline_ms else None)
            ?rungs:spec.ladder_rungs (),
          noop,
          no_breakdown )
  in
  let sched =
    if spec.deadline_ms > 0. && spec.kind <> Ladder then
      Ladder.make ~deadline_ms:spec.deadline_ms ?rungs:spec.ladder_rungs
        ~first:(label spec, base) ()
    else base
  in
  let sched =
    if spec.audit then
      Audit.wrap
        ~place:(fun cl c -> Aladdin.Migration.repair_placement cl c)
        sched
    else sched
  in
  { spec; scheduler = sched; epoch = Obs.epoch (); shutdown; breakdown }

let run_counters b = Obs.counters_since b.epoch

let install_faults spec =
  if spec.fault_rate > 0. then
    Fault.install
      (Fault.make ~arc_cost_flip:spec.fault_rate
         ~arc_capacity_drop:spec.fault_rate
         ~solver_step_failure:spec.fault_rate
         ~machine_revocation:spec.fault_rate
         ~trace_line_corruption:spec.fault_rate ~seed:spec.fault_seed ())

let serve_sweep ?n_machines spec ~workload =
  match spec.serve with
  | None -> invalid_arg "Stack.serve_sweep: spec carries no serve config"
  | Some sv ->
      let machines = Option.value n_machines ~default:sv.serve_machines in
      let make_cluster () =
        Cluster.create
          (Workload.topology workload ~n_machines:machines)
          ~constraints:(Workload.constraint_set workload)
      in
      let builds = ref [] in
      let make_sched () =
        let b = build spec in
        builds := b :: !builds;
        b.scheduler
      in
      let r =
        Serve.Runner.sweep sv.serve_cfg ~make_sched ~make_cluster ~workload
      in
      List.iter (fun b -> b.shutdown ()) !builds;
      r
