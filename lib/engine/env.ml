let int_opt name =
  match Sys.getenv_opt name with
  | Some s -> int_of_string_opt (String.trim s)
  | None -> None

let float_opt name =
  match Sys.getenv_opt name with
  | Some s -> float_of_string_opt (String.trim s)
  | None -> None

let string_opt name = Sys.getenv_opt name
let int name default = Option.value ~default (int_opt name)
let float name default = Option.value ~default (float_opt name)
let string name default = Option.value ~default (string_opt name)
let set name = Sys.getenv_opt name <> None
