(** Fig. 13: algorithm overhead of Aladdin+IL+DL under the four arrival
    characteristics — (a) total scheduling time as the cluster grows, and
    (b) the migration cost (number of migrations). *)

type point = {
  machines : int;
  order : Arrival.order;
  elapsed_s : float;
  migrations : int;
  preemptions : int;
  paths_explored : int;
  stack_elapsed_s : float;
      (** same workload/order through the [--sched]-configured stack
          (default: Aladdin sharded over 4 cells) *)
}

val sizes : Exp_config.t -> int list
val run : Exp_config.t -> point list
val print : Exp_config.t -> unit
