type row = {
  scheduler : string;
  undeployed_pct : float;
  paper_pct : float option;
  n_violations : int;
  anti_affinity_pct : float;
}

type panel = { label : string; rows : row list }

(* The scheduler line-up of each panel, with the paper's reported
   undeployed percentages where the text/figures quote them. *)
let panels_spec =
  [
    ( "(a) Firmament(1), Medea(1,1,1), Aladdin(16)",
      [
        (`Gokube, Some 21.2);
        (`Firmament (Cost_model.Trivial, 1), Some 34.7);
        (`Firmament (Cost_model.Quincy, 1), Some 25.1);
        (`Firmament (Cost_model.Octopus, 1), Some 10.7);
        (`Medea (1., 1., 1.), Some 12.9);
        (`Aladdin 16, Some 0.);
      ] );
    ( "(b) Firmament(2), Medea(1,1,0.5), Aladdin(32)",
      [
        (`Gokube, Some 21.2);
        (`Firmament (Cost_model.Trivial, 2), Some 28.2);
        (`Firmament (Cost_model.Quincy, 2), Some 16.7);
        (`Firmament (Cost_model.Octopus, 2), Some 7.2);
        (`Medea (1., 1., 0.5), Some 5.2);
        (`Aladdin 32, Some 0.);
      ] );
    ( "(c) Firmament(4), Medea(1,1,0), Aladdin(64)",
      [
        (`Gokube, Some 21.2);
        (`Firmament (Cost_model.Trivial, 4), Some 15.6);
        (`Firmament (Cost_model.Quincy, 4), Some 3.5);
        (`Firmament (Cost_model.Octopus, 4), Some 6.5);
        (`Medea (1., 1., 0.), Some 5.2);
        (`Aladdin 64, Some 0.);
      ] );
    ( "(d) Firmament(8), Medea(1,0.5,0.5), Aladdin(128)",
      [
        (`Gokube, Some 21.2);
        (`Firmament (Cost_model.Trivial, 8), Some 4.3);
        (`Firmament (Cost_model.Quincy, 8), Some 3.5);
        (`Firmament (Cost_model.Octopus, 8), Some 10.7);
        (`Medea (1., 0.5, 0.5), Some 5.8);
        (`Aladdin 128, Some 0.);
      ] );
  ]

(* Each row is an engine stack; the extra [`Stack] row is the
   [--sched]-configured stack (default: Aladdin sharded over 4 cells),
   shut down after its replay to release any cell domains. *)
let instantiate cfg = function
  | `Gokube -> (Sched_zoo.gokube (), fun () -> ())
  | `Firmament (cm, i) -> (Sched_zoo.firmament cm ~reschd:i, fun () -> ())
  | `Medea (a, b, c) -> (Sched_zoo.medea ~a ~b ~c, fun () -> ())
  | `Aladdin base -> (Sched_zoo.aladdin ~base (), fun () -> ())
  | `Stack ->
      let b = Engine.Stack.build (Exp_config.stack_or_cells cfg) in
      (b.Engine.Stack.scheduler, b.Engine.Stack.shutdown)

let run cfg =
  let w = Exp_config.workload cfg in
  let total = Workload.n_containers w in
  List.map
    (fun (label, specs) ->
      let rows =
        List.map
          (fun (spec, paper_pct) ->
            let sched, shutdown = instantiate cfg spec in
            let r =
              Replay.run_workload sched w ~n_machines:cfg.Exp_config.machines
            in
            shutdown ();
            let o = r.Replay.outcome in
            (* Fig. 9 counts "constraint violations": undeployed containers
               plus placements the scheduler tolerated in violation of a
               constraint (relevant for Medea with c > 0). *)
            let placed_ids = Hashtbl.create 256 in
            List.iter
              (fun (cid, _) -> Hashtbl.replace placed_ids cid ())
              o.Scheduler.placed;
            let tolerated =
              o.Scheduler.violations
              |> List.filter_map (fun v ->
                     let cid = Violation.container v in
                     if Hashtbl.mem placed_ids cid then Some cid else None)
              |> List.sort_uniq Int.compare
              |> List.length
            in
            {
              scheduler = r.Replay.scheduler;
              undeployed_pct =
                Metrics.undeployed_pct o ~total
                +. (100. *. float_of_int tolerated /. float_of_int total);
              paper_pct;
              n_violations = List.length o.Scheduler.violations;
              anti_affinity_pct = Metrics.anti_affinity_ratio_pct o;
            })
          (specs @ [ (`Stack, None) ])
      in
      { label; rows })
    panels_spec

let print cfg =
  let panels = run cfg in
  Report.section
    (Printf.sprintf
       "Fig. 9: placement quality — %d machines, scale %.2f"
       cfg.Exp_config.machines cfg.Exp_config.factor);
  List.iter
    (fun { label; rows } ->
      Report.subsection label;
      Report.table
        ~header:[ "scheduler"; "undeployed"; "paper"; "violations" ]
        (List.map
           (fun r ->
             [
               r.scheduler;
               Report.pct r.undeployed_pct;
               (match r.paper_pct with
               | Some p -> Report.pct p
               | None -> "-");
               string_of_int r.n_violations;
             ])
           rows))
    panels;
  Report.subsection
    "(e) anti-affinity share of constraint violations (paper: >= 65%)";
  let rows =
    List.concat_map
      (fun { rows; _ } ->
        List.filter_map
          (fun r ->
            if r.n_violations = 0 then None
            else Some [ r.scheduler; Report.pct r.anti_affinity_pct ])
          rows)
      panels
  in
  Report.table ~header:[ "scheduler"; "anti-affinity share" ] rows
