(** Raw figure data as tab-separated files, one per figure, for external
    plotting (gnuplot/matplotlib). Columns mirror the paper's axes. *)

val export : ?ids:string list -> dir:string -> Exp_config.t -> string list
(** Runs the requested figures ([?ids] in experiments_main's vocabulary,
    default all of fig8/9/10/11/12/13) and writes [figN.tsv] under [dir]
    (created if missing); returns the paths written. *)

val serve : dir:string -> Serve.Runner.sweep_result -> string list
(** [serve_sweep.tsv]: one row per sweep point (rate, admission and
    placement counts, latency tails, saturation flag). *)
