(** The scheduler configurations used across the evaluation (Table I plus
    the parameter sweeps of Fig. 9), all built through {!Engine.Stack} so
    the experiments, bench and serving harnesses share one construction
    path. *)

val gokube : unit -> Scheduler.t

val firmament : ?solver:string -> Cost_model.t -> reschd:int -> Scheduler.t
(** [?solver] pins a {!Flownet.Registry} backend by name; the default
    follows [ALADDIN_SOLVER] (falling back to ["mincost"]). *)

val medea : a:float -> b:float -> c:float -> Scheduler.t
val aladdin : ?base:int -> ?il:bool -> ?dl:bool -> unit -> Scheduler.t

val cells :
  ?cells:int -> ?mode:Cells.Coordinator.mode -> unit -> Engine.Stack.built
(** The sharded composite. Returned as the full {!Engine.Stack.built} —
    callers must [shutdown] it after the replay to release its domains. *)

val descriptions : (string * string) list
(** Table I: name → one-line description. *)
