type point = {
  machines : int;
  order : Arrival.order;
  elapsed_s : float;
  migrations : int;
  preemptions : int;
  paths_explored : int;
  stack_elapsed_s : float;
      (** same workload and order through the [--sched]-configured stack
          (default: Aladdin over 4 cells) *)
}

let sizes cfg =
  List.sort_uniq Int.compare
    (List.map
       (fun n -> Exp_config.scale_machines cfg n)
       [ 1_000; 2_000; 4_000; 8_000; 10_000 ])

let orders =
  Arrival.
    [
      High_priority_first;
      Low_priority_first;
      Large_anti_affinity_first;
      Small_anti_affinity_first;
    ]

let run cfg =
  List.concat_map
    (fun machines ->
      let factor = float_of_int machines /. 10_000. in
      let params =
        { (Alibaba.scaled factor) with Alibaba.seed = cfg.Exp_config.seed }
      in
      let w = Alibaba.generate params in
      List.map
        (fun order ->
          let sched = Sched_zoo.aladdin () in
          let r = Replay.run_workload ~order sched w ~n_machines:machines in
          let paths =
            match Aladdin.Aladdin_scheduler.last_search_stats () with
            | Some s -> s.Aladdin.Search.paths_explored
            | None -> 0
          in
          let b = Engine.Stack.build (Exp_config.stack_or_cells cfg) in
          let rs =
            Replay.run_workload ~order b.Engine.Stack.scheduler w
              ~n_machines:machines
          in
          b.Engine.Stack.shutdown ();
          {
            machines;
            order;
            elapsed_s = r.Replay.elapsed_s;
            migrations = r.Replay.outcome.Scheduler.migrations;
            preemptions = r.Replay.outcome.Scheduler.preemptions;
            paths_explored = paths;
            stack_elapsed_s = rs.Replay.elapsed_s;
          })
        orders)
    (sizes cfg)

let print cfg =
  let points = run cfg in
  Report.section
    (Printf.sprintf
       "Fig. 13: Aladdin+IL+DL algorithm overhead and migration cost (scale %.2f)"
       cfg.Exp_config.factor);
  Report.subsection "(a) total scheduling time (paper: linear, <= ~15 min full scale)";
  let stack_label = Engine.Stack.label (Exp_config.stack_or_cells cfg) in
  Report.table
    ~header:
      [ "machines"; "order"; "elapsed"; stack_label; "paths explored" ]
    (List.map
       (fun p ->
         [
           string_of_int p.machines;
           Arrival.abbrev p.order;
           Printf.sprintf "%.3f s" p.elapsed_s;
           Printf.sprintf "%.3f s" p.stack_elapsed_s;
           string_of_int p.paths_explored;
         ])
       points);
  Report.subsection "(b) migration cost (paper: <= ~1700 at full scale, CSA worst)";
  Report.table
    ~header:[ "machines"; "order"; "migrations"; "preemptions" ]
    (List.map
       (fun p ->
         [
           string_of_int p.machines;
           Arrival.abbrev p.order;
           string_of_int p.migrations;
           string_of_int p.preemptions;
         ])
       points)
