let gokube () = Gokube.make ()

let firmament ?solver cost_model ~reschd =
  let solver =
    match solver with Some s -> s | None -> Firmament.default.Firmament.solver
  in
  Firmament.make ~config:{ Firmament.default with cost_model; reschd; solver } ()

let medea ~a ~b ~c =
  Medea.make ~config:{ Medea.default with weights = { Medea.a; b; c } } ()

let aladdin ?base ?(il = true) ?(dl = true) () =
  Aladdin.Aladdin_scheduler.make
    ~options:
      { Aladdin.Aladdin_scheduler.default_options with il; dl; weight_base = base }
    ()

let descriptions =
  [
    ("Firmament-TRIVIAL", "Containers always scheduled if resources are idle.");
    ("Firmament-QUINCY", "Original Quincy cost model, lower cost priority.");
    ("Firmament-OCTOPUS", "Simple load balancing based on container counts.");
    ("Medea", "Balance resource efficiency and constraint violations.");
    ("Go-Kube", "Scoring machines and choose the best one.");
    ("Aladdin", "Optimized maximum flow with nonlinear capacities (this work).");
  ]
