(* The evaluation's scheduler line-up, expressed as engine specs: every
   configuration here is an ordinary {!Engine.Stack.spec}, so anything
   the experiments run can also be run by the bench, the serving sweep
   or the fault driver with identical construction. *)

let spec = Engine.Stack.default
let build s = (Engine.Stack.build s).Engine.Stack.scheduler
let gokube () = build { spec with kind = Engine.Stack.Gokube }

let firmament ?solver cost_model ~reschd =
  build { spec with kind = Engine.Stack.Firmament; cost_model; reschd; solver }

let medea ~a ~b ~c =
  build
    { spec with kind = Engine.Stack.Medea; medea_a = a; medea_b = b; medea_c = c }

let aladdin ?base ?(il = true) ?(dl = true) () =
  build { spec with kind = Engine.Stack.Aladdin; il; dl; weight_base = base }

let cells ?cells ?mode () =
  Engine.Stack.build
    { spec with kind = Engine.Stack.Cells; cells; cells_mode = mode }

let descriptions =
  [
    ("Firmament-TRIVIAL", "Containers always scheduled if resources are idle.");
    ("Firmament-QUINCY", "Original Quincy cost model, lower cost priority.");
    ("Firmament-OCTOPUS", "Simple load balancing based on container counts.");
    ("Medea", "Balance resource efficiency and constraint violations.");
    ("Go-Kube", "Scoring machines and choose the best one.");
    ("Aladdin", "Optimized maximum flow with nonlinear capacities (this work).");
    ( "Cells",
      "Aladdin sharded over rack-aligned cells, one solver domain each." );
  ]
