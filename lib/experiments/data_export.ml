let write_tsv ~dir name header rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "\t" header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (String.concat "\t" row);
          output_char oc '\n')
        rows);
  path

let fig8 ~dir cfg =
  let r = Fig8.run cfg in
  write_tsv ~dir "fig8_cdf.tsv" [ "app_size"; "cdf" ]
    (List.map
       (fun (s, f) -> [ string_of_int s; Printf.sprintf "%.4f" f ])
       r.Fig8.cdf)

let fig9 ~dir cfg =
  let panels = Fig9.run cfg in
  write_tsv ~dir "fig9_quality.tsv"
    [ "panel"; "scheduler"; "violations_pct"; "paper_pct"; "anti_share_pct" ]
    (List.concat_map
       (fun { Fig9.label; rows } ->
         List.map
           (fun (r : Fig9.row) ->
             [
               label;
               r.Fig9.scheduler;
               Printf.sprintf "%.2f" r.Fig9.undeployed_pct;
               (match r.Fig9.paper_pct with
               | Some p -> Printf.sprintf "%.1f" p
               | None -> "-");
               Printf.sprintf "%.1f" r.Fig9.anti_affinity_pct;
             ])
           rows)
       panels)

let fig10_11 ~dir cfg =
  let cells = Fig10.run cfg in
  let p10 =
    write_tsv ~dir "fig10_machines.tsv"
      [ "scheduler"; "order"; "machines_used" ]
      (List.filter_map
         (fun (c : Fig10.cell) ->
           Option.map
             (fun u ->
               [ c.Fig10.scheduler; Arrival.abbrev c.Fig10.order; string_of_int u ])
             c.Fig10.used)
         cells)
  in
  let p11 =
    write_tsv ~dir "fig11_utilization.tsv"
      [ "scheduler"; "order"; "min_pct"; "avg_pct"; "max_pct" ]
      (List.filter_map
         (fun (c : Fig10.cell) ->
           Option.map
             (fun (u : Metrics.util_summary) ->
               [
                 c.Fig10.scheduler;
                 Arrival.abbrev c.Fig10.order;
                 Printf.sprintf "%.1f" u.Metrics.min_pct;
                 Printf.sprintf "%.1f" u.Metrics.mean_pct;
                 Printf.sprintf "%.1f" u.Metrics.max_pct;
               ])
             c.Fig10.util)
         cells)
  in
  [ p10; p11 ]

let fig12 ~dir cfg =
  let points = Fig12.run cfg in
  match points with
  | [] -> []
  | first :: _ ->
      let names = List.map fst first.Fig12.latency_ms in
      [
        write_tsv ~dir "fig12_latency.tsv"
          ("machines" :: "containers" :: names)
          (List.map
             (fun (p : Fig12.point) ->
               string_of_int p.Fig12.machines
               :: string_of_int p.Fig12.containers
               :: List.map
                    (fun (_, ms) -> Printf.sprintf "%.4f" ms)
                    p.Fig12.latency_ms)
             points);
      ]

let fig13 ~dir cfg =
  let points = Fig13.run cfg in
  [
    write_tsv ~dir "fig13_overhead.tsv"
      [
        "machines"; "order"; "elapsed_s"; "stack_elapsed_s"; "paths";
        "migrations"; "preemptions";
      ]
      (List.map
         (fun (p : Fig13.point) ->
           [
             string_of_int p.Fig13.machines;
             Arrival.abbrev p.Fig13.order;
             Printf.sprintf "%.4f" p.Fig13.elapsed_s;
             Printf.sprintf "%.4f" p.Fig13.stack_elapsed_s;
             string_of_int p.Fig13.paths_explored;
             string_of_int p.Fig13.migrations;
             string_of_int p.Fig13.preemptions;
           ])
         points);
  ]

let serve ~dir (r : Serve.Runner.sweep_result) =
  [
    write_tsv ~dir "serve_sweep.tsv"
      [
        "rate"; "arrivals"; "admitted"; "rejected"; "shed"; "placed";
        "undeployed"; "batches"; "p50_ms"; "p99_ms"; "p999_ms"; "max_ms";
        "queue_depth_max"; "saturated";
      ]
      (List.map
         (fun (p : Serve.Runner.point) ->
           [
             Printf.sprintf "%.2f" p.Serve.Runner.rate;
             string_of_int p.Serve.Runner.arrivals;
             string_of_int p.Serve.Runner.admitted;
             string_of_int p.Serve.Runner.rejected;
             string_of_int p.Serve.Runner.shed;
             string_of_int p.Serve.Runner.placed;
             string_of_int p.Serve.Runner.undeployed;
             string_of_int p.Serve.Runner.batches;
             Printf.sprintf "%.4f" p.Serve.Runner.p50_ms;
             Printf.sprintf "%.4f" p.Serve.Runner.p99_ms;
             Printf.sprintf "%.4f" p.Serve.Runner.p999_ms;
             Printf.sprintf "%.4f" p.Serve.Runner.max_ms;
             string_of_int p.Serve.Runner.queue_depth_max;
             string_of_bool p.Serve.Runner.saturated;
           ])
         r.Serve.Runner.points);
  ]

(* Export only the figures the caller asked for (default: all). The ids
   follow experiments_main's vocabulary; fig10/fig11 share one run. *)
let export ?ids ~dir cfg =
  let wanted id =
    match ids with
    | None -> true
    | Some l -> List.mem id l || List.mem "all" l
  in
  List.concat
    [
      (if wanted "fig8" then [ fig8 ~dir cfg ] else []);
      (if wanted "fig9" then [ fig9 ~dir cfg ] else []);
      (if wanted "fig10" || wanted "fig11" then fig10_11 ~dir cfg else []);
      (if wanted "fig12" then fig12 ~dir cfg else []);
      (if wanted "fig13" then fig13 ~dir cfg else []);
    ]
