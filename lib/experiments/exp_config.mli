(** Experiment scaling. The paper runs 100,000 containers against a
    10,000-machine cluster; the default here is 1/10 of that so the whole
    suite finishes in minutes. Shapes are scale-invariant (checked by the
    integration tests at 1/100). *)

type t = {
  factor : float;    (** 1.0 = paper scale *)
  seed : int;
  machines : int;    (** Fig. 9 cluster size at this scale *)
  containers : int;  (** workload size at this scale *)
  stack : Engine.Stack.spec option;
      (** a [--sched]-configured stack to run alongside (or instead of)
          each figure's default line-up; [None] = defaults only *)
}

val make :
  ?seed:int -> ?stack:Engine.Stack.spec -> factor:float -> unit -> t

val default : t
(** factor 0.1, seed 42 → 1,000 machines / ~10,000 containers. *)

val of_env : unit -> t
(** Honours [ALADDIN_SCALE] (a float, or ["full"]) and [ALADDIN_SEED]. *)

val workload : t -> Workload.t
(** The scale's calibrated workload (generated once per call). *)

val scale_machines : t -> int -> int
(** Scale a paper machine count (e.g. 4000 → 400 at factor 0.1). *)

val stack_or_cells : t -> Engine.Stack.spec
(** The configured {!stack}, or the default sharded-cells spec (4 cells)
    — the extra column Fig. 9 / Fig. 13 report next to the paper
    line-up. *)
