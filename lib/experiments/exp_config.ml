type t = {
  factor : float;
  seed : int;
  machines : int;
  containers : int;
  stack : Engine.Stack.spec option;
}

let paper_machines = 10_000
let paper_containers = 100_000

let make ?(seed = 42) ?stack ~factor () =
  if factor <= 0. then invalid_arg "Exp_config.make: factor must be positive";
  {
    factor;
    seed;
    stack;
    machines =
      max 8 (int_of_float (Float.round (float_of_int paper_machines *. factor)));
    containers =
      max 16
        (int_of_float (Float.round (float_of_int paper_containers *. factor)));
  }

let default = make ~factor:0.1 ()

let of_env () =
  let factor =
    match Sys.getenv_opt "ALADDIN_SCALE" with
    | None -> 0.1
    | Some "full" | Some "FULL" -> 1.0
    | Some s -> ( match float_of_string_opt s with Some f when f > 0. -> f | _ -> 0.1)
  in
  let seed =
    match Sys.getenv_opt "ALADDIN_SEED" with
    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 42)
    | None -> 42
  in
  make ~seed ~factor ()

let workload t =
  let params = { (Alibaba.scaled t.factor) with Alibaba.seed = t.seed } in
  Alibaba.generate params

let scale_machines t n =
  max 4 (int_of_float (Float.round (float_of_int n *. t.factor)))

let stack_or_cells t =
  match t.stack with
  | Some spec -> spec
  | None ->
      { Engine.Stack.default with kind = Engine.Stack.Cells; cells = Some 4 }
