(** Open-loop serving runner: arrivals → admission queue → adaptive
    batches → any {!Scheduler.t}, on virtual time.

    The runner lives on a {!Des} whose clock is the serving clock:
    arrival gaps come from the seeded {!Arrivals} process, and each
    batch's service time is the {e measured wall time} of the real
    scheduler call, mapped 1:1 onto virtual seconds. That makes the
    latency distribution an honest open-loop measurement — arrivals keep
    coming while a batch is in flight, the queue grows, and
    arrival→commit latency includes queueing delay — while the whole
    sweep still runs as fast as the scheduler can compute.

    Backpressure is layered: the bounded priority queue sheds / rejects
    at the edge ({!Admission}), and a batch that starts with the queue
    above the watermark is routed through the PR 5 degradation ladder
    ({!Ladder.make} with the serving scheduler as preferred first rung,
    [overload_deadline_ms] per batch) instead of the bare scheduler.
    Injected faults ({!Fault.Injected}) escaping the scheduler fail the
    batch cleanly: its requests count as failed, the run continues.

    With [service_ms > 0] the measured service time is replaced by a
    fixed virtual one, making the entire run a deterministic function of
    the config — the precondition for [?journal] crash consistency: each
    committed batch is appended to a {!Journal} (placement map, fault
    stream position, request count), and a run killed by
    {!Fault.trip_process_kill} (probes ["serve.batch_take"] /
    ["serve.batch_commit"]) resumes by replaying the DES from t0 against
    the same initial cluster — journaled batches skip the scheduler and
    diff the cluster onto their committed placements; admission queue,
    victim bags and rng streams rebuild bit-exact; the first uncommitted
    batch runs live after the fault stream fast-forwards to the last
    commit's recorded position. Resumes land in [serve.resume.resumes],
    [.replayed_batches] and [.replayed_requests];
    [serve.taken_requests] counts every dequeued request, so
    [taken - Σ committed batch sizes] is the in-flight loss window at
    any kill point.

    Per-request arrival→commit latency lands in a per-run
    [serve.latency.<n>] histogram plus the aggregate
    [serve.latency_ns]; counters are [serve.arrivals], [.admitted],
    [.rejected], [.shed], [.placed], [.undeployed], [.failed_requests],
    [.removed], [.noop_removes], [.batches], [.failed_batches] and
    [.overload_batches]. *)

type config = {
  rate : float;  (** arrivals per virtual second; [run] requires > 0 *)
  duration : float;  (** virtual seconds of open-loop arrivals *)
  queue_bound : int;
  watermark : int;
  batch_size : int;
  batch_deadline : float;  (** flush timer, virtual seconds *)
  overload_deadline_ms : float;  (** ladder budget for overload batches *)
  service_ms : float;
      (** [> 0.]: fixed virtual service time per batch (deterministic
          runs, required for [?journal]); [0.]: measured wall time *)
  seed : int;
  modulation : Arrivals.modulation;
}

val config_of_env : unit -> config
(** Defaults overridable through [ALADDIN_SERVE_RATE] (0 = calibrate in
    {!sweep}), [ALADDIN_SERVE_DURATION_S], [ALADDIN_SERVE_QUEUE],
    [ALADDIN_SERVE_WATERMARK], [ALADDIN_SERVE_BATCH],
    [ALADDIN_SERVE_BATCH_DEADLINE_MS],
    [ALADDIN_SERVE_OVERLOAD_DEADLINE_MS], [ALADDIN_SERVE_SERVICE_MS],
    [ALADDIN_SERVE_SEED] and [ALADDIN_SERVE_MODULATION]. *)

type point = {
  rate : float;
  arrivals : int;
  admitted : int;
  rejected : int;
  shed : int;
  placed : int;  (** containers actually deployed *)
  undeployed : int;  (** containers the scheduler declined *)
  failed_requests : int;  (** requests lost to failed batches *)
  removed : int;
  noop_removes : int;  (** remove/scale-down targets already gone *)
  batches : int;
  failed_batches : int;
  overload_batches : int;  (** batches routed through the ladder *)
  mean_batch_fill : float;
  samples : int;  (** committed requests with a recorded latency *)
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
  mean_ms : float;
  queue_depth_max : int;
  queue_depth_mean : float;
  saturated : bool;  (** backpressure engaged: [rejected + shed > 0] *)
  sim_s : float;  (** virtual time at drain *)
  wall_ms : float;
}

val run :
  ?journal:string ->
  config -> sched:Scheduler.t -> cluster:Cluster.t ->
  workload:Workload.t -> point
(** One serving run at [config.rate] until [duration] of arrivals plus
    drain. The cluster may be pre-warmed; fresh containers get ids above
    anything in the workload or cluster. [?journal] is a journal file
    path: committed batches already in it are replayed (resume after a
    kill), live batches are appended — pass the same config and an
    identically initialized cluster as the killed run, and the resumed
    point is fingerprint-identical to an uninterrupted one.
    @raise Invalid_argument when [config.rate <= 0], on an empty
    workload, or when [?journal] is given with [service_ms <= 0]. *)

type sweep_result = {
  base_rate : float;  (** multiplier-1 rate of the sweep *)
  calibrated : bool;  (** base rate measured from a probe batch *)
  points : point list;  (** increasing rate, last one saturated *)
}

val sweep :
  ?max_points:int ->
  config ->
  make_sched:(unit -> Scheduler.t) ->
  make_cluster:(unit -> Cluster.t) ->
  workload:Workload.t ->
  sweep_result
(** Load sweep bracketing the saturation knee: when [config.rate <= 0]
    the base rate is calibrated from a short probe run on a throwaway
    cluster (the scheduler's worst per-request batch service). The
    anchor point runs at [base * 0.25] on a fresh cluster/scheduler
    pair; from there rates double until a point saturates — or, if the
    anchor is already saturated, halve until one is underloaded — up to
    [max_points] (default 8) runs, returned in increasing-rate order.
    Each point's latency histogram gets its own [serve.latency.<n>]
    series. *)

val point_json : point -> string
val sweep_json : config -> sweep_result -> string
(** The bench's ["serve"] section: [{"config": {...}, "base_rate": ...,
    "calibrated": ..., "points": [...]}]. *)
