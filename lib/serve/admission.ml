type t = {
  bound : int;
  watermark : int;
  classes : (int, Request.t Queue.t) Hashtbl.t;  (* priority -> FIFO *)
  mutable len : int;
}

let create ~bound ~watermark =
  if bound <= 0 || watermark <= 0 || watermark > bound then
    invalid_arg "Admission.create: need 0 < watermark <= bound";
  { bound; watermark; classes = Hashtbl.create 8; len = 0 }

let length t = t.len

let lane t p =
  match Hashtbl.find_opt t.classes p with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.classes p q;
      q

(* Priority classes are few (trace priorities are small ints), so a fold
   over the lane table is cheaper than keeping an ordered index. *)
let lowest_nonempty t =
  Hashtbl.fold
    (fun p q acc ->
      if Queue.is_empty q then acc
      else match acc with Some p' when p' <= p -> acc | _ -> Some p)
    t.classes None

let highest_nonempty t =
  Hashtbl.fold
    (fun p q acc ->
      if Queue.is_empty q then acc
      else match acc with Some p' when p' >= p -> acc | _ -> Some p)
    t.classes None

(* Oldest entry of the lowest class. *)
let shed_one t =
  match lowest_nonempty t with
  | None -> None
  | Some p ->
      let r = Queue.pop (Hashtbl.find t.classes p) in
      t.len <- t.len - 1;
      Some r

type verdict = Admitted of Request.t list | Rejected

let offer t (r : Request.t) =
  if t.len >= t.bound then
    match lowest_nonempty t with
    | Some p when p < r.priority ->
        let shed = Option.to_list (shed_one t) in
        Queue.push r (lane t r.priority);
        t.len <- t.len + 1;
        Admitted shed
    | _ -> Rejected
  else begin
    Queue.push r (lane t r.priority);
    t.len <- t.len + 1;
    let shed = ref [] in
    let blocked = ref false in
    while (not !blocked) && t.len > t.watermark do
      match lowest_nonempty t with
      | Some p when p < r.priority -> (
          match shed_one t with
          | Some s -> shed := s :: !shed
          | None -> blocked := true)
      | _ -> blocked := true
    done;
    Admitted (List.rev !shed)
  end

let take t ~max =
  let out = ref [] in
  let n = ref 0 in
  let exhausted = ref false in
  while (not !exhausted) && !n < max do
    match highest_nonempty t with
    | None -> exhausted := true
    | Some p ->
        let q = Hashtbl.find t.classes p in
        while !n < max && not (Queue.is_empty q) do
          out := Queue.pop q :: !out;
          t.len <- t.len - 1;
          incr n
        done
  done;
  List.rev !out
