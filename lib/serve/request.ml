type kind =
  | Place of Container.t
  | Remove of Container.id
  | Scale of { app : Application.id; delta : int }

type t = { id : int; kind : kind; priority : int; arrival : float }

let kind_label t =
  match t.kind with
  | Place _ -> "place"
  | Remove _ -> "remove"
  | Scale _ -> "scale"

let pp ppf t =
  match t.kind with
  | Place c ->
      Format.fprintf ppf "#%d place c%d prio=%d @%g" t.id c.Container.id
        t.priority t.arrival
  | Remove id ->
      Format.fprintf ppf "#%d remove c%d prio=%d @%g" t.id id t.priority
        t.arrival
  | Scale { app; delta } ->
      Format.fprintf ppf "#%d scale a%d %+d prio=%d @%g" t.id app delta
        t.priority t.arrival
