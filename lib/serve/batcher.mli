(** Adaptive batch trigger: size or deadline, whichever fires first.

    The runner starts a batch immediately when the queue reaches the size
    threshold; otherwise the batcher arms a one-shot flush timer on the
    DES so a lone request is served within [deadline] seconds instead of
    waiting for company. Starting a size-triggered batch {e disarms} the
    pending flush through {!Des.cancel} — the production user of the
    DES's eager cancellation path. A generation counter guards against a
    stale flush racing a newer arm. *)

type t

val create : size:int -> deadline:float -> t
(** @raise Invalid_argument on a non-positive size or deadline. *)

val size : t -> int
val size_ready : t -> queued:int -> bool

val arm : t -> 'a Des.t -> flush:(int -> 'a) -> unit
(** Schedule [flush gen] after [deadline] unless a flush is already
    armed. *)

val note_fired : t -> gen:int -> bool
(** A flush event popped; [true] iff it is the currently armed
    generation (then the batcher is disarmed). *)

val disarm : t -> 'a Des.t -> unit
(** Cancel the pending flush event, if any. *)
