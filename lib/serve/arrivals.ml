type modulation =
  | Steady
  | Burst of { period : float; duty : float; amp : float }
  | Diurnal of { period : float; amp : float }

type kind_mix = { place : float; remove : float; scale : float }

let default_mix = { place = 0.6; remove = 0.25; scale = 0.15 }

type t = {
  rng : Rng.t;
  rate : float;
  modulation : modulation;
  mix : kind_mix;
}

let create ?(modulation = Steady) ?(mix = default_mix) ~rate ~seed () =
  if rate <= 0. || not (Float.is_finite rate) then
    invalid_arg "Arrivals.create: rate must be positive";
  if mix.place < 0. || mix.remove < 0. || mix.scale < 0. then
    invalid_arg "Arrivals.create: negative mix weight";
  { rng = Rng.create seed; rate; modulation; mix }

let rate t = t.rate

let peak_factor = function
  | Steady -> 1.
  | Burst { amp; _ } | Diurnal { amp; _ } -> 1. +. amp

(* Instantaneous rate multiplier at virtual time [at]. *)
let factor m ~at =
  match m with
  | Steady -> 1.
  | Burst { period; duty; amp } ->
      let phase = Float.rem at period /. period in
      if phase < duty then 1. +. amp else 1.
  | Diurnal { period; amp } ->
      1. +. (amp *. 0.5 *. (1. +. sin (2. *. Float.pi *. at /. period)))

(* Thinning (Lewis–Shedler): draw exponential gaps at the peak rate,
   accept each candidate with probability rate(at)/peak. Exact for any
   modulation bounded by the peak, and O(peak/mean) draws per arrival. *)
let next_gap t ~now =
  let peak = t.rate *. peak_factor t.modulation in
  let rec go at =
    let u = 1. -. Rng.float t.rng in
    (* u in (0,1] so log is finite *)
    let at = at +. (-.log u /. peak) in
    if Rng.float t.rng *. peak <= t.rate *. factor t.modulation ~at then
      at -. now
    else go at
  in
  let gap = go now in
  if gap > 0. then gap else Float.min_float

let draw_kind t =
  let u = Rng.float t.rng in
  if u < t.mix.place then `Place
  else if u < t.mix.place +. t.mix.remove then `Remove
  else `Scale

let modulation_of_string = function
  | "steady" -> Steady
  | "burst" -> Burst { period = 1.0; duty = 0.25; amp = 3.0 }
  | "diurnal" -> Diurnal { period = 10.0; amp = 1.0 }
  | s -> invalid_arg ("Arrivals.modulation_of_string: " ^ s)

let modulation_label = function
  | Steady -> "steady"
  | Burst _ -> "burst"
  | Diurnal _ -> "diurnal"
