(** Seeded open-loop arrival process.

    Inter-arrival gaps are drawn from a (possibly nonhomogeneous) Poisson
    process: a base [rate] in requests per virtual second, optionally
    modulated by a burst square wave or a diurnal sinusoid. Nonhomogeneous
    gaps are sampled by thinning against the peak rate, so the stream is
    exact for any bounded modulation. Everything is driven by one
    splitmix64 stream per process instance — equal seeds give equal
    arrival schedules, independent of how the served system behaves
    (open-loop: the generator never waits for the server). *)

type modulation =
  | Steady
  | Burst of { period : float; duty : float; amp : float }
      (** square wave: rate * (1+amp) for the first [duty] fraction of
          every [period] seconds, base rate otherwise *)
  | Diurnal of { period : float; amp : float }
      (** sinusoid between base rate and rate * (1+amp) *)

type kind_mix = { place : float; remove : float; scale : float }
(** Request-kind probabilities; must sum to ~1. *)

val default_mix : kind_mix
(** Placement-heavy: 0.6 place / 0.25 remove / 0.15 scale. *)

type t

val create :
  ?modulation:modulation -> ?mix:kind_mix -> rate:float -> seed:int ->
  unit -> t
(** @raise Invalid_argument on a non-positive rate or a negative mix. *)

val rate : t -> float

val next_gap : t -> now:float -> float
(** Seconds until the next arrival after virtual time [now]. Strictly
    positive. *)

val draw_kind : t -> [ `Place | `Remove | `Scale ]

val modulation_of_string : string -> modulation
(** ["steady"], ["burst"] or ["diurnal"] (preset shapes).
    @raise Invalid_argument on anything else. *)

val modulation_label : modulation -> string
