(* Open-loop serving runner. Virtual time is the serving clock: arrival
   gaps come from the seeded Poisson process, and a batch's service time
   is the measured wall time of the real scheduler call mapped 1:1 onto
   virtual seconds — so queueing delay is honest (arrivals accumulate
   while a batch is "in flight") but the sweep runs as fast as the
   scheduler computes. With [service_ms > 0] the service time is fixed
   instead, making the whole run a deterministic function of the config —
   the precondition for crash-consistent journaling ([?journal]): a run
   killed mid-sweep resumes by replaying the DES from t0, skipping the
   scheduler for journaled batches (their cluster effects are diffed back
   from the committed placement maps) and going live at the first
   uncommitted batch with queue, bags and rng streams rebuilt bit-exact. *)

type config = {
  rate : float;
  duration : float;
  queue_bound : int;
  watermark : int;
  batch_size : int;
  batch_deadline : float;
  overload_deadline_ms : float;
  service_ms : float;
  seed : int;
  modulation : Arrivals.modulation;
}

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( try float_of_string (String.trim s) with _ -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let config_of_env () =
  let queue_bound = max 1 (env_int "ALADDIN_SERVE_QUEUE" 1024) in
  let watermark =
    let w = env_int "ALADDIN_SERVE_WATERMARK" (3 * queue_bound / 4) in
    max 1 (min queue_bound w)
  in
  {
    rate = env_float "ALADDIN_SERVE_RATE" 0.;
    duration = Float.max 0.01 (env_float "ALADDIN_SERVE_DURATION_S" 1.0);
    queue_bound;
    watermark;
    batch_size = max 1 (env_int "ALADDIN_SERVE_BATCH" 64);
    batch_deadline =
      Float.max 0.1 (env_float "ALADDIN_SERVE_BATCH_DEADLINE_MS" 5.0) /. 1e3;
    overload_deadline_ms =
      Float.max 1. (env_float "ALADDIN_SERVE_OVERLOAD_DEADLINE_MS" 25.0);
    service_ms = Float.max 0. (env_float "ALADDIN_SERVE_SERVICE_MS" 0.);
    seed = env_int "ALADDIN_SERVE_SEED" 42;
    modulation =
      Arrivals.modulation_of_string
        (Option.value ~default:"steady"
           (Sys.getenv_opt "ALADDIN_SERVE_MODULATION"));
  }

type point = {
  rate : float;
  arrivals : int;
  admitted : int;
  rejected : int;
  shed : int;
  placed : int;
  undeployed : int;
  failed_requests : int;
  removed : int;
  noop_removes : int;
  batches : int;
  failed_batches : int;
  overload_batches : int;
  mean_batch_fill : float;
  samples : int;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
  mean_ms : float;
  queue_depth_max : int;
  queue_depth_mean : float;
  saturated : bool;
  sim_s : float;
  wall_ms : float;
}

let c_arrivals = Obs.counter "serve.arrivals"
let c_admitted = Obs.counter "serve.admitted"
let c_rejected = Obs.counter "serve.rejected"
let c_shed = Obs.counter "serve.shed"
let c_placed = Obs.counter "serve.placed"
let c_undeployed = Obs.counter "serve.undeployed"
let c_failed_req = Obs.counter "serve.failed_requests"
let c_removed = Obs.counter "serve.removed"
let c_noop = Obs.counter "serve.noop_removes"
let c_batches = Obs.counter "serve.batches"
let c_failed_batches = Obs.counter "serve.failed_batches"
let c_overload = Obs.counter "serve.overload_batches"
let c_taken = Obs.counter "serve.taken_requests"
let c_resumes = Obs.counter "serve.resume.resumes"
let c_replayed_batches = Obs.counter "serve.resume.replayed_batches"
let c_replayed_requests = Obs.counter "serve.resume.replayed_requests"
let h_latency = Obs.histogram "serve.latency_ns"

(* Per-run latency series get a fresh name so the tail percentiles of one
   sweep point are never polluted by another (registry histograms are
   get-or-create and cannot be zeroed individually). *)
let run_seq = ref 0

(* Constant-time sample/insert/delete set of placed container ids — the
   victim pool for remove and scale-down requests. *)
module Bag = struct
  type t = {
    mutable a : int array;
    mutable n : int;
    idx : (int, int) Hashtbl.t;
  }

  let create () = { a = Array.make 64 0; n = 0; idx = Hashtbl.create 128 }

  let clear t =
    t.n <- 0;
    Hashtbl.reset t.idx

  let add t id =
    if not (Hashtbl.mem t.idx id) then begin
      if t.n >= Array.length t.a then begin
        let b = Array.make (2 * Array.length t.a) 0 in
        Array.blit t.a 0 b 0 t.n;
        t.a <- b
      end;
      t.a.(t.n) <- id;
      Hashtbl.replace t.idx id t.n;
      t.n <- t.n + 1
    end

  let remove t id =
    match Hashtbl.find_opt t.idx id with
    | None -> ()
    | Some i ->
        let last = t.a.(t.n - 1) in
        t.a.(i) <- last;
        Hashtbl.replace t.idx last i;
        Hashtbl.remove t.idx id;
        t.n <- t.n - 1

  let sample t rng = if t.n = 0 then None else Some t.a.(Rng.int rng t.n)
end

type ev = Arrive | Flush of int | Commit of commit

and commit = {
  c_seq : int;  (* 0-based batch sequence number *)
  c_requests : Request.t list;
  c_failed : bool;
  c_placed : int;
  c_undeployed : int;
}

let run ?journal (cfg : config) ~sched ~cluster ~workload =
  if cfg.rate <= 0. then invalid_arg "Runner.run: rate must be positive";
  let n_tpl = Array.length workload.Workload.containers in
  let n_apps = Array.length workload.Workload.apps in
  if n_tpl = 0 || n_apps = 0 then
    invalid_arg "Runner.run: empty workload";
  if journal <> None && cfg.service_ms <= 0. then
    invalid_arg
      "Runner.run: a journal requires a fixed service_ms (measured \
       wall-clock service times are not replayable)";
  (* Trustworthy committed prefix: those batches replay without touching
     the scheduler. The caller must hand us the same initial cluster and
     config as the killed run — the DES re-runs from t0, which is what
     rebuilds admission-queue and victim-bag state exactly. *)
  let prefix =
    match journal with
    | None -> [||]
    | Some path -> Array.of_list (Journal.load path)
  in
  let n_prefix = Array.length prefix in
  if n_prefix > 0 then begin
    Obs.incr c_resumes;
    Obs.add c_replayed_batches n_prefix
  end;
  let jr = Option.map Journal.open_append journal in
  incr run_seq;
  let h_run = Obs.histogram (Printf.sprintf "serve.latency.%d" !run_seq) in
  let wall0 = Obs.now_ns () in
  let horizon = cfg.duration in
  let des : ev Des.t = Des.create () in
  let q = Admission.create ~bound:cfg.queue_bound ~watermark:cfg.watermark in
  let batcher =
    Batcher.create ~size:cfg.batch_size ~deadline:cfg.batch_deadline
  in
  let arr =
    Arrivals.create ~modulation:cfg.modulation ~rate:cfg.rate ~seed:cfg.seed
      ()
  in
  let rng = Rng.create (cfg.seed lxor 0x5e17ed) in
  let ladder =
    lazy
      (Ladder.make ~deadline_ms:cfg.overload_deadline_ms
         ~first:("serve", sched) ())
  in
  (* request materialization state *)
  let apps = Hashtbl.create 64 in
  Array.iter
    (fun (a : Application.t) -> Hashtbl.replace apps a.Application.id a)
    workload.Workload.apps;
  let known : (int, Container.t) Hashtbl.t = Hashtbl.create 1024 in
  let placed_bag = Bag.create () in
  let app_bags : (int, Bag.t) Hashtbl.t = Hashtbl.create 64 in
  let app_bag a =
    match Hashtbl.find_opt app_bags a with
    | Some b -> b
    | None ->
        let b = Bag.create () in
        Hashtbl.replace app_bags a b;
        b
  in
  let bag_add cid =
    Bag.add placed_bag cid;
    match Hashtbl.find_opt known cid with
    | Some c -> Bag.add (app_bag c.Container.app) cid
    | None -> ()
  in
  let bag_remove cid =
    Bag.remove placed_bag cid;
    match Hashtbl.find_opt known cid with
    | Some c -> Bag.remove (app_bag c.Container.app) cid
    | None -> ()
  in
  (* Rebuild the victim pools from ground truth — placements drift when
     the scheduler itself migrates or preempts containers. *)
  let resync () =
    Bag.clear placed_bag;
    Hashtbl.iter (fun _ b -> Bag.clear b) app_bags;
    List.iter
      (fun (cid, _) ->
        (match Cluster.container cluster cid with
        | Some c -> Hashtbl.replace known cid c
        | None -> ());
        bag_add cid)
      (Cluster.placements cluster)
  in
  resync ();
  let next_id =
    ref
      (1
      + List.fold_left
          (fun m (cid, _) -> max m cid)
          (Array.fold_left
             (fun m (c : Container.t) -> max m c.Container.id)
             (-1) workload.Workload.containers)
          (Cluster.placements cluster))
  in
  let next_arrival = ref n_tpl in
  let fresh ~app ~demand ~priority =
    let id = !next_id in
    incr next_id;
    let arrival = !next_arrival in
    incr next_arrival;
    let c = Container.make ~id ~app ~demand ~priority ~arrival in
    Hashtbl.replace known id c;
    c
  in
  let cursor = ref 0 in
  let place_kind () =
    let tpl = workload.Workload.containers.(!cursor mod n_tpl) in
    incr cursor;
    let c =
      fresh ~app:tpl.Container.app ~demand:tpl.Container.demand
        ~priority:tpl.Container.priority
    in
    (Request.Place c, c.Container.priority)
  in
  let req_seq = ref 0 in
  let materialize now =
    let id = !req_seq in
    incr req_seq;
    let kind, priority =
      match Arrivals.draw_kind arr with
      | `Place -> place_kind ()
      | `Remove -> (
          match Bag.sample placed_bag rng with
          | None -> place_kind ()
          | Some cid ->
              let prio =
                match Hashtbl.find_opt known cid with
                | Some c -> c.Container.priority
                | None -> 0
              in
              (Request.Remove cid, prio))
      | `Scale ->
          let a = workload.Workload.apps.(Rng.int rng n_apps) in
          let mag = 1 + Rng.int rng 3 in
          let delta = if Rng.bool rng 0.5 then mag else -mag in
          ( Request.Scale { app = a.Application.id; delta },
            a.Application.priority )
    in
    { Request.id; kind; priority; arrival = now }
  in
  (* metrics *)
  let arrivals_n = ref 0
  and admitted_n = ref 0
  and rejected_n = ref 0
  and shed_n = ref 0
  and placed_n = ref 0
  and undeployed_n = ref 0
  and failed_req_n = ref 0
  and removed_n = ref 0
  and noop_n = ref 0
  and batches_n = ref 0
  and failed_batches_n = ref 0
  and overload_n = ref 0
  and fill_sum = ref 0
  and depth_sum = ref 0
  and depth_samples = ref 0
  and depth_max = ref 0 in
  let busy = ref false in
  let flush_pending = ref false in
  let batches_started = ref 0 in
  let do_remove cid =
    match Cluster.machine_of cluster cid with
    | Some _ ->
        Cluster.remove cluster cid;
        bag_remove cid;
        incr removed_n;
        Obs.incr c_removed
    | None ->
        incr noop_n;
        Obs.incr c_noop
  in
  let start_batch () =
    busy := true;
    flush_pending := false;
    Batcher.disarm batcher des;
    let overload = Admission.length q > cfg.watermark in
    if overload then begin
      incr overload_n;
      Obs.incr c_overload
    end;
    let reqs = Admission.take q ~max:cfg.batch_size in
    let seq = !batches_started in
    incr batches_started;
    let replayed = seq < n_prefix in
    fill_sum := !fill_sum + List.length reqs;
    Obs.add c_taken (List.length reqs);
    (* Kill probe after the take: requests pulled here but never committed
       are not lost on resume — the from-t0 replay regenerates the whole
       arrival stream and re-takes them. Probes stay silent during replay
       so a re-armed countdown only counts live batches. *)
    if Option.is_some jr && not replayed then
      Fault.trip_process_kill "serve.batch_take";
    let places = ref [] in
    List.iter
      (fun (r : Request.t) ->
        match r.Request.kind with
        | Request.Place c ->
            Hashtbl.replace known c.Container.id c;
            places := c :: !places
        | Request.Remove cid -> do_remove cid
        | Request.Scale { app; delta } ->
            if delta > 0 then
              match Hashtbl.find_opt apps app with
              | None -> ()
              | Some a ->
                  for _ = 1 to delta do
                    places :=
                      fresh ~app ~demand:a.Application.demand
                        ~priority:a.Application.priority
                      :: !places
                  done
            else
              for _ = 1 to -delta do
                match Bag.sample (app_bag app) rng with
                | Some cid -> do_remove cid
                | None ->
                    incr noop_n;
                    Obs.incr c_noop
              done)
      reqs;
    let batch = Array.of_list (List.rev !places) in
    (* Victim bags must evolve bit-identically between a live batch and
       its journal replay, and Bag.sample is array-order sensitive — so
       both paths insert freshly placed containers in batch order. *)
    let bag_add_batch placed_set =
      Array.iter
        (fun (c : Container.t) ->
          if Hashtbl.mem placed_set c.Container.id then bag_add c.Container.id)
        batch
    in
    let measured = ref 1e-6 in
    let commit =
      if replayed then begin
        (* Journal replay: skip the scheduler and diff the cluster onto
           the committed placement map. Removals of containers that
           vanished mirror live drift exactly — no bag_remove (live runs
           do not unbag scheduler-preempted containers either; resync
           trues the bags up on the same schedule). *)
        let rec_ = prefix.(seq) in
        Obs.add c_replayed_requests (List.length reqs);
        let target = Hashtbl.create 256 in
        List.iter
          (fun (cid, mid) -> Hashtbl.replace target cid mid)
          rec_.Journal.placements;
        List.iter
          (fun (cid, mid) ->
            match Hashtbl.find_opt target cid with
            | Some m when m = mid -> ()
            | _ -> Cluster.remove cluster cid)
          (Cluster.placements cluster);
        Hashtbl.iter
          (fun cid mid ->
            match Cluster.machine_of cluster cid with
            | Some m when m = mid -> ()
            | _ -> (
                match Hashtbl.find_opt known cid with
                | None -> ()
                | Some c -> (
                    try ignore (Cluster.place ~force:true cluster c mid)
                    with _ -> ())))
          target;
        let failed =
          match rec_.Journal.serve with Some (_, f) -> f <> 0 | None -> false
        in
        let fresh_placed = ref 0 in
        Array.iter
          (fun (c : Container.t) ->
            if Hashtbl.mem target c.Container.id then incr fresh_placed)
          batch;
        bag_add_batch target;
        {
          c_seq = seq;
          c_requests = reqs;
          c_failed = failed;
          c_placed = !fresh_placed;
          c_undeployed = (if failed then 0 else Array.length batch - !fresh_placed);
        }
      end
      else begin
        let s = if overload then Lazy.force ladder else sched in
        let t0 = Obs.now_ns () in
        let result =
          if Array.length batch = 0 then Ok Scheduler.empty_outcome
          else
            try Ok (s.Scheduler.schedule cluster batch)
            with e when Scheduler.faults_recoverable e -> Error ()
        in
        measured :=
          Float.max 1e-6
            (Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9);
        match result with
        | Ok o ->
            let placed_set = Hashtbl.create 64 in
            List.iter
              (fun (cid, _) -> Hashtbl.replace placed_set cid ())
              o.Scheduler.placed;
            bag_add_batch placed_set;
            {
              c_seq = seq;
              c_requests = reqs;
              c_failed = false;
              c_placed = List.length o.Scheduler.placed;
              c_undeployed = List.length o.Scheduler.undeployed;
            }
        | Error () ->
            { c_seq = seq; c_requests = reqs; c_failed = true; c_placed = 0;
              c_undeployed = 0 }
      end
    in
    let service =
      if cfg.service_ms > 0. then cfg.service_ms /. 1e3 else !measured
    in
    Des.after des ~delay:service (Commit commit)
  in
  let maybe_start () =
    if (not !busy) && Admission.length q > 0 then
      if Admission.length q >= cfg.batch_size then start_batch ()
      else Batcher.arm batcher des ~flush:(fun g -> Flush g)
  in
  let on_commit now c =
    busy := false;
    incr batches_n;
    Obs.incr c_batches;
    if c.c_failed then begin
      incr failed_batches_n;
      Obs.incr c_failed_batches;
      let n = List.length c.c_requests in
      failed_req_n := !failed_req_n + n;
      Obs.add c_failed_req n
    end
    else
      List.iter
        (fun (r : Request.t) ->
          let lat =
            Int64.of_float (Float.max 0. (now -. r.Request.arrival) *. 1e9)
          in
          Obs.observe_ns h_run lat;
          Obs.observe_ns h_latency lat)
        c.c_requests;
    placed_n := !placed_n + c.c_placed;
    Obs.add c_placed c.c_placed;
    undeployed_n := !undeployed_n + c.c_undeployed;
    Obs.add c_undeployed c.c_undeployed;
    if !batches_n mod 64 = 0 then resync ();
    (match jr with
    | Some j when c.c_seq >= n_prefix ->
        (* Live batch: make it durable, then offer the kill probe — a
           death here loses nothing that was committed. *)
        Journal.append j
          {
            Journal.next_pos = c.c_seq + 1;
            placements = Cluster.placements cluster;
            offline =
              List.filter
                (Cluster.is_offline cluster)
                (List.init (Cluster.n_machines cluster) (fun i -> i));
            fault = Fault.stream_position ();
            serve =
              Some (List.length c.c_requests, if c.c_failed then 1 else 0);
          };
        Fault.trip_process_kill "serve.batch_commit"
    | Some _ ->
        (* Last replayed commit: jump the fault stream to where the dead
           process left it — replayed batches never touched it. *)
        if c.c_seq = n_prefix - 1 then (
          match prefix.(c.c_seq).Journal.fault with
          | Some (draws, failures_left, _) when Fault.active () ->
              Fault.fast_forward ~draws ~failures_left ()
          | _ -> ())
    | None -> ());
    if Admission.length q > 0 then begin
      if !flush_pending || Admission.length q >= cfg.batch_size then
        start_batch ()
      else Batcher.arm batcher des ~flush:(fun g -> Flush g)
    end
    else flush_pending := false
  in
  (* seed the arrival chain: Arrive events are only ever scheduled inside
     the horizon, so the generator stops itself *)
  let t0 = Arrivals.next_gap arr ~now:0. in
  if t0 <= horizon then Des.schedule des ~at:t0 Arrive;
  let running = ref true in
  (* The journal channel must survive a Killed escape closed and flushed —
     the whole point is resuming from what it durably recorded. *)
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close jr)
    (fun () ->
      while !running do
        match Des.next des with
        | None -> running := false
        | Some (now, ev) -> (
            match ev with
            | Arrive ->
                incr arrivals_n;
                Obs.incr c_arrivals;
                let r = materialize now in
                (match Admission.offer q r with
                | Admission.Rejected ->
                    incr rejected_n;
                    Obs.incr c_rejected
                | Admission.Admitted shed ->
                    incr admitted_n;
                    Obs.incr c_admitted;
                    List.iter
                      (fun _ ->
                        incr shed_n;
                        Obs.incr c_shed)
                      shed);
                let depth = Admission.length q in
                depth_sum := !depth_sum + depth;
                incr depth_samples;
                if depth > !depth_max then depth_max := depth;
                let t = now +. Arrivals.next_gap arr ~now in
                if t <= horizon then Des.schedule des ~at:t Arrive;
                maybe_start ()
            | Flush gen ->
                if Batcher.note_fired batcher ~gen then
                  if !busy then flush_pending := true
                  else if Admission.length q > 0 then start_batch ()
            | Commit c -> on_commit now c)
      done);
  let st = Obs.histogram_stats h_run in
  let ms x = x /. 1e6 in
  {
    rate = cfg.rate;
    arrivals = !arrivals_n;
    admitted = !admitted_n;
    rejected = !rejected_n;
    shed = !shed_n;
    placed = !placed_n;
    undeployed = !undeployed_n;
    failed_requests = !failed_req_n;
    removed = !removed_n;
    noop_removes = !noop_n;
    batches = !batches_n;
    failed_batches = !failed_batches_n;
    overload_batches = !overload_n;
    mean_batch_fill =
      (if !batches_n = 0 then 0. else float_of_int !fill_sum /. float_of_int !batches_n);
    samples = st.Obs.samples;
    p50_ms = ms st.Obs.p50_ns;
    p99_ms = ms st.Obs.p99_ns;
    p999_ms = ms st.Obs.p999_ns;
    max_ms = ms st.Obs.max_ns;
    mean_ms = ms st.Obs.mean_ns;
    queue_depth_max = !depth_max;
    queue_depth_mean =
      (if !depth_samples = 0 then 0.
       else float_of_int !depth_sum /. float_of_int !depth_samples);
    saturated = !rejected_n + !shed_n > 0;
    sim_s = Des.now des;
    wall_ms = Int64.to_float (Int64.sub (Obs.now_ns ()) wall0) /. 1e6;
  }

type sweep_result = {
  base_rate : float;
  calibrated : bool;
  points : point list;
}

(* Base rate from a short probe run: several consecutive batches on a
   throwaway cluster, taking the *slowest* per-request service seen — the
   first batch on an empty cluster is misleadingly fast, and sustained
   throughput is set by the worst batch. Clamps keep a degenerate
   measurement from exploding the event count. *)
let calibrate (cfg : config) ~make_sched ~make_cluster ~workload =
  let cluster = make_cluster () in
  let sched = make_sched () in
  let n_tpl = Array.length workload.Workload.containers in
  let bs = min cfg.batch_size n_tpl in
  let worst = ref 1e-9 in
  for k = 0 to 4 do
    let batch =
      Array.init bs (fun i ->
          workload.Workload.containers.(((k * bs) + i) mod n_tpl))
    in
    let t0 = Obs.now_ns () in
    (try ignore (sched.Scheduler.schedule cluster batch)
     with e when Scheduler.faults_recoverable e -> ());
    let wall =
      Float.max 1e-6 (Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9)
    in
    worst := Float.max !worst (wall /. float_of_int bs)
  done;
  Float.max 50. (Float.min 500_000. (1. /. !worst))

(* The sweep brackets the saturation knee whatever the calibration error:
   the anchor point runs at a quarter of the calibrated rate; if it is
   already saturated the sweep halves its way down until an underloaded
   point appears, otherwise it doubles its way up until one saturates. *)
let sweep ?(max_points = 8) (cfg : config) ~make_sched ~make_cluster ~workload =
  let calibrated = cfg.rate <= 0. in
  let base =
    if calibrated then calibrate cfg ~make_sched ~make_cluster ~workload
    else cfg.rate
  in
  let run_at m =
    ( m,
      run
        { cfg with rate = base *. m }
        ~sched:(make_sched ()) ~cluster:(make_cluster ()) ~workload )
  in
  let anchor = run_at 0.25 in
  let points = ref [ anchor ] in
  let stop = ref false in
  if (snd anchor).saturated then begin
    let m = ref 0.125 in
    while (not !stop) && List.length !points < max_points
          && !m >= 1. /. 1024. do
      let (_, p) as pt = run_at !m in
      points := pt :: !points;
      if not p.saturated then stop := true else m := !m /. 2.
    done
  end
  else begin
    let m = ref 0.5 in
    while (not !stop) && List.length !points < max_points do
      let (_, p) as pt = run_at !m in
      points := pt :: !points;
      if p.saturated then stop := true else m := !m *. 2.
    done
  end;
  let pts =
    List.sort (fun (a, _) (b, _) -> compare a b) !points |> List.map snd
  in
  { base_rate = base; calibrated; points = pts }

let point_json (p : point) =
  Printf.sprintf
    {|{"rate":%.2f,"arrivals":%d,"admitted":%d,"rejected":%d,"shed":%d,"placed":%d,"undeployed":%d,"failed_requests":%d,"removed":%d,"noop_removes":%d,"batches":%d,"failed_batches":%d,"overload_batches":%d,"mean_batch_fill":%.2f,"latency_ms":{"samples":%d,"p50":%.4f,"p99":%.4f,"p999":%.4f,"max":%.4f,"mean":%.4f},"queue_depth":{"max":%d,"mean":%.2f},"saturated":%b,"sim_s":%.4f,"wall_ms":%.1f}|}
    p.rate p.arrivals p.admitted p.rejected p.shed p.placed p.undeployed
    p.failed_requests p.removed p.noop_removes p.batches p.failed_batches
    p.overload_batches p.mean_batch_fill p.samples p.p50_ms p.p99_ms
    p.p999_ms p.max_ms p.mean_ms p.queue_depth_max p.queue_depth_mean
    p.saturated p.sim_s p.wall_ms

let sweep_json (cfg : config) r =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"config":{"rate":%.2f,"duration_s":%.3f,"queue_bound":%d,"watermark":%d,"batch_size":%d,"batch_deadline_ms":%.3f,"overload_deadline_ms":%.1f,"service_ms":%.3f,"seed":%d,"modulation":"%s"},"base_rate":%.2f,"calibrated":%b,"points":[|}
       cfg.rate cfg.duration cfg.queue_bound cfg.watermark cfg.batch_size
       (cfg.batch_deadline *. 1e3)
       cfg.overload_deadline_ms cfg.service_ms cfg.seed
       (Arrivals.modulation_label cfg.modulation)
       r.base_rate r.calibrated);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (point_json p))
    r.points;
  Buffer.add_string b "]}";
  Buffer.contents b
