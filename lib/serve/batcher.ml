type t = {
  size : int;
  deadline : float;
  mutable armed : (Des.handle * int) option;
  mutable gen : int;
}

let create ~size ~deadline =
  if size <= 0 then invalid_arg "Batcher.create: size must be positive";
  if deadline <= 0. then
    invalid_arg "Batcher.create: deadline must be positive";
  { size; deadline; armed = None; gen = 0 }

let size t = t.size
let size_ready t ~queued = queued >= t.size

let arm t des ~flush =
  match t.armed with
  | Some _ -> ()
  | None ->
      t.gen <- t.gen + 1;
      let h = Des.after_handle des ~delay:t.deadline (flush t.gen) in
      t.armed <- Some (h, t.gen)

let note_fired t ~gen =
  match t.armed with
  | Some (_, g) when g = gen ->
      t.armed <- None;
      true
  | _ -> false

let disarm t des =
  match t.armed with
  | Some (h, _) ->
      ignore (Des.cancel des h);
      t.armed <- None
  | None -> ()
