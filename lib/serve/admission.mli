(** Bounded priority-aware admission queue.

    One FIFO lane per priority class. Backpressure is two-tier:

    - past the {e watermark}, admitting a request sheds waiting requests
      of {e strictly lower} priority (oldest first from the lowest class)
      until the depth is back at the watermark — latecomers of higher
      priority displace queued low-priority work;
    - at the hard {e bound}, an arrival either displaces one
      strictly-lower-priority entry or is rejected outright.

    Within a class order is FIFO, and {!take} drains highest class first
    — so under overload the queue converges to the highest-priority
    backlog, which is exactly the degradation the PR 5 ladder expects
    upstream of it. *)

type t

val create : bound:int -> watermark:int -> t
(** @raise Invalid_argument unless [0 < watermark <= bound]. *)

val length : t -> int

type verdict =
  | Admitted of Request.t list
      (** admitted; the listed (lower-priority) requests were shed to
          make or keep room *)
  | Rejected  (** queue full of equal-or-higher-priority work *)

val offer : t -> Request.t -> verdict

val take : t -> max:int -> Request.t list
(** Up to [max] requests, highest priority class first, FIFO within a
    class. *)
