(* Domain-safe observability.

   Series are registered once in a global, mutex-guarded registry that
   hands out dense integer ids; the *values* live in per-domain shards
   reached through [Domain.DLS], so the hot operations — [incr], [add],
   [observe_ns] — touch only domain-local arrays and take no lock. Reads
   ([count], [counters], [histograms], [json]) merge every shard under the
   registry lock. A merge that races a concurrently running domain may
   miss its very latest in-flight updates (monitoring-grade snapshot), but
   updates are never lost: each one lands in exactly one shard, and any
   happens-before edge to the reader (Domain.join, a pool handshake) makes
   it visible — the two-domain regression test pins this down. *)

type counter = { c_name : string; c_id : int }

(* 64 power-of-two buckets over nanoseconds: bucket i holds samples with
   floor(log2 ns) = i. Constant storage, <= 2x percentile error. *)
type hcell = {
  buckets : int array;
  mutable samples : int;
  mutable sum_ns : float;
  mutable max_ns : float;
}

type histogram = { h_name : string; h_id : int }

(* One domain's slice of every series. The arrays grow on demand without
   the lock — they are only ever touched by the owning domain; the
   registry lock is taken just to publish the shard itself. *)
type shard = {
  mutable counts : int array;
  mutable hists : hcell option array;
}

let registry_lock = Mutex.create ()
let locked f = Mutex.protect registry_lock f
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let n_counters = ref 0
let n_histograms = ref 0
let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      locked (fun () ->
          let s =
            {
              counts = Array.make (max 64 !n_counters) 0;
              hists = Array.make (max 16 !n_histograms) None;
            }
          in
          shards := s :: !shards;
          s))

let my_shard () = Domain.DLS.get shard_key

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_id = !n_counters } in
          incr n_counters;
          Hashtbl.replace counters_tbl name c;
          c)

let counts_for s id =
  let a = s.counts in
  if id < Array.length a then a
  else begin
    let b = Array.make (max (id + 1) (2 * Array.length a)) 0 in
    Array.blit a 0 b 0 (Array.length a);
    s.counts <- b;
    b
  end

let add c n =
  let a = counts_for (my_shard ()) c.c_id in
  a.(c.c_id) <- a.(c.c_id) + n

let incr c = add c 1

(* Merge across shards. Shard arrays may be shorter than the registry
   (a domain that never touched a late-registered series) — missing
   entries contribute zero. *)
let count c =
  locked (fun () ->
      List.fold_left
        (fun acc s ->
          if c.c_id < Array.length s.counts then acc + s.counts.(c.c_id)
          else acc)
        0 !shards)

let now_ns () = Monotonic_clock.now ()

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt histograms_tbl name with
      | Some h -> h
      | None ->
          let h = { h_name = name; h_id = !n_histograms } in
          n_histograms := !n_histograms + 1;
          Hashtbl.replace histograms_tbl name h;
          h)

let hcell_for s id =
  let a =
    if id < Array.length s.hists then s.hists
    else begin
      let b = Array.make (max (id + 1) (2 * Array.length s.hists)) None in
      Array.blit s.hists 0 b 0 (Array.length s.hists);
      s.hists <- b;
      b
    end
  in
  match a.(id) with
  | Some cell -> cell
  | None ->
      let cell =
        { buckets = Array.make 64 0; samples = 0; sum_ns = 0.; max_ns = 0. }
      in
      a.(id) <- Some cell;
      cell

let bucket_of_ns ns =
  if ns <= 0L then 0
  else
    (* floor(log2 ns): position of the highest set bit *)
    let rec go i v =
      if v = 0L then i - 1 else go (i + 1) (Int64.shift_right_logical v 1)
    in
    go 0 ns

let observe_ns h ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let cell = hcell_for (my_shard ()) h.h_id in
  let b = bucket_of_ns ns in
  cell.buckets.(b) <- cell.buckets.(b) + 1;
  cell.samples <- cell.samples + 1;
  let f = Int64.to_float ns in
  cell.sum_ns <- cell.sum_ns +. f;
  if f > cell.max_ns then cell.max_ns <- f

let time h f =
  let t0 = now_ns () in
  let r = f () in
  observe_ns h (Int64.sub (now_ns ()) t0);
  r

type histogram_stats = {
  samples : int;
  sum_ns : float;
  mean_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
}

(* Caller holds the registry lock. *)
let merged_hcell h =
  let m =
    { buckets = Array.make 64 0; samples = 0; sum_ns = 0.; max_ns = 0. }
  in
  List.iter
    (fun s ->
      if h.h_id < Array.length s.hists then
        match s.hists.(h.h_id) with
        | None -> ()
        | Some cell ->
            for i = 0 to 63 do
              m.buckets.(i) <- m.buckets.(i) + cell.buckets.(i)
            done;
            m.samples <- m.samples + cell.samples;
            m.sum_ns <- m.sum_ns +. cell.sum_ns;
            if cell.max_ns > m.max_ns then m.max_ns <- cell.max_ns)
    !shards;
  m

(* Percentile from the bucket CDF; a bucket is reported at its geometric
   midpoint (1.5 * 2^i). *)
let percentile (cell : hcell) q =
  if cell.samples = 0 then 0.
  else begin
    let target = Float.max 1. (Float.round (q *. float_of_int cell.samples)) in
    let acc = ref 0. in
    let result = ref cell.max_ns in
    (try
       for i = 0 to 63 do
         acc := !acc +. float_of_int cell.buckets.(i);
         if !acc >= target then begin
           result := 1.5 *. Float.pow 2. (float_of_int i);
           raise Exit
         end
       done
     with Exit -> ());
    Float.min !result cell.max_ns
  end

let stats_of_hcell (cell : hcell) =
  {
    samples = cell.samples;
    sum_ns = cell.sum_ns;
    mean_ns =
      (if cell.samples = 0 then 0.
       else cell.sum_ns /. float_of_int cell.samples);
    p50_ns = percentile cell 0.50;
    p90_ns = percentile cell 0.90;
    p99_ns = percentile cell 0.99;
    p999_ns = percentile cell 0.999;
    max_ns = cell.max_ns;
  }

let histogram_stats h = locked (fun () -> stats_of_hcell (merged_hcell h))

(* GC accounting around a region of code: word/compaction deltas accumulate
   into ordinary counters, so they ride along in [counters ()] and [json ()]
   snapshots. Gc stats are per-domain in OCaml 5, so a delta taken on the
   running domain is exact for that domain's allocations. Sampling
   allocates a few boxed floats itself (minor_words returns a boxed float,
   quick_stat a record); the closing reads happen before their own boxing,
   so the only self-pollution in a delta is the opening sample's box — a
   handful of words, visible as a small floor in per-call averages. *)
type gc_scope = {
  g_minor : counter;
  g_major : counter;
  g_compactions : counter;
}

let gc_scope prefix =
  {
    g_minor = counter (prefix ^ ".minor_words");
    g_major = counter (prefix ^ ".major_words");
    g_compactions = counter (prefix ^ ".compactions");
  }

let with_gc scope f =
  let q0 = Gc.quick_stat () in
  let mw0 = Gc.minor_words () in
  let r = f () in
  let mw1 = Gc.minor_words () in
  let q1 = Gc.quick_stat () in
  add scope.g_minor (int_of_float (mw1 -. mw0));
  add scope.g_major (int_of_float (q1.Gc.major_words -. q0.Gc.major_words));
  add scope.g_compactions (q1.Gc.compactions - q0.Gc.compactions);
  r

let by_name name_of l =
  List.sort (fun a b -> String.compare (name_of a) (name_of b)) l

let counters () =
  locked (fun () ->
      Hashtbl.fold
        (fun _ c acc ->
          let v =
            List.fold_left
              (fun acc s ->
                if c.c_id < Array.length s.counts then acc + s.counts.(c.c_id)
                else acc)
              0 !shards
          in
          (c.c_name, v) :: acc)
        counters_tbl []
      |> by_name fst)

let histograms () =
  locked (fun () ->
      Hashtbl.fold
        (fun _ h acc -> (h.h_name, stats_of_hcell (merged_hcell h)) :: acc)
        histograms_tbl []
      |> by_name fst)

(* An epoch is a merged snapshot of every counter at a point in time;
   reads "since" it subtract the baseline, scoping counters to one run
   without zeroing the registry (which would destroy concurrent runs'
   numbers — the cross-run contamination the engine layer fixes). A
   counter registered after the epoch has baseline zero. *)
type epoch = int array

let epoch () =
  locked (fun () ->
      let a = Array.make !n_counters 0 in
      List.iter
        (fun s ->
          let n = min (Array.length s.counts) !n_counters in
          for i = 0 to n - 1 do
            a.(i) <- a.(i) + s.counts.(i)
          done)
        !shards;
      a)

let baseline e id = if id < Array.length e then e.(id) else 0
let count_since e c = count c - baseline e c.c_id

let counters_since e =
  locked (fun () ->
      Hashtbl.fold
        (fun _ c acc ->
          let v =
            List.fold_left
              (fun acc s ->
                if c.c_id < Array.length s.counts then acc + s.counts.(c.c_id)
                else acc)
              0 !shards
          in
          let d = v - baseline e c.c_id in
          if d = 0 then acc else (c.c_name, d) :: acc)
        counters_tbl []
      |> by_name fst)

(* Zeroing races updates from domains still running; call at quiescence
   (between bench phases, after joins) for an exact reset. *)
let reset () =
  locked (fun () ->
      List.iter
        (fun s ->
          Array.fill s.counts 0 (Array.length s.counts) 0;
          Array.iter
            (function
              | None -> ()
              | Some cell ->
                  Array.fill cell.buckets 0 64 0;
                  cell.samples <- 0;
                  cell.sum_ns <- 0.;
                  cell.max_ns <- 0.)
            s.hists)
        !shards)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (escape name) v))
    (counters ());
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"samples\":%d,\"sum_ns\":%.0f,\"mean_ns\":%.0f,\"p50_ns\":%.0f,\"p90_ns\":%.0f,\"p99_ns\":%.0f,\"p999_ns\":%.0f,\"max_ns\":%.0f}"
           (escape name) s.samples s.sum_ns s.mean_ns s.p50_ns s.p90_ns s.p99_ns
           s.p999_ns s.max_ns))
    (histograms ());
  Buffer.add_string buf "}}";
  Buffer.contents buf
