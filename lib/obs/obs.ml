type counter = { c_name : string; mutable count : int }

(* 64 power-of-two buckets over nanoseconds: bucket i holds samples with
   floor(log2 ns) = i. Constant storage, <= 2x percentile error. *)
type histogram = {
  h_name : string;
  buckets : int array;
  mutable samples : int;
  mutable sum_ns : float;
  mutable max_ns : float;
}

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.replace counters_tbl name c;
      c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count

let now_ns () = Monotonic_clock.now ()

let histogram name =
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; buckets = Array.make 64 0; samples = 0; sum_ns = 0.; max_ns = 0. }
      in
      Hashtbl.replace histograms_tbl name h;
      h

let bucket_of_ns ns =
  if ns <= 0L then 0
  else
    (* floor(log2 ns): position of the highest set bit *)
    let rec go i v = if v = 0L then i - 1 else go (i + 1) (Int64.shift_right_logical v 1) in
    go 0 ns

let observe_ns h ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let b = bucket_of_ns ns in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.samples <- h.samples + 1;
  let f = Int64.to_float ns in
  h.sum_ns <- h.sum_ns +. f;
  if f > h.max_ns then h.max_ns <- f

let time h f =
  let t0 = now_ns () in
  let r = f () in
  observe_ns h (Int64.sub (now_ns ()) t0);
  r

type histogram_stats = {
  samples : int;
  sum_ns : float;
  mean_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : float;
}

(* Percentile from the bucket CDF; a bucket is reported at its geometric
   midpoint (1.5 * 2^i). *)
let percentile (h : histogram) q =
  if h.samples = 0 then 0.
  else begin
    let target = Float.max 1. (Float.round (q *. float_of_int h.samples)) in
    let acc = ref 0. in
    let result = ref h.max_ns in
    (try
       for i = 0 to 63 do
         acc := !acc +. float_of_int h.buckets.(i);
         if !acc >= target then begin
           result := 1.5 *. Float.pow 2. (float_of_int i);
           raise Exit
         end
       done
     with Exit -> ());
    Float.min !result h.max_ns
  end

let histogram_stats (h : histogram) =
  {
    samples = h.samples;
    sum_ns = h.sum_ns;
    mean_ns = (if h.samples = 0 then 0. else h.sum_ns /. float_of_int h.samples);
    p50_ns = percentile h 0.50;
    p90_ns = percentile h 0.90;
    p99_ns = percentile h 0.99;
    max_ns = h.max_ns;
  }

(* GC accounting around a region of code: word/compaction deltas accumulate
   into ordinary counters, so they ride along in [counters ()] and [json ()]
   snapshots. Sampling allocates a few boxed floats itself (minor_words
   returns a boxed float, quick_stat a record); the closing reads happen
   before their own boxing, so the only self-pollution in a delta is the
   opening sample's box — a handful of words, visible as a small floor in
   per-call averages. *)
type gc_scope = {
  g_minor : counter;
  g_major : counter;
  g_compactions : counter;
}

let gc_scope prefix =
  {
    g_minor = counter (prefix ^ ".minor_words");
    g_major = counter (prefix ^ ".major_words");
    g_compactions = counter (prefix ^ ".compactions");
  }

let with_gc scope f =
  let q0 = Gc.quick_stat () in
  let mw0 = Gc.minor_words () in
  let r = f () in
  let mw1 = Gc.minor_words () in
  let q1 = Gc.quick_stat () in
  add scope.g_minor (int_of_float (mw1 -. mw0));
  add scope.g_major
    (int_of_float (q1.Gc.major_words -. q0.Gc.major_words));
  add scope.g_compactions (q1.Gc.compactions - q0.Gc.compactions);
  r

let by_name name_of l = List.sort (fun a b -> String.compare (name_of a) (name_of b)) l

let counters () =
  Hashtbl.fold (fun _ c acc -> (c.c_name, c.count) :: acc) counters_tbl []
  |> by_name fst

let histograms () =
  Hashtbl.fold (fun _ h acc -> (h.h_name, histogram_stats h) :: acc) histograms_tbl []
  |> by_name fst

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters_tbl;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 64 0;
      h.samples <- 0;
      h.sum_ns <- 0.;
      h.max_ns <- 0.)
    histograms_tbl

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (escape name) v))
    (counters ());
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"samples\":%d,\"sum_ns\":%.0f,\"mean_ns\":%.0f,\"p50_ns\":%.0f,\"p90_ns\":%.0f,\"p99_ns\":%.0f,\"max_ns\":%.0f}"
           (escape name) s.samples s.sum_ns s.mean_ns s.p50_ns s.p90_ns s.p99_ns
           s.max_ns))
    (histograms ());
  Buffer.add_string buf "}}";
  Buffer.contents buf
