(** Solver and scheduler observability: named counters, monotonic timers and
    log-bucketed latency histograms.

    Series are registered in a global registry keyed by name, so independent
    modules can obtain the same series ([counter "x"] is get-or-create) and a
    harness can snapshot everything at once.

    Domain-safe by sharding: registration takes a lock, but the values
    live in per-domain shards ([Domain.DLS]), so [incr] / [add] /
    [observe_ns] are lock-free domain-local array updates — cheap enough
    for solver inner loops, and never lost under concurrent domains.
    Reads merge every shard; a snapshot racing a running domain may miss
    its in-flight tail, and is exact once a happens-before edge to that
    domain exists (a [Domain.join], a pool handshake). *)

type counter

val counter : string -> counter
(** Get or create the counter registered under [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds (CLOCK_MONOTONIC). *)

type histogram

val histogram : string -> histogram
(** Get or create the latency histogram registered under [name]. Buckets are
    powers of two of nanoseconds (64 buckets), so percentile estimates carry
    at most a 2x bucket error while storage stays constant. *)

val observe_ns : histogram -> int64 -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and record its wall time in the histogram. *)

type histogram_stats = {
  samples : int;
  sum_ns : float;
  mean_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  p999_ns : float;
      (** tail percentile for SLO reporting; monotone with p50/p99 by
          construction (same bucket CDF at increasing quantiles) *)
  max_ns : float;
}

val histogram_stats : histogram -> histogram_stats

type gc_scope
(** GC accounting for a region of code: allocation and compaction deltas
    accumulated into the counters [<prefix>.minor_words],
    [<prefix>.major_words] and [<prefix>.compactions], so they appear in
    {!counters} and {!json} snapshots like any other series. *)

val gc_scope : string -> gc_scope
(** Get or create the three delta counters under [prefix]. *)

val with_gc : gc_scope -> (unit -> 'a) -> 'a
(** Run the thunk, adding its GC word/compaction deltas to the scope.
    Sampling itself allocates a few words (the opening [Gc] reads box their
    results), so per-call averages carry a small constant floor. *)

val counters : unit -> (string * int) list
(** All registered counters with their current values, sorted by name. *)

val histograms : unit -> (string * histogram_stats) list
(** All registered histograms with their current stats, sorted by name. *)

type epoch
(** A merged snapshot of every counter at a point in time. Reads
    "since" an epoch subtract that baseline, scoping counters to one
    run (one engine-built stack, one experiment) without zeroing the
    global registry — so back-to-back runs in a single process stop
    contaminating each other's numbers, and concurrent readers keep
    their own baselines. Counters registered after the epoch have a
    zero baseline. *)

val epoch : unit -> epoch
(** Snapshot now. Like any merged read, a snapshot racing a running
    domain may miss its in-flight tail. *)

val count_since : epoch -> counter -> int
(** [count c] minus the counter's value at the epoch. *)

val counters_since : epoch -> (string * int) list
(** Every counter whose value changed since the epoch, with the delta,
    sorted by name. *)

val reset : unit -> unit
(** Zero every registered series in every shard (registrations are kept).
    Call at quiescence — zeroing races updates from still-running
    domains. *)

val json : unit -> string
(** JSON object [{"counters": {...}, "histograms": {...}}] of the current
    snapshot, for machine-readable bench output. *)
