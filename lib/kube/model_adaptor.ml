type t = {
  mutable nodes : Kube_objects.node array;
  mutable profiles : Kube_objects.app_profile list;
  mutable cluster : Cluster.t option;
  node_index : (string, Machine.id) Hashtbl.t;
  profile_by_name : (string, Kube_objects.app_profile) Hashtbl.t;
  mutable sealed : bool; (* true once a pod is bound in the mirror *)
}

let create () =
  {
    nodes = [||];
    profiles = [];
    cluster = None;
    node_index = Hashtbl.create 64;
    profile_by_name = Hashtbl.create 64;
    sealed = false;
  }

let rebuild t =
  if Array.length t.nodes > 0 && t.profiles <> [] then begin
    let capacities =
      Array.map (fun (n : Kube_objects.node) -> n.Kube_objects.capacity) t.nodes
    in
    let topo = Topology.heterogeneous ~capacities () in
    let apps =
      Array.of_list (List.map Kube_objects.application_of_profile t.profiles)
    in
    t.cluster <- Some (Cluster.create topo ~constraints:(Constraint_set.of_apps apps));
    Hashtbl.reset t.node_index;
    Array.iteri
      (fun i (n : Kube_objects.node) ->
        Hashtbl.replace t.node_index n.Kube_objects.node_name i)
      t.nodes
  end

let apply t (c : Ehc.changes) =
  if (c.Ehc.new_nodes <> [] || c.Ehc.new_profiles <> []) && t.sealed then
    Error
      (Aladdin.Aladdin_error.Inventory_changed
         (Printf.sprintf
            "%d nodes / %d profiles arrived after pods were bound"
            (List.length c.Ehc.new_nodes)
            (List.length c.Ehc.new_profiles)))
  else begin
    if c.Ehc.new_nodes <> [] || c.Ehc.new_profiles <> [] then begin
      t.nodes <- Array.append t.nodes (Array.of_list c.Ehc.new_nodes);
      t.profiles <- t.profiles @ c.Ehc.new_profiles;
      List.iter
        (fun (p : Kube_objects.app_profile) ->
          Hashtbl.replace t.profile_by_name p.Kube_objects.profile_name p)
        c.Ehc.new_profiles;
      rebuild t
    end;
    (match t.cluster with
    | None -> ()
    | Some cluster ->
        List.iter
          (fun (pod : Kube_objects.pod) ->
            (* deleted bound pod: free its capacity in the mirror *)
            if Cluster.container cluster pod.Kube_objects.uid <> None then
              Cluster.remove cluster pod.Kube_objects.uid)
          c.Ehc.deleted_pods);
    Ok ()
  end

let cluster t = t.cluster

let container_of_pod t (pod : Kube_objects.pod) =
  match Hashtbl.find_opt t.profile_by_name pod.Kube_objects.profile with
  | None -> raise Not_found
  | Some p ->
      Container.make ~id:pod.Kube_objects.uid ~app:p.Kube_objects.app_id
        ~demand:p.Kube_objects.demand ~priority:p.Kube_objects.priority
        ~arrival:pod.Kube_objects.uid

let node_name_of_machine t mid =
  if mid < 0 || mid >= Array.length t.nodes then
    invalid_arg "Model_adaptor.node_name_of_machine";
  t.nodes.(mid).Kube_objects.node_name

let machine_of_node_name t name = Hashtbl.find_opt t.node_index name

let seal t = t.sealed <- true
