type t = {
  api : Kube_api.t;
  ehc : Ehc.t;
  ma : Model_adaptor.t;
  scheduler : Scheduler.t;
}

let create ?scheduler api =
  let scheduler =
    match scheduler with
    | Some s -> s
    | None -> Aladdin.Aladdin_scheduler.make ()
  in
  { api; ehc = Ehc.attach api; ma = Model_adaptor.create (); scheduler }

let empty_report =
  { Resolver.bound = []; unschedulable = []; migrations = 0; preemptions = 0 }

let sync t =
  let changes = Ehc.drain t.ehc in
  match Model_adaptor.apply t.ma changes with
  | Error e ->
      (* The mirror rejected the change set (inventory grew after pods were
         bound). The pods that rode in with it stay pending — marked with
         the reason — rather than crashing the control loop. *)
      let reason = Aladdin.Aladdin_error.to_string e in
      List.iter
        (fun (p : Kube_objects.pod) ->
          Kube_api.mark_unschedulable t.api ~pod:p.Kube_objects.pod_name ~reason)
        changes.Ehc.pending_pods;
      {
        empty_report with
        Resolver.unschedulable =
          List.map
            (fun (p : Kube_objects.pod) -> p.Kube_objects.pod_name)
            changes.Ehc.pending_pods;
      }
  | Ok () -> (
  match (Model_adaptor.cluster t.ma, changes.Ehc.pending_pods) with
  | None, [] -> empty_report
  | None, pending ->
      (* no inventory yet: everything stays pending *)
      List.iter
        (fun (p : Kube_objects.pod) ->
          Kube_api.mark_unschedulable t.api ~pod:p.Kube_objects.pod_name
            ~reason:"cluster inventory not synced")
        pending;
      {
        empty_report with
        Resolver.unschedulable =
          List.map (fun (p : Kube_objects.pod) -> p.Kube_objects.pod_name) pending;
      }
  | Some _, [] -> empty_report
  | Some cluster, pending ->
      let batch =
        Array.of_list
          (List.map (fun pod -> Model_adaptor.container_of_pod t.ma pod) pending)
      in
      let outcome = t.scheduler.Scheduler.schedule cluster batch in
      Resolver.resolve t.api t.ma ~pods:pending outcome)

let cluster t = Model_adaptor.cluster t.ma
let pending t = Ehc.pending_count t.ehc

let machine_of_node t node =
  match (Model_adaptor.cluster t.ma, Model_adaptor.machine_of_node_name t.ma node) with
  | Some cluster, Some mid -> (cluster, mid)
  | Some _, None -> invalid_arg "Controller: unknown node"
  | None, _ -> invalid_arg "Controller: inventory not synced"

let cordon t ~node =
  let cluster, mid = machine_of_node t node in
  Cluster.set_offline cluster mid true

let uncordon t ~node =
  let cluster, mid = machine_of_node t node in
  Cluster.set_offline cluster mid false

let drain_node t ~node =
  let cluster, mid = machine_of_node t node in
  Cluster.set_offline cluster mid true;
  let displaced = Cluster.drain cluster mid in
  (* the displaced containers correspond to bound pods: re-schedule them
     and rebind through the resolver *)
  let pods_by_uid = Hashtbl.create 16 in
  List.iter
    (fun (p : Kube_objects.pod) -> Hashtbl.replace pods_by_uid p.Kube_objects.uid p)
    (Kube_api.pods t.api);
  let pods =
    List.filter_map
      (fun (c : Container.t) -> Hashtbl.find_opt pods_by_uid c.Container.id)
      displaced
  in
  (* mark them pending again so the binding below is legal *)
  List.iter
    (fun (p : Kube_objects.pod) ->
      Kube_api.mark_unschedulable t.api ~pod:p.Kube_objects.pod_name
        ~reason:"draining")
    pods;
  let outcome =
    t.scheduler.Scheduler.schedule cluster (Array.of_list displaced)
  in
  Resolver.resolve t.api t.ma ~pods outcome
