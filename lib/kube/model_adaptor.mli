(** Model Adaptor (Fig. 6): decouples Kubernetes objects from the
    scheduling implementation. Maintains the {!Cluster.t} mirror of the
    node inventory, the application registry derived from profiles, and the
    pod-uid ↔ container mapping.

    Nodes and profiles are expected to be registered before the pods that
    reference them (informer cache sync); the cluster mirror is (re)built
    when the inventory changes while no pod is bound. *)

type t

val create : unit -> t

val apply : t -> Ehc.changes -> (unit, Aladdin.Aladdin_error.t) result
(** Fold a change set into the model: extend inventories, remove bound
    containers of deleted pods. [Error (Inventory_changed _)] — with the
    model untouched — when nodes or profiles arrive after pods were bound
    (dynamic inventory growth is not supported by the mirror). *)

val cluster : t -> Cluster.t option
(** [None] until at least one node and one profile are known. *)

val container_of_pod : t -> Kube_objects.pod -> Container.t
(** @raise Not_found for pods of unknown profiles. *)

val node_name_of_machine : t -> Machine.id -> string
val machine_of_node_name : t -> string -> Machine.id option

val seal : t -> unit
(** Mark the mirror as live (bindings exist); later inventory growth is
    rejected by {!apply}. *)
