(** The Aladdin scheduler sharded over multicore scheduling cells.

    The cluster is partitioned into rack-aligned cells (cell count from
    [?cells], default the last [ALADDIN_CELLS] entry or [1]; execution
    mode from [?mode], default [ALADDIN_CELLS_MODE] or [`Auto]); each cell
    runs a private Aladdin stack — warm by default — on its own mirror
    cluster, on its own domain, and one bare Algorithm-1 fix-up run over
    the whole outer cluster handles the containers no cell could place.
    See {!Cells.Coordinator} for the consistency protocol.

    With [~cells:1] the composite reproduces the unsharded
    {!Aladdin_scheduler.make_warm} placements exactly; with more cells,
    placements are deterministic for a given cell count and batch
    sequence, and identical between [`Sequential] and [`Domains]
    execution (the differential suite's invariants). *)

type t

val create :
  ?cells:int ->
  ?mode:Cells.Coordinator.mode ->
  ?options:Aladdin_scheduler.options ->
  ?warm:bool ->
  ?fixup:bool ->
  ?supervise:Cells.Supervisor.config ->
  unit ->
  t
(** [?supervise] attaches a {!Cells.Supervisor} to the coordinator —
    per-cell retry/backoff, join timeouts, and quarantine with machine
    redistribution instead of all-or-nothing phase 1. *)

val scheduler : t -> Scheduler.t
(** The composite scheduler, wrapped in [cells.*] batch obs. *)

val coordinator : t -> Cells.Coordinator.t
(** For {!Cells_solver.solve} and breakdown inspection. *)

val n_cells : t -> int
val shutdown : t -> unit
val last_breakdown : t -> Cells.Coordinator.breakdown option

val make :
  ?cells:int ->
  ?mode:Cells.Coordinator.mode ->
  ?options:Aladdin_scheduler.options ->
  ?warm:bool ->
  ?fixup:bool ->
  ?supervise:Cells.Supervisor.config ->
  unit ->
  Scheduler.t
(** {!create} returning just the scheduler (worker domains are parked
    between batches and released at exit). *)
