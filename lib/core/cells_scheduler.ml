(* The Aladdin scheduler sharded over cells: each cell runs a private
   (optionally warm) Aladdin stack on its mirror; phase-2 leftovers go
   through one bare Algorithm-1 run over the whole outer cluster. The
   coordinator output is wrapped in [cells.*] batch obs, mirroring the
   unsharded stack's [aladdin.*] series one level up. *)

type t = {
  coordinator : Cells.Coordinator.t;
  scheduler : Scheduler.t;
  n_cells : int;
}

let name ~cells options =
  Printf.sprintf "Cells(%d|%s)" cells
    (Aladdin_scheduler.name_of_options options)

let create ?cells ?mode ?(options = Aladdin_scheduler.default_options)
    ?(warm = true) ?(fixup = true) ?supervise () =
  let mode =
    match mode with Some m -> m | None -> Cells.Coordinator.mode_of_env ()
  in
  let cells =
    match cells with Some n -> n | None -> Cells.Partition.default_cells ()
  in
  let make_cell ~cell:_ ~n_cells:_ =
    if warm then Aladdin_scheduler.make_warm ~options ()
    else Aladdin_scheduler.make ~options ()
  in
  let supervisor = Option.map Cells.Supervisor.create supervise in
  let coordinator =
    Cells.Coordinator.create ~mode ~fixup
      ~fixup_run:(Aladdin_scheduler.schedule_raw options)
      ?supervisor ~recoverable:Aladdin_scheduler.recoverable ~n_cells:cells
      make_cell
  in
  let scheduler =
    Cells.Coordinator.scheduler coordinator ~name:(name ~cells options)
    |> Scheduler.with_obs ~prefix:"cells"
  in
  { coordinator; scheduler; n_cells = cells }

let scheduler t = t.scheduler
let coordinator t = t.coordinator
let n_cells t = t.n_cells
let shutdown t = Cells.Coordinator.shutdown t.coordinator
let last_breakdown t = Cells.Coordinator.last_breakdown t.coordinator

let make ?cells ?mode ?options ?warm ?fixup ?supervise () =
  (create ?cells ?mode ?options ?warm ?fixup ?supervise ()).scheduler
