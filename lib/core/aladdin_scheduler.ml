type options = {
  il : bool;
  dl : bool;
  weight_base : int option;
  migration : bool;
  preemption : bool;
  max_moves : int;
  max_requeues : int;
  gang : bool;
}

let default_options =
  {
    il = true;
    dl = true;
    weight_base = None;
    migration = true;
    preemption = true;
    max_moves = 8;
    max_requeues = 4;
    gang = false;
  }

let plain = { default_options with il = false; dl = false }
let with_il = { default_options with il = true; dl = false }

let name_of_options o =
  let opt =
    match (o.il, o.dl) with
    | false, false -> ""
    | true, false -> "+IL"
    | false, true -> "+DL"
    | true, true -> "+IL+DL"
  in
  let base =
    match o.weight_base with Some b -> Printf.sprintf "(%d)" b | None -> ""
  in
  "Aladdin" ^ opt ^ base

let last_stats : Search.stats option ref = ref None
let last_search_stats () = !last_stats

(* Warm-start state carried between batches: the search (with its
   cross-batch equivalence classes) and a persistent scalar-projection
   arena for solver-driven consumers. Placements are unaffected — only
   per-batch setup cost. *)
type warm = {
  mutable w_cluster : Cluster.t option;
  mutable w_search : Search.t option;
  w_projection : Flow_graph.projection_cache;
}

let warm_create () =
  {
    w_cluster = None;
    w_search = None;
    w_projection = Flow_graph.projection_cache ();
  }

let warm_projection w = w.w_projection

let c_creates = Obs.counter "aladdin.search_creates"
let c_refreshes = Obs.counter "aladdin.search_refreshes"

let search_for ?warm options fg cluster =
  match warm with
  | Some w -> (
      match (w.w_search, w.w_cluster) with
      | Some s, Some cl
        when cl == cluster
             && Search.il_enabled s = options.il
             && Search.dl_enabled s = options.dl ->
          Search.refresh s fg;
          Obs.incr c_refreshes;
          s
      | _ ->
          let s = Search.create ~il:options.il ~dl:options.dl ~eq:true fg in
          w.w_search <- Some s;
          w.w_cluster <- Some cluster;
          Obs.incr c_creates;
          s)
  | None ->
      Obs.incr c_creates;
      Search.create ~il:options.il ~dl:options.dl fg

let schedule_batch ?warm options cluster batch =
  let fg = Flow_graph.build cluster batch in
  let search = search_for ?warm options fg cluster in
  let capacity = Topology.capacity (Cluster.topology cluster) 0 in
  let weights =
    match options.weight_base with
    | Some base -> Weights.fixed ~base batch ~capacity
    | None -> Weights.compute batch ~capacity
  in
  (* Eq. 9: augment heavier weighted flows first; ties in arrival order. *)
  let order = Array.copy batch in
  Array.sort
    (fun a b ->
      match
        Int.compare (Weights.weighted_magnitude weights b)
          (Weights.weighted_magnitude weights a)
      with
      | 0 -> Container.compare_by_arrival a b
      | c -> c)
    order;
  let queue = Queue.create () in
  Array.iter (fun c -> Queue.push c queue) order;
  let requeue_count : (Container.id, int) Hashtbl.t = Hashtbl.create 64 in
  let undeployed = ref [] in
  let migrations = ref 0 in
  let preemptions = ref 0 in
  let rounds = ref 0 in
  while not (Queue.is_empty queue) do
    incr rounds;
    (* Cooperative deadline at round granularity: the per-container work
       below (search descent, migration planning) has no solver hot loop
       of its own to tick, and rounds are coarse enough to sample the wall
       clock every time. Expired is deliberately NOT in [recoverable], so
       it passes through the batch transaction to the ladder middleware. *)
    Flownet.Deadline.check_ambient "aladdin.schedule_batch";
    let c = Queue.pop queue in
    (* Fault-harness probe: a solver-step failure mid-batch, after some
       containers have already been placed — exactly the state the
       batch-level restore has to unwind. No-op unless a Fault config is
       installed. *)
    Fault.trip_solver_step "aladdin.schedule_batch";
    let place_on mid =
      (match Cluster.place cluster c mid with
      | Ok () -> ()
      | Error _ ->
          (* The search said this machine admits [c]; a denial means the
             cluster diverged from the search state — typed error, the
             batch wrapper restores and retries cold. *)
          Aladdin_error.raise_error
            (Aladdin_error.Placement_failed
               { container = c.Container.id; machine = mid }));
      Search.note_placement search mid
    in
    match Search.find_machine search c with
    | Some mid -> place_on mid
    | None -> (
        let migrated =
          if options.migration then
            match
              Migration.find_and_apply_migration cluster c
                ~max_moves:options.max_moves
            with
            | Some plan ->
                migrations := !migrations + List.length plan.Migration.moves;
                Search.invalidate search;
                List.iter
                  (fun mv -> Search.note_placement search mv.Migration.to_machine)
                  plan.Migration.moves;
                place_on plan.Migration.target;
                true
            | None -> false
          else false
        in
        if not migrated then
          let preempted =
            if options.preemption then
              match Migration.find_and_apply_preemption cluster weights c with
              | Some plan ->
                  preemptions :=
                    !preemptions + List.length plan.Migration.evicted;
                  Search.invalidate search;
                  place_on plan.Migration.target_machine;
                  (* Re-queue the evicted containers (bounded per victim). *)
                  List.iter
                    (fun (ev : Container.t) ->
                      let n =
                        1
                        + Option.value ~default:0
                            (Hashtbl.find_opt requeue_count ev.Container.id)
                      in
                      Hashtbl.replace requeue_count ev.Container.id n;
                      if n <= options.max_requeues then Queue.push ev queue
                      else undeployed := ev :: !undeployed)
                    plan.Migration.evicted;
                  true
              | None -> false
            else false
          in
          if not preempted then undeployed := c :: !undeployed)
  done;
  last_stats := Some (Search.stats search);
  (* Gang semantics: an app with any undeployed batch container loses its
     whole batch (partial LLAs are useless to gang workloads). *)
  if options.gang && !undeployed <> [] then begin
    let failed_apps = Hashtbl.create 8 in
    List.iter
      (fun (c : Container.t) -> Hashtbl.replace failed_apps c.Container.app ())
      !undeployed;
    Array.iter
      (fun (c : Container.t) ->
        if
          Hashtbl.mem failed_apps c.Container.app
          && Cluster.machine_of cluster c.Container.id <> None
        then begin
          Cluster.remove cluster c.Container.id;
          undeployed := c :: !undeployed
        end)
      batch
  end;
  let placed =
    Array.to_list batch
    |> List.filter_map (fun (c : Container.t) ->
           match Cluster.machine_of cluster c.Container.id with
           | Some mid -> Some (c.Container.id, mid)
           | None -> None)
  in
  {
    Scheduler.placed;
    undeployed = List.rev !undeployed;
    violations = [];
    migrations = !migrations;
    preemptions = !preemptions;
    rounds = !rounds;
  }

let schedule_raw options cluster batch = schedule_batch options cluster batch

(* ---- Batch-level recovery -------------------------------------------- *)

let warm_invalidate w =
  w.w_search <- None;
  w.w_cluster <- None;
  Flow_graph.projection_invalidate w.w_projection

(* Everything the scheduler can recover from travels as one of these two
   exceptions; anything else (Out_of_memory, a genuine bug) propagates. *)
let recoverable = function
  | Aladdin_error.E _ -> true
  | e -> Scheduler.faults_recoverable e

(* Snapshot/restore, fallback-to-cold, rejection and batch obs all come
   from the scheduler middleware; this layer only decides what a "cold
   retry" means (drop the warm state, rerun without it). *)
let stack ?fallback name schedule =
  { Scheduler.name; schedule }
  |> Scheduler.with_transaction ~prefix:"aladdin" ~recoverable ?fallback
  |> Scheduler.with_obs ~prefix:"aladdin"

let make ?(options = default_options) () =
  stack (name_of_options options) (fun cluster batch ->
      schedule_batch options cluster batch)

let make_warm ?(options = default_options) () =
  let warm = warm_create () in
  let cold () =
    (* Warm state is suspect after a failed batch: drop the carried
       search, cluster binding and projection potentials, then retry
       the batch cold. The cold retry re-derives everything from the
       (restored) cluster, so its placements match a never-warmed
       scheduler batch for batch. *)
    warm_invalidate warm;
    {
      Scheduler.name = name_of_options options;
      schedule = (fun cluster batch -> schedule_batch options cluster batch);
    }
  in
  stack ~fallback:cold
    (name_of_options options ^ "~warm")
    (fun cluster batch -> schedule_batch ~warm options cluster batch)
