type options = {
  il : bool;
  dl : bool;
  weight_base : int option;
  migration : bool;
  preemption : bool;
  max_moves : int;
  max_requeues : int;
  gang : bool;
}

let default_options =
  {
    il = true;
    dl = true;
    weight_base = None;
    migration = true;
    preemption = true;
    max_moves = 8;
    max_requeues = 4;
    gang = false;
  }

let plain = { default_options with il = false; dl = false }
let with_il = { default_options with il = true; dl = false }

let name_of_options o =
  let opt =
    match (o.il, o.dl) with
    | false, false -> ""
    | true, false -> "+IL"
    | false, true -> "+DL"
    | true, true -> "+IL+DL"
  in
  let base =
    match o.weight_base with Some b -> Printf.sprintf "(%d)" b | None -> ""
  in
  "Aladdin" ^ opt ^ base

let last_stats : Search.stats option ref = ref None
let last_search_stats () = !last_stats

(* Warm-start state carried between batches: the search (with its
   cross-batch equivalence classes) and a persistent scalar-projection
   arena for solver-driven consumers. Placements are unaffected — only
   per-batch setup cost. *)
type warm = {
  mutable w_cluster : Cluster.t option;
  mutable w_search : Search.t option;
  w_projection : Flow_graph.projection_cache;
}

let warm_create () =
  {
    w_cluster = None;
    w_search = None;
    w_projection = Flow_graph.projection_cache ();
  }

let warm_projection w = w.w_projection

let batch_hist = Obs.histogram "aladdin.batch_ns"
let c_batches = Obs.counter "aladdin.batches"
let c_creates = Obs.counter "aladdin.search_creates"
let c_refreshes = Obs.counter "aladdin.search_refreshes"
let c_placed = Obs.counter "aladdin.containers_placed"
let c_undeployed = Obs.counter "aladdin.containers_undeployed"
let c_fallback = Obs.counter "aladdin.fallback_to_cold"
let c_rejected = Obs.counter "aladdin.rejected_batches"
let c_restore_drops = Obs.counter "aladdin.restore_drops"

let search_for ?warm options fg cluster =
  match warm with
  | Some w -> (
      match (w.w_search, w.w_cluster) with
      | Some s, Some cl
        when cl == cluster
             && Search.il_enabled s = options.il
             && Search.dl_enabled s = options.dl ->
          Search.refresh s fg;
          Obs.incr c_refreshes;
          s
      | _ ->
          let s = Search.create ~il:options.il ~dl:options.dl ~eq:true fg in
          w.w_search <- Some s;
          w.w_cluster <- Some cluster;
          Obs.incr c_creates;
          s)
  | None ->
      Obs.incr c_creates;
      Search.create ~il:options.il ~dl:options.dl fg

let schedule_batch ?warm options cluster batch =
  Obs.incr c_batches;
  let t0 = Obs.now_ns () in
  let fg = Flow_graph.build cluster batch in
  let search = search_for ?warm options fg cluster in
  let capacity = Topology.capacity (Cluster.topology cluster) 0 in
  let weights =
    match options.weight_base with
    | Some base -> Weights.fixed ~base batch ~capacity
    | None -> Weights.compute batch ~capacity
  in
  (* Eq. 9: augment heavier weighted flows first; ties in arrival order. *)
  let order = Array.copy batch in
  Array.sort
    (fun a b ->
      match
        Int.compare (Weights.weighted_magnitude weights b)
          (Weights.weighted_magnitude weights a)
      with
      | 0 -> Container.compare_by_arrival a b
      | c -> c)
    order;
  let queue = Queue.create () in
  Array.iter (fun c -> Queue.push c queue) order;
  let requeue_count : (Container.id, int) Hashtbl.t = Hashtbl.create 64 in
  let undeployed = ref [] in
  let migrations = ref 0 in
  let preemptions = ref 0 in
  let rounds = ref 0 in
  while not (Queue.is_empty queue) do
    incr rounds;
    let c = Queue.pop queue in
    (* Fault-harness probe: a solver-step failure mid-batch, after some
       containers have already been placed — exactly the state the
       batch-level restore has to unwind. No-op unless a Fault config is
       installed. *)
    Fault.trip_solver_step "aladdin.schedule_batch";
    let place_on mid =
      (match Cluster.place cluster c mid with
      | Ok () -> ()
      | Error _ ->
          (* The search said this machine admits [c]; a denial means the
             cluster diverged from the search state — typed error, the
             batch wrapper restores and retries cold. *)
          Aladdin_error.raise_error
            (Aladdin_error.Placement_failed
               { container = c.Container.id; machine = mid }));
      Search.note_placement search mid
    in
    match Search.find_machine search c with
    | Some mid -> place_on mid
    | None -> (
        let migrated =
          if options.migration then
            match
              Migration.find_and_apply_migration cluster c
                ~max_moves:options.max_moves
            with
            | Some plan ->
                migrations := !migrations + List.length plan.Migration.moves;
                Search.invalidate search;
                List.iter
                  (fun mv -> Search.note_placement search mv.Migration.to_machine)
                  plan.Migration.moves;
                place_on plan.Migration.target;
                true
            | None -> false
          else false
        in
        if not migrated then
          let preempted =
            if options.preemption then
              match Migration.find_and_apply_preemption cluster weights c with
              | Some plan ->
                  preemptions :=
                    !preemptions + List.length plan.Migration.evicted;
                  Search.invalidate search;
                  place_on plan.Migration.target_machine;
                  (* Re-queue the evicted containers (bounded per victim). *)
                  List.iter
                    (fun (ev : Container.t) ->
                      let n =
                        1
                        + Option.value ~default:0
                            (Hashtbl.find_opt requeue_count ev.Container.id)
                      in
                      Hashtbl.replace requeue_count ev.Container.id n;
                      if n <= options.max_requeues then Queue.push ev queue
                      else undeployed := ev :: !undeployed)
                    plan.Migration.evicted;
                  true
              | None -> false
            else false
          in
          if not preempted then undeployed := c :: !undeployed)
  done;
  last_stats := Some (Search.stats search);
  (* Gang semantics: an app with any undeployed batch container loses its
     whole batch (partial LLAs are useless to gang workloads). *)
  if options.gang && !undeployed <> [] then begin
    let failed_apps = Hashtbl.create 8 in
    List.iter
      (fun (c : Container.t) -> Hashtbl.replace failed_apps c.Container.app ())
      !undeployed;
    Array.iter
      (fun (c : Container.t) ->
        if
          Hashtbl.mem failed_apps c.Container.app
          && Cluster.machine_of cluster c.Container.id <> None
        then begin
          Cluster.remove cluster c.Container.id;
          undeployed := c :: !undeployed
        end)
      batch
  end;
  let placed =
    Array.to_list batch
    |> List.filter_map (fun (c : Container.t) ->
           match Cluster.machine_of cluster c.Container.id with
           | Some mid -> Some (c.Container.id, mid)
           | None -> None)
  in
  let outcome =
    {
      Scheduler.placed;
      undeployed = List.rev !undeployed;
      violations = [];
      migrations = !migrations;
      preemptions = !preemptions;
      rounds = !rounds;
    }
  in
  Obs.add c_placed (List.length placed);
  Obs.add c_undeployed (List.length outcome.Scheduler.undeployed);
  Obs.observe_ns batch_hist (Int64.sub (Obs.now_ns ()) t0);
  outcome

(* ---- Batch-level recovery -------------------------------------------- *)

(* Pre-batch placements, as (container, machine) so they can be replayed. *)
let snapshot cluster =
  List.filter_map
    (fun (cid, mid) ->
      Option.map (fun c -> (c, mid)) (Cluster.container cluster cid))
    (Cluster.placements cluster)

let restore cluster snap =
  Cluster.reset cluster;
  List.iter
    (fun (c, mid) ->
      match Cluster.place ~force:true cluster c mid with
      | Ok () -> ()
      | Error _ ->
          (* Only possible if the machine itself vanished or shrank since
             the snapshot (e.g. a revocation landing mid-restore); the
             container is genuinely displaced. Count it, keep restoring. *)
          Obs.incr c_restore_drops)
    snap

let warm_invalidate w =
  w.w_search <- None;
  w.w_cluster <- None;
  Flow_graph.projection_invalidate w.w_projection

(* Everything the scheduler can recover from travels as one of these two
   exceptions; anything else (Out_of_memory, a genuine bug) propagates. *)
let recoverable = function
  | Aladdin_error.E _ | Fault.Injected _ -> true
  | _ -> false

let reject_outcome batch =
  {
    Scheduler.placed = [];
    undeployed = Array.to_list batch;
    violations = [];
    migrations = 0;
    preemptions = 0;
    rounds = 0;
  }

let schedule ?warm options cluster batch =
  let snap = snapshot cluster in
  let reject () =
    Obs.incr c_rejected;
    restore cluster snap;
    reject_outcome batch
  in
  match schedule_batch ?warm options cluster batch with
  | outcome -> outcome
  | exception e when recoverable e -> (
      restore cluster snap;
      match warm with
      | None -> reject ()
      | Some w ->
          (* Warm state is suspect after a failed batch: drop the carried
             search, cluster binding and projection potentials, then retry
             the batch cold. The cold retry re-derives everything from the
             (restored) cluster, so its placements match a never-warmed
             scheduler batch for batch. *)
          Obs.incr c_fallback;
          warm_invalidate w;
          (match schedule_batch options cluster batch with
          | outcome -> outcome
          | exception e when recoverable e -> reject ()))

let make ?(options = default_options) () =
  {
    Scheduler.name = name_of_options options;
    schedule = (fun cluster batch -> schedule options cluster batch);
  }

let make_warm ?(options = default_options) () =
  let warm = warm_create () in
  {
    Scheduler.name = name_of_options options ^ "~warm";
    schedule = (fun cluster batch -> schedule ~warm options cluster batch);
  }
