(** The two flow-increasing mechanisms of §III.B (Fig. 3), made
    priority-safe.

    - {b Migration} (Fig. 3(b)): when a container C has no admissible
      machine, look for a machine with enough free resources where only
      anti-affinity blocks C; if every blocking container can move to some
      other admissible machine, move them and free the spot. Migration may
      move containers of any priority — they stay deployed, so no
      constraint is violated.
    - {b Preemption} (Fig. 3(a)): evict strictly-lower-weighted containers
      to make room. The weighted flow (Eq. 5) guarantees the reverse — a
      low-priority container preempting a high-priority one — can never
      increase the objective, so it is never proposed. *)

type move = {
  container : Container.t;
  from_machine : Machine.id;
  to_machine : Machine.id;
}

type migration_plan = { target : Machine.id; moves : move list }

val find_and_apply_migration :
  Cluster.t -> Container.t -> max_moves:int -> migration_plan option
(** Searches machine by machine; applies the first consistent plan (moves
    executed, the target left free for the caller to place into). Plans
    that fail mid-way are rolled back. Returns the applied plan. *)

type preemption_plan = {
  target_machine : Machine.id;
  evicted : Container.t list;
}

val find_and_apply_preemption :
  Cluster.t ->
  Weights.t ->
  Container.t ->
  preemption_plan option
(** Evicts the fewest strictly-lower-weighted containers that make the
    container admissible somewhere. Evicted containers are removed from the
    cluster; the caller re-queues them. *)

val repair_placement :
  ?max_moves:int -> Cluster.t -> Container.t -> Machine.id option
(** Re-placement policy for {!Audit.run}: the first directly admissible
    machine, else the target freed by a bounded migration chain
    ([max_moves], default 4; the chain is applied as a side effect, the
    returned target is left for the caller to place into). [None] when
    neither exists — the auditor then reports the container undeployed. *)
