type stats = {
  mutable paths_explored : int;
  mutable il_skips : int;
  mutable dl_cuts : int;
  mutable eq_skips : int;
}

type t = {
  il : bool;
  dl : bool;
  eq : bool;
  cluster : Cluster.t;
  n_machines : int;
  stats : stats;
  (* Packing preference: machines that host containers, in the order they
     were first used, then untouched machines in id order. *)
  active : int array;            (* machine ids, prefix [0, n_active) *)
  mutable n_active : int;
  is_active : bool array;
  mutable cursor : int;          (* first id that may still be inactive *)
  (* Machines proven unable to host even the smallest batch demand are
     parked out of the scan until a migration/preemption frees space. *)
  mutable min_demand : Resource.t;
  mutable parked : int list;
  (* IL caches. The pair cache is a bitmap over (batch app slot, machine):
     one bit per admissibility failure, so consulting it costs less than
     re-running the capacity function. *)
  mutable app_slot : (Application.id, int) Hashtbl.t;
  mutable n_app_slots : int;
  mutable failed_pair : Bytes.t;
  mutable failed_app : Bytes.t;
  (* Machine equivalence classes, keyed on the free-resource signature.
     "Free vector F cannot host demand D" is a pure fact about the two
     vectors, so entries stay valid forever — across batches included —
     and machines sharing a signature share the verdict. Two levels
     (demand, then free signature) so the per-machine probe in the scan
     loop hashes only the free vector, with the demand table resolved
     once per container. Sound because [Machine.free] snapshots are
     replaced on placement, never mutated in place. *)
  unfit : (Resource.t, (Resource.t, unit) Hashtbl.t) Hashtbl.t;
}

let min_demand_of batch ~dims =
  let mins = Array.make dims max_int in
  Array.iter
    (fun (c : Container.t) ->
      let d = Resource.to_array c.Container.demand in
      Array.iteri (fun i x -> if x < mins.(i) then mins.(i) <- x) d)
    batch;
  Array.iteri (fun i x -> if x = max_int then mins.(i) <- 0) mins;
  Resource.of_array mins

(* A machine on which even the pointwise-minimal batch demand fails in some
   dimension can host no batch container at all. *)
let machine_dead t m = not (Machine.fits m t.min_demand)

let app_slots_of fg =
  let apps = Flow_graph.app_ids fg in
  let app_slot = Hashtbl.create (List.length apps) in
  List.iteri (fun i app -> Hashtbl.replace app_slot app i) apps;
  (app_slot, max 1 (List.length apps))

let create ?(il = true) ?(dl = true) ?(eq = false) fg =
  let cluster = Flow_graph.cluster fg in
  let n = Cluster.n_machines cluster in
  let batch = Flow_graph.batch fg in
  let app_slot, n_app_slots = app_slots_of fg in
  let dims =
    Resource.dims (Topology.capacity (Cluster.topology cluster) 0)
  in
  let t =
    {
      il;
      dl;
      eq;
      cluster;
      n_machines = n;
      stats = { paths_explored = 0; il_skips = 0; dl_cuts = 0; eq_skips = 0 };
      active = Array.make n 0;
      n_active = 0;
      is_active = Array.make n false;
      cursor = 0;
      min_demand = min_demand_of batch ~dims;
      parked = [];
      app_slot;
      n_app_slots;
      failed_pair =
        (if il then Bytes.make (((n_app_slots * n) + 7) / 8) '\000'
         else Bytes.empty);
      failed_app =
        (if il then Bytes.make ((n_app_slots + 7) / 8) '\000' else Bytes.empty);
      unfit = (if eq then Hashtbl.create 64 else Hashtbl.create 1);
    }
  in
  (* Machines used by earlier batches are already active. *)
  Array.iter
    (fun m ->
      if Machine.is_used m then begin
        let id = Machine.id m in
        t.active.(t.n_active) <- id;
        t.n_active <- t.n_active + 1;
        t.is_active.(id) <- true
      end)
    (Cluster.machines cluster);
  t

let refresh t fg =
  if not (Flow_graph.cluster fg == t.cluster) then
    invalid_arg "Search.refresh: different cluster";
  let batch = Flow_graph.batch fg in
  let dims = Resource.dims t.min_demand in
  t.min_demand <- min_demand_of batch ~dims;
  (* Per-batch IL caches restart from scratch (app slots are batch-local). *)
  let app_slot, n_app_slots = app_slots_of fg in
  t.app_slot <- app_slot;
  if t.il then begin
    let pair_len = ((n_app_slots * t.n_machines) + 7) / 8 in
    if n_app_slots <> t.n_app_slots || Bytes.length t.failed_pair <> pair_len
    then begin
      t.failed_pair <- Bytes.make pair_len '\000';
      t.failed_app <- Bytes.make ((n_app_slots + 7) / 8) '\000'
    end
    else begin
      Bytes.fill t.failed_pair 0 (Bytes.length t.failed_pair) '\000';
      Bytes.fill t.failed_app 0 (Bytes.length t.failed_app) '\000'
    end
  end;
  t.n_app_slots <- n_app_slots;
  (* Re-seed the packing preference exactly as a from-scratch create would:
     the machines currently in use, in machine-id order. [is_active] is set
     exactly for the machines this search has touched (the active prefix
     plus the parked list — parking keeps the bit set), and only those can
     have gained or lost containers through the scheduler. Drop the bit for
     any that went back to empty, then one ascending scan of the bitmap
     rebuilds the prefix in machine-id order — same order the old
     sort-based rebuild produced, with no per-batch list churn or sort. *)
  for i = 0 to t.n_active - 1 do
    let mid = t.active.(i) in
    if not (Machine.is_used (Cluster.machine t.cluster mid)) then
      t.is_active.(mid) <- false
  done;
  List.iter
    (fun mid ->
      if not (Machine.is_used (Cluster.machine t.cluster mid)) then
        t.is_active.(mid) <- false)
    t.parked;
  t.parked <- [];
  t.n_active <- 0;
  for mid = 0 to t.n_machines - 1 do
    if t.is_active.(mid) then begin
      t.active.(t.n_active) <- mid;
      t.n_active <- t.n_active + 1
    end
  done;
  t.cursor <- 0;
  (* Per-batch stats, mirroring a fresh create. The cross-batch [unfit]
     equivalence table is deliberately kept. *)
  t.stats.paths_explored <- 0;
  t.stats.il_skips <- 0;
  t.stats.dl_cuts <- 0;
  t.stats.eq_skips <- 0

let il_enabled t = t.il
let dl_enabled t = t.dl
let eq_enabled t = t.eq
let stats t = t.stats

let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let slot_of t app = Hashtbl.find_opt t.app_slot app

let note_placement t mid =
  if not t.is_active.(mid) then begin
    t.active.(t.n_active) <- mid;
    t.n_active <- t.n_active + 1;
    t.is_active.(mid) <- true
  end

let invalidate t =
  if t.il then begin
    Bytes.fill t.failed_pair 0 (Bytes.length t.failed_pair) '\000';
    Bytes.fill t.failed_app 0 (Bytes.length t.failed_app) '\000'
  end;
  (* Freed resources can revive parked machines. *)
  List.iter
    (fun mid ->
      t.active.(t.n_active) <- mid;
      t.n_active <- t.n_active + 1)
    t.parked;
  t.parked <- []

let find_machine t (c : Container.t) =
  let slot = if t.il then slot_of t c.Container.app else None in
  let app_failed =
    match slot with Some s -> bit_get t.failed_app s | None -> false
  in
  if app_failed then begin
    t.stats.il_skips <- t.stats.il_skips + 1;
    None
  end
  else begin
    let n = t.n_machines in
    let best = ref None in
    let stop = ref false in
    let scanned = ref 0 in
    (* Resolve this container's demand once: the probe loop below then
       hashes only the machine's free vector, with no per-probe key
       allocation. *)
    let unfit_frees =
      if t.eq then
        match Hashtbl.find_opt t.unfit c.Container.demand with
        | Some h -> h
        | None ->
            let h = Hashtbl.create 64 in
            Hashtbl.replace t.unfit c.Container.demand h;
            h
      else Hashtbl.create 1
    in
    let check mid =
      let skip =
        match slot with
        | Some s -> bit_get t.failed_pair ((s * n) + mid)
        | None -> false
      in
      if skip then t.stats.il_skips <- t.stats.il_skips + 1
      else begin
        let machine = Cluster.machine t.cluster mid in
        (* Equivalence class: a machine whose free-resource signature is
           already known too small for this demand fails without being
           scanned. Sound because capacity fit is a pure function of
           (free, demand); blacklist conflicts stay per-machine. *)
        let free = Machine.free machine in
        let eq_unfit = t.eq && Hashtbl.mem unfit_frees free in
        if eq_unfit then begin
          t.stats.eq_skips <- t.stats.eq_skips + 1;
          match slot with
          | Some s -> bit_set t.failed_pair ((s * n) + mid)
          | None -> ()
        end
        else begin
          incr scanned;
          t.stats.paths_explored <- t.stats.paths_explored + 1;
          match Cluster.admissible t.cluster c mid with
          | Ok () ->
              if !best = None then best := Some mid;
              (* Depth limiting: T_i's flow is capped by its demand, so no
                 further path can increase it — stop searching. *)
              if t.dl then stop := true
          | Error err ->
              (match slot with
              | Some s -> bit_set t.failed_pair ((s * n) + mid)
              | None -> ());
              (* Record the equivalence-class verdict only for genuine
                 capacity misfits: offline machines also answer
                 No_capacity but their signature is not at fault. *)
              (match err with
              | Cluster.No_capacity
                when t.eq
                     && (not (Cluster.is_offline t.cluster mid))
                     && not (Machine.fits machine c.Container.demand) ->
                  Hashtbl.replace unfit_frees free ()
              | _ -> ())
        end
      end
    in
    (* Tier 1: active machines, parking the ones that can no longer host
       anything from this batch. *)
    let i = ref 0 in
    while (not !stop) && !i < t.n_active do
      let mid = t.active.(!i) in
      if machine_dead t (Cluster.machine t.cluster mid) then begin
        (* order-preserving removal, so every policy scans survivors in
           the same preference order (keeps IL/DL placement-neutral);
           is_active stays set so the cursor tier skips it too *)
        Array.blit t.active (!i + 1) t.active !i (t.n_active - !i - 1);
        t.n_active <- t.n_active - 1;
        t.parked <- mid :: t.parked
      end
      else begin
        check mid;
        incr i
      end
    done;
    (* Tier 2: untouched machines in id order. *)
    while t.cursor < n && t.is_active.(t.cursor) do
      t.cursor <- t.cursor + 1
    done;
    let id = ref t.cursor in
    while (not !stop) && !id < n do
      if not t.is_active.(!id) then check !id;
      incr id
    done;
    if !stop then t.stats.dl_cuts <- t.stats.dl_cuts + (n - !scanned);
    if !best = None then begin
      match slot with Some s -> bit_set t.failed_app s | None -> ()
    end;
    !best
  end
