(** The per-container path search of Algorithm 1, with the two search-space
    optimizations of §IV.A.

    Machines are ranked by a packing preference (machines already hosting
    containers, in activation order, then empty machines) — the "shortest
    path" of the SPFA formulation. A machine is admissible when the full
    capacity function accepts the container: vector fit plus blacklist.

    - {b Isomorphism limiting (IL)}: containers of one application are
      isomorphic, so a (app, machine) admissibility failure is cached and
      siblings skip that machine; an app that failed everywhere fails its
      siblings outright. Caches are invalidated when migration or
      preemption frees resources.
    - {b Depth limiting (DL)}: the flow along T_i is bounded by its demand,
      so searching past the first admissible machine cannot increase it —
      the scan stops there. Without DL the whole tier is scanned and the
      same best-ranked machine selected, so DL changes latency, not
      placement.
    - {b Equivalence classes (EQ, opt-in)}: machines with the same
      free-resource signature are capacity-isomorphic. "Free vector F
      cannot host demand D" is a pure fact about the two vectors, so a
      recorded misfit lets every machine sharing the signature skip the
      scan — across batches too, when the search is {!refresh}ed instead
      of recreated. Like IL/DL, EQ changes latency, not placement. *)

type t

type stats = {
  mutable paths_explored : int;
      (** admissibility checks performed — the algorithm-overhead proxy *)
  mutable il_skips : int;  (** scans avoided by isomorphism limiting *)
  mutable dl_cuts : int;   (** scans cut short by depth limiting *)
  mutable eq_skips : int;
      (** scans avoided by free-signature equivalence classes *)
}

val create : ?il:bool -> ?dl:bool -> ?eq:bool -> Flow_graph.t -> t
(** IL and DL default to on; the equivalence-class cache defaults to off
    (it changes [paths_explored] accounting, not placement). *)

val refresh : t -> Flow_graph.t -> unit
(** Re-point the search at a new batch over the {e same} cluster, exactly
    as {!create} would: per-batch IL caches and stats are cleared and the
    packing preference re-seeded from the machines currently in use. The
    cross-batch equivalence table survives — this is what makes a warm
    search cheaper than a fresh one while staying placement-identical.
    @raise Invalid_argument when [fg] was built against another cluster. *)

val find_machine : t -> Container.t -> Machine.id option
(** Best admissible machine under the packing preference, or [None]. Does
    not mutate the cluster. *)

val note_placement : t -> Machine.id -> unit
(** Tell the search a machine gained a container (activation order). *)

val invalidate : t -> unit
(** Drop IL caches after resources were freed (migration/preemption). *)

val stats : t -> stats
val il_enabled : t -> bool
val dl_enabled : t -> bool
val eq_enabled : t -> bool
