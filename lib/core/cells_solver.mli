(** Sharded scalar max-flow over scheduling cells.

    Each cell's tiered projection ({!Flow_graph.scalar_projection} of the
    cell's mirror and sub-batch) is solved independently on the
    coordinator's domain pool; a border bipartite network then routes
    leftover demand to leftover capacity across cells. Because the tiered
    projection is tier-ample (every task can reach every machine), the
    decomposition is exact:

    [total_flow = global unsharded max flow],

    for every registry backend — the invariant the differential suite
    checks. Costs are not comparable to the global solve (the sharded
    routing is a restriction), only the flow value is. *)

type cell_result = {
  cell_flow : int;
  cell_cost : int;
  leftover_demand : int;    (** unrouted batch demand in this cell *)
  leftover_capacity : int;  (** unused machine capacity in this cell *)
  solve_ns : int64;
}

type result = {
  total_flow : int;  (** sum of cell flows + border flow *)
  border_flow : int;
  total_cost : int;
  cells : cell_result array;
}

val solve :
  ?backend:(module Flownet.Solver_intf.S) ->
  Cells.Coordinator.t ->
  Cluster.t ->
  Container.t array ->
  (result, Aladdin_error.t) Stdlib.result
(** Assign [batch] to cells with the coordinator's deterministic policy,
    solve per-cell projections in parallel, then the border network.
    [backend] defaults to [ALADDIN_SOLVER]'s choice.

    A backend failure in any cell (or the border solve) is routed through
    the typed channel — [Error (Solver _)] for {!Flownet.Error} reports,
    [Error (Injected_fault _)] for fault-harness injections — never an
    exception, so one failing cell degrades the solve instead of killing
    the worker domains ([cells.solver.errors] counts these). The first
    failing cell (lowest index) determines the report. *)
