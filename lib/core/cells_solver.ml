(* Sharded scalar max-flow: per-cell projections solved independently
   (in parallel on the coordinator's pool), then one tiny border network
   that lets cells with leftover demand draw on cells with leftover
   capacity.

   The tiered projection is tier-ample — every task reaches every machine
   through infinite inner arcs — so a cell's max flow is exactly
   [min (cell demand, cell free)] and the decomposition is *exact*, not a
   bound: [sum of cell flows + border flow = global max flow]. The
   differential suite asserts this equality against the unsharded solve
   for every registry backend. *)

type cell_result = {
  cell_flow : int;
  cell_cost : int;
  leftover_demand : int;    (** unrouted batch demand in this cell *)
  leftover_capacity : int;  (** unused machine capacity in this cell *)
  solve_ns : int64;
}

type result = {
  total_flow : int;
  border_flow : int;
  total_cost : int;
  cells : cell_result array;
}

let h_cell_solve = Obs.histogram "cells.solver.cell_ns"
let h_border_solve = Obs.histogram "cells.solver.border_ns"
let c_solver_errors = Obs.counter "cells.solver.errors"

(* Source-side (capacity, flow) over the forward arcs leaving [v]. *)
let out_caps g v =
  Flownet.Graph.fold_out g v
    (fun (c, f) a ->
      if Flownet.Graph.is_forward a then
        (c + Flownet.Graph.capacity g a, f + Flownet.Graph.flow g a)
      else (c, f))
    (0, 0)

(* Sink-side (capacity, flow) over the forward arcs entering [v], reached
   through their residual twins in [v]'s adjacency. *)
let in_caps g v =
  Flownet.Graph.fold_out g v
    (fun (c, f) a ->
      if Flownet.Graph.is_forward a then (c, f)
      else
        let fw = Flownet.Graph.rev a in
        (c + Flownet.Graph.capacity g fw, f + Flownet.Graph.flow g fw))
    (0, 0)

(* A failing per-cell solve must not kill the worker domain (and with it
   every other cell's work): both the backend's typed [Error] and a
   fault-harness injection surface as a clean [Error] that [solve] routes
   through the {!Aladdin_error} channel, so the caller can degrade —
   ladder, fallback, or batch reject — instead of crashing. *)
let solve_cell backend ~mirror ~sub =
  let t0 = Obs.now_ns () in
  Fault.trip_solver_step "cells.solver.cell";
  let fg = Flow_graph.build mirror sub in
  let g, s, t = Flow_graph.scalar_projection fg in
  match Flownet.Registry.solve backend g ~src:s ~dst:t with
  | Error e -> Error e
  | Ok stats ->
      let dcap, dflow = out_caps g s in
      let ccap, cflow = in_caps g t in
      let dt = Int64.sub (Obs.now_ns ()) t0 in
      Obs.observe_ns h_cell_solve dt;
      Ok
        {
          cell_flow = stats.Flownet.Mincost.flow;
          cell_cost = stats.Flownet.Mincost.cost;
          leftover_demand = dcap - dflow;
          leftover_capacity = ccap - cflow;
          solve_ns = dt;
        }

(* s -> l_c (leftover demand) -> r_j (infinite) -> t (leftover capacity):
   one vertex pair per cell, arcs only between non-empty sides, so the
   border problem is O(cells^2) however large the cluster is. *)
let solve_border backend cells =
  let n = Array.length cells in
  let total_ld =
    Array.fold_left (fun acc c -> acc + c.leftover_demand) 0 cells
  in
  let total_lc =
    Array.fold_left (fun acc c -> acc + c.leftover_capacity) 0 cells
  in
  if total_ld = 0 || total_lc = 0 then Ok (0, 0)
  else begin
    let t0 = Obs.now_ns () in
    let g = Flownet.Graph.create ~arc_hint:(4 * n * n) (2 + (2 * n)) in
    let s = 0 and t = 1 in
    let lv c = 2 + c and rv c = 2 + n + c in
    let inf = total_ld + 1 in
    Array.iteri
      (fun c cr ->
        if cr.leftover_demand > 0 then
          ignore
            (Flownet.Graph.add_arc g ~src:s ~dst:(lv c)
               ~cap:cr.leftover_demand ~cost:0);
        if cr.leftover_capacity > 0 then
          ignore
            (Flownet.Graph.add_arc g ~src:(rv c) ~dst:t
               ~cap:cr.leftover_capacity ~cost:0))
      cells;
    Array.iteri
      (fun i ci ->
        if ci.leftover_demand > 0 then
          Array.iteri
            (fun j cj ->
              if cj.leftover_capacity > 0 then
                ignore
                  (Flownet.Graph.add_arc g ~src:(lv i) ~dst:(rv j) ~cap:inf
                     ~cost:0))
            cells)
      cells;
    match Flownet.Registry.solve backend g ~src:s ~dst:t with
    | Error e -> Error e
    | Ok stats ->
        Obs.observe_ns h_border_solve (Int64.sub (Obs.now_ns ()) t0);
        Ok (stats.Flownet.Mincost.flow, stats.Flownet.Mincost.cost)
  end

let solve ?backend coord outer batch =
  let backend =
    match backend with Some b -> b | None -> Flownet.Registry.of_env ()
  in
  let per_cell =
    Cells.Coordinator.map_cells coord outer ~batch
      ~f:(fun ~cell:_ ~lo:_ ~mirror ~sub -> solve_cell backend ~mirror ~sub)
  in
  (* First typed failure wins (deterministic: lowest cell index); anything
     untyped is a genuine bug and still propagates. *)
  let err = ref None in
  let note e = if !err = None then err := Some e in
  let cells =
    Array.map
      (function
        | Ok (Ok r) -> Some r
        | Ok (Error e) ->
            note (Aladdin_error.Solver e);
            None
        | Error (Aladdin_error.E e) ->
            note e;
            None
        | Error (Fault.Injected site) ->
            note (Aladdin_error.Injected_fault site);
            None
        | Error e -> raise e)
      per_cell
  in
  match !err with
  | Some e ->
      Obs.incr c_solver_errors;
      Error e
  | None -> (
      let cells = Array.map Option.get cells in
      match solve_border backend cells with
      | Error e ->
          Obs.incr c_solver_errors;
          Error (Aladdin_error.Solver e)
      | Ok (border_flow, border_cost) ->
          Ok
            {
              total_flow =
                Array.fold_left (fun acc c -> acc + c.cell_flow) 0 cells
                + border_flow;
              border_flow;
              total_cost =
                Array.fold_left (fun acc c -> acc + c.cell_cost) 0 cells
                + border_cost;
              cells;
            })
