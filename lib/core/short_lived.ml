type task = {
  task_id : int;
  demand : Resource.t;
  duration : float;
  arrival : float;
}

let make_task ~task_id ~demand ~duration ~arrival =
  if duration <= 0. then invalid_arg "Short_lived.make_task: duration";
  if arrival < 0. then invalid_arg "Short_lived.make_task: arrival";
  { task_id; demand; duration; arrival }

type stats = {
  completed : int;
  expired : int;
  mean_wait : float;
  mean_turnaround : float;
  peak_queue : int;
  lla_outcome : Scheduler.outcome;
}

type event =
  | Task_arrival of task
  | Task_done of task * Container.id
  | Lla_batch of Container.t array

(* Tasks are wrapped as containers of the dedicated batch app so the
   cluster's capacity accounting covers them; their container ids live in a
   high range to stay clear of LLA ids. *)
let container_of_task ~task_app (t : task) =
  Container.make
    ~id:(1_000_000_000 + t.task_id)
    ~app:task_app ~demand:t.demand ~priority:0 ~arrival:0

(* first machine that admits the task, packing-first like the LLA side *)
let try_place cluster c =
  let n = Cluster.n_machines cluster in
  let best = ref None in
  (try
     for mid = 0 to n - 1 do
       if Cluster.admissible cluster c mid = Ok () then begin
         let used = Machine.is_used (Cluster.machine cluster mid) in
         match !best with
         | None ->
             best := Some (mid, used);
             if used then raise Exit
         | Some (_, false) when used ->
             best := Some (mid, used);
             raise Exit
         | Some _ -> ()
       end
     done
   with Exit -> ());
  Option.map fst !best

let run ?(backfill = true) ?max_queue ~cluster ~task_app ~lla_scheduler
    ~lla_batches tasks =
  let des = Des.create () in
  List.iter (fun (t : task) -> Des.schedule des ~at:t.arrival (Task_arrival t)) tasks;
  List.iter
    (fun (at, batch) -> Des.schedule des ~at (Lla_batch batch))
    lla_batches;
  let queue : task Queue.t = Queue.create () in
  let completed = ref 0 in
  let expired = ref 0 in
  let waits = ref [] in
  let turnarounds = ref [] in
  let peak_queue = ref 0 in
  let lla_outcome = ref Scheduler.empty_outcome in
  let start_task now (t : task) =
    let c = container_of_task ~task_app t in
    match try_place cluster c with
    | None -> false
    | Some mid -> (
        match Cluster.place cluster c mid with
        | Error _ ->
            (* [try_place] said admissible; if the cluster now disagrees the
               task simply stays queued for the next drain. *)
            false
        | Ok () ->
            waits := (now -. t.arrival) :: !waits;
            Des.after des ~delay:t.duration (Task_done (t, c.Container.id));
            true)
    in
  (* Drain the queue head-first; with backfill, later tasks may jump a
     stuck head. *)
  let drain now =
    let still_waiting = Queue.create () in
    let head_blocked = ref false in
    while not (Queue.is_empty queue) do
      let t = Queue.pop queue in
      if !head_blocked && not backfill then Queue.push t still_waiting
      else if start_task now t then ()
      else begin
        head_blocked := true;
        Queue.push t still_waiting
      end
    done;
    Queue.transfer still_waiting queue
  in
  let enqueue (t : task) =
    match max_queue with
    | Some limit when Queue.length queue >= limit -> incr expired
    | _ ->
        Queue.push t queue;
        peak_queue := max !peak_queue (Queue.length queue)
  in
  let continue = ref true in
  while !continue do
    match Des.next des with
    | None -> continue := false
    | Some (now, ev) -> (
        match ev with
        | Task_arrival t ->
            (* arriving behind a non-empty queue must not jump it unless
               backfill is on *)
            if (backfill || Queue.is_empty queue) && start_task now t then ()
            else enqueue t
        | Task_done (t, cid) ->
            Cluster.remove cluster cid;
            incr completed;
            turnarounds := (now -. t.arrival) :: !turnarounds;
            drain now
        | Lla_batch batch ->
            let o = lla_scheduler.Scheduler.schedule cluster batch in
            lla_outcome := Scheduler.merge !lla_outcome o;
            (* LLAs may have displaced capacity assumptions; retry queue *)
            drain now)
  done;
  let mean = function
    | [] -> 0.
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  {
    completed = !completed;
    expired = !expired;
    mean_wait = mean !waits;
    mean_turnaround = mean !turnarounds;
    peak_queue = !peak_queue;
    lla_outcome = !lla_outcome;
  }
