type t =
  | Solver of Flownet.Error.t
  | Injected_fault of string
  | Placement_failed of { container : Container.id; machine : Machine.id }
  | Inventory_changed of string

exception E of t

let to_string = function
  | Solver e -> "solver: " ^ Flownet.Error.to_string e
  | Injected_fault msg -> "injected fault: " ^ msg
  | Placement_failed { container; machine } ->
      Printf.sprintf "placement of container %d on machine %d denied"
        container machine
  | Inventory_changed msg -> "inventory changed: " ^ msg

let raise_error e = raise (E e)
