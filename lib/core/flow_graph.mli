(** The tiered Aladdin flow network (Fig. 4):

    {v s → T_i → A_j → G_k → R_x → N_y → t v}

    Application, cluster-group and rack vertices reduce the edge count from
    O(|T|·|N|) to O(|T| + |A|·|G| + |R| + |N|) (§III.A), which is what makes
    sub-second placement feasible at trace scale. The graph is a search
    structure — capacities stay multidimensional and nonlinear (checked
    against the live {!Cluster.t} during search) — but it can be projected
    to a scalar {!Flownet.Graph.t} for analysis. *)

type t

val build : Cluster.t -> Container.t array -> t
(** Tiers for one submission batch against the cluster's topology. *)

val cluster : t -> Cluster.t
val batch : t -> Container.t array

val app_ids : t -> Application.id list
(** Distinct apps present in the batch. *)

val container_indices_of_app : t -> Application.id -> int list
(** Batch indices of an app's containers, in batch order. *)

val n_vertices : t -> int
val n_edges : t -> int
val naive_edges : t -> int
(** |T|·|N| — what a flat bipartite network would cost. *)

val scalar_projection :
  ?dim:int -> ?machine_cost:(Machine.t -> int) -> t ->
  Flownet.Graph.t * int * int
(** CPU-dimension projection as a classic scalar flow network; returns
    [(graph, source, sink)]. Its max flow upper-bounds the total demand any
    schedule can place (used by tests). [machine_cost] prices the N→t arcs
    (default 0 — a pure feasibility network). *)

(** {2 Persistent warm-start projection}

    A {!projection_cache} keeps one flow-network arena alive across
    successive batches against the same cluster. The topology tiers
    (G→R→N→t) are built once and reused; each batch truncates the arena
    back to that fixed prefix, resets residuals, rewrites only the machine
    capacities that changed since the previous batch, and appends the
    batch's own s→T→A→G arcs. Johnson potentials are carried in the
    cache's {!Flownet.Mincost.warm} so successive min-cost solves skip
    their SPFA bootstrap (see [Mincost.run ?warm]). *)

type projection_delta = {
  rebuilt : bool;     (** this batch forced a from-scratch arena rebuild *)
  arcs_reused : int;  (** fixed forward arcs kept from the last batch *)
  arcs_added : int;   (** batch-tier forward arcs appended *)
  caps_updated : int; (** machine arcs whose free capacity changed *)
}

type projection_cache

val projection_cache : ?machine_cost:(Machine.t -> int) -> unit -> projection_cache
(** A fresh cache. [machine_cost] assigns the N→t arc costs (default: 0,
    i.e. a pure feasibility network); it is re-evaluated every batch and
    changed costs are written through {!Flownet.Graph.set_cost}. *)

val scalar_projection_incremental :
  ?dim:int -> projection_cache -> t -> Flownet.Graph.t * int * int
(** Like {!scalar_projection} but reusing the cache's arena. The returned
    graph is owned by the cache and is invalidated by the next call. Max
    flow (and min cost) over it equal the from-scratch projection's — only
    vertex numbering and arc order differ. A cache rebuilds from scratch
    when it sees a new cluster, a new [dim], or a batch larger than its
    slot region (grown geometrically). *)

val projection_warm : projection_cache -> Flownet.Mincost.warm
(** The carried Johnson potentials, to pass as [Mincost.run ?warm]. *)

val projection_delta : projection_cache -> projection_delta
(** What the last {!scalar_projection_incremental} call reused vs rebuilt. *)

val projection_invalidate : projection_cache -> unit
(** Drop the cache's arena binding and carried potentials so the next
    {!scalar_projection_incremental} rebuilds from scratch. Used when a
    batch fails mid-solve and the arena/potentials can no longer be
    trusted (the cold-fallback path of the warm scheduler). *)

val to_dot : t -> string
(** Graphviz rendering of the tiered network (containers collapsed into
    their application vertices for readability) — for docs and debugging. *)
