(** Typed errors for the scheduler layer.

    The scheduler's hot path is imperative (it mutates the cluster as it
    augments), so recoverable failures travel as the single exception
    {!E} carrying a typed payload — callers catch exactly [E] (never a
    bare [exn]), roll the cluster back, and degrade: the warm scheduler
    falls back to a cold solve, the replay driver rejects the batch. *)

type t =
  | Solver of Flownet.Error.t
      (** The min-cost solver failed (negative cycle, stale potentials). *)
  | Injected_fault of string
      (** A {!Fault}-harness injection tripped mid-batch. *)
  | Placement_failed of { container : Container.id; machine : Machine.id }
      (** A placement the scheduler had established as admissible was
          denied — the cluster changed under the scheduler's feet. *)
  | Inventory_changed of string
      (** A sealed external inventory no longer matches the model. *)

exception E of t

val to_string : t -> string

val raise_error : t -> 'a
(** [raise_error e] raises [E e]. *)
