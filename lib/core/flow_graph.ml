type t = {
  cluster : Cluster.t;
  batch : Container.t array;
  by_app : (Application.id, int list) Hashtbl.t; (* batch indices, in order *)
  apps : Application.id list;
}

let build cluster batch =
  let by_app = Hashtbl.create 64 in
  Array.iteri
    (fun i (c : Container.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_app c.Container.app) in
      Hashtbl.replace by_app c.Container.app (i :: cur))
    batch;
  let apps =
    Hashtbl.fold (fun app _ acc -> app :: acc) by_app []
    |> List.sort Int.compare
  in
  Hashtbl.iter (fun app l -> Hashtbl.replace by_app app (List.rev l)) by_app;
  { cluster; batch; by_app; apps }

let cluster t = t.cluster
let batch t = t.batch
let app_ids t = t.apps

let container_indices_of_app t app =
  Option.value ~default:[] (Hashtbl.find_opt t.by_app app)

let tiers t =
  let topo = Cluster.topology t.cluster in
  ( Array.length t.batch,
    List.length t.apps,
    Topology.n_groups topo,
    Topology.n_racks topo,
    Topology.n_machines topo )

let n_vertices t =
  let nt, na, ng, nr, nn = tiers t in
  2 + nt + na + ng + nr + nn

let n_edges t =
  let nt, na, ng, nr, nn = tiers t in
  (* s→T, T→A, A→G (full bipartite between tiers), G→R, R→N, N→t *)
  nt + nt + (na * ng) + nr + nn + nn

let naive_edges t =
  let nt, _, _, _, nn = tiers t in
  nt * nn

let to_dot t =
  let buf = Buffer.create 4096 in
  let topo = Cluster.topology t.cluster in
  Buffer.add_string buf "digraph aladdin {\n  rankdir=LR;\n  s [shape=circle];\n  t [shape=circle];\n";
  List.iter
    (fun app ->
      let n = List.length (container_indices_of_app t app) in
      Buffer.add_string buf
        (Printf.sprintf
           "  A%d [shape=box,label=\"A%d (%d ctrs)\"];\n  s -> A%d [label=\"%d\"];\n"
           app app n app n))
    t.apps;
  for k = 0 to Topology.n_groups topo - 1 do
    Buffer.add_string buf (Printf.sprintf "  G%d [shape=diamond];\n" k);
    List.iter
      (fun app -> Buffer.add_string buf (Printf.sprintf "  A%d -> G%d;\n" app k))
      t.apps;
    List.iter
      (fun r ->
        Buffer.add_string buf (Printf.sprintf "  R%d [shape=diamond];\n" r);
        Buffer.add_string buf (Printf.sprintf "  G%d -> R%d;\n" k r);
        List.iter
          (fun m ->
            let free =
              Resource.to_string (Machine.free (Cluster.machine t.cluster m))
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "  N%d [shape=box,style=rounded];\n  R%d -> N%d;\n  N%d -> t [label=\"%s\"];\n"
                 m r m m free))
          (Topology.machines_of_rack topo r))
      (Topology.racks_of_group topo k)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let c_rebuilds = Obs.counter "flow_graph.projection_rebuilds"
let c_reuses = Obs.counter "flow_graph.projection_reuses"
let c_caps_updated = Obs.counter "flow_graph.projection_caps_updated"

let scalar_projection ?(dim = Resource.cpu_dim) ?(machine_cost = fun _ -> 0) t =
  let nt, na, ng, nr, nn = tiers t in
  let g = Flownet.Graph.create ~arc_hint:(n_edges t) (n_vertices t) in
  let source = 0 and sink = 1 in
  let tv i = 2 + i in
  let av j = 2 + nt + j in
  let gv k = 2 + nt + na + k in
  let rv x = 2 + nt + na + ng + x in
  let nv y = 2 + nt + na + ng + nr + y in
  let app_slot = Hashtbl.create na in
  List.iteri (fun j app -> Hashtbl.replace app_slot app j) t.apps;
  let units (r : Resource.t) = Resource.get r dim in
  let topo = Cluster.topology t.cluster in
  let inf =
    (* effectively infinite inner capacity: total batch demand *)
    Array.fold_left
      (fun acc (c : Container.t) -> acc + units c.Container.demand)
      1 t.batch
  in
  Array.iteri
    (fun i (c : Container.t) ->
      let j = Hashtbl.find app_slot c.Container.app in
      ignore
        (Flownet.Graph.add_arc g ~src:source ~dst:(tv i)
           ~cap:(units c.Container.demand) ~cost:0);
      ignore (Flownet.Graph.add_arc g ~src:(tv i) ~dst:(av j) ~cap:inf ~cost:0))
    t.batch;
  List.iteri
    (fun j _ ->
      for k = 0 to ng - 1 do
        ignore (Flownet.Graph.add_arc g ~src:(av j) ~dst:(gv k) ~cap:inf ~cost:0)
      done)
    t.apps;
  for x = 0 to nr - 1 do
    let k = Topology.group_of_rack topo x in
    ignore (Flownet.Graph.add_arc g ~src:(gv k) ~dst:(rv x) ~cap:inf ~cost:0)
  done;
  for y = 0 to nn - 1 do
    let x = Topology.rack_of topo y in
    ignore (Flownet.Graph.add_arc g ~src:(rv x) ~dst:(nv y) ~cap:inf ~cost:0);
    let m = Cluster.machine t.cluster y in
    let free = units (Machine.free m) in
    ignore
      (Flownet.Graph.add_arc g ~src:(nv y) ~dst:sink ~cap:free
         ~cost:(machine_cost m))
  done;
  (g, source, sink)

(* ---------- persistent (warm-start) projection ---------- *)

(* The incremental projection keeps one Flownet arena alive across batches.
   Vertex layout puts the topology tiers first so their ids — and the arcs
   between them — survive every batch:

     0:s  1:t  [G_k]  [R_x]  [N_y]  | task slots | app slots |

   The G→R, R→N and N→t arcs are built once ("fixed" prefix of the arc
   arena); each batch truncates the arena back to that prefix, resets
   residuals, delta-updates the N→t capacities that actually changed, and
   appends only the s→T→A→G arcs of the new batch. *)

type projection_delta = {
  rebuilt : bool;
  arcs_reused : int;       (** fixed forward arcs kept from the last batch *)
  arcs_added : int;        (** batch-tier forward arcs appended *)
  caps_updated : int;      (** machine arcs whose free capacity changed *)
}

type projection_cache = {
  p_cost_fn : Machine.t -> int;
  mutable p_graph : Flownet.Graph.t option;
  mutable p_cluster : Cluster.t option;
  mutable p_dim : int;
  mutable p_slots : int;          (* task (= app) vertex slots available *)
  mutable p_fixed_mark : int;     (* arc-arena mark after the fixed tier *)
  mutable p_inf : int;            (* cached inner capacity (cluster total) *)
  mutable p_machine_arc : int array;
  mutable p_machine_cap : int array;
  mutable p_machine_cost : int array;
  p_warm : Flownet.Mincost.warm;
  mutable p_delta : projection_delta;
}

let projection_cache ?(machine_cost = fun _ -> 0) () =
  {
    p_cost_fn = machine_cost;
    p_graph = None;
    p_cluster = None;
    p_dim = -1;
    p_slots = 0;
    p_fixed_mark = 0;
    p_inf = 0;
    p_machine_arc = [||];
    p_machine_cap = [||];
    p_machine_cost = [||];
    p_warm = Flownet.Mincost.warm_create ();
    p_delta = { rebuilt = true; arcs_reused = 0; arcs_added = 0; caps_updated = 0 };
  }

let projection_warm cache = cache.p_warm
let projection_delta cache = cache.p_delta

let projection_invalidate cache =
  cache.p_graph <- None;
  cache.p_cluster <- None;
  cache.p_warm.Flownet.Mincost.pot_n <- 0;
  cache.p_warm.Flownet.Mincost.prevalidated <- false

let scalar_projection_incremental ?(dim = Resource.cpu_dim) cache t =
  let nt, na, ng, nr, nn = tiers t in
  let topo = Cluster.topology t.cluster in
  let units (r : Resource.t) = Resource.get r dim in
  let fixed_n = 2 + ng + nr + nn in
  let source = 0 and sink = 1 in
  let gv k = 2 + k in
  let rv x = 2 + ng + x in
  let nv y = 2 + ng + nr + y in
  let same_cluster =
    match cache.p_cluster with Some c -> c == t.cluster | None -> false
  in
  let needs_rebuild =
    cache.p_graph = None || not same_cluster || cache.p_dim <> dim
    || max nt na > cache.p_slots
  in
  (* Effectively-infinite inner capacity. Unlike the one-shot projection we
     bound it by the total cluster capacity — batch-independent (machine
     capacities are immutable), and never tighter than the machine arcs it
     feeds — so it is computed once per arena and the fixed tier needs no
     per-batch capacity rewrites. *)
  if needs_rebuild then
    cache.p_inf <-
      Array.fold_left
        (fun acc m -> acc + units (Machine.capacity m))
        1
        (Cluster.machines t.cluster);
  let inf = cache.p_inf in
  let g, caps_updated =
    if needs_rebuild then begin
      Obs.incr c_rebuilds;
      let slots = max 64 (2 * max nt na) in
      let g =
        Flownet.Graph.create
          ~arc_hint:(nr + (2 * nn) + (4 * slots))
          (fixed_n + (2 * slots))
      in
      for x = 0 to nr - 1 do
        let k = Topology.group_of_rack topo x in
        ignore (Flownet.Graph.add_arc g ~src:(gv k) ~dst:(rv x) ~cap:inf ~cost:0)
      done;
      let machine_arc = Array.make nn (-1) in
      let machine_cap = Array.make nn 0 in
      let machine_cost = Array.make nn 0 in
      for y = 0 to nn - 1 do
        let x = Topology.rack_of topo y in
        ignore (Flownet.Graph.add_arc g ~src:(rv x) ~dst:(nv y) ~cap:inf ~cost:0);
        let m = Cluster.machine t.cluster y in
        let cap = units (Machine.free m) in
        let cost = cache.p_cost_fn m in
        machine_arc.(y) <-
          Flownet.Graph.add_arc g ~src:(nv y) ~dst:sink ~cap ~cost;
        machine_cap.(y) <- cap;
        machine_cost.(y) <- cost
      done;
      cache.p_graph <- Some g;
      cache.p_cluster <- Some t.cluster;
      cache.p_dim <- dim;
      cache.p_slots <- slots;
      cache.p_fixed_mark <- Flownet.Graph.mark g;
      cache.p_machine_arc <- machine_arc;
      cache.p_machine_cap <- machine_cap;
      cache.p_machine_cost <- machine_cost;
      cache.p_warm.Flownet.Mincost.pot_n <- 0;
      cache.p_warm.Flownet.Mincost.prevalidated <- false;
      (g, 0)
    end
    else begin
      Obs.incr c_reuses;
      let g = Option.get cache.p_graph in
      Flownet.Graph.truncate g cache.p_fixed_mark;
      Flownet.Graph.reset_flows g;
      let pot = cache.p_warm.Flownet.Mincost.potential in
      let have_pot =
        cache.p_warm.Flownet.Mincost.pot_n = Flownet.Graph.n_vertices g
      in
      let caps_updated = ref 0 in
      let min_sink = ref max_int in
      for y = 0 to nn - 1 do
        let m = Cluster.machine t.cluster y in
        let cap = units (Machine.free m) in
        if cap <> cache.p_machine_cap.(y) then begin
          Flownet.Graph.set_capacity g cache.p_machine_arc.(y) cap;
          cache.p_machine_cap.(y) <- cap;
          incr caps_updated
        end;
        let cost = cache.p_cost_fn m in
        if cost <> cache.p_machine_cost.(y) then begin
          Flownet.Graph.set_cost g cache.p_machine_arc.(y) cost;
          cache.p_machine_cost.(y) <- cost
        end;
        if have_pot && cap > 0 then begin
          let s = cost + pot.{nv y} in
          if s < !min_sink then min_sink := s
        end
      done;
      (* Only the N→t arcs can lose potential validity between batches (a
         machine arc revived from cap 0, or repriced, may have negative
         reduced cost under the carried potentials). [pot t] appears in no
         other arc's reduced cost, so lowering it to min(cost + pot N) over
         the live machine arcs repairs them all without touching the rest
         of the vector. *)
      if have_pot && !min_sink < pot.{sink} then pot.{sink} <- !min_sink;
      Obs.add c_caps_updated !caps_updated;
      (g, !caps_updated)
    end
  in
  let tv i = fixed_n + i in
  let av j = fixed_n + cache.p_slots + j in
  (* Batch tier: s→T_i→A_j→G_k. *)
  let app_slot = Hashtbl.create (max 1 na) in
  List.iteri (fun j app -> Hashtbl.replace app_slot app j) t.apps;
  Array.iteri
    (fun i (c : Container.t) ->
      let j = Hashtbl.find app_slot c.Container.app in
      ignore
        (Flownet.Graph.add_arc g ~src:source ~dst:(tv i)
           ~cap:(units c.Container.demand) ~cost:0);
      ignore (Flownet.Graph.add_arc g ~src:(tv i) ~dst:(av j) ~cap:inf ~cost:0))
    t.batch;
  List.iteri
    (fun j _ ->
      for k = 0 to ng - 1 do
        ignore (Flownet.Graph.add_arc g ~src:(av j) ~dst:(gv k) ~cap:inf ~cost:0)
      done)
    t.apps;
  (* Patch the carried Johnson potentials for the slot region: a fresh batch
     reuses slot vertices whose stored potentials belong to the previous
     batch's tasks. Any value P with P >= potential(G_k) for all k makes
     every new zero-cost arc's reduced cost nonnegative (s→T and T→A become
     exactly 0, A→G_k becomes P - potential(G_k) >= 0), so the whole carried
     vector stays valid and the SPFA bootstrap is skipped. *)
  let pot = cache.p_warm.Flownet.Mincost.potential in
  if cache.p_warm.Flownet.Mincost.pot_n = Flownet.Graph.n_vertices g then begin
    let p = ref 0 in
    for k = 0 to ng - 1 do
      if pot.{gv k} > !p then p := pot.{gv k}
    done;
    pot.{source} <- !p;
    for i = 0 to nt - 1 do
      pot.{tv i} <- !p
    done;
    for j = 0 to na - 1 do
      pot.{av j} <- !p
    done;
    (* The vector is now valid arc-by-arc: the fixed tier by the bootstrap
       invariant (Mincost fills unreachable vertices with the max finite
       distance, and the arena's costs are nonnegative), the machine arcs
       by the sink repair above, the batch arcs by this patch. Promise that
       to the solver so it skips its O(arcs) validation scan. *)
    cache.p_warm.Flownet.Mincost.prevalidated <- true
  end;
  cache.p_delta <-
    {
      rebuilt = needs_rebuild;
      arcs_reused = (if needs_rebuild then 0 else cache.p_fixed_mark / 2);
      arcs_added = (Flownet.Graph.mark g - cache.p_fixed_mark) / 2;
      caps_updated;
    };
  (g, source, sink)
