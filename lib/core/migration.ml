type move = {
  container : Container.t;
  from_machine : Machine.id;
  to_machine : Machine.id;
}

type migration_plan = { target : Machine.id; moves : move list }

(* Deployed containers on [mid] whose app conflicts with [app]. *)
let blockers cluster app mid =
  let cs = Cluster.constraints cluster in
  List.filter
    (fun (b : Container.t) -> Constraint_set.conflict cs app b.Container.app)
    (Machine.containers (Cluster.machine cluster mid))

(* Try to move [b] to any admissible machine other than [forbidden]. The
   container is removed first so its own blacklist entries don't block the
   re-placement scan. *)
let relocate cluster (b : Container.t) ~forbidden =
  Cluster.remove cluster b.Container.id;
  let n = Cluster.n_machines cluster in
  let rec scan mid =
    if mid >= n then None
    else if mid <> forbidden && Cluster.admissible cluster b mid = Ok () then
      match Cluster.place cluster b mid with
      | Ok () -> Some mid
      | Error _ ->
          (* Admissible but denied: the machine changed between the check
             and the placement — keep scanning, another machine may do. *)
          scan (mid + 1)
    else scan (mid + 1)
  in
  match scan 0 with
  | Some mid -> Some mid
  | None ->
      (* Roll back: put it where it was. The spot was just vacated, so only
         a cluster corrupted under our feet can deny this — typed error so
         the batch driver can reject and restore. *)
      (match Cluster.place ~force:true cluster b forbidden with
      | Ok () -> ()
      | Error _ ->
          Aladdin_error.raise_error
            (Aladdin_error.Placement_failed
               { container = b.Container.id; machine = forbidden }));
      None

(* Victims whose departure makes [c] admissible on [mid]: every deployed
   container whose app conflicts with [c]'s, plus — when capacity is still
   short — the largest non-conflicting containers until the demand fits
   (Fig. 7 shows exactly this rescheduling-for-capacity case). *)
let victim_set cluster (c : Container.t) mid ~max_moves =
  let m = Cluster.machine cluster mid in
  let conflicting = blockers cluster c.Container.app mid in
  let freed =
    List.fold_left
      (fun acc (b : Container.t) -> Resource.add acc b.Container.demand)
      (Machine.free m) conflicting
  in
  if Resource.fits ~demand:c.Container.demand ~within:freed then
    if List.length conflicting <= max_moves && conflicting <> [] then
      Some conflicting
    else None
  else begin
    (* Prefer victims that have somewhere to go: a candidate with no
       admissible target elsewhere would doom the whole plan. *)
    let has_target (b : Container.t) =
      let n = Cluster.n_machines cluster in
      let rec scan i =
        if i >= n then false
        else if i <> mid && Cluster.admissible cluster b i = Ok () then true
        else scan (i + 1)
      in
      scan 0
    in
    let others =
      List.filter
        (fun (b : Container.t) ->
          not
            (List.exists
               (fun (b' : Container.t) -> b'.Container.id = b.Container.id)
               conflicting))
        (Machine.containers m)
      |> List.map (fun b -> (has_target b, b))
      |> List.sort (fun (r1, (a : Container.t)) (r2, (b : Container.t)) ->
             match Bool.compare r2 r1 with
             | 0 -> Resource.compare b.Container.demand a.Container.demand
             | c -> c)
      |> List.map snd
    in
    let rec extend freed acc n = function
      | [] -> None
      | (b : Container.t) :: rest ->
          if n >= max_moves then None
          else begin
            let freed = Resource.add freed b.Container.demand in
            let acc = b :: acc in
            if Resource.fits ~demand:c.Container.demand ~within:freed then
              Some (conflicting @ List.rev acc)
            else extend freed acc (n + 1) rest
          end
    in
    extend freed [] (List.length conflicting) others
  end

let rollback cluster moves =
  List.iter
    (fun mv ->
      Cluster.remove cluster mv.container.Container.id;
      match Cluster.place ~force:true cluster mv.container mv.from_machine with
      | Ok () -> ()
      | Error _ ->
          (* The move's source slot was freed by the move itself, so a
             denial here means the cluster is inconsistent — typed error,
             handled by the batch-level restore. *)
          Aladdin_error.raise_error
            (Aladdin_error.Placement_failed
               {
                 container = mv.container.Container.id;
                 machine = mv.from_machine;
               }))
    moves

let try_machine cluster (c : Container.t) mid ~max_moves =
  match Cluster.admissible cluster c mid with
  | Ok () -> Some { target = mid; moves = [] } (* nothing to do *)
  | Error (Cluster.No_capacity | Cluster.Blacklisted _) -> (
      match victim_set cluster c mid ~max_moves with
      | None -> None
      | Some victims ->
          let rec move_all done_moves = function
            | [] -> Some done_moves
            | b :: rest -> (
                match relocate cluster b ~forbidden:mid with
                | Some dst ->
                    move_all
                      ({ container = b; from_machine = mid; to_machine = dst }
                       :: done_moves)
                      rest
                | None ->
                    rollback cluster done_moves;
                    None)
          in
          (match move_all [] victims with
          | Some moves when Cluster.admissible cluster c mid = Ok () ->
              Some { target = mid; moves = List.rev moves }
          | Some moves ->
              rollback cluster moves;
              None
          | None -> None))

let find_and_apply_migration cluster c ~max_moves =
  let n = Cluster.n_machines cluster in
  let rec scan mid =
    if mid >= n then None
    else
      match try_machine cluster c mid ~max_moves with
      | Some plan when plan.moves <> [] -> Some plan
      | Some plan ->
          (* No moves needed means the machine was admissible all along;
             treat as a trivial plan. *)
          Some plan
      | None -> scan (mid + 1)
  in
  scan 0

type preemption_plan = {
  target_machine : Machine.id;
  evicted : Container.t list;
}

let find_and_apply_preemption cluster weights (c : Container.t) =
  let cs = Cluster.constraints cluster in
  let n = Cluster.n_machines cluster in
  let candidate mid =
    let m = Cluster.machine cluster mid in
    let deployed = Machine.containers m in
    let conflicting, others =
      List.partition
        (fun (b : Container.t) ->
          Constraint_set.conflict cs c.Container.app b.Container.app)
        deployed
    in
    (* Strictly lower priority *class* only: weights are batch-relative, so
       the class comparison is what keeps deployed high-priority containers
       safe from later low-priority batches (Fig. 3(a)). *)
    let evictable (b : Container.t) =
      b.Container.priority < c.Container.priority
    in
    if not (List.for_all evictable conflicting) then None
    else begin
      (* Evict all conflicting, then the smallest-weight others until the
         demand fits. *)
      let base_evict = conflicting in
      let freed =
        List.fold_left
          (fun acc (b : Container.t) -> Resource.add acc b.Container.demand)
          (Machine.free m) base_evict
      in
      if Resource.fits ~demand:c.Container.demand ~within:freed then
        Some (mid, base_evict)
      else begin
        let sorted =
          List.sort
            (fun a b ->
              Int.compare
                (Weights.weighted_magnitude weights a)
                (Weights.weighted_magnitude weights b))
            (List.filter evictable others)
        in
        let rec extend freed acc = function
          | [] -> None
          | (b : Container.t) :: rest ->
              let freed = Resource.add freed b.Container.demand in
              let acc = b :: acc in
              if Resource.fits ~demand:c.Container.demand ~within:freed then
                Some (mid, base_evict @ List.rev acc)
              else extend freed acc rest
        in
        extend freed [] sorted
      end
    end
  in
  let best = ref None in
  for mid = 0 to n - 1 do
    match candidate mid with
    | Some (m, ev) -> (
        match !best with
        | Some (_, best_ev) when List.length best_ev <= List.length ev -> ()
        | _ -> best := Some (m, ev))
    | None -> ()
  done;
  match !best with
  | None -> None
  | Some (mid, evicted) ->
      List.iter (fun (b : Container.t) -> Cluster.remove cluster b.Container.id) evicted;
      (match Cluster.admissible cluster c mid with
      | Ok () -> Some { target_machine = mid; evicted }
      | Error _ ->
          (* The victim-set arithmetic said the evictions would make [c]
             admissible; if the cluster disagrees, undo the evictions and
             report no plan rather than crash mid-batch. *)
          List.iter
            (fun (b : Container.t) ->
              match Cluster.place ~force:true cluster b mid with
              | Ok () -> ()
              | Error _ ->
                  Aladdin_error.raise_error
                    (Aladdin_error.Placement_failed
                       { container = b.Container.id; machine = mid }))
            evicted;
          None)

(* Audit repair policy: find a seat for a container the invariant auditor
   evicted from a violating placement. Direct admission first; failing
   that, a bounded migration chain opens one. The auditor itself places
   the container on the returned machine, mirroring the scheduler's
   find-then-place split. *)
let repair_placement ?(max_moves = 4) cluster (c : Container.t) =
  let nm = Cluster.n_machines cluster in
  let rec direct mid =
    if mid >= nm then None
    else if Cluster.admissible cluster c mid = Ok () then Some mid
    else direct (mid + 1)
  in
  match direct 0 with
  | Some mid -> Some mid
  | None ->
      Option.map
        (fun plan -> plan.target)
        (find_and_apply_migration cluster c ~max_moves)
