(** The Aladdin scheduler (Algorithm 1): weighted-priority augmentation
    order over the tiered flow network, the multidimensional nonlinear
    capacity function, and the migration / preemption mechanisms.

    Aladdin never tolerates a constraint violation: a container is either
    placed on a machine that fully admits it, or reported undeployed.

    Batches are transactional: pre-batch placements are snapshotted, and a
    recoverable mid-batch failure ({!Aladdin_error.E} or {!Fault.Injected})
    restores them. A warm scheduler then invalidates its carried state and
    retries the batch cold ([aladdin.fallback_to_cold]); if even the cold
    attempt fails, the whole batch is reported undeployed
    ([aladdin.rejected_batches]) and the process keeps running. *)

type options = {
  il : bool;  (** isomorphism limiting (§IV.A) *)
  dl : bool;  (** depth limiting (§IV.A) *)
  weight_base : int option;
      (** [Some b] = the evaluation's Aladdin(b) fixed weights; [None] =
          weights derived from the batch via Eq. 5 *)
  migration : bool;
  preemption : bool;
  max_moves : int;     (** migration fan-out bound per container *)
  max_requeues : int;  (** re-queue budget for preempted containers *)
  gang : bool;
      (** all-or-nothing per application: if any of an app's batch
          containers cannot deploy, the whole app's batch is rolled back
          (Medea-style container groups) *)
}

val default_options : options
(** Everything on, computed weights, [max_moves = 8], [max_requeues = 4]. *)

val plain : options
(** No IL, no DL — the "Aladdin" policy of Fig. 12. *)

val with_il : options
(** IL only — "Aladdin+IL". *)

val name_of_options : options -> string

val make : ?options:options -> unit -> Scheduler.t
(** A {!Scheduler.t} usable with {!Replay}. Each [schedule] call builds the
    tiered network for the batch, orders containers by weighted magnitude
    (Eq. 9) and augments one impartible container-flow at a time. *)

val schedule_raw :
  options -> Cluster.t -> Container.t array -> Scheduler.outcome
(** One bare Algorithm-1 batch: no transaction, no obs, no warm state.
    For embedders (the cells coordinator's fix-up phase) that provide
    their own recovery envelope around the call. *)

val recoverable : exn -> bool
(** The exception class the batch transaction recovers from:
    {!Aladdin_error.E} and the {!Fault} harness injections. *)

(** {2 Incremental warm start}

    A warm scheduler keeps per-cluster state alive between successive
    batches instead of rebuilding it from scratch: the {!Search} machinery
    (refreshed per batch, with its cross-batch machine equivalence classes)
    and a persistent scalar-projection arena carrying Johnson potentials
    for solver-driven consumers. Warm start changes batch latency only —
    placements are identical to the from-scratch scheduler, batch for
    batch (enforced by the equivalence regression test). *)

type warm

val warm_create : unit -> warm
(** Fresh warm state; lazily binds to the first cluster it schedules and
    re-binds (dropping the carried state) if pointed at another cluster. *)

val warm_projection : warm -> Flow_graph.projection_cache
(** The persistent scalar-projection arena, for callers that also run a
    min-cost solve per batch (see
    {!Flow_graph.scalar_projection_incremental}). *)

val make_warm : ?options:options -> unit -> Scheduler.t
(** Like {!make} but carrying a private {!warm} state across calls. *)

val last_search_stats : unit -> Search.stats option
(** Stats of the most recent [schedule] call made through {!make} (for the
    overhead experiments); [None] before any call. *)
