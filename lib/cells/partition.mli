(** Rack-aligned partition of a {!Topology.t} into scheduling cells.

    Cell [c] owns the contiguous global machine range
    [[fst (bounds t c), snd (bounds t c))]; racks are split into chunks
    whose sizes differ by at most one rack, so every cell is a
    {!Topology.slice} and local machine [j] of cell [c] is global machine
    [fst (bounds t c) + j]. *)

type t

val make : Topology.t -> n_cells:int -> t
(** The requested cell count is clamped to [[1, n_racks]]. *)

val n_cells : t -> int
val topology : t -> Topology.t

val bounds : t -> int -> int * int
(** [(lo, hi)] — cell [c]'s global machine ids are [lo <= m < hi]. *)

val n_machines_of : t -> int -> int
val cell_of_machine : t -> int -> int

val sub_topology : t -> int -> Topology.t
(** The cell's rack-aligned {!Topology.slice}.
    @raise Invalid_argument on a cell whose range is empty (a quarantined
    cell after {!reslice}) — guard with {!n_machines_of}. *)

val reslice : t -> live:bool array -> t
(** Redistribute quarantined cells' machines: every cell with
    [live.(c) = false] hands its whole range to the nearest live
    neighbour (left preferred, right for a dead prefix) and keeps a
    zero-width range, so {!n_machines_of} is [0] and
    {!cell_of_machine} never maps to it. Cell indices are stable and
    bounds stay rack-aligned and contiguous (each live cell absorbs a
    contiguous block). [reslice t ~live] with every cell live returns
    [t] unchanged — reinstatement is reslicing the original partition
    with the updated live set.
    @raise Invalid_argument when [live] has the wrong length or no cell
    is live. *)

val cells_of_env : unit -> int list option
(** [ALADDIN_CELLS] as a comma-separated list of cell counts (entries
    that fail to parse as positive ints are dropped); [None] when unset
    or empty. *)

val default_cells : unit -> int
(** The last (most sharded) entry of {!cells_of_env}, or [1]. *)
