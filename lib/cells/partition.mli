(** Rack-aligned partition of a {!Topology.t} into scheduling cells.

    Cell [c] owns the contiguous global machine range
    [[fst (bounds t c), snd (bounds t c))]; racks are split into chunks
    whose sizes differ by at most one rack, so every cell is a
    {!Topology.slice} and local machine [j] of cell [c] is global machine
    [fst (bounds t c) + j]. *)

type t

val make : Topology.t -> n_cells:int -> t
(** The requested cell count is clamped to [[1, n_racks]]. *)

val n_cells : t -> int
val topology : t -> Topology.t

val bounds : t -> int -> int * int
(** [(lo, hi)] — cell [c]'s global machine ids are [lo <= m < hi]. *)

val n_machines_of : t -> int -> int
val cell_of_machine : t -> int -> int

val sub_topology : t -> int -> Topology.t
(** The cell's rack-aligned {!Topology.slice}. *)

val cells_of_env : unit -> int list option
(** [ALADDIN_CELLS] as a comma-separated list of cell counts (entries
    that fail to parse as positive ints are dropped); [None] when unset
    or empty. *)

val default_cells : unit -> int
(** The last (most sharded) entry of {!cells_of_env}, or [1]. *)
