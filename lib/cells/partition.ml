(* Rack-aligned cell partition: cell c owns the contiguous global machine
   range [bounds.(c), bounds.(c+1)). Racks are split into n_cells chunks
   whose sizes differ by at most one rack, so cells line up with the
   topology's rack tiers and a cell's machines are a Topology.slice. *)

type t = {
  topology : Topology.t;
  n_cells : int;
  bounds : int array; (* length n_cells + 1; bounds.(0) = 0 *)
  cell_of_rack : int array;
}

let make topology ~n_cells =
  let n_racks = Topology.n_racks topology in
  let n_mach = Topology.n_machines topology in
  let mpr = Topology.machines_per_rack topology in
  let n_cells = max 1 (min n_cells n_racks) in
  let bounds = Array.make (n_cells + 1) 0 in
  for c = 1 to n_cells - 1 do
    (* rack boundary floor(c * n_racks / n_cells): strictly increasing
       because n_cells <= n_racks, so every cell owns >= 1 rack *)
    bounds.(c) <- min n_mach (c * n_racks / n_cells * mpr)
  done;
  bounds.(n_cells) <- n_mach;
  let cell_of_rack = Array.make n_racks 0 in
  let c = ref 0 in
  for r = 0 to n_racks - 1 do
    let first = r * mpr in
    while first >= bounds.(!c + 1) do incr c done;
    cell_of_rack.(r) <- !c
  done;
  { topology; n_cells; bounds; cell_of_rack }

let n_cells t = t.n_cells
let topology t = t.topology
let bounds t c = (t.bounds.(c), t.bounds.(c + 1))
let n_machines_of t c = t.bounds.(c + 1) - t.bounds.(c)

let cell_of_machine t mid =
  t.cell_of_rack.(Topology.rack_of t.topology mid)

let sub_topology t c =
  Topology.slice t.topology ~first_machine:t.bounds.(c)
    ~n_machines:(n_machines_of t c)

(* Quarantine re-slicing: every cell with [live.(c) = false] hands its
   machine range to the nearest live neighbour (left preferred, right for
   a dead prefix) and keeps a zero-width range at its block's start. The
   redistribution invariants:

   - ownership blocks are contiguous in cell order (a dead run between
     two live cells all merges left), so a prefix sum of owned sizes
     reproduces each live cell's range as the exact union of the original
     rack-aligned ranges it absorbed — bounds stay rack-aligned and the
     total still covers every machine exactly once;
   - cell indices are stable: cell [c] of the resliced partition is the
     same logical cell (same scheduler, same health record), just with a
     larger, smaller, or empty machine range;
   - [cell_of_machine] never returns a dead cell (its range is empty).

   Reinstatement is just reslicing again with the cell live — or using
   the original partition when everything is. *)
let reslice t ~live =
  let n = t.n_cells in
  if Array.length live <> n then
    invalid_arg "Partition.reslice: live array length <> n_cells";
  if not (Array.exists Fun.id live) then
    invalid_arg "Partition.reslice: every cell is quarantined";
  if Array.for_all Fun.id live then t
  else begin
    let owner = Array.init n (fun i -> i) in
    for i = 0 to n - 1 do
      if not live.(i) then begin
        let o = ref (-1) in
        (try
           for j = i - 1 downto 0 do
             if live.(j) then begin
               o := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !o < 0 then
          (try
             for j = i + 1 to n - 1 do
               if live.(j) then begin
                 o := j;
                 raise Exit
               end
             done
           with Exit -> ());
        owner.(i) <- !o
      end
    done;
    let size = Array.make n 0 in
    for i = 0 to n - 1 do
      size.(owner.(i)) <- size.(owner.(i)) + (t.bounds.(i + 1) - t.bounds.(i))
    done;
    let bounds = Array.make (n + 1) 0 in
    for c = 0 to n - 1 do
      bounds.(c + 1) <- bounds.(c) + size.(c)
    done;
    let n_racks = Topology.n_racks t.topology in
    let mpr = Topology.machines_per_rack t.topology in
    let cell_of_rack = Array.make n_racks 0 in
    let c = ref 0 in
    for r = 0 to n_racks - 1 do
      let first = r * mpr in
      (* zero-width (dead) ranges satisfy [first >= bounds.(c+1)] and are
         skipped over, so racks only ever map to live cells *)
      while first >= bounds.(!c + 1) do incr c done;
      cell_of_rack.(r) <- !c
    done;
    { t with bounds; cell_of_rack }
  end

(* ALADDIN_CELLS is a comma-separated list of cell counts; the bench runs
   one column per entry, a single scheduler uses the last (most sharded)
   entry. Unset or unparsable entries are ignored. *)
let cells_of_env () =
  match Sys.getenv_opt "ALADDIN_CELLS" with
  | None -> None
  | Some s ->
      let ns =
        String.split_on_char ',' s
        |> List.filter_map (fun tok ->
               match int_of_string_opt (String.trim tok) with
               | Some n when n >= 1 -> Some n
               | _ -> None)
      in
      if ns = [] then None else Some ns

let default_cells () =
  match cells_of_env () with
  | None -> 1
  | Some ns -> List.nth ns (List.length ns - 1)
