(** A persistent pool of worker domains.

    Workers are spawned once and parked between jobs; {!run} dispatches a
    task array, participates in the draining on the calling domain, and
    blocks until every task finished. The completion handshake is a
    mutex/condition pair, so task results (and any per-domain Obs shard
    writes) happen-before {!run}'s return. *)

type t

val create : workers:int -> t
(** [workers = 0] means no domains at all: {!run} executes tasks inline,
    sequentially, on the calling domain. Pools with workers register an
    [at_exit] {!shutdown} so parked domains never block process exit. *)

val n_workers : t -> int

val run : t -> (unit -> 'a) array -> ('a, exn) result array
(** Run every task (concurrently when workers exist — the caller drains
    alongside them), returning per-task results in order. A raising task
    yields [Error]; {!run} itself never raises on task failure.
    @raise Invalid_argument when called re-entrantly on a busy pool. *)

val shutdown : t -> unit
(** Stop and join the workers; idempotent. *)
