(** A persistent pool of worker domains.

    Workers are spawned once and parked between jobs; {!run} dispatches a
    task array, participates in the draining on the calling domain, and
    blocks until every task finished. The completion handshake is a
    mutex/condition pair, so task results (and any per-domain Obs shard
    writes) happen-before {!run}'s return.

    {!run_within} is the supervised variant: the caller does not drain,
    and a job that fails to join within the timeout is abandoned — the
    finished results are harvested, the pool is poisoned ({!abandoned}),
    and the stuck domain is left to finish on its own time (domains
    cannot be killed). A supervisor replaces an abandoned pool with a
    fresh one; {!shutdown} still joins, so process exit waits for finite
    stalls rather than silently leaking a running domain. *)

type t

val create : workers:int -> t
(** [workers = 0] means no domains at all: {!run} executes tasks inline,
    sequentially, on the calling domain. Pools with workers register an
    [at_exit] {!shutdown} so parked domains never block process exit. *)

val n_workers : t -> int

val abandoned : t -> bool
(** The pool was poisoned by a timed-out {!run_within} join or an
    interrupted {!run} wait; every further [run]/[run_within] raises. *)

val run : t -> (unit -> 'a) array -> ('a, exn) result array
(** Run every task (concurrently when workers exist — the caller drains
    alongside them), returning per-task results in order. A raising task
    yields [Error]; {!run} itself never raises on task failure, and a
    raising task does not poison the pool — the same pool is reusable
    for the next job.
    @raise Invalid_argument when called re-entrantly on a busy pool or
    on an {!abandoned} pool. *)

val run_within :
  t ->
  timeout_s:float ->
  (unit -> 'a) array ->
  [ `Done of ('a, exn) result array
  | `Timed_out of ('a, exn) result option array ]
(** Like {!run}, but the caller only waits (it never drains, so a hung
    task cannot capture it) and gives up after [timeout_s] seconds of
    wall time. [`Timed_out] carries per-task results for the tasks that
    did finish ([None] = stalled or never started) and leaves the pool
    {!abandoned}. With [workers = 0] there is nothing to time out
    against: tasks run inline and the result is always [`Done].
    @raise Invalid_argument on a busy or abandoned pool. *)

val shutdown : t -> unit
(** Stop and join the workers; idempotent. Blocks until any straggling
    abandoned task returns (injected stalls are finite). *)
