(** Two-phase coordinator over sharded scheduling cells.

    The cluster is partitioned into rack-aligned cells ({!Partition});
    each cell owns a private mirror {!Cluster.t} over a sliced topology
    and an inner scheduler. A batch is assigned to cells app-by-app,
    solved cell-locally in parallel on a {!Pool} of domains, replayed
    onto the outer cluster, and the containers no cell could place go
    through one global fix-up run that sees every machine.

    The outer cluster remains the single source of truth: phase 1 only
    mutates mirrors, the replay is guarded by an undo log, and
    {!Cluster.version} detects out-of-band outer mutations (revocations,
    audit repairs) and triggers a mirror rebuild. A replay mismatch
    ({!Desync}) unwinds, rebuilds, and retries the batch once.

    With [n_cells = 1] the coordinator degenerates to the inner scheduler
    on a full-cluster mirror and reproduces the unsharded scheduler's
    placements exactly — the anchor case of the differential suite.

    With a {!Supervisor.t} attached, cells become fault domains: phase 1
    survives individual cell failures (bounded per-cell retry with
    jittered backoff on a rebuilt mirror), hung cells are abandoned at
    the join timeout, and repeat offenders are quarantined — their
    machines resliced to neighbouring cells ({!Partition.reslice}) until
    a half-open probe reinstates them. *)

exception Desync of string

type mode = [ `Auto | `Domains | `Sequential ]
(** [`Domains] forces [n_cells - 1] worker domains, [`Sequential] forces
    inline single-domain execution (bit-for-bit deterministic ordering),
    [`Auto] spawns [min (n_cells - 1) (recommended_domain_count - 1)]. *)

val mode_of_env : unit -> mode
(** [ALADDIN_CELLS_MODE] — ["domains"], ["sequential"], anything else
    (or unset) is [`Auto]. *)

type breakdown = {
  cell_ms : float array;  (** per-cell phase-1 wall ms; 0 for idle cells *)
  fixup_ms : float;
  apply_ms : float;       (** replay-onto-outer wall ms *)
  active_cells : int;     (** cells that received a non-empty sub-batch *)
  fixup_containers : int; (** leftovers handed to the fix-up scheduler *)
}

type t

val create :
  ?mode:mode ->
  ?fixup:bool ->
  ?fixup_run:(Cluster.t -> Container.t array -> Scheduler.outcome) ->
  ?supervisor:Supervisor.t ->
  recoverable:(exn -> bool) ->
  n_cells:int ->
  (cell:int -> n_cells:int -> Scheduler.t) ->
  t
(** [create ~recoverable ~n_cells make_cell] builds a coordinator whose
    cell [i] runs [make_cell ~cell:i ~n_cells]. [fixup_run], when given,
    handles phase-2 leftovers on the outer cluster ([~fixup:false]
    disables phase 2; leftovers are then reported undeployed).
    [recoverable] classifies exceptions that reject the batch rather than
    propagate (mirrors are rebuilt either way). [supervisor] turns on
    cell supervision: per-cell retry/quarantine instead of all-or-nothing
    phase 1; a failed cell's sub-batch rides the fix-up (or goes
    undeployed when fix-up is off or [n_cells = 1]). Supervised pools in
    [`Domains]/[`Auto] mode put a worker on every cell so the caller can
    time the join out instead of draining. *)

val supervisor : t -> Supervisor.t option

val schedule : t -> Cluster.t -> Container.t array -> Scheduler.outcome
(** One batch through both phases. The outcome lists final placements in
    batch order against the committed outer cluster; [undeployed] is the
    fix-up's verdict (or the concatenated cell verdicts when fix-up is
    off). Binding is per-outer-cluster: pointing the same coordinator at
    a new cluster rebuilds partition, mirrors, and inner schedulers. *)

val scheduler : t -> name:string -> Scheduler.t
(** {!schedule} wrapped as a plain scheduler, composable with the
    middleware stack. *)

val shutdown : t -> unit
(** Stop the worker-domain pool (idempotent; also hooked on [at_exit]). *)

val n_cells : t -> int
(** Effective cell count: the partition's once bound, else the request. *)

val last_breakdown : t -> breakdown option
(** Timing/shape of the most recent successful batch. *)

val free_estimates : t -> Cluster.t -> int array
(** Per-cell online free CPU, after syncing mirrors to the outer cluster. *)

val map_cells :
  t ->
  Cluster.t ->
  batch:Container.t array ->
  f:
    (cell:int ->
    lo:int ->
    mirror:Cluster.t ->
    sub:Container.t array ->
    'a) ->
  ('a, exn) result array
(** Sync mirrors, assign [batch], and run [f] once per cell (all cells,
    including ones with empty sub-batches) on the domain pool. [f] must
    treat [mirror] as read-only — this is the cells flow-solver hook. *)
