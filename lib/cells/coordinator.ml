(* Two-phase cell coordinator.

   Phase 1: the batch is assigned app-by-app to cells (greedy best-fit on
   per-cell free-CPU estimates) and each active cell's scheduler runs on
   that cell's private mirror cluster — in parallel on the domain pool.
   Cells are disjoint machine sets over a shared immutable topology, so an
   anti-affinity constraint can never span two cells' *machines*; the only
   cross-cell coupling is capacity, which phase 2 handles.

   Phase 2: mirror mutations are replayed onto the outer cluster (the
   single source of truth) in cell order, then a global fix-up scheduler
   runs over the containers no cell could place — with every machine
   visible, so cross-cell migration/preemption and capacity borrowing
   happen here, on the (small) border problem only.

   Consistency: each mirror is a pure function of the outer cluster.
   [Cluster.version] detects out-of-band outer mutations (revocations,
   audit repairs, transactional restores above us) and triggers a mirror
   rebuild; replay failures raise [Desync], which unwinds the outer
   cluster via an O(mutations) undo log, rebuilds, and retries the batch
   once. With one cell the coordinator degenerates to the inner scheduler
   on a full-cluster mirror — placements are then bit-for-bit those of
   the unsharded scheduler (the differential suite's anchor case).

   Supervision (optional): with a [Supervisor.t] attached, cells become
   real fault domains. Phase 1 stops being all-or-nothing — a cell whose
   task fails with a recoverable error is retried in isolation (bounded,
   with jittered exponential backoff, on a freshly rebuilt mirror), a
   cell that hangs past the join timeout is abandoned (the pool is
   replaced; the straggler domain finishes into a discarded mirror), and
   a cell that ultimately fails only costs its own sub-batch, which rides
   the phase-2 fix-up (or goes undeployed). The supervisor's circuit
   breaker quarantines a cell after repeated failures: its machines are
   redistributed to neighbouring cells via [Partition.reslice], and after
   a cooldown the cell rejoins half-open — the next batch it is assigned
   is the probe that reinstates it or re-opens the breaker. *)

exception Desync of string

type mode = [ `Auto | `Domains | `Sequential ]

let mode_of_env () =
  match Sys.getenv_opt "ALADDIN_CELLS_MODE" with
  | Some "domains" -> `Domains
  | Some "sequential" -> `Sequential
  | Some _ | None -> `Auto

type breakdown = {
  cell_ms : float array;  (** per-cell phase-1 wall ms; 0 for idle cells *)
  fixup_ms : float;
  apply_ms : float;
  active_cells : int;
  fixup_containers : int;
}

type cell_state = {
  idx : int;
  mutable lo : int;  (** global machine id of the cell's local machine 0 *)
  mutable mirror : Cluster.t;
  mutable sched : Scheduler.t;
      (** replaced after a stall: the abandoned straggler still owns the
          old scheduler object, so it must never be reused *)
}

type bind = {
  outer : Cluster.t;
  base_part : Partition.t;  (** the full partition, before any reslice *)
  mutable part : Partition.t;
  mutable live : bool array;
  cells : cell_state array;
  free_cpu : int array;  (** per-cell online free CPU, kept incrementally *)
  mutable expected_version : int;
  mutable dirty : bool;
  mutable last : breakdown option;
}

type t = {
  req_cells : int;
  mode : mode;
  fixup_enabled : bool;
  make_cell : cell:int -> n_cells:int -> Scheduler.t;
  fixup_run : (Cluster.t -> Container.t array -> Scheduler.outcome) option;
  recoverable : exn -> bool;
  supervisor : Supervisor.t option;
  mutable pool : Pool.t option;
  mutable bound : bind option;
}

let c_resyncs = Obs.counter "cells.resyncs"
let c_desyncs = Obs.counter "cells.desyncs"
let c_batch_retries = Obs.counter "cells.batch_retries"
let c_rejected = Obs.counter "cells.rejected_batches"
let c_active = Obs.counter "cells.active_cells"
let c_fixup_containers = Obs.counter "cells.fixup_containers"
let c_fixup_placed = Obs.counter "cells.fixup_placed"
let h_cell = Obs.histogram "cells.cell_ns"
let h_fixup = Obs.histogram "cells.fixup_ns"

let create ?(mode = `Auto) ?(fixup = true) ?fixup_run ?supervisor ~recoverable
    ~n_cells make_cell =
  {
    req_cells = max 1 n_cells;
    mode;
    fixup_enabled = fixup;
    make_cell;
    fixup_run;
    recoverable;
    supervisor;
    pool = None;
    bound = None;
  }

let supervisor t = t.supervisor

(* Supervised pools put a worker on EVERY cell (not n-1): the caller must
   stay free to time the join out instead of draining — a hung task
   picked up by the caller could never be abandoned. An abandoned pool
   (timed-out join) is dropped here and replaced; its straggler domain is
   joined by the at_exit shutdown once its finite stall ends. *)
let pool_for t n_cells =
  let stale = match t.pool with Some p -> Pool.abandoned p | None -> true in
  if not stale then Option.get t.pool
  else begin
    let supervised = t.supervisor <> None in
    let workers =
      match t.mode with
      | `Sequential -> 0
      | `Domains -> if supervised then n_cells else n_cells - 1
      | `Auto ->
          let rdc = Domain.recommended_domain_count () in
          if supervised then min n_cells (max 1 (rdc - 1))
          else min (n_cells - 1) (rdc - 1)
    in
    let p = Pool.create ~workers:(max 0 workers) in
    t.pool <- Some p;
    p
  end

let shutdown t = Option.iter Pool.shutdown t.pool

let cpu_of (c : Container.t) =
  max 1 (Resource.get c.Container.demand Resource.cpu_dim)

let refresh_lo b cs = cs.lo <- fst (Partition.bounds b.part cs.idx)

let free_cpu_of_outer b cs =
  let lo, hi = Partition.bounds b.part cs.idx in
  let acc = ref 0 in
  for g = lo to hi - 1 do
    if not (Cluster.is_offline b.outer g) then
      acc :=
        !acc
        + Resource.get
            (Machine.free (Cluster.machine b.outer g))
            Resource.cpu_dim
  done;
  b.free_cpu.(cs.idx) <- !acc

let fresh_mirror b cs =
  cs.mirror <-
    Cluster.create
      (Partition.sub_topology b.part cs.idx)
      ~constraints:(Cluster.constraints b.outer);
  let lo, hi = Partition.bounds b.part cs.idx in
  for g = lo to hi - 1 do
    if Cluster.is_offline b.outer g then
      Cluster.set_offline cs.mirror (g - lo) true
  done

(* Mirrors are rebuilt from scratch rather than patched: a rebuild gives
   each cell a *fresh* Cluster identity, which any warm per-cell scheduler
   state is keyed on — so carried search/projection state invalidates
   itself exactly when the world changed under it. Rebuilds are rare
   (bind, out-of-band outer mutation, post-failure, rotation change).
   Quarantined cells own a zero-width slice and are skipped — their stale
   mirror object is never assigned work nor replayed into. *)
let rebuild_mirrors b =
  let outer = b.outer in
  Array.iter
    (fun cs ->
      refresh_lo b cs;
      if Partition.n_machines_of b.part cs.idx > 0 then fresh_mirror b cs)
    b.cells;
  List.iter
    (fun (cid, g) ->
      match Cluster.container outer cid with
      | None -> ()
      | Some c -> (
          let ci = Partition.cell_of_machine b.part g in
          let cs = b.cells.(ci) in
          match Cluster.place ~force:true cs.mirror c (g - cs.lo) with
          | Ok () -> ()
          | Error _ -> raise (Desync "mirror rejected outer placement")))
    (Cluster.placements outer);
  Array.iter (fun cs -> free_cpu_of_outer b cs) b.cells;
  b.expected_version <- Cluster.version outer;
  b.dirty <- false

(* Rebuild exactly one cell's mirror from the outer cluster — the repair
   step between per-cell retry attempts (the failed attempt may have
   half-mutated the mirror) and after a terminal cell failure (phase 2's
   fix-up still replays its events into every live mirror). *)
let rebuild_one b cs =
  refresh_lo b cs;
  if Partition.n_machines_of b.part cs.idx > 0 then begin
    fresh_mirror b cs;
    let lo, hi = Partition.bounds b.part cs.idx in
    List.iter
      (fun (cid, g) ->
        if g >= lo && g < hi then
          match Cluster.container b.outer cid with
          | None -> ()
          | Some c -> (
              match Cluster.place ~force:true cs.mirror c (g - lo) with
              | Ok () -> ()
              | Error _ -> raise (Desync "mirror rejected outer placement")))
      (Cluster.placements b.outer)
  end;
  free_cpu_of_outer b cs

(* Recompute the live set from the supervisor's breakers and reslice the
   partition when it changed. Half-open cells are live: getting their
   machines (and their next sub-batch) back IS the probe. *)
let update_rotation t b =
  match t.supervisor with
  | None -> ()
  | Some sup ->
      let live = Supervisor.live sup ~n_cells:(Array.length b.cells) in
      if live <> b.live then begin
        let old_part = b.part in
        b.part <- Partition.reslice b.base_part ~live;
        let moved = ref 0 in
        Array.iter
          (fun cs ->
            let o = Partition.n_machines_of old_part cs.idx in
            let m = Partition.n_machines_of b.part cs.idx in
            if m > o then moved := !moved + (m - o))
          b.cells;
        Supervisor.note_redistributed !moved;
        b.live <- live;
        b.dirty <- true
      end

let sync t outer =
  match t.bound with
  | Some b when b.outer == outer ->
      update_rotation t b;
      if b.dirty || Cluster.version outer <> b.expected_version then begin
        Obs.incr c_resyncs;
        rebuild_mirrors b
      end;
      b
  | _ ->
      let part =
        Partition.make (Cluster.topology outer) ~n_cells:t.req_cells
      in
      let n = Partition.n_cells part in
      let cells =
        Array.init n (fun i ->
            let lo, _ = Partition.bounds part i in
            {
              idx = i;
              lo;
              mirror =
                Cluster.create (Partition.sub_topology part i)
                  ~constraints:(Cluster.constraints outer);
              sched = t.make_cell ~cell:i ~n_cells:n;
            })
      in
      let b =
        {
          outer;
          base_part = part;
          part;
          live = Array.make n true;
          cells;
          free_cpu = Array.make n 0;
          expected_version = -1;
          dirty = true;
          last = None;
        }
      in
      update_rotation t b;
      rebuild_mirrors b;
      t.bound <- Some b;
      b

(* Deterministic app-granular assignment: apps in first-seen batch order,
   each filling the cell with the largest remaining free estimate and
   overflowing to the next-best when it runs dry. Sub-batches preserve the
   original batch order (with one cell this makes the sub-batch *be* the
   batch, which the exact-equivalence anchor depends on). Estimates are a
   scratch copy — the persistent ones advance only on applied events.
   Quarantined (zero-machine) cells are never eligible. *)
let assign b batch =
  let n = Array.length b.cells in
  if n = 1 then [| batch |]
  else begin
    let est = Array.copy b.free_cpu in
    let eligible = Array.init n (fun i -> Partition.n_machines_of b.part i > 0) in
    let argmax () =
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if eligible.(i) && (!best < 0 || est.(i) > est.(!best)) then best := i
      done;
      max 0 !best
    in
    let cell_of = Array.make (Array.length batch) 0 in
    let order = ref [] in
    let groups : (Application.id, int list ref) Hashtbl.t =
      Hashtbl.create 32
    in
    Array.iteri
      (fun i (c : Container.t) ->
        match Hashtbl.find_opt groups c.Container.app with
        | Some l -> l := i :: !l
        | None ->
            Hashtbl.replace groups c.Container.app (ref [ i ]);
            order := c.Container.app :: !order)
      batch;
    List.iter
      (fun app ->
        let idxs = List.rev !(Hashtbl.find groups app) in
        let current = ref (argmax ()) in
        List.iter
          (fun i ->
            let cpu = cpu_of batch.(i) in
            if est.(!current) < cpu then current := argmax ();
            cell_of.(i) <- !current;
            est.(!current) <- est.(!current) - cpu)
          idxs)
      (List.rev !order);
    let buckets = Array.make n [] in
    for i = Array.length batch - 1 downto 0 do
      buckets.(cell_of.(i)) <- batch.(i) :: buckets.(cell_of.(i))
    done;
    Array.map Array.of_list buckets
  end

type undo_op = Unplace of Container.id | Replace of Container.t * int

let run_undo outer undo =
  (* [undo] is head-newest, i.e. already LIFO. Failures while unwinding
     are swallowed — the bind is marked dirty and rebuilt regardless. *)
  List.iter
    (fun op ->
      match op with
      | Unplace cid -> ( try Cluster.remove outer cid with _ -> ())
      | Replace (c, g) -> (
          try ignore (Cluster.place ~force:true outer c g) with _ -> ()))
    undo

(* Replay one cell's mirror events onto the outer cluster. The mirror and
   outer agreed before the batch, so every event must apply cleanly; a
   refusal means they diverged — Desync, unwind, rebuild, retry. *)
let apply_cell_events b undo cs evs =
  List.iter
    (fun ev ->
      match ev with
      | Cluster.Placed (c, local, forced) -> (
          let g = cs.lo + local in
          match Cluster.place ~force:forced b.outer c g with
          | Ok () ->
              undo := Unplace c.Container.id :: !undo;
              b.free_cpu.(cs.idx) <- b.free_cpu.(cs.idx) - cpu_of c
          | Error _ -> raise (Desync "outer rejected mirrored placement")
          | exception Invalid_argument _ ->
              raise (Desync "container already placed on outer"))
      | Cluster.Removed (c, local) -> (
          let g = cs.lo + local in
          match Cluster.machine_of b.outer c.Container.id with
          | Some g' when g' = g ->
              Cluster.remove b.outer c.Container.id;
              undo := Replace (c, g) :: !undo;
              b.free_cpu.(cs.idx) <- b.free_cpu.(cs.idx) + cpu_of c
          | _ -> raise (Desync "outer missing mirrored removal")))
    evs

(* Replay fix-up mutations (made directly on the outer cluster) back into
   the owning mirrors, so the mirrors stay exact without a rebuild. *)
let mirror_outer_events b evs =
  List.iter
    (fun ev ->
      match ev with
      | Cluster.Placed (c, g, _) -> (
          let ci = Partition.cell_of_machine b.part g in
          let cs = b.cells.(ci) in
          match Cluster.place ~force:true cs.mirror c (g - cs.lo) with
          | Ok () -> b.free_cpu.(ci) <- b.free_cpu.(ci) - cpu_of c
          | Error _ -> raise (Desync "mirror rejected fixup placement")
          | exception Invalid_argument _ ->
              raise (Desync "container already placed on mirror"))
      | Cluster.Removed (c, g) -> (
          let ci = Partition.cell_of_machine b.part g in
          let cs = b.cells.(ci) in
          match Cluster.machine_of cs.mirror c.Container.id with
          | Some l when l = g - cs.lo ->
              Cluster.remove cs.mirror c.Container.id;
              b.free_cpu.(ci) <- b.free_cpu.(ci) + cpu_of c
          | _ -> raise (Desync "mirror missing fixup removal")))
    evs

(* One cell's phase-1 task. The mirror object is captured at call time so
   a straggler abandoned after a join timeout keeps mutating (and clears
   the tracer of) its own discarded mirror, never a rebuilt one. Domain
   faults are probed here: a crash raises, a stall/slowdown sleeps wall
   time, and the corruption verdict duplicates the newest placement event
   — which phase 2 then detects as a Desync. *)
let cell_task b ambient subs ci () =
  let cs = b.cells.(ci) in
  (* Capture mirror and scheduler before the (possibly stalling) fault
     probe: a straggler abandoned after a join timeout keeps using its own
     snapshot while the cell is rebuilt around it. *)
  let mirror = cs.mirror in
  let sched = cs.sched in
  (match Fault.cell_fault ~cell:ci with
  | `None -> ()
  | `Crash -> raise (Fault.Injected "cells.cell_fault")
  | `Stall s | `Slow s -> if s > 0. then Unix.sleepf s);
  let events = ref [] in
  Cluster.set_tracer mirror (Some (fun ev -> events := ev :: !events));
  let t0 = Obs.now_ns () in
  let run () = sched.Scheduler.schedule mirror subs.(ci) in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Cluster.set_tracer mirror None)
      (fun () ->
        match ambient with
        | None -> run ()
        | Some d -> Flownet.Deadline.with_ambient d run)
  in
  let dt = Int64.sub (Obs.now_ns ()) t0 in
  Obs.observe_ns h_cell dt;
  if Fault.cell_corrupt ~cell:ci then
    (match !events with
    | (Cluster.Placed _ as e) :: _ -> events := e :: !events
    | _ -> ());
  (ci, outcome, List.rev !events, Int64.to_float dt /. 1e6)

(* Supervised phase 1: per-cell verdicts instead of all-or-nothing.
   Recoverable failures retry in isolation (bounded, backed off, on a
   rebuilt mirror, on the calling domain — deterministic in cell order);
   stalls past the join timeout abandon the pool and fail the cell
   without retry (the straggler still owns the old mirror); terminal
   failures surrender the cell's sub-batch to phase 2. Non-recoverable
   errors (deadline expiry, kills) still travel. *)
let phase1_supervised t b sup subs active ambient =
  Array.iter
    (fun ci -> if Supervisor.is_probing sup ~cell:ci then Supervisor.note_probe ())
    active;
  let tasks = Array.map (fun ci -> cell_task b ambient subs ci) active in
  let pool = pool_for t (Array.length b.cells) in
  let timeout_ms = (Supervisor.config sup).Supervisor.join_timeout_ms in
  let initial =
    if Pool.n_workers pool = 0 || timeout_ms <= 0. then
      Array.map Option.some (Pool.run pool tasks)
    else
      match Pool.run_within pool ~timeout_s:(timeout_ms /. 1e3) tasks with
      | `Done rs -> Array.map Option.some rs
      | `Timed_out partial ->
          t.pool <- None;
          partial
  in
  let max_retries = (Supervisor.config sup).Supervisor.max_retries in
  let ok = ref [] in
  let failed = ref [] in
  let succeed ((ci, _, _, ms) as res) =
    ignore (Supervisor.record_success sup ~cell:ci ~ms);
    ok := res :: !ok
  in
  let fail ci =
    ignore (Supervisor.record_failure sup ~cell:ci);
    (* phase 2's fix-up replays into every live mirror, so even a failed
       cell's mirror must reflect outer truth before we continue *)
    rebuild_one b b.cells.(ci);
    failed := ci :: !failed
  in
  let rec retry ci attempt =
    if attempt >= max_retries then None
    else begin
      Unix.sleepf (Supervisor.backoff_s sup ~attempt);
      Supervisor.note_retry ();
      rebuild_one b b.cells.(ci);
      match cell_task b ambient subs ci () with
      | res -> Some res
      | exception e when t.recoverable e -> retry ci (attempt + 1)
    end
  in
  Array.iteri
    (fun k r ->
      let ci = active.(k) in
      match r with
      | Some (Ok res) -> succeed res
      | None ->
          (* Stalled past the join timeout. The abandoned straggler still
             owns this cell's scheduler object, so retire it: later
             batches must not race a warm scheduler against the
             straggler. *)
          Supervisor.note_stall ();
          let cs = b.cells.(ci) in
          cs.sched <- t.make_cell ~cell:ci ~n_cells:(Array.length b.cells);
          fail ci
      | Some (Error e) when t.recoverable e -> (
          match retry ci 0 with Some res -> succeed res | None -> fail ci)
      | Some (Error e) ->
          b.dirty <- true;
          raise e)
    initial;
  (Array.of_list (List.rev !ok), List.rev !failed)

let attempt t outer batch =
  let b = sync t outer in
  let n = Array.length b.cells in
  let subs = assign b batch in
  let active = ref [] in
  for i = n - 1 downto 0 do
    if Array.length subs.(i) > 0 then active := i :: !active
  done;
  let active = Array.of_list !active in
  (* The ambient deadline is per-domain; capture it here and re-arm it
     inside every worker task so one batch budget bounds all cells. *)
  let ambient = Flownet.Deadline.ambient () in
  let results, failed_cells =
    match t.supervisor with
    | Some sup -> phase1_supervised t b sup subs active ambient
    | None ->
        let tasks = Array.map (fun ci -> cell_task b ambient subs ci) active in
        let results = Pool.run (pool_for t n) tasks in
        (* All-or-nothing phase 1: any failed cell poisons its mirror (and
           the succeeded cells' mirrors have run ahead of the untouched
           outer), so mark dirty and let the error travel — the outer
           cluster was never mutated. Deadline expiry passes through to
           the ladder above us. *)
        Array.iter
          (function
            | Error e ->
                b.dirty <- true;
                raise e
            | Ok _ -> ())
          results;
        ( Array.map (function Ok r -> r | Error _ -> assert false) results,
          [] )
  in
  let failed_subs = List.map (fun ci -> subs.(ci)) failed_cells in
  let undo = ref [] in
  let fixup_out = ref None in
  let fixup_ms = ref 0. in
  let fixup_n = ref 0 in
  let t_apply0 = Obs.now_ns () in
  let fixup_path = n > 1 && t.fixup_enabled && t.fixup_run <> None in
  (try
     Array.iter
       (fun (ci, _, evs, _) -> apply_cell_events b undo b.cells.(ci) evs)
       results;
     let leftovers =
       if fixup_path then
         Array.concat
           (List.concat_map
              (fun (_, o, _, _) ->
                [ Array.of_list o.Scheduler.undeployed ])
              (Array.to_list results)
           @ failed_subs)
       else [||]
     in
     fixup_n := Array.length leftovers;
     if Array.length leftovers > 0 then begin
       let run = Option.get t.fixup_run in
       let events = ref [] in
       (* The tracer feeds the undo log directly, so a fix-up scheduler
          dying mid-flight still unwinds completely. *)
       Cluster.set_tracer b.outer
         (Some
            (fun ev ->
              events := ev :: !events;
              match ev with
              | Cluster.Placed (c, _, _) ->
                  undo := Unplace c.Container.id :: !undo
              | Cluster.Removed (c, g) -> undo := Replace (c, g) :: !undo));
       let t0 = Obs.now_ns () in
       let fo =
         Fun.protect
           ~finally:(fun () -> Cluster.set_tracer b.outer None)
           (fun () -> run b.outer leftovers)
       in
       let dt = Int64.sub (Obs.now_ns ()) t0 in
       Obs.observe_ns h_fixup dt;
       fixup_ms := Int64.to_float dt /. 1e6;
       mirror_outer_events b (List.rev !events);
       Obs.add c_fixup_placed (List.length fo.Scheduler.placed);
       fixup_out := Some fo
     end
   with e ->
     run_undo b.outer !undo;
     b.dirty <- true;
     raise e);
  b.expected_version <- Cluster.version outer;
  Obs.add c_active (Array.length active);
  Obs.add c_fixup_containers !fixup_n;
  let cell_ms = Array.make n 0. in
  Array.iter (fun (ci, _, _, ms) -> cell_ms.(ci) <- ms) results;
  let apply_ms =
    Int64.to_float (Int64.sub (Obs.now_ns ()) t_apply0) /. 1e6
    -. !fixup_ms
  in
  b.last <-
    Some
      {
        cell_ms;
        fixup_ms = !fixup_ms;
        apply_ms;
        active_cells = Array.length active;
        fixup_containers = !fixup_n;
      };
  (* Final placements, unsharded-style: each batch container's machine in
     the (now committed) outer cluster, in batch order. *)
  let placed =
    Array.to_list batch
    |> List.filter_map (fun (c : Container.t) ->
           Option.map
             (fun m -> (c.Container.id, m))
             (Cluster.machine_of b.outer c.Container.id))
  in
  let cell_outcomes = Array.to_list results |> List.map (fun (_, o, _, _) -> o) in
  let undeployed =
    match !fixup_out with
    | Some fo -> fo.Scheduler.undeployed
    | None ->
        if fixup_path then [] (* leftovers were empty *)
        else
          List.concat_map (fun o -> o.Scheduler.undeployed) cell_outcomes
          @ List.concat_map Array.to_list failed_subs
  in
  let sum f =
    List.fold_left (fun acc o -> acc + f o) 0
      (cell_outcomes @ Option.to_list !fixup_out)
  in
  {
    Scheduler.placed;
    undeployed;
    violations =
      List.concat_map
        (fun o -> o.Scheduler.violations)
        (cell_outcomes @ Option.to_list !fixup_out);
    migrations = sum (fun o -> o.Scheduler.migrations);
    preemptions = sum (fun o -> o.Scheduler.preemptions);
    rounds = sum (fun o -> o.Scheduler.rounds);
  }

let schedule t outer batch =
  let reject () =
    Obs.incr c_rejected;
    Scheduler.reject_outcome batch
  in
  (* Cooldowns tick once per batch, before rotation is applied in sync —
     never per attempt, so desync retries within a batch don't fast-run
     a quarantined cell's clock. *)
  Option.iter (fun sup -> ignore (Supervisor.tick sup)) t.supervisor;
  let batch_retries =
    match t.supervisor with
    | Some sup -> max 1 (Supervisor.config sup).Supervisor.max_retries
    | None -> 1
  in
  try
    (* Harness probe before any mutation: a tripped coordinator batch is
       rejected whole, outer untouched. *)
    Fault.trip_solver_step "cells.batch";
    attempt t outer batch
  with
  | Desync _ ->
      Obs.incr c_desyncs;
      Option.iter (fun b -> b.dirty <- true) t.bound;
      (* The undo log already unwound the outer cluster; rebuild mirrors
         and retry the whole batch — once unsupervised, up to the
         supervisor's retry budget (with backoff) otherwise. *)
      let rec again k =
        Obs.incr c_batch_retries;
        (match t.supervisor with
        | Some sup when k > 0 ->
            Unix.sleepf (Supervisor.backoff_s sup ~attempt:(k - 1))
        | _ -> ());
        match attempt t outer batch with
        | o -> o
        | exception Desync _ ->
            Option.iter (fun b -> b.dirty <- true) t.bound;
            if k + 1 < batch_retries then begin
              Obs.incr c_desyncs;
              again (k + 1)
            end
            else reject ()
        | exception e when t.recoverable e -> reject ()
      in
      again 0
  | e when t.recoverable e -> reject ()
  | e ->
      (* Non-recoverable (Deadline.Expired, Killed, genuine bugs): the
         outer cluster is unwound (or untouched), but mirrors may have run
         ahead — force a rebuild before the next batch. *)
      Option.iter (fun b -> b.dirty <- true) t.bound;
      raise e

let scheduler t ~name = { Scheduler.name; schedule = schedule t }

let n_cells t =
  match t.bound with
  | Some b -> Array.length b.cells
  | None -> t.req_cells

let last_breakdown t = Option.bind t.bound (fun b -> b.last)

(* ---- read-only cell views (the cells flow-solver path) ---------------- *)

let free_estimates t outer =
  let b = sync t outer in
  Array.copy b.free_cpu

let map_cells t outer ~batch ~f =
  let b = sync t outer in
  let subs = assign b batch in
  let tasks =
    Array.map
      (fun cs () -> f ~cell:cs.idx ~lo:cs.lo ~mirror:cs.mirror ~sub:subs.(cs.idx))
      b.cells
  in
  Pool.run (pool_for t (Array.length b.cells)) tasks
