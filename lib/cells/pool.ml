(* A persistent pool of worker domains for the cells coordinator.

   Domains are spawned once and parked on a condition variable between
   batches — spawning per batch would cost more than a small cell solve.
   Jobs are dispatched as an epoch bump: [run] publishes a task array,
   wakes the workers, and participates in the draining itself, so a pool
   with [workers = n-1] puts n domains on an n-cell batch. With
   [workers = 0] the pool degenerates to inline sequential execution —
   the mode a single-core host (or [`Sequential] determinism testing)
   wants, with no domain overhead at all.

   The mutex/condition handshake doubles as the memory-model edge: task
   results written by a worker happen-before the coordinator's read of
   [unfinished = 0], so [run]'s caller sees fully initialised results
   (and fully merged Obs shard updates). *)

type t = {
  lock : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable tasks : (unit -> unit) array;
  mutable next : int;
  mutable unfinished : int;
  mutable epoch : int;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

(* Pull and run tasks until the current job is drained. Called (and
   returns) with the lock held. *)
let drain t =
  let continue_ = ref true in
  while !continue_ do
    if t.next < Array.length t.tasks then begin
      let i = t.next in
      t.next <- i + 1;
      let task = t.tasks.(i) in
      Mutex.unlock t.lock;
      (* Tasks are wrapped by [run] and never raise. *)
      task ();
      Mutex.lock t.lock;
      t.unfinished <- t.unfinished - 1;
      if t.unfinished = 0 then Condition.broadcast t.done_
    end
    else continue_ := false
  done

let worker t () =
  Mutex.lock t.lock;
  let seen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    while (not t.stop) && t.epoch = !seen do
      Condition.wait t.work t.lock
    done;
    if t.stop then continue_ := false
    else begin
      seen := t.epoch;
      drain t
    end
  done;
  Mutex.unlock t.lock

let shutdown t =
  let ds =
    Mutex.protect t.lock (fun () ->
        let ds = t.domains in
        t.domains <- [||];
        t.stop <- true;
        Condition.broadcast t.work;
        ds)
  in
  Array.iter Domain.join ds

let create ~workers =
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      tasks = [||];
      next = 0;
      unfinished = 0;
      epoch = 0;
      stop = false;
      domains = [||];
    }
  in
  if workers > 0 then begin
    t.domains <- Array.init workers (fun _ -> Domain.spawn (worker t));
    (* Parked workers would keep the process alive past the last batch;
       shutdown is idempotent, so an explicit earlier shutdown is fine. *)
    at_exit (fun () -> shutdown t)
  end;
  t

let n_workers t = Array.length t.domains

let run t fs =
  let n = Array.length fs in
  if n = 0 then [||]
  else begin
    let results = Array.make n (Error Exit) in
    let thunks =
      Array.init n (fun i () ->
          results.(i) <- (try Ok (fs.(i) ()) with e -> Error e))
    in
    if Array.length t.domains = 0 then Array.iter (fun f -> f ()) thunks
    else begin
      Mutex.lock t.lock;
      if t.unfinished > 0 then begin
        Mutex.unlock t.lock;
        invalid_arg "Pool.run: pool is already running a job"
      end;
      t.tasks <- thunks;
      t.next <- 0;
      t.unfinished <- n;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work;
      drain t;
      while t.unfinished > 0 do
        Condition.wait t.done_ t.lock
      done;
      t.tasks <- [||];
      Mutex.unlock t.lock
    end;
    results
  end
