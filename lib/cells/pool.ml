(* A persistent pool of worker domains for the cells coordinator.

   Domains are spawned once and parked on a condition variable between
   batches — spawning per batch would cost more than a small cell solve.
   Jobs are dispatched as an epoch bump: [run] publishes a task array,
   wakes the workers, and participates in the draining itself, so a pool
   with [workers = n-1] puts n domains on an n-cell batch. With
   [workers = 0] the pool degenerates to inline sequential execution —
   the mode a single-core host (or [`Sequential] determinism testing)
   wants, with no domain overhead at all.

   The mutex/condition handshake doubles as the memory-model edge: task
   results written by a worker happen-before the coordinator's read of
   [unfinished = 0], so [run]'s caller sees fully initialised results
   (and fully merged Obs shard updates). The per-task [completed] flags
   are written and read under the same mutex, which is what lets
   [run_within] harvest the subset of results whose tasks finished
   before a join timeout without racing the stragglers.

   Domains cannot be killed, so "abandoning" a hung job means marking the
   pool unusable ([abandoned]) and leaving the stuck domain to finish on
   its own time; the supervisor above us discards the pool and builds a
   fresh one. [shutdown] still joins — the injected stalls this exists
   for are finite, and a genuinely infinite task would otherwise turn
   process exit into a hang with no diagnostic. *)

type t = {
  lock : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable tasks : (unit -> unit) array;
  mutable completed : bool array;
  mutable next : int;
  mutable unfinished : int;
  mutable epoch : int;
  mutable stop : bool;
  mutable abandoned : bool;
  mutable domains : unit Domain.t array;
}

(* Pull and run tasks until the current job is drained. Called (and
   returns) with the lock held. *)
let drain t =
  let continue_ = ref true in
  while !continue_ do
    if t.next < Array.length t.tasks then begin
      let i = t.next in
      t.next <- i + 1;
      let task = t.tasks.(i) in
      let completed = t.completed in
      Mutex.unlock t.lock;
      (* [run] wraps tasks so they never raise, but an exception escaping
         here would kill the worker domain and strand the job (unfinished
         never reaches 0) — swallow defensively so one bad task cannot
         poison the pool for every later user. *)
      (try task () with _ -> ());
      Mutex.lock t.lock;
      if i < Array.length completed then completed.(i) <- true;
      t.unfinished <- t.unfinished - 1;
      if t.unfinished = 0 then Condition.broadcast t.done_
    end
    else continue_ := false
  done

let worker t () =
  Mutex.lock t.lock;
  let seen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    while (not t.stop) && t.epoch = !seen do
      Condition.wait t.work t.lock
    done;
    if t.stop then continue_ := false
    else begin
      seen := t.epoch;
      drain t
    end
  done;
  Mutex.unlock t.lock

let shutdown t =
  let ds =
    Mutex.protect t.lock (fun () ->
        let ds = t.domains in
        t.domains <- [||];
        t.stop <- true;
        Condition.broadcast t.work;
        ds)
  in
  Array.iter Domain.join ds

let create ~workers =
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      tasks = [||];
      completed = [||];
      next = 0;
      unfinished = 0;
      epoch = 0;
      stop = false;
      abandoned = false;
      domains = [||];
    }
  in
  if workers > 0 then begin
    t.domains <- Array.init workers (fun _ -> Domain.spawn (worker t));
    (* Parked workers would keep the process alive past the last batch;
       shutdown is idempotent, so an explicit earlier shutdown is fine. *)
    at_exit (fun () -> shutdown t)
  end;
  t

let n_workers t = Array.length t.domains
let abandoned t = t.abandoned

(* Called with the lock held; raises with it released. *)
let check_idle t =
  if t.abandoned then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.run: pool abandoned (timed-out or interrupted job)"
  end;
  if t.unfinished > 0 then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.run: pool is already running a job"
  end

let wrap fs results =
  Array.init (Array.length fs) (fun i () ->
      results.(i) <- (try Ok (fs.(i) ()) with e -> Error e))

let publish t thunks n =
  t.tasks <- thunks;
  t.completed <- Array.make n false;
  t.next <- 0;
  t.unfinished <- n;
  t.epoch <- t.epoch + 1;
  Condition.broadcast t.work

let run t fs =
  let n = Array.length fs in
  if n = 0 then [||]
  else begin
    let results = Array.make n (Error Exit) in
    let thunks = wrap fs results in
    if Array.length t.domains = 0 then Array.iter (fun f -> f ()) thunks
    else begin
      Mutex.lock t.lock;
      check_idle t;
      publish t thunks n;
      (try
         drain t;
         while t.unfinished > 0 do
           Condition.wait t.done_ t.lock
         done
       with e ->
         (* The caller's wait was interrupted (e.g. Sys.Break) with
            workers possibly mid-task: the job state cannot be reset
            safely, so poison-fail fast instead of corrupting the next
            user's join. *)
         t.abandoned <- true;
         Mutex.unlock t.lock;
         raise e);
      t.tasks <- [||];
      Mutex.unlock t.lock
    end;
    results
  end

let run_within t ~timeout_s fs =
  let n = Array.length fs in
  if n = 0 then `Done [||]
  else if Array.length t.domains = 0 then
    (* No workers to time out against: inline execution, like [run]. *)
    `Done (run t fs)
  else begin
    let results = Array.make n (Error Exit) in
    let thunks = wrap fs results in
    Mutex.lock t.lock;
    check_idle t;
    publish t thunks n;
    (* The caller must NOT drain: picking up a task would make the caller
       itself the hung domain. It waits out the join with a polling sleep
       (OCaml's Condition has no timed wait) — ~0.2 ms granularity, which
       is noise against a cell solve and bounded by [timeout_s]. *)
    let deadline =
      Int64.add (Obs.now_ns ()) (Int64.of_float (timeout_s *. 1e9))
    in
    let timed_out = ref false in
    while t.unfinished > 0 && not !timed_out do
      if Obs.now_ns () >= deadline then timed_out := true
      else begin
        Mutex.unlock t.lock;
        Unix.sleepf 2e-4;
        Mutex.lock t.lock
      end
    done;
    if not !timed_out then begin
      t.tasks <- [||];
      Mutex.unlock t.lock;
      `Done results
    end
    else begin
      (* Harvest what finished; the [completed] flags are only set under
         the lock after the task returned, so a [Some] here is a fully
         published result even while stragglers keep running. The pool is
         poisoned — the stuck domain still owns the published task array. *)
      let partial =
        Array.init n (fun i ->
            if t.completed.(i) then Some results.(i) else None)
      in
      t.abandoned <- true;
      Mutex.unlock t.lock;
      `Timed_out partial
    end
  end
