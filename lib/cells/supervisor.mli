(** Per-cell health records and circuit breaking for cell supervision.

    The supervisor tracks, per cell: consecutive phase-1 failures, an
    EWMA of phase-1 latency, and a three-state circuit breaker —
    [Closed] (in rotation), [Open k] (quarantined for [k] more batches;
    the coordinator reslices the cell's machines to its neighbours), and
    [Half_open] (cooldown elapsed, machines restored; the next batch the
    cell is assigned is its probe: success closes the breaker, failure
    re-opens it with a doubled cooldown).

    The supervisor is pure bookkeeping: the {!Coordinator} drives it —
    bounded per-cell retries with {!backoff_s} between attempts, success/
    failure verdicts after each phase 1, {!tick} once per batch, and
    {!Partition.reslice} from {!live}. Counters land under
    [cells.supervisor.*]: [.retries], [.stalls], [.cell_failures],
    [.quarantines], [.reinstatements], [.probes] and
    [.redistributed_machines]. *)

type config = {
  max_retries : int;  (** per-cell phase-1 retries for transient errors *)
  backoff_ms : float;  (** base backoff; attempt [k] waits [2^k * base] *)
  jitter : float;  (** multiplicative backoff jitter in [[0, 1]] *)
  failure_threshold : int;
      (** consecutive failures that trip the breaker open *)
  cooldown : int;  (** batches out of rotation before a half-open probe *)
  join_timeout_ms : float;
      (** phase-1 join timeout ({!Pool.run_within}); [0.] disables —
          note [`Sequential] mode runs inline and can never time out *)
  ewma_alpha : float;  (** latency EWMA smoothing factor *)
  seed : int;  (** jitter stream seed *)
}

val default : config
(** 2 retries, 1 ms base backoff with 20% jitter, threshold 3, cooldown
    8 batches, 1 s join timeout, EWMA alpha 0.3. *)

val config_of_env : unit -> config
(** {!default} overridden by [ALADDIN_SUPERVISE_RETRIES],
    [ALADDIN_SUPERVISE_BACKOFF_MS], [ALADDIN_SUPERVISE_JITTER],
    [ALADDIN_SUPERVISE_THRESHOLD], [ALADDIN_SUPERVISE_COOLDOWN],
    [ALADDIN_SUPERVISE_TIMEOUT_MS], [ALADDIN_SUPERVISE_EWMA] and
    [ALADDIN_SUPERVISE_SEED]. *)

type t

val create : config -> t
val config : t -> config

val live : t -> n_cells:int -> bool array
(** Rotation verdict per cell: [false] iff the breaker is [Open].
    [Half_open] cells are live — rejoining rotation {e is} the probe.
    Sizes the health table on first use. *)

val n_quarantined : t -> int
val ewma_ms : t -> cell:int -> float
val consecutive_failures : t -> cell:int -> int

val is_probing : t -> cell:int -> bool
(** The cell is [Half_open]: its next assigned batch decides
    reinstatement. *)

val record_success : t -> cell:int -> ms:float -> [ `Ok | `Reinstated ]
(** Phase-1 success: resets the failure streak, feeds the EWMA, and
    closes a [Half_open] breaker ([`Reinstated],
    [cells.supervisor.reinstatements]). *)

val record_failure : t -> cell:int -> [ `Ok | `Quarantine ]
(** Terminal phase-1 failure (retries exhausted, stall, or crash):
    bumps the streak; trips the breaker open at [failure_threshold]
    consecutive failures, or immediately when [Half_open] (failed probe,
    doubled cooldown). [`Quarantine] tells the coordinator the rotation
    must change. *)

val tick : t -> bool
(** Once per batch before rotation is applied: [Open] cells count down,
    [Open 0] becomes [Half_open]. Returns [true] when any breaker
    changed state (the live set must be recomputed). *)

val backoff_s : t -> attempt:int -> float
(** Jittered exponential backoff in seconds for retry [attempt]
    (0-based), from the supervisor's own seeded stream. *)

(** Counter hooks for the coordinator (the supervisor owns the
    [cells.supervisor.*] names). *)

val note_retry : unit -> unit
val note_stall : unit -> unit
val note_probe : unit -> unit
val note_redistributed : int -> unit
