(* Per-cell health tracking and circuit breaking for the coordinator.

   Each cell carries a health record: consecutive phase-1 failures and an
   EWMA of its phase-1 latency. The breaker walks the classic three
   states —

     Closed      healthy, in rotation
     Open k      quarantined for k more batches, machines resliced away
     Half_open   cooldown elapsed, machines restored, next assigned
                 batch is the probe

   A probe success closes the breaker (reinstatement); a probe failure
   re-opens it with a doubled cooldown. The supervisor only keeps state
   and verdicts — the coordinator drives it (retries with backoff, calls
   {!record_success}/{!record_failure}, reslices the partition from
   {!live}, and ticks cooldowns once per batch). *)

type config = {
  max_retries : int;
  backoff_ms : float;
  jitter : float;
  failure_threshold : int;
  cooldown : int;
  join_timeout_ms : float;
  ewma_alpha : float;
  seed : int;
}

let default =
  {
    max_retries = 2;
    backoff_ms = 1.0;
    jitter = 0.2;
    failure_threshold = 3;
    cooldown = 8;
    join_timeout_ms = 1000.;
    ewma_alpha = 0.3;
    seed = 77;
  }

let env_float name d =
  match Sys.getenv_opt name with
  | Some s -> ( try float_of_string (String.trim s) with _ -> d)
  | None -> d

let env_int name d =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> d)
  | None -> d

let config_of_env () =
  {
    max_retries = max 0 (env_int "ALADDIN_SUPERVISE_RETRIES" default.max_retries);
    backoff_ms = Float.max 0. (env_float "ALADDIN_SUPERVISE_BACKOFF_MS" default.backoff_ms);
    jitter =
      Float.min 1. (Float.max 0. (env_float "ALADDIN_SUPERVISE_JITTER" default.jitter));
    failure_threshold =
      max 1 (env_int "ALADDIN_SUPERVISE_THRESHOLD" default.failure_threshold);
    cooldown = max 1 (env_int "ALADDIN_SUPERVISE_COOLDOWN" default.cooldown);
    join_timeout_ms =
      Float.max 0. (env_float "ALADDIN_SUPERVISE_TIMEOUT_MS" default.join_timeout_ms);
    ewma_alpha =
      Float.min 1. (Float.max 0.01 (env_float "ALADDIN_SUPERVISE_EWMA" default.ewma_alpha));
    seed = env_int "ALADDIN_SUPERVISE_SEED" default.seed;
  }

type breaker = Closed | Open of int | Half_open

type health = {
  mutable failures : int;  (* consecutive *)
  mutable ewma_ms : float; (* 0 until the first sample *)
  mutable breaker : breaker;
  mutable cooldown : int;  (* current cooldown length; doubles on re-trip *)
}

type t = { cfg : config; mutable cells : health array; rng : Rng.t }

let c_failures = Obs.counter "cells.supervisor.cell_failures"
let c_retries = Obs.counter "cells.supervisor.retries"
let c_stalls = Obs.counter "cells.supervisor.stalls"
let c_quarantines = Obs.counter "cells.supervisor.quarantines"
let c_reinstatements = Obs.counter "cells.supervisor.reinstatements"
let c_probes = Obs.counter "cells.supervisor.probes"
let c_redistributed = Obs.counter "cells.supervisor.redistributed_machines"

let note_retry () = Obs.incr c_retries
let note_stall () = Obs.incr c_stalls
let note_probe () = Obs.incr c_probes
let note_redistributed n = Obs.add c_redistributed n

let fresh_health (cfg : config) =
  { failures = 0; ewma_ms = 0.; breaker = Closed; cooldown = cfg.cooldown }

let create cfg = { cfg; cells = [||]; rng = Rng.create cfg.seed }
let config t = t.cfg

let ensure t n =
  let m = Array.length t.cells in
  if m < n then
    t.cells <-
      Array.init n (fun i ->
          if i < m then t.cells.(i) else fresh_health t.cfg)

let health t ~cell =
  ensure t (cell + 1);
  t.cells.(cell)

let ewma_ms t ~cell = (health t ~cell).ewma_ms
let consecutive_failures t ~cell = (health t ~cell).failures
let is_probing t ~cell = (health t ~cell).breaker = Half_open

let live t ~n_cells =
  ensure t n_cells;
  Array.init n_cells (fun i ->
      match t.cells.(i).breaker with Open _ -> false | _ -> true)

let n_quarantined t =
  Array.fold_left
    (fun acc h -> match h.breaker with Open _ -> acc + 1 | _ -> acc)
    0 t.cells

let record_success t ~cell ~ms =
  let h = health t ~cell in
  h.failures <- 0;
  h.ewma_ms <-
    (if h.ewma_ms = 0. then ms
     else (t.cfg.ewma_alpha *. ms) +. ((1. -. t.cfg.ewma_alpha) *. h.ewma_ms));
  match h.breaker with
  | Half_open ->
      (* probe succeeded: fully reinstated, cooldown resets *)
      h.breaker <- Closed;
      h.cooldown <- t.cfg.cooldown;
      Obs.incr c_reinstatements;
      `Reinstated
  | _ -> `Ok

let record_failure t ~cell =
  let h = health t ~cell in
  h.failures <- h.failures + 1;
  Obs.incr c_failures;
  match h.breaker with
  | Half_open ->
      (* probe failed: back out, twice the cooldown *)
      h.cooldown <- 2 * h.cooldown;
      h.breaker <- Open h.cooldown;
      Obs.incr c_quarantines;
      `Quarantine
  | Closed when h.failures >= t.cfg.failure_threshold ->
      h.breaker <- Open h.cooldown;
      Obs.incr c_quarantines;
      `Quarantine
  | _ -> `Ok

(* One tick per batch, before rotation is applied: [Open 0] cells move to
   [Half_open] (rejoining rotation as probes), other [Open] cells count
   down. Returns [true] when any cell changed state — the signal that the
   partition's live set must be recomputed. *)
let tick t =
  let changed = ref false in
  Array.iter
    (fun h ->
      match h.breaker with
      | Open 0 ->
          h.breaker <- Half_open;
          changed := true
      | Open k -> h.breaker <- Open (k - 1)
      | _ -> ())
    t.cells;
  !changed

(* Exponential backoff with +/- jitter for retry [attempt] (0-based).
   Deterministic: the jitter stream is the supervisor's own seeded Rng,
   and retries run on the coordinator's calling domain in cell order. *)
let backoff_s t ~attempt =
  let base = t.cfg.backoff_ms *. (2. ** float_of_int attempt) /. 1e3 in
  let u = Rng.float t.rng in
  Float.max 0. (base *. (1. +. (t.cfg.jitter *. ((2. *. u) -. 1.))))
