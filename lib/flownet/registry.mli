(** Name → solver backend registry.

    The four built-in backends register themselves at load time:
    ["mincost"] (successive shortest paths, warm-startable),
    ["cost-scaling"], ["dinic"] and ["push-relabel"]. Each registered
    backend is wrapped with per-backend obs series
    ([solver.<name>.solves], [solver.<name>.errors],
    [solver.<name>.solve_ns]) at registration, so selection and
    instrumentation stay in one place. *)

val register : (module Solver_intf.S) -> unit
(** Add (or replace) a backend under its [name]; it is instrumented on
    the way in. *)

val find : string -> (module Solver_intf.S) option
val names : unit -> string list

val default : string
(** ["mincost"] — the backend schedulers use unless told otherwise. *)

val env_name : unit -> string
(** The backend name [ALADDIN_SOLVER] requests (default {!default}),
    without validating it — lookup happens at first use, so an unknown
    name fails at the call site rather than at module load. *)

val of_env : unit -> (module Solver_intf.S)
(** Backend named by [ALADDIN_SOLVER] (default {!default}).
    @raise Invalid_argument on an unknown name, listing the known ones. *)

val name : (module Solver_intf.S) -> string
val caps : (module Solver_intf.S) -> Solver_intf.caps

val solve :
  (module Solver_intf.S) ->
  ?warm:Mincost.warm ->
  ?deadline:Deadline.t ->
  ?max_flow:int ->
  Graph.t ->
  src:int ->
  dst:int ->
  (Mincost.stats, Error.t) result
(** [solve backend] — convenience unpacking of the first-class module.
    With [?deadline], budget exhaustion surfaces as
    [Error (Deadline_exceeded _)] (the instrumentation wrapper converts
    backends that raise internally); the partial flow left on the graph is
    not trustworthy — reset or escalate. *)

val default_rungs : string list
(** [["mincost"; "cost-scaling"; "dinic"]] — cheapest-exact to
    cheapest-approximate, the order {!solve_ladder} tries them. *)

val rungs_of_env : unit -> string list
(** Rung names from [ALADDIN_LADDER] (comma-separated), default
    {!default_rungs}. ["gokube"] is accepted for scheduler-level ladders
    even though it is not a flow solver.
    @raise Invalid_argument on any other unknown name. *)

val solve_ladder :
  ?rungs:string list ->
  ?deadline_ms:float ->
  ?warm:Mincost.warm ->
  ?max_flow:int ->
  Graph.t ->
  src:int ->
  dst:int ->
  (Mincost.stats, Error.t) result * string
(** Degradation ladder over flow-solver backends: try each rung of
    [rungs] (default {!rungs_of_env}; non-backend names such as
    ["gokube"] are skipped) under a fresh deadline of [deadline_ms]
    (default [ALADDIN_DEADLINE_MS]), escalating to the next rung — after
    [Graph.reset_flows] — whenever the budget is exhausted. The terminal
    rung runs unbounded so the solve always completes. Returns the result
    together with the name of the rung that produced it. Increments
    [ladder.rung.<name>] on the winning rung and [ladder.escalations]
    per hand-off. *)
