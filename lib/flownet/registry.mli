(** Name → solver backend registry.

    The four built-in backends register themselves at load time:
    ["mincost"] (successive shortest paths, warm-startable),
    ["cost-scaling"], ["dinic"] and ["push-relabel"]. Each registered
    backend is wrapped with per-backend obs series
    ([solver.<name>.solves], [solver.<name>.errors],
    [solver.<name>.solve_ns]) at registration, so selection and
    instrumentation stay in one place. *)

val register : (module Solver_intf.S) -> unit
(** Add (or replace) a backend under its [name]; it is instrumented on
    the way in. *)

val find : string -> (module Solver_intf.S) option
val names : unit -> string list

val default : string
(** ["mincost"] — the backend schedulers use unless told otherwise. *)

val env_name : unit -> string
(** The backend name [ALADDIN_SOLVER] requests (default {!default}),
    without validating it — lookup happens at first use, so an unknown
    name fails at the call site rather than at module load. *)

val of_env : unit -> (module Solver_intf.S)
(** Backend named by [ALADDIN_SOLVER] (default {!default}).
    @raise Invalid_argument on an unknown name, listing the known ones. *)

val name : (module Solver_intf.S) -> string
val caps : (module Solver_intf.S) -> Solver_intf.caps

val solve :
  (module Solver_intf.S) ->
  ?warm:Mincost.warm ->
  ?max_flow:int ->
  Graph.t ->
  src:int ->
  dst:int ->
  (Mincost.stats, Error.t) result
(** [solve backend] — convenience unpacking of the first-class module. *)
