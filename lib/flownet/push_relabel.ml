(* Highest-label push-relabel with gap relabeling. Excess at intermediate
   vertices is pushed forward or, after relabeling past n, drained back to
   the source, so the final flows satisfy conservation. *)

let c_pushes = Obs.counter "push_relabel.pushes"
let c_relabels = Obs.counter "push_relabel.relabels"
let c_gap_lifts = Obs.counter "push_relabel.gap_lifts"

let run ?deadline g ~src ~dst =
  let dl = Deadline.resolve deadline in
  let n = Graph.n_vertices g in
  if src = dst then 0
  else begin
    Graph.freeze g;
    let first = Graph.first_out g and arcs = Graph.arc_of g in
    let height = Array.make n 0 in
    let excess = Array.make n 0 in
    (* buckets of active vertices per height, for the highest-label rule *)
    let buckets = Array.make ((2 * n) + 1) [] in
    let highest = ref 0 in
    let count = Array.make ((2 * n) + 1) 0 in
    (* height histogram for gap relabeling *)
    let in_bucket = Array.make n false in
    let activate v =
      if v <> src && v <> dst && excess.(v) > 0 && not in_bucket.(v) then begin
        in_bucket.(v) <- true;
        buckets.(height.(v)) <- v :: buckets.(height.(v));
        if height.(v) > !highest then highest := height.(v)
      end
    in
    let push a =
      let u = Graph.src g a and v = Graph.dst g a in
      let d = min excess.(u) (Graph.residual g a) in
      if d > 0 then begin
        Obs.incr c_pushes;
        Graph.push g a d;
        excess.(u) <- excess.(u) - d;
        excess.(v) <- excess.(v) + d;
        activate v
      end
    in
    height.(src) <- n;
    count.(0) <- n - 1;
    count.(n) <- 1;
    (* saturate all source arcs *)
    for i = first.{src} to first.{src + 1} - 1 do
      let a = arcs.{i} in
      let d = Graph.residual g a in
      if d > 0 then begin
        excess.(src) <- excess.(src) + d;
        push a
      end
    done;
    let relabel u =
      Obs.incr c_relabels;
      let old = height.(u) in
      let best = ref ((2 * n) + 1) in
      for i = first.{u} to first.{u + 1} - 1 do
        let a = arcs.{i} in
        if Graph.residual g a > 0 then
          best := min !best (height.(Graph.dst g a) + 1)
      done;
      if !best <= 2 * n then begin
        count.(old) <- count.(old) - 1;
        (* gap heuristic: no vertex left at [old] → lift everything above
           the gap out of reach *)
        if count.(old) = 0 && old < n then
          for v = 0 to n - 1 do
            if v <> src && height.(v) > old && height.(v) <= n then begin
              Obs.incr c_gap_lifts;
              count.(height.(v)) <- count.(height.(v)) - 1;
              height.(v) <- n + 1;
              count.(n + 1) <- count.(n + 1) + 1
            end
          done;
        if height.(u) <= old then begin
          (* not lifted by the gap pass *)
          height.(u) <- !best;
          count.(!best) <- count.(!best) + 1
        end
      end
      else height.(u) <- (2 * n) + 1 (* disconnected in residual *)
    in
    let discharge u =
      let continue = ref true in
      while !continue && excess.(u) > 0 do
        Deadline.tick_opt dl "push_relabel.discharge";
        let pushed = ref false in
        for i = first.{u} to first.{u + 1} - 1 do
          let a = arcs.{i} in
          if
            excess.(u) > 0
            && Graph.residual g a > 0
            && height.(u) = height.(Graph.dst g a) + 1
          then begin
            push a;
            pushed := true
          end
        done;
        if excess.(u) > 0 then begin
          if not !pushed then begin
            let before = height.(u) in
            relabel u;
            if height.(u) = before || height.(u) > 2 * n then continue := false
          end
        end
      done
    in
    let rec loop () =
      Deadline.tick_opt dl "push_relabel.select";
      (* find the highest non-empty bucket *)
      while !highest >= 0 && buckets.(!highest) = [] do
        decr highest
      done;
      if !highest >= 0 then begin
        match buckets.(!highest) with
        | [] -> loop ()
        | u :: rest ->
            buckets.(!highest) <- rest;
            in_bucket.(u) <- false;
            if u <> src && u <> dst && excess.(u) > 0 then begin
              discharge u;
              activate u;
              (* relabeling may have raised u above the cursor *)
              if excess.(u) > 0 && height.(u) > !highest then
                highest := min (2 * n) height.(u)
            end;
            loop ()
      end
    in
    loop ();
    excess.(dst)
  end
