let c_phases = Obs.counter "dinic.phases"
let c_arcs = Obs.counter "dinic.arcs_touched"
let c_augmented = Obs.counter "dinic.units_augmented"

let build_levels ~dl g ~src ~dst level first arcs =
  Array.fill level 0 (Array.length level) (-1);
  let q = Queue.create () in
  level.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    Deadline.tick_opt dl "dinic.levels";
    let u = Queue.pop q in
    for i = first.{u} to first.{u + 1} - 1 do
      let a = arcs.{i} in
      Obs.incr c_arcs;
      if Graph.residual g a > 0 then begin
        let v = Graph.dst g a in
        if level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.push v q
        end
      end
    done
  done;
  level.(dst) >= 0

(* Blocking flow by DFS with per-vertex arc cursors. [cursor.(u)] indexes
   into the frozen CSR [arcs] array; arcs below it are saturated or lead
   away from the level graph and are never rescanned this phase. *)
let blocking_flow ~dl g ~src ~dst level cursor first arcs budget =
  let rec dfs u pushed =
    if u = dst then pushed
    else begin
      let sent = ref 0 in
      let continue = ref true in
      while !continue do
        Deadline.tick_opt dl "dinic.blocking_flow";
        if cursor.(u) >= first.{u + 1} then continue := false
        else begin
          let a = arcs.{cursor.(u)} in
          let v = Graph.dst g a in
          let r = Graph.residual g a in
          if r > 0 && level.(v) = level.(u) + 1 then begin
            let d = dfs v (min (pushed - !sent) r) in
            if d > 0 then begin
              Graph.push g a d;
              sent := !sent + d;
              if !sent = pushed then continue := false
            end
            else cursor.(u) <- cursor.(u) + 1
          end
          else cursor.(u) <- cursor.(u) + 1
        end
      done;
      !sent
    end
  in
  dfs src budget

let run ?deadline ?(max_flow = max_int) g ~src ~dst =
  let dl = Deadline.resolve deadline in
  Graph.freeze g;
  let n = Graph.n_vertices g in
  let first = Graph.first_out g and arcs = Graph.arc_of g in
  let level = Array.make n (-1) in
  let cursor = Array.make n 0 in
  let total = ref 0 in
  while !total < max_flow && build_levels ~dl g ~src ~dst level first arcs do
    Obs.incr c_phases;
    for v = 0 to n - 1 do cursor.(v) <- first.{v} done;
    let pushed =
      blocking_flow ~dl g ~src ~dst level cursor first arcs (max_flow - !total)
    in
    total := !total + pushed
  done;
  Obs.add c_augmented !total;
  !total
