let c_phases = Obs.counter "dinic.phases"
let c_arcs = Obs.counter "dinic.arcs_touched"
let c_augmented = Obs.counter "dinic.units_augmented"

let build_levels g ~src ~dst level =
  Array.fill level 0 (Array.length level) (-1);
  let q = Queue.create () in
  level.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_out g u (fun a ->
        Obs.incr c_arcs;
        if Graph.residual g a > 0 then begin
          let v = Graph.dst g a in
          if level.(v) < 0 then begin
            level.(v) <- level.(u) + 1;
            Queue.push v q
          end
        end)
  done;
  level.(dst) >= 0

(* Blocking flow by DFS with per-vertex arc cursors. The cursor array holds,
   for each vertex, the remaining out-arc list still worth scanning. *)
let blocking_flow g ~src ~dst level cursor =
  let rec dfs u pushed =
    if u = dst then pushed
    else begin
      let sent = ref 0 in
      let continue = ref true in
      while !continue do
        match cursor.(u) with
        | [] -> continue := false
        | a :: rest ->
            let v = Graph.dst g a in
            let r = Graph.residual g a in
            if r > 0 && level.(v) = level.(u) + 1 then begin
              let d = dfs v (min (pushed - !sent) r) in
              if d > 0 then begin
                Graph.push g a d;
                sent := !sent + d;
                if !sent = pushed then continue := false
              end
              else cursor.(u) <- rest
            end
            else cursor.(u) <- rest
      done;
      !sent
    end
  in
  dfs src max_int

let run g ~src ~dst =
  let n = Graph.n_vertices g in
  let level = Array.make n (-1) in
  let total = ref 0 in
  while build_levels g ~src ~dst level do
    Obs.incr c_phases;
    let cursor =
      Array.init n (fun v -> List.rev (Graph.fold_out g v (fun l a -> a :: l) []))
    in
    let pushed = blocking_flow g ~src ~dst level cursor in
    total := !total + pushed
  done;
  Obs.add c_augmented !total;
  !total
