(* Flat native-int Bigarray vectors for the solver hot paths.

   [Bigarray.int] cells are unboxed native (63-bit) integers stored outside
   the OCaml heap: reading or writing one never allocates and never creates
   GC work, unlike the int32/int64 kinds (boxed per access without flambda)
   and unlike growing OCaml arrays (minor-heap churn + copying collector
   traffic). Every long-lived label/CSR array in this library lives here so
   a warm solve allocates zero words. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create ?(fill = 0) n : t =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 0 n) in
  Bigarray.Array1.fill a fill;
  a

let empty : t = create 0
let length (a : t) = Bigarray.Array1.dim a

let fill_range (a : t) pos len v =
  if len > 0 then Bigarray.Array1.fill (Bigarray.Array1.sub a pos len) v

let blit (src : t) spos (dst : t) dpos len =
  if len > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src spos len)
      (Bigarray.Array1.sub dst dpos len)

(* [ensure a n ~fill] returns [a] when it is already large enough, otherwise
   a geometrically grown copy with the new tail set to [fill]. The contents
   of the surviving prefix are preserved, so workspaces can grow lazily
   without resetting their footprint bookkeeping. *)
let ensure (a : t) n ~fill =
  let len = length a in
  if len >= n then a
  else begin
    let b = create ~fill (max n (2 * len)) in
    blit a 0 b 0 len;
    b
  end

let of_array (src : int array) : t =
  let n = Array.length src in
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  for i = 0 to n - 1 do
    a.{i} <- src.(i)
  done;
  a

let to_array (a : t) = Array.init (length a) (fun i -> a.{i})
