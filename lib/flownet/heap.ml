type t = {
  mutable keys : int array;
  mutable values : int array;
  mutable n : int;
  (* last popped entry, for the allocation-free [pop] protocol *)
  mutable last_key : int;
  mutable last_value : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  {
    keys = Array.make capacity 0;
    values = Array.make capacity 0;
    n = 0;
    last_key = 0;
    last_value = 0;
  }

let is_empty h = h.n = 0
let size h = h.n
let clear h = h.n <- 0

let grow h =
  let old = Array.length h.keys in
  let keys = Array.make (2 * old) 0 and values = Array.make (2 * old) 0 in
  Array.blit h.keys 0 keys 0 old;
  Array.blit h.values 0 values 0 old;
  h.keys <- keys;
  h.values <- values

let swap h i j =
  let k = h.keys.(i) and v = h.values.(i) in
  h.keys.(i) <- h.keys.(j);
  h.values.(i) <- h.values.(j);
  h.keys.(j) <- k;
  h.values.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(parent) > h.keys.(i) then begin
      swap h parent i;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.n && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.n && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~key ~value =
  if h.n = Array.length h.keys then grow h;
  h.keys.(h.n) <- key;
  h.values.(h.n) <- value;
  h.n <- h.n + 1;
  sift_up h (h.n - 1)

(* Allocation-free pop: the result lands in [last_key]/[last_value]
   instead of a boxed option — the Dijkstra inner loop pops thousands of
   times per solve and must not create garbage. *)
let pop h =
  if h.n = 0 then false
  else begin
    h.last_key <- h.keys.(0);
    h.last_value <- h.values.(0);
    h.n <- h.n - 1;
    if h.n > 0 then begin
      h.keys.(0) <- h.keys.(h.n);
      h.values.(0) <- h.values.(h.n);
      sift_down h 0
    end;
    true
  end

let last_key h = h.last_key
let last_value h = h.last_value
let pop_min h = if pop h then Some (h.last_key, h.last_value) else None
