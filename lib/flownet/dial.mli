(** Dial's bucket queue for monotone Dijkstra with small integer reduced
    costs: a circular bucket array over a power-of-two key span, entries
    chained through intrusive per-vertex links — no allocation per
    operation, O(1) insert/decrease-key, extraction by cursor scan.

    Requires the monotone-key discipline of Dijkstra: keys handed to
    {!insert} never lie below the largest key popped so far, and every
    stored key is within [max_span] of it. The span grows (doubling,
    rebucketing) to fit; past [max_span] {!insert} refuses and the caller
    migrates to a comparison heap via {!drain}. *)

type t

val create : ?max_span:int -> ?span_hint:int -> unit -> t

val size : t -> int
val is_empty : t -> bool

val prepare : t -> int -> start_key:int -> unit
(** Ready the queue for a run over vertices [0 .. n-1] with smallest
    possible key [start_key]. Per-vertex state left by a previous run must
    be cleared through {!clear_vertex} by the caller's footprint
    bookkeeping before the next {!prepare}. *)

val clear_vertex : t -> int -> unit
(** Forget any stored entry state for one vertex (footprint reset). *)

val insert : t -> int -> int -> bool
(** [insert t v key] adds [v] with [key], or lowers its key if present.
    Returns [false] when [key] exceeds the queue's maximum span above the
    cursor — the entry was NOT stored and the caller should {!drain} into
    a heap.
    @raise Invalid_argument if [key] is below the extraction cursor. *)

val pop_min : t -> (int * int) option
(** Smallest [(key, vertex)] stored, advancing the cursor. *)

val pop : t -> bool
(** Allocation-free {!pop_min}: [true] when an entry was popped, its key
    and vertex then readable through {!last_key}/{!last_value} until the
    next pop. *)

val last_key : t -> int
val last_value : t -> int

val drain : t -> (int -> int -> unit) -> unit
(** Pop everything in key order into [f key vertex], emptying the queue. *)
