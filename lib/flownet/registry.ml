(* Name -> solver backend registry. Backends register as first-class
   modules; [register] wraps each one with per-backend obs series
   (solver.<name>.solves / .errors / .solve_ns) so every call site gets
   instrumentation without the backends knowing about it. *)

let flow_cost g =
  let c = ref 0 in
  for a = 0 to Graph.n_arcs g - 1 do
    if Graph.is_forward a then c := !c + (Graph.cost g a * Graph.flow g a)
  done;
  !c

let instrument (module M : Solver_intf.S) : (module Solver_intf.S) =
  let c_solves = Obs.counter (Printf.sprintf "solver.%s.solves" M.name) in
  let c_errors = Obs.counter (Printf.sprintf "solver.%s.errors" M.name) in
  let h_solve = Obs.histogram (Printf.sprintf "solver.%s.solve_ns" M.name) in
  (module struct
    let name = M.name
    let caps = M.caps

    let solve ?warm ?deadline ?max_flow g ~src ~dst =
      Obs.incr c_solves;
      let t0 = Obs.now_ns () in
      let r =
        (* Backends whose inner algorithm raises on budget exhaustion get
           the exception converted to the typed error here — but only for
           the deadline this call received explicitly. An ambient deadline
           (armed by scheduler middleware) keeps propagating as the
           exception so the middleware can escalate. *)
        match M.solve ?warm ?deadline ?max_flow g ~src ~dst with
        | r -> r
        | exception Deadline.Expired { site; deadline = d }
          when (match deadline with Some d' -> d' == d | None -> false) ->
            Error (Error.Deadline_exceeded site)
      in
      Obs.observe_ns h_solve (Int64.sub (Obs.now_ns ()) t0);
      (match r with Error _ -> Obs.incr c_errors | Ok _ -> ());
      r
  end)

let table : (string, (module Solver_intf.S)) Hashtbl.t = Hashtbl.create 8

let register ((module M : Solver_intf.S) as m) =
  Hashtbl.replace table M.name (instrument m)

let find name = Hashtbl.find_opt table name

let names () =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let name (module M : Solver_intf.S) = M.name
let caps (module M : Solver_intf.S) = M.caps

let solve (module M : Solver_intf.S) ?warm ?deadline ?max_flow g ~src ~dst =
  M.solve ?warm ?deadline ?max_flow g ~src ~dst

let default = "mincost"

let env_name () =
  match Sys.getenv_opt "ALADDIN_SOLVER" with
  | Some s when String.trim s <> "" -> String.trim s
  | _ -> default

let of_env () =
  let requested = env_name () in
  match find requested with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "ALADDIN_SOLVER=%s: unknown solver (known: %s)"
           requested
           (String.concat ", " (names ())))

(* ---- degradation ladder ---- *)

let c_escalations = Obs.counter "ladder.escalations"
let rung_counter name = Obs.counter (Printf.sprintf "ladder.rung.%s" name)
let default_rungs = [ "mincost"; "cost-scaling"; "dinic" ]

let rungs_of_env () =
  match Sys.getenv_opt "ALADDIN_LADDER" with
  | Some s when String.trim s <> "" ->
      let rungs =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun r -> r <> "")
      in
      List.iter
        (fun r ->
          if r <> "gokube" && find r = None then
            invalid_arg
              (Printf.sprintf "ALADDIN_LADDER: unknown rung %s (known: %s)" r
                 (String.concat ", " (names () @ [ "gokube" ]))))
        rungs;
      if rungs = [] then default_rungs else rungs
  | _ -> default_rungs

let solve_ladder ?rungs ?deadline_ms ?warm ?max_flow g ~src ~dst =
  let rungs =
    (match rungs with Some r -> r | None -> rungs_of_env ())
    |> List.filter_map (fun r -> Option.map (fun m -> (r, m)) (find r))
  in
  let rungs =
    match rungs with [] -> [ (default, Option.get (find default)) ] | r -> r
  in
  let budget () =
    match deadline_ms with
    | Some ms -> Some (Deadline.make ~wall_ms:ms ())
    | None -> Option.map (fun ms -> Deadline.make ~wall_ms:ms ()) (Deadline.of_env ())
  in
  let rec attempt = function
    | [] -> assert false (* rungs is non-empty *)
    | [ (name, m) ] ->
        (* Terminal rung runs unbounded: a batch always completes, even if
           it has to wait for the cheapest solver. *)
        Graph.reset_flows g;
        let r = solve m ?warm ?max_flow g ~src ~dst in
        (match r with Ok _ -> Obs.incr (rung_counter name) | Error _ -> ());
        (r, name)
    | (name, m) :: rest -> (
        Graph.reset_flows g;
        match solve m ?warm ?deadline:(budget ()) ?max_flow g ~src ~dst with
        | Ok _ as r ->
            Obs.incr (rung_counter name);
            (r, name)
        | Error (Error.Deadline_exceeded _) ->
            Obs.incr c_escalations;
            attempt rest
        | Error _ as r -> (r, name))
  in
  attempt rungs

(* ---- built-in backends ---- *)

module Mincost_backend = struct
  let name = "mincost"

  let caps =
    { Solver_intf.min_cost = true; supports_max_flow = true; warm_start = true }

  let solve ?warm ?deadline ?max_flow g ~src ~dst =
    Mincost.run ?warm ?deadline ?max_flow g ~src ~dst
end

module Cost_scaling_backend = struct
  let name = "cost-scaling"

  let caps =
    {
      Solver_intf.min_cost = true;
      supports_max_flow = true;
      warm_start = false;
    }

  let solve ?warm:_ ?deadline ?max_flow g ~src ~dst =
    Ok (Cost_scaling.run ?deadline ?max_flow g ~src ~dst)
end

module Dinic_backend = struct
  let name = "dinic"

  let caps =
    {
      Solver_intf.min_cost = false;
      supports_max_flow = true;
      warm_start = false;
    }

  let solve ?warm:_ ?deadline ?max_flow g ~src ~dst =
    let flow = Dinic.run ?deadline ?max_flow g ~src ~dst in
    Ok { Mincost.flow; cost = flow_cost g; iterations = 0 }
end

module Push_relabel_backend = struct
  let name = "push-relabel"

  let caps =
    {
      Solver_intf.min_cost = false;
      supports_max_flow = false;
      warm_start = false;
    }

  let solve ?warm:_ ?deadline ?max_flow:_ g ~src ~dst =
    let flow = Push_relabel.run ?deadline g ~src ~dst in
    Ok { Mincost.flow; cost = flow_cost g; iterations = 0 }
end

let () =
  register (module Mincost_backend);
  register (module Cost_scaling_backend);
  register (module Dinic_backend);
  register (module Push_relabel_backend)
