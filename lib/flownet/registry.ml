(* Name -> solver backend registry. Backends register as first-class
   modules; [register] wraps each one with per-backend obs series
   (solver.<name>.solves / .errors / .solve_ns) so every call site gets
   instrumentation without the backends knowing about it. *)

let flow_cost g =
  let c = ref 0 in
  for a = 0 to Graph.n_arcs g - 1 do
    if Graph.is_forward a then c := !c + (Graph.cost g a * Graph.flow g a)
  done;
  !c

let instrument (module M : Solver_intf.S) : (module Solver_intf.S) =
  let c_solves = Obs.counter (Printf.sprintf "solver.%s.solves" M.name) in
  let c_errors = Obs.counter (Printf.sprintf "solver.%s.errors" M.name) in
  let h_solve = Obs.histogram (Printf.sprintf "solver.%s.solve_ns" M.name) in
  (module struct
    let name = M.name
    let caps = M.caps

    let solve ?warm ?max_flow g ~src ~dst =
      Obs.incr c_solves;
      let t0 = Obs.now_ns () in
      let r = M.solve ?warm ?max_flow g ~src ~dst in
      Obs.observe_ns h_solve (Int64.sub (Obs.now_ns ()) t0);
      (match r with Error _ -> Obs.incr c_errors | Ok _ -> ());
      r
  end)

let table : (string, (module Solver_intf.S)) Hashtbl.t = Hashtbl.create 8

let register ((module M : Solver_intf.S) as m) =
  Hashtbl.replace table M.name (instrument m)

let find name = Hashtbl.find_opt table name

let names () =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let name (module M : Solver_intf.S) = M.name
let caps (module M : Solver_intf.S) = M.caps

let solve (module M : Solver_intf.S) ?warm ?max_flow g ~src ~dst =
  M.solve ?warm ?max_flow g ~src ~dst

let default = "mincost"

let env_name () =
  match Sys.getenv_opt "ALADDIN_SOLVER" with
  | Some s when String.trim s <> "" -> String.trim s
  | _ -> default

let of_env () =
  let requested = env_name () in
  match find requested with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "ALADDIN_SOLVER=%s: unknown solver (known: %s)"
           requested
           (String.concat ", " (names ())))

(* ---- built-in backends ---- *)

module Mincost_backend = struct
  let name = "mincost"

  let caps =
    { Solver_intf.min_cost = true; supports_max_flow = true; warm_start = true }

  let solve ?warm ?max_flow g ~src ~dst = Mincost.run ?warm ?max_flow g ~src ~dst
end

module Cost_scaling_backend = struct
  let name = "cost-scaling"

  let caps =
    {
      Solver_intf.min_cost = true;
      supports_max_flow = true;
      warm_start = false;
    }

  let solve ?warm:_ ?max_flow g ~src ~dst =
    Ok (Cost_scaling.run ?max_flow g ~src ~dst)
end

module Dinic_backend = struct
  let name = "dinic"

  let caps =
    {
      Solver_intf.min_cost = false;
      supports_max_flow = true;
      warm_start = false;
    }

  let solve ?warm:_ ?max_flow g ~src ~dst =
    let flow = Dinic.run ?max_flow g ~src ~dst in
    Ok { Mincost.flow; cost = flow_cost g; iterations = 0 }
end

module Push_relabel_backend = struct
  let name = "push-relabel"

  let caps =
    {
      Solver_intf.min_cost = false;
      supports_max_flow = false;
      warm_start = false;
    }

  let solve ?warm:_ ?max_flow:_ g ~src ~dst =
    let flow = Push_relabel.run g ~src ~dst in
    Ok { Mincost.flow; cost = flow_cost g; iterations = 0 }
end

let () =
  register (module Mincost_backend);
  register (module Cost_scaling_backend);
  register (module Dinic_backend);
  register (module Push_relabel_backend)
