let infinite = max_int
let is_inf d = d = max_int

let add a b =
  if a = max_int || b = max_int then max_int
  else if b >= 0 then begin
    let s = a + b in
    if s < a then max_int else s
  end
  else begin
    let s = a + b in
    if s > a then min_int else s
  end
