(** Mutable directed flow network stored in a flat arc arena.

    Every call to {!add_arc} creates a forward arc and its residual twin
    (capacity 0, negated cost) at consecutive ids, so [arc_id lxor 1] is
    always the reverse arc. All max-flow / min-cost solvers in this library
    operate on this representation. *)

type t

val create : ?arc_hint:int -> int -> t
(** [create n] makes a network with vertices [0 .. n-1] and no arcs.
    [arc_hint] preallocates the arc arena. *)

val n_vertices : t -> int

val n_arcs : t -> int
(** Number of stored arcs, residual twins included. *)

val add_arc : t -> src:int -> dst:int -> cap:int -> cost:int -> int
(** Adds a forward arc and its residual twin; returns the forward arc id.
    @raise Invalid_argument on negative capacity or out-of-range vertex. *)

val src : t -> int -> int
val dst : t -> int -> int
val capacity : t -> int -> int
val cost : t -> int -> int
val flow : t -> int -> int
(** Flow on a forward arc; on a residual twin this is the negated flow. *)

val residual : t -> int -> int
(** Remaining capacity [capacity - flow] of an arc (twin included). *)

val push : t -> int -> int -> unit
(** [push g arc d] adds [d] units along [arc] and removes them from its twin.
    @raise Invalid_argument if [d] exceeds the residual capacity. *)

val set_capacity : t -> int -> int -> unit
(** Replace the capacity of an arc (used by incremental schedulers).
    @raise Invalid_argument if below the current flow. *)

val set_cost : t -> int -> int -> unit
(** Replace the cost of a forward arc (its twin gets the negated cost).
    @raise Invalid_argument on a twin arc id. *)

val reset_flows : t -> unit
(** Zero all flows, keeping the topology. *)

val mark : t -> int
(** Checkpoint of the arc arena (the current arc count), for {!truncate}. *)

val truncate : t -> int -> unit
(** [truncate g m] removes every arc added after the {!mark} [m], restoring
    the adjacency lists exactly. Flows on the removed arcs are discarded;
    flows on surviving arcs are untouched. Used by incremental schedulers to
    reuse the static tier of a network across batches.
    @raise Invalid_argument if [m] is not a twin-aligned mark in range. *)

val rev : int -> int
(** Residual twin id of an arc. *)

val is_forward : int -> bool
(** Whether an arc id denotes a forward (user-created) arc. *)

val iter_out : t -> int -> (int -> unit) -> unit
(** Iterate the ids of arcs leaving a vertex (twins included). *)

val fold_out : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val out_degree : t -> int -> int

val outflow : t -> int -> int
(** Net flow leaving a vertex on forward arcs minus flow entering it. *)

val pp : Format.formatter -> t -> unit
