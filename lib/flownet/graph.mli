(** Mutable directed flow network stored in a flat arc arena.

    Every call to {!add_arc} creates a forward arc and its residual twin
    (capacity 0, negated cost) at consecutive ids, so [arc_id lxor 1] is
    always the reverse arc. All max-flow / min-cost solvers in this library
    operate on this representation.

    Adjacency is a per-vertex singly-linked list by default; {!freeze}
    additionally builds a contiguous CSR view ({!first_out}/{!arc_of})
    that solver hot loops iterate instead, trading one O(V+E) counting
    sort per batch for cache-local adjacency scans across every solve
    round. Topology changes ({!add_arc}, {!truncate}) invalidate the
    view; flow/capacity/cost updates preserve it. *)

type t

val create : ?arc_hint:int -> int -> t
(** [create n] makes a network with vertices [0 .. n-1] and no arcs.
    [arc_hint] preallocates the arc arena. *)

val n_vertices : t -> int

val n_arcs : t -> int
(** Number of stored arcs, residual twins included. *)

val add_arc : t -> src:int -> dst:int -> cap:int -> cost:int -> int
(** Adds a forward arc and its residual twin; returns the forward arc id.
    @raise Invalid_argument on negative capacity or out-of-range vertex. *)

val src : t -> int -> int
val dst : t -> int -> int
val capacity : t -> int -> int
val cost : t -> int -> int
val flow : t -> int -> int
(** Flow on a forward arc; on a residual twin this is the negated flow. *)

val residual : t -> int -> int
(** Remaining capacity [capacity - flow] of an arc (twin included). *)

val push : t -> int -> int -> unit
(** [push g arc d] adds [d] units along [arc] and removes them from its twin.
    @raise Invalid_argument if [d] exceeds the residual capacity. *)

val set_capacity : t -> int -> int -> unit
(** Replace the capacity of an arc (used by incremental schedulers).
    @raise Invalid_argument if below the current flow. *)

val set_cost : t -> int -> int -> unit
(** Replace the cost of a forward arc (its twin gets the negated cost).
    @raise Invalid_argument on a twin arc id. *)

val reset_flows : t -> unit
(** Zero all flows, keeping the topology. Costs O(arcs pushed since the
    last reset) — the graph tracks which twin pairs went dirty — falling
    back to one pass over the arena when most of it was touched. *)

val max_cost : t -> int
(** Upper bound on [abs (cost arc)] over every arc ever stored (monotone —
    not lowered by {!set_cost} or {!truncate}). Used to pick the Dijkstra
    priority-queue implementation: small bounded costs admit a Dial bucket
    queue. *)

val mark : t -> int
(** Checkpoint of the arc arena (the current arc count), for {!truncate}. *)

val truncate : t -> int -> unit
(** [truncate g m] removes every arc added after the {!mark} [m], restoring
    the adjacency lists exactly. Flows on the removed arcs are discarded;
    flows on surviving arcs are untouched. Used by incremental schedulers to
    reuse the static tier of a network across batches. Invalidates any
    frozen CSR view (it may reference the removed arcs).
    @raise Invalid_argument if [m] is not a twin-aligned mark in range. *)

(** {2 Frozen CSR view} *)

val freeze : t -> unit
(** Build (or refresh) the contiguous CSR adjacency view: one counting
    sort over the arc arena, into unboxed {!Ia.t} buffers owned by the
    graph and reused across freezes — a re-freeze allocates nothing once
    the buffers fit. Idempotent — a no-op when the view is already
    current — so solvers call it unconditionally at entry and only the
    first solve after a topology change pays. While frozen, {!iter_out}
    and {!fold_out} walk the CSR arrays; per-vertex arc order becomes
    insertion order (oldest arc first) instead of the linked list's
    newest-first. *)

val frozen : t -> bool
(** Whether the CSR view is current (built and not invalidated since). *)

val first_out : t -> Ia.t
(** Frozen view: prefix offsets into {!arc_of}; vertex [v]'s out-arcs
    occupy indices [(first_out g).{v} .. (first_out g).{v+1} - 1]. The
    returned vector is live, may be longer than [n_vertices + 1] (only the
    first [n_vertices + 1] cells are meaningful), must not be mutated, and
    is only valid until the next topology change.
    @raise Invalid_argument if the graph is not frozen. *)

val arc_of : t -> Ia.t
(** Frozen view: arc ids grouped by source vertex (see {!first_out}).
    Same aliasing, length and validity caveats.
    @raise Invalid_argument if the graph is not frozen. *)

val rev : int -> int
(** Residual twin id of an arc. *)

val is_forward : int -> bool
(** Whether an arc id denotes a forward (user-created) arc. *)

val iter_out : t -> int -> (int -> unit) -> unit
(** Iterate the ids of arcs leaving a vertex (twins included). *)

val fold_out : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val out_degree : t -> int -> int

val outflow : t -> int -> int
(** Net flow leaving a vertex on forward arcs minus flow entering it. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump: header (vertex/arc counts and frozen/dirty state
    of the CSR view) followed by one line per forward arc. *)
