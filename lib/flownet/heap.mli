(** Binary min-heap over [(key : int, value : int)] pairs, used by the
    Dijkstra-with-potentials solver. Keys are priorities; smaller pops first. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val size : t -> int
val push : t -> key:int -> value:int -> unit
val pop_min : t -> (int * int) option
(** Pops the pair with the smallest key, as [(key, value)]. *)

val pop : t -> bool
(** Allocation-free pop: [true] when an entry was popped, its key and value
    then readable through {!last_key}/{!last_value} until the next pop. The
    solver inner loops use this instead of {!pop_min} to stay garbage-free. *)

val last_key : t -> int
val last_value : t -> int

val clear : t -> unit
