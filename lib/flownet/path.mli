(** Augmenting-path bookkeeping shared by the search algorithms. *)

type t = {
  arcs : int list;  (** arc ids from source to destination, in order *)
  bottleneck : int; (** min residual capacity along the path *)
}

val of_parents : Graph.t -> parent:Ia.t -> src:int -> dst:int -> t option
(** Rebuild the path recorded in a parent-arc vector (parent.{v} is the arc
    that reached [v], or -1). Returns [None] when [dst] was not reached. *)

val augment : Graph.t -> t -> int -> unit
(** Push [d] units along the path. @raise Invalid_argument if [d] exceeds
    the bottleneck. *)

val cost : Graph.t -> t -> int
(** Total arc cost of the path. *)

val vertices : Graph.t -> t -> int list
(** Vertices visited, source first. Empty path yields []. *)
