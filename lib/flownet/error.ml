type t =
  | Negative_cycle of int list
  | Invalid_potential of string
  | Solver_fault of string
  | Deadline_exceeded of string

let to_string = function
  | Negative_cycle arcs ->
      Printf.sprintf "negative cycle in residual graph (%d arcs: %s)"
        (List.length arcs)
        (String.concat "," (List.map string_of_int arcs))
  | Invalid_potential msg -> "invalid potentials: " ^ msg
  | Solver_fault msg -> "solver fault: " ^ msg
  | Deadline_exceeded site -> "deadline exceeded at " ^ site
