let bfs_parents ?(admit = fun _ -> true) g ~src ~dst =
  Graph.freeze g;
  let n = Graph.n_vertices g in
  let first = Graph.first_out g and arcs = Graph.arc_of g in
  let parent = Ia.create ~fill:(-1) n in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.push src q;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    for i = first.{u} to first.{u + 1} - 1 do
      let a = arcs.{i} in
      if (not !found) && Graph.residual g a > 0 && admit a then begin
        let v = Graph.dst g a in
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.{v} <- a;
          if v = dst then found := true else Queue.push v q
        end
      end
    done
  done;
  if !found then Some parent else None

let bfs_path ?admit g ~src ~dst =
  match bfs_parents ?admit g ~src ~dst with
  | None -> None
  | Some parent -> Path.of_parents g ~parent ~src ~dst

let run ?admit ?(max_flow = max_int) g ~src ~dst =
  let total = ref 0 in
  let continue = ref (max_flow > 0) in
  while !continue do
    match bfs_path ?admit g ~src ~dst with
    | None -> continue := false
    | Some p ->
        let d = min p.Path.bottleneck (max_flow - !total) in
        Path.augment g p d;
        total := !total + d;
        if !total >= max_flow then continue := false
  done;
  !total

let min_cut g ~src =
  Graph.freeze g;
  let n = Graph.n_vertices g in
  let first = Graph.first_out g and arcs = Graph.arc_of g in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for i = first.{u} to first.{u + 1} - 1 do
      let a = arcs.{i} in
      if Graph.residual g a > 0 then begin
        let v = Graph.dst g a in
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end
      end
    done
  done;
  seen
