(* Dial's bucket queue: a circular array of buckets over a power-of-two key
   span, for monotone Dijkstra with small integer reduced costs.

   Invariant: every stored key lies in [cur, cur + span). Bucket
   [key land mask] then holds exactly one absolute key value, so extraction
   is a forward scan of the cursor and every operation is O(1) amortised.
   Each vertex appears at most once (decrease-key moves it between buckets
   via an intrusive doubly-linked list), so the structure needs no per-entry
   allocation: three unboxed vectors indexed by vertex, one by bucket.

   When an insert lands beyond the span, the span doubles (rebucketing the
   live entries) up to [max_span]; past that the caller must fall back to a
   comparison heap — [insert] returns [false] to signal it. *)

type t = {
  mutable bucket : Ia.t;   (* head vertex per bucket, -1 = empty *)
  mutable nxt : Ia.t;      (* per vertex: next in same bucket, -1 ends *)
  mutable prv : Ia.t;      (* per vertex: previous in same bucket, -1 = head *)
  mutable key_of : Ia.t;   (* per vertex: stored key, -1 = absent *)
  mutable span : int;      (* power of two *)
  mutable cur : int;       (* extraction cursor (smallest possible key) *)
  mutable count : int;
  max_span : int;
  (* last popped entry, for the allocation-free [pop] protocol *)
  mutable last_key : int;
  mutable last_value : int;
}

let default_max_span = 1 lsl 18

let rec pow2_at_least v x = if x >= v then x else pow2_at_least v (2 * x)

let create ?(max_span = default_max_span) ?(span_hint = 256) () =
  let span = min max_span (pow2_at_least (max 2 span_hint) 2) in
  {
    bucket = Ia.create ~fill:(-1) span;
    nxt = Ia.empty;
    prv = Ia.empty;
    key_of = Ia.empty;
    span;
    cur = 0;
    count = 0;
    max_span;
    last_key = 0;
    last_value = 0;
  }

let size t = t.count
let is_empty t = t.count = 0

(* Reset for a fresh run over up to [n] vertices starting at key
   [start_key]. The vertex vectors are cleared lazily by the caller's
   footprint discipline: [clear_vertex] below undoes one vertex. Bucket
   heads are only dirty where entries remain, and a finished Dijkstra run
   drains the queue, so a full bucket wipe is needed only after an
   abandoned run. *)
let prepare t n ~start_key =
  if t.count > 0 then Ia.fill_range t.bucket 0 (Ia.length t.bucket) (-1);
  t.count <- 0;
  t.cur <- start_key;
  t.nxt <- Ia.ensure t.nxt n ~fill:(-1);
  t.prv <- Ia.ensure t.prv n ~fill:(-1);
  t.key_of <- Ia.ensure t.key_of n ~fill:(-1)

let clear_vertex t v =
  if v < Ia.length t.key_of then begin
    t.key_of.{v} <- -1;
    t.nxt.{v} <- -1;
    t.prv.{v} <- -1
  end

let unlink t v =
  let mask = t.span - 1 in
  let p = t.prv.{v} and nx = t.nxt.{v} in
  (if p >= 0 then t.nxt.{p} <- nx
   else t.bucket.{t.key_of.{v} land mask} <- nx);
  if nx >= 0 then t.prv.{nx} <- p;
  t.nxt.{v} <- -1;
  t.prv.{v} <- -1

let link t v key =
  let b = key land (t.span - 1) in
  let h = t.bucket.{b} in
  t.nxt.{v} <- h;
  t.prv.{v} <- -1;
  if h >= 0 then t.prv.{h} <- v;
  t.bucket.{b} <- v;
  t.key_of.{v} <- key

(* Double the span, redistributing live entries. O(old span + count). *)
let grow t =
  let old_span = t.span in
  let old_bucket = t.bucket in
  t.span <- 2 * old_span;
  t.bucket <- Ia.create ~fill:(-1) t.span;
  for b = 0 to old_span - 1 do
    let v = ref old_bucket.{b} in
    while !v >= 0 do
      let next = t.nxt.{!v} in
      link t !v t.key_of.{!v};
      v := next
    done
  done

(* [insert t v key]: add vertex [v] with [key], or lower its key if already
   present (keys never increase in a monotone Dijkstra). Returns [false]
   when the key span would exceed [max_span] — the caller then migrates to
   a heap via [drain]. *)
let insert t v key =
  if key < t.cur then invalid_arg "Dial.insert: key below cursor";
  if key - t.cur >= t.max_span then false
  else begin
    while key - t.cur >= t.span do
      grow t
    done;
    if t.key_of.{v} >= 0 then begin
      unlink t v;
      t.count <- t.count - 1
    end;
    link t v key;
    t.count <- t.count + 1;
    true
  end

(* Smallest-key entry, advancing the cursor; lands in
   [last_key]/[last_value] so the Dijkstra inner loop pops without
   creating garbage. *)
let pop t =
  if t.count = 0 then false
  else begin
    let mask = t.span - 1 in
    while t.bucket.{t.cur land mask} < 0 do
      t.cur <- t.cur + 1
    done;
    let v = t.bucket.{t.cur land mask} in
    unlink t v;
    t.last_key <- t.key_of.{v};
    t.last_value <- v;
    t.key_of.{v} <- -1;
    t.count <- t.count - 1;
    true
  end

let last_key t = t.last_key
let last_value t = t.last_value
let pop_min t = if pop t then Some (t.last_key, t.last_value) else None

(* Hand every remaining entry to [f key vertex] and empty the queue, for
   the span-overflow migration path. *)
let drain t f =
  while pop t do
    f t.last_key t.last_value
  done
