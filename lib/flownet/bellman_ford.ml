type result = { dist : Ia.t; parent : Ia.t; negative_cycle : bool }

let run g ~src =
  let n = Graph.n_vertices g in
  let m = Graph.n_arcs g in
  let dist = Ia.create ~fill:max_int n in
  let parent = Ia.create ~fill:(-1) n in
  dist.{src} <- 0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    for a = 0 to m - 1 do
      if Graph.residual g a > 0 then begin
        let u = Graph.src g a in
        if dist.{u} <> max_int then begin
          let v = Graph.dst g a in
          let nd = Inf.add dist.{u} (Graph.cost g a) in
          if nd < dist.{v} then begin
            dist.{v} <- nd;
            parent.{v} <- a;
            changed := true
          end
        end
      end
    done
  done;
  (* One more pass: any further relaxation proves a negative cycle. *)
  let negative_cycle = ref false in
  for a = 0 to m - 1 do
    if Graph.residual g a > 0 then begin
      let u = Graph.src g a in
      if dist.{u} <> max_int
         && Inf.add dist.{u} (Graph.cost g a) < dist.{Graph.dst g a}
      then negative_cycle := true
    end
  done;
  { dist; parent; negative_cycle = !negative_cycle }
