(** Goldberg–Tarjan cost-scaling minimum-cost maximum flow — the algorithm
    family the real Firmament solver (cs2/flowlessly) uses. Computes a max
    flow first (Dinic), then refines it to optimality through ε-scaling
    push/relabel phases on the residual network.

    Property-tested against {!Mincost} (successive shortest paths): both
    are exact, so total costs agree. Asymptotically O(V²·E·log(V·C)),
    which beats SSP when many augmenting paths would be needed. *)

val run :
  ?deadline:Deadline.t -> ?max_flow:int -> Graph.t -> src:int -> dst:int -> Mincost.stats
(** Returns flow value, optimal total cost, and the number of refine
    phases in [iterations]. Flows are recorded in the graph. With
    [max_flow] the initial Dinic run is capped at that value and the
    scaling phases then optimise the cost of that smaller flow — still
    exact, since a flow of value F is min-cost iff no negative-cost
    residual cycle remains.

    Refine phases and the excess-drain loop tick [deadline] (or the
    ambient {!Deadline}) cooperatively.
    @raise Deadline.Expired on budget exhaustion, leaving a partially
    refined (possibly non-conserving) flow on the graph; reset or rebuild
    before reuse. The registry converts this to the typed
    [Error.Deadline_exceeded]. *)
