type stats = { flow : int; cost : int; iterations : int }

type warm = {
  mutable potential : int array;
  mutable prevalidated : bool;
  ws : Dijkstra.workspace;
}

let warm_create () =
  { potential = [||]; prevalidated = false; ws = Dijkstra.workspace () }

let c_bootstraps = Obs.counter "mincost.spfa_bootstraps"
let c_warm_hits = Obs.counter "mincost.warm_hits"
let c_warm_misses = Obs.counter "mincost.warm_misses"
let c_paths = Obs.counter "mincost.augmenting_paths"
let c_dijkstra = Obs.counter "mincost.dijkstra_runs"
let c_errors = Obs.counter "mincost.errors"

(* The Dijkstra phases only ever explore the residual subgraph reachable
   from [src], and pushing flow can only shrink that region (reverse arcs
   appear between already-reached vertices) — so nonnegative reduced cost
   need only hold there. Arcs stranded beyond the reachable frontier (e.g.
   negative-cost arcs between vertices the source cannot feed) are
   irrelevant and must not invalidate a warm start. *)
let potential_valid g ~src potential =
  let n = Graph.n_vertices g in
  if Array.length potential <> n then false
  else begin
    let first = Graph.first_out g and arcs = Graph.arc_of g in
    let seen = Array.make n false in
    seen.(src) <- true;
    let stack = ref [ src ] in
    let ok = ref true in
    while !ok && !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
          stack := rest;
          for i = first.(u) to first.(u + 1) - 1 do
            let a = arcs.(i) in
            if !ok && Graph.residual g a > 0 then begin
              let v = Graph.dst g a in
              if
                Inf.add (Inf.add (Graph.cost g a) potential.(u))
                  (-potential.(v))
                < 0
              then ok := false
              else if not seen.(v) then begin
                seen.(v) <- true;
                stack := v :: !stack
              end
            end
          done
    done;
    !ok
  end

let solve ?warm ~dl ~max_flow g ~src ~dst =
  let n = Graph.n_vertices g in
  Graph.freeze g;
  (* One Dijkstra workspace for the whole augmentation loop (carried across
     solves when warm), so each phase pays for the region it explores
     rather than O(vertices) of allocation and initialisation. *)
  let ws =
    match warm with Some w -> w.ws | None -> Dijkstra.workspace ()
  in
  let potential = Array.make n 0 in
  let total_flow = ref 0 in
  let total_cost = ref 0 in
  let iterations = ref 0 in
  let continue = ref (max_flow > 0) in
  let error = ref None in
  let warm_ok =
    match warm with
    | Some w
      when Array.length w.potential = n
           && (w.prevalidated || potential_valid g ~src w.potential) ->
        (* [prevalidated] is a one-shot promise from a caller that maintains
           validity by construction (the incremental projection checks the
           arcs it edits); it spares the O(arcs) scan. *)
        w.prevalidated <- false;
        Array.blit w.potential 0 potential 0 n;
        true
    | Some w ->
        w.prevalidated <- false;
        Obs.incr c_warm_misses;
        false
    | None -> false
  in
  if warm_ok then Obs.incr c_warm_hits
  else begin
    (* Initial potentials via SPFA, valid with negative arc costs. *)
    Obs.incr c_bootstraps;
    match Spfa.run ?deadline:dl g ~src with
    | Error e ->
        error := Some e;
        continue := false
    | Ok first ->
        Array.blit first.Spfa.dist 0 potential 0 n;
        (* Unreachable vertices never sit on an augmenting path, so any finite
           potential works for the solve itself. Using the largest finite
           distance (rather than 0) additionally makes every arc *out of* the
           unreachable region keep a nonnegative reduced cost when arc costs
           are themselves nonnegative — no residual arc enters that region, so
           with this fill the carried potentials stay valid arc-by-arc, which
           is what lets the incremental projection revalidate in O(changed). *)
        let dmax = ref 0 in
        for v = 0 to n - 1 do
          if potential.(v) <> max_int && potential.(v) > !dmax then
            dmax := potential.(v)
        done;
        for v = 0 to n - 1 do
          if potential.(v) = max_int then potential.(v) <- !dmax
        done;
        (* Carry the bootstrap potentials — not the post-augmentation ones —
           into the warm state: once flows are reset for the next solve,
           saturated arcs become residual again and only the all-flows-zero
           potentials are sure to keep their reduced costs nonnegative. *)
        (match warm with
        | Some w -> w.potential <- Array.copy potential
        | None -> ());
        continue := !continue && first.Spfa.dist.(dst) <> max_int;
        (* The first augmentation reuses the SPFA tree directly. *)
        if !continue then
          match Path.of_parents g ~parent:first.Spfa.parent ~src ~dst with
          | None -> continue := false
          | Some p ->
              let d = min p.Path.bottleneck (max_flow - !total_flow) in
              Path.augment g p d;
              total_flow := !total_flow + d;
              total_cost := !total_cost + (d * Path.cost g p);
              incr iterations
  end;
  while !continue && !total_flow < max_flow do
    Deadline.tick_opt dl "mincost.augment";
    Obs.incr c_dijkstra;
    match Dijkstra.run ~ws ~stop_at:dst ?deadline:dl g ~src ~potential with
    | exception Invalid_argument msg ->
        (* Carried potentials turned out stale mid-solve (a bad
           [prevalidated] promise or a mutated graph). Surface it as a
           typed error; the scheduler layer falls back to a cold solve. *)
        error := Some (Error.Invalid_potential msg);
        continue := false
    | { Dijkstra.dist; parent } ->
        if dist.(dst) = max_int then continue := false
        else begin
          (* The search stops once [dst] settles, so unsettled vertices carry a
             tentative label >= dist(dst) (or max_int). Capping the update at
             dist(dst) keeps every residual reduced cost nonnegative — the
             LEMON-style bound: settled->unsettled arcs gain dist(u) - dist(dst)
             <= 0 slack on top of the triangle inequality, unsettled pairs are
             shifted uniformly — while sparing the full-graph scan. *)
          let d_dst = dist.(dst) in
          for v = 0 to n - 1 do
            potential.(v) <- Inf.add potential.(v) (min dist.(v) d_dst)
          done;
          match Path.of_parents g ~parent ~src ~dst with
          | None -> continue := false
          | Some p ->
              let d = min p.Path.bottleneck (max_flow - !total_flow) in
              Path.augment g p d;
              total_flow := !total_flow + d;
              total_cost := !total_cost + (d * Path.cost g p);
              incr iterations
        end
  done;
  Obs.add c_paths !iterations;
  match !error with
  | Some e ->
      Obs.incr c_errors;
      Error e
  | None -> Ok { flow = !total_flow; cost = !total_cost; iterations = !iterations }

let run ?warm ?deadline ?(max_flow = max_int) g ~src ~dst =
  (* An explicit [deadline] keeps this a Result API: its expiry anywhere in
     the solve (SPFA bootstrap, a Dijkstra phase, the augmentation loop)
     comes back as the typed [Deadline_exceeded]. An *ambient* deadline
     (armed by scheduler middleware) instead propagates as
     {!Deadline.Expired} so the middleware can catch it batch-wide and
     escalate down its degradation ladder. *)
  let dl = Deadline.resolve deadline in
  match solve ?warm ~dl ~max_flow g ~src ~dst with
  | r -> r
  | exception Deadline.Expired { site; deadline = d }
    when (match deadline with Some d' -> d' == d | None -> false) ->
      Obs.incr c_errors;
      Error (Error.Deadline_exceeded site)
