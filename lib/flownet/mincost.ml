(* Successive shortest paths in primal-dual (blocking-flow) form.

   Classic SSP runs one Dijkstra per augmenting path. Here each Dijkstra
   phase instead ends with a Dinic-style blocking flow over the subgraph of
   zero-reduced-cost residual arcs: after the potential update every arc on
   a shortest src→dst path has reduced cost exactly 0, so the blocking flow
   saturates *all* shortest paths of the current length at once and the
   next Dijkstra is only needed when the path cost strictly increases. On
   the scheduler projections — many machines sharing a price — this
   collapses dozens of per-path Dijkstras into a handful of phases.

   Every unit pushed in a phase travels a path of reduced cost 0, whose
   real cost telescopes to pot(dst) - pot(src); the phase's cost is that
   value times the units pushed, with no per-arc accumulation.

   All label vectors are unboxed {!Ia.t} buffers carried in the warm state,
   so a warm solve allocates zero words on the heap. *)

type stats = { flow : int; cost : int; iterations : int }

type warm = {
  mutable potential : Ia.t;
  mutable pot_n : int;
  mutable prevalidated : bool;
  ws : Dijkstra.workspace;
  (* Blocking-flow scratch, internal: BFS hop levels over the rc-0
     subgraph (-1 = unvisited at rest), the BFS queue ring, per-vertex CSR
     cursors for the DFS, and the solve's working potentials. *)
  mutable level : Ia.t;
  mutable queue : Ia.t;
  mutable cursor : Ia.t;
  mutable pot : Ia.t;
}

let warm_create () =
  {
    potential = Ia.empty;
    pot_n = 0;
    prevalidated = false;
    ws = Dijkstra.workspace ();
    level = Ia.empty;
    queue = Ia.empty;
    cursor = Ia.empty;
    pot = Ia.empty;
  }

let c_bootstraps = Obs.counter "mincost.spfa_bootstraps"
let c_warm_hits = Obs.counter "mincost.warm_hits"
let c_warm_misses = Obs.counter "mincost.warm_misses"
let c_paths = Obs.counter "mincost.augmenting_paths"
let c_dijkstra = Obs.counter "mincost.dijkstra_runs"
let c_phases = Obs.counter "mincost.blocking_phases"
let c_carry_refreshes = Obs.counter "mincost.carry_refreshes"
let c_errors = Obs.counter "mincost.errors"

(* The Dijkstra phases only ever explore the residual subgraph reachable
   from [src], and pushing flow can only shrink that region (reverse arcs
   appear between already-reached vertices) — so nonnegative reduced cost
   need only hold there. Arcs stranded beyond the reachable frontier (e.g.
   negative-cost arcs between vertices the source cannot feed) are
   irrelevant and must not invalidate a warm start. *)
let potential_valid g ~src (potential : Ia.t) =
  let n = Graph.n_vertices g in
  if Ia.length potential < n then false
  else begin
    let first = Graph.first_out g and arcs = Graph.arc_of g in
    let seen = Array.make n false in
    seen.(src) <- true;
    let stack = ref [ src ] in
    let ok = ref true in
    while !ok && !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
          stack := rest;
          for i = first.{u} to first.{u + 1} - 1 do
            let a = arcs.{i} in
            if !ok && Graph.residual g a > 0 then begin
              let v = Graph.dst g a in
              if
                Inf.add (Inf.add (Graph.cost g a) potential.{u})
                  (-potential.{v})
                < 0
              then ok := false
              else if not seen.(v) then begin
                seen.(v) <- true;
                stack := v :: !stack
              end
            end
          done
    done;
    !ok
  end

let ensure_scratch w n =
  w.level <- Ia.ensure w.level n ~fill:(-1);
  w.queue <- Ia.ensure w.queue n ~fill:0;
  w.cursor <- Ia.ensure w.cursor n ~fill:0;
  w.pot <- Ia.ensure w.pot n ~fill:0

(* BFS levels over residual arcs with zero reduced cost. Fills [w.level]
   and [w.cursor] for the visited region, records it in [w.queue], and
   returns the number of vertices visited — or 0 when [dst] is
   unreachable in the rc-0 subgraph (levels already reset). *)
let rc0_levels w ~dl g first arcs ~src ~dst =
  let pot = w.pot and level = w.level and queue = w.queue in
  level.{src} <- 0;
  w.cursor.{src} <- first.{src};
  queue.{0} <- src;
  let qn = ref 1 in
  let qh = ref 0 in
  let dst_level = ref max_int in
  while !qh < !qn do
    Deadline.tick_opt dl "mincost.levels";
    let u = queue.{!qh} in
    incr qh;
    (* No path through a vertex at dst's level or deeper can reach dst
       strictly level-by-level, so stop expanding there. *)
    if level.{u} < !dst_level then
      for i = first.{u} to first.{u + 1} - 1 do
        let a = arcs.{i} in
        if Graph.residual g a > 0 then begin
          let v = Graph.dst g a in
          if
            level.{v} < 0
            && Inf.add (Inf.add (Graph.cost g a) pot.{u}) (-pot.{v}) = 0
          then begin
            level.{v} <- level.{u} + 1;
            w.cursor.{v} <- first.{v};
            queue.{!qn} <- v;
            incr qn;
            if v = dst then dst_level := level.{v}
          end
        end
      done
  done;
  if !dst_level = max_int then begin
    for i = 0 to !qn - 1 do
      level.{queue.{i}} <- -1
    done;
    0
  end
  else !qn

let reset_levels w visited =
  for i = 0 to visited - 1 do
    w.level.{w.queue.{i}} <- -1
  done

(* Dinic-style blocking flow over the level graph of the rc-0 subgraph:
   per-vertex CSR cursors guarantee each arc is abandoned at most once per
   phase. Recursion depth is the level of [dst]. *)
let blocking_flow w ~dl g first arcs ~src ~dst budget =
  let pot = w.pot and level = w.level and cursor = w.cursor in
  let rec dfs u budget =
    if u = dst then begin
      Obs.incr c_paths;
      budget
    end
    else begin
      let sent = ref 0 in
      let continue = ref true in
      while !continue do
        Deadline.tick_opt dl "mincost.blocking_flow";
        if cursor.{u} >= first.{u + 1} then continue := false
        else begin
          let a = arcs.{cursor.{u}} in
          let v = Graph.dst g a in
          let r = Graph.residual g a in
          if
            r > 0
            && level.{v} = level.{u} + 1
            && Inf.add (Inf.add (Graph.cost g a) pot.{u}) (-pot.{v}) = 0
          then begin
            let d = dfs v (min (budget - !sent) r) in
            if d > 0 then begin
              Graph.push g a d;
              sent := !sent + d;
              if !sent = budget then continue := false
            end
            else cursor.{u} <- cursor.{u} + 1
          end
          else cursor.{u} <- cursor.{u} + 1
        end
      done;
      !sent
    end
  in
  dfs src budget

let solve ?warm ~dl ~max_flow g ~src ~dst =
  let n = Graph.n_vertices g in
  Graph.freeze g;
  let first = Graph.first_out g and arcs = Graph.arc_of g in
  let is_warm = warm <> None in
  (* Cold solves use a throwaway warm record purely as a scratch holder;
     only a caller-supplied one carries potentials to the next solve. *)
  let w = match warm with Some w -> w | None -> warm_create () in
  ensure_scratch w n;
  let pot = w.pot in
  let total_flow = ref 0 in
  let total_cost = ref 0 in
  let iterations = ref 0 in
  let continue = ref (max_flow > 0) in
  let error = ref None in
  let warm_ok =
    is_warm && w.pot_n = n
    && (w.prevalidated || potential_valid g ~src w.potential)
  in
  w.prevalidated <- false;
  (* Refresh the carried potentials from the first Dijkstra phase — but
     only while no flow has been pushed yet: phase-1 potentials describe
     the graph in its entry (all-reset) state, exactly what the next
     batch's zero-flow solve starts from. Without this the carried vector
     is only ever the original SPFA bootstrap and goes staler every batch,
     which is precisely the work the warm path was redoing. *)
  let carry_refresh = ref warm_ok in
  if warm_ok then begin
    Obs.incr c_warm_hits;
    Ia.blit w.potential 0 pot 0 n
  end
  else begin
    if is_warm then Obs.incr c_warm_misses;
    (* Initial potentials via SPFA, valid with negative arc costs. *)
    Obs.incr c_bootstraps;
    match Spfa.run ?deadline:dl g ~src with
    | Error e ->
        error := Some e;
        continue := false
    | Ok bootstrap ->
        Ia.blit bootstrap.Spfa.dist 0 pot 0 n;
        (* Unreachable vertices never sit on an augmenting path, so any finite
           potential works for the solve itself. Using the largest finite
           distance (rather than 0) additionally makes every arc *out of* the
           unreachable region keep a nonnegative reduced cost when arc costs
           are themselves nonnegative — no residual arc enters that region, so
           with this fill the carried potentials stay valid arc-by-arc, which
           is what lets the incremental projection revalidate in O(changed). *)
        let dmax = ref 0 in
        for v = 0 to n - 1 do
          if pot.{v} <> max_int && pot.{v} > !dmax then dmax := pot.{v}
        done;
        for v = 0 to n - 1 do
          if pot.{v} = max_int then pot.{v} <- !dmax
        done;
        (* Carry the bootstrap potentials — exact for the entry state. *)
        if is_warm then begin
          w.potential <- Ia.ensure w.potential n ~fill:0;
          Ia.blit pot 0 w.potential 0 n;
          w.pot_n <- n
        end;
        continue := !continue && bootstrap.Spfa.dist.{dst} <> max_int
  end;
  while !continue && !total_flow < max_flow do
    Deadline.tick_opt dl "mincost.augment";
    (* Saturate every remaining shortest path of the current cost in one
       blocking phase; Dijkstra runs only when none is left. *)
    let visited = rc0_levels w ~dl g first arcs ~src ~dst in
    if visited > 0 then begin
      Obs.incr c_phases;
      incr iterations;
      let pushed = blocking_flow w ~dl g first arcs ~src ~dst (max_flow - !total_flow) in
      reset_levels w visited;
      if pushed = 0 then
        (* A reachable level graph always admits >= 1 unit; stop rather
           than spin if an invariant ever breaks. *)
        continue := false
      else begin
        total_flow := !total_flow + pushed;
        (* Every rc-0 path's real cost telescopes to pot(dst) - pot(src). *)
        total_cost := !total_cost + (pushed * (pot.{dst} - pot.{src}))
      end
    end
    else begin
      match
        Dijkstra.run_ws w.ws ~stop_at:dst ?deadline:dl g ~src ~potential:pot
      with
      | exception Invalid_argument msg ->
          (* Carried potentials turned out stale mid-solve (a bad
             [prevalidated] promise or a mutated graph). Surface it as a
             typed error; the scheduler layer falls back to a cold solve. *)
          error := Some (Error.Invalid_potential msg);
          continue := false
      | d_dst ->
          Obs.incr c_dijkstra;
          if d_dst = max_int || d_dst <= 0 then
            (* Unreachable — or a zero-cost path the rc-0 BFS just said
               does not exist, which a sound graph cannot produce; stop
               defensively instead of looping. *)
            continue := false
          else begin
            Dijkstra.relax_potentials w.ws ~potential:pot ~d_dst;
            if !carry_refresh && !total_flow = 0 then begin
              Obs.incr c_carry_refreshes;
              Ia.blit pot 0 w.potential 0 n
            end;
            carry_refresh := false
          end
    end
  done;
  match !error with
  | Some e ->
      Obs.incr c_errors;
      Error e
  | None -> Ok { flow = !total_flow; cost = !total_cost; iterations = !iterations }

let run ?warm ?deadline ?(max_flow = max_int) g ~src ~dst =
  (* An explicit [deadline] keeps this a Result API: its expiry anywhere in
     the solve (SPFA bootstrap, a Dijkstra phase, the blocking flow)
     comes back as the typed [Deadline_exceeded]. An *ambient* deadline
     (armed by scheduler middleware) instead propagates as
     {!Deadline.Expired} so the middleware can catch it batch-wide and
     escalate down its degradation ladder. *)
  let dl = Deadline.resolve deadline in
  match solve ?warm ~dl ~max_flow g ~src ~dst with
  | r -> r
  | exception Deadline.Expired { site; deadline = d }
    when (match deadline with Some d' -> d' == d | None -> false) ->
      Obs.incr c_errors;
      Error (Error.Deadline_exceeded site)
