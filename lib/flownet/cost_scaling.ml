(* Cost scaling: costs are multiplied by (n+1) so that a 1-optimal
   circulation is exactly optimal; ε starts at the largest scaled cost and
   halves each refine phase. Within refine, every residual arc with
   negative reduced cost is saturated, and the resulting excesses are
   drained FIFO push/relabel-style; conservation is restored at phase end,
   so the s→t flow value fixed by the initial max flow never changes. *)

let c_phases = Obs.counter "cost_scaling.refine_phases"
let c_saturations = Obs.counter "cost_scaling.arc_saturations"
let c_relabels = Obs.counter "cost_scaling.price_updates"

let run ?deadline ?max_flow g ~src ~dst =
  let dl = Deadline.resolve deadline in
  let n = Graph.n_vertices g in
  let m = Graph.n_arcs g in
  (* Capping the initial max flow keeps the result min-cost for that value:
     cost scaling removes every negative-cost residual cycle, and a flow of
     value F is F-optimal iff no such cycle remains. *)
  let flow_value = Dinic.run ?deadline:dl ?max_flow g ~src ~dst in
  let first = Graph.first_out g and arcs = Graph.arc_of g in
  (* scaled arc cost, valid for residual twins through Graph.cost *)
  let scale = n + 1 in
  let cost a = scale * Graph.cost g a in
  let price = Array.make n 0 in
  let reduced a = cost a + price.(Graph.src g a) - price.(Graph.dst g a) in
  let max_c =
    let mc = ref 0 in
    for a = 0 to m - 1 do
      mc := max !mc (abs (cost a))
    done;
    !mc
  in
  let excess = Array.make n 0 in
  let phases = ref 0 in
  let eps = ref max_c in
  while !eps >= 1 do
    incr phases;
    Obs.incr c_phases;
    (* Refine phases are coarse, so sample the wall clock unconditionally
       here; the drain loop below ticks at the usual granularity. *)
    (match dl with
    | Some d -> Deadline.check_now d "cost_scaling.refine"
    | None -> ());
    (* saturate every admissible (negative reduced cost) residual arc *)
    for a = 0 to m - 1 do
      let r = Graph.residual g a in
      if r > 0 && reduced a < 0 then begin
        Obs.incr c_saturations;
        Graph.push g a r;
        excess.(Graph.src g a) <- excess.(Graph.src g a) - r;
        excess.(Graph.dst g a) <- excess.(Graph.dst g a) + r
      end
    done;
    let q = Queue.create () in
    let in_q = Array.make n false in
    for v = 0 to n - 1 do
      if excess.(v) > 0 then begin
        Queue.push v q;
        in_q.(v) <- true
      end
    done;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      in_q.(v) <- false;
      let progress = ref true in
      while excess.(v) > 0 && !progress do
        Deadline.tick_opt dl "cost_scaling.discharge";
        (* push along admissible arcs *)
        for i = first.{v} to first.{v + 1} - 1 do
          let a = arcs.{i} in
          if excess.(v) > 0 && Graph.residual g a > 0 && reduced a < 0 then begin
            let d = min excess.(v) (Graph.residual g a) in
            Graph.push g a d;
            excess.(v) <- excess.(v) - d;
            let w = Graph.dst g a in
            excess.(w) <- excess.(w) + d;
            if excess.(w) > 0 && (not in_q.(w)) && w <> v then begin
              Queue.push w q;
              in_q.(w) <- true
            end
          end
        done;
        if excess.(v) > 0 then begin
          (* relabel: lower the price just enough to open an arc *)
          let best = ref min_int in
          for i = first.{v} to first.{v + 1} - 1 do
            let a = arcs.{i} in
            if Graph.residual g a > 0 then
              best := max !best (price.(Graph.dst g a) - cost a - !eps)
          done;
          if !best = min_int then progress := false
            (* isolated excess cannot happen in a connected residual; stop
               defensively rather than loop *)
          else begin
            Obs.incr c_relabels;
            price.(v) <- !best
          end
        end
      done
    done;
    eps := !eps / 2
  done;
  let total_cost =
    let c = ref 0 in
    for a = 0 to m - 1 do
      if Graph.is_forward a then c := !c + (Graph.cost g a * Graph.flow g a)
    done;
    !c
  in
  { Mincost.flow = flow_value; cost = total_cost; iterations = !phases }
