(** Dinic's maximum-flow algorithm (level graph + blocking flow), O(V²·E);
    the solver used at trace scale. *)

val run : ?max_flow:int -> Graph.t -> src:int -> dst:int -> int
(** Returns the max flow (capped at [max_flow] when given); flows are
    recorded in the graph. Freezes the graph's CSR view at entry. *)
