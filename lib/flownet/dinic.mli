(** Dinic's maximum-flow algorithm (level graph + blocking flow), O(V²·E);
    the solver used at trace scale. *)

val run : ?deadline:Deadline.t -> ?max_flow:int -> Graph.t -> src:int -> dst:int -> int
(** Returns the max flow (capped at [max_flow] when given); flows are
    recorded in the graph. Freezes the graph's CSR view at entry.

    The level-graph BFS and blocking-flow DFS tick [deadline] (or the
    ambient {!Deadline}) cooperatively.
    @raise Deadline.Expired on budget exhaustion, leaving the flow routed
    so far on the graph ([Graph.reset_flows] before reusing it). The
    registry converts this to the typed [Error.Deadline_exceeded]. *)
