(** Cooperative work/wall-clock budgets for the solver hot loops.

    A deadline is a mutable budget armed before a solve (or a whole
    scheduler batch) and ticked cooperatively from every CSR hot loop —
    SPFA relaxations, Dijkstra pops, Dinic blocking-flow steps,
    push-relabel discharges, cost-scaling refine passes. When the budget is
    exhausted the tick raises {!Expired}; solver entry points with a Result
    API convert their own deadline's expiry into the typed
    [Flownet.Error.Deadline_exceeded], while an {e ambient} (installed)
    deadline propagates as the exception so scheduler middleware can catch
    it and escalate down a degradation ladder.

    Two budget axes compose: a step count (deterministic, used by tests)
    and a wall-clock bound. The wall clock is only sampled every
    {!granularity} ticks, so a tick on the hot path is a couple of integer
    operations. Expiries are counted once per deadline under the
    [deadline.exceeded] {!Obs} counter. *)

type t

exception Expired of { site : string; deadline : t }
(** Raised by {!tick} / {!check_now} once the budget is exhausted. [site]
    names the hot loop that observed the expiry. *)

val make : ?steps:int -> ?wall_ms:float -> unit -> t
(** A fresh budget of [steps] cooperative ticks and/or [wall_ms]
    milliseconds from now (monotonic clock). Omitted axes are unbounded;
    [make ()] never expires. *)

val of_env : unit -> float option
(** [ALADDIN_DEADLINE_MS] as a positive float, if set and parseable. *)

val expired : t -> bool
(** Whether the budget was exhausted (sticky once raised). *)

val steps_used : t -> int
(** Cooperative ticks consumed so far. *)

val tick : t -> string -> unit
(** Consume one unit of work. Checks the step budget every call and the
    wall clock every {!granularity} calls (plus the very first, so a
    pre-expired deadline fires immediately).
    @raise Expired when either budget is exhausted. *)

val check_now : t -> string -> unit
(** Like {!tick} but always samples the wall clock — for coarse sites
    (a scheduler round, a refine phase) whose tick frequency is too low
    for the sampling interval to catch a tight wall deadline.
    @raise Expired when either budget is exhausted. *)

val granularity : int
(** Ticks between wall-clock samples (power of two). *)

(** {2 Ambient deadline}

    Middleware arms one deadline for a whole batch; solver loops deep in
    the call tree pick it up without every intermediate signature
    threading it. Mirrors the installed-configuration pattern of the fault
    harness. *)

val ambient : unit -> t option

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run the thunk with the deadline installed as ambient, restoring the
    previous ambient on exit (normal or exceptional) — nests safely. *)

val tick_ambient : string -> unit
(** {!tick} on the ambient deadline; no-op when none is armed. *)

val check_ambient : string -> unit
(** {!check_now} on the ambient deadline; no-op when none is armed. *)

val tick_opt : t option -> string -> unit
(** {!tick} when [Some]; no-op when [None]. For solver loops that resolved
    [explicit-param-or-ambient] once at entry. *)

val resolve : t option -> t option
(** [resolve explicit] is the deadline a solver should honour: the
    explicit one when given, the ambient one otherwise. *)
