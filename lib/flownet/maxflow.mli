(** Edmonds–Karp maximum flow (BFS augmenting paths). O(V·E²); the reference
    solver that the faster {!Dinic} implementation is property-tested
    against. *)

val bfs_path :
  ?admit:(int -> bool) -> Graph.t -> src:int -> dst:int -> Path.t option
(** One BFS over positive-residual arcs; [admit] filters arcs. *)

val run :
  ?admit:(int -> bool) -> ?max_flow:int -> Graph.t -> src:int -> dst:int -> int
(** Augments until no path remains (or the [max_flow] cap is reached);
    returns the total flow pushed. Flows are recorded in the graph. *)

val min_cut : Graph.t -> src:int -> bool array
(** After a max-flow run: vertices reachable from [src] in the residual
    graph, i.e. the source side of a minimum cut. *)
