(** Shortest-Path Faster Algorithm (queue-based Bellman–Ford) over the
    residual graph. Handles negative arc costs; the paper's Algorithm 1 is a
    constrained SPFA, and the min-cost solver uses it for the first
    potentials pass. *)

type result = {
  dist : Ia.t;    (** max_int where unreachable *)
  parent : Ia.t;  (** arc that reached each vertex, -1 if none *)
}

val run :
  ?admit:(int -> bool) ->
  ?deadline:Deadline.t ->
  Graph.t ->
  src:int ->
  (result, Error.t) Stdlib.result
(** Shortest distances from [src] over arcs with positive residual capacity.
    [admit] filters arcs (default: all); an arc is relaxed only when it has
    residual capacity and [admit arc] holds. Relaxations saturate via
    {!Inf.add}, so near-[max_int] costs cannot wrap.

    Returns [Error (Negative_cycle arcs)] when a negative-cost cycle is
    reachable from [src]; [arcs] traces the cycle (possibly [[]] if it
    could not be reconstructed). Never raises on its own — but the
    relaxation loop ticks [deadline] (or the ambient {!Deadline}) once per
    dequeued vertex, and an exhausted budget raises {!Deadline.Expired};
    Result-API callers ({!Mincost}, the registry) convert that to the
    typed [Deadline_exceeded]. *)

val shortest_path :
  ?admit:(int -> bool) ->
  ?deadline:Deadline.t ->
  Graph.t ->
  src:int ->
  dst:int ->
  (Path.t option, Error.t) Stdlib.result
(** [Ok None] when [dst] is unreachable. *)
