(** Dijkstra over the residual graph with Johnson potentials, for the
    min-cost solver's repeated shortest-path phases (all reduced costs are
    non-negative once potentials are valid). *)

type result = {
  dist : int array;    (** reduced-cost distances; max_int if unreachable *)
  parent : int array;
}

type workspace
(** Reusable label arrays + heap. A run resets only its predecessor's
    footprint, so repeated runs cost O(explored region) each instead of
    O(vertices) — the win behind the min-cost solver's augmentation loop. *)

val workspace : unit -> workspace

val run :
  ?ws:workspace ->
  ?stop_at:int ->
  ?deadline:Deadline.t ->
  Graph.t ->
  src:int ->
  potential:int array ->
  result
(** With [ws], the result arrays are owned by the workspace (they may be
    longer than the vertex count) and are invalidated by the next run that
    uses it.

    With [stop_at], the search returns as soon as that vertex settles:
    its distance and parent are exact, other entries are tentative labels
    (>= the settled distance) or [max_int]. The min-cost solver uses this
    to avoid settling the whole graph per augmentation.
    @raise Invalid_argument when a reduced cost is negative (stale
    potentials).
    @raise Deadline.Expired when [deadline] (or the ambient {!Deadline})
    runs out — ticked once per heap pop; the workspace stays reusable. *)
