(** Dijkstra over the residual graph with Johnson potentials, for the
    min-cost solver's repeated shortest-path phases (all reduced costs are
    non-negative once potentials are valid).

    Two priority queues back the search: the binary {!Heap} and a Dial's
    bucket queue ({!Dial}) that wins when reduced costs are small integers
    (the scheduler projections). {!queue_policy} selects; [Auto] decides
    per run from {!Graph.max_cost} and migrates from Dial to the heap
    mid-run if a reduced cost overflows the bucket span. The
    [ALADDIN_DIJKSTRA] environment variable ([auto] | [heap] | [dial])
    sets the initial policy. *)

type result = {
  dist : Ia.t;    (** reduced-cost distances; max_int if unreachable *)
  parent : Ia.t;
}

type queue_policy = Auto | Force_heap | Force_dial

val set_queue_policy : queue_policy -> unit
val queue_policy : unit -> queue_policy

type workspace
(** Reusable label vectors + both queues. A run resets only its
    predecessor's footprint, so repeated runs cost O(explored region) each
    instead of O(vertices) — and allocate zero words once the vectors have
    grown to the graph — the win behind the min-cost solver's phase loop. *)

val workspace : unit -> workspace

val run_ws :
  workspace ->
  ?stop_at:int ->
  ?deadline:Deadline.t ->
  Graph.t ->
  src:int ->
  potential:Ia.t ->
  int
(** Allocation-free core: runs the search, leaving labels in the
    workspace, and returns the settled distance of [stop_at] ([max_int]
    when it never settled, including when [stop_at] is [-1]). Same raising
    behaviour as {!run}. *)

val relax_potentials : workspace -> potential:Ia.t -> d_dst:int -> unit
(** Fold the last run's distances into [potential]:
    [pot(v) += dist(v) - d_dst] for every vertex settled below [d_dst].
    Equivalent (up to a uniform shift, which reduced costs ignore) to the
    classic [pot(v) += min(dist(v), d_dst)] full-vector update, but only
    touches the explored region. After it, every residual arc keeps a
    nonnegative reduced cost and arcs on shortest [src]→[stop_at] paths
    have reduced cost exactly 0. *)

val run :
  ?ws:workspace ->
  ?stop_at:int ->
  ?deadline:Deadline.t ->
  Graph.t ->
  src:int ->
  potential:Ia.t ->
  result
(** With [ws], the result vectors are owned by the workspace (they may be
    longer than the vertex count) and are invalidated by the next run that
    uses it.

    With [stop_at], the search returns as soon as that vertex settles:
    its distance and parent are exact, other entries are tentative labels
    (>= the settled distance) or [max_int]. The min-cost solver uses this
    to avoid settling the whole graph per augmentation.
    @raise Invalid_argument when a reduced cost is negative (stale
    potentials).
    @raise Deadline.Expired when [deadline] (or the ambient {!Deadline})
    runs out — ticked once per queue pop; the workspace stays reusable. *)
