type t = { arcs : int list; bottleneck : int }

let of_parents g ~(parent : Ia.t) ~src ~dst =
  if dst = src then Some { arcs = []; bottleneck = max_int }
  else if parent.{dst} < 0 then None
  else begin
    let rec walk v acc bott =
      if v = src then Some { arcs = acc; bottleneck = bott }
      else
        let a = parent.{v} in
        if a < 0 then None
        else walk (Graph.src g a) (a :: acc) (min bott (Graph.residual g a))
    in
    walk dst [] max_int
  end

let augment g p d =
  if d > p.bottleneck then invalid_arg "Path.augment: exceeds bottleneck";
  List.iter (fun a -> Graph.push g a d) p.arcs

let cost g p = List.fold_left (fun acc a -> acc + Graph.cost g a) 0 p.arcs

let vertices g p =
  match p.arcs with
  | [] -> []
  | first :: _ ->
      Graph.src g first :: List.map (fun a -> Graph.dst g a) p.arcs
