(** Common interface every registered flow-solver backend implements.

    All backends speak the {!Mincost.stats} vocabulary (flow value, total
    cost, iteration count) behind a Result so callers handle solver faults
    uniformly; {!caps} declares which parts of the contract a backend
    actually honours, letting generic harnesses (differential tests, the
    bench, schedulers) pick comparisons that are valid for that backend. *)

type caps = {
  min_cost : bool;
      (** The reported [cost] is optimal for the flow value found. Pure
          max-flow backends instead report the cost of whatever flow they
          happened to route. *)
  supports_max_flow : bool;
      (** The [?max_flow] cap is honoured. Push-relabel cannot cap safely —
          excess drained back to the source may still have been deliverable
          along other source arcs — so it ignores the cap and this is
          [false]. *)
  warm_start : bool;
      (** [?warm] state (carried potentials + Dijkstra workspace) is
          consumed and refilled; other backends ignore it. *)
}

module type S = sig
  val name : string
  (** Registry key, e.g. ["mincost"]; also the [ALADDIN_SOLVER] value. *)

  val caps : caps

  val solve :
    ?warm:Mincost.warm ->
    ?deadline:Deadline.t ->
    ?max_flow:int ->
    Graph.t ->
    src:int ->
    dst:int ->
    (Mincost.stats, Error.t) result
  (** Route flow from [src] to [dst]; flows are recorded in the graph.
      Freezes the graph's CSR view at entry. [iterations] is a
      backend-specific progress measure (augmenting paths, refine phases;
      0 when the backend does not track one).

      [?deadline] is the cooperative work/wall budget every hot loop
      ticks; its exhaustion comes back as [Error (Deadline_exceeded _)]
      (the registry wrapper guarantees the conversion even for backends
      whose inner algorithm raises {!Deadline.Expired}). The flows routed
      before expiry stay on the graph and may violate conservation —
      degrade, do not trust them. An ambient deadline (armed by scheduler
      middleware rather than passed here) instead propagates as the
      exception so the middleware can escalate. *)
end
