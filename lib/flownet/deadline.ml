type t = {
  mutable steps_left : int;
  mutable steps_used : int;
  deadline_ns : int64; (* Int64.max_int = no wall bound *)
  mutable check_in : int; (* ticks until the next wall-clock sample *)
  mutable expired_ : bool;
}

exception Expired of { site : string; deadline : t }

let granularity = 64

let c_exceeded = Obs.counter "deadline.exceeded"

let make ?steps ?wall_ms () =
  let deadline_ns =
    match wall_ms with
    | Some ms when ms >= 0. ->
        Int64.add (Obs.now_ns ()) (Int64.of_float (ms *. 1e6))
    | _ -> Int64.max_int
  in
  {
    steps_left = (match steps with Some s -> s | None -> max_int);
    steps_used = 0;
    deadline_ns;
    (* First tick samples the clock, so a deadline armed already past its
       wall bound expires on the next cooperative check rather than after
       a full sampling interval of work. *)
    check_in = 1;
    expired_ = false;
  }

let of_env () =
  match Sys.getenv_opt "ALADDIN_DEADLINE_MS" with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some ms when ms > 0. -> Some ms
      | _ -> None)
  | None -> None

let expired t = t.expired_
let steps_used t = t.steps_used

let expire t site =
  if not t.expired_ then begin
    t.expired_ <- true;
    Obs.incr c_exceeded
  end;
  raise (Expired { site; deadline = t })

let tick t site =
  t.steps_used <- t.steps_used + 1;
  if t.expired_ then expire t site;
  t.steps_left <- t.steps_left - 1;
  if t.steps_left < 0 then expire t site;
  t.check_in <- t.check_in - 1;
  if t.check_in <= 0 then begin
    t.check_in <- granularity;
    if
      t.deadline_ns <> Int64.max_int
      && Int64.compare (Obs.now_ns ()) t.deadline_ns >= 0
    then expire t site
  end

let check_now t site =
  t.check_in <- 1;
  tick t site

(* ---- ambient ---- *)

(* Per-domain: each domain gets its own ambient slot, so a coordinator
   arming a deadline on one domain never leaks it into solver loops
   running on another. Cross-domain propagation is explicit — the cells
   coordinator captures its ambient and re-arms it inside each worker
   task with [with_ambient]. *)
let installed_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let installed () = Domain.DLS.get installed_key

let ambient () = !(installed ())

let with_ambient t f =
  let slot = installed () in
  let prev = !slot in
  slot := Some t;
  Fun.protect ~finally:(fun () -> slot := prev) f

let tick_ambient site =
  match !(installed ()) with None -> () | Some t -> tick t site

let check_ambient site =
  match !(installed ()) with None -> () | Some t -> check_now t site

let tick_opt d site = match d with None -> () | Some t -> tick t site

let resolve = function Some _ as d -> d | None -> ambient ()
