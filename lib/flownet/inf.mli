(** Saturating sentinel arithmetic for shortest-path labels.

    Distance labels use [max_int] as the "unreachable" sentinel. A plain
    [dist + cost] relaxation silently wraps around once labels or costs get
    near [max_int] — a wrapped (negative) label then looks *shorter* than
    every real path and corrupts the whole labeling, or spuriously triggers
    negative-cycle detection. Every relaxation in this library goes through
    {!add} instead. *)

val infinite : int
(** The unreachable sentinel, [max_int]. *)

val is_inf : int -> bool
(** [is_inf d] is [d = max_int]. *)

val add : int -> int -> int
(** [add a b] is [a + b] with saturation: [infinite] absorbs ([add] of it
    with anything is [infinite]), positive overflow clamps to [max_int] and
    negative overflow clamps to [min_int] instead of wrapping. *)
