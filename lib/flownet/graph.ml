(* Flat arc arena with per-vertex singly-linked adjacency (head/next arrays),
   the classic competitive-programming layout: arc i and arc (i lxor 1) are
   residual twins. Dynamic arrays grow by doubling.

   On top of the linked lists sits an optional *frozen CSR view*: contiguous
   [first_out]/[arc_of] vectors built by one counting sort over the arena.
   Solvers freeze the graph once per batch and then walk adjacency as a
   dense index range instead of chasing [next_] pointers — the hot loops
   become sequential array reads. The CSR vectors are unboxed Bigarray
   buffers owned by the graph and re-sorted in place, so a re-freeze after
   an incremental batch edit allocates nothing. Any topology change (adding
   or truncating arcs) invalidates the view; flow, capacity and cost
   updates keep it. *)

type t = {
  n : int;
  mutable m : int;            (* arcs stored, twins included *)
  mutable dst_ : int array;
  mutable cap_ : int array;
  mutable cost_ : int array;
  mutable flow_ : int array;
  mutable next_ : int array;  (* next arc out of same vertex, -1 ends *)
  head : int array;           (* first arc out of vertex, -1 if none *)
  mutable src_ : int array;
  mutable csr_m : int;        (* arc count the CSR view was built at; -1 = never *)
  mutable csr_first : Ia.t;   (* n+1 prefix offsets into csr_arcs *)
  mutable csr_arcs : Ia.t;    (* arc ids grouped by source vertex *)
  mutable csr_cursor : Ia.t;  (* counting-sort scratch, reused per freeze *)
  (* Arcs whose flow went nonzero since the last [reset_flows], as twin-pair
     base ids (duplicates allowed — zeroing twice is free). Lets the reset
     cost O(arcs touched by the last solve), not O(arena). *)
  mutable dirty : int array;
  mutable n_dirty : int;
  mutable all_dirty : bool;
  mutable max_cost_ : int;    (* max |cost| ever stored (never decreases) *)
}

let c_freezes = Obs.counter "graph.freezes"

let create ?(arc_hint = 16) n =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  let cap = max 2 (2 * arc_hint) in
  {
    n;
    m = 0;
    dst_ = Array.make cap 0;
    cap_ = Array.make cap 0;
    cost_ = Array.make cap 0;
    flow_ = Array.make cap 0;
    next_ = Array.make cap (-1);
    head = Array.make (max n 1) (-1);
    src_ = Array.make cap 0;
    csr_m = -1;
    csr_first = Ia.empty;
    csr_arcs = Ia.empty;
    csr_cursor = Ia.empty;
    dirty = [||];
    n_dirty = 0;
    all_dirty = false;
    max_cost_ = 0;
  }

let n_vertices g = g.n
let n_arcs g = g.m
let max_cost g = g.max_cost_

let grow g =
  let old = Array.length g.dst_ in
  let nw = 2 * old in
  let extend a fill =
    let b = Array.make nw fill in
    Array.blit a 0 b 0 old;
    b
  in
  g.dst_ <- extend g.dst_ 0;
  g.cap_ <- extend g.cap_ 0;
  g.cost_ <- extend g.cost_ 0;
  g.flow_ <- extend g.flow_ 0;
  g.next_ <- extend g.next_ (-1);
  g.src_ <- extend g.src_ 0

let push_raw g ~src ~dst ~cap ~cost =
  if g.m >= Array.length g.dst_ then grow g;
  let id = g.m in
  g.dst_.(id) <- dst;
  g.cap_.(id) <- cap;
  g.cost_.(id) <- cost;
  g.flow_.(id) <- 0;
  g.next_.(id) <- g.head.(src);
  g.src_.(id) <- src;
  g.head.(src) <- id;
  g.m <- id + 1;
  g.csr_m <- -1;
  if abs cost > g.max_cost_ then g.max_cost_ <- abs cost;
  id

let add_arc g ~src ~dst ~cap ~cost =
  if cap < 0 then invalid_arg "Graph.add_arc: negative capacity";
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Graph.add_arc: vertex out of range";
  let id = push_raw g ~src ~dst ~cap ~cost in
  let _twin = push_raw g ~src:dst ~dst:src ~cap:0 ~cost:(-cost) in
  id

let frozen g = g.csr_m = g.m

let freeze g =
  if not (frozen g) then begin
    Obs.incr c_freezes;
    let n = g.n and m = g.m in
    g.csr_first <- Ia.ensure g.csr_first (n + 1) ~fill:0;
    g.csr_cursor <- Ia.ensure g.csr_cursor (n + 1) ~fill:0;
    g.csr_arcs <- Ia.ensure g.csr_arcs (max 1 m) ~fill:0;
    let first = g.csr_first and cursor = g.csr_cursor and arcs = g.csr_arcs in
    Ia.fill_range first 0 (n + 1) 0;
    for a = 0 to m - 1 do
      let s = g.src_.(a) in
      first.{s + 1} <- first.{s + 1} + 1
    done;
    for v = 1 to n do
      first.{v} <- first.{v} + first.{v - 1}
    done;
    (* second pass fills each vertex's slice in insertion (arc-id) order *)
    Ia.blit first 0 cursor 0 (n + 1);
    for a = 0 to m - 1 do
      let s = g.src_.(a) in
      arcs.{cursor.{s}} <- a;
      cursor.{s} <- cursor.{s} + 1
    done;
    g.csr_m <- m
  end

let first_out g =
  if not (frozen g) then invalid_arg "Graph.first_out: graph not frozen";
  g.csr_first

let arc_of g =
  if not (frozen g) then invalid_arg "Graph.arc_of: graph not frozen";
  g.csr_arcs

let check_arc g a =
  if a < 0 || a >= g.m then invalid_arg "Graph: arc id out of range"

let src g a = check_arc g a; g.src_.(a)
let dst g a = check_arc g a; g.dst_.(a)
let capacity g a = check_arc g a; g.cap_.(a)
let cost g a = check_arc g a; g.cost_.(a)
let flow g a = check_arc g a; g.flow_.(a)
let residual g a = check_arc g a; g.cap_.(a) - g.flow_.(a)
let rev a = a lxor 1
let is_forward a = a land 1 = 0

let mark_dirty g a =
  if not g.all_dirty then begin
    (* Past half the arena a per-arc list stops paying for itself — the
       blanket fill is a single memset over the same memory. *)
    if g.n_dirty >= Array.length g.dirty then begin
      if g.n_dirty >= g.m / 2 then g.all_dirty <- true
      else begin
        let grown = Array.make (max 64 (2 * g.n_dirty)) 0 in
        Array.blit g.dirty 0 grown 0 g.n_dirty;
        g.dirty <- grown
      end
    end;
    if not g.all_dirty then begin
      g.dirty.(g.n_dirty) <- a land lnot 1;
      g.n_dirty <- g.n_dirty + 1
    end
  end

let push g a d =
  check_arc g a;
  if d > g.cap_.(a) - g.flow_.(a) then
    invalid_arg "Graph.push: exceeds residual capacity";
  g.flow_.(a) <- g.flow_.(a) + d;
  g.flow_.(rev a) <- g.flow_.(rev a) - d;
  mark_dirty g a

let set_capacity g a c =
  check_arc g a;
  if c < g.flow_.(a) then invalid_arg "Graph.set_capacity: below current flow";
  g.cap_.(a) <- c

let set_cost g a c =
  check_arc g a;
  if not (is_forward a) then invalid_arg "Graph.set_cost: twin arc";
  g.cost_.(a) <- c;
  g.cost_.(rev a) <- -c;
  if abs c > g.max_cost_ then g.max_cost_ <- abs c

let reset_flows g =
  if g.all_dirty then Array.fill g.flow_ 0 g.m 0
  else
    for i = 0 to g.n_dirty - 1 do
      let a = g.dirty.(i) in
      (* [truncate] may have dropped arcs recorded here; their slots are
         rewritten to zero flow on reuse anyway. *)
      if a < g.m then begin
        g.flow_.(a) <- 0;
        g.flow_.(a + 1) <- 0
      end
    done;
  g.n_dirty <- 0;
  g.all_dirty <- false

let mark g = g.m

let truncate g mark =
  if mark < 0 || mark > g.m || mark land 1 <> 0 then
    invalid_arg "Graph.truncate: bad mark";
  (* Arcs are pushed at the front of their source's adjacency list, so the
     arcs above [mark] are exactly the list prefixes — pop them in reverse
     insertion order and every head pointer lands back where it was. *)
  for a = g.m - 1 downto mark do
    g.head.(g.src_.(a)) <- g.next_.(a)
  done;
  g.m <- mark;
  (* A frozen view built at a higher water mark would hand out dead arc
     ids; drop it unconditionally rather than track which mark it matches. *)
  g.csr_m <- -1

let iter_out g v f =
  if frozen g then begin
    let first = g.csr_first and arcs = g.csr_arcs in
    for i = first.{v} to first.{v + 1} - 1 do
      f arcs.{i}
    done
  end
  else begin
    let a = ref g.head.(v) in
    while !a >= 0 do
      let cur = !a in
      a := g.next_.(cur);
      f cur
    done
  end

let fold_out g v f init =
  let acc = ref init in
  iter_out g v (fun a -> acc := f !acc a);
  !acc

let out_degree g v = fold_out g v (fun n _ -> n + 1) 0

let outflow g v =
  fold_out g v (fun acc a -> if is_forward a then acc + g.flow_.(a) else acc - g.flow_.(rev a)) 0

let pp ppf g =
  Format.fprintf ppf "@[<v>graph %d vertices, %d arcs (%s)" g.n (g.m / 2)
    (if frozen g then "frozen" else "dirty");
  for a = 0 to g.m - 1 do
    if is_forward a then
      Format.fprintf ppf "@,%d -> %d  cap=%d cost=%d flow=%d" g.src_.(a)
        g.dst_.(a) g.cap_.(a) g.cost_.(a) g.flow_.(a)
  done;
  Format.fprintf ppf "@]"
