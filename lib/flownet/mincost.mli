(** Minimum-cost maximum flow by successive shortest paths.

    The first shortest-path pass uses {!Spfa} (arc costs may be negative);
    later passes use {!Dijkstra} with Johnson potentials. This is the solver
    behind the Firmament baseline and the incremental Aladdin projection. *)

type stats = {
  flow : int;        (** total units pushed *)
  cost : int;        (** total cost of the flow *)
  iterations : int;  (** augmenting paths used *)
}

type warm = {
  mutable potential : int array;
  mutable prevalidated : bool;
  ws : Dijkstra.workspace;
}
(** Johnson potentials carried across successive solves. An empty array means
    cold. Callers that edit the graph between solves (e.g. the incremental
    projection) may patch entries directly; {!run} validates before use,
    unless [prevalidated] is set — a one-shot flag (cleared by {!run}) for
    callers that maintain validity by construction and check the arcs they
    edit themselves. [ws] additionally carries the Dijkstra scratch arrays so
    repeated solves allocate nothing per shortest-path phase. *)

val warm_create : unit -> warm

val potential_valid : Graph.t -> src:int -> int array -> bool
(** Whether every residual arc reachable from [src] has nonnegative reduced
    cost under the given potentials — the precondition for skipping the
    SPFA bootstrap. Arcs beyond the reachable frontier can never carry
    flow, so they do not participate. *)

val run :
  ?warm:warm ->
  ?deadline:Deadline.t ->
  ?max_flow:int ->
  Graph.t ->
  src:int ->
  dst:int ->
  (stats, Error.t) result
(** Push up to [max_flow] units (default: unbounded) at minimum total cost.
    Flows are recorded in the graph.

    Returns [Error] — never raises — when the SPFA bootstrap finds a
    negative cycle or carried potentials turn out invalid mid-solve
    (counted under [mincost.errors]). Flow pushed before the failure
    remains recorded in the graph; callers recovering from an error should
    [Graph.reset_flows] (or rebuild) before retrying.

    With [?deadline], every hot loop (SPFA relaxation, Dijkstra pop,
    augmentation) ticks the budget cooperatively and exhaustion returns
    the typed [Error Deadline_exceeded]. Without it, an ambient
    {!Deadline} armed by scheduler middleware is ticked instead and its
    expiry propagates as {!Deadline.Expired} for ladder escalation.

    With [?warm]: if the carried potentials fit the graph and pass
    {!potential_valid}, the SPFA bootstrap is skipped entirely (an O(arcs)
    validation scan replaces an O(vertices * arcs) worst-case labeling);
    otherwise the solver falls back to SPFA and stores the fresh bootstrap
    potentials back into [warm] for the next call. Counted under the
    [mincost.*] {!Obs} counters. *)
