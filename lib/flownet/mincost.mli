(** Minimum-cost maximum flow by successive shortest paths, in primal-dual
    (blocking-flow) form.

    The first potentials come from {!Spfa} (arc costs may be negative);
    afterwards each {!Dijkstra} phase is followed by a Dinic-style blocking
    flow over the zero-reduced-cost residual subgraph, which saturates
    every shortest path of the current cost at once — Dijkstra reruns only
    when the path cost strictly increases. This is the solver behind the
    Firmament baseline and the incremental Aladdin projection. *)

type stats = {
  flow : int;        (** total units pushed *)
  cost : int;        (** total cost of the flow *)
  iterations : int;  (** blocking-flow phases run *)
}

type warm = {
  mutable potential : Ia.t;
  mutable pot_n : int;
      (** vertices the carried potentials cover; [0] means cold. *)
  mutable prevalidated : bool;
  ws : Dijkstra.workspace;
  mutable level : Ia.t;   (** internal blocking-flow scratch *)
  mutable queue : Ia.t;   (** internal *)
  mutable cursor : Ia.t;  (** internal *)
  mutable pot : Ia.t;     (** internal: the solve's working potentials *)
}
(** Johnson potentials carried across successive solves ([pot_n = 0] means
    cold). Callers that edit the graph between solves (e.g. the incremental
    projection) may patch [potential] entries directly; {!run} validates
    before use, unless [prevalidated] is set — a one-shot flag (cleared by
    {!run}) for callers that maintain validity by construction and check
    the arcs they edit themselves. [ws] and the scratch vectors carry all
    per-solve label state, so repeated warm solves allocate zero heap
    words. *)

val warm_create : unit -> warm

val potential_valid : Graph.t -> src:int -> Ia.t -> bool
(** Whether every residual arc reachable from [src] has nonnegative reduced
    cost under the given potentials — the precondition for skipping the
    SPFA bootstrap. Arcs beyond the reachable frontier can never carry
    flow, so they do not participate. *)

val run :
  ?warm:warm ->
  ?deadline:Deadline.t ->
  ?max_flow:int ->
  Graph.t ->
  src:int ->
  dst:int ->
  (stats, Error.t) result
(** Push up to [max_flow] units (default: unbounded) at minimum total cost.
    Flows are recorded in the graph.

    Returns [Error] — never raises — when the SPFA bootstrap finds a
    negative cycle or carried potentials turn out invalid mid-solve
    (counted under [mincost.errors]). Flow pushed before the failure
    remains recorded in the graph; callers recovering from an error should
    [Graph.reset_flows] (or rebuild) before retrying.

    With [?deadline], every hot loop (SPFA relaxation, Dijkstra pop, the
    blocking-flow level build and DFS) ticks the budget cooperatively and
    exhaustion returns the typed [Error Deadline_exceeded]. Without it, an
    ambient {!Deadline} armed by scheduler middleware is ticked instead
    and its expiry propagates as {!Deadline.Expired} for ladder
    escalation.

    With [?warm]: if the carried potentials fit the graph and pass
    {!potential_valid}, the SPFA bootstrap is skipped entirely (an O(arcs)
    validation scan replaces an O(vertices * arcs) worst-case labeling);
    otherwise the solver falls back to SPFA and stores the fresh bootstrap
    potentials back into [warm] for the next call. A warm solve whose
    first Dijkstra phase runs before any flow is pushed also refreshes the
    carried potentials from that phase ([mincost.carry_refreshes]) — they
    describe the graph's entry state exactly, so the carry stays tight
    instead of going staler every batch. Counted under the [mincost.*]
    {!Obs} counters. *)
