type result = { dist : Ia.t; parent : Ia.t }

exception Cycle_at of int

(* [v] was enqueued >= n times, which proves a negative cycle somewhere on
   its parent chain. Walk n parent steps to land on a vertex that is
   certainly *inside* the cycle, then collect the arcs once around it. *)
let extract_cycle g parent v =
  let n = Ia.length parent in
  let u = ref v in
  (try
     for _ = 1 to n do
       let a = parent.{!u} in
       if a < 0 then raise Exit;
       u := Graph.src g a
     done
   with Exit -> ());
  let start = !u in
  let arcs = ref [] in
  (try
     let w = ref start in
     let steps = ref 0 in
     let continue = ref true in
     while !continue do
       let a = parent.{!w} in
       if a < 0 then raise Exit;
       arcs := a :: !arcs;
       w := Graph.src g a;
       incr steps;
       if !w = start then continue := false
       else if !steps > n then raise Exit
     done;
     !arcs
   with Exit ->
     (* Defensive: the parent chain was broken or did not close — report the
        cycle without arc detail rather than loop or crash. *)
     [])

let run ?(admit = fun _ -> true) ?deadline g ~src =
  let dl = Deadline.resolve deadline in
  let n = Graph.n_vertices g in
  Graph.freeze g;
  let first = Graph.first_out g and arcs = Graph.arc_of g in
  let dist = Ia.create ~fill:max_int n in
  let parent = Ia.create ~fill:(-1) n in
  let in_queue = Ia.create ~fill:0 n in
  let enqueues = Ia.create ~fill:0 n in
  (* FIFO as a flat ring: [in_queue] admits each vertex at most once, so
     n+1 slots never overflow — no per-enqueue allocation like the boxed
     stdlib Queue cells. *)
  let q = Ia.create (n + 1) in
  let qh = ref 0 and qt = ref 0 in
  let q_push v =
    q.{!qt} <- v;
    qt := if !qt = n then 0 else !qt + 1
  in
  dist.{src} <- 0;
  q_push src;
  in_queue.{src} <- 1;
  enqueues.{src} <- 1;
  match
    while !qh <> !qt do
      Deadline.tick_opt dl "spfa.relax";
      let u = q.{!qh} in
      qh := (if !qh = n then 0 else !qh + 1);
      in_queue.{u} <- 0;
      let du = dist.{u} in
      for i = first.{u} to first.{u + 1} - 1 do
        let a = arcs.{i} in
        if Graph.residual g a > 0 && admit a then begin
          let v = Graph.dst g a in
          let nd = Inf.add du (Graph.cost g a) in
          if nd < dist.{v} then begin
            dist.{v} <- nd;
            parent.{v} <- a;
            if in_queue.{v} = 0 then begin
              enqueues.{v} <- enqueues.{v} + 1;
              (* A vertex re-entering the queue for the n-th time has had
                 its label improved along paths of >= n arcs — only a
                 negative cycle produces those. ([> n] here would let one
                 extra full relaxation round run before detection.) *)
              if enqueues.{v} >= n then raise (Cycle_at v);
              q_push v;
              in_queue.{v} <- 1
            end
          end
        end
      done
    done
  with
  | () -> Ok { dist; parent }
  | exception Cycle_at v -> Error (Error.Negative_cycle (extract_cycle g parent v))

let shortest_path ?admit ?deadline g ~src ~dst =
  match run ?admit ?deadline g ~src with
  | Error _ as e -> e
  | Ok { parent; dist } ->
      if dist.{dst} = max_int then Ok None
      else Ok (Path.of_parents g ~parent ~src ~dst)
