(** Typed error channel for the flow solvers.

    Solvers that can fail on malformed input or an unexpected solver state
    return [(_, Error.t) result] instead of raising, so callers (the
    schedulers, the bench harness) can degrade gracefully — reject the
    batch, fall back to a cold solve — rather than crash the process. *)

type t =
  | Negative_cycle of int list
      (** A negative-cost cycle is reachable in the residual graph; the
          payload is the cycle's arc ids (in path order, possibly empty if
          the cycle could not be reconstructed). *)
  | Invalid_potential of string
      (** Carried Johnson potentials violated the nonnegative-reduced-cost
          precondition mid-solve (e.g. the graph was mutated, or a
          prevalidation promise was wrong). *)
  | Solver_fault of string
      (** An injected or otherwise unexpected solver-step failure. *)
  | Deadline_exceeded of string
      (** The solve's cooperative {!Deadline} budget ran out; the payload
          names the hot loop that observed the expiry. The flows routed so
          far remain on the graph — callers degrade (retry on a cheaper
          backend, shed work) rather than trust a partial solution. *)

val to_string : t -> string
