(** Textbook Bellman–Ford over the residual graph. Slower than {!Spfa} but
    detects negative cycles without an iteration-count heuristic; used by
    tests as the reference shortest-path oracle. *)

type result = {
  dist : Ia.t;
  parent : Ia.t;
  negative_cycle : bool;
}

val run : Graph.t -> src:int -> result
