type result = { dist : Ia.t; parent : Ia.t }

(* Which priority queue backs the search. [Auto] picks Dial's bucket queue
   when the graph's cost bound says reduced costs are small integers (the
   scheduler projections: machine prices in the hundreds), falling back to
   the binary heap otherwise — and migrates mid-run if a reduced cost
   overflows the bucket span anyway. *)
type queue_policy = Auto | Force_heap | Force_dial

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "heap" -> Force_heap
  | "dial" -> Force_dial
  | _ -> Auto

let policy =
  ref
    (match Sys.getenv_opt "ALADDIN_DIJKSTRA" with
    | Some s -> policy_of_string s
    | None -> Auto)

let set_queue_policy p = policy := p
let queue_policy () = !policy

(* Auto cutoff on [Graph.max_cost]: arc costs above this make long bucket
   scans likely, so the heap wins. Reduced costs can still exceed the arc
   cost bound (potential differences add in); the in-run overflow
   migration covers that case soundly. *)
let dial_auto_max_cost = 1 lsl 14

let c_heap_runs = Obs.counter "dijkstra.heap_runs"
let c_dial_runs = Obs.counter "dijkstra.dial_runs"
let c_dial_overflows = Obs.counter "dijkstra.dial_overflows"

(* Reusable scratch space: unboxed label vectors sized to the largest graph
   seen, reset between runs by undoing only the previous run's footprint —
   so a run costs O(explored region), not O(vertices), in both time and
   allocation (zero words once the vectors fit). *)
type workspace = {
  mutable dist : Ia.t;
  mutable parent : Ia.t;
  mutable settled : Ia.t;      (* 0/1 *)
  heap : Heap.t;
  dial : Dial.t;
  mutable touched : Ia.t;
  mutable n_touched : int;
}

let workspace () =
  {
    dist = Ia.empty;
    parent = Ia.empty;
    settled = Ia.empty;
    heap = Heap.create ~capacity:64 ();
    dial = Dial.create ();
    touched = Ia.empty;
    n_touched = 0;
  }

let touch ws v =
  if ws.n_touched = Ia.length ws.touched then
    ws.touched <- Ia.ensure ws.touched (max 64 (2 * ws.n_touched)) ~fill:0;
  ws.touched.{ws.n_touched} <- v;
  ws.n_touched <- ws.n_touched + 1

let prepare ws n =
  if Ia.length ws.dist < n then begin
    ws.dist <- Ia.create ~fill:max_int n;
    ws.parent <- Ia.create ~fill:(-1) n;
    ws.settled <- Ia.create ~fill:0 n;
    ws.n_touched <- 0
  end
  else begin
    for i = 0 to ws.n_touched - 1 do
      let v = ws.touched.{i} in
      ws.dist.{v} <- max_int;
      ws.parent.{v} <- -1;
      ws.settled.{v} <- 0;
      Dial.clear_vertex ws.dial v
    done;
    ws.n_touched <- 0
  end;
  Heap.clear ws.heap;
  Dial.prepare ws.dial n ~start_key:0

(* The core search. Returns the settled distance of [stop_at] (max_int when
   it never settled); labels live in the workspace vectors. *)
let run_ws ws ?(stop_at = -1) ?deadline g ~src ~(potential : Ia.t) =
  let dl = Deadline.resolve deadline in
  let n = Graph.n_vertices g in
  Graph.freeze g;
  let first = Graph.first_out g and arcs = Graph.arc_of g in
  prepare ws n;
  let dist = ws.dist and parent = ws.parent and settled = ws.settled in
  let heap = ws.heap and dial = ws.dial in
  let use_dial =
    ref
      (match !policy with
      | Force_dial -> true
      | Force_heap -> false
      | Auto -> Graph.max_cost g <= dial_auto_max_cost)
  in
  if !use_dial then Obs.incr c_dial_runs else Obs.incr c_heap_runs;
  let push_q ~key ~value =
    if !use_dial then begin
      if not (Dial.insert dial value key) then begin
        (* Reduced cost outgrew the bucket span: move everything pending
           into the heap and finish the run there. Keys come out of the
           drain in order, so the heap inherits a consistent frontier. *)
        Obs.incr c_dial_overflows;
        use_dial := false;
        Dial.drain dial (fun k v -> Heap.push heap ~key:k ~value:v);
        Heap.push heap ~key ~value
      end
    end
    else Heap.push heap ~key ~value
  in
  dist.{src} <- 0;
  touch ws src;
  push_q ~key:0 ~value:src;
  let d_stop = ref max_int in
  let continue = ref true in
  while !continue do
    Deadline.tick_opt dl "dijkstra.pop";
    let popped = if !use_dial then Dial.pop dial else Heap.pop heap in
    if not popped then continue := false
    else begin
      let d = if !use_dial then Dial.last_key dial else Heap.last_key heap in
      let u =
        if !use_dial then Dial.last_value dial else Heap.last_value heap
      in
        if settled.{u} = 0 && d = dist.{u} then begin
          settled.{u} <- 1;
          if u = stop_at then begin
            d_stop := d;
            continue := false
          end
          else
            for i = first.{u} to first.{u + 1} - 1 do
              let a = arcs.{i} in
              if Graph.residual g a > 0 then begin
                let v = Graph.dst g a in
                if settled.{v} = 0 then begin
                  let rc =
                    Inf.add (Inf.add (Graph.cost g a) potential.{u})
                      (-potential.{v})
                  in
                  if rc < 0 then
                    invalid_arg "Dijkstra.run: negative reduced cost";
                  let nd = Inf.add d rc in
                  if nd < dist.{v} then begin
                    if dist.{v} = max_int then touch ws v;
                    dist.{v} <- nd;
                    parent.{v} <- a;
                    push_q ~key:nd ~value:v
                  end
                end
              end
            done
        end
    end
  done;
  !d_stop

(* Fold the run's distances into [potential], capped at [d_dst] and
   uniformly shifted by [-d_dst] so only the vertices settled below the
   target move: pot(v) += dist(v) - d_dst. Reduced costs are invariant
   under the uniform shift, so this equals the classic LEMON-style
   pot(v) += min(dist(v), d_dst) update while touching O(settled region)
   entries instead of O(vertices). Tentative (unsettled) labels are >= the
   settled d_dst by the heap invariant, so their cap contribution is the
   uniform shift exactly. *)
let relax_potentials ws ~(potential : Ia.t) ~d_dst =
  for i = 0 to ws.n_touched - 1 do
    let v = ws.touched.{i} in
    let dv = ws.dist.{v} in
    if dv < d_dst then potential.{v} <- Inf.add potential.{v} (dv - d_dst)
  done

let run ?ws ?(stop_at = -1) ?deadline g ~src ~potential =
  let ws = match ws with Some w -> w | None -> workspace () in
  let (_ : int) = run_ws ws ~stop_at ?deadline g ~src ~potential in
  { dist = ws.dist; parent = ws.parent }
