type result = { dist : int array; parent : int array }

(* Reusable scratch space: label arrays sized to the largest graph seen,
   reset between runs by undoing only the previous run's footprint — so a
   run costs O(explored region), not O(vertices), in both time and
   allocation. *)
type workspace = {
  mutable dist : int array;
  mutable parent : int array;
  mutable settled : bool array;
  heap : Heap.t;
  mutable touched : int array;
  mutable n_touched : int;
}

let workspace () =
  {
    dist = [||];
    parent = [||];
    settled = [||];
    heap = Heap.create ~capacity:64 ();
    touched = [||];
    n_touched = 0;
  }

let touch ws v =
  if ws.n_touched = Array.length ws.touched then begin
    let grown = Array.make (max 64 (2 * ws.n_touched)) 0 in
    Array.blit ws.touched 0 grown 0 ws.n_touched;
    ws.touched <- grown
  end;
  ws.touched.(ws.n_touched) <- v;
  ws.n_touched <- ws.n_touched + 1

let prepare ws n =
  if Array.length ws.dist < n then begin
    ws.dist <- Array.make n max_int;
    ws.parent <- Array.make n (-1);
    ws.settled <- Array.make n false;
    ws.n_touched <- 0
  end
  else begin
    for i = 0 to ws.n_touched - 1 do
      let v = ws.touched.(i) in
      ws.dist.(v) <- max_int;
      ws.parent.(v) <- -1;
      ws.settled.(v) <- false
    done;
    ws.n_touched <- 0
  end;
  Heap.clear ws.heap

let run ?ws ?(stop_at = -1) ?deadline g ~src ~potential =
  let dl = Deadline.resolve deadline in
  let n = Graph.n_vertices g in
  let ws = match ws with Some w -> w | None -> workspace () in
  Graph.freeze g;
  let first = Graph.first_out g and arcs = Graph.arc_of g in
  prepare ws n;
  let dist = ws.dist and parent = ws.parent and settled = ws.settled in
  let heap = ws.heap in
  dist.(src) <- 0;
  touch ws src;
  Heap.push heap ~key:0 ~value:src;
  let continue = ref true in
  while !continue do
    Deadline.tick_opt dl "dijkstra.pop";
    match Heap.pop_min heap with
    | None -> continue := false
    | Some (d, u) ->
        if not settled.(u) && d = dist.(u) then begin
          settled.(u) <- true;
          if u = stop_at then continue := false
          else
            for i = first.(u) to first.(u + 1) - 1 do
              let a = arcs.(i) in
              if Graph.residual g a > 0 then begin
                let v = Graph.dst g a in
                if not settled.(v) then begin
                  let rc =
                    Inf.add (Inf.add (Graph.cost g a) potential.(u))
                      (-potential.(v))
                  in
                  if rc < 0 then
                    invalid_arg "Dijkstra.run: negative reduced cost";
                  let nd = Inf.add d rc in
                  if nd < dist.(v) then begin
                    if dist.(v) = max_int then touch ws v;
                    dist.(v) <- nd;
                    parent.(v) <- a;
                    Heap.push heap ~key:nd ~value:v
                  end
                end
              end
            done
        end
  done;
  { dist; parent }
