(** Unboxed native-int vectors ([Bigarray.int] / C layout) for the solver
    hot paths: CSR adjacency, distance/potential/parent labels, bucket
    queues. Access via [a.{i}] reads and writes raw machine words with no
    allocation and no GC traffic, which is what lets a warm min-cost solve
    run allocation-free. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : ?fill:int -> int -> t
(** Freshly allocated vector of [n] cells, each set to [fill] (default 0). *)

val empty : t

val length : t -> int

val fill_range : t -> int -> int -> int -> unit
(** [fill_range a pos len v] sets [a.{pos} .. a.{pos+len-1}] to [v]. *)

val blit : t -> int -> t -> int -> int -> unit
(** [blit src spos dst dpos len], semantics of {!Array.blit}. *)

val ensure : t -> int -> fill:int -> t
(** [ensure a n ~fill] is [a] if it already has [n] cells, else a
    geometrically grown copy whose new tail cells are [fill]. *)

val of_array : int array -> t
val to_array : t -> int array
