(** Goldberg–Tarjan push–relabel maximum flow with the highest-label rule
    and gap relabeling, O(V²·√E). The fastest solver in this library for
    dense networks; property-tested against {!Dinic} and {!Maxflow}. *)

val run : ?deadline:Deadline.t -> Graph.t -> src:int -> dst:int -> int
(** Returns the max flow; flows are recorded in the graph. The recorded
    assignment is a valid flow (conservation holds at every vertex except
    source and sink).

    The discharge loop ticks [deadline] (or the ambient {!Deadline})
    cooperatively.
    @raise Deadline.Expired on budget exhaustion — excess may then sit at
    intermediate vertices (conservation does NOT hold for the partial
    state); reset or rebuild the graph before reuse. The registry converts
    this to the typed [Error.Deadline_exceeded]. *)
