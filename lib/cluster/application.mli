(** A long-lived application (LLA): a set of isomorphic containers — same
    demand, same priority (§IV.A) — plus its placement constraints. *)

type id = int

type t = {
  id : id;
  name : string;
  n_containers : int;
  demand : Resource.t;       (** per-container requirement (isomorphism) *)
  priority : int;            (** 0 = lowest *)
  anti_affinity_within : bool;
      (** containers of this app must land on distinct machines *)
  anti_affinity_across : id list;
      (** apps this one must never share a machine with *)
}

val make :
  id:id ->
  ?name:string ->
  n_containers:int ->
  demand:Resource.t ->
  ?priority:int ->
  ?anti_affinity_within:bool ->
  ?anti_affinity_across:id list ->
  unit ->
  t
(** Names are normalised: surrounding whitespace is trimmed, inner
    whitespace becomes ['_'], and an empty name falls back to ["app-<id>"]
    — so a name can always stand as a single field in the space-separated
    trace format. @raise Invalid_argument on [n_containers <= 0] or a
    negative [priority]. *)

val has_anti_affinity : t -> bool
val has_priority : t -> bool
(** Whether the app carries a non-default (non-zero) priority class. *)

val containers : t -> first_id:int -> first_arrival:int -> Container.t list
(** Materialise the app's containers with consecutive ids and arrivals. *)

val pp : Format.formatter -> t -> unit
