type shape =
  | Homogeneous of Resource.t
  | Heterogeneous of Resource.t array

type t = {
  n_machines : int;
  machines_per_rack : int;
  racks_per_group : int;
  shape : shape;
}

let homogeneous ?(machines_per_rack = 32) ?(racks_per_group = 40) ~n_machines
    ~capacity () =
  if n_machines <= 0 then invalid_arg "Topology.homogeneous: no machines";
  if machines_per_rack <= 0 || racks_per_group <= 0 then
    invalid_arg "Topology.homogeneous: bad layout";
  { n_machines; machines_per_rack; racks_per_group; shape = Homogeneous capacity }

let heterogeneous ?(machines_per_rack = 32) ?(racks_per_group = 40) ~capacities
    () =
  let n_machines = Array.length capacities in
  if n_machines = 0 then invalid_arg "Topology.heterogeneous: no machines";
  if machines_per_rack <= 0 || racks_per_group <= 0 then
    invalid_arg "Topology.heterogeneous: bad layout";
  let dims = Resource.dims capacities.(0) in
  Array.iter
    (fun c ->
      if Resource.dims c <> dims then
        invalid_arg "Topology.heterogeneous: mismatched dimensions")
    capacities;
  {
    n_machines;
    machines_per_rack;
    racks_per_group;
    shape = Heterogeneous (Array.copy capacities);
  }

let machines_per_rack t = t.machines_per_rack
let racks_per_group t = t.racks_per_group

(* A rack-aligned contiguous sub-topology: machine j of the slice is
   machine [first_machine + j] of the parent, with the same rack/group
   geometry (rack boundaries line up because [first_machine] must sit on
   one). The slice's group numbering restarts at 0 — group identity is
   only ever used relative to one topology, so mirrors are unaffected. *)
let slice t ~first_machine ~n_machines =
  if first_machine < 0 || n_machines <= 0
     || first_machine + n_machines > t.n_machines then
    invalid_arg "Topology.slice: machine range out of bounds";
  if first_machine mod t.machines_per_rack <> 0 then
    invalid_arg "Topology.slice: first_machine not rack-aligned";
  {
    n_machines;
    machines_per_rack = t.machines_per_rack;
    racks_per_group = t.racks_per_group;
    shape =
      (match t.shape with
      | Homogeneous c -> Homogeneous c
      | Heterogeneous cs -> Heterogeneous (Array.sub cs first_machine n_machines));
  }

let is_homogeneous t =
  match t.shape with Homogeneous _ -> true | Heterogeneous _ -> false

let n_machines t = t.n_machines

let n_racks t = (t.n_machines + t.machines_per_rack - 1) / t.machines_per_rack

let n_groups t =
  let r = n_racks t in
  (r + t.racks_per_group - 1) / t.racks_per_group

let check_machine t i =
  if i < 0 || i >= t.n_machines then invalid_arg "Topology: machine out of range"

let capacity t i =
  check_machine t i;
  match t.shape with Homogeneous c -> c | Heterogeneous cs -> cs.(i)

let rack_of t i = check_machine t i; i / t.machines_per_rack

let group_of_rack t r =
  if r < 0 || r >= n_racks t then invalid_arg "Topology: rack out of range";
  r / t.racks_per_group

let group_of t i = group_of_rack t (rack_of t i)

let machines_of_rack t r =
  if r < 0 || r >= n_racks t then invalid_arg "Topology: rack out of range";
  let first = r * t.machines_per_rack in
  let last = min t.n_machines (first + t.machines_per_rack) - 1 in
  List.init (last - first + 1) (fun i -> first + i)

let racks_of_group t g =
  if g < 0 || g >= n_groups t then invalid_arg "Topology: group out of range";
  let first = g * t.racks_per_group in
  let last = min (n_racks t) (first + t.racks_per_group) - 1 in
  List.init (last - first + 1) (fun i -> first + i)

let pp ppf t =
  Format.fprintf ppf "%d machines / %d racks / %d groups @ %s" t.n_machines
    (n_racks t) (n_groups t)
    (match t.shape with
    | Homogeneous c -> Resource.to_string c
    | Heterogeneous _ -> "heterogeneous")
