(** Mutable cluster placement state shared by every scheduler: machines,
    the container→machine map, and the incrementally maintained blacklists.

    Schedulers mutate a cluster through {!place} / {!remove}; the admission
    check implements the full Aladdin capacity function (vector fit +
    blacklist), with an escape hatch for baselines that tolerate
    violations. *)

type t

type denial =
  | No_capacity       (** demand exceeds the machine's free vector *)
  | Blacklisted of Application.id
      (** a conflicting app is deployed there (first one reported) *)

type event =
  | Placed of Container.t * Machine.id * bool
      (** deployed there; the flag is {!place}'s [force] *)
  | Removed of Container.t * Machine.id

val create : Topology.t -> constraints:Constraint_set.t -> t
val topology : t -> Topology.t

val version : t -> int
(** Bumped on every mutation ({!place}, {!remove}, an effective
    {!set_offline}); lets a mirror detect out-of-band changes with one
    integer compare. *)

val set_tracer : t -> (event -> unit) option -> unit
(** Install (or clear) a mutation tracer: called synchronously on every
    {!place} / {!remove}, in order. The cells coordinator uses it to
    replay per-cell mutations onto the outer cluster and back. *)

val constraints : t -> Constraint_set.t
val n_machines : t -> int
val machine : t -> Machine.id -> Machine.t
val machines : t -> Machine.t array

val admissible : t -> Container.t -> Machine.id -> (unit, denial) result
(** Capacity + blacklist check, no mutation. Offline machines admit
    nothing. *)

val set_offline : t -> Machine.id -> bool -> unit
(** Quarantine a machine (hardware failure, maintenance). Going offline
    does not evict its containers — use {!drain} for that. *)

val is_offline : t -> Machine.id -> bool

val drain : t -> Machine.id -> Container.t list
(** Remove every container from a machine (in preparation for, or after,
    a failure); returns them for re-scheduling. *)

val place :
  ?force:bool -> t -> Container.t -> Machine.id -> (unit, denial) result
(** Deploy the container. With [force], a blacklist denial is overridden
    (recorded as a violation by {!current_violations}); capacity is never
    overridable. *)

val remove : t -> Container.id -> unit
(** @raise Invalid_argument when the container is not placed. *)

val machine_of : t -> Container.id -> Machine.id option
val container : t -> Container.id -> Container.t option
val n_placed : t -> int
val placements : t -> (Container.id * Machine.id) list

val used_machines : t -> int
val utilizations : t -> float list
(** Utilization of every *used* machine. *)

val current_violations : t -> Violation.t list
(** Anti-affinity violations present in the current placement (each
    offending container counted once per conflicting app on its machine). *)

val blacklist : t -> Blacklist.t
val reset : t -> unit
(** Remove every placement. *)
