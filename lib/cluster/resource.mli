(** Multidimensional resource vectors.

    Stored as exact integers — CPU in millicores, memory in MiB — so that
    capacity accounting never drifts. Extra dimensions (GPU, disk, …) are
    allowed; all operations are pointwise and dimension-checked. *)

type t

val cpu_dim : int
(** Index of the CPU dimension (0). *)

val mem_dim : int
(** Index of the memory dimension (1), when present. *)

val make : cpu:float -> mem_gb:float -> t
(** Two-dimensional vector from CPU cores and memory in GiB. *)

val cpu_only : float -> t
(** One-dimensional CPU vector (the paper's headline experiments, §V.A). *)

val of_array : int array -> t
(** Raw integer units per dimension. @raise Invalid_argument on negative
    entries or an empty array. *)

val to_array : t -> int array

val get : t -> int -> int
(** Raw units of one dimension, without the defensive copy of {!to_array}
    — for per-machine hot loops (projection builds, capacity deltas). *)

val dims : t -> int
val zero : int -> t
val is_zero : t -> bool

val cpu : t -> float
(** CPU cores (dimension 0, converted back from millicores). *)

val mem_gb : t -> float
(** Memory in GiB. @raise Invalid_argument on a 1-D vector. *)

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if any dimension would go negative. *)

val sub_clamped : t -> t -> t
val fits : demand:t -> within:t -> bool
val scale : int -> t -> t
val sum : t list -> t
(** @raise Invalid_argument on an empty list. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val dominant_share : demand:t -> capacity:t -> float
(** max over dimensions of demand/capacity — DRF-style dominant share;
    also the magnitude used to order containers by "size". *)

val utilization : used:t -> capacity:t -> float
(** Average over dimensions of used/capacity, in [0, 1]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
