type denial = No_capacity | Blacklisted of Application.id

type event =
  | Placed of Container.t * Machine.id * bool
  | Removed of Container.t * Machine.id

type t = {
  topology : Topology.t;
  constraints : Constraint_set.t;
  machines : Machine.t array;
  blacklist : Blacklist.t;
  placed : (Container.id, Container.t * Machine.id) Hashtbl.t;
  offline : bool array;
  (* Every mutation bumps [version], so a mirror (a cells coordinator's
     per-cell copy) can detect out-of-band changes — a revocation, an
     audit repair, a transactional restore — with one integer compare
     instead of a full diff. The optional tracer sees each mutation as it
     happens; mirrors replay the events instead of re-deriving state. *)
  mutable version : int;
  mutable tracer : (event -> unit) option;
}

let create topology ~constraints =
  let n = Topology.n_machines topology in
  {
    topology;
    constraints;
    machines =
      Array.init n (fun i ->
          Machine.create ~id:i ~rack:(Topology.rack_of topology i)
            ~group:(Topology.group_of topology i)
            ~capacity:(Topology.capacity topology i));
    blacklist = Blacklist.create constraints ~n_machines:n;
    placed = Hashtbl.create 1024;
    offline = Array.make n false;
    version = 0;
    tracer = None;
  }

let topology t = t.topology
let version t = t.version
let set_tracer t tr = t.tracer <- tr

let emit t ev =
  t.version <- t.version + 1;
  match t.tracer with None -> () | Some f -> f ev

let constraints t = t.constraints
let n_machines t = Array.length t.machines

let machine t i =
  if i < 0 || i >= Array.length t.machines then
    invalid_arg "Cluster.machine: out of range";
  t.machines.(i)

let machines t = t.machines

let set_offline t mid v =
  let _ = machine t mid in
  if t.offline.(mid) <> v then begin
    t.offline.(mid) <- v;
    t.version <- t.version + 1
  end

let is_offline t mid =
  let _ = machine t mid in
  t.offline.(mid)

let admissible t (c : Container.t) mid =
  let m = machine t mid in
  if t.offline.(mid) then Error No_capacity
  else if not (Machine.fits m c.Container.demand) then Error No_capacity
  else if Blacklist.blocked t.blacklist ~machine:mid ~app:c.Container.app then begin
    (* Identify the offending deployed app for diagnostics. *)
    let against = ref c.Container.app in
    (try
       Machine.iter_apps m (fun app _ ->
           if Constraint_set.conflict t.constraints c.Container.app app then begin
             against := app;
             raise Exit
           end)
     with Exit -> ());
    Error (Blacklisted !against)
  end
  else Ok ()

let place ?(force = false) t (c : Container.t) mid =
  if Hashtbl.mem t.placed c.Container.id then
    invalid_arg "Cluster.place: container already placed";
  let decision =
    match admissible t c mid with
    | Ok () -> Ok ()
    | Error No_capacity -> Error No_capacity
    | Error (Blacklisted a) -> if force then Ok () else Error (Blacklisted a)
  in
  match decision with
  | Error _ as e -> e
  | Ok () ->
      Machine.place (machine t mid) c;
      Blacklist.on_place t.blacklist ~machine:mid ~app:c.Container.app;
      Hashtbl.replace t.placed c.Container.id (c, mid);
      emit t (Placed (c, mid, force));
      Ok ()

let remove t cid =
  match Hashtbl.find_opt t.placed cid with
  | None -> invalid_arg "Cluster.remove: container not placed"
  | Some (c, mid) ->
      Machine.remove (machine t mid) c;
      Blacklist.on_remove t.blacklist ~machine:mid ~app:c.Container.app;
      Hashtbl.remove t.placed cid;
      emit t (Removed (c, mid))

let machine_of t cid =
  Option.map (fun (_, mid) -> mid) (Hashtbl.find_opt t.placed cid)

let container t cid =
  Option.map (fun (c, _) -> c) (Hashtbl.find_opt t.placed cid)

let n_placed t = Hashtbl.length t.placed

let placements t =
  Hashtbl.fold (fun cid (_, mid) acc -> (cid, mid) :: acc) t.placed []

let used_machines t =
  Array.fold_left
    (fun n m -> if Machine.is_used m then n + 1 else n)
    0 t.machines

let utilizations t =
  Array.fold_left
    (fun acc m -> if Machine.is_used m then Machine.utilization m :: acc else acc)
    [] t.machines

let current_violations t =
  Hashtbl.fold
    (fun cid ((c : Container.t), mid) acc ->
      let m = machine t mid in
      let acc = ref acc in
      Machine.iter_apps m (fun app n ->
          let conflicts =
            if app = c.Container.app then
              (* anti-within violated only when >1 container of the app *)
              n > 1 && Constraint_set.anti_within t.constraints app
            else Constraint_set.conflict t.constraints c.Container.app app
          in
          if conflicts then
            acc :=
              Violation.Anti_affinity { container = cid; machine = mid; against = app }
              :: !acc);
      !acc)
    t.placed []

let drain t mid =
  let victims = Machine.containers (machine t mid) in
  List.iter (fun (c : Container.t) -> remove t c.Container.id) victims;
  victims

let blacklist t = t.blacklist

let reset t =
  let ids = Hashtbl.fold (fun cid _ acc -> cid :: acc) t.placed [] in
  List.iter (remove t) ids
