(** Physical cluster layout: machines grouped into racks (R vertices) and
    racks into cluster groups (G vertices), matching the Aladdin flow
    network tiers. *)

type t

val homogeneous :
  ?machines_per_rack:int ->
  ?racks_per_group:int ->
  n_machines:int ->
  capacity:Resource.t ->
  unit ->
  t
(** Default 32 machines per rack, 40 racks per group — a 10k-machine cluster
    yields ~313 racks, 8 groups. *)

val heterogeneous :
  ?machines_per_rack:int ->
  ?racks_per_group:int ->
  capacities:Resource.t array ->
  unit ->
  t
(** Per-machine capacities (the paper's future-work extension; also used by
    the Kubernetes adaptor for mixed node pools).
    @raise Invalid_argument on an empty array or mismatched dimensions. *)

val is_homogeneous : t -> bool
val machines_per_rack : t -> int
val racks_per_group : t -> int

val slice : t -> first_machine:int -> n_machines:int -> t
(** Rack-aligned contiguous sub-topology: machine [j] of the slice is
    machine [first_machine + j] of the parent, same rack/group geometry
    (group numbering restarts at 0). The scheduling-cells partition is
    built from these.
    @raise Invalid_argument when the range is out of bounds or
    [first_machine] is not a rack boundary. *)

val n_machines : t -> int
val n_racks : t -> int
val n_groups : t -> int
val capacity : t -> int -> Resource.t
(** Capacity of machine [i] (homogeneous today, per-machine for ablation). *)

val rack_of : t -> int -> int
val group_of_rack : t -> int -> int
val group_of : t -> int -> int
(** Group of a machine. *)

val machines_of_rack : t -> int -> int list
val racks_of_group : t -> int -> int list
val pp : Format.formatter -> t -> unit
