type id = int

type t = {
  id : id;
  name : string;
  n_containers : int;
  demand : Resource.t;
  priority : int;
  anti_affinity_within : bool;
  anti_affinity_across : id list;
}

(* App names end up as fields in the space-separated trace format
   (Trace_io); whitespace in a name would shift every later field on the
   line, so it is normalised away here — at the single point every app is
   built through — rather than quoted at serialisation time. *)
let sanitize_name ~id name =
  let name = String.trim name in
  if name = "" then Printf.sprintf "app-%d" id
  else
    String.map
      (fun ch -> if ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r' then '_' else ch)
      name

let make ~id ?name ~n_containers ~demand ?(priority = 0)
    ?(anti_affinity_within = false) ?(anti_affinity_across = []) () =
  if n_containers <= 0 then invalid_arg "Application.make: no containers";
  if priority < 0 then invalid_arg "Application.make: negative priority";
  let name =
    match name with
    | Some n -> sanitize_name ~id n
    | None -> Printf.sprintf "app-%d" id
  in
  {
    id;
    name;
    n_containers;
    demand;
    priority;
    anti_affinity_within;
    anti_affinity_across = List.sort_uniq Int.compare anti_affinity_across;
  }

let has_anti_affinity a =
  a.anti_affinity_within || a.anti_affinity_across <> []

let has_priority a = a.priority > 0

let containers a ~first_id ~first_arrival =
  List.init a.n_containers (fun i ->
      Container.make ~id:(first_id + i) ~app:a.id ~demand:a.demand
        ~priority:a.priority ~arrival:(first_arrival + i))

let pp ppf a =
  Format.fprintf ppf "%s[%d x %a, prio=%d%s%s]" a.name a.n_containers
    Resource.pp a.demand a.priority
    (if a.anti_affinity_within then ", anti-within" else "")
    (match a.anti_affinity_across with
    | [] -> ""
    | l -> Printf.sprintf ", anti-across:%d" (List.length l))
