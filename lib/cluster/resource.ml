type t = int array

let cpu_dim = 0
let mem_dim = 1
let milli = 1000.
let mib_per_gib = 1024.

let of_array a =
  if Array.length a = 0 then invalid_arg "Resource.of_array: empty";
  Array.iter (fun x -> if x < 0 then invalid_arg "Resource.of_array: negative") a;
  Array.copy a

let make ~cpu ~mem_gb =
  of_array
    [|
      int_of_float (Float.round (cpu *. milli));
      int_of_float (Float.round (mem_gb *. mib_per_gib));
    |]

let cpu_only cpu = of_array [| int_of_float (Float.round (cpu *. milli)) |]
let to_array t = Array.copy t
let get t d = t.(d)
let dims = Array.length
let zero n = Array.make n 0
let is_zero t = Array.for_all (fun x -> x = 0) t
let cpu t = float_of_int t.(cpu_dim) /. milli

let mem_gb t =
  if dims t <= mem_dim then invalid_arg "Resource.mem_gb: no memory dimension";
  float_of_int t.(mem_dim) /. mib_per_gib

let check a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Resource.%s: dimension mismatch" name)

let add a b =
  check a b "add";
  Array.init (Array.length a) (fun i -> a.(i) + b.(i))

let sub a b =
  check a b "sub";
  Array.init (Array.length a) (fun i ->
      let d = a.(i) - b.(i) in
      if d < 0 then invalid_arg "Resource.sub: negative result" else d)

let sub_clamped a b =
  check a b "sub_clamped";
  Array.init (Array.length a) (fun i -> max 0 (a.(i) - b.(i)))

let fits ~demand ~within =
  check demand within "fits";
  let ok = ref true in
  Array.iteri (fun i d -> if d > within.(i) then ok := false) demand;
  !ok

let scale k t =
  if k < 0 then invalid_arg "Resource.scale: negative factor";
  Array.map (fun x -> k * x) t

let sum = function
  | [] -> invalid_arg "Resource.sum: empty"
  | x :: rest -> List.fold_left add x rest

let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b
let compare = Stdlib.compare

let dominant_share ~demand ~capacity =
  check demand capacity "dominant_share";
  let best = ref 0. in
  Array.iteri
    (fun i d ->
      if capacity.(i) > 0 then
        best := Float.max !best (float_of_int d /. float_of_int capacity.(i)))
    demand;
  !best

let utilization ~used ~capacity =
  check used capacity "utilization";
  let total = ref 0. and n = ref 0 in
  Array.iteri
    (fun i u ->
      if capacity.(i) > 0 then begin
        total := !total +. (float_of_int u /. float_of_int capacity.(i));
        incr n
      end)
    used;
  if !n = 0 then 0. else !total /. float_of_int !n

let pp ppf t =
  if dims t >= 2 then Format.fprintf ppf "%.2fcpu/%.1fGB" (cpu t) (mem_gb t)
  else Format.fprintf ppf "%.2fcpu" (cpu t)

let to_string t = Format.asprintf "%a" pp t
