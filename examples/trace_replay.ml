(* Generate a calibrated synthetic Alibaba-style trace, save it, reload it,
   and replay it under every scheduler on the same cluster — a miniature
   version of the paper's evaluation pipeline.

   Run with: dune exec examples/trace_replay.exe *)

let () =
  let path = Filename.temp_file "aladdin_example" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* generate + persist *)
      let w = Alibaba.generate { (Alibaba.scaled 0.02) with Alibaba.seed = 1 } in
      Trace_io.save w path;
      Format.printf "trace written to %s@." path;
      Format.printf "%a@.@." Workload_stats.pp (Workload_stats.compute w);

      (* reload (round-trips exactly) *)
      let w =
        match Trace_io.load path with
        | Ok w -> w
        | Error e -> failwith (Trace_error.to_string e)
      in
      let machines = Workload.n_containers w / 10 in
      let total = Workload.n_containers w in

      let schedulers =
        [
          Sched_zoo.aladdin ();
          Sched_zoo.firmament Cost_model.Quincy ~reschd:8;
          Sched_zoo.medea ~a:1. ~b:1. ~c:0.;
          Sched_zoo.gokube ();
        ]
      in
      Format.printf "replaying %d containers on %d machines:@.@." total machines;
      Report.table
        ~header:[ "scheduler"; "undeployed"; "used"; "avg util"; "ms/ctr" ]
        (List.map
           (fun sched ->
             let r = Replay.run_workload sched w ~n_machines:machines in
             let u = Metrics.utilization_summary r.Replay.cluster in
             [
               r.Replay.scheduler;
               Report.pct (Metrics.undeployed_pct r.Replay.outcome ~total);
               string_of_int (Cluster.used_machines r.Replay.cluster);
               Report.pct u.Metrics.mean_pct;
               Printf.sprintf "%.3f" (Replay.per_container_ms r);
             ])
           schedulers))
