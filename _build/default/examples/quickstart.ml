(* Quickstart: build a small cluster, describe three applications with
   anti-affinity and priority constraints, and let Aladdin place them.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the applications (the CM inputs of Fig. 2): a replicated
     web tier that must spread across machines, a cache that must not sit
     next to the web tier, and a low-priority batch filler. *)
  let web =
    Application.make ~id:0 ~name:"web" ~n_containers:4
      ~demand:(Resource.make ~cpu:8. ~mem_gb:16.)
      ~priority:2 ~anti_affinity_within:true ()
  in
  let cache =
    Application.make ~id:1 ~name:"cache" ~n_containers:2
      ~demand:(Resource.make ~cpu:4. ~mem_gb:24.)
      ~priority:1 ~anti_affinity_across:[ 0 ] ()
  in
  let batch =
    Application.make ~id:2 ~name:"batch" ~n_containers:6
      ~demand:(Resource.make ~cpu:2. ~mem_gb:2.)
      ()
  in
  let apps = [| web; cache; batch |] in

  (* 2. Build a cluster: 8 machines of 32 CPU / 64 GB (the MM side). *)
  let topology =
    Topology.homogeneous ~n_machines:8
      ~capacity:(Resource.make ~cpu:32. ~mem_gb:64.)
      ()
  in
  let cluster =
    Cluster.create topology ~constraints:(Constraint_set.of_apps apps)
  in

  (* 3. Materialise the submission batch and schedule it with Aladdin. *)
  let containers =
    Array.of_list
      (List.concat_map
         (fun (a : Application.t) ->
           Application.containers a ~first_id:(100 * a.Application.id)
             ~first_arrival:0)
         (Array.to_list apps))
  in
  let scheduler = Aladdin.Aladdin_scheduler.make () in
  let outcome = scheduler.Scheduler.schedule cluster containers in

  (* 4. Inspect the result. *)
  Format.printf "outcome: %a@.@." Scheduler.pp_outcome outcome;
  List.iter
    (fun (cid, mid) -> Format.printf "container %3d -> machine %d@." cid mid)
    (List.sort compare outcome.Scheduler.placed);
  Format.printf "@.used machines: %d@." (Cluster.used_machines cluster);
  Format.printf "violations in final placement: %d@."
    (List.length (Cluster.current_violations cluster));
  assert (outcome.Scheduler.undeployed = []);
  assert (Cluster.current_violations cluster = [])
