(* A walk-through of the paper's §III.B mechanisms on a two-machine
   cluster: the weighted flow keeps high-priority containers safe from
   preemption, migration makes room the way Fig. 3(b) describes, and
   rescheduling-for-capacity reproduces Fig. 7.

   Run with: dune exec examples/priority_preemption.exe *)

let show cluster label =
  Format.printf "%s@." label;
  Array.iter
    (fun m ->
      let names =
        Machine.containers m
        |> List.map (fun (c : Container.t) ->
               Printf.sprintf "c%d(app%d,p%d)" c.Container.id c.Container.app
                 c.Container.priority)
        |> String.concat " "
      in
      Format.printf "  machine %d: [%s] free=%s@." (Machine.id m) names
        (Resource.to_string (Machine.free m)))
    (Cluster.machines cluster);
  Format.printf "@."

let () =
  (* Apps: A (high priority) and B (low priority) may not co-locate. *)
  let apps =
    [|
      Application.make ~id:0 ~name:"A" ~n_containers:2
        ~demand:(Resource.cpu_only 8.) ~priority:2 ~anti_affinity_across:[ 1 ] ();
      Application.make ~id:1 ~name:"B" ~n_containers:1
        ~demand:(Resource.cpu_only 24.) ();
      Application.make ~id:2 ~name:"filler" ~n_containers:2
        ~demand:(Resource.cpu_only 8.) ();
    |]
  in
  let topo =
    Topology.homogeneous ~n_machines:2 ~capacity:(Resource.cpu_only 32.) ()
  in
  let cluster = Cluster.create topo ~constraints:(Constraint_set.of_apps apps) in
  let scheduler = Aladdin.Aladdin_scheduler.make () in

  (* Scene 1 (Fig. 3(a) analogue): A and B arrive together. The weighted
     flow deploys A first; B lands on the other machine. No preemption of
     the high-priority container is possible. *)
  let a0 = Container.make ~id:0 ~app:0 ~demand:(Resource.cpu_only 8.) ~priority:2 ~arrival:0 in
  let b0 = Container.make ~id:1 ~app:1 ~demand:(Resource.cpu_only 24.) ~priority:0 ~arrival:1 in
  let o = scheduler.Scheduler.schedule cluster [| a0; b0 |] in
  Format.printf "scene 1: %a@." Scheduler.pp_outcome o;
  show cluster "after scheduling A (prio 2) and B (prio 0, anti to A):";

  (* Scene 2 (Fig. 3(b)): a filler occupies B's machine so the second A
     container only fits next to B — Aladdin migrates instead of
     violating. *)
  let filler =
    Container.make ~id:2 ~app:2 ~demand:(Resource.cpu_only 8.) ~priority:0 ~arrival:2
  in
  let a1 = Container.make ~id:3 ~app:0 ~demand:(Resource.cpu_only 8.) ~priority:2 ~arrival:3 in
  let o2 = scheduler.Scheduler.schedule cluster [| filler; a1 |] in
  Format.printf "scene 2: %a@." Scheduler.pp_outcome o2;
  show cluster "after the filler and a second A container (migration if needed):";

  (* Scene 3 (Fig. 7): a wide container arrives when no single machine has
     room — containers are rescheduled to make a hole. *)
  let wide =
    Container.make ~id:4 ~app:2 ~demand:(Resource.cpu_only 16.) ~priority:0 ~arrival:4
  in
  let o3 = scheduler.Scheduler.schedule cluster [| wide |] in
  Format.printf "scene 3: %a@." Scheduler.pp_outcome o3;
  show cluster "after the wide container (rescheduling-for-capacity):";
  Format.printf "final violations: %d (always 0 under Aladdin)@."
    (List.length (Cluster.current_violations cluster))
