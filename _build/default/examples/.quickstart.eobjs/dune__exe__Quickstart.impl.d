examples/quickstart.ml: Aladdin Application Array Cluster Constraint_set Format List Resource Scheduler Topology
