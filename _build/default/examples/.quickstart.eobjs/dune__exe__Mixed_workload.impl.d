examples/mixed_workload.ml: Aladdin Application Array Cluster Constraint_set Container Format List Resource Rng Scheduler Topology
