examples/kubernetes_integration.ml: Cluster Controller Format Kube_api Kube_objects List Printf Resolver Resource
