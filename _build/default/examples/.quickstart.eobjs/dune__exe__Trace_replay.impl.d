examples/trace_replay.ml: Alibaba Cluster Cost_model Filename Format Fun List Metrics Printf Replay Report Sched_zoo Sys Trace_io Workload Workload_stats
