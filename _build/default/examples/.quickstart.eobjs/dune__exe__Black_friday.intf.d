examples/black_friday.mli:
