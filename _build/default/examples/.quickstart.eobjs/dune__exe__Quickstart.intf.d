examples/quickstart.mli:
