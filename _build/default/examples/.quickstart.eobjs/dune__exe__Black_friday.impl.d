examples/black_friday.ml: Aladdin Alibaba Application Array Cluster Constraint_set Format List Metrics Printf Resource Scheduler Topology Unix Workload
