examples/priority_preemption.ml: Aladdin Application Array Cluster Constraint_set Container Format List Machine Printf Resource Scheduler String Topology
