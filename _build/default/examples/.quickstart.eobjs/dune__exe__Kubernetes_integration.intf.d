examples/kubernetes_integration.mli:
