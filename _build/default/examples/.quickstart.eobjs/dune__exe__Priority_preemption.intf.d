examples/priority_preemption.mli:
