(* Black Friday / 11.11 scale-out (§I): a running cluster suddenly receives
   a burst that multiplies the instances of the online applications ~100x.
   The burst must land fast, without violating anti-affinity, and without
   displacing what already runs.

   Run with: dune exec examples/black_friday.exe *)

let pct a b = 100. *. float_of_int a /. float_of_int (max 1 b)

let () =
  (* Steady state: a modest calibrated workload on a 400-machine cluster. *)
  let steady =
    Alibaba.generate { (Alibaba.scaled 0.01) with Alibaba.target_containers = 1500 }
  in
  (* The flash-sale tier: 3 online apps that scale from 2 to 200 containers
     each. High priority, strict anti-affinity within each app. *)
  let base_id = Array.length steady.Workload.apps in
  let sale_apps =
    Array.init 3 (fun i ->
        Application.make ~id:(base_id + i)
          ~name:(Printf.sprintf "flash-sale-%d" i)
          ~n_containers:200
          ~demand:(Resource.cpu_only 4.)
          ~priority:3 ~anti_affinity_within:true ())
  in
  let apps = Array.append steady.Workload.apps sale_apps in
  let cs = Constraint_set.of_apps apps in
  let topology =
    Topology.homogeneous ~n_machines:400
      ~capacity:steady.Workload.machine_capacity ()
  in
  let cluster = Cluster.create topology ~constraints:cs in
  let scheduler = Aladdin.Aladdin_scheduler.make () in

  (* Phase 1: steady state lands. *)
  let o1 = scheduler.Scheduler.schedule cluster steady.Workload.containers in
  Format.printf "steady state : %a@." Scheduler.pp_outcome o1;
  Format.printf "               %d machines used, utilization %a@.@."
    (Cluster.used_machines cluster)
    Metrics.pp_util
    (Metrics.utilization_summary cluster);

  (* Phase 2: the burst arrives all at once — 600 high-priority containers
     that must all run on distinct machines per app. *)
  let burst =
    Array.of_list
      (List.concat_map
         (fun (a : Application.t) ->
           Application.containers a
             ~first_id:(100_000 + (1000 * a.Application.id))
             ~first_arrival:0)
         (Array.to_list sale_apps))
  in
  let t0 = Unix.gettimeofday () in
  let o2 = scheduler.Scheduler.schedule cluster burst in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "flash burst  : %a@." Scheduler.pp_outcome o2;
  Format.printf "               placed %d/%d burst containers (%.1f%%) in %.0f ms@."
    (List.length o2.Scheduler.placed)
    (Array.length burst)
    (pct (List.length o2.Scheduler.placed) (Array.length burst))
    (1000. *. dt);
  Format.printf "               migrations %d, preemptions %d@."
    o2.Scheduler.migrations o2.Scheduler.preemptions;
  Format.printf "               %d machines used, utilization %a@."
    (Cluster.used_machines cluster)
    Metrics.pp_util
    (Metrics.utilization_summary cluster);
  Format.printf "               violations: %d@."
    (List.length (Cluster.current_violations cluster));
  assert (Cluster.current_violations cluster = [])
