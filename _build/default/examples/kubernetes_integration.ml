(* The co-design architecture of §IV.C / Fig. 6: Aladdin driving a
   (mock) Kubernetes API server through the events handling center, the
   model adaptor and the resolvers.

   Run with: dune exec examples/kubernetes_integration.exe *)

let () =
  (* An API server with a small mixed node pool. *)
  let api = Kube_api.create () in
  for i = 0 to 5 do
    Kube_api.add_node api
      {
        Kube_objects.node_name = Printf.sprintf "node-%d" i;
        capacity = Resource.cpu_only (if i < 4 then 32. else 64.);
      }
  done;
  (* Application profiles carry the LLA-level constraints. *)
  Kube_api.add_profile api
    {
      Kube_objects.profile_name = "storefront";
      app_id = 0;
      demand = Resource.cpu_only 8.;
      priority = 2;
      anti_affinity_within = true;
      anti_affinity_across = [ 1 ];
      replicas = 4;
    };
  Kube_api.add_profile api
    {
      Kube_objects.profile_name = "analytics";
      app_id = 1;
      demand = Resource.cpu_only 16.;
      priority = 0;
      anti_affinity_within = false;
      anti_affinity_across = [];
      replicas = 3;
    };

  let ctl = Controller.create api in

  (* Deployment 1: the analytics batch lands first. *)
  for i = 0 to 2 do
    ignore
      (Kube_api.create_pod api
         ~name:(Printf.sprintf "analytics-%d" i)
         ~profile:"analytics")
  done;
  let r1 = Controller.sync ctl in
  Format.printf "round 1: bound %d pods@." (List.length r1.Resolver.bound);

  (* Deployment 2: the storefront scales out; it must avoid analytics
     machines (anti-across) and spread (anti-within). *)
  for i = 0 to 3 do
    ignore
      (Kube_api.create_pod api
         ~name:(Printf.sprintf "storefront-%d" i)
         ~profile:"storefront")
  done;
  let r2 = Controller.sync ctl in
  Format.printf "round 2: bound %d pods, %d migrations@."
    (List.length r2.Resolver.bound)
    r2.Resolver.migrations;

  Format.printf "@.pod placements:@.";
  List.iter
    (fun (p : Kube_objects.pod) ->
      Format.printf "  %-14s %a@." p.Kube_objects.pod_name Kube_objects.pp_phase
        p.Kube_objects.phase)
    (Kube_api.pods api);
  match Controller.cluster ctl with
  | Some cluster ->
      Format.printf "@.scheduler mirror: %d placed, %d violations@."
        (Cluster.n_placed cluster)
        (List.length (Cluster.current_violations cluster));
      assert (Cluster.current_violations cluster = [])
  | None -> assert false
