(* Long-lived applications and short-lived batch tasks sharing one cluster
   (§IV.D): tasks churn through the free capacity while LLA batches arrive
   and keep their constraints satisfied throughout.

   Run with: dune exec examples/mixed_workload.exe *)

let () =
  let apps =
    [|
      Application.make ~id:0 ~name:"online-service" ~n_containers:12
        ~demand:(Resource.cpu_only 8.) ~priority:2 ~anti_affinity_within:true ();
      Application.make ~id:1 ~name:"stream-processor" ~n_containers:6
        ~demand:(Resource.cpu_only 4.) ~priority:1 ~anti_affinity_across:[ 0 ] ();
      Application.make ~id:2 ~name:"batch-tasks" ~n_containers:1
        ~demand:(Resource.cpu_only 1.) ();
    |]
  in
  let topo =
    Topology.homogeneous ~n_machines:24 ~capacity:(Resource.cpu_only 32.) ()
  in
  let cluster = Cluster.create topo ~constraints:(Constraint_set.of_apps apps) in

  (* LLA waves: the online service at t=10, the stream processor at t=40. *)
  let containers_of app_id first_id n demand priority =
    Array.init n (fun i ->
        Container.make ~id:(first_id + i) ~app:app_id
          ~demand:(Resource.cpu_only demand) ~priority ~arrival:i)
  in
  let lla_batches =
    [
      (10., containers_of 0 100 12 8. 2);
      (40., containers_of 1 200 6 4. 1);
    ]
  in
  (* 200 short tasks, Poisson-ish arrivals, 5-30s durations. *)
  let rng = Rng.create 7 in
  let tasks =
    List.init 200 (fun i ->
        Aladdin.Short_lived.make_task ~task_id:i
          ~demand:(Resource.cpu_only (float_of_int (1 + Rng.int rng 4)))
          ~duration:(5. +. Rng.float rng *. 25.)
          ~arrival:(Rng.float rng *. 100.))
  in
  let stats =
    Aladdin.Short_lived.run ~cluster ~task_app:2
      ~lla_scheduler:(Aladdin.Aladdin_scheduler.make ())
      ~lla_batches tasks
  in
  Format.printf "short-lived tasks : %d completed, %d expired@."
    stats.Aladdin.Short_lived.completed stats.Aladdin.Short_lived.expired;
  Format.printf "                    mean wait %.1fs, mean turnaround %.1fs, peak queue %d@."
    stats.Aladdin.Short_lived.mean_wait stats.Aladdin.Short_lived.mean_turnaround
    stats.Aladdin.Short_lived.peak_queue;
  Format.printf "long-lived apps   : %a@." Scheduler.pp_outcome
    stats.Aladdin.Short_lived.lla_outcome;
  Format.printf "final cluster     : %d containers resident, %d violations@."
    (Cluster.n_placed cluster)
    (List.length (Cluster.current_violations cluster));
  assert (Cluster.current_violations cluster = []);
  assert (stats.Aladdin.Short_lived.lla_outcome.Scheduler.undeployed = [])
