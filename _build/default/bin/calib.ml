let () =
  List.iter (fun f ->
    let w = Alibaba.generate (Alibaba.scaled f) in
    let total = Resource.to_array (Workload.total_demand w) in
    let cap = Resource.to_array w.Workload.machine_capacity in
    let machines = int_of_float (10000. *. f) in
    let s = Workload_stats.compute w in
    Printf.printf "scale %.2f: apps=%d ctrs=%d load=%.1f%% single=%.0f%% lt50=%.0f%% anti=%.0f%% prio=%.0f%% max_app=%d\n%!"
      f s.Workload_stats.n_apps s.Workload_stats.n_containers
      (100. *. float_of_int total.(0) /. float_of_int (cap.(0) * machines))
      (100. *. float_of_int s.Workload_stats.n_single_instance /. float_of_int s.Workload_stats.n_apps)
      (100. *. float_of_int s.Workload_stats.n_lt_50 /. float_of_int s.Workload_stats.n_apps)
      (100. *. float_of_int s.Workload_stats.n_anti_affinity /. float_of_int s.Workload_stats.n_apps)
      (100. *. float_of_int s.Workload_stats.n_priority /. float_of_int s.Workload_stats.n_apps)
      s.Workload_stats.max_app_size)
    [0.02; 0.05; 0.1; 0.5; 1.0]
