(* CLI driver: reproduce any table/figure of the paper by id. *)

let known =
  [
    ("table1", fun (_ : Exp_config.t) -> Table1.print ());
    ("fig8", Fig8.print);
    ("fig9", Fig9.print);
    ("fig10", Fig10.print);
    ("fig11", Fig10.print);
    (* Fig. 11 is printed by the Fig. 10 driver *)
    ("fig12", Fig12.print);
    ("fig13", Fig13.print);
    ("ablations", Ablations.print);
    ("hetero", Heterogeneous.print);
    ("online", Online.print);
    ("failure", Failure.print);
  ]

let run_one cfg id =
  match List.assoc_opt id known with
  | Some f -> f cfg
  | None ->
      Format.eprintf "unknown experiment %S@." id;
      exit 2

open Cmdliner

let ids =
  let doc =
    "Experiments to run: table1, fig8, fig9, fig10, fig11, fig12, fig13, \
     ablations, hetero, or 'all'."
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let scale =
  let doc = "Scale factor relative to the paper (1.0 = 10k machines/100k containers)." in
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let seed =
  let doc = "Workload generation seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let data_dir =
  let doc = "Also write each figure's raw data as TSV files into this directory." in
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)

let main ids scale seed data_dir =
  let cfg = Exp_config.make ~seed ~factor:scale () in
  (match data_dir with
  | Some dir ->
      let written = Data_export.export ~dir cfg in
      List.iter (fun p -> Format.printf "wrote %s@." p) written
  | None -> ());
  let ids =
    if List.mem "all" ids then List.map fst known
    else ids
  in
  (* fig11 duplicates fig10's driver; drop it when both are requested. *)
  let ids =
    if List.mem "fig10" ids then List.filter (fun i -> i <> "fig11") ids
    else ids
  in
  List.iter (run_one cfg) ids

let cmd =
  let doc = "Reproduce the Aladdin paper's tables and figures" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const main $ ids $ scale $ seed $ data_dir)

let () = exit (Cmd.eval cmd)
