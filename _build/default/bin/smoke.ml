(* Quick sanity probe: every scheduler against one small calibrated
   workload. Not part of the evaluation — use experiments_main for that. *)

let () =
  let params = { (Alibaba.scaled 0.02) with Alibaba.seed = 42 } in
  let w = Alibaba.generate params in
  Format.printf "workload:@.%a@.@." Workload_stats.pp (Workload_stats.compute w);
  let n_machines = Workload.n_containers w / 10 in
  let schedulers =
    [
      Sched_zoo.aladdin ();
      Sched_zoo.aladdin ~il:false ~dl:false ();
      Sched_zoo.firmament Cost_model.Quincy ~reschd:8;
      Sched_zoo.firmament Cost_model.Trivial ~reschd:1;
      Sched_zoo.firmament Cost_model.Octopus ~reschd:4;
      Sched_zoo.medea ~a:1. ~b:1. ~c:0.;
      Sched_zoo.medea ~a:1. ~b:1. ~c:0.5;
      Sched_zoo.gokube ();
    ]
  in
  List.iter
    (fun sched ->
      let r = Replay.run_workload sched w ~n_machines in
      Format.printf "%-22s %a | used=%d (%.3f ms/ctr)@." r.Replay.scheduler
        Scheduler.pp_outcome r.Replay.outcome
        (Cluster.used_machines r.Replay.cluster)
        (Replay.per_container_ms r))
    schedulers
