(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per paper artefact
   (Table I and Figs. 8-13), timing the scheduling kernel each experiment
   exercises on a small fixed workload.

   Part 2 — the full reproduction harness: regenerates every table and
   figure of the evaluation at the configured scale (ALADDIN_SCALE,
   default 0.05 here so a bench run stays in minutes; use the
   experiments_main binary for larger scales). *)

open Bechamel

let bench_workload =
  lazy (Alibaba.generate { (Alibaba.scaled 0.005) with Alibaba.seed = 42 })

let machines_for w = max 8 (Workload.n_containers w / 10)

let replay_test ~name sched_of =
  Test.make ~name
    (Staged.stage (fun () ->
         let w = Lazy.force bench_workload in
         ignore
           (Replay.run_workload (sched_of ()) w ~n_machines:(machines_for w))))

(* Table I: the common substrate every scheduler shares — building the
   tiered flow network over a batch. *)
let test_table1 =
  Test.make ~name:"table1/flow-graph-build"
    (Staged.stage (fun () ->
         let w = Lazy.force bench_workload in
         let cluster =
           Cluster.create
             (Workload.topology w ~n_machines:(machines_for w))
             ~constraints:(Workload.constraint_set w)
         in
         ignore (Aladdin.Flow_graph.build cluster w.Workload.containers)))

(* Fig. 8: workload generation and characterisation. *)
let test_fig8 =
  Test.make ~name:"fig8/trace-generate"
    (Staged.stage (fun () ->
         ignore
           (Workload_stats.compute
              (Alibaba.generate
                 { (Alibaba.scaled 0.002) with Alibaba.seed = 7 }))))

(* Fig. 9: placement quality — one bench per scheduler family. *)
let test_fig9_aladdin =
  replay_test ~name:"fig9/aladdin" (fun () -> Sched_zoo.aladdin ~base:16 ())

let test_fig9_firmament =
  replay_test ~name:"fig9/firmament-quincy" (fun () ->
      Sched_zoo.firmament Cost_model.Quincy ~reschd:8)

let test_fig9_medea =
  replay_test ~name:"fig9/medea" (fun () -> Sched_zoo.medea ~a:1. ~b:1. ~c:0.)

let test_fig9_gokube =
  replay_test ~name:"fig9/gokube" (fun () -> Sched_zoo.gokube ())

(* Fig. 10/11: the capacity-planning bisection. *)
let test_fig10 =
  Test.make ~name:"fig10/capacity-plan-aladdin"
    (Staged.stage (fun () ->
         let w = Lazy.force bench_workload in
         ignore (Capacity_planner.plan (Sched_zoo.aladdin ()) w)))

(* Fig. 12: the three Aladdin policies (the IL/DL latency ablation). *)
let test_fig12_plain =
  replay_test ~name:"fig12/aladdin-plain" (fun () ->
      Sched_zoo.aladdin ~il:false ~dl:false ())

let test_fig12_il =
  replay_test ~name:"fig12/aladdin-il" (fun () ->
      Sched_zoo.aladdin ~il:true ~dl:false ())

let test_fig12_il_dl =
  replay_test ~name:"fig12/aladdin-il-dl" (fun () -> Sched_zoo.aladdin ())

(* Fig. 13: the worst arrival characteristic (CSA). *)
let test_fig13 =
  Test.make ~name:"fig13/aladdin-csa"
    (Staged.stage (fun () ->
         let w = Lazy.force bench_workload in
         let w = Arrival.apply Arrival.Small_anti_affinity_first w in
         ignore
           (Replay.run_workload (Sched_zoo.aladdin ()) w
              ~n_machines:(machines_for w))))

let tests =
  Test.make_grouped ~name:"aladdin-bench"
    [
      test_table1;
      test_fig8;
      test_fig9_aladdin;
      test_fig9_firmament;
      test_fig9_medea;
      test_fig9_gokube;
      test_fig10;
      test_fig12_plain;
      test_fig12_il;
      test_fig12_il_dl;
      test_fig13;
    ]

let run_microbenches () =
  Format.printf "== Bechamel micro-benchmarks ==@.";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        let est =
          match Analyze.OLS.estimates v with
          | Some (e :: _) -> e
          | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e9 then Format.printf "%-45s %10.3f s/run@." name (ns /. 1e9)
      else if ns >= 1e6 then
        Format.printf "%-45s %10.3f ms/run@." name (ns /. 1e6)
      else Format.printf "%-45s %10.0f ns/run@." name ns)
    rows;
  Format.printf "@."

let run_full_harness () =
  let cfg =
    match Sys.getenv_opt "ALADDIN_SCALE" with
    | Some _ -> Exp_config.of_env ()
    | None -> Exp_config.make ~factor:0.05 ()
  in
  Format.printf
    "== Full reproduction harness (scale %.2f; set ALADDIN_SCALE to change) ==@."
    cfg.Exp_config.factor;
  Table1.print ();
  Fig8.print cfg;
  Fig9.print cfg;
  Fig10.print cfg;
  Fig12.print cfg;
  Fig13.print cfg;
  Ablations.print cfg;
  Heterogeneous.print cfg;
  Online.print cfg;
  Failure.print cfg

let () =
  run_microbenches ();
  run_full_harness ()
