(* Tests for the simplex / branch-and-bound ILP substrate. *)

module M = Lp.Model
module S = Lp.Simplex
module I = Lp.Ilp

let checkf = Alcotest.check (Alcotest.float 1e-6)

let solve_expect m expected =
  match S.solve m with
  | S.Optimal { objective; x } ->
      checkf "objective" expected objective;
      Alcotest.(check bool) "solution feasible" true (M.feasible m x)
  | S.Infeasible -> Alcotest.fail "unexpectedly infeasible"
  | S.Unbounded -> Alcotest.fail "unexpectedly unbounded"

(* max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18 → 36 at (2,6). Classic. *)
let test_simplex_classic () =
  let m = M.create () in
  let x = M.add_var m and y = M.add_var m in
  M.add_constraint m [ (x, 1.) ] M.Le 4.;
  M.add_constraint m [ (y, 2.) ] M.Le 12.;
  M.add_constraint m [ (x, 3.); (y, 2.) ] M.Le 18.;
  M.set_objective m [ (x, 3.); (y, 5.) ];
  solve_expect m 36.

let test_simplex_upper_bounds () =
  let m = M.create () in
  let x = M.add_var ~upper:2.5 m in
  M.set_objective m [ (x, 1.) ];
  solve_expect m 2.5

let test_simplex_unbounded () =
  let m = M.create () in
  let x = M.add_var m in
  M.set_objective m [ (x, 1.) ];
  Alcotest.(check bool) "unbounded" true (S.solve m = S.Unbounded)

let test_simplex_infeasible () =
  let m = M.create () in
  let x = M.add_var m in
  M.add_constraint m [ (x, 1.) ] M.Le 1.;
  M.add_constraint m [ (x, 1.) ] M.Ge 2.;
  M.set_objective m [ (x, 1.) ];
  Alcotest.(check bool) "infeasible" true (S.solve m = S.Infeasible)

let test_simplex_equality () =
  let m = M.create () in
  let x = M.add_var m and y = M.add_var m in
  M.add_constraint m [ (x, 1.); (y, 1.) ] M.Eq 10.;
  M.add_constraint m [ (x, 1.) ] M.Le 3.;
  M.set_objective m [ (x, 2.); (y, 1.) ];
  (* x=3, y=7 → 13 *)
  solve_expect m 13.

let test_simplex_ge_rows () =
  let m = M.create () in
  let x = M.add_var m and y = M.add_var m in
  (* minimize x+2y st x+y>=4, y>=1 → maximize -(x+2y) = -5 at (3,1) *)
  M.add_constraint m [ (x, 1.); (y, 1.) ] M.Ge 4.;
  M.add_constraint m [ (y, 1.) ] M.Ge 1.;
  M.set_objective m [ (x, -1.); (y, -2.) ];
  solve_expect m (-5.)

let test_simplex_degenerate () =
  (* Beale's cycling example — Bland's rule must terminate. *)
  let m = M.create () in
  let x1 = M.add_var m and x2 = M.add_var m
  and x3 = M.add_var m and x4 = M.add_var m in
  M.add_constraint m [ (x1, 0.25); (x2, -8.); (x3, -1.); (x4, 9.) ] M.Le 0.;
  M.add_constraint m [ (x1, 0.5); (x2, -12.); (x3, -0.5); (x4, 3.) ] M.Le 0.;
  M.add_constraint m [ (x3, 1.) ] M.Le 1.;
  M.set_objective m [ (x1, 0.75); (x2, -20.); (x3, 0.5); (x4, -6.) ];
  solve_expect m 1.25

let test_feasible_check () =
  let m = M.create () in
  let x = M.add_var ~upper:5. m in
  M.add_constraint m [ (x, 1.) ] M.Ge 2.;
  Alcotest.(check bool) "inside" true (M.feasible m [| 3. |]);
  Alcotest.(check bool) "below row" false (M.feasible m [| 1. |]);
  Alcotest.(check bool) "above bound" false (M.feasible m [| 6. |]);
  Alcotest.(check bool) "negative" false (M.feasible m [| -1. |])

(* ---------- ILP ---------- *)

let test_ilp_knapsack () =
  (* values 10,13,7; weights 3,4,2; capacity 6 → best 20 (items 1+3). *)
  let m = M.create () in
  let xs = List.init 3 (fun _ -> M.add_var ~upper:1. ~integer:true m) in
  let weights = [ 3.; 4.; 2. ] and values = [ 10.; 13.; 7. ] in
  M.add_constraint m (List.combine xs weights) M.Le 6.;
  M.set_objective m (List.combine xs values);
  match I.solve m with
  | I.Solved { objective; status; x } ->
      checkf "knapsack optimum" 20. objective;
      Alcotest.(check bool) "status optimal" true (status = I.Optimal);
      List.iteri
        (fun i v ->
          Alcotest.(check bool)
            (Printf.sprintf "x%d integral" i)
            true
            (Float.abs (x.(v) -. Float.round x.(v)) < 1e-6))
        xs
  | I.Infeasible -> Alcotest.fail "should be feasible"

let test_ilp_rounds_lp_down () =
  (* LP relaxation gives x=1.5; ILP must give 1. *)
  let m = M.create () in
  let x = M.add_var ~integer:true m in
  M.add_constraint m [ (x, 2.) ] M.Le 3.;
  M.set_objective m [ (x, 1.) ];
  match I.solve m with
  | I.Solved { objective; _ } -> checkf "integer optimum" 1. objective
  | I.Infeasible -> Alcotest.fail "feasible"

let test_ilp_infeasible () =
  let m = M.create () in
  let x = M.add_var ~upper:1. ~integer:true m in
  M.add_constraint m [ (x, 2.) ] M.Ge 1.;
  M.add_constraint m [ (x, 2.) ] M.Le 1.;
  (* only x=0.5 satisfies both; no integer point *)
  M.set_objective m [ (x, 1.) ];
  Alcotest.(check bool) "infeasible" true (I.solve m = I.Infeasible)

let test_ilp_assignment () =
  (* 2 tasks, 2 machines, profits [[5;9];[8;2]]; each task and machine at
     most once → 9 + 8 = 17. *)
  let m = M.create () in
  let x = Array.init 2 (fun _ -> Array.init 2 (fun _ -> M.add_var ~upper:1. ~integer:true m)) in
  for i = 0 to 1 do
    M.add_constraint m [ (x.(i).(0), 1.); (x.(i).(1), 1.) ] M.Le 1.
  done;
  for j = 0 to 1 do
    M.add_constraint m [ (x.(0).(j), 1.); (x.(1).(j), 1.) ] M.Le 1.
  done;
  let profits = [| [| 5.; 9. |]; [| 8.; 2. |] |] in
  M.set_objective m
    (List.concat
       (List.init 2 (fun i -> List.init 2 (fun j -> (x.(i).(j), profits.(i).(j))))));
  match I.solve m with
  | I.Solved { objective; _ } -> checkf "assignment optimum" 17. objective
  | I.Infeasible -> Alcotest.fail "feasible"

let test_ilp_budget () =
  (* A tiny budget still returns some incumbent with Feasible status (or
     proves optimality fast on this easy model). *)
  let m = M.create () in
  let xs = List.init 6 (fun _ -> M.add_var ~upper:1. ~integer:true m) in
  M.add_constraint m (List.map (fun v -> (v, 1.)) xs) M.Le 3.;
  M.set_objective m (List.map (fun v -> (v, 1.)) xs);
  match I.solve ~node_budget:2 m with
  | I.Solved { objective; _ } ->
      Alcotest.(check bool) "objective within bound" true (objective <= 3. +. 1e-9)
  | I.Infeasible -> Alcotest.fail "feasible"

(* Brute-force verification on random small 0/1 ILPs. *)
let random_ilp_gen =
  QCheck.Gen.(
    let* nv = int_range 1 4 in
    let* nc = int_range 0 3 in
    let* obj = list_repeat nv (int_range (-5) 5) in
    let* rows =
      list_repeat nc
        (pair (list_repeat nv (int_range (-4) 4)) (int_range 0 8))
    in
    return (nv, obj, rows))

let brute_force (nv, obj, rows) =
  let best = ref neg_infinity in
  for mask = 0 to (1 lsl nv) - 1 do
    let x = List.init nv (fun i -> if mask land (1 lsl i) <> 0 then 1. else 0.) in
    let ok =
      List.for_all
        (fun (coeffs, rhs) ->
          List.fold_left2 (fun acc c xi -> acc +. (float_of_int c *. xi)) 0. coeffs x
          <= float_of_int rhs +. 1e-9)
        rows
    in
    if ok then begin
      let v =
        List.fold_left2 (fun acc c xi -> acc +. (float_of_int c *. xi)) 0. obj x
      in
      if v > !best then best := v
    end
  done;
  !best

let prop_ilp_matches_brute_force =
  QCheck.Test.make ~count:200 ~name:"B&B matches brute force on 0/1 ILPs"
    (QCheck.make random_ilp_gen) (fun ((nv, obj, rows) as spec) ->
      let m = M.create () in
      let xs = List.init nv (fun _ -> M.add_var ~upper:1. ~integer:true m) in
      List.iter
        (fun (coeffs, rhs) ->
          M.add_constraint m
            (List.combine xs (List.map float_of_int coeffs))
            M.Le (float_of_int rhs))
        rows;
      M.set_objective m (List.combine xs (List.map float_of_int obj));
      let expected = brute_force spec in
      match I.solve m with
      | I.Solved { objective; _ } -> Float.abs (objective -. expected) < 1e-6
      | I.Infeasible -> expected = neg_infinity)

(* Random bounded LPs, feasible by construction: pick a witness point x*,
   make every row satisfied by it. The solver must return Optimal with an
   objective at least as good as the witness. *)
let random_lp_gen =
  QCheck.Gen.(
    let* nv = int_range 1 4 in
    let* nc = int_range 0 4 in
    let* witness = list_repeat nv (int_range 0 5) in
    let* obj = list_repeat nv (int_range (-5) 5) in
    let* rows = list_repeat nc (list_repeat nv (int_range 0 4)) in
    return (nv, witness, obj, rows))

let prop_simplex_beats_witness =
  QCheck.Test.make ~count:300 ~name:"simplex optimal >= feasible witness"
    (QCheck.make random_lp_gen) (fun (nv, witness, obj, rows) ->
      let m = M.create () in
      let xs = List.init nv (fun _ -> M.add_var ~upper:10. m) in
      List.iter
        (fun coeffs ->
          let rhs =
            List.fold_left2
              (fun acc c w -> acc +. (float_of_int c *. float_of_int w))
              0. coeffs witness
          in
          M.add_constraint m
            (List.combine xs (List.map float_of_int coeffs))
            M.Le rhs)
        rows;
      M.set_objective m (List.combine xs (List.map float_of_int obj));
      let witness_value =
        List.fold_left2
          (fun acc c w -> acc +. (float_of_int c *. float_of_int w))
          0. obj witness
      in
      match S.solve m with
      | S.Optimal { objective; x } ->
          M.feasible m x && objective >= witness_value -. 1e-6
      | S.Infeasible | S.Unbounded -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "classic" `Quick test_simplex_classic;
          Alcotest.test_case "upper bounds" `Quick test_simplex_upper_bounds;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "equality rows" `Quick test_simplex_equality;
          Alcotest.test_case "ge rows" `Quick test_simplex_ge_rows;
          Alcotest.test_case "degenerate (Beale)" `Quick test_simplex_degenerate;
          Alcotest.test_case "feasible check" `Quick test_feasible_check;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "knapsack" `Quick test_ilp_knapsack;
          Alcotest.test_case "rounds LP down" `Quick test_ilp_rounds_lp_down;
          Alcotest.test_case "infeasible" `Quick test_ilp_infeasible;
          Alcotest.test_case "assignment" `Quick test_ilp_assignment;
          Alcotest.test_case "node budget" `Quick test_ilp_budget;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_ilp_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_simplex_beats_witness;
        ] );
    ]
