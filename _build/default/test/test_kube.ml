(* Tests for the Kubernetes co-design layer (Fig. 6): the mock API server,
   the events handling center, the model adaptor and the resolvers. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let node name cpu =
  { Kube_objects.node_name = name; capacity = Resource.cpu_only cpu }

let profile ?(priority = 0) ?(within = false) ?(across = []) name app_id cpu
    replicas =
  {
    Kube_objects.profile_name = name;
    app_id;
    demand = Resource.cpu_only cpu;
    priority;
    anti_affinity_within = within;
    anti_affinity_across = across;
    replicas;
  }

let basic_api () =
  let api = Kube_api.create () in
  List.iter (Kube_api.add_node api)
    [ node "n0" 32.; node "n1" 32.; node "n2" 32.; node "n3" 32.; node "n4" 32. ];
  Kube_api.add_profile api (profile "web" 0 8. 3 ~within:true);
  Kube_api.add_profile api (profile "cache" 1 4. 2 ~across:[ 0 ]);
  Kube_api.add_profile api (profile "batch" 2 2. 4);
  api

(* ---------- api server ---------- *)

let test_api_objects () =
  let api = basic_api () in
  check int "nodes" 5 (List.length (Kube_api.nodes api));
  check int "profiles" 3 (List.length (Kube_api.profiles api));
  let p = Kube_api.create_pod api ~name:"web-0" ~profile:"web" in
  check bool "pending" true (p.Kube_objects.phase = Kube_objects.Pending);
  Alcotest.check_raises "duplicate pod"
    (Invalid_argument "Kube_api.create_pod: duplicate") (fun () ->
      ignore (Kube_api.create_pod api ~name:"web-0" ~profile:"web"));
  Alcotest.check_raises "unknown profile (admission)"
    (Invalid_argument "Kube_api.create_pod: unknown profile") (fun () ->
      ignore (Kube_api.create_pod api ~name:"x" ~profile:"nope"));
  Alcotest.check_raises "duplicate node"
    (Invalid_argument "Kube_api.add_node: duplicate") (fun () ->
      Kube_api.add_node api (node "n0" 32.));
  Alcotest.check_raises "duplicate app id"
    (Invalid_argument "Kube_api.add_profile: duplicate app id") (fun () ->
      Kube_api.add_profile api (profile "other" 0 1. 1))

let test_api_bind_lifecycle () =
  let api = basic_api () in
  let _ = Kube_api.create_pod api ~name:"web-0" ~profile:"web" in
  Kube_api.bind api ~pod:"web-0" ~node:"n1";
  (match Kube_api.find_pod api "web-0" with
  | Some p -> check bool "bound" true (p.Kube_objects.phase = Kube_objects.Bound "n1")
  | None -> Alcotest.fail "pod exists");
  Alcotest.check_raises "rebind same node"
    (Invalid_argument "Kube_api.bind: already bound") (fun () ->
      Kube_api.bind api ~pod:"web-0" ~node:"n1");
  (* migration: re-bind to a different node is allowed *)
  Kube_api.bind api ~pod:"web-0" ~node:"n2";
  Kube_api.delete_pod api "web-0";
  check bool "gone" true (Kube_api.find_pod api "web-0" = None);
  Alcotest.check_raises "delete unknown" Not_found (fun () ->
      Kube_api.delete_pod api "web-0")

let test_api_watch_replays_and_streams () =
  let api = basic_api () in
  let _ = Kube_api.create_pod api ~name:"web-0" ~profile:"web" in
  let seen = ref [] in
  Kube_api.watch api (fun ev -> seen := ev :: !seen);
  (* list part: 5 nodes + 3 profiles + 1 pod *)
  check int "replayed" 9 (List.length !seen);
  let v0 = Kube_api.resource_version api in
  let _ = Kube_api.create_pod api ~name:"web-1" ~profile:"web" in
  check int "streamed" 10 (List.length !seen);
  check bool "version bumped" true (Kube_api.resource_version api > v0)

(* ---------- ehc ---------- *)

let test_ehc_batches_changes () =
  let api = basic_api () in
  let ehc = Ehc.attach api in
  let _ = Kube_api.create_pod api ~name:"a" ~profile:"batch" in
  let _ = Kube_api.create_pod api ~name:"b" ~profile:"batch" in
  check int "pending counted" 2 (Ehc.pending_count ehc);
  let c = Ehc.drain ehc in
  check int "nodes in first drain" 5 (List.length c.Ehc.new_nodes);
  check int "profiles in first drain" 3 (List.length c.Ehc.new_profiles);
  check int "pods in order" 2 (List.length c.Ehc.pending_pods);
  check bool "order preserved" true
    (List.map (fun (p : Kube_objects.pod) -> p.Kube_objects.pod_name)
       c.Ehc.pending_pods
    = [ "a"; "b" ]);
  let c2 = Ehc.drain ehc in
  check int "second drain empty" 0 (List.length c2.Ehc.pending_pods)

let test_ehc_drops_deleted_pending () =
  let api = basic_api () in
  let ehc = Ehc.attach api in
  let _ = Kube_api.create_pod api ~name:"a" ~profile:"batch" in
  Kube_api.delete_pod api "a";
  let c = Ehc.drain ehc in
  check int "pending gone" 0 (List.length c.Ehc.pending_pods);
  check int "not a bound deletion" 0 (List.length c.Ehc.deleted_pods)

(* ---------- controller end-to-end ---------- *)

let test_controller_schedules_and_binds () =
  let api = basic_api () in
  let ctl = Controller.create api in
  for i = 0 to 2 do
    ignore (Kube_api.create_pod api ~name:(Printf.sprintf "web-%d" i) ~profile:"web")
  done;
  for i = 0 to 1 do
    ignore (Kube_api.create_pod api ~name:(Printf.sprintf "cache-%d" i) ~profile:"cache")
  done;
  let report = Controller.sync ctl in
  check int "all bound" 5 (List.length report.Resolver.bound);
  check int "none unschedulable" 0 (List.length report.Resolver.unschedulable);
  (* anti-within: the three web pods sit on three distinct nodes *)
  let web_nodes =
    List.filter_map
      (fun (p : Kube_objects.pod) ->
        if p.Kube_objects.profile = "web" then
          match p.Kube_objects.phase with
          | Kube_objects.Bound n -> Some n
          | _ -> None
        else None)
      (Kube_api.pods api)
  in
  check int "web spread" 3 (List.length (List.sort_uniq compare web_nodes));
  (* cache must not share a node with web (anti-across) *)
  let node_of name =
    match Kube_api.find_pod api name with
    | Some { Kube_objects.phase = Kube_objects.Bound n; _ } -> Some n
    | _ -> None
  in
  List.iter
    (fun cache ->
      match node_of cache with
      | Some n -> check bool "cache apart from web" true (not (List.mem n web_nodes))
      | None -> Alcotest.fail "cache bound")
    [ "cache-0"; "cache-1" ];
  (* mirror agrees with the API *)
  match Controller.cluster ctl with
  | Some cluster -> check int "mirror placements" 5 (Cluster.n_placed cluster)
  | None -> Alcotest.fail "cluster mirror exists"

let test_controller_unschedulable_and_delete_frees () =
  let api = Kube_api.create () in
  Kube_api.add_node api (node "n0" 8.);
  Kube_api.add_profile api (profile "big" 0 8. 2 ~within:true);
  let ctl = Controller.create api in
  let _ = Kube_api.create_pod api ~name:"big-0" ~profile:"big" in
  let _ = Kube_api.create_pod api ~name:"big-1" ~profile:"big" in
  let report = Controller.sync ctl in
  (* one node: the second anti-within pod cannot land *)
  check int "one bound" 1 (List.length report.Resolver.bound);
  check int "one unschedulable" 1 (List.length report.Resolver.unschedulable);
  (* deleting the bound pod frees the node for a new pod *)
  let bound_name = fst (List.hd report.Resolver.bound) in
  Kube_api.delete_pod api bound_name;
  let _ = Kube_api.create_pod api ~name:"big-2" ~profile:"big" in
  let report2 = Controller.sync ctl in
  check int "replacement bound" 1 (List.length report2.Resolver.bound)

let test_controller_multiple_rounds () =
  let api = basic_api () in
  let ctl = Controller.create api in
  let _ = Kube_api.create_pod api ~name:"batch-0" ~profile:"batch" in
  let r1 = Controller.sync ctl in
  check int "round 1 binds" 1 (List.length r1.Resolver.bound);
  let r_idle = Controller.sync ctl in
  check int "idle round binds nothing" 0 (List.length r_idle.Resolver.bound);
  let _ = Kube_api.create_pod api ~name:"batch-1" ~profile:"batch" in
  let r2 = Controller.sync ctl in
  check int "round 2 binds" 1 (List.length r2.Resolver.bound)

let test_controller_cordon_and_drain () =
  let api = basic_api () in
  let ctl = Controller.create api in
  for i = 0 to 2 do
    ignore (Kube_api.create_pod api ~name:(Printf.sprintf "web-%d" i) ~profile:"web")
  done;
  let r = Controller.sync ctl in
  check int "three bound" 3 (List.length r.Resolver.bound);
  (* cordon: the node keeps its pod but takes no new ones *)
  let victim_node =
    match Kube_api.find_pod api "web-0" with
    | Some { Kube_objects.phase = Kube_objects.Bound n; _ } -> n
    | _ -> Alcotest.fail "web-0 bound"
  in
  Controller.cordon ctl ~node:victim_node;
  let _ = Kube_api.create_pod api ~name:"batch-x" ~profile:"batch" in
  let r2 = Controller.sync ctl in
  (match r2.Resolver.bound with
  | [ (_, node) ] -> check bool "avoided cordoned node" true (node <> victim_node)
  | _ -> Alcotest.fail "batch-x bound");
  (* drain: the web pod moves to another node, anti-within preserved *)
  let report = Controller.drain_node ctl ~node:victim_node in
  check int "one pod rebound" 1 (List.length report.Resolver.bound);
  let web_nodes =
    List.filter_map
      (fun (p : Kube_objects.pod) ->
        if p.Kube_objects.profile = "web" then
          match p.Kube_objects.phase with
          | Kube_objects.Bound n -> Some n
          | _ -> None
        else None)
      (Kube_api.pods api)
  in
  check int "web still on 3 distinct nodes" 3
    (List.length (List.sort_uniq compare web_nodes));
  check bool "none on the drained node" true
    (not (List.mem victim_node web_nodes));
  Controller.uncordon ctl ~node:victim_node;
  Alcotest.check_raises "unknown node" (Invalid_argument "Controller: unknown node")
    (fun () -> Controller.cordon ctl ~node:"nope")

let test_controller_heterogeneous_nodes () =
  let api = Kube_api.create () in
  Kube_api.add_node api (node "small" 4.);
  Kube_api.add_node api (node "large" 64.);
  Kube_api.add_profile api (profile "fat" 0 32. 1);
  let ctl = Controller.create api in
  let _ = Kube_api.create_pod api ~name:"fat-0" ~profile:"fat" in
  let report = Controller.sync ctl in
  check bool "lands on the large node" true
    (report.Resolver.bound = [ ("fat-0", "large") ])

let () =
  Alcotest.run "kube"
    [
      ( "api",
        [
          Alcotest.test_case "objects" `Quick test_api_objects;
          Alcotest.test_case "bind lifecycle" `Quick test_api_bind_lifecycle;
          Alcotest.test_case "watch" `Quick test_api_watch_replays_and_streams;
        ] );
      ( "ehc",
        [
          Alcotest.test_case "batches changes" `Quick test_ehc_batches_changes;
          Alcotest.test_case "drops deleted pending" `Quick
            test_ehc_drops_deleted_pending;
        ] );
      ( "controller",
        [
          Alcotest.test_case "schedules and binds" `Quick
            test_controller_schedules_and_binds;
          Alcotest.test_case "unschedulable + delete frees" `Quick
            test_controller_unschedulable_and_delete_frees;
          Alcotest.test_case "multiple rounds" `Quick test_controller_multiple_rounds;
          Alcotest.test_case "cordon and drain" `Quick
            test_controller_cordon_and_drain;
          Alcotest.test_case "heterogeneous nodes" `Quick
            test_controller_heterogeneous_nodes;
        ] );
    ]
