(* Tests for the discrete-event core and the short-lived/LLA mixed
   scheduler (§IV.D). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- des ---------- *)

let test_des_orders_events () =
  let q = Des.create () in
  Des.schedule q ~at:3. "c";
  Des.schedule q ~at:1. "a";
  Des.schedule q ~at:2. "b";
  let order = ref [] in
  let rec drain () =
    match Des.next q with
    | Some (_, x) ->
        order := x :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order)

let test_des_fifo_ties () =
  let q = Des.create () in
  for i = 0 to 9 do
    Des.schedule q ~at:5. i
  done;
  let out = ref [] in
  let rec drain () =
    match Des.next q with
    | Some (_, x) ->
        out := x :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order on ties"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

let test_des_clock_and_guards () =
  let q = Des.create () in
  Des.schedule q ~at:10. ();
  check bool "clock starts at 0" true (Des.now q = 0.);
  ignore (Des.next q);
  check bool "clock advanced" true (Des.now q = 10.);
  Alcotest.check_raises "no scheduling in the past"
    (Invalid_argument "Des.schedule: in the past") (fun () ->
      Des.schedule q ~at:5. ());
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Des.after: negative delay") (fun () ->
      Des.after q ~delay:(-1.) ());
  Des.after q ~delay:2. ();
  check int "pending" 1 (Des.pending q)

let test_des_interleaved_pop_push () =
  let q = Des.create () in
  Des.schedule q ~at:1. 1;
  (match Des.next q with
  | Some (_, 1) -> Des.after q ~delay:0.5 2
  | _ -> Alcotest.fail "expected 1");
  Des.schedule q ~at:1.2 3;
  (match Des.next q with
  | Some (t, 3) -> check bool "1.2 first" true (t = 1.2)
  | _ -> Alcotest.fail "expected 3");
  match Des.next q with
  | Some (t, 2) -> check bool "then 1.5" true (t = 1.5)
  | _ -> Alcotest.fail "expected 2"

(* model-based: Des agrees with a sorted-list reference on random
   schedules *)
let prop_des_matches_sorted_reference =
  let gen =
    QCheck.Gen.(list_size (int_range 1 40) (int_range 0 1000))
  in
  QCheck.Test.make ~count:300 ~name:"Des pops in (time, insertion) order"
    (QCheck.make gen) (fun times ->
      let q = Des.create () in
      List.iteri
        (fun i t -> Des.schedule q ~at:(float_of_int t) (i, t))
        times;
      let expected =
        List.mapi (fun i t -> (i, t)) times
        |> List.stable_sort (fun (_, a) (_, b) -> Int.compare a b)
      in
      let rec drain acc =
        match Des.next q with
        | Some (_, x) -> drain (x :: acc)
        | None -> List.rev acc
      in
      drain [] = expected)

(* ---------- short-lived tasks ---------- *)

let mixed_cluster () =
  let apps =
    [|
      Application.make ~id:0 ~name:"lla" ~n_containers:4
        ~demand:(Resource.cpu_only 8.) ~priority:1 ~anti_affinity_within:true ();
      Application.make ~id:1 ~name:"batch" ~n_containers:1
        ~demand:(Resource.cpu_only 1.) ();
    |]
  in
  let topo =
    Topology.homogeneous ~n_machines:4 ~capacity:(Resource.cpu_only 16.) ()
  in
  Cluster.create topo ~constraints:(Constraint_set.of_apps apps)

let task ~id ?(cpu = 4.) ?(duration = 10.) arrival =
  Aladdin.Short_lived.make_task ~task_id:id ~demand:(Resource.cpu_only cpu)
    ~duration ~arrival

let run ?backfill ?max_queue ?(lla_batches = []) tasks =
  let cluster = mixed_cluster () in
  let stats =
    Aladdin.Short_lived.run ?backfill ?max_queue ~cluster ~task_app:1
      ~lla_scheduler:(Aladdin.Aladdin_scheduler.make ())
      ~lla_batches tasks
  in
  (cluster, stats)

let test_tasks_complete_and_free_capacity () =
  let tasks = List.init 8 (fun i -> task ~id:i (float_of_int i)) in
  let cluster, stats = run tasks in
  check int "all complete" 8 stats.Aladdin.Short_lived.completed;
  check int "capacity fully returned" 0 (Cluster.n_placed cluster);
  check bool "no expiry" true (stats.Aladdin.Short_lived.expired = 0)

let test_tasks_queue_under_pressure () =
  (* 4 machines x 16 cpu = 64; 32 concurrent 4-cpu tasks saturate; the
     rest wait. All arrive at t=0 with duration 10. *)
  let tasks = List.init 20 (fun i -> task ~id:i ~cpu:16. 0.) in
  let _, stats = run tasks in
  check int "all complete eventually" 20 stats.Aladdin.Short_lived.completed;
  check bool "waiting happened" true (stats.Aladdin.Short_lived.mean_wait > 0.);
  check bool "peak queue grew" true (stats.Aladdin.Short_lived.peak_queue > 0);
  check bool "turnaround >= duration" true
    (stats.Aladdin.Short_lived.mean_turnaround >= 10.)

let test_task_queue_bound () =
  let tasks = List.init 30 (fun i -> task ~id:i ~cpu:16. ~duration:100. 0.) in
  let _, stats = run ~max_queue:5 tasks in
  check bool "some expired" true (stats.Aladdin.Short_lived.expired > 0);
  check int "completed + expired = all" 30
    (stats.Aladdin.Short_lived.completed + stats.Aladdin.Short_lived.expired)

let test_backfill_beats_fifo () =
  (* A 16-cpu head blocks the queue while small tasks could run: backfill
     completes them earlier. *)
  let tasks =
    task ~id:0 ~cpu:12. ~duration:50. 0.
    :: task ~id:1 ~cpu:12. ~duration:50. 0.
    :: task ~id:2 ~cpu:12. ~duration:50. 0.
    :: task ~id:3 ~cpu:12. ~duration:50. 0.
    :: task ~id:4 ~cpu:16. ~duration:50. 1.  (* blocked head: needs 16 free *)
    :: List.init 8 (fun i -> task ~id:(5 + i) ~cpu:1. ~duration:5. 2.)
  in
  let _, with_bf = run ~backfill:true tasks in
  let _, without_bf = run ~backfill:false tasks in
  check bool "backfill lowers mean wait" true
    (with_bf.Aladdin.Short_lived.mean_wait
    < without_bf.Aladdin.Short_lived.mean_wait)

let test_llas_and_tasks_coexist () =
  let lla_batch =
    Array.init 4 (fun i ->
        Container.make ~id:(100 + i) ~app:0 ~demand:(Resource.cpu_only 8.)
          ~priority:1 ~arrival:i)
  in
  let tasks = List.init 12 (fun i -> task ~id:i ~cpu:4. (float_of_int i)) in
  let cluster, stats = run ~lla_batches:[ (5., lla_batch) ] tasks in
  check int "tasks all complete" 12 stats.Aladdin.Short_lived.completed;
  let o = stats.Aladdin.Short_lived.lla_outcome in
  check int "LLAs all placed" 4 (List.length o.Scheduler.placed);
  check int "LLAs stay while tasks drain" 4 (Cluster.n_placed cluster);
  check int "no violations" 0 (List.length (Cluster.current_violations cluster))

let test_task_validation () =
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Short_lived.make_task: duration") (fun () ->
      ignore
        (Aladdin.Short_lived.make_task ~task_id:0
           ~demand:(Resource.cpu_only 1.) ~duration:0. ~arrival:0.));
  Alcotest.check_raises "bad arrival"
    (Invalid_argument "Short_lived.make_task: arrival") (fun () ->
      ignore
        (Aladdin.Short_lived.make_task ~task_id:0
           ~demand:(Resource.cpu_only 1.) ~duration:1. ~arrival:(-1.)))

let () =
  Alcotest.run "mixed"
    [
      ( "des",
        [
          Alcotest.test_case "orders events" `Quick test_des_orders_events;
          Alcotest.test_case "FIFO ties" `Quick test_des_fifo_ties;
          Alcotest.test_case "clock & guards" `Quick test_des_clock_and_guards;
          Alcotest.test_case "interleaved" `Quick test_des_interleaved_pop_push;
          QCheck_alcotest.to_alcotest prop_des_matches_sorted_reference;
        ] );
      ( "short-lived",
        [
          Alcotest.test_case "complete & free" `Quick
            test_tasks_complete_and_free_capacity;
          Alcotest.test_case "queue under pressure" `Quick
            test_tasks_queue_under_pressure;
          Alcotest.test_case "queue bound" `Quick test_task_queue_bound;
          Alcotest.test_case "backfill beats FIFO" `Quick test_backfill_beats_fifo;
          Alcotest.test_case "LLAs + tasks coexist" `Quick
            test_llas_and_tasks_coexist;
          Alcotest.test_case "validation" `Quick test_task_validation;
        ] );
    ]
