(* Tests for the cluster model: resources, machines, constraints,
   blacklists and the mutable cluster state. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk_container ?(id = 0) ?(app = 0) ?(priority = 0) ?(arrival = 0) cpu =
  Container.make ~id ~app ~demand:(Resource.cpu_only cpu) ~priority ~arrival

(* ---------- resources ---------- *)

let test_resource_make () =
  let r = Resource.make ~cpu:2.5 ~mem_gb:4. in
  check (Alcotest.float 1e-9) "cpu" 2.5 (Resource.cpu r);
  check (Alcotest.float 1e-9) "mem" 4. (Resource.mem_gb r);
  check int "dims" 2 (Resource.dims r);
  let c = Resource.cpu_only 1.5 in
  check int "cpu-only dims" 1 (Resource.dims c);
  Alcotest.check_raises "no mem dim"
    (Invalid_argument "Resource.mem_gb: no memory dimension") (fun () ->
      ignore (Resource.mem_gb c))

let test_resource_arith () =
  let a = Resource.of_array [| 4; 6 |] and b = Resource.of_array [| 1; 2 |] in
  Alcotest.(check (array int)) "add" [| 5; 8 |] (Resource.to_array (Resource.add a b));
  Alcotest.(check (array int)) "sub" [| 3; 4 |] (Resource.to_array (Resource.sub a b));
  check bool "fits" true (Resource.fits ~demand:b ~within:a);
  check bool "not fits" false (Resource.fits ~demand:a ~within:b);
  Alcotest.check_raises "negative sub"
    (Invalid_argument "Resource.sub: negative result") (fun () ->
      ignore (Resource.sub b a));
  Alcotest.(check (array int)) "clamped" [| 0; 0 |]
    (Resource.to_array (Resource.sub_clamped b a));
  Alcotest.(check (array int)) "scale" [| 8; 12 |]
    (Resource.to_array (Resource.scale 2 a));
  check bool "equal" true (Resource.equal a (Resource.of_array [| 4; 6 |]));
  check bool "zero" true (Resource.is_zero (Resource.zero 2))

let test_resource_shares () =
  let cap = Resource.of_array [| 10; 100 |] in
  let d = Resource.of_array [| 5; 20 |] in
  check (Alcotest.float 1e-9) "dominant" 0.5
    (Resource.dominant_share ~demand:d ~capacity:cap);
  check (Alcotest.float 1e-9) "utilization" 0.35
    (Resource.utilization ~used:d ~capacity:cap)

let test_resource_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Resource.of_array: empty")
    (fun () -> ignore (Resource.of_array [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Resource.of_array: negative") (fun () ->
      ignore (Resource.of_array [| -1 |]))

(* ---------- topology ---------- *)

let test_topology () =
  let t =
    Topology.homogeneous ~machines_per_rack:4 ~racks_per_group:2
      ~n_machines:20 ~capacity:(Resource.cpu_only 32.) ()
  in
  check int "machines" 20 (Topology.n_machines t);
  check int "racks" 5 (Topology.n_racks t);
  check int "groups" 3 (Topology.n_groups t);
  check int "rack of 0" 0 (Topology.rack_of t 0);
  check int "rack of 7" 1 (Topology.rack_of t 7);
  check int "group of rack 4" 2 (Topology.group_of_rack t 4);
  Alcotest.(check (list int)) "machines of last rack" [ 16; 17; 18; 19 ]
    (Topology.machines_of_rack t 4);
  Alcotest.(check (list int)) "racks of group 2" [ 4 ] (Topology.racks_of_group t 2);
  Alcotest.check_raises "machine out of range"
    (Invalid_argument "Topology: machine out of range") (fun () ->
      ignore (Topology.rack_of t 20))

(* ---------- applications & constraint set ---------- *)

let apps_fixture () =
  [|
    Application.make ~id:0 ~n_containers:3 ~demand:(Resource.cpu_only 2.)
      ~anti_affinity_within:true ();
    Application.make ~id:1 ~n_containers:2 ~demand:(Resource.cpu_only 4.)
      ~priority:2 ~anti_affinity_across:[ 0 ] ();
    Application.make ~id:2 ~n_containers:1 ~demand:(Resource.cpu_only 1.) ();
  |]

let test_constraint_set () =
  let cs = Constraint_set.of_apps (apps_fixture ()) in
  check bool "anti within 0" true (Constraint_set.anti_within cs 0);
  check bool "no anti within 1" false (Constraint_set.anti_within cs 1);
  check bool "across symmetric 1-0" true (Constraint_set.conflict cs 1 0);
  check bool "across symmetric 0-1" true (Constraint_set.conflict cs 0 1);
  check bool "no conflict 1-2" false (Constraint_set.conflict cs 1 2);
  check bool "self conflict = within" true (Constraint_set.conflict cs 0 0);
  check bool "no self conflict" false (Constraint_set.conflict cs 2 2);
  Alcotest.(check (list int)) "conflicting of 0" [ 0; 1 ]
    (List.sort Int.compare (Constraint_set.conflicting_apps cs 0));
  check int "anti count" 2 (Constraint_set.n_with_anti_affinity cs);
  check int "priority count" 1 (Constraint_set.n_with_priority cs);
  Alcotest.(check (list int)) "classes" [ 0; 2 ]
    (Constraint_set.priority_classes cs)

let test_constraint_set_validation () =
  let bad =
    [|
      Application.make ~id:0 ~n_containers:1 ~demand:(Resource.cpu_only 1.)
        ~anti_affinity_across:[ 9 ] ();
    |]
  in
  Alcotest.check_raises "dangling"
    (Invalid_argument "Constraint_set.of_apps: dangling across reference")
    (fun () -> ignore (Constraint_set.of_apps bad));
  let dup =
    [|
      Application.make ~id:0 ~n_containers:1 ~demand:(Resource.cpu_only 1.) ();
      Application.make ~id:0 ~n_containers:1 ~demand:(Resource.cpu_only 1.) ();
    |]
  in
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Constraint_set.of_apps: duplicate app id") (fun () ->
      ignore (Constraint_set.of_apps dup))

let test_application_materialise () =
  let a =
    Application.make ~id:7 ~n_containers:3 ~demand:(Resource.cpu_only 2.)
      ~priority:1 ()
  in
  let cs = Application.containers a ~first_id:100 ~first_arrival:50 in
  check int "count" 3 (List.length cs);
  List.iteri
    (fun i (c : Container.t) ->
      check int "id" (100 + i) c.Container.id;
      check int "arrival" (50 + i) c.Container.arrival;
      check int "app" 7 c.Container.app;
      check int "priority" 1 c.Container.priority)
    cs

(* ---------- machine ---------- *)

let test_machine_lifecycle () =
  let m =
    Machine.create ~id:0 ~rack:0 ~group:0 ~capacity:(Resource.cpu_only 8.)
  in
  let c1 = mk_container ~id:1 ~app:3 4. in
  let c2 = mk_container ~id:2 ~app:3 4. in
  check bool "unused" false (Machine.is_used m);
  Machine.place m c1;
  Machine.place m c2;
  check int "containers" 2 (Machine.n_containers m);
  check int "app count" 2 (Machine.app_count m 3);
  check bool "full" false (Machine.fits m (Resource.cpu_only 1.));
  check (Alcotest.float 1e-9) "utilization" 1.0 (Machine.utilization m);
  Machine.remove m c1;
  check int "app count after remove" 1 (Machine.app_count m 3);
  check bool "fits again" true (Machine.fits m (Resource.cpu_only 4.));
  Alcotest.check_raises "double remove"
    (Invalid_argument "Machine.remove: container not deployed here") (fun () ->
      Machine.remove m c1);
  Alcotest.check_raises "over place"
    (Invalid_argument "Machine.place: demand exceeds free capacity") (fun () ->
      Machine.place m (mk_container ~id:9 8.))

(* ---------- blacklist ---------- *)

let test_blacklist_refcounts () =
  let cs = Constraint_set.of_apps (apps_fixture ()) in
  let bl = Blacklist.create cs ~n_machines:2 in
  check bool "initially open" false (Blacklist.blocked bl ~machine:0 ~app:1);
  Blacklist.on_place bl ~machine:0 ~app:0;
  check bool "self blocked" true (Blacklist.blocked bl ~machine:0 ~app:0);
  check bool "across blocked" true (Blacklist.blocked bl ~machine:0 ~app:1);
  check bool "other machine open" false (Blacklist.blocked bl ~machine:1 ~app:1);
  check bool "unrelated open" false (Blacklist.blocked bl ~machine:0 ~app:2);
  Blacklist.on_place bl ~machine:0 ~app:0;
  Blacklist.on_remove bl ~machine:0 ~app:0;
  check bool "still blocked (refcount)" true
    (Blacklist.blocked bl ~machine:0 ~app:1);
  Blacklist.on_remove bl ~machine:0 ~app:0;
  check bool "unblocked after last removal" false
    (Blacklist.blocked bl ~machine:0 ~app:1);
  Alcotest.check_raises "unbalanced"
    (Invalid_argument "Blacklist.on_remove: unbalanced") (fun () ->
      Blacklist.on_remove bl ~machine:0 ~app:0)

(* ---------- cluster ---------- *)

let cluster_fixture () =
  let topo =
    Topology.homogeneous ~machines_per_rack:2 ~racks_per_group:2 ~n_machines:4
      ~capacity:(Resource.cpu_only 8.) ()
  in
  Cluster.create topo ~constraints:(Constraint_set.of_apps (apps_fixture ()))

let test_cluster_place_remove () =
  let cl = cluster_fixture () in
  let c0 = mk_container ~id:0 ~app:0 2. in
  let c1 = mk_container ~id:1 ~app:0 2. in
  Alcotest.(check bool) "place ok" true (Cluster.place cl c0 0 = Ok ());
  check int "placed" 1 (Cluster.n_placed cl);
  Alcotest.(check bool) "machine recorded" true (Cluster.machine_of cl 0 = Some 0);
  Alcotest.(check bool) "sibling blocked" true
    (Cluster.place cl c1 0 = Error (Cluster.Blacklisted 0));
  Alcotest.(check bool) "sibling ok elsewhere" true (Cluster.place cl c1 1 = Ok ());
  let b = mk_container ~id:2 ~app:1 4. in
  Alcotest.(check bool) "across blocked" true
    (Cluster.place cl b 0 = Error (Cluster.Blacklisted 0));
  Cluster.remove cl 0;
  Alcotest.(check bool) "unblocked after remove" true (Cluster.place cl b 0 = Ok ());
  check int "used machines" 2 (Cluster.used_machines cl)

let test_cluster_capacity_denial () =
  let cl = cluster_fixture () in
  let big = mk_container ~id:0 ~app:2 9. in
  Alcotest.(check bool) "no capacity" true
    (Cluster.place cl big 0 = Error Cluster.No_capacity);
  Alcotest.(check bool) "force cannot override capacity" true
    (Cluster.place ~force:true cl big 0 = Error Cluster.No_capacity)

let test_cluster_forced_violation () =
  let cl = cluster_fixture () in
  let c0 = mk_container ~id:0 ~app:0 2. in
  let c1 = mk_container ~id:1 ~app:1 2. in
  Alcotest.(check bool) "first" true (Cluster.place cl c0 0 = Ok ());
  Alcotest.(check bool) "forced" true (Cluster.place ~force:true cl c1 0 = Ok ());
  let v = Cluster.current_violations cl in
  check bool "violations detected" true (List.length v >= 1);
  check bool "anti-affinity kind" true (List.for_all Violation.is_anti_affinity v)

let test_cluster_reset () =
  let cl = cluster_fixture () in
  ignore (Cluster.place cl (mk_container ~id:0 ~app:2 1.) 0);
  ignore (Cluster.place cl (mk_container ~id:1 ~app:2 1.) 1);
  Cluster.reset cl;
  check int "no placements" 0 (Cluster.n_placed cl);
  check int "no used machines" 0 (Cluster.used_machines cl);
  check bool "blacklist cleared" true
    (Cluster.place cl (mk_container ~id:2 ~app:0 1.) 0 = Ok ())

(* ---------- violations ---------- *)

let test_violation_ratio () =
  let vs =
    [
      Violation.Anti_affinity { container = 0; machine = 0; against = 1 };
      Violation.Anti_affinity { container = 1; machine = 0; against = 1 };
      Violation.Priority_inversion { container = 2; displaced_by = 3 };
    ]
  in
  check int "anti count" 2 (Violation.count_anti_affinity vs);
  check int "prio count" 1 (Violation.count_priority vs);
  check (Alcotest.float 1e-9) "ratio" (2. /. 3.) (Violation.anti_affinity_ratio vs);
  check (Alcotest.float 1e-9) "empty ratio" 0. (Violation.anti_affinity_ratio []);
  check int "container accessor" 2 (Violation.container (List.nth vs 2))

(* ---------- property: blacklist matches a from-scratch recomputation ---------- *)

let ops_gen = QCheck.Gen.(list_repeat 40 (pair (int_range 0 5) (int_range 0 3)))

let prop_blacklist_consistent =
  QCheck.Test.make ~count:200
    ~name:"cluster blacklist = recomputation from deployed set"
    (QCheck.make ops_gen) (fun ops ->
      let apps =
        [|
          Application.make ~id:0 ~n_containers:50 ~demand:(Resource.cpu_only 1.)
            ~anti_affinity_within:true ();
          Application.make ~id:1 ~n_containers:50 ~demand:(Resource.cpu_only 1.)
            ~anti_affinity_across:[ 2 ] ();
          Application.make ~id:2 ~n_containers:50 ~demand:(Resource.cpu_only 1.) ();
          Application.make ~id:3 ~n_containers:50 ~demand:(Resource.cpu_only 1.) ();
        |]
      in
      let cs = Constraint_set.of_apps apps in
      let topo =
        Topology.homogeneous ~n_machines:4 ~capacity:(Resource.cpu_only 64.) ()
      in
      let cl = Cluster.create topo ~constraints:cs in
      let next = ref 0 in
      List.iter
        (fun (mid, app) ->
          let mid = mid mod 4 in
          let c = mk_container ~id:!next ~app 1. in
          incr next;
          match Cluster.place cl c mid with
          | Ok () -> if !next mod 3 = 0 then Cluster.remove cl c.Container.id
          | Error _ -> ())
        ops;
      let ok = ref true in
      Array.iter
        (fun m ->
          let mid = Machine.id m in
          for a = 0 to 3 do
            let expect = ref false in
            Machine.iter_apps m (fun dep _ ->
                if Constraint_set.conflict cs a dep then expect := true);
            let got =
              Blacklist.blocked (Cluster.blacklist cl) ~machine:mid ~app:a
            in
            if got <> !expect then ok := false
          done)
        (Cluster.machines cl);
      !ok)

(* ---------- model-based property: Cluster vs a naive reference ---------- *)

(* The reference keeps placements as a plain association list and
   recomputes everything from first principles. *)
module Reference = struct
  type t = {
    caps : Resource.t array;
    cs : Constraint_set.t;
    mutable placed : (Container.t * int) list;
  }

  let create caps cs = { caps; cs; placed = [] }

  let used_on t mid =
    List.fold_left
      (fun acc ((c : Container.t), m) ->
        if m = mid then Resource.add acc c.Container.demand else acc)
      (Resource.zero (Resource.dims t.caps.(0)))
      t.placed

  let admissible t (c : Container.t) mid =
    let fits =
      Resource.fits
        ~demand:(Resource.add (used_on t mid) c.Container.demand)
        ~within:t.caps.(mid)
    in
    let conflict =
      List.exists
        (fun ((b : Container.t), m) ->
          m = mid && Constraint_set.conflict t.cs c.Container.app b.Container.app)
        t.placed
    in
    fits && not conflict

  let place t c mid = t.placed <- (c, mid) :: t.placed

  let remove t cid =
    t.placed <-
      List.filter (fun ((c : Container.t), _) -> c.Container.id <> cid) t.placed

  let used_machines t =
    List.sort_uniq Int.compare (List.map snd t.placed) |> List.length
end

let model_ops_gen =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (triple (int_range 0 3) (int_range 0 3) (oneofl [ `Place; `Remove ])))

let prop_cluster_matches_reference =
  QCheck.Test.make ~count:150 ~name:"cluster agrees with naive reference"
    (QCheck.make model_ops_gen) (fun ops ->
      let apps =
        [|
          Application.make ~id:0 ~n_containers:99 ~demand:(Resource.cpu_only 3.)
            ~anti_affinity_within:true ();
          Application.make ~id:1 ~n_containers:99 ~demand:(Resource.cpu_only 2.)
            ~anti_affinity_across:[ 2 ] ();
          Application.make ~id:2 ~n_containers:99 ~demand:(Resource.cpu_only 5.) ();
          Application.make ~id:3 ~n_containers:99 ~demand:(Resource.cpu_only 1.) ();
        |]
      in
      let cs = Constraint_set.of_apps apps in
      let topo =
        Topology.homogeneous ~n_machines:4 ~capacity:(Resource.cpu_only 8.) ()
      in
      let cl = Cluster.create topo ~constraints:cs in
      let ref_model =
        Reference.create (Array.make 4 (Resource.cpu_only 8.)) cs
      in
      let next = ref 0 in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (mid, app, op) ->
          match op with
          | `Place ->
              let c = mk_container ~id:!next ~app (float_of_int (1 + app)) in
              incr next;
              let expect = Reference.admissible ref_model c mid in
              let got = Cluster.place cl c mid = Ok () in
              if expect <> got then ok := false;
              if got then begin
                Reference.place ref_model c mid;
                live := c.Container.id :: !live
              end
          | `Remove -> (
              match !live with
              | [] -> ()
              | cid :: rest ->
                  Cluster.remove cl cid;
                  Reference.remove ref_model cid;
                  live := rest))
        ops;
      !ok
      && Cluster.used_machines cl = Reference.used_machines ref_model
      && Cluster.n_placed cl = List.length ref_model.Reference.placed)

(* ---------- offline machines ---------- *)

let test_offline_machines () =
  let cl = cluster_fixture () in
  let c = mk_container ~id:0 ~app:2 1. in
  Cluster.set_offline cl 0 true;
  check bool "offline" true (Cluster.is_offline cl 0);
  Alcotest.(check bool) "offline rejects" true
    (Cluster.place cl c 0 = Error Cluster.No_capacity);
  Alcotest.(check bool) "other machines fine" true (Cluster.place cl c 1 = Ok ());
  Cluster.set_offline cl 0 false;
  Alcotest.(check bool) "back online" true
    (Cluster.place cl (mk_container ~id:1 ~app:2 1.) 0 = Ok ())

let test_drain () =
  let cl = cluster_fixture () in
  ignore (Cluster.place cl (mk_container ~id:0 ~app:2 1.) 0);
  ignore (Cluster.place cl (mk_container ~id:1 ~app:1 2.) 0);
  ignore (Cluster.place cl (mk_container ~id:2 ~app:2 1.) 1);
  let displaced = Cluster.drain cl 0 in
  check int "two displaced" 2 (List.length displaced);
  check int "machine empty" 0 (Machine.n_containers (Cluster.machine cl 0));
  check int "other machine untouched" 1 (Machine.n_containers (Cluster.machine cl 1))

let test_heterogeneous_topology () =
  let topo =
    Topology.heterogeneous
      ~capacities:[| Resource.cpu_only 8.; Resource.cpu_only 32. |]
      ()
  in
  check bool "not homogeneous" false (Topology.is_homogeneous topo);
  check bool "per-machine capacity" true
    (Resource.cpu (Topology.capacity topo 0) = 8.
    && Resource.cpu (Topology.capacity topo 1) = 32.);
  Alcotest.check_raises "empty"
    (Invalid_argument "Topology.heterogeneous: no machines") (fun () ->
      ignore (Topology.heterogeneous ~capacities:[||] ()));
  Alcotest.check_raises "mismatched dims"
    (Invalid_argument "Topology.heterogeneous: mismatched dimensions")
    (fun () ->
      ignore
        (Topology.heterogeneous
           ~capacities:[| Resource.cpu_only 8.; Resource.make ~cpu:8. ~mem_gb:1. |]
           ()))

let () =
  Alcotest.run "cluster_model"
    [
      ( "resource",
        [
          Alcotest.test_case "make" `Quick test_resource_make;
          Alcotest.test_case "arithmetic" `Quick test_resource_arith;
          Alcotest.test_case "shares" `Quick test_resource_shares;
          Alcotest.test_case "validation" `Quick test_resource_validation;
        ] );
      ("topology", [ Alcotest.test_case "layout" `Quick test_topology ]);
      ( "constraints",
        [
          Alcotest.test_case "conflict queries" `Quick test_constraint_set;
          Alcotest.test_case "validation" `Quick test_constraint_set_validation;
          Alcotest.test_case "materialise containers" `Quick
            test_application_materialise;
        ] );
      ("machine", [ Alcotest.test_case "lifecycle" `Quick test_machine_lifecycle ]);
      ( "blacklist",
        [ Alcotest.test_case "refcounts" `Quick test_blacklist_refcounts ] );
      ( "cluster",
        [
          Alcotest.test_case "place/remove" `Quick test_cluster_place_remove;
          Alcotest.test_case "capacity denial" `Quick test_cluster_capacity_denial;
          Alcotest.test_case "forced violation" `Quick test_cluster_forced_violation;
          Alcotest.test_case "reset" `Quick test_cluster_reset;
        ] );
      ("violations", [ Alcotest.test_case "ratio" `Quick test_violation_ratio ]);
      ( "availability",
        [
          Alcotest.test_case "offline machines" `Quick test_offline_machines;
          Alcotest.test_case "drain" `Quick test_drain;
          Alcotest.test_case "heterogeneous topology" `Quick
            test_heterogeneous_topology;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_blacklist_consistent;
          QCheck_alcotest.to_alcotest prop_cluster_matches_reference;
        ] );
    ]
