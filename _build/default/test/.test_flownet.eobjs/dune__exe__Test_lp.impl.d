test/test_lp.ml: Alcotest Array Float List Lp Printf QCheck QCheck_alcotest
