test/test_kube.mli:
