test/test_sim.ml: Aladdin Alcotest Alibaba Application Array Capacity_planner Cluster Container List Metrics Option Replay Resource Scheduler Violation Workload
