test/test_aladdin.mli:
