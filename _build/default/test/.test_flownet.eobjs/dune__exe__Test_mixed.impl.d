test/test_mixed.ml: Aladdin Alcotest Application Array Cluster Constraint_set Container Des Int List QCheck QCheck_alcotest Resource Scheduler Topology
