test/test_flownet.ml: Alcotest Array Flownet List QCheck QCheck_alcotest
