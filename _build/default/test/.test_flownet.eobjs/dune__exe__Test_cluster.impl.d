test/test_cluster.ml: Alcotest Application Array Blacklist Cluster Constraint_set Container Int List Machine QCheck QCheck_alcotest Resource Topology Violation
