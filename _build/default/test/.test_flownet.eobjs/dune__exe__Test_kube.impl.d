test/test_kube.ml: Alcotest Cluster Controller Ehc Kube_api Kube_objects List Printf Resolver Resource
