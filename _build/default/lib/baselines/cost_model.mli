(** Firmament cost models (the three the paper selects from Firmament's
    code base, Table I). Costs are per-machine arc costs on the N→t tier of
    the scheduling flow network; lower is preferred. *)

type t =
  | Trivial
      (** pack: prefer machines with the least free capacity, so
          containers are always scheduled while resources are idle *)
  | Quincy
      (** original Quincy: cost grows with the idle resources left behind
          (a data-transfer proxy), with a deterministic per-rack locality
          perturbation *)
  | Octopus
      (** load balancing: cost = number of containers already deployed *)

val name : t -> string
val of_string : string -> t option

val machine_cost : t -> Machine.t -> int
(** Arc cost for one slot on this machine, in integer cost units. *)

val unscheduled_cost : int
(** Cost of routing a task to the unscheduled aggregator; high enough that
    any real machine is preferred. *)
