(** Attribute an undeployed container to the constraint class that blocked
    it, the way Fig. 9(e) reports violation composition:

    - anti-affinity: some machine had the resources but the blacklist
      rejected the container;
    - priority inversion: capacity exists only under lower-priority
      containers that a globally-optimizing scheduler would have displaced;
    - plain capacity shortage: no violation recorded. *)

val undeployed_violation :
  Cluster.t -> Container.t -> Violation.t option

val violations_of_undeployed :
  Cluster.t -> Container.t list -> Violation.t list
