(** Go-Kube baseline: the Kubernetes 1.11 default scheduler's decision
    procedure — one container at a time, hard predicate filtering
    (resources + required anti-affinity) followed by priority scoring with
    LeastRequestedPriority and BalancedResourceAllocation, and a separate
    preemption pass for unschedulable high-priority pods.

    Constraints are honoured *per pod*, never globally; the spreading
    scorer and the lack of lookahead are what the paper's evaluation
    exposes (21.2% undeployed, most machines used). *)

type config = {
  preemption : bool;      (** k8s priority preemption pass *)
  max_requeues : int;     (** budget for preempted pods *)
}

val default : config

val make : ?config:config -> unit -> Scheduler.t

val score : Machine.t -> Container.t -> float
(** The k8s-1.11 node score in [0, 20]: LeastRequested + BalancedResource
    (exposed for tests). Higher is better. *)
