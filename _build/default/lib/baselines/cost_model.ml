type t = Trivial | Quincy | Octopus

let name = function
  | Trivial -> "TRIVIAL"
  | Quincy -> "QUINCY"
  | Octopus -> "OCTOPUS"

let of_string s =
  match String.uppercase_ascii s with
  | "TRIVIAL" -> Some Trivial
  | "QUINCY" -> Some Quincy
  | "OCTOPUS" -> Some Octopus
  | _ -> None

let unscheduled_cost = 1_000_000

(* Deterministic small hash for Quincy's locality perturbation. *)
let perturb x = (x * 2654435761) land 0xff

let machine_cost model m =
  let free_pct =
    int_of_float
      (1000.
      *. Resource.utilization ~used:(Machine.free m)
           ~capacity:(Machine.capacity m))
  in
  match model with
  | Trivial -> free_pct (* least free = cheapest = pack *)
  | Quincy -> (4 * free_pct) + perturb (Machine.rack m)
  | Octopus -> 100 * Machine.n_containers m
