(** Medea baseline: ILP placement of long-running applications with the
    weight triple (a, b, c) — reward for deployed containers, penalty for
    fragmentation (machines opened), and tolerance for constraint
    violations (c = 0 forbids them; c > 0 lets a violating placement pay a
    reduced penalty, which is how Medea trades violations for density).

    Small instances are solved exactly with the in-repo branch-and-bound
    ({!Lp.Ilp}); at trace scale the same objective is optimized by the
    weighted greedy + local-search rounding Medea's time-bounded MIP solve
    degrades to in production. *)

type weights = { a : float; b : float; c : float }

type config = {
  weights : weights;
  exact_max_cells : int;
      (** use the exact ILP when |batch|·|machines| is at most this *)
  node_budget : int;            (** branch-and-bound node budget *)
  local_search_passes : int;    (** defragmentation passes (heuristic path) *)
}

val default : config
(** weights (1, 1, 0), exact up to 64 cells, 2 local-search passes. *)

val name : config -> string
(** e.g. ["MEDEA(1,1,0.5)"]. *)

val make : ?config:config -> unit -> Scheduler.t
