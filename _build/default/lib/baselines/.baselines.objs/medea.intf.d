lib/baselines/medea.mli: Scheduler
