lib/baselines/classify.mli: Cluster Container Violation
