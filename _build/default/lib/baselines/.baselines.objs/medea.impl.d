lib/baselines/medea.ml: Array Classify Cluster Constraint_set Container Float Hashtbl Int List Lp Machine Option Printf Resource Scheduler Violation
