lib/baselines/cost_model.ml: Machine Resource String
