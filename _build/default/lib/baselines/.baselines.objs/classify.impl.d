lib/baselines/classify.ml: Cluster Container List Machine Resource Violation
