lib/baselines/gokube.ml: Array Classify Cluster Constraint_set Container Float Hashtbl List Machine Option Queue Resource Scheduler
