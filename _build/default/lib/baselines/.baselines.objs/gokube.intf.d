lib/baselines/gokube.mli: Container Machine Scheduler
