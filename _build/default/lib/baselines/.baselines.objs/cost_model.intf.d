lib/baselines/cost_model.mli: Machine
