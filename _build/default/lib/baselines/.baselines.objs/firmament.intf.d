lib/baselines/firmament.mli: Container Cost_model Scheduler
