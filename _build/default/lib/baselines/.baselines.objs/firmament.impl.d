lib/baselines/firmament.ml: Array Classify Cluster Container Cost_model Flownet Hashtbl Int List Machine Option Printf Queue Resource Scheduler Topology
