let undeployed_violation cluster (c : Container.t) =
  let n = Cluster.n_machines cluster in
  let anti = ref None in
  let inversion = ref None in
  (try
     for mid = 0 to n - 1 do
       (match Cluster.admissible cluster c mid with
       | Error (Cluster.Blacklisted against) ->
           if Machine.fits (Cluster.machine cluster mid) c.Container.demand
           then begin
             anti :=
               Some
                 (Violation.Anti_affinity
                    { container = c.Container.id; machine = mid; against });
             raise Exit
           end
       | Error Cluster.No_capacity ->
           if !inversion = None then begin
             (* Would evicting strictly-lower-priority containers free
                enough room? *)
             let m = Cluster.machine cluster mid in
             let lower =
               List.filter
                 (fun (b : Container.t) ->
                   b.Container.priority < c.Container.priority)
                 (Machine.containers m)
             in
             match lower with
             | [] -> ()
             | first :: _ ->
                 let freed =
                   List.fold_left
                     (fun acc (b : Container.t) ->
                       Resource.add acc b.Container.demand)
                     (Machine.free m) lower
                 in
                 if Resource.fits ~demand:c.Container.demand ~within:freed then
                   inversion :=
                     Some
                       (Violation.Priority_inversion
                          {
                            container = c.Container.id;
                            displaced_by = first.Container.id;
                          })
           end
       | Ok () ->
           (* The caller decided not to use an admissible machine; treat as
              no violation — it is a scheduler-quality issue. *)
           ())
     done
   with Exit -> ());
  match !anti with Some _ as v -> v | None -> !inversion

let violations_of_undeployed cluster cs =
  List.filter_map (undeployed_violation cluster) cs
