type sense = Le | Ge | Eq
type var = int

type row = { coeffs : (var * float) list; sense : sense; rhs : float }

type t = {
  mutable vars : int;
  mutable uppers : (var * float) list;
  mutable integers : (var, unit) Hashtbl.t;
  mutable names : (var * string) list;
  mutable rows_rev : row list;
  mutable obj : (var * float) list;
}

let create () =
  {
    vars = 0;
    uppers = [];
    integers = Hashtbl.create 16;
    names = [];
    rows_rev = [];
    obj = [];
  }

let add_var ?upper ?(integer = false) ?name m =
  let v = m.vars in
  m.vars <- v + 1;
  (match upper with
  | Some u -> m.uppers <- (v, u) :: m.uppers
  | None -> ());
  if integer then Hashtbl.replace m.integers v ();
  (match name with Some n -> m.names <- (v, n) :: m.names | None -> ());
  v

let add_constraint m coeffs sense rhs =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= m.vars then invalid_arg "Model.add_constraint: bad var")
    coeffs;
  m.rows_rev <- { coeffs; sense; rhs } :: m.rows_rev

let set_objective m coeffs =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= m.vars then invalid_arg "Model.set_objective: bad var")
    coeffs;
  m.obj <- coeffs

let n_vars m = m.vars
let n_constraints m = List.length m.rows_rev
let is_integer m v = Hashtbl.mem m.integers v
let upper_bound m v = List.assoc_opt v m.uppers

let var_name m v =
  match List.assoc_opt v m.names with
  | Some n -> n
  | None -> Printf.sprintf "x%d" v

let rows m =
  List.rev_map (fun { coeffs; sense; rhs } -> (coeffs, sense, rhs)) m.rows_rev

let objective m =
  let c = Array.make m.vars 0. in
  List.iter (fun (v, w) -> c.(v) <- c.(v) +. w) m.obj;
  c

let eval_objective m x =
  let c = objective m in
  let s = ref 0. in
  Array.iteri (fun i ci -> s := !s +. (ci *. x.(i))) c;
  !s

let feasible ?(eps = 1e-7) m x =
  let ok = ref true in
  for v = 0 to m.vars - 1 do
    if x.(v) < -.eps then ok := false;
    match upper_bound m v with
    | Some u when x.(v) > u +. eps -> ok := false
    | _ -> ()
  done;
  List.iter
    (fun { coeffs; sense; rhs } ->
      let lhs = List.fold_left (fun a (v, w) -> a +. (w *. x.(v))) 0. coeffs in
      match sense with
      | Le -> if lhs > rhs +. eps then ok := false
      | Ge -> if lhs < rhs -. eps then ok := false
      | Eq -> if Float.abs (lhs -. rhs) > eps then ok := false)
    m.rows_rev;
  !ok
