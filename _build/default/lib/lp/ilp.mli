(** Branch-and-bound 0/1 (and general-integer) solver over {!Simplex}.

    Depth-first with best-bound pruning and a node budget; returns the best
    incumbent found, so with a small budget it behaves like the anytime MIP
    solves Medea performs in production. *)

type status = Optimal | Feasible  (** budget hit before proving optimality *)

type outcome =
  | Solved of { x : float array; objective : float; status : status }
  | Infeasible

val solve : ?eps:float -> ?node_budget:int -> Model.t -> outcome
(** Variables flagged [integer] in the model are branched to integrality;
    continuous variables stay fractional. Default budget: 100_000 nodes. *)
