type status = Optimal | Feasible

type outcome =
  | Solved of { x : float array; objective : float; status : status }
  | Infeasible

(* Branch-and-bound nodes carry extra bound rows [x_v ≤ u] / [x_v ≥ l] that
   are appended to a copy of the model. *)
type bound = { var : Model.var; sense : Model.sense; value : float }

let apply_bounds m bounds =
  let m' = Model.create () in
  for v = 0 to Model.n_vars m - 1 do
    let _ =
      Model.add_var ?upper:(Model.upper_bound m v)
        ~integer:(Model.is_integer m v) ~name:(Model.var_name m v) m'
    in
    ()
  done;
  List.iter (fun (c, s, r) -> Model.add_constraint m' c s r) (Model.rows m);
  List.iter
    (fun { var; sense; value } ->
      Model.add_constraint m' [ (var, 1.0) ] sense value)
    bounds;
  Model.set_objective m'
    (Array.to_list (Array.mapi (fun v c -> (v, c)) (Model.objective m))
    |> List.filter (fun (_, c) -> c <> 0.));
  m'

let fractional_var ~eps m x =
  let pick = ref None in
  let worst = ref 0. in
  for v = 0 to Model.n_vars m - 1 do
    if Model.is_integer m v then begin
      let f = x.(v) -. Float.round x.(v) in
      let d = Float.abs f in
      if d > eps && d > !worst then begin
        worst := d;
        pick := Some v
      end
    end
  done;
  !pick

let round_integral ~eps m x =
  Array.mapi
    (fun v xi ->
      if Model.is_integer m v && Float.abs (xi -. Float.round xi) <= eps then
        Float.round xi
      else xi)
    x

let solve ?(eps = 1e-6) ?(node_budget = 100_000) m =
  let best : (float array * float) option ref = ref None in
  let nodes = ref 0 in
  let budget_hit = ref false in
  let better obj =
    match !best with None -> true | Some (_, b) -> obj > b +. eps
  in
  let rec branch bounds =
    if !nodes >= node_budget then budget_hit := true
    else begin
      incr nodes;
      let m' = apply_bounds m bounds in
      match Simplex.solve m' with
      | Simplex.Infeasible | Simplex.Unbounded -> ()
      | Simplex.Optimal { x; objective } ->
          if better objective then begin
            match fractional_var ~eps m x with
            | None ->
                let x = round_integral ~eps m x in
                if Model.feasible m x && better (Model.eval_objective m x)
                then best := Some (x, Model.eval_objective m x)
            | Some v ->
                let fl = Float.of_int (int_of_float (floor x.(v))) in
                (* Explore the branch nearer the LP optimum first. *)
                let down = { var = v; sense = Model.Le; value = fl } in
                let up = { var = v; sense = Model.Ge; value = fl +. 1. } in
                if x.(v) -. fl > 0.5 then begin
                  branch (up :: bounds);
                  branch (down :: bounds)
                end
                else begin
                  branch (down :: bounds);
                  branch (up :: bounds)
                end
          end
    end
  in
  branch [];
  match !best with
  | None -> Infeasible
  | Some (x, objective) ->
      let status = if !budget_hit then Feasible else Optimal in
      Solved { x; objective; status }
