type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

(* Tableau in basis form: [rows] are the constraint rows over all columns
   (structural, slack/surplus, artificial), [rhs] is non-negative, and
   [basis.(r)] names the basic column of row [r] (unit column in-tableau). *)
type tableau = {
  rows : float array array;
  rhs : float array;
  basis : int array;
  ncols : int;
}

let pivot t ~row ~col =
  let prow = t.rows.(row) in
  let p = prow.(col) in
  for j = 0 to t.ncols - 1 do
    prow.(j) <- prow.(j) /. p
  done;
  t.rhs.(row) <- t.rhs.(row) /. p;
  for r = 0 to Array.length t.rows - 1 do
    if r <> row then begin
      let f = t.rows.(r).(col) in
      if Float.abs f > 0. then begin
        let rr = t.rows.(r) in
        for j = 0 to t.ncols - 1 do
          rr.(j) <- rr.(j) -. (f *. prow.(j))
        done;
        t.rhs.(r) <- t.rhs.(r) -. (f *. t.rhs.(row))
      end
    end
  done;
  t.basis.(row) <- col

(* Reduced-cost row for cost vector [c] under the current basis: since the
   tableau is kept in basis form, z_j = Σ_r c_basis(r)·a_rj. *)
let reduced_costs t c =
  let nrows = Array.length t.rows in
  let red = Array.copy c in
  let zval = ref 0. in
  for r = 0 to nrows - 1 do
    let cb = c.(t.basis.(r)) in
    if cb <> 0. then begin
      zval := !zval +. (cb *. t.rhs.(r));
      let row = t.rows.(r) in
      for j = 0 to t.ncols - 1 do
        red.(j) <- red.(j) -. (cb *. row.(j))
      done
    end
  done;
  (red, !zval)

(* One simplex phase: maximize c·x from the current basis. Bland's rule on
   both the entering and leaving choices prevents cycling. *)
let optimize ?(eps = 1e-9) t c =
  let nrows = Array.length t.rows in
  let rec loop () =
    let red, _ = reduced_costs t c in
    let enter = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if red.(j) > eps then begin
           enter := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !enter < 0 then `Optimal
    else begin
      let col = !enter in
      let leave = ref (-1) in
      let best = ref infinity in
      for r = 0 to nrows - 1 do
        let a = t.rows.(r).(col) in
        if a > eps then begin
          let ratio = t.rhs.(r) /. a in
          if
            ratio < !best -. eps
            || (ratio < !best +. eps
               && (!leave < 0 || t.basis.(r) < t.basis.(!leave)))
          then begin
            best := ratio;
            leave := r
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot t ~row:!leave ~col;
        loop ()
      end
    end
  in
  loop ()

let solve ?(eps = 1e-9) m =
  let nstruct = Model.n_vars m in
  (* Rows: model rows plus one upper-bound row per bounded variable. *)
  let base_rows = Model.rows m in
  let bound_rows =
    List.concat_map
      (fun v ->
        match Model.upper_bound m v with
        | Some u -> [ ([ (v, 1.0) ], Model.Le, u) ]
        | None -> [])
      (List.init nstruct (fun v -> v))
  in
  let all_rows = base_rows @ bound_rows in
  let nrows = List.length all_rows in
  (* Columns: structural | slack/surplus (one per row needing it) |
     artificial (assigned below). First pass: count extras. *)
  let slack_of_row = Array.make nrows (-1) in
  let nslack = ref 0 in
  List.iteri
    (fun i (_, sense, _) ->
      match sense with
      | Model.Le | Model.Ge ->
          slack_of_row.(i) <- nstruct + !nslack;
          incr nslack
      | Model.Eq -> ())
    all_rows;
  (* Build equality rows with rhs ≥ 0, note which rows need an artificial. *)
  let needs_artificial = Array.make nrows false in
  let raw = Array.make nrows [||] in
  let rhs0 = Array.make nrows 0. in
  List.iteri
    (fun i (coeffs, sense, rhs) ->
      let row = Array.make (nstruct + !nslack) 0. in
      List.iter (fun (v, w) -> row.(v) <- row.(v) +. w) coeffs;
      (match sense with
      | Model.Le -> row.(slack_of_row.(i)) <- 1.0
      | Model.Ge -> row.(slack_of_row.(i)) <- -1.0
      | Model.Eq -> ());
      let row, rhs =
        if rhs < 0. then (Array.map (fun x -> -.x) row, -.rhs) else (row, rhs)
      in
      raw.(i) <- row;
      rhs0.(i) <- rhs;
      (* A ready-made basic column exists only when the slack enters with
         coefficient +1. *)
      needs_artificial.(i) <-
        (match sense with
        | Model.Le | Model.Ge -> row.(slack_of_row.(i)) < 0.5
        | Model.Eq -> true))
    all_rows;
  let nart = Array.fold_left (fun n b -> if b then n + 1 else n) 0 needs_artificial in
  let ncols = nstruct + !nslack + nart in
  let rows = Array.map (fun r ->
      let full = Array.make ncols 0. in
      Array.blit r 0 full 0 (Array.length r);
      full) raw
  in
  let basis = Array.make nrows (-1) in
  let next_art = ref (nstruct + !nslack) in
  Array.iteri
    (fun i need ->
      if need then begin
        rows.(i).(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        incr next_art
      end
      else basis.(i) <- slack_of_row.(i))
    (Array.copy needs_artificial);
  let t = { rows; rhs = rhs0; basis; ncols } in
  (* Phase 1: drive artificials to zero. *)
  if nart > 0 then begin
    let c1 = Array.make ncols 0. in
    for j = nstruct + !nslack to ncols - 1 do
      c1.(j) <- -1.0
    done;
    match optimize ~eps t c1 with
    | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
    | `Optimal ->
        let _, z = reduced_costs t c1 in
        if z < -.1e-6 then raise Exit
  end;
  (* Drive any artificial still basic (at value 0) out of the basis. *)
  for r = 0 to nrows - 1 do
    if t.basis.(r) >= nstruct + !nslack then begin
      let found = ref (-1) in
      for j = 0 to nstruct + !nslack - 1 do
        if !found < 0 && Float.abs t.rows.(r).(j) > 1e-7 then found := j
      done;
      if !found >= 0 then pivot t ~row:r ~col:!found
      (* else: redundant row; harmless to leave (rhs is 0). *)
    end
  done;
  (* Phase 2: real objective; artificial columns forbidden via -inf-like
     cost (they are non-basic at 0, a large negative cost keeps them out). *)
  let c2 = Array.make ncols 0. in
  let cobj = Model.objective m in
  Array.blit cobj 0 c2 0 nstruct;
  for j = nstruct + !nslack to ncols - 1 do
    c2.(j) <- -1e18
  done;
  match optimize ~eps t c2 with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let x = Array.make nstruct 0. in
      Array.iteri
        (fun r b -> if b < nstruct then x.(b) <- t.rhs.(r))
        t.basis;
      let obj = Model.eval_objective m x in
      Optimal { x; objective = obj }

let solve ?eps m = try solve ?eps m with Exit -> Infeasible
