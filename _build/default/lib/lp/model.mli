(** Linear-program model builder.

    Variables are continuous and bounded below by 0; optional upper bounds
    and integrality flags are attached per variable. The builder converts
    everything into the standard form consumed by {!Simplex} ([maximize c·x]
    subject to [Ax ≤ b] after translating [≥] and [=] rows). *)

type sense = Le | Ge | Eq

type t

type var = int
(** Dense variable index. *)

val create : unit -> t

val add_var : ?upper:float -> ?integer:bool -> ?name:string -> t -> var
(** A variable with domain [0, upper] (default: unbounded above).
    [integer] marks it for branch-and-bound (see {!Ilp}). *)

val add_constraint : t -> (var * float) list -> sense -> float -> unit
(** [add_constraint m coeffs sense rhs] adds [Σ cᵢ·xᵢ  sense  rhs]. *)

val set_objective : t -> (var * float) list -> unit
(** Coefficients of the (maximized) objective; unset variables get 0. *)

val n_vars : t -> int
val n_constraints : t -> int
val is_integer : t -> var -> bool
val upper_bound : t -> var -> float option
val var_name : t -> var -> string

val rows : t -> (((var * float) list) * sense * float) list
(** Constraints in insertion order (used by solvers and tests). *)

val objective : t -> float array

val eval_objective : t -> float array -> float
val feasible : ?eps:float -> t -> float array -> bool
(** Check a point against all constraints and bounds. *)
