lib/lp/ilp.ml: Array Float List Model Simplex
