lib/lp/model.mli:
