lib/lp/ilp.mli: Model
