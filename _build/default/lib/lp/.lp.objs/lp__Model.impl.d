lib/lp/model.ml: Array Float Hashtbl List Printf
