(** Dense two-phase primal simplex with Bland's rule.

    Solves the LP relaxation of a {!Model.t}: maximize the objective subject
    to the model's rows and variable bounds (integrality flags are ignored
    here; {!Ilp} adds branch-and-bound on top). Intended for the
    Medea-baseline instance sizes (hundreds of variables), not for
    large-scale LP. *)

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : ?eps:float -> Model.t -> outcome
(** [x] has one entry per model variable. *)
