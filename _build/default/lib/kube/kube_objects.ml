type node = { node_name : string; capacity : Resource.t }

type app_profile = {
  profile_name : string;
  app_id : Application.id;
  demand : Resource.t;
  priority : int;
  anti_affinity_within : bool;
  anti_affinity_across : Application.id list;
  replicas : int;
}

type pod_phase = Pending | Bound of string | Unschedulable of string

type pod = {
  pod_name : string;
  profile : string;
  mutable phase : pod_phase;
  uid : int;
}

let application_of_profile p =
  Application.make ~id:p.app_id ~name:p.profile_name
    ~n_containers:(max 1 p.replicas) ~demand:p.demand ~priority:p.priority
    ~anti_affinity_within:p.anti_affinity_within
    ~anti_affinity_across:p.anti_affinity_across ()

let pp_phase ppf = function
  | Pending -> Format.pp_print_string ppf "Pending"
  | Bound node -> Format.fprintf ppf "Bound(%s)" node
  | Unschedulable reason -> Format.fprintf ppf "Unschedulable(%s)" reason
