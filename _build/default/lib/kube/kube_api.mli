(** A miniature API server: typed object stores with watch streams and the
    binding subresource — the two Kubernetes APIs the model adaptor
    delegates (§IV.C). *)

type event =
  | Node_added of Kube_objects.node
  | Profile_added of Kube_objects.app_profile
  | Pod_added of Kube_objects.pod
  | Pod_bound of Kube_objects.pod * string
  | Pod_unschedulable of Kube_objects.pod * string
  | Pod_deleted of Kube_objects.pod

type t

val create : unit -> t

val add_node : t -> Kube_objects.node -> unit
(** @raise Invalid_argument on duplicate node name. *)

val add_profile : t -> Kube_objects.app_profile -> unit
(** @raise Invalid_argument on duplicate profile name or app id. *)

val create_pod : t -> name:string -> profile:string -> Kube_objects.pod
(** A fresh Pending pod. @raise Invalid_argument on duplicate name or
    unknown profile (admission control). *)

val delete_pod : t -> string -> unit
(** @raise Not_found for unknown pods. *)

val bind : t -> pod:string -> node:string -> unit
(** The binding subresource. Re-binding a Bound pod to a *different* node
    expresses a migration. @raise Invalid_argument when the node is
    unknown or the pod is already bound to that node. *)

val mark_unschedulable : t -> pod:string -> reason:string -> unit

val nodes : t -> Kube_objects.node list
val profiles : t -> Kube_objects.app_profile list
val pods : t -> Kube_objects.pod list
val find_pod : t -> string -> Kube_objects.pod option
val find_profile : t -> string -> Kube_objects.app_profile option

val watch : t -> (event -> unit) -> unit
(** Register a watcher; it first receives synthetic Added events for every
    existing object (informer-style list+watch), then live events in
    order. *)

val resource_version : t -> int
(** Monotone change counter. *)
