(** Events Handling Center (Fig. 6): watches the API server, pre-processes
    life-cycle and resource events, and accumulates the coherent change set
    the model adaptor consumes at the next scheduling round. *)

type changes = {
  new_nodes : Kube_objects.node list;
  new_profiles : Kube_objects.app_profile list;
  pending_pods : Kube_objects.pod list;   (** to be scheduled this round *)
  deleted_pods : Kube_objects.pod list;   (** bound pods that went away *)
}

type t

val attach : Kube_api.t -> t
(** Subscribes (list + watch); existing objects appear in the first
    {!drain}. *)

val drain : t -> changes
(** Atomically take everything accumulated since the previous drain, in
    event order. *)

val pending_count : t -> int
