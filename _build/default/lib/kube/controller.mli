(** The Aladdin-in-Kubernetes control loop (Fig. 6): EHC → model adaptor →
    Aladdin → resolvers, one reconcile round per {!sync}. *)

type t

val create : ?scheduler:Scheduler.t -> Kube_api.t -> t
(** Attaches to the API server (list + watch). Defaults to the full
    Aladdin+IL+DL scheduler. *)

val sync : t -> Resolver.report
(** One reconcile round: drain events, refresh the model, schedule every
    pending pod, bind/mark the results. Safe to call with nothing
    pending. *)

val cluster : t -> Cluster.t option
(** The scheduler-side mirror (for inspection and tests). *)

val pending : t -> int
(** Pods waiting for the next round. *)

val cordon : t -> node:string -> unit
(** Stop scheduling onto a node (its pods keep running).
    @raise Invalid_argument for unknown nodes or before inventory sync. *)

val uncordon : t -> node:string -> unit

val drain_node : t -> node:string -> Resolver.report
(** Cordon the node, evict its pods and re-schedule them elsewhere
    (maintenance). Pods that cannot be re-placed are marked
    Unschedulable. *)
