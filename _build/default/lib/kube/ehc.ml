type changes = {
  new_nodes : Kube_objects.node list;
  new_profiles : Kube_objects.app_profile list;
  pending_pods : Kube_objects.pod list;
  deleted_pods : Kube_objects.pod list;
}

type t = {
  mutable nodes_rev : Kube_objects.node list;
  mutable profiles_rev : Kube_objects.app_profile list;
  mutable pending_rev : Kube_objects.pod list;
  mutable deleted_rev : Kube_objects.pod list;
}

let attach api =
  let t =
    { nodes_rev = []; profiles_rev = []; pending_rev = []; deleted_rev = [] }
  in
  Kube_api.watch api (fun ev ->
      match ev with
      | Kube_api.Node_added n -> t.nodes_rev <- n :: t.nodes_rev
      | Kube_api.Profile_added p -> t.profiles_rev <- p :: t.profiles_rev
      | Kube_api.Pod_added pod -> t.pending_rev <- pod :: t.pending_rev
      | Kube_api.Pod_deleted pod ->
          (* a pending pod that vanishes is simply dropped from the queue;
             a bound one must be reflected in the scheduler's model *)
          let was_pending =
            List.exists
              (fun (p : Kube_objects.pod) ->
                p.Kube_objects.uid = pod.Kube_objects.uid)
              t.pending_rev
          in
          if was_pending then
            t.pending_rev <-
              List.filter
                (fun (p : Kube_objects.pod) ->
                  p.Kube_objects.uid <> pod.Kube_objects.uid)
                t.pending_rev
          else t.deleted_rev <- pod :: t.deleted_rev
      | Kube_api.Pod_bound _ | Kube_api.Pod_unschedulable _ ->
          (* status changes we caused ourselves; nothing to do *)
          ());
  t

let drain t =
  let c =
    {
      new_nodes = List.rev t.nodes_rev;
      new_profiles = List.rev t.profiles_rev;
      pending_pods = List.rev t.pending_rev;
      deleted_pods = List.rev t.deleted_rev;
    }
  in
  t.nodes_rev <- [];
  t.profiles_rev <- [];
  t.pending_rev <- [];
  t.deleted_rev <- [];
  c

let pending_count t = List.length t.pending_rev
