type event =
  | Node_added of Kube_objects.node
  | Profile_added of Kube_objects.app_profile
  | Pod_added of Kube_objects.pod
  | Pod_bound of Kube_objects.pod * string
  | Pod_unschedulable of Kube_objects.pod * string
  | Pod_deleted of Kube_objects.pod

type t = {
  nodes : (string, Kube_objects.node) Hashtbl.t;
  profiles : (string, Kube_objects.app_profile) Hashtbl.t;
  pods : (string, Kube_objects.pod) Hashtbl.t;
  mutable watchers : (event -> unit) list;
  mutable version : int;
  mutable next_uid : int;
  mutable insertion : string list; (* pod names, newest first *)
}

let create () =
  {
    nodes = Hashtbl.create 64;
    profiles = Hashtbl.create 64;
    pods = Hashtbl.create 256;
    watchers = [];
    version = 0;
    next_uid = 0;
    insertion = [];
  }

let emit t ev =
  t.version <- t.version + 1;
  List.iter (fun w -> w ev) (List.rev t.watchers)

let add_node t (n : Kube_objects.node) =
  if Hashtbl.mem t.nodes n.Kube_objects.node_name then
    invalid_arg "Kube_api.add_node: duplicate";
  Hashtbl.replace t.nodes n.Kube_objects.node_name n;
  emit t (Node_added n)

let add_profile t (p : Kube_objects.app_profile) =
  if Hashtbl.mem t.profiles p.Kube_objects.profile_name then
    invalid_arg "Kube_api.add_profile: duplicate name";
  Hashtbl.iter
    (fun _ (q : Kube_objects.app_profile) ->
      if q.Kube_objects.app_id = p.Kube_objects.app_id then
        invalid_arg "Kube_api.add_profile: duplicate app id")
    t.profiles;
  Hashtbl.replace t.profiles p.Kube_objects.profile_name p;
  emit t (Profile_added p)

let create_pod t ~name ~profile =
  if Hashtbl.mem t.pods name then invalid_arg "Kube_api.create_pod: duplicate";
  if not (Hashtbl.mem t.profiles profile) then
    invalid_arg "Kube_api.create_pod: unknown profile";
  let pod =
    {
      Kube_objects.pod_name = name;
      profile;
      phase = Kube_objects.Pending;
      uid = t.next_uid;
    }
  in
  t.next_uid <- t.next_uid + 1;
  Hashtbl.replace t.pods name pod;
  t.insertion <- name :: t.insertion;
  emit t (Pod_added pod);
  pod

let delete_pod t name =
  match Hashtbl.find_opt t.pods name with
  | None -> raise Not_found
  | Some pod ->
      Hashtbl.remove t.pods name;
      t.insertion <- List.filter (fun n -> n <> name) t.insertion;
      emit t (Pod_deleted pod)

let bind t ~pod ~node =
  match Hashtbl.find_opt t.pods pod with
  | None -> invalid_arg "Kube_api.bind: unknown pod"
  | Some p ->
      if not (Hashtbl.mem t.nodes node) then
        invalid_arg "Kube_api.bind: unknown node";
      (match p.Kube_objects.phase with
      | Kube_objects.Pending | Kube_objects.Unschedulable _ -> ()
      | Kube_objects.Bound current ->
          (* re-binding expresses a migration (the pod restarts on the new
             node); binding to the same node again is a no-op error *)
          if current = node then invalid_arg "Kube_api.bind: already bound");
      p.Kube_objects.phase <- Kube_objects.Bound node;
      emit t (Pod_bound (p, node))

let mark_unschedulable t ~pod ~reason =
  match Hashtbl.find_opt t.pods pod with
  | None -> invalid_arg "Kube_api.mark_unschedulable: unknown pod"
  | Some p ->
      p.Kube_objects.phase <- Kube_objects.Unschedulable reason;
      emit t (Pod_unschedulable (p, reason))

let nodes t = Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
let profiles t = Hashtbl.fold (fun _ p acc -> p :: acc) t.profiles []

let pods t =
  List.rev t.insertion
  |> List.filter_map (fun name -> Hashtbl.find_opt t.pods name)

let find_pod t name = Hashtbl.find_opt t.pods name
let find_profile t name = Hashtbl.find_opt t.profiles name

let watch t callback =
  (* list + watch: replay current state as synthetic Added events *)
  List.iter (fun n -> callback (Node_added n)) (nodes t);
  List.iter (fun p -> callback (Profile_added p)) (profiles t);
  List.iter (fun p -> callback (Pod_added p)) (pods t);
  t.watchers <- callback :: t.watchers

let resource_version t = t.version
