(** The Kubernetes-side object model of the co-design architecture
    (Fig. 6, left): nodes, pods, and application profiles (the CRD carrying
    the LLA-level constraints Aladdin needs). *)

type node = {
  node_name : string;
  capacity : Resource.t;
}

type app_profile = {
  profile_name : string;
  app_id : Application.id;
  demand : Resource.t;        (** per-pod requirement (isomorphism) *)
  priority : int;
  anti_affinity_within : bool;
  anti_affinity_across : Application.id list;
  replicas : int;
}

type pod_phase =
  | Pending
  | Bound of string           (** node name *)
  | Unschedulable of string   (** reason *)

type pod = {
  pod_name : string;
  profile : string;           (** owning app profile *)
  mutable phase : pod_phase;
  uid : int;                  (** unique within the API server *)
}

val application_of_profile : app_profile -> Application.t
val pp_phase : Format.formatter -> pod_phase -> unit
