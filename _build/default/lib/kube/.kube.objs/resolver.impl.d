lib/kube/resolver.ml: Cluster Container Hashtbl Kube_api Kube_objects List Model_adaptor Scheduler
