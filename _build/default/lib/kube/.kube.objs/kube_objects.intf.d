lib/kube/kube_objects.mli: Application Format Resource
