lib/kube/model_adaptor.ml: Array Cluster Constraint_set Container Ehc Hashtbl Kube_objects List Machine Topology
