lib/kube/kube_api.mli: Kube_objects
