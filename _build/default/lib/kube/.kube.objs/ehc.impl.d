lib/kube/ehc.ml: Kube_api Kube_objects List
