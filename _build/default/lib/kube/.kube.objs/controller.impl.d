lib/kube/controller.ml: Aladdin Array Cluster Container Ehc Hashtbl Kube_api Kube_objects List Model_adaptor Resolver Scheduler
