lib/kube/kube_objects.ml: Application Format Resource
