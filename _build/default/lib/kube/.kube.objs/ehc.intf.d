lib/kube/ehc.mli: Kube_api Kube_objects
