lib/kube/resolver.mli: Kube_api Kube_objects Model_adaptor Scheduler
