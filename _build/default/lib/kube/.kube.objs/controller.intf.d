lib/kube/controller.mli: Cluster Kube_api Resolver Scheduler
