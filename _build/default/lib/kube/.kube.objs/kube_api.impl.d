lib/kube/kube_api.ml: Hashtbl Kube_objects List
