lib/kube/model_adaptor.mli: Cluster Container Ehc Kube_objects Machine
