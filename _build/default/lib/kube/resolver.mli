(** Resolvers (Fig. 6): map the scheduler's container→machine decisions
    back onto Kubernetes objects through the binding API, and surface
    undeployed containers as Unschedulable pod conditions. *)

type report = {
  bound : (string * string) list;  (** pod name, node name *)
  unschedulable : string list;
  migrations : int;
  preemptions : int;
}

val resolve :
  Kube_api.t ->
  Model_adaptor.t ->
  pods:Kube_objects.pod list ->
  Scheduler.outcome ->
  report
(** Binds every placed pod of the batch (and re-binds pods whose containers
    the scheduler migrated), marks the undeployed ones. *)
