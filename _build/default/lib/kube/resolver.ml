type report = {
  bound : (string * string) list;
  unschedulable : string list;
  migrations : int;
  preemptions : int;
}

let resolve api ma ~pods (o : Scheduler.outcome) =
  let by_uid = Hashtbl.create (List.length pods) in
  List.iter
    (fun (p : Kube_objects.pod) -> Hashtbl.replace by_uid p.Kube_objects.uid p)
    pods;
  let bound = ref [] in
  let unschedulable = ref [] in
  List.iter
    (fun (cid, mid) ->
      match Hashtbl.find_opt by_uid cid with
      | None -> () (* a pre-existing container the scheduler touched *)
      | Some pod ->
          let node = Model_adaptor.node_name_of_machine ma mid in
          Kube_api.bind api ~pod:pod.Kube_objects.pod_name ~node;
          bound := (pod.Kube_objects.pod_name, node) :: !bound)
    o.Scheduler.placed;
  List.iter
    (fun (c : Container.t) ->
      match Hashtbl.find_opt by_uid c.Container.id with
      | None -> ()
      | Some pod ->
          Kube_api.mark_unschedulable api ~pod:pod.Kube_objects.pod_name
            ~reason:"no admissible node";
          unschedulable := pod.Kube_objects.pod_name :: !unschedulable)
    o.Scheduler.undeployed;
  (* Migrations move containers that were bound in earlier rounds: rebind
     any pod whose API binding no longer matches the scheduler mirror. *)
  (match Model_adaptor.cluster ma with
  | None -> ()
  | Some cluster ->
      List.iter
        (fun (pod : Kube_objects.pod) ->
          match
            (pod.Kube_objects.phase, Cluster.machine_of cluster pod.Kube_objects.uid)
          with
          | Kube_objects.Bound node, Some mid ->
              let actual = Model_adaptor.node_name_of_machine ma mid in
              if actual <> node then begin
                Kube_api.bind api ~pod:pod.Kube_objects.pod_name ~node:actual;
                bound := (pod.Kube_objects.pod_name, actual) :: !bound
              end
          | _ -> ())
        (Kube_api.pods api));
  if !bound <> [] then Model_adaptor.seal ma;
  {
    bound = List.rev !bound;
    unschedulable = List.rev !unschedulable;
    migrations = o.Scheduler.migrations;
    preemptions = o.Scheduler.preemptions;
  }
