(** Minimal discrete-event simulation core: a time-ordered event queue with
    a monotonically advancing virtual clock. Used by the mixed
    long-lived/short-lived workload runner (§IV.D). *)

type 'a t

val create : unit -> 'a t

val now : 'a t -> float
(** Current virtual time (the timestamp of the last popped event). *)

val schedule : 'a t -> at:float -> 'a -> unit
(** @raise Invalid_argument when scheduling in the past. *)

val after : 'a t -> delay:float -> 'a -> unit
(** Schedule relative to {!now}. @raise Invalid_argument on negative
    delay. *)

val next : 'a t -> (float * 'a) option
(** Pop the earliest event and advance the clock. Ties pop in insertion
    order. *)

val is_empty : 'a t -> bool
val pending : 'a t -> int
