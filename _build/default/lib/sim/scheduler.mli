(** The interface every scheduler in this repository implements, and the
    outcome record the evaluation metrics are computed from.

    A scheduler receives a mutable {!Cluster.t} (it may already host
    containers from earlier batches) and a submission batch; it deploys what
    it can by mutating the cluster and reports the rest. *)

type outcome = {
  placed : (Container.id * Machine.id) list;
      (** final placements made for this batch *)
  undeployed : Container.t list;
      (** batch containers left unscheduled — the Fig. 9 quality metric *)
  violations : Violation.t list;
      (** constraint violations the scheduler *tolerated* *)
  migrations : int;  (** container moves performed (Fig. 13(b)) *)
  preemptions : int; (** evictions performed *)
  rounds : int;      (** internal scheduling rounds/iterations used *)
}

type t = {
  name : string;
  schedule : Cluster.t -> Container.t array -> outcome;
}

val empty_outcome : outcome
val merge : outcome -> outcome -> outcome
(** Concatenates placements/violations and sums the counters. *)

val undeployed_count : outcome -> int
val pp_outcome : Format.formatter -> outcome -> unit
