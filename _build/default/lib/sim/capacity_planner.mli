(** "How many machines does scheduler X need?" — the Fig. 10 question.

    Schedulers like Firmament have an intrinsic quality floor (conflicts
    they never resolve regardless of pool size), so "needs" is defined as:
    the smallest homogeneous pool on which the scheduler does as well as it
    ever does — no more undeployed containers and no more violations than
    on an effectively unconstrained pool. For Aladdin and Medea(c=0) the
    floor is zero and this coincides with "deploys everything cleanly".
    Deployability is treated as monotone in pool size (true for every
    scheduler here on a fixed arrival order). *)

type result = {
  pool : int;          (** smallest pool reaching the quality floor *)
  used : int;          (** machines hosting ≥1 container on that pool *)
  floor_undeployed : int;  (** the scheduler's intrinsic floor *)
  run : Replay.run;    (** the successful run, for Fig. 11 utilization *)
}

val plan :
  ?lo:int ->
  ?hi:int ->
  ?order:Arrival.order ->
  Scheduler.t ->
  Workload.t ->
  result option
(** [lo] defaults to the demand lower bound (total demand / machine
    capacity); [hi] to 8× that. [None] when the scheduler deploys nothing
    even on [hi] machines. *)

val demand_lower_bound : Workload.t -> int
