type outcome = {
  placed : (Container.id * Machine.id) list;
  undeployed : Container.t list;
  violations : Violation.t list;
  migrations : int;
  preemptions : int;
  rounds : int;
}

type t = {
  name : string;
  schedule : Cluster.t -> Container.t array -> outcome;
}

let empty_outcome =
  {
    placed = [];
    undeployed = [];
    violations = [];
    migrations = 0;
    preemptions = 0;
    rounds = 0;
  }

let merge a b =
  {
    placed = a.placed @ b.placed;
    undeployed = a.undeployed @ b.undeployed;
    violations = a.violations @ b.violations;
    migrations = a.migrations + b.migrations;
    preemptions = a.preemptions + b.preemptions;
    rounds = a.rounds + b.rounds;
  }

let undeployed_count o = List.length o.undeployed

let pp_outcome ppf o =
  Format.fprintf ppf
    "placed=%d undeployed=%d violations=%d (anti=%d) migrations=%d \
     preemptions=%d rounds=%d"
    (List.length o.placed) (List.length o.undeployed)
    (List.length o.violations)
    (Violation.count_anti_affinity o.violations)
    o.migrations o.preemptions o.rounds
