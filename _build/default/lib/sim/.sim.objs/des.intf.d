lib/sim/des.mli:
