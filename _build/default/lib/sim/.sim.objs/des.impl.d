lib/sim/des.ml: Array
