lib/sim/replay.mli: Arrival Cluster Container Scheduler Workload
