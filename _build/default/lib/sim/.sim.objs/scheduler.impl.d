lib/sim/scheduler.ml: Cluster Container Format List Machine Violation
