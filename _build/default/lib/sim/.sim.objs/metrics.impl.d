lib/sim/metrics.ml: Cluster Float Format List Scheduler Violation
