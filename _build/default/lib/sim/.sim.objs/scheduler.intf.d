lib/sim/scheduler.mli: Cluster Container Format Machine Violation
