lib/sim/replay.ml: Array Arrival Cluster Scheduler Unix Workload
