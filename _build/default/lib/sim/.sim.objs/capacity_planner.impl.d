lib/sim/capacity_planner.ml: Application Array Cluster List Replay Resource Scheduler Workload
