lib/sim/metrics.mli: Cluster Format Scheduler
