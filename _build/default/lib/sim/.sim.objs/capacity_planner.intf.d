lib/sim/capacity_planner.mli: Arrival Replay Scheduler Workload
