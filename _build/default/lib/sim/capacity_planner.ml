type result = {
  pool : int;
  used : int;
  floor_undeployed : int;
  run : Replay.run;
}

let demand_lower_bound w =
  let total = Resource.to_array (Workload.total_demand w) in
  let cap = Resource.to_array w.Workload.machine_capacity in
  let need = ref 1 in
  Array.iteri
    (fun i d ->
      if cap.(i) > 0 then need := max !need ((d + cap.(i) - 1) / cap.(i)))
    total;
  (* Anti-affinity forces at least as many machines as the largest
     anti-within app has containers. *)
  Array.iter
    (fun (a : Application.t) ->
      if a.Application.anti_affinity_within then
        need := max !need a.Application.n_containers)
    w.Workload.apps;
  !need

let quality run =
  ( List.length run.Replay.outcome.Scheduler.undeployed,
    List.length run.Replay.outcome.Scheduler.violations )

let plan ?lo ?hi ?order sched w =
  let lo = match lo with Some l -> max 1 l | None -> demand_lower_bound w in
  let hi = match hi with Some h -> h | None -> 8 * lo in
  let attempt n = Replay.run_workload ?order sched w ~n_machines:n in
  let top = attempt hi in
  let floor_u, floor_v = quality top in
  if floor_u >= top.Replay.n_submitted && top.Replay.n_submitted > 0 then None
  else begin
    let succeeds r =
      let u, v = quality r in
      u <= floor_u && v <= floor_v
    in
    let best_run = ref top in
    let best_n = ref hi in
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let r = attempt mid in
      if succeeds r then begin
        best_run := r;
        best_n := mid;
        hi := mid
      end
      else lo := mid + 1
    done;
    Some
      {
        pool = !best_n;
        used = Cluster.used_machines !best_run.Replay.cluster;
        floor_undeployed = floor_u;
        run = !best_run;
      }
  end
