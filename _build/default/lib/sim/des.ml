(* Pairing-free binary heap keyed by (time, sequence) so equal-time events
   preserve insertion order. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable n : int;
  mutable clock : float;
  mutable next_seq : int;
}

let create () = { heap = [||]; n = 0; clock = 0.; next_seq = 0 }
let now t = t.clock
let is_empty t = t.n = 0
let pending t = t.n

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t fill =
  let cap = max 8 (2 * Array.length t.heap) in
  let heap = Array.make cap fill in
  Array.blit t.heap 0 heap 0 t.n;
  t.heap <- heap

let schedule t ~at payload =
  if at < t.clock then invalid_arg "Des.schedule: in the past";
  let e = { time = at; seq = t.next_seq; payload } in
  if t.n >= Array.length t.heap then grow t e;
  t.next_seq <- t.next_seq + 1;
  (* sift up *)
  let i = ref t.n in
  t.n <- t.n + 1;
  t.heap.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let after t ~delay payload =
  if delay < 0. then invalid_arg "Des.after: negative delay";
  schedule t ~at:(t.clock +. delay) payload

let next t =
  if t.n = 0 then None
  else begin
    let top = t.heap.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.heap.(0) <- t.heap.(t.n);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.n && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.n && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    t.clock <- top.time;
    Some (top.time, top.payload)
  end
