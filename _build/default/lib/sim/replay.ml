type run = {
  scheduler : string;
  outcome : Scheduler.outcome;
  elapsed_s : float;
  n_submitted : int;
  cluster : Cluster.t;
}

let run ?batch (sched : Scheduler.t) ~cluster ~containers =
  let n = Array.length containers in
  let batch = match batch with Some b when b > 0 -> b | _ -> max n 1 in
  let outcome = ref Scheduler.empty_outcome in
  let elapsed = ref 0. in
  let pos = ref 0 in
  while !pos < n do
    let len = min batch (n - !pos) in
    let wave = Array.sub containers !pos len in
    let t0 = Unix.gettimeofday () in
    let o = sched.Scheduler.schedule cluster wave in
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    outcome := Scheduler.merge !outcome o;
    pos := !pos + len
  done;
  {
    scheduler = sched.Scheduler.name;
    outcome = !outcome;
    elapsed_s = !elapsed;
    n_submitted = n;
    cluster;
  }

let run_workload ?batch ?(order = Arrival.As_submitted) sched w ~n_machines =
  let w = Arrival.apply order w in
  let cluster =
    Cluster.create
      (Workload.topology w ~n_machines)
      ~constraints:(Workload.constraint_set w)
  in
  run ?batch sched ~cluster ~containers:w.Workload.containers

let per_container_ms r =
  if r.n_submitted = 0 then 0.
  else 1000. *. r.elapsed_s /. float_of_int r.n_submitted
