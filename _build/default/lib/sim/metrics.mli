(** Evaluation metrics, matching §V's definitions. *)

val undeployed_pct : Scheduler.outcome -> total:int -> float
(** Fig. 9 y-axis: percent of submitted containers left undeployed. *)

val anti_affinity_ratio_pct : Scheduler.outcome -> float
(** Fig. 9(e): anti-affinity share of all violations, in percent.
    Undeployed containers are counted as violations of their strictest
    constraint class for this ratio when the scheduler reported none. *)

val efficiency : used:int -> best:int -> float
(** Eq. 10: [used/best − 1]; 0 for the scheduler that used fewest machines. *)

type util_summary = {
  min_pct : float;
  max_pct : float;
  mean_pct : float;
  n_used : int;
}

val utilization_summary : Cluster.t -> util_summary
(** Fig. 11: range and average of per-used-machine utilization. *)

val latency_ms : elapsed_s:float -> containers:int -> float
(** Eq. 11: average placement latency per container (ms). *)

val pp_util : Format.formatter -> util_summary -> unit
