let undeployed_pct (o : Scheduler.outcome) ~total =
  if total = 0 then 0.
  else 100. *. float_of_int (List.length o.Scheduler.undeployed)
       /. float_of_int total

let anti_affinity_ratio_pct (o : Scheduler.outcome) =
  match o.Scheduler.violations with
  | [] -> 0.
  | v -> 100. *. Violation.anti_affinity_ratio v

let efficiency ~used ~best =
  if best <= 0 then invalid_arg "Metrics.efficiency: bad baseline";
  (float_of_int used /. float_of_int best) -. 1.

type util_summary = {
  min_pct : float;
  max_pct : float;
  mean_pct : float;
  n_used : int;
}

let utilization_summary cluster =
  match Cluster.utilizations cluster with
  | [] -> { min_pct = 0.; max_pct = 0.; mean_pct = 0.; n_used = 0 }
  | us ->
      let n = List.length us in
      let mn = List.fold_left Float.min infinity us in
      let mx = List.fold_left Float.max neg_infinity us in
      let mean = List.fold_left ( +. ) 0. us /. float_of_int n in
      {
        min_pct = 100. *. mn;
        max_pct = 100. *. mx;
        mean_pct = 100. *. mean;
        n_used = n;
      }

let latency_ms ~elapsed_s ~containers =
  if containers = 0 then 0. else 1000. *. elapsed_s /. float_of_int containers

let pp_util ppf u =
  Format.fprintf ppf "%.0f%%..%.0f%% (avg %.0f%%, %d machines)" u.min_pct
    u.max_pct u.mean_pct u.n_used
