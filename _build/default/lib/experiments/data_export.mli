(** Raw figure data as tab-separated files, one per figure, for external
    plotting (gnuplot/matplotlib). Columns mirror the paper's axes. *)

val export : dir:string -> Exp_config.t -> string list
(** Runs fig8/9/10/11/12/13 and writes [figN.tsv] under [dir] (created if
    missing); returns the paths written. *)
