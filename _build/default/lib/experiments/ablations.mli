(** Ablations of the design choices DESIGN.md calls out, beyond the paper's
    own figures:

    - search optimizations: plain / +IL / +DL / +IL+DL — latency *and*
      placement quality (quality must not change);
    - flow-increasing mechanisms: migration and preemption on/off — their
      contribution to zero-undeployed (§III.B);
    - priority weights: Eq. 5-derived vs the evaluation's fixed powers;
    - resource dimensions: CPU-only (the paper's headline setting) vs
      CPU+memory, exercising the multidimensional capacity path (§IV.D
      says the extra dimension costs a linear factor c). *)

type search_row = {
  policy : string;
  latency_ms : float;
  paths_explored : int;
  undeployed : int;
}

type mechanism_row = {
  config : string;
  undeployed : int;
  migrations : int;
  preemptions : int;
}

type weights_row = {
  mode : string;
  undeployed : int;
  priority_undeployed : int;  (** undeployed containers with priority > 0 *)
}

type dimensions_row = {
  dims : string;
  undeployed : int;
  used_machines : int;
  latency_ms : float;
}

val search_optimizations : Exp_config.t -> search_row list
val mechanisms : Exp_config.t -> mechanism_row list
val weights : Exp_config.t -> weights_row list
val dimensions : Exp_config.t -> dimensions_row list
val print : Exp_config.t -> unit
