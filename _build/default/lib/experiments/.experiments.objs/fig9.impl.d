lib/experiments/fig9.ml: Cost_model Exp_config Hashtbl Int List Metrics Printf Replay Report Sched_zoo Scheduler Violation Workload
