lib/experiments/online.mli: Exp_config
