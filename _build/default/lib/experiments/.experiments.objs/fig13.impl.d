lib/experiments/fig13.ml: Aladdin Alibaba Arrival Exp_config Int List Printf Replay Report Sched_zoo Scheduler
