lib/experiments/sched_zoo.ml: Aladdin Firmament Gokube Medea
