lib/experiments/fig12.ml: Alibaba Cost_model Exp_config Int List Printf Replay Report Sched_zoo Workload
