lib/experiments/failure.mli: Exp_config
