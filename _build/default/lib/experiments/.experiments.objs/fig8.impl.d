lib/experiments/fig8.ml: Exp_config Int List Printf Report Resource Workload_stats
