lib/experiments/fig10.mli: Arrival Exp_config Metrics
