lib/experiments/data_export.ml: Arrival Fig10 Fig12 Fig13 Fig8 Fig9 Filename Fun List Metrics Option Printf String Sys
