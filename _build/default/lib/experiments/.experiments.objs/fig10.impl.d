lib/experiments/fig10.ml: Arrival Capacity_planner Cost_model Exp_config Hashtbl List Metrics Option Printf Replay Report Sched_zoo Scheduler String
