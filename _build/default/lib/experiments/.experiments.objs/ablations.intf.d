lib/experiments/ablations.mli: Exp_config
