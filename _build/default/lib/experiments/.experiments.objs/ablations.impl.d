lib/experiments/ablations.ml: Aladdin Alibaba Arrival Cluster Container Exp_config List Printf Replay Report Sched_zoo Scheduler
