lib/experiments/exp_config.ml: Alibaba Float Sys
