lib/experiments/heterogeneous.mli: Exp_config
