lib/experiments/failure.ml: Aladdin Array Cluster Constraint_set Container Exp_config Hashtbl List Machine Option Printf Replay Report Rng Sched_zoo Workload
