lib/experiments/sched_zoo.mli: Cost_model Scheduler
