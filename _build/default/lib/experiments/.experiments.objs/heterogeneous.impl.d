lib/experiments/heterogeneous.ml: Array Cluster Exp_config List Metrics Printf Replay Report Resource Sched_zoo Scheduler Topology Workload
