lib/experiments/table1.ml: List Report Sched_zoo
