lib/experiments/data_export.mli: Exp_config
