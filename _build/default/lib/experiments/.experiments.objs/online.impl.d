lib/experiments/online.ml: Cluster Exp_config List Printf Replay Report Sched_zoo Scheduler Workload
