lib/experiments/exp_config.mli: Workload
