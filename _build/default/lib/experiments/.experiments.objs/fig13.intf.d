lib/experiments/fig13.mli: Arrival Exp_config
