(** Fig. 9: placement quality — undeployed containers after scheduling the
    whole workload onto the fixed-size cluster, for every scheduler
    configuration of panels (a)–(d), and the anti-affinity share of the
    violations (panel (e)). *)

type row = {
  scheduler : string;
  undeployed_pct : float;
  paper_pct : float option;  (** the value the paper reports, when quoted *)
  n_violations : int;
  anti_affinity_pct : float; (** share of violations that are anti-affinity *)
}

type panel = { label : string; rows : row list }

val run : Exp_config.t -> panel list
(** Panels (a)–(d); panel (e) is derived from their [anti_affinity_pct]. *)

val print : Exp_config.t -> unit
