(** Fig. 10 and Fig. 11: resource efficiency.

    For each arrival characteristic (CHP/CLP/CLA/CSA) and each of the four
    tuned schedulers, find the smallest machine pool on which the whole
    workload deploys cleanly and report the machines actually used
    (Fig. 10) and the distribution of per-machine utilization on that run
    (Fig. 11). *)

type cell = {
  scheduler : string;
  order : Arrival.order;
  used : int option;        (** None when even the largest probed pool fails *)
  pool : int option;
  util : Metrics.util_summary option;
  paper_used : int option;  (** paper's machine count at full scale *)
}

val run : Exp_config.t -> cell list
val efficiency_rows : cell list -> (string * float) list
(** Eq. 10 efficiencies per scheduler (averaged over orders). *)

val print : Exp_config.t -> unit
(** Prints both Fig. 10 and Fig. 11 views. *)
