type step = {
  failures_so_far : int;
  displaced : int;
  recovered : int;
  lost : int;
  violations : int;
  max_replicas_lost : int;
}

let run ?(n_failures = 5) cfg =
  let w = Exp_config.workload cfg in
  let sched = Sched_zoo.aladdin () in
  (* a little headroom so recovery has somewhere to go *)
  let n_machines = cfg.Exp_config.machines * 11 / 10 in
  let r = Replay.run_workload sched w ~n_machines in
  let cluster = r.Replay.cluster in
  let cs = Workload.constraint_set w in
  let rng = Rng.create (cfg.Exp_config.seed + 1) in
  List.init n_failures (fun k ->
      (* fail a used machine *)
      let victim =
        let used =
          Array.to_list (Cluster.machines cluster)
          |> List.filter (fun m ->
                 Machine.is_used m
                 && not (Cluster.is_offline cluster (Machine.id m)))
          |> Array.of_list
        in
        Machine.id used.(Rng.int rng (Array.length used))
      in
      let report = Aladdin.Lifecycle.fail_machine ~scheduler:sched cluster victim in
      let per_app = Hashtbl.create 16 in
      List.iter
        (fun (c : Container.t) ->
          Hashtbl.replace per_app c.Container.app
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_app c.Container.app)))
        report.Aladdin.Lifecycle.displaced;
      let max_within =
        Hashtbl.fold
          (fun app n acc ->
            if Constraint_set.anti_within cs app then max acc n else acc)
          per_app 0
      in
      {
        failures_so_far = k + 1;
        displaced = List.length report.Aladdin.Lifecycle.displaced;
        recovered = List.length report.Aladdin.Lifecycle.recovered;
        lost = List.length report.Aladdin.Lifecycle.lost;
        violations = List.length (Cluster.current_violations cluster);
        max_replicas_lost = max_within;
      })

let print cfg =
  Report.section
    (Printf.sprintf "Extension: machine-failure recovery (scale %.2f)"
       cfg.Exp_config.factor);
  Report.note
    "anti-affinity bounds the blast radius: an anti-within app loses at \
     most one replica per machine failure@.";
  Report.table
    ~header:
      [ "failure #"; "displaced"; "recovered"; "lost"; "violations";
        "max anti-within replicas lost" ]
    (List.map
       (fun s ->
         [
           string_of_int s.failures_so_far;
           string_of_int s.displaced;
           string_of_int s.recovered;
           string_of_int s.lost;
           string_of_int s.violations;
           string_of_int s.max_replicas_lost;
         ])
       (run cfg))
