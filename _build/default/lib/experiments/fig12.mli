(** Fig. 12: average placement latency (Eq. 11) as the cluster grows,
    keeping the paper's 10-containers-per-machine load. Six schedulers:
    Go-Kube, Firmament-QUINCY(8), MEDEA(1,1,0), and the three Aladdin
    policies (plain / +IL / +IL+DL). *)

type point = {
  machines : int;
  containers : int;
  latency_ms : (string * float) list;  (** scheduler → ms per container *)
}

val sizes : Exp_config.t -> int list
(** Cluster sizes probed: the paper's 1k..10k scaled. *)

val run : Exp_config.t -> point list
val print : Exp_config.t -> unit
