(** Fig. 8: workload features — CDF of containers per application and the
    constraint counts. *)

type result = {
  stats : Workload_stats.t;
  cdf : (int * float) list;  (** (app size, fraction of apps ≤ size) *)
}

val run : Exp_config.t -> result
val print : Exp_config.t -> unit
