type cell = {
  scheduler : string;
  order : Arrival.order;
  used : int option;
  pool : int option;
  util : Metrics.util_summary option;
  paper_used : int option;
}

(* Paper Fig. 10 values at full scale (per arrival order they are nearly
   flat for everything but Go-Kube; we quote the worst case). *)
let schedulers () =
  [
    (Sched_zoo.gokube (), Some 14_211);
    (Sched_zoo.firmament Cost_model.Quincy ~reschd:8, Some 10_477);
    (Sched_zoo.medea ~a:1. ~b:1. ~c:0., Some 10_262);
    (Sched_zoo.aladdin ~base:16 (), Some 9_242);
  ]

let orders =
  Arrival.
    [
      High_priority_first;
      Low_priority_first;
      Large_anti_affinity_first;
      Small_anti_affinity_first;
    ]

let run cfg =
  let w = Exp_config.workload cfg in
  List.concat_map
    (fun order ->
      List.map
        (fun (sched, paper_used) ->
          match Capacity_planner.plan ~order sched w with
          | Some { Capacity_planner.pool; used; run; floor_undeployed = _ } ->
              {
                scheduler = sched.Scheduler.name;
                order;
                used = Some used;
                pool = Some pool;
                util = Some (Metrics.utilization_summary run.Replay.cluster);
                paper_used;
              }
          | None ->
              {
                scheduler = sched.Scheduler.name;
                order;
                used = None;
                pool = None;
                util = None;
                paper_used;
              })
        (schedulers ()))
    orders

let efficiency_rows cells =
  (* Eq. 10 against the best scheduler within each arrival order, then
     averaged over orders. *)
  let by_order = Hashtbl.create 4 in
  List.iter
    (fun c ->
      match c.used with
      | Some u ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_order c.order) in
          Hashtbl.replace by_order c.order ((c.scheduler, u) :: cur)
      | None -> ())
    cells;
  let acc = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ rows ->
      let best = List.fold_left (fun m (_, u) -> min m u) max_int rows in
      List.iter
        (fun (s, u) ->
          let cur = Option.value ~default:(0., 0) (Hashtbl.find_opt acc s) in
          Hashtbl.replace acc s
            (fst cur +. Metrics.efficiency ~used:u ~best, snd cur + 1))
        rows)
    by_order;
  Hashtbl.fold
    (fun s (total, n) out -> (s, total /. float_of_int (max 1 n)) :: out)
    acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let print cfg =
  let cells = run cfg in
  Report.section
    (Printf.sprintf "Fig. 10: machines used per arrival characteristic (scale %.2f)"
       cfg.Exp_config.factor);
  let order_label o = Arrival.abbrev o in
  Report.table
    ~header:[ "scheduler"; "order"; "machines used"; "paper (full scale)" ]
    (List.map
       (fun c ->
         [
           c.scheduler;
           order_label c.order;
           (match c.used with Some u -> string_of_int u | None -> "FAILED");
           (match c.paper_used with
           | Some p ->
               Printf.sprintf "%d -> ~%d here" p (Exp_config.scale_machines cfg p)
           | None -> "-");
         ])
       cells);
  Report.subsection "Eq. 10 efficiency (mean over orders; 0 = best)";
  Report.table ~header:[ "scheduler"; "efficiency" ]
    (List.map
       (fun (s, e) -> [ s; Printf.sprintf "%.3f" e ])
       (efficiency_rows cells));
  Report.section
    "Fig. 11: per-machine resource utilization on the minimal pool";
  Report.table
    ~header:[ "scheduler"; "order"; "min"; "avg"; "max"; "used machines" ]
    (List.map
       (fun c ->
         match c.util with
         | Some u ->
             [
               c.scheduler;
               order_label c.order;
               Report.pct u.Metrics.min_pct;
               Report.pct u.Metrics.mean_pct;
               Report.pct u.Metrics.max_pct;
               string_of_int u.Metrics.n_used;
             ]
         | None -> [ c.scheduler; order_label c.order; "-"; "-"; "-"; "-" ])
       cells)
