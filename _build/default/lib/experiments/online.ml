type row = {
  mode : string;
  undeployed : int;
  used_machines : int;
  latency_ms : float;
  migrations : int;
}

let run cfg =
  let w = Exp_config.workload cfg in
  let n = Workload.n_containers w in
  let modes =
    [
      ("one batch", None);
      ("10 waves", Some (max 1 (n / 10)));
      ("100 waves", Some (max 1 (n / 100)));
      ("per container", Some 1);
    ]
  in
  List.map
    (fun (mode, batch) ->
      let sched = Sched_zoo.aladdin () in
      let r =
        Replay.run_workload ?batch sched w ~n_machines:cfg.Exp_config.machines
      in
      {
        mode;
        undeployed = List.length r.Replay.outcome.Scheduler.undeployed;
        used_machines = Cluster.used_machines r.Replay.cluster;
        latency_ms = Replay.per_container_ms r;
        migrations = r.Replay.outcome.Scheduler.migrations;
      })
    modes

let print cfg =
  Report.section
    (Printf.sprintf "Extension: arrival granularity (scale %.2f)"
       cfg.Exp_config.factor);
  Report.table
    ~header:[ "mode"; "undeployed"; "used"; "ms/container"; "migrations" ]
    (List.map
       (fun r ->
         [
           r.mode;
           string_of_int r.undeployed;
           string_of_int r.used_machines;
           Printf.sprintf "%.3f" r.latency_ms;
           string_of_int r.migrations;
         ])
       (run cfg))
