type row = {
  pool : string;
  scheduler : string;
  undeployed : int;
  used_machines : int;
  mean_util_pct : float;
}

(* A mixed pool with the same total CPU as [n] machines of 32: per block of
   8 machines, two of 16, four of 32, two of 64 (16*2 + 32*4 + 64*2 = 288 =
   9 * 32, so the block is padded to 9 equivalent machines' capacity on 8
   physical ones — we instead emit capacities until the homogeneous total
   is matched). *)
let mixed_capacities ~total_cpu_millis =
  let tiers = [| 16_000; 32_000; 64_000 |] in
  let out = ref [] in
  let acc = ref 0 in
  let i = ref 0 in
  while !acc < total_cpu_millis do
    let c = tiers.(!i mod 3) in
    out := Resource.of_array [| c |] :: !out;
    acc := !acc + c;
    incr i
  done;
  Array.of_list (List.rev !out)

let run cfg =
  let w = Exp_config.workload cfg in
  let n = cfg.Exp_config.machines in
  let total_cpu = 32_000 * n in
  let schedulers () = [ Sched_zoo.aladdin (); Sched_zoo.gokube () ] in
  let homo =
    List.map
      (fun sched ->
        let r = Replay.run_workload sched w ~n_machines:n in
        ( "homogeneous 32cpu",
          r.Replay.scheduler,
          r.Replay.outcome,
          r.Replay.cluster ))
      (schedulers ())
  in
  let hetero =
    let capacities = mixed_capacities ~total_cpu_millis:total_cpu in
    List.map
      (fun sched ->
        let topo = Topology.heterogeneous ~capacities () in
        let cluster =
          Cluster.create topo ~constraints:(Workload.constraint_set w)
        in
        let r = Replay.run sched ~cluster ~containers:w.Workload.containers in
        ( "mixed 16/32/64cpu",
          r.Replay.scheduler,
          r.Replay.outcome,
          r.Replay.cluster ))
      (schedulers ())
  in
  List.map
    (fun (pool, scheduler, (o : Scheduler.outcome), cluster) ->
      {
        pool;
        scheduler;
        undeployed = List.length o.Scheduler.undeployed;
        used_machines = Cluster.used_machines cluster;
        mean_util_pct = (Metrics.utilization_summary cluster).Metrics.mean_pct;
      })
    (homo @ hetero)

let print cfg =
  Report.section
    (Printf.sprintf
       "Extension: heterogeneous machine pools (scale %.2f, paper future work)"
       cfg.Exp_config.factor);
  Report.table
    ~header:[ "pool"; "scheduler"; "undeployed"; "used"; "avg util" ]
    (List.map
       (fun r ->
         [
           r.pool;
           r.scheduler;
           string_of_int r.undeployed;
           string_of_int r.used_machines;
           Report.pct r.mean_util_pct;
         ])
       (run cfg))
