(** Failure injection: the reliability scenario anti-affinity exists for
    (§II.A). After the full workload is placed, machines fail one after
    another; each failure drains its containers and the scheduler re-places
    them on the degraded pool. Anti-affinity guarantees each app loses at
    most one replica per machine failure. *)

type step = {
  failures_so_far : int;
  displaced : int;
  recovered : int;
  lost : int;
  violations : int;   (** violations in the cluster after recovery *)
  max_replicas_lost : int;
      (** worst per-app replica loss from this single failure — must be 1
          for anti-within apps *)
}

val run : ?n_failures:int -> Exp_config.t -> step list
val print : Exp_config.t -> unit
