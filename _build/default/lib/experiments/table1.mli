(** Table I: the state-of-the-art schedulers used in the experiments. *)

val print : unit -> unit
