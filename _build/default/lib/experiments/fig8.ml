type result = { stats : Workload_stats.t; cdf : (int * float) list }

let cdf_sizes cfg =
  let f = cfg.Exp_config.factor in
  let s x = max 1 (int_of_float (float_of_int x *. f)) in
  List.sort_uniq Int.compare
    [ 1; 2; 5; 10; 20; 50; s 100; s 200; s 500; s 1000; s 2000; s 2500 ]

let run cfg =
  let w = Exp_config.workload cfg in
  { stats = Workload_stats.compute w; cdf = Workload_stats.cdf w ~at:(cdf_sizes cfg) }

let print cfg =
  let { stats; cdf } = run cfg in
  Report.section
    (Printf.sprintf "Fig. 8: workload features (scale %.2f, seed %d)"
       cfg.Exp_config.factor cfg.Exp_config.seed);
  Report.subsection "Fig. 8(a): CDF of container numbers per application";
  Report.table ~header:[ "app size <="; "fraction of apps" ]
    (List.map (fun (s, f) -> [ string_of_int s; Report.pct (100. *. f) ]) cdf);
  Report.subsection "Fig. 8(b): number of constraints";
  let napps = float_of_int (max 1 stats.Workload_stats.n_apps) in
  Report.table ~header:[ "type"; "count"; "share"; "paper share" ]
    [
      [ "total applications"; string_of_int stats.Workload_stats.n_apps; "100%";
        "100% (13056)" ];
      [
        "with anti-affinity";
        string_of_int stats.Workload_stats.n_anti_affinity;
        Report.pct (100. *. float_of_int stats.Workload_stats.n_anti_affinity /. napps);
        "72% (9400)";
      ];
      [
        "with priority";
        string_of_int stats.Workload_stats.n_priority;
        Report.pct (100. *. float_of_int stats.Workload_stats.n_priority /. napps);
        "16% (2088)";
      ];
    ];
  Report.subsection "headline statistics";
  Report.table ~header:[ "metric"; "measured"; "paper" ]
    [
      [ "containers"; string_of_int stats.Workload_stats.n_containers;
        Printf.sprintf "~%d" (int_of_float (100000. *. cfg.Exp_config.factor)) ];
      [
        "single-instance apps";
        Report.pct
          (100. *. float_of_int stats.Workload_stats.n_single_instance /. napps);
        "~64%";
      ];
      [
        "apps < 50 containers";
        Report.pct (100. *. float_of_int stats.Workload_stats.n_lt_50 /. napps);
        "~85%";
      ];
      [ "largest app"; string_of_int stats.Workload_stats.max_app_size;
        Printf.sprintf ">%d" (int_of_float (2000. *. cfg.Exp_config.factor)) ];
      [ "max demand"; Resource.to_string stats.Workload_stats.max_demand;
        "16 CPU / 32GB" ];
    ]
