type search_row = {
  policy : string;
  latency_ms : float;
  paths_explored : int;
  undeployed : int;
}

type mechanism_row = {
  config : string;
  undeployed : int;
  migrations : int;
  preemptions : int;
}

type weights_row = {
  mode : string;
  undeployed : int;
  priority_undeployed : int;
}

type dimensions_row = {
  dims : string;
  undeployed : int;
  used_machines : int;
  latency_ms : float;
}

let search_optimizations cfg =
  let w = Exp_config.workload cfg in
  List.map
    (fun (il, dl) ->
      let sched = Sched_zoo.aladdin ~il ~dl () in
      let r = Replay.run_workload sched w ~n_machines:cfg.Exp_config.machines in
      let paths =
        match Aladdin.Aladdin_scheduler.last_search_stats () with
        | Some s -> s.Aladdin.Search.paths_explored
        | None -> 0
      in
      {
        policy = r.Replay.scheduler;
        latency_ms = Replay.per_container_ms r;
        paths_explored = paths;
        undeployed = List.length r.Replay.outcome.Scheduler.undeployed;
      })
    [ (false, false); (true, false); (false, true); (true, true) ]

let mechanisms cfg =
  let w =
    Arrival.apply Arrival.Small_anti_affinity_first (Exp_config.workload cfg)
  in
  (* a slightly tighter pool, so the dead-ends the mechanisms exist to
     resolve actually occur *)
  let n_machines = max 4 (cfg.Exp_config.machines * 95 / 100) in
  List.map
    (fun (migration, preemption) ->
      let options =
        {
          Aladdin.Aladdin_scheduler.default_options with
          Aladdin.Aladdin_scheduler.migration;
          preemption;
        }
      in
      let sched = Aladdin.Aladdin_scheduler.make ~options () in
      let r = Replay.run_workload sched w ~n_machines in
      {
        config =
          Printf.sprintf "migration=%b preemption=%b" migration preemption;
        undeployed = List.length r.Replay.outcome.Scheduler.undeployed;
        migrations = r.Replay.outcome.Scheduler.migrations;
        preemptions = r.Replay.outcome.Scheduler.preemptions;
      })
    [ (true, true); (true, false); (false, true); (false, false) ]

let weights cfg =
  let w = Arrival.apply Arrival.Low_priority_first (Exp_config.workload cfg) in
  List.map
    (fun (mode, base) ->
      let sched = Sched_zoo.aladdin ?base () in
      let r = Replay.run_workload sched w ~n_machines:cfg.Exp_config.machines in
      let undeployed = r.Replay.outcome.Scheduler.undeployed in
      {
        mode;
        undeployed = List.length undeployed;
        priority_undeployed =
          List.length
            (List.filter
               (fun (c : Container.t) -> c.Container.priority > 0)
               undeployed);
      })
    [
      ("computed (Eq. 5)", None);
      ("fixed base 16", Some 16);
      ("fixed base 128", Some 128);
    ]

let dimensions cfg =
  List.map
    (fun (dims, cpu_only) ->
      let params =
        {
          (Alibaba.scaled cfg.Exp_config.factor) with
          Alibaba.seed = cfg.Exp_config.seed;
          cpu_only;
        }
      in
      let w = Alibaba.generate params in
      let sched = Sched_zoo.aladdin () in
      let r = Replay.run_workload sched w ~n_machines:cfg.Exp_config.machines in
      {
        dims;
        undeployed = List.length r.Replay.outcome.Scheduler.undeployed;
        used_machines = Cluster.used_machines r.Replay.cluster;
        latency_ms = Replay.per_container_ms r;
      })
    [ ("cpu", true); ("cpu+mem", false) ]

let print cfg =
  Report.section
    (Printf.sprintf "Ablations (scale %.2f)" cfg.Exp_config.factor);
  Report.subsection "search optimizations (quality must be unchanged)";
  Report.table
    ~header:[ "policy"; "ms/container"; "paths explored"; "undeployed" ]
    (List.map
       (fun r ->
         [
           r.policy;
           Printf.sprintf "%.3f" r.latency_ms;
           string_of_int r.paths_explored;
           string_of_int r.undeployed;
         ])
       (search_optimizations cfg));
  Report.subsection "flow-increasing mechanisms (CSA order)";
  Report.table
    ~header:[ "config"; "undeployed"; "migrations"; "preemptions" ]
    (List.map
       (fun r ->
         [
           r.config;
           string_of_int r.undeployed;
           string_of_int r.migrations;
           string_of_int r.preemptions;
         ])
       (mechanisms cfg));
  Report.subsection "priority weights (CLP order)";
  Report.table
    ~header:[ "weights"; "undeployed"; "of which priority > 0" ]
    (List.map
       (fun r ->
         [
           r.mode;
           string_of_int r.undeployed;
           string_of_int r.priority_undeployed;
         ])
       (weights cfg));
  Report.subsection "resource dimensions (multidimensional capacity)";
  Report.table
    ~header:[ "dims"; "undeployed"; "used machines"; "ms/container" ]
    (List.map
       (fun r ->
         [
           r.dims;
           string_of_int r.undeployed;
           string_of_int r.used_machines;
           Printf.sprintf "%.3f" r.latency_ms;
         ])
       (dimensions cfg))
