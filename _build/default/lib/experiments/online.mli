(** Arrival granularity: the paper schedules the whole submission at once
    ("massive LLAs arrive simultaneously"); production systems see waves.
    This experiment replays the same workload all-at-once, in waves, and
    one container at a time, and compares quality and latency. *)

type row = {
  mode : string;
  undeployed : int;
  used_machines : int;
  latency_ms : float;
  migrations : int;
}

val run : Exp_config.t -> row list
val print : Exp_config.t -> unit
