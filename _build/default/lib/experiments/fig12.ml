type point = {
  machines : int;
  containers : int;
  latency_ms : (string * float) list;
}

let sizes cfg =
  List.sort_uniq Int.compare
    (List.map
       (fun n -> Exp_config.scale_machines cfg n)
       [ 1_000; 2_000; 4_000; 6_000; 8_000; 10_000 ])

let schedulers () =
  [
    Sched_zoo.gokube ();
    Sched_zoo.firmament Cost_model.Quincy ~reschd:8;
    Sched_zoo.medea ~a:1. ~b:1. ~c:0.;
    Sched_zoo.aladdin ~il:false ~dl:false ();
    Sched_zoo.aladdin ~il:true ~dl:false ();
    Sched_zoo.aladdin ~il:true ~dl:true ();
  ]

let workload_for cfg ~machines =
  (* Keep the paper's container:machine ratio of 10:1. *)
  let factor = float_of_int machines /. 10_000. in
  let params = { (Alibaba.scaled factor) with Alibaba.seed = cfg.Exp_config.seed } in
  Alibaba.generate params

let run cfg =
  List.map
    (fun machines ->
      let w = workload_for cfg ~machines in
      let latency_ms =
        List.map
          (fun sched ->
            let r = Replay.run_workload sched w ~n_machines:machines in
            (r.Replay.scheduler, Replay.per_container_ms r))
          (schedulers ())
      in
      { machines; containers = Workload.n_containers w; latency_ms })
    (sizes cfg)

let print cfg =
  let points = run cfg in
  Report.section
    (Printf.sprintf
       "Fig. 12: average placement latency per container (scale %.2f)"
       cfg.Exp_config.factor);
  Report.note
    "paper shape: Firmament lowest and flat; Aladdin policies next \
     (IL+DL about half of plain Aladdin at size); Go-Kube and Medea grow \
     fastest with cluster size@.";
  let names = List.map fst (List.hd points).latency_ms in
  Report.table
    ~header:("machines" :: "containers" :: names)
    (List.map
       (fun p ->
         string_of_int p.machines :: string_of_int p.containers
         :: List.map (fun (_, ms) -> Printf.sprintf "%.3f ms" ms) p.latency_ms)
       points)
