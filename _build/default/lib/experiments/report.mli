(** Plain-text report rendering shared by the experiment drivers: aligned
    ASCII tables and paper-vs-measured annotations. *)

val section : string -> unit
val subsection : string -> unit
val note : ('a, Format.formatter, unit) format -> 'a

val table : header:string list -> string list list -> unit
(** Column-aligned; the header is underlined. Rows may be ragged. *)

val pct : float -> string
val f1 : float -> string
(** One-decimal float. *)

val vs_paper : measured:string -> paper:string -> string
(** ["measured (paper: paper)"]. *)
