let print () =
  Report.section "Table I: schedulers used in the experiments";
  Report.table ~header:[ "Name"; "Description" ]
    (List.map (fun (n, d) -> [ n; d ]) Sched_zoo.descriptions)
