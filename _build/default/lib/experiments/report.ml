let section title =
  let line = String.make (String.length title + 4) '=' in
  Format.printf "@.%s@.= %s =@.%s@." line title line

let subsection title = Format.printf "@.-- %s --@." title

let note fmt = Format.printf fmt

let table ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> width.(i) <- max width.(i) (String.length cell))
        row)
    all;
  let print_row row =
    List.iteri
      (fun i cell -> Format.printf "%-*s  " width.(i) cell)
      row;
    Format.printf "@."
  in
  print_row header;
  print_row
    (List.mapi (fun i _ -> String.make width.(i) '-') header);
  List.iter print_row rows

let pct x = Printf.sprintf "%.1f%%" x
let f1 x = Printf.sprintf "%.1f" x
let vs_paper ~measured ~paper = Printf.sprintf "%s (paper: %s)" measured paper
