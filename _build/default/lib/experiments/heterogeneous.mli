(** The paper's stated future work (§VII): extending the flow-based model
    to heterogeneous machine pools. The workload is placed on a mixed pool
    (16/32/64-CPU machines with the same total capacity as the homogeneous
    baseline) and compared against the homogeneous result. *)

type row = {
  pool : string;
  scheduler : string;
  undeployed : int;
  used_machines : int;
  mean_util_pct : float;
}

val run : Exp_config.t -> row list
val print : Exp_config.t -> unit
