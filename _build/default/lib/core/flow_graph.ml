type t = {
  cluster : Cluster.t;
  batch : Container.t array;
  by_app : (Application.id, int list) Hashtbl.t; (* batch indices, in order *)
  apps : Application.id list;
}

let build cluster batch =
  let by_app = Hashtbl.create 64 in
  Array.iteri
    (fun i (c : Container.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_app c.Container.app) in
      Hashtbl.replace by_app c.Container.app (i :: cur))
    batch;
  let apps =
    Hashtbl.fold (fun app _ acc -> app :: acc) by_app []
    |> List.sort Int.compare
  in
  Hashtbl.iter (fun app l -> Hashtbl.replace by_app app (List.rev l)) by_app;
  { cluster; batch; by_app; apps }

let cluster t = t.cluster
let batch t = t.batch
let app_ids t = t.apps

let container_indices_of_app t app =
  Option.value ~default:[] (Hashtbl.find_opt t.by_app app)

let tiers t =
  let topo = Cluster.topology t.cluster in
  ( Array.length t.batch,
    List.length t.apps,
    Topology.n_groups topo,
    Topology.n_racks topo,
    Topology.n_machines topo )

let n_vertices t =
  let nt, na, ng, nr, nn = tiers t in
  2 + nt + na + ng + nr + nn

let n_edges t =
  let nt, na, ng, nr, nn = tiers t in
  (* s→T, T→A, A→G (full bipartite between tiers), G→R, R→N, N→t *)
  nt + nt + (na * ng) + nr + nn + nn

let naive_edges t =
  let nt, _, _, _, nn = tiers t in
  nt * nn

let to_dot t =
  let buf = Buffer.create 4096 in
  let topo = Cluster.topology t.cluster in
  Buffer.add_string buf "digraph aladdin {\n  rankdir=LR;\n  s [shape=circle];\n  t [shape=circle];\n";
  List.iter
    (fun app ->
      let n = List.length (container_indices_of_app t app) in
      Buffer.add_string buf
        (Printf.sprintf
           "  A%d [shape=box,label=\"A%d (%d ctrs)\"];\n  s -> A%d [label=\"%d\"];\n"
           app app n app n))
    t.apps;
  for k = 0 to Topology.n_groups topo - 1 do
    Buffer.add_string buf (Printf.sprintf "  G%d [shape=diamond];\n" k);
    List.iter
      (fun app -> Buffer.add_string buf (Printf.sprintf "  A%d -> G%d;\n" app k))
      t.apps;
    List.iter
      (fun r ->
        Buffer.add_string buf (Printf.sprintf "  R%d [shape=diamond];\n" r);
        Buffer.add_string buf (Printf.sprintf "  G%d -> R%d;\n" k r);
        List.iter
          (fun m ->
            let free =
              Resource.to_string (Machine.free (Cluster.machine t.cluster m))
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "  N%d [shape=box,style=rounded];\n  R%d -> N%d;\n  N%d -> t [label=\"%s\"];\n"
                 m r m m free))
          (Topology.machines_of_rack topo r))
      (Topology.racks_of_group topo k)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let scalar_projection ?(dim = Resource.cpu_dim) t =
  let nt, na, ng, nr, nn = tiers t in
  let g = Flownet.Graph.create ~arc_hint:(n_edges t) (n_vertices t) in
  let source = 0 and sink = 1 in
  let tv i = 2 + i in
  let av j = 2 + nt + j in
  let gv k = 2 + nt + na + k in
  let rv x = 2 + nt + na + ng + x in
  let nv y = 2 + nt + na + ng + nr + y in
  let app_slot = Hashtbl.create na in
  List.iteri (fun j app -> Hashtbl.replace app_slot app j) t.apps;
  let units (r : Resource.t) = (Resource.to_array r).(dim) in
  let topo = Cluster.topology t.cluster in
  let inf =
    (* effectively infinite inner capacity: total batch demand *)
    Array.fold_left
      (fun acc (c : Container.t) -> acc + units c.Container.demand)
      1 t.batch
  in
  Array.iteri
    (fun i (c : Container.t) ->
      let j = Hashtbl.find app_slot c.Container.app in
      ignore
        (Flownet.Graph.add_arc g ~src:source ~dst:(tv i)
           ~cap:(units c.Container.demand) ~cost:0);
      ignore (Flownet.Graph.add_arc g ~src:(tv i) ~dst:(av j) ~cap:inf ~cost:0))
    t.batch;
  List.iteri
    (fun j _ ->
      for k = 0 to ng - 1 do
        ignore (Flownet.Graph.add_arc g ~src:(av j) ~dst:(gv k) ~cap:inf ~cost:0)
      done)
    t.apps;
  for x = 0 to nr - 1 do
    let k = Topology.group_of_rack topo x in
    ignore (Flownet.Graph.add_arc g ~src:(gv k) ~dst:(rv x) ~cap:inf ~cost:0)
  done;
  for y = 0 to nn - 1 do
    let x = Topology.rack_of topo y in
    ignore (Flownet.Graph.add_arc g ~src:(rv x) ~dst:(nv y) ~cap:inf ~cost:0);
    let free = units (Machine.free (Cluster.machine t.cluster y)) in
    ignore (Flownet.Graph.add_arc g ~src:(nv y) ~dst:sink ~cap:free ~cost:0)
  done;
  (g, source, sink)
