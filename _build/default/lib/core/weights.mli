(** Priority weights (Eq. 3–5).

    Containers are partitioned into priority classes (Eq. 3); the lowest
    class gets weight 1 (Eq. 4) and each higher class a weight large enough
    that the weighted flow of any of its containers exceeds the weighted
    flow of any lower-class container (Eq. 5) — this is what makes the
    maximum of Σ w·f(i,j) preemption-safe for high priorities.

    Flow magnitude of a container is its dominant resource share on the
    machine shape, in integer per-mille units. *)

type t

val compute : Container.t array -> capacity:Resource.t -> t
(** Derive the smallest power-of-two weights satisfying Eq. 5 from the
    actual demand spread of each class present in the batch. *)

val fixed : base:int -> Container.t array -> capacity:Resource.t -> t
(** The evaluation's Aladdin(16/32/64/128) mode: class k gets [base^k].
    @raise Invalid_argument if [base < 2]. *)

val weight : t -> priority:int -> int
(** Weight of a priority class (classes absent from the batch get the
    weight of the nearest lower class). *)

val magnitude : t -> Container.t -> int
(** Flow magnitude of a container (per-mille dominant share), ≥ 1. *)

val weighted_magnitude : t -> Container.t -> int
(** [weight * magnitude] — the augmentation-ordering key of Eq. 9. *)

val satisfies_eq5 : t -> Container.t array -> bool
(** Check the guarantee: for any pair with [priority a > priority b],
    weighted magnitude of [a] exceeds that of [b] (property tests). *)
