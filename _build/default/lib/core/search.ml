type stats = {
  mutable paths_explored : int;
  mutable il_skips : int;
  mutable dl_cuts : int;
}

type t = {
  il : bool;
  dl : bool;
  cluster : Cluster.t;
  n_machines : int;
  stats : stats;
  (* Packing preference: machines that host containers, in the order they
     were first used, then untouched machines in id order. *)
  active : int array;            (* machine ids, prefix [0, n_active) *)
  mutable n_active : int;
  is_active : bool array;
  mutable cursor : int;          (* first id that may still be inactive *)
  (* Machines proven unable to host even the smallest batch demand are
     parked out of the scan until a migration/preemption frees space. *)
  min_demand : Resource.t;
  mutable parked : int list;
  (* IL caches. The pair cache is a bitmap over (batch app slot, machine):
     one bit per admissibility failure, so consulting it costs less than
     re-running the capacity function. *)
  app_slot : (Application.id, int) Hashtbl.t;
  n_app_slots : int;
  failed_pair : Bytes.t;
  failed_app : Bytes.t;
}

let min_demand_of batch ~dims =
  let mins = Array.make dims max_int in
  Array.iter
    (fun (c : Container.t) ->
      let d = Resource.to_array c.Container.demand in
      Array.iteri (fun i x -> if x < mins.(i) then mins.(i) <- x) d)
    batch;
  Array.iteri (fun i x -> if x = max_int then mins.(i) <- 0) mins;
  Resource.of_array mins

(* A machine on which even the pointwise-minimal batch demand fails in some
   dimension can host no batch container at all. *)
let machine_dead t m = not (Machine.fits m t.min_demand)

let create ?(il = true) ?(dl = true) fg =
  let cluster = Flow_graph.cluster fg in
  let n = Cluster.n_machines cluster in
  let batch = Flow_graph.batch fg in
  let apps = Flow_graph.app_ids fg in
  let app_slot = Hashtbl.create (List.length apps) in
  List.iteri (fun i app -> Hashtbl.replace app_slot app i) apps;
  let n_app_slots = max 1 (List.length apps) in
  let dims =
    Resource.dims (Topology.capacity (Cluster.topology cluster) 0)
  in
  let t =
    {
      il;
      dl;
      cluster;
      n_machines = n;
      stats = { paths_explored = 0; il_skips = 0; dl_cuts = 0 };
      active = Array.make n 0;
      n_active = 0;
      is_active = Array.make n false;
      cursor = 0;
      min_demand = min_demand_of batch ~dims;
      parked = [];
      app_slot;
      n_app_slots;
      failed_pair =
        (if il then Bytes.make (((n_app_slots * n) + 7) / 8) '\000'
         else Bytes.empty);
      failed_app =
        (if il then Bytes.make ((n_app_slots + 7) / 8) '\000' else Bytes.empty);
    }
  in
  (* Machines used by earlier batches are already active. *)
  Array.iter
    (fun m ->
      if Machine.is_used m then begin
        let id = Machine.id m in
        t.active.(t.n_active) <- id;
        t.n_active <- t.n_active + 1;
        t.is_active.(id) <- true
      end)
    (Cluster.machines cluster);
  t

let il_enabled t = t.il
let dl_enabled t = t.dl
let stats t = t.stats

let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let slot_of t app = Hashtbl.find_opt t.app_slot app

let note_placement t mid =
  if not t.is_active.(mid) then begin
    t.active.(t.n_active) <- mid;
    t.n_active <- t.n_active + 1;
    t.is_active.(mid) <- true
  end

let invalidate t =
  if t.il then begin
    Bytes.fill t.failed_pair 0 (Bytes.length t.failed_pair) '\000';
    Bytes.fill t.failed_app 0 (Bytes.length t.failed_app) '\000'
  end;
  (* Freed resources can revive parked machines. *)
  List.iter
    (fun mid ->
      t.active.(t.n_active) <- mid;
      t.n_active <- t.n_active + 1)
    t.parked;
  t.parked <- []

let find_machine t (c : Container.t) =
  let slot = if t.il then slot_of t c.Container.app else None in
  let app_failed =
    match slot with Some s -> bit_get t.failed_app s | None -> false
  in
  if app_failed then begin
    t.stats.il_skips <- t.stats.il_skips + 1;
    None
  end
  else begin
    let n = t.n_machines in
    let best = ref None in
    let stop = ref false in
    let scanned = ref 0 in
    let check mid =
      let skip =
        match slot with
        | Some s -> bit_get t.failed_pair ((s * n) + mid)
        | None -> false
      in
      if skip then t.stats.il_skips <- t.stats.il_skips + 1
      else begin
        incr scanned;
        t.stats.paths_explored <- t.stats.paths_explored + 1;
        match Cluster.admissible t.cluster c mid with
        | Ok () ->
            if !best = None then best := Some mid;
            (* Depth limiting: T_i's flow is capped by its demand, so no
               further path can increase it — stop searching. *)
            if t.dl then stop := true
        | Error _ -> (
            match slot with
            | Some s -> bit_set t.failed_pair ((s * n) + mid)
            | None -> ())
      end
    in
    (* Tier 1: active machines, parking the ones that can no longer host
       anything from this batch. *)
    let i = ref 0 in
    while (not !stop) && !i < t.n_active do
      let mid = t.active.(!i) in
      if machine_dead t (Cluster.machine t.cluster mid) then begin
        (* order-preserving removal, so every policy scans survivors in
           the same preference order (keeps IL/DL placement-neutral);
           is_active stays set so the cursor tier skips it too *)
        Array.blit t.active (!i + 1) t.active !i (t.n_active - !i - 1);
        t.n_active <- t.n_active - 1;
        t.parked <- mid :: t.parked
      end
      else begin
        check mid;
        incr i
      end
    done;
    (* Tier 2: untouched machines in id order. *)
    while t.cursor < n && t.is_active.(t.cursor) do
      t.cursor <- t.cursor + 1
    done;
    let id = ref t.cursor in
    while (not !stop) && !id < n do
      if not t.is_active.(!id) then check !id;
      incr id
    done;
    if !stop then t.stats.dl_cuts <- t.stats.dl_cuts + (n - !scanned);
    if !best = None then begin
      match slot with Some s -> bit_set t.failed_app s | None -> ()
    end;
    !best
  end
