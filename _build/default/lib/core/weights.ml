type t = {
  capacity : Resource.t;
  table : (int * int) list;  (* (priority class, weight), ascending *)
}

let magnitude_of capacity (c : Container.t) =
  let share =
    Resource.dominant_share ~demand:c.Container.demand ~capacity
  in
  max 1 (int_of_float (Float.round (share *. 1000.)))

(* Per-class (min, max) magnitudes of the containers present. *)
let class_spread containers ~capacity =
  let spread = Hashtbl.create 8 in
  Array.iter
    (fun (c : Container.t) ->
      let m = magnitude_of capacity c in
      let p = c.Container.priority in
      match Hashtbl.find_opt spread p with
      | None -> Hashtbl.replace spread p (m, m)
      | Some (lo, hi) -> Hashtbl.replace spread p (min lo m, max hi m))
    containers;
  Hashtbl.fold (fun p mm acc -> (p, mm) :: acc) spread []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let next_pow2 x =
  let rec go p = if p >= x then p else go (2 * p) in
  go 1

let compute containers ~capacity =
  let spread = class_spread containers ~capacity in
  let table =
    match spread with
    | [] -> [ (0, 1) ]
    | (p0, _) :: rest ->
        let rec build acc w_prev (max_prev : int) = function
          | [] -> List.rev acc
          | (p, (lo, hi)) :: tl ->
              (* Eq. 5: w_k * lo must exceed w_prev * max_prev. *)
              let needed = ((w_prev * max_prev) / lo) + 1 in
              let w = next_pow2 (max needed (2 * w_prev)) in
              build ((p, w) :: acc) w hi tl
        in
        let max0 = snd (List.assoc p0 spread) in
        build [ (p0, 1) ] 1 max0 rest
  in
  { capacity; table }

let fixed ~base containers ~capacity =
  if base < 2 then invalid_arg "Weights.fixed: base must be >= 2";
  let classes =
    Array.fold_left
      (fun acc (c : Container.t) ->
        if List.mem c.Container.priority acc then acc
        else c.Container.priority :: acc)
      [] containers
    |> List.sort Int.compare
  in
  let classes = if classes = [] then [ 0 ] else classes in
  let table =
    List.mapi
      (fun k p ->
        let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
        (p, pow base k))
      classes
  in
  { capacity; table }

let weight t ~priority =
  (* Nearest class at or below; below the lowest class, weight 1. *)
  let rec go last = function
    | [] -> last
    | (p, w) :: tl -> if p <= priority then go w tl else last
  in
  go 1 t.table

let magnitude t c = magnitude_of t.capacity c
let weighted_magnitude t c = weight t ~priority:c.Container.priority * magnitude t c

let satisfies_eq5 t containers =
  let ok = ref true in
  Array.iter
    (fun (a : Container.t) ->
      Array.iter
        (fun (b : Container.t) ->
          if
            a.Container.priority > b.Container.priority
            && weighted_magnitude t a <= weighted_magnitude t b
          then ok := false)
        containers)
    containers;
  !ok
