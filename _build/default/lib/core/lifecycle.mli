(** LLA life-cycle operations on a live cluster: the scale-out bursts of
    §I (11.11 / Black Friday), scale-in, machine failure and recovery (the
    reliability scenario §II.A's anti-affinity exists for), and rolling
    restarts. All operations go through the scheduler, so constraints hold
    throughout. *)

val scale_out :
  ?scheduler:Scheduler.t ->
  Cluster.t ->
  app:Application.t ->
  replicas:int ->
  first_id:Container.id ->
  Scheduler.outcome
(** Add [replicas] containers to an application already known to the
    cluster's constraint set. @raise Invalid_argument for an unknown app
    or non-positive replica count. *)

val scale_in : Cluster.t -> app:Application.id -> replicas:int -> Container.id list
(** Remove up to [replicas] of the app's containers (highest ids first);
    returns the removed ids. *)

val running : Cluster.t -> app:Application.id -> Container.t list
(** The app's deployed containers. *)

type failure_report = {
  failed_machine : Machine.id;
  displaced : Container.t list;
  recovered : (Container.id * Machine.id) list;
  lost : Container.t list;  (** could not be re-placed *)
  migrations : int;
}

val fail_machine :
  ?scheduler:Scheduler.t -> Cluster.t -> Machine.id -> failure_report
(** Take the machine offline, drain it and re-schedule the displaced
    containers elsewhere. *)

val recover_machine : Cluster.t -> Machine.id -> unit
(** Bring a failed machine back online (empty). *)

type restart_report = {
  restarted : (Container.id * Machine.id * Machine.id) list;
      (** container, old machine, new machine (possibly equal) *)
  stuck : Container.id list;
      (** containers that could not be restarted without a violation *)
}

val rolling_restart :
  ?scheduler:Scheduler.t -> Cluster.t -> app:Application.id -> restart_report
(** Restart an app one container at a time: each container is removed and
    re-scheduled before the next one moves — capacity never drops by more
    than one replica (the in-place analogue of a rolling update). *)
