lib/core/flow_graph.ml: Application Array Buffer Cluster Container Flownet Hashtbl Int List Machine Option Printf Resource Topology
