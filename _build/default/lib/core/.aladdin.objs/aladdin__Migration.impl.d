lib/core/migration.ml: Bool Cluster Constraint_set Container Int List Machine Resource Weights
