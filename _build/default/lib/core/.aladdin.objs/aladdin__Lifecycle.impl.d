lib/core/lifecycle.ml: Aladdin_scheduler Application Array Cluster Constraint_set Container Int List Machine Scheduler
