lib/core/weights.ml: Array Container Float Hashtbl Int List Resource
