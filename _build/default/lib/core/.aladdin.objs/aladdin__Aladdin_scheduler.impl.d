lib/core/aladdin_scheduler.ml: Array Cluster Container Flow_graph Hashtbl Int List Migration Option Printf Queue Scheduler Search Topology Weights
