lib/core/short_lived.ml: Cluster Container Des List Machine Option Queue Resource Scheduler
