lib/core/aladdin_scheduler.mli: Scheduler Search
