lib/core/lifecycle.mli: Application Cluster Container Machine Scheduler
