lib/core/short_lived.mli: Application Cluster Container Resource Scheduler
