lib/core/flow_graph.mli: Application Cluster Container Flownet
