lib/core/search.mli: Container Flow_graph Machine
