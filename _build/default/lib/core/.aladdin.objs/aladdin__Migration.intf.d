lib/core/migration.mli: Cluster Container Machine Weights
