lib/core/weights.mli: Container Resource
