lib/core/search.ml: Application Array Bytes Char Cluster Container Flow_graph Hashtbl List Machine Resource Topology
