(** Short-lived (batch) tasks next to long-lived applications (§IV.D):
    "Aladdin also uses a traditional task-based scheduler for short-lived
    containers."

    Tasks are queued FIFO and placed best-effort with backfill — a task
    deeper in the queue may start when the head does not fit yet — while
    LLA batches arrive through the normal Aladdin scheduler on the same
    cluster. Tasks occupy capacity only for their duration; completions
    free it through the event loop. *)

type task = {
  task_id : int;
  demand : Resource.t;
  duration : float;   (** seconds of virtual time *)
  arrival : float;    (** virtual submission time *)
}

val make_task :
  task_id:int -> demand:Resource.t -> duration:float -> arrival:float -> task
(** @raise Invalid_argument on non-positive duration or negative arrival. *)

type stats = {
  completed : int;
  expired : int;          (** tasks dropped after exceeding the queue bound *)
  mean_wait : float;      (** queueing delay, virtual seconds *)
  mean_turnaround : float;
  peak_queue : int;
  lla_outcome : Scheduler.outcome;  (** merged over all LLA batches *)
}

val run :
  ?backfill:bool ->
  ?max_queue:int ->
  cluster:Cluster.t ->
  task_app:Application.id ->
  lla_scheduler:Scheduler.t ->
  lla_batches:(float * Container.t array) list ->
  task list ->
  stats
(** Run the mixed workload to completion. [task_app] is the application id
    tasks are accounted under (it must exist in the cluster's constraint
    set, typically a constraint-free "batch" app). [backfill] defaults to
    true; [max_queue] bounds the pending queue (default: unbounded). *)
