let default_scheduler () = Aladdin_scheduler.make ()

let scale_out ?scheduler cluster ~app ~replicas ~first_id =
  if replicas <= 0 then invalid_arg "Lifecycle.scale_out: replicas";
  (* the app must be part of the cluster's constraint universe *)
  let (_ : Application.t) =
    Constraint_set.app (Cluster.constraints cluster) app.Application.id
  in
  let scheduler =
    match scheduler with Some s -> s | None -> default_scheduler ()
  in
  let batch =
    Array.init replicas (fun i ->
        Container.make ~id:(first_id + i) ~app:app.Application.id
          ~demand:app.Application.demand ~priority:app.Application.priority
          ~arrival:i)
  in
  scheduler.Scheduler.schedule cluster batch

let running cluster ~app =
  Array.to_list (Cluster.machines cluster)
  |> List.concat_map Machine.containers
  |> List.filter (fun (c : Container.t) -> c.Container.app = app)

let scale_in cluster ~app ~replicas =
  if replicas <= 0 then invalid_arg "Lifecycle.scale_in: replicas";
  let victims =
    running cluster ~app
    |> List.sort (fun (a : Container.t) (b : Container.t) ->
           Int.compare b.Container.id a.Container.id)
    |> List.filteri (fun i _ -> i < replicas)
  in
  List.iter (fun (c : Container.t) -> Cluster.remove cluster c.Container.id) victims;
  List.map (fun (c : Container.t) -> c.Container.id) victims

type failure_report = {
  failed_machine : Machine.id;
  displaced : Container.t list;
  recovered : (Container.id * Machine.id) list;
  lost : Container.t list;
  migrations : int;
}

let fail_machine ?scheduler cluster mid =
  let scheduler =
    match scheduler with Some s -> s | None -> default_scheduler ()
  in
  Cluster.set_offline cluster mid true;
  let displaced = Cluster.drain cluster mid in
  let outcome =
    scheduler.Scheduler.schedule cluster (Array.of_list displaced)
  in
  {
    failed_machine = mid;
    displaced;
    recovered = outcome.Scheduler.placed;
    lost = outcome.Scheduler.undeployed;
    migrations = outcome.Scheduler.migrations;
  }

let recover_machine cluster mid = Cluster.set_offline cluster mid false

type restart_report = {
  restarted : (Container.id * Machine.id * Machine.id) list;
  stuck : Container.id list;
}

let rolling_restart ?scheduler cluster ~app =
  let scheduler =
    match scheduler with Some s -> s | None -> default_scheduler ()
  in
  let members =
    running cluster ~app
    |> List.sort (fun (a : Container.t) (b : Container.t) ->
           Int.compare a.Container.id b.Container.id)
  in
  let restarted = ref [] in
  let stuck = ref [] in
  List.iter
    (fun (c : Container.t) ->
      match Cluster.machine_of cluster c.Container.id with
      | None -> ()
      | Some old_machine -> (
          Cluster.remove cluster c.Container.id;
          let o = scheduler.Scheduler.schedule cluster [| c |] in
          match o.Scheduler.placed with
          | [ (cid, new_machine) ] when cid = c.Container.id ->
              restarted := (cid, old_machine, new_machine) :: !restarted
          | _ ->
              (* could not come back: put it where it was (always fits —
                 the spot was just freed and only this container moved) *)
              (match Cluster.place cluster c old_machine with
              | Ok () -> ()
              | Error _ -> ());
              stuck := c.Container.id :: !stuck))
    members;
  { restarted = List.rev !restarted; stuck = List.rev !stuck }
