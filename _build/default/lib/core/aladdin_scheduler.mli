(** The Aladdin scheduler (Algorithm 1): weighted-priority augmentation
    order over the tiered flow network, the multidimensional nonlinear
    capacity function, and the migration / preemption mechanisms.

    Aladdin never tolerates a constraint violation: a container is either
    placed on a machine that fully admits it, or reported undeployed. *)

type options = {
  il : bool;  (** isomorphism limiting (§IV.A) *)
  dl : bool;  (** depth limiting (§IV.A) *)
  weight_base : int option;
      (** [Some b] = the evaluation's Aladdin(b) fixed weights; [None] =
          weights derived from the batch via Eq. 5 *)
  migration : bool;
  preemption : bool;
  max_moves : int;     (** migration fan-out bound per container *)
  max_requeues : int;  (** re-queue budget for preempted containers *)
  gang : bool;
      (** all-or-nothing per application: if any of an app's batch
          containers cannot deploy, the whole app's batch is rolled back
          (Medea-style container groups) *)
}

val default_options : options
(** Everything on, computed weights, [max_moves = 8], [max_requeues = 4]. *)

val plain : options
(** No IL, no DL — the "Aladdin" policy of Fig. 12. *)

val with_il : options
(** IL only — "Aladdin+IL". *)

val name_of_options : options -> string

val make : ?options:options -> unit -> Scheduler.t
(** A {!Scheduler.t} usable with {!Replay}. Each [schedule] call builds the
    tiered network for the batch, orders containers by weighted magnitude
    (Eq. 9) and augments one impartible container-flow at a time. *)

val last_search_stats : unit -> Search.stats option
(** Stats of the most recent [schedule] call made through {!make} (for the
    overhead experiments); [None] before any call. *)
