(** The tiered Aladdin flow network (Fig. 4):

    {v s → T_i → A_j → G_k → R_x → N_y → t v}

    Application, cluster-group and rack vertices reduce the edge count from
    O(|T|·|N|) to O(|T| + |A|·|G| + |R| + |N|) (§III.A), which is what makes
    sub-second placement feasible at trace scale. The graph is a search
    structure — capacities stay multidimensional and nonlinear (checked
    against the live {!Cluster.t} during search) — but it can be projected
    to a scalar {!Flownet.Graph.t} for analysis. *)

type t

val build : Cluster.t -> Container.t array -> t
(** Tiers for one submission batch against the cluster's topology. *)

val cluster : t -> Cluster.t
val batch : t -> Container.t array

val app_ids : t -> Application.id list
(** Distinct apps present in the batch. *)

val container_indices_of_app : t -> Application.id -> int list
(** Batch indices of an app's containers, in batch order. *)

val n_vertices : t -> int
val n_edges : t -> int
val naive_edges : t -> int
(** |T|·|N| — what a flat bipartite network would cost. *)

val scalar_projection : ?dim:int -> t -> Flownet.Graph.t * int * int
(** CPU-dimension projection as a classic scalar flow network; returns
    [(graph, source, sink)]. Its max flow upper-bounds the total demand any
    schedule can place (used by tests). *)

val to_dot : t -> string
(** Graphviz rendering of the tiered network (containers collapsed into
    their application vertices for readability) — for docs and debugging. *)
