(** Runtime state of one machine: capacity, free resources and the deployed
    container set (the MM-side status of Fig. 2: p_m, d_m, c_m, r_m, g_m). *)

type id = int

type t

val create : id:id -> rack:int -> group:int -> capacity:Resource.t -> t
val id : t -> id
val rack : t -> int
val group : t -> int
val capacity : t -> Resource.t
val free : t -> Resource.t
val used : t -> Resource.t

val fits : t -> Resource.t -> bool
(** Pointwise demand ≤ free. *)

val place : t -> Container.t -> unit
(** @raise Invalid_argument if the demand does not fit. *)

val remove : t -> Container.t -> unit
(** @raise Invalid_argument if the container is not deployed here. *)

val n_containers : t -> int
val is_used : t -> bool
val containers : t -> Container.t list
val hosts : t -> Container.id -> bool
val app_count : t -> Application.id -> int
(** Deployed containers of a given app on this machine. *)

val iter_apps : t -> (Application.id -> int -> unit) -> unit
val utilization : t -> float
val pp : Format.formatter -> t -> unit
