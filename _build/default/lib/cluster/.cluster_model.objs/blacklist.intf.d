lib/cluster/blacklist.mli: Application Constraint_set Machine
