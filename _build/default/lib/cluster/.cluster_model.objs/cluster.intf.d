lib/cluster/cluster.mli: Application Blacklist Constraint_set Container Machine Topology Violation
