lib/cluster/application.mli: Container Format Resource
