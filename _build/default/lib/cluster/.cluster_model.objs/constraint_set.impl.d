lib/cluster/constraint_set.ml: Application Array Hashtbl Int List Option
