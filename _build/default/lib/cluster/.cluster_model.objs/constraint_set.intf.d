lib/cluster/constraint_set.mli: Application
