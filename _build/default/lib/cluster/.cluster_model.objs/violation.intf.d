lib/cluster/violation.mli: Application Container Format Machine
