lib/cluster/blacklist.ml: Application Array Constraint_set Hashtbl Int List Option
