lib/cluster/container.ml: Format Int Resource
