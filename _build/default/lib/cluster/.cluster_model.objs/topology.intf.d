lib/cluster/topology.mli: Format Resource
