lib/cluster/application.ml: Container Format Int List Printf Resource
