lib/cluster/cluster.ml: Application Array Blacklist Constraint_set Container Hashtbl List Machine Option Topology Violation
