lib/cluster/resource.mli: Format
