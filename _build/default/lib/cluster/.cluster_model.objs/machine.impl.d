lib/cluster/machine.ml: Application Container Format Hashtbl Option Resource
