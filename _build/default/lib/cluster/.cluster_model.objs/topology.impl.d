lib/cluster/topology.ml: Array Format List Resource
