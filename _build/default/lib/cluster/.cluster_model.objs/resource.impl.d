lib/cluster/resource.ml: Array Float Format List Printf Stdlib
