lib/cluster/container.mli: Format Resource
