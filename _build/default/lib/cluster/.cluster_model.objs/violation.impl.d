lib/cluster/violation.ml: Application Container Format List Machine
