lib/cluster/machine.mli: Application Container Format Resource
