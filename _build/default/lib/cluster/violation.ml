type t =
  | Anti_affinity of {
      container : Container.id;
      machine : Machine.id;
      against : Application.id;
    }
  | Priority_inversion of {
      container : Container.id;
      displaced_by : Container.id;
    }

let container = function
  | Anti_affinity { container; _ } -> container
  | Priority_inversion { container; _ } -> container

let is_anti_affinity = function Anti_affinity _ -> true | Priority_inversion _ -> false
let is_priority = function Priority_inversion _ -> true | Anti_affinity _ -> false

let count_anti_affinity l =
  List.fold_left (fun n v -> if is_anti_affinity v then n + 1 else n) 0 l

let count_priority l =
  List.fold_left (fun n v -> if is_priority v then n + 1 else n) 0 l

let anti_affinity_ratio l =
  match List.length l with
  | 0 -> 0.
  | n -> float_of_int (count_anti_affinity l) /. float_of_int n

let pp ppf = function
  | Anti_affinity { container; machine; against } ->
      Format.fprintf ppf "anti-affinity: c%d on m%d against app %d" container
        machine against
  | Priority_inversion { container; displaced_by } ->
      Format.fprintf ppf "priority: c%d displaced by c%d" container
        displaced_by
