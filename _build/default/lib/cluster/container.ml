type id = int

type t = {
  id : id;
  app : int;
  demand : Resource.t;
  priority : int;
  arrival : int;
}

let make ~id ~app ~demand ~priority ~arrival =
  if priority < 0 then invalid_arg "Container.make: negative priority";
  { id; app; demand; priority; arrival }

let compare_by_arrival a b = Int.compare a.arrival b.arrival

let pp ppf c =
  Format.fprintf ppf "c%d(app=%d,%a,prio=%d)" c.id c.app Resource.pp c.demand
    c.priority
