(** A long-lived container: one instance of an application, the unit of
    scheduling. Flows are impartible (§IV.D) — a container is placed whole
    or not at all. *)

type id = int

type t = {
  id : id;
  app : int;            (** owning application ({!Application.id}) *)
  demand : Resource.t;  (** resource requirement c_n *)
  priority : int;       (** priority class w_n, 0 = lowest *)
  arrival : int;        (** submission sequence number *)
}

val make :
  id:id -> app:int -> demand:Resource.t -> priority:int -> arrival:int -> t

val compare_by_arrival : t -> t -> int
val pp : Format.formatter -> t -> unit
