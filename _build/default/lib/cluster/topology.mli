(** Physical cluster layout: machines grouped into racks (R vertices) and
    racks into cluster groups (G vertices), matching the Aladdin flow
    network tiers. *)

type t

val homogeneous :
  ?machines_per_rack:int ->
  ?racks_per_group:int ->
  n_machines:int ->
  capacity:Resource.t ->
  unit ->
  t
(** Default 32 machines per rack, 40 racks per group — a 10k-machine cluster
    yields ~313 racks, 8 groups. *)

val heterogeneous :
  ?machines_per_rack:int ->
  ?racks_per_group:int ->
  capacities:Resource.t array ->
  unit ->
  t
(** Per-machine capacities (the paper's future-work extension; also used by
    the Kubernetes adaptor for mixed node pools).
    @raise Invalid_argument on an empty array or mismatched dimensions. *)

val is_homogeneous : t -> bool

val n_machines : t -> int
val n_racks : t -> int
val n_groups : t -> int
val capacity : t -> int -> Resource.t
(** Capacity of machine [i] (homogeneous today, per-machine for ablation). *)

val rack_of : t -> int -> int
val group_of_rack : t -> int -> int
val group_of : t -> int -> int
(** Group of a machine. *)

val machines_of_rack : t -> int -> int list
val racks_of_group : t -> int -> int list
val pp : Format.formatter -> t -> unit
