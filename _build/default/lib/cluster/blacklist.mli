(** The nonlinear half of Aladdin's capacity function (Eq. 7–8).

    For every machine, the set of application ids that may not be added,
    derived incrementally from the deployed set [d] and the anti-affinity
    constraints [p]: placing a container of app A forbids every app
    conflicting with A (including A itself under anti-within). Entries are
    reference-counted so removals restore admissibility exactly. *)

type t

val create : Constraint_set.t -> n_machines:int -> t

val blocked : t -> machine:Machine.id -> app:Application.id -> bool
(** Eq. 8: true when the app is on the machine's blacklist. *)

val on_place : t -> machine:Machine.id -> app:Application.id -> unit
(** Update after deploying a container of [app] on [machine] (Eq. 7). *)

val on_remove : t -> machine:Machine.id -> app:Application.id -> unit
(** Inverse of {!on_place}. @raise Invalid_argument if not balanced. *)

val blocked_apps : t -> machine:Machine.id -> Application.id list
val clear : t -> unit
