type t = {
  apps : Application.t array;
  index : (Application.id, int) Hashtbl.t;   (* app id -> array slot *)
  across : (Application.id, Application.id list) Hashtbl.t; (* symmetric *)
}

let of_apps apps =
  let index = Hashtbl.create (Array.length apps) in
  Array.iteri
    (fun i (a : Application.t) ->
      if Hashtbl.mem index a.Application.id then
        invalid_arg "Constraint_set.of_apps: duplicate app id";
      Hashtbl.replace index a.Application.id i)
    apps;
  let across = Hashtbl.create 64 in
  let add_edge a b =
    let cur = Option.value ~default:[] (Hashtbl.find_opt across a) in
    if not (List.mem b cur) then Hashtbl.replace across a (b :: cur)
  in
  Array.iter
    (fun (a : Application.t) ->
      List.iter
        (fun b ->
          if not (Hashtbl.mem index b) then
            invalid_arg "Constraint_set.of_apps: dangling across reference";
          if b <> a.Application.id then begin
            add_edge a.Application.id b;
            add_edge b a.Application.id
          end)
        a.Application.anti_affinity_across)
    apps;
  { apps; index; across }

let n_apps t = Array.length t.apps

let app t id =
  match Hashtbl.find_opt t.index id with
  | Some i -> t.apps.(i)
  | None -> invalid_arg "Constraint_set.app: unknown id"

let apps t = t.apps
let anti_within t id = (app t id).Application.anti_affinity_within

let across_of t id =
  Option.value ~default:[] (Hashtbl.find_opt t.across id)

let conflict t a b =
  if a = b then anti_within t a else List.mem b (across_of t a)

let conflicting_apps t a =
  let others = across_of t a in
  if anti_within t a then a :: others else others

let priority t id = (app t id).Application.priority

let priority_classes t =
  Array.to_list t.apps
  |> List.map (fun (a : Application.t) -> a.Application.priority)
  |> List.sort_uniq Int.compare

let n_with_anti_affinity t =
  Array.fold_left
    (fun n (a : Application.t) ->
      if Application.has_anti_affinity a || across_of t a.Application.id <> []
      then n + 1
      else n)
    0 t.apps

let n_with_priority t =
  Array.fold_left
    (fun n a -> if Application.has_priority a then n + 1 else n)
    0 t.apps
