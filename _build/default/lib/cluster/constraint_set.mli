(** Placement constraints of a workload, indexed for O(1) conflict queries.

    Anti-affinity is the symmetric relation "may not share a machine":
    within an app (reliability, §II.A) or across two apps (interference).
    The set also records each app's priority class. *)

type t

val of_apps : Application.t array -> t
(** Builds the symmetric closure of all across-app declarations. Unknown
    app ids inside [anti_affinity_across] lists are rejected.
    @raise Invalid_argument on dangling references or duplicate app ids. *)

val n_apps : t -> int
val app : t -> Application.id -> Application.t
val apps : t -> Application.t array

val anti_within : t -> Application.id -> bool

val conflict : t -> Application.id -> Application.id -> bool
(** [conflict t a b] for [a <> b]: the two apps may not colocate.
    [conflict t a a]: containers of [a] may not colocate (anti-within). *)

val conflicting_apps : t -> Application.id -> Application.id list
(** Apps in conflict with [a], including [a] itself when anti-within. *)

val priority : t -> Application.id -> int

val priority_classes : t -> int list
(** Distinct priority classes, ascending. *)

val n_with_anti_affinity : t -> int
val n_with_priority : t -> int
(** Workload statistics (Fig. 8(b)). *)
