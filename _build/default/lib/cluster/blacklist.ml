type t = {
  constraints : Constraint_set.t;
  refcount : (Application.id, int) Hashtbl.t array; (* per machine *)
}

let create constraints ~n_machines =
  if n_machines <= 0 then invalid_arg "Blacklist.create: no machines";
  {
    constraints;
    refcount = Array.init n_machines (fun _ -> Hashtbl.create 4);
  }

let table t machine =
  if machine < 0 || machine >= Array.length t.refcount then
    invalid_arg "Blacklist: machine out of range";
  t.refcount.(machine)

let blocked t ~machine ~app = Hashtbl.mem (table t machine) app

let on_place t ~machine ~app =
  let tbl = table t machine in
  List.iter
    (fun banned ->
      let n = Option.value ~default:0 (Hashtbl.find_opt tbl banned) in
      Hashtbl.replace tbl banned (n + 1))
    (Constraint_set.conflicting_apps t.constraints app)

let on_remove t ~machine ~app =
  let tbl = table t machine in
  List.iter
    (fun banned ->
      match Hashtbl.find_opt tbl banned with
      | Some 1 -> Hashtbl.remove tbl banned
      | Some n when n > 1 -> Hashtbl.replace tbl banned (n - 1)
      | Some _ | None -> invalid_arg "Blacklist.on_remove: unbalanced")
    (Constraint_set.conflicting_apps t.constraints app)

let blocked_apps t ~machine =
  Hashtbl.fold (fun app _ acc -> app :: acc) (table t machine) []
  |> List.sort_uniq Int.compare

let clear t = Array.iter Hashtbl.reset t.refcount
