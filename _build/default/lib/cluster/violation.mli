(** Constraint violations, as counted in the paper's evaluation (Fig. 9).

    Undeployed containers are the placement-quality metric; anti-affinity
    and priority violations happen when a scheduler *tolerates* a bad
    placement (Medea with non-zero tolerance, Firmament rounds that time
    out, …). *)

type t =
  | Anti_affinity of {
      container : Container.id;
      machine : Machine.id;
      against : Application.id;
    }
      (** placed on a machine that hosts a conflicting app *)
  | Priority_inversion of {
      container : Container.id;  (** high-priority container left undeployed *)
      displaced_by : Container.id;  (** lower-priority one that got its spot *)
    }

val container : t -> Container.id
(** The container the violation is about. *)

val is_anti_affinity : t -> bool
val is_priority : t -> bool
val count_anti_affinity : t list -> int
val count_priority : t list -> int

val anti_affinity_ratio : t list -> float
(** Share of anti-affinity violations among all violations (Fig. 9(e));
    0 when the list is empty. *)

val pp : Format.formatter -> t -> unit
