type id = int

type t = {
  id : id;
  rack : int;
  group : int;
  capacity : Resource.t;
  mutable free : Resource.t;
  deployed : (Container.id, Container.t) Hashtbl.t;
  app_counts : (Application.id, int) Hashtbl.t;
}

let create ~id ~rack ~group ~capacity =
  {
    id;
    rack;
    group;
    capacity;
    free = capacity;
    deployed = Hashtbl.create 8;
    app_counts = Hashtbl.create 8;
  }

let id m = m.id
let rack m = m.rack
let group m = m.group
let capacity m = m.capacity
let free m = m.free
let used m = Resource.sub m.capacity m.free
let fits m demand = Resource.fits ~demand ~within:m.free

let place m (c : Container.t) =
  if Hashtbl.mem m.deployed c.Container.id then
    invalid_arg "Machine.place: container already deployed";
  if not (fits m c.Container.demand) then
    invalid_arg "Machine.place: demand exceeds free capacity";
  m.free <- Resource.sub m.free c.Container.demand;
  Hashtbl.replace m.deployed c.Container.id c;
  let app = c.Container.app in
  let n = Option.value ~default:0 (Hashtbl.find_opt m.app_counts app) in
  Hashtbl.replace m.app_counts app (n + 1)

let remove m (c : Container.t) =
  if not (Hashtbl.mem m.deployed c.Container.id) then
    invalid_arg "Machine.remove: container not deployed here";
  Hashtbl.remove m.deployed c.Container.id;
  m.free <- Resource.add m.free c.Container.demand;
  let app = c.Container.app in
  (match Hashtbl.find_opt m.app_counts app with
  | Some 1 -> Hashtbl.remove m.app_counts app
  | Some n -> Hashtbl.replace m.app_counts app (n - 1)
  | None -> assert false)

let n_containers m = Hashtbl.length m.deployed
let is_used m = n_containers m > 0
let containers m = Hashtbl.fold (fun _ c acc -> c :: acc) m.deployed []
let hosts m cid = Hashtbl.mem m.deployed cid
let app_count m app = Option.value ~default:0 (Hashtbl.find_opt m.app_counts app)
let iter_apps m f = Hashtbl.iter f m.app_counts
let utilization m = Resource.utilization ~used:(used m) ~capacity:m.capacity

let pp ppf m =
  Format.fprintf ppf "m%d(rack=%d,%d ctrs,free=%a)" m.id m.rack
    (n_containers m) Resource.pp m.free
