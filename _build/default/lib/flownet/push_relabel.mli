(** Goldberg–Tarjan push–relabel maximum flow with the highest-label rule
    and gap relabeling, O(V²·√E). The fastest solver in this library for
    dense networks; property-tested against {!Dinic} and {!Maxflow}. *)

val run : Graph.t -> src:int -> dst:int -> int
(** Returns the max flow; flows are recorded in the graph. The recorded
    assignment is a valid flow (conservation holds at every vertex except
    source and sink). *)
