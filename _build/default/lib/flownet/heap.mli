(** Binary min-heap over [(key : int, value : int)] pairs, used by the
    Dijkstra-with-potentials solver. Keys are priorities; smaller pops first. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val size : t -> int
val push : t -> key:int -> value:int -> unit
val pop_min : t -> (int * int) option
(** Pops the pair with the smallest key, as [(key, value)]. *)

val clear : t -> unit
