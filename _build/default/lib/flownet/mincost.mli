(** Minimum-cost maximum flow by successive shortest paths.

    The first shortest-path pass uses {!Spfa} (arc costs may be negative);
    later passes use {!Dijkstra} with Johnson potentials. This is the solver
    behind the Firmament baseline. *)

type stats = {
  flow : int;        (** total units pushed *)
  cost : int;        (** total cost of the flow *)
  iterations : int;  (** augmenting paths used *)
}

val run : ?max_flow:int -> Graph.t -> src:int -> dst:int -> stats
(** Push up to [max_flow] units (default: unbounded) at minimum total cost.
    Flows are recorded in the graph. *)
