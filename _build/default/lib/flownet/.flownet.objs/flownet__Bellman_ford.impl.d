lib/flownet/bellman_ford.ml: Array Graph
