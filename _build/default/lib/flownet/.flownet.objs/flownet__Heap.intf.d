lib/flownet/heap.mli:
