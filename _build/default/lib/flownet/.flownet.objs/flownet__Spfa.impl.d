lib/flownet/spfa.ml: Array Graph Path Queue
