lib/flownet/maxflow.mli: Graph Path
