lib/flownet/graph.mli: Format
