lib/flownet/dinic.mli: Graph
