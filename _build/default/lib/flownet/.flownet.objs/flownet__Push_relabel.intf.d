lib/flownet/push_relabel.mli: Graph
