lib/flownet/mdim.ml: Array Format Printf String
