lib/flownet/dinic.ml: Array Graph List Queue
