lib/flownet/mincost.mli: Graph
