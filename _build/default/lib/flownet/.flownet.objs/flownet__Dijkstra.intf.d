lib/flownet/dijkstra.mli: Graph
