lib/flownet/path.mli: Graph
