lib/flownet/heap.ml: Array
