lib/flownet/cost_scaling.ml: Array Dinic Graph Mincost Queue
