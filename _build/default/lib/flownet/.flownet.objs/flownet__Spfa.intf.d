lib/flownet/spfa.mli: Graph Path
