lib/flownet/mdim.mli: Format
