lib/flownet/dijkstra.ml: Array Graph Heap
