lib/flownet/maxflow.ml: Array Graph Path Queue
