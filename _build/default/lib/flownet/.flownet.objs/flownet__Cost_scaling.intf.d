lib/flownet/cost_scaling.mli: Graph Mincost
