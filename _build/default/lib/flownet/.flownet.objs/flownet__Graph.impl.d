lib/flownet/graph.ml: Array Format
