lib/flownet/push_relabel.ml: Array Graph
