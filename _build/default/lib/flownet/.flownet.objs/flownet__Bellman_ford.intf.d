lib/flownet/bellman_ford.mli: Graph
