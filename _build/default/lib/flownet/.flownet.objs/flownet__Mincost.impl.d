lib/flownet/mincost.ml: Array Dijkstra Graph Path Spfa
