lib/flownet/path.ml: Array Graph List
