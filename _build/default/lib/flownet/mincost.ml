type stats = { flow : int; cost : int; iterations : int }

let run ?(max_flow = max_int) g ~src ~dst =
  let n = Graph.n_vertices g in
  let potential = Array.make n 0 in
  (* Initial potentials via SPFA, valid with negative arc costs. *)
  let first = Spfa.run g ~src in
  Array.blit first.Spfa.dist 0 potential 0 n;
  (* Unreachable vertices keep potential 0; they are never on a path. *)
  for v = 0 to n - 1 do
    if potential.(v) = max_int then potential.(v) <- 0
  done;
  let total_flow = ref 0 in
  let total_cost = ref 0 in
  let iterations = ref 0 in
  let continue = ref (first.Spfa.dist.(dst) <> max_int && max_flow > 0) in
  (* The first augmentation reuses the SPFA tree directly. *)
  let parent0 = first.Spfa.parent in
  (if !continue then
     match Path.of_parents g ~parent:parent0 ~src ~dst with
     | None -> continue := false
     | Some p ->
         let d = min p.Path.bottleneck (max_flow - !total_flow) in
         Path.augment g p d;
         total_flow := !total_flow + d;
         total_cost := !total_cost + (d * Path.cost g p);
         incr iterations);
  while !continue && !total_flow < max_flow do
    let { Dijkstra.dist; parent } = Dijkstra.run g ~src ~potential in
    if dist.(dst) = max_int then continue := false
    else begin
      for v = 0 to n - 1 do
        if dist.(v) <> max_int then potential.(v) <- potential.(v) + dist.(v)
      done;
      match Path.of_parents g ~parent ~src ~dst with
      | None -> continue := false
      | Some p ->
          let d = min p.Path.bottleneck (max_flow - !total_flow) in
          Path.augment g p d;
          total_flow := !total_flow + d;
          total_cost := !total_cost + (d * Path.cost g p);
          incr iterations
    end
  done;
  { flow = !total_flow; cost = !total_cost; iterations = !iterations }
