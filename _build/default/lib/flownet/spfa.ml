type result = { dist : int array; parent : int array }

let run ?(admit = fun _ -> true) g ~src =
  let n = Graph.n_vertices g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let in_queue = Array.make n false in
  let relaxations = Array.make n 0 in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  in_queue.(src) <- true;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    in_queue.(u) <- false;
    let du = dist.(u) in
    Graph.iter_out g u (fun a ->
        if Graph.residual g a > 0 && admit a then begin
          let v = Graph.dst g a in
          let nd = du + Graph.cost g a in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            parent.(v) <- a;
            if not in_queue.(v) then begin
              relaxations.(v) <- relaxations.(v) + 1;
              if relaxations.(v) > n then failwith "Spfa.run: negative cycle";
              Queue.push v q;
              in_queue.(v) <- true
            end
          end
        end)
  done;
  { dist; parent }

let shortest_path ?admit g ~src ~dst =
  let { parent; dist } = run ?admit g ~src in
  if dist.(dst) = max_int then None else Path.of_parents g ~parent ~src ~dst
