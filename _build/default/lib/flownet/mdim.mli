(** Multidimensional, optionally nonlinear capacities (paper §III.C).

    A classic flow capacity is a scalar; Quincy/Firmament generalise to a
    linear N-tuple. Aladdin further attaches an admission predicate to the
    tuple — the "nonlinear set-based function" — so that a capacity can
    reject a flow for reasons other than magnitude (anti-affinity
    blacklists). *)

type vec = int array
(** Non-negative integer demand / supply vector; dimensions must agree. *)

type t = {
  supply : vec;
  admit : int -> bool;
      (** [admit subject] decides whether the flow identified by [subject]
          may use this capacity at all (Eq. 8). *)
}

val linear : vec -> t
(** A classic N-tuple capacity that admits everything. *)

val nonlinear : vec -> admit:(int -> bool) -> t

val dims : vec -> int

val zero : int -> vec

val add : vec -> vec -> vec
val sub : vec -> vec -> vec
(** @raise Invalid_argument on dimension mismatch or negative result. *)

val sub_clamped : vec -> vec -> vec
(** Like {!sub} but clamps each dimension at 0. *)

val leq : vec -> vec -> bool
(** Pointwise ≤ — the paper's extended order on N-tuples (Eq. 6). *)

val fits : t -> subject:int -> demand:vec -> bool
(** Eq. 6 + Eq. 8 combined: demand ≤ supply pointwise and the subject is
    admitted. *)

val consume : t -> vec -> t
(** Capacity left after routing a demand through it. @raise
    Invalid_argument if the demand does not fit pointwise. *)

val scale : int -> vec -> vec
val equal : vec -> vec -> bool
val pp_vec : Format.formatter -> vec -> unit
