type result = { dist : int array; parent : int array }

let run g ~src ~potential =
  let n = Graph.n_vertices g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create ~capacity:(n + 1) () in
  dist.(src) <- 0;
  Heap.push heap ~key:0 ~value:src;
  let continue = ref true in
  while !continue do
    match Heap.pop_min heap with
    | None -> continue := false
    | Some (d, u) ->
        if not settled.(u) && d = dist.(u) then begin
          settled.(u) <- true;
          Graph.iter_out g u (fun a ->
              if Graph.residual g a > 0 then begin
                let v = Graph.dst g a in
                if not settled.(v) then begin
                  let rc =
                    Graph.cost g a + potential.(u) - potential.(v)
                  in
                  if rc < 0 then
                    invalid_arg "Dijkstra.run: negative reduced cost";
                  let nd = d + rc in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    parent.(v) <- a;
                    Heap.push heap ~key:nd ~value:v
                  end
                end
              end)
        end
  done;
  { dist; parent }
