let bfs_parents ?(admit = fun _ -> true) g ~src ~dst =
  let n = Graph.n_vertices g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.push src q;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_out g u (fun a ->
        if (not !found) && Graph.residual g a > 0 && admit a then begin
          let v = Graph.dst g a in
          if not seen.(v) then begin
            seen.(v) <- true;
            parent.(v) <- a;
            if v = dst then found := true else Queue.push v q
          end
        end)
  done;
  if !found then Some parent else None

let bfs_path ?admit g ~src ~dst =
  match bfs_parents ?admit g ~src ~dst with
  | None -> None
  | Some parent -> Path.of_parents g ~parent ~src ~dst

let run ?admit g ~src ~dst =
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    match bfs_path ?admit g ~src ~dst with
    | None -> continue := false
    | Some p ->
        Path.augment g p p.Path.bottleneck;
        total := !total + p.Path.bottleneck
  done;
  !total

let min_cut g ~src =
  let n = Graph.n_vertices g in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_out g u (fun a ->
        if Graph.residual g a > 0 then begin
          let v = Graph.dst g a in
          if not seen.(v) then begin
            seen.(v) <- true;
            Queue.push v q
          end
        end)
  done;
  seen
