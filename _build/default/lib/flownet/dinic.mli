(** Dinic's maximum-flow algorithm (level graph + blocking flow), O(V²·E);
    the solver used at trace scale. *)

val run : Graph.t -> src:int -> dst:int -> int
(** Returns the max flow; flows are recorded in the graph. *)
