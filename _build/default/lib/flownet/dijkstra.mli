(** Dijkstra over the residual graph with Johnson potentials, for the
    min-cost solver's repeated shortest-path phases (all reduced costs are
    non-negative once potentials are valid). *)

type result = {
  dist : int array;    (** reduced-cost distances; max_int if unreachable *)
  parent : int array;
}

val run : Graph.t -> src:int -> potential:int array -> result
(** @raise Invalid_argument when a reduced cost is negative (stale
    potentials). *)
