(** Shortest-Path Faster Algorithm (queue-based Bellman–Ford) over the
    residual graph. Handles negative arc costs; the paper's Algorithm 1 is a
    constrained SPFA, and the min-cost solver uses it for the first
    potentials pass. *)

type result = {
  dist : int array;    (** max_int where unreachable *)
  parent : int array;  (** arc that reached each vertex, -1 if none *)
}

val run :
  ?admit:(int -> bool) ->
  Graph.t ->
  src:int ->
  result
(** Shortest distances from [src] over arcs with positive residual capacity.
    [admit] filters arcs (default: all); an arc is relaxed only when it has
    residual capacity and [admit arc] holds.
    @raise Failure on a negative cycle reachable from [src]. *)

val shortest_path :
  ?admit:(int -> bool) ->
  Graph.t ->
  src:int ->
  dst:int ->
  Path.t option
