type vec = int array
type t = { supply : vec; admit : int -> bool }

let linear supply = { supply; admit = (fun _ -> true) }
let nonlinear supply ~admit = { supply; admit }
let dims = Array.length
let zero n = Array.make n 0

let check_dims a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Mdim.%s: dimension mismatch" name)

let add a b =
  check_dims a b "add";
  Array.init (Array.length a) (fun i -> a.(i) + b.(i))

let sub a b =
  check_dims a b "sub";
  Array.init (Array.length a) (fun i ->
      let d = a.(i) - b.(i) in
      if d < 0 then invalid_arg "Mdim.sub: negative result" else d)

let sub_clamped a b =
  check_dims a b "sub_clamped";
  Array.init (Array.length a) (fun i -> max 0 (a.(i) - b.(i)))

let leq a b =
  check_dims a b "leq";
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let fits t ~subject ~demand = t.admit subject && leq demand t.supply
let consume t demand = { t with supply = sub t.supply demand }
let scale k v = Array.map (fun x -> k * x) v
let equal a b = Array.length a = Array.length b && leq a b && leq b a

let pp_vec ppf v =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (Array.to_list (Array.map string_of_int v)))
