(** The four container-arrival characteristics of §V.C / Fig. 10–13:
    priority-first orders and anti-affinity-degree orders. *)

type order =
  | As_submitted
  | High_priority_first   (** CHP *)
  | Low_priority_first    (** CLP *)
  | Large_anti_affinity_first  (** CLA *)
  | Small_anti_affinity_first  (** CSA *)

val all : (string * order) list
(** Paper abbreviations: CHP, CLP, CLA, CSA (plus "submitted"). *)

val abbrev : order -> string
val of_string : string -> order option

val apply : order -> Workload.t -> Workload.t
(** Stable re-sort of the submission sequence; ties keep submission order. *)
