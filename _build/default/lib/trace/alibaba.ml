type params = {
  seed : int;
  n_apps : int;
  target_containers : int;
  max_app_size : int;
  cpu_only : bool;
  machine_cpu : float;
  machine_mem_gb : float;
  frac_single : float;
  frac_lt_50 : float;
  frac_anti_affinity : float;
  frac_priority : float;
  frac_across : float;
  priority_classes : int;
}

let default =
  {
    seed = 42;
    n_apps = 13_056;
    target_containers = 100_000;
    max_app_size = 2_500;
    cpu_only = true;
    machine_cpu = 32.;
    machine_mem_gb = 64.;
    frac_single = 0.64;
    frac_lt_50 = 0.95;
    frac_anti_affinity = 0.72;
    frac_priority = 0.16;
    frac_across = 0.03;
    priority_classes = 3;
  }

let scaled f =
  if f <= 0. then invalid_arg "Alibaba.scaled: factor must be positive";
  let s x = max 1 (int_of_float (Float.round (float_of_int x *. f))) in
  {
    default with
    n_apps = s default.n_apps;
    target_containers = s default.target_containers;
    max_app_size = max 8 (s default.max_app_size);
  }

let machine_capacity p =
  if p.cpu_only then Resource.cpu_only p.machine_cpu
  else Resource.make ~cpu:p.machine_cpu ~mem_gb:p.machine_mem_gb

(* CPU demand mixes. Calibrated jointly with the priority/size skew so the
   container-weighted mean lands near 2.5 cores: at the paper's 10
   containers per 32-CPU machine that is ~78% cluster load — tight enough
   that greedy schedulers fragment, feasible for good ones. *)
let cpu_mix =
  [| (0.28, 0.5); (0.32, 1.0); (0.20, 2.0); (0.12, 4.0); (0.06, 8.0); (0.02, 16.0) |]

(* High-priority apps skew to larger demands (§V.A), mean ~3.7 cores. *)
let cpu_mix_priority =
  [| (0.25, 1.0); (0.35, 2.0); (0.22, 4.0); (0.13, 8.0); (0.05, 16.0) |]

let sample_demand rng p ~priority =
  let cpu =
    Distribution.categorical rng (if priority > 0 then cpu_mix_priority else cpu_mix)
  in
  if p.cpu_only then Resource.cpu_only cpu
  else
    (* Memory roughly tracks CPU (2 GB per core) with ±50% jitter, capped
       at the 32 GB maximum the trace reports. *)
    let mem = Float.min 32. (cpu *. 2. *. (0.5 +. Rng.float rng)) in
    Resource.make ~cpu ~mem_gb:(Float.max 0.25 mem)

(* App size: mixture matching the Fig. 8(a) CDF shape. The mid bucket is a
   Zipf over [2, 50) and the tail a bounded Pareto reaching max_app_size. *)
let sample_size rng p =
  let u = Rng.float rng in
  if u < p.frac_single then 1
  else if u < p.frac_lt_50 then
    1 + Distribution.zipf rng ~n:(min 48 (max 2 (p.max_app_size - 1))) ~s:1.4
  else
    let lo = min 50 p.max_app_size in
    Distribution.bounded_pareto rng ~alpha:1.6 ~lo ~hi:p.max_app_size

let generate p =
  if p.n_apps <= 0 then invalid_arg "Alibaba.generate: no apps";
  let rng = Rng.create p.seed in
  let sizes = Array.init p.n_apps (fun _ -> sample_size rng p) in
  (* Normalise to the container budget while keeping singles single: shave
     the biggest apps on overshoot, grow the mid-sized bucket on
     undershoot. The budget is exact so that the evaluation's
     10-containers-per-machine ratio holds at every scale. *)
  let target = p.target_containers in
  let total = ref (Array.fold_left ( + ) 0 sizes) in
  let order = Array.init p.n_apps (fun i -> i) in
  Array.sort (fun a b -> Int.compare sizes.(b) sizes.(a)) order;
  let passes = ref 0 in
  while !total > target && !passes < 30 do
    incr passes;
    Array.iter
      (fun i ->
        if !total > target && sizes.(i) > 1 then begin
          let cut = min (!total - target) (sizes.(i) - (1 + (sizes.(i) / 2))) in
          if cut > 0 then begin
            sizes.(i) <- sizes.(i) - cut;
            total := !total - cut
          end
        end)
      order
  done;
  let passes = ref 0 in
  while !total < target && !passes < 400 do
    incr passes;
    (* Grow the tail apps first (size >= 10, largest first) so the low end
       of the CDF keeps its shape; fall back to any multi-instance app and
       finally to singles only if unavoidable. *)
    let grew = ref false in
    let grow_if cond =
      Array.iter
        (fun i ->
          if !total < target && cond sizes.(i) then begin
            sizes.(i) <- sizes.(i) + 1;
            incr total;
            grew := true
          end)
        order
    in
    let cap = p.max_app_size in
    grow_if (fun s -> s >= 10 && s < cap);
    if (not !grew) && !total < target then grow_if (fun s -> s > 1 && s < cap);
    if (not !grew) && !total < target then grow_if (fun s -> s < cap)
  done;
  (* Priority: probability grows with app size (larger LLAs are the
     business-critical ones in the trace). Calibrated so the overall share
     lands near frac_priority. *)
  let size_boost n = if n >= 50 then 2.0 else if n > 1 then 1.2 else 0.5 in
  let priorities =
    Array.map
      (fun n ->
        if Rng.bool rng (Float.min 0.95 (p.frac_priority *. size_boost n))
        then 1 + Rng.int rng p.priority_classes
        else 0)
      sizes
  in
  let anti_within =
    Array.map (fun _ -> Rng.bool rng p.frac_anti_affinity) sizes
  in
  (* Cross-app anti-affinity: a few apps conflict with the largest apps. *)
  let by_size = Array.init p.n_apps (fun i -> i) in
  Array.sort (fun a b -> Int.compare sizes.(b) sizes.(a)) by_size;
  let big_pool = Array.sub by_size 0 (max 1 (p.n_apps / 100)) in
  let across = Array.make p.n_apps [] in
  for i = 0 to p.n_apps - 1 do
    (* High-priority apps are the interference-sensitive ones in the trace
       ("cannot be co-located with at least 5,000 containers"). *)
    let prob =
      if priorities.(i) > 0 then 8. *. p.frac_across else p.frac_across
    in
    if Rng.bool rng prob then begin
      let k = 1 + Rng.int rng (min 4 (Array.length big_pool)) in
      let picks =
        Distribution.sample_without_replacement rng ~k
          ~n:(Array.length big_pool)
        |> List.map (fun j -> big_pool.(j))
        |> List.filter (fun j -> j <> i)
      in
      across.(i) <- picks
    end
  done;
  let demands =
    Array.init p.n_apps (fun i -> sample_demand rng p ~priority:priorities.(i))
  in
  (* Load calibration: the evaluation pairs N containers with N/10 machines,
     so the container-weighted mean CPU must land near
     0.78 * machine_cpu / 10. Nudge non-priority apps one demand tier at a
     time (deterministically, in seeded order) until within the band. This
     keeps the priority/demand correlation while making cluster load
     scale-invariant. *)
  let tiers = [| 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 |] in
  let tier_of cpu =
    let best = ref 0 in
    Array.iteri
      (fun k t -> if Float.abs (t -. cpu) < Float.abs (tiers.(!best) -. cpu) then best := k)
      tiers;
    !best
  in
  let rebuild i k =
    let cpu = tiers.(k) in
    demands.(i) <-
      (if p.cpu_only then Resource.cpu_only cpu
       else
         let old_mem = Resource.mem_gb demands.(i) in
         Resource.make ~cpu ~mem_gb:old_mem)
  in
  let total_containers = Array.fold_left ( + ) 0 sizes in
  let total_cpu () =
    let t = ref 0. in
    Array.iteri (fun i n -> t := !t +. (float_of_int n *. Resource.cpu demands.(i))) sizes;
    !t
  in
  let capacity_cpu =
    p.machine_cpu *. (float_of_int total_containers /. 10.)
  in
  let lo_band = 0.84 *. capacity_cpu and hi_band = 0.88 *. capacity_cpu in
  let visit = Array.init p.n_apps (fun i -> i) in
  Distribution.shuffle rng visit;
  let cur = ref (total_cpu ()) in
  let step = ref 0 in
  let budget = 20 * p.n_apps in
  while (!cur < lo_band || !cur > hi_band) && !step < budget do
    let i = visit.(!step mod p.n_apps) in
    incr step;
    if priorities.(i) = 0 then begin
      let k = tier_of (Resource.cpu demands.(i)) in
      if !cur > hi_band && k > 0 then begin
        cur := !cur -. (float_of_int sizes.(i) *. (tiers.(k) -. tiers.(k - 1)));
        rebuild i (k - 1)
      end
      else if !cur < lo_band && k < Array.length tiers - 1 then begin
        cur := !cur +. (float_of_int sizes.(i) *. (tiers.(k + 1) -. tiers.(k)));
        rebuild i (k + 1)
      end
    end
  done;
  let apps =
    Array.init p.n_apps (fun i ->
        Application.make ~id:i ~n_containers:sizes.(i) ~demand:demands.(i)
          ~priority:priorities.(i) ~anti_affinity_within:anti_within.(i)
          ~anti_affinity_across:across.(i) ())
  in
  let containers =
    Array.of_list
      (List.concat_map
         (fun (a : Application.t) ->
           Application.containers a
             ~first_id:(a.Application.id * p.max_app_size * 2)
             ~first_arrival:0)
         (Array.to_list apps))
  in
  (* Re-id densely, then interleave submissions. *)
  let containers =
    Array.mapi (fun i (c : Container.t) -> { c with Container.id = i }) containers
  in
  Distribution.shuffle rng containers;
  Workload.make ~apps ~containers ~machine_capacity:(machine_capacity p)
