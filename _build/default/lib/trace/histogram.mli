(** Small statistics helper for trace analysis and reports: streaming
    min/max/mean plus exact percentiles over the recorded samples. *)

type t

val create : unit -> t
val add : t -> float -> unit
val of_list : float list -> t
val count : t -> int
val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
val mean : t -> float
val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank on the sorted samples.
    @raise Invalid_argument when empty or p outside [0, 1]. *)

val buckets : t -> n:int -> (float * float * int) list
(** Equal-width buckets [(lo, hi, count)] spanning [min, max]. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: count/min/p50/p95/p99/max/mean. *)
