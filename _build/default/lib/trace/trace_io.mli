(** Plain-text serialisation of workloads, so generated traces can be saved
    once and replayed across runs and tools.

    Line-oriented format (fields space-separated, lists comma-separated):
    {v
    # aladdin-trace v1
    machine <unit,unit,...>
    app <id> <name> <n> <priority> <within:0|1> <demand units> <across ids|->
    container <id> <app-id>
    v}
    Containers appear in submission order. *)

val save : Workload.t -> string -> unit
(** @raise Sys_error on IO failure. *)

val load : string -> Workload.t
(** @raise Failure on malformed input; @raise Sys_error on IO failure. *)

val to_string : Workload.t -> string
val of_string : string -> Workload.t
