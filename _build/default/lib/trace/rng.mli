(** Deterministic splitmix64 PRNG.

    Every experiment in the repository is seeded, so results are exactly
    replayable; we avoid [Stdlib.Random] to keep streams stable across OCaml
    releases and to allow cheap independent sub-streams. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : t -> t
(** Independent sub-stream (advances the parent). *)

val copy : t -> t
val next_int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound). @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> float -> bool
(** True with the given probability. *)
