type t = {
  n_apps : int;
  n_containers : int;
  n_single_instance : int;
  n_anti_affinity : int;
  n_priority : int;
  max_app_size : int;
  mean_app_size : float;
  n_lt_50 : int;
  max_demand : Resource.t;
}

let compute w =
  let apps = w.Workload.apps in
  let cs = Workload.constraint_set w in
  let n_apps = Array.length apps in
  let n_containers = Array.length w.Workload.containers in
  let count f = Array.fold_left (fun n a -> if f a then n + 1 else n) 0 apps in
  let max_app_size =
    Array.fold_left (fun m (a : Application.t) -> max m a.Application.n_containers) 0 apps
  in
  let max_demand =
    Array.fold_left
      (fun m (a : Application.t) ->
        if
          Resource.dominant_share ~demand:a.Application.demand
            ~capacity:w.Workload.machine_capacity
          > Resource.dominant_share ~demand:m ~capacity:w.Workload.machine_capacity
        then a.Application.demand
        else m)
      (Resource.zero (Resource.dims w.Workload.machine_capacity))
      apps
  in
  {
    n_apps;
    n_containers;
    n_single_instance =
      count (fun (a : Application.t) -> a.Application.n_containers = 1);
    n_anti_affinity = Constraint_set.n_with_anti_affinity cs;
    n_priority = Constraint_set.n_with_priority cs;
    max_app_size;
    mean_app_size =
      (if n_apps = 0 then 0. else float_of_int n_containers /. float_of_int n_apps);
    n_lt_50 = count (fun (a : Application.t) -> a.Application.n_containers < 50);
    max_demand;
  }

let cdf w ~at =
  let apps = w.Workload.apps in
  let n = float_of_int (max 1 (Array.length apps)) in
  List.map
    (fun size ->
      let le =
        Array.fold_left
          (fun acc (a : Application.t) ->
            if a.Application.n_containers <= size then acc + 1 else acc)
          0 apps
      in
      (size, float_of_int le /. n))
    (List.sort_uniq Int.compare at)

let pp ppf s =
  Format.fprintf ppf
    "@[<v>apps: %d, containers: %d@,single-instance apps: %d (%.0f%%)@,\
     apps < 50 containers: %d (%.0f%%)@,largest app: %d containers@,\
     mean app size: %.2f@,anti-affinity apps: %d (%.0f%%)@,\
     priority apps: %d (%.0f%%)@,max demand: %a@]"
    s.n_apps s.n_containers s.n_single_instance
    (100. *. float_of_int s.n_single_instance /. float_of_int (max 1 s.n_apps))
    s.n_lt_50
    (100. *. float_of_int s.n_lt_50 /. float_of_int (max 1 s.n_apps))
    s.max_app_size s.mean_app_size s.n_anti_affinity
    (100. *. float_of_int s.n_anti_affinity /. float_of_int (max 1 s.n_apps))
    s.n_priority
    (100. *. float_of_int s.n_priority /. float_of_int (max 1 s.n_apps))
    Resource.pp s.max_demand
