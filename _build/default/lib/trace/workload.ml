type t = {
  apps : Application.t array;
  containers : Container.t array;
  machine_capacity : Resource.t;
}

let renumber containers =
  Array.mapi
    (fun i (c : Container.t) -> { c with Container.arrival = i })
    containers

let make ~apps ~containers ~machine_capacity =
  let known = Hashtbl.create (Array.length apps) in
  Array.iter
    (fun (a : Application.t) -> Hashtbl.replace known a.Application.id ())
    apps;
  Array.iter
    (fun (c : Container.t) ->
      if not (Hashtbl.mem known c.Container.app) then
        invalid_arg "Workload.make: container references unknown app")
    containers;
  { apps; containers = renumber containers; machine_capacity }

let constraint_set t = Constraint_set.of_apps t.apps
let n_apps t = Array.length t.apps
let n_containers t = Array.length t.containers

let total_demand t =
  if Array.length t.containers = 0 then
    Resource.zero (Resource.dims t.machine_capacity)
  else
    Array.fold_left
      (fun acc (c : Container.t) -> Resource.add acc c.Container.demand)
      (Resource.zero (Resource.dims t.machine_capacity))
      t.containers

let app_sizes t =
  let sizes = Hashtbl.create (Array.length t.apps) in
  Array.iter
    (fun (a : Application.t) ->
      Hashtbl.replace sizes a.Application.id a.Application.n_containers)
    t.apps;
  sizes

let degree_of cs sizes id =
  let size a = Option.value ~default:0 (Hashtbl.find_opt sizes a) in
  List.fold_left
    (fun acc a -> if a = id then acc + (size a - 1) else acc + size a)
    0
    (Constraint_set.conflicting_apps cs id)

let anti_affinity_degree t id = degree_of (constraint_set t) (app_sizes t) id

let anti_affinity_degrees t =
  let cs = constraint_set t in
  let sizes = app_sizes t in
  let out = Hashtbl.create (Array.length t.apps) in
  Array.iter
    (fun (a : Application.t) ->
      Hashtbl.replace out a.Application.id (degree_of cs sizes a.Application.id))
    t.apps;
  out

let with_containers t containers = { t with containers = renumber containers }

let topology ?machines_per_rack ?racks_per_group t ~n_machines =
  Topology.homogeneous ?machines_per_rack ?racks_per_group ~n_machines
    ~capacity:t.machine_capacity ()
