lib/trace/alibaba.ml: Application Array Container Distribution Float Int List Resource Rng Workload
