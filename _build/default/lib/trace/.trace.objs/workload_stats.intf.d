lib/trace/workload_stats.mli: Format Resource Workload
