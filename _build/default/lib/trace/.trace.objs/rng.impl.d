lib/trace/rng.ml: Int64
