lib/trace/alibaba_csv.ml: Application Array Container Float Fun Hashtbl Int List Printf Resource String Workload
