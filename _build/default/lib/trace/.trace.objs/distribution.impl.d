lib/trace/distribution.ml: Array Float Hashtbl Int List Rng
