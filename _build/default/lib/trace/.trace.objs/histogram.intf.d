lib/trace/histogram.mli: Format
