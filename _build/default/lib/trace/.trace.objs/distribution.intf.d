lib/trace/distribution.mli: Rng
