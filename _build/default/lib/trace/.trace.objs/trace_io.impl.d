lib/trace/trace_io.ml: Application Array Buffer Container Fun Hashtbl List Printf Resource String Workload
