lib/trace/arrival.ml: Array Container Hashtbl Int List Option String Workload
