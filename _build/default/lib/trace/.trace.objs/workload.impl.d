lib/trace/workload.ml: Application Array Constraint_set Container Hashtbl List Option Resource Topology
