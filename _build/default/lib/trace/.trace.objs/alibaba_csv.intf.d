lib/trace/alibaba_csv.mli: Workload
