lib/trace/workload_stats.ml: Application Array Constraint_set Format Int List Resource Workload
