lib/trace/arrival.mli: Workload
