lib/trace/rng.mli:
