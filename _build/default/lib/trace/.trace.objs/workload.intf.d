lib/trace/workload.mli: Application Constraint_set Container Hashtbl Resource Topology
