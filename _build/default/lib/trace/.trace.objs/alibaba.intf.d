lib/trace/alibaba.mli: Resource Workload
