lib/trace/histogram.ml: Array Float Format List Printf
