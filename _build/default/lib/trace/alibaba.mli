(** Synthetic workload generator calibrated to the Alibaba LLA trace
    statistics the paper reports (Fig. 8 and §V.A):

    - ~13,056 applications, ~100,000 containers at full scale;
    - 64% of apps have a single container, 85% fewer than 50, a handful
      exceed 2,000;
    - ~72% of apps carry anti-affinity, ~16% carry priority;
    - container demand ≤ 16 CPU / 32 GB on 32 CPU / 64 GB machines;
    - high-priority apps skew towards more instances and larger demands;
    - a few apps conflict with thousands of containers across apps.

    Generation is fully deterministic given [seed]. *)

type params = {
  seed : int;
  n_apps : int;
  target_containers : int;  (** generation stops near this total *)
  max_app_size : int;
  cpu_only : bool;          (** paper §V.A limitation (i) *)
  machine_cpu : float;
  machine_mem_gb : float;
  frac_single : float;
  frac_lt_50 : float;       (** share of apps with < 50 containers *)
  frac_anti_affinity : float;
  frac_priority : float;
  frac_across : float;      (** apps with cross-app anti-affinity *)
  priority_classes : int;   (** classes 1..n on top of default 0 *)
}

val default : params
(** Full paper scale: 13,056 apps / 100,000 containers / machines of
    32 CPU, 64 GB. *)

val scaled : float -> params
(** [scaled f] shrinks apps, containers and the maximum app size by [f]
    (e.g. [scaled 0.1] for the default experiment scale). *)

val generate : params -> Workload.t
(** Containers are emitted in a seeded random interleaving. *)

val machine_capacity : params -> Resource.t
