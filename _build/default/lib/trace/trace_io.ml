let header = "# aladdin-trace v1"

let vec_to_string v =
  String.concat "," (List.map string_of_int (Array.to_list (Resource.to_array v)))

let vec_of_string s =
  Resource.of_array
    (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))

let ids_to_string = function
  | [] -> "-"
  | l -> String.concat "," (List.map string_of_int l)

let ids_of_string = function
  | "-" -> []
  | s -> List.map int_of_string (String.split_on_char ',' s)

let to_string (w : Workload.t) =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "machine %s\n" (vec_to_string w.Workload.machine_capacity));
  Array.iter
    (fun (a : Application.t) ->
      Buffer.add_string buf
        (Printf.sprintf "app %d %s %d %d %d %s %s\n" a.Application.id
           a.Application.name a.Application.n_containers a.Application.priority
           (if a.Application.anti_affinity_within then 1 else 0)
           (vec_to_string a.Application.demand)
           (ids_to_string a.Application.anti_affinity_across)))
    w.Workload.apps;
  Array.iter
    (fun (c : Container.t) ->
      Buffer.add_string buf
        (Printf.sprintf "container %d %d\n" c.Container.id c.Container.app))
    w.Workload.containers;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  (match lines with
  | h :: _ when String.trim h = header -> ()
  | _ -> failwith "Trace_io: missing header");
  let machine = ref None in
  let apps = ref [] in
  let containers = ref [] in
  let app_by_id = Hashtbl.create 64 in
  List.iter
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | "#" :: _ -> ()
      | [ "machine"; v ] -> machine := Some (vec_of_string v)
      | [ "app"; id; name; n; prio; within; demand; across ] ->
          let a =
            Application.make ~id:(int_of_string id) ~name
              ~n_containers:(int_of_string n) ~demand:(vec_of_string demand)
              ~priority:(int_of_string prio)
              ~anti_affinity_within:(int_of_string within = 1)
              ~anti_affinity_across:(ids_of_string across) ()
          in
          Hashtbl.replace app_by_id a.Application.id a;
          apps := a :: !apps
      | [ "container"; id; app ] ->
          let app = int_of_string app in
          let a =
            match Hashtbl.find_opt app_by_id app with
            | Some a -> a
            | None -> failwith "Trace_io: container before its app"
          in
          containers :=
            Container.make ~id:(int_of_string id) ~app
              ~demand:a.Application.demand ~priority:a.Application.priority
              ~arrival:(List.length !containers)
            :: !containers
      | l when List.hd l = header -> ()
      | _ when String.trim line = header -> ()
      | _ -> failwith (Printf.sprintf "Trace_io: bad line %S" line))
    lines;
  let machine_capacity =
    match !machine with
    | Some m -> m
    | None -> failwith "Trace_io: missing machine line"
  in
  Workload.make
    ~apps:(Array.of_list (List.rev !apps))
    ~containers:(Array.of_list (List.rev !containers))
    ~machine_capacity

let save w path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string w))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
