let uniform_int rng ~lo ~hi =
  if hi < lo then invalid_arg "Distribution.uniform_int: empty range";
  lo + Rng.int rng (hi - lo + 1)

let categorical rng weights =
  if Array.length weights = 0 then
    invalid_arg "Distribution.categorical: empty";
  let total = Array.fold_left (fun s (w, _) -> s +. w) 0. weights in
  if total <= 0. then invalid_arg "Distribution.categorical: bad weights";
  let r = Rng.float rng *. total in
  let acc = ref 0. in
  let chosen = ref None in
  Array.iter
    (fun (w, v) ->
      if !chosen = None then begin
        acc := !acc +. w;
        if r < !acc then chosen := Some v
      end)
    weights;
  match !chosen with Some v -> v | None -> snd weights.(Array.length weights - 1)

let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Distribution.zipf: n must be positive";
  let weights = Array.init n (fun i -> (1. /. Float.pow (float_of_int (i + 1)) s, i + 1)) in
  categorical rng weights

let bounded_pareto rng ~alpha ~lo ~hi =
  if lo <= 0 || hi < lo then invalid_arg "Distribution.bounded_pareto: bad range";
  let l = float_of_int lo and h = float_of_int hi in
  let u = Rng.float rng in
  let la = Float.pow l alpha and ha = Float.pow h alpha in
  let x =
    Float.pow (-.((u *. ha) -. (u *. la) -. ha) /. (ha *. la)) (-1. /. alpha)
  in
  max lo (min hi (int_of_float x))

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement rng ~k ~n =
  if k > n then invalid_arg "Distribution.sample_without_replacement: k > n";
  (* Floyd's algorithm *)
  let chosen = Hashtbl.create k in
  for j = n - k to n - 1 do
    let t = Rng.int rng (j + 1) in
    if Hashtbl.mem chosen t then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen t ()
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) chosen [] |> List.sort Int.compare
