(** A scheduling workload: applications, their materialised containers in
    submission order, and the machine shape they are destined for. *)

type t = {
  apps : Application.t array;
  containers : Container.t array;
      (** submission order; [containers.(i).arrival = i] *)
  machine_capacity : Resource.t;
}

val make :
  apps:Application.t array ->
  containers:Container.t array ->
  machine_capacity:Resource.t ->
  t
(** Normalises arrivals to the array order.
    @raise Invalid_argument if a container references an unknown app. *)

val constraint_set : t -> Constraint_set.t
val n_apps : t -> int
val n_containers : t -> int

val total_demand : t -> Resource.t
val app_sizes : t -> (Application.id, int) Hashtbl.t

val anti_affinity_degree : t -> Application.id -> int
(** Number of containers an app's containers cannot share a machine with:
    (n-1) within when anti-within, plus the sizes of conflicting apps. *)

val anti_affinity_degrees : t -> (Application.id, int) Hashtbl.t
(** All degrees in one pass (use this at trace scale). *)

val with_containers : t -> Container.t array -> t
(** Same workload, different submission order. *)

val topology : ?machines_per_rack:int -> ?racks_per_group:int ->
  t -> n_machines:int -> Topology.t
(** Homogeneous topology with this workload's machine shape. *)
