(** Workload characterisation — reproduces Fig. 8. *)

type t = {
  n_apps : int;
  n_containers : int;
  n_single_instance : int;
  n_anti_affinity : int;   (** Fig. 8(b) middle bar *)
  n_priority : int;        (** Fig. 8(b) right bar *)
  max_app_size : int;
  mean_app_size : float;
  n_lt_50 : int;           (** apps with fewer than 50 containers *)
  max_demand : Resource.t; (** largest per-container demand *)
}

val compute : Workload.t -> t

val cdf : Workload.t -> at:int list -> (int * float) list
(** Fig. 8(a): fraction of apps with ≤ size containers at each size. *)

val pp : Format.formatter -> t -> unit
