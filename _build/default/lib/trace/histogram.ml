type t = {
  mutable samples : float array;
  mutable n : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 16 0.; n = 0; sorted = true }

let add t x =
  if t.n = Array.length t.samples then begin
    let bigger = Array.make (2 * t.n) 0. in
    Array.blit t.samples 0 bigger 0 t.n;
    t.samples <- bigger
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1;
  t.sorted <- false

let of_list l =
  let t = create () in
  List.iter (add t) l;
  t

let count t = t.n

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.n in
    Array.sort Float.compare live;
    Array.blit live 0 t.samples 0 t.n;
    t.sorted <- true
  end

let nonempty t name =
  if t.n = 0 then invalid_arg (Printf.sprintf "Histogram.%s: empty" name)

let min_value t =
  nonempty t "min_value";
  ensure_sorted t;
  t.samples.(0)

let max_value t =
  nonempty t "max_value";
  ensure_sorted t;
  t.samples.(t.n - 1)

let mean t =
  nonempty t "mean";
  let s = ref 0. in
  for i = 0 to t.n - 1 do
    s := !s +. t.samples.(i)
  done;
  !s /. float_of_int t.n

let stddev t =
  nonempty t "stddev";
  let m = mean t in
  let s = ref 0. in
  for i = 0 to t.n - 1 do
    let d = t.samples.(i) -. m in
    s := !s +. (d *. d)
  done;
  sqrt (!s /. float_of_int t.n)

let percentile t p =
  nonempty t "percentile";
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile: p outside [0,1]";
  ensure_sorted t;
  let rank =
    min (t.n - 1)
      (max 0 (int_of_float (Float.round (p *. float_of_int (t.n - 1)))))
  in
  t.samples.(rank)

let buckets t ~n =
  nonempty t "buckets";
  if n <= 0 then invalid_arg "Histogram.buckets: n";
  ensure_sorted t;
  let lo = min_value t and hi = max_value t in
  let width = if hi > lo then (hi -. lo) /. float_of_int n else 1. in
  let counts = Array.make n 0 in
  for i = 0 to t.n - 1 do
    let b =
      min (n - 1) (int_of_float ((t.samples.(i) -. lo) /. width))
    in
    counts.(b) <- counts.(b) + 1
  done;
  List.init n (fun b ->
      (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))

let pp ppf t =
  if t.n = 0 then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf
      "n=%d min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f mean=%.2f" t.n
      (min_value t) (percentile t 0.5) (percentile t 0.95) (percentile t 0.99)
      (max_value t) (mean t)
