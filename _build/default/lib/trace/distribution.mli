(** Samplers used by the workload generator. *)

val uniform_int : Rng.t -> lo:int -> hi:int -> int
(** Inclusive range. @raise Invalid_argument if [hi < lo]. *)

val categorical : Rng.t -> (float * 'a) array -> 'a
(** Weighted choice; weights need not sum to 1.
    @raise Invalid_argument on an empty or non-positive-total array. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** Zipf over [1..n] with exponent [s], by inverse-CDF on precomputed
    harmonic weights (n is expected to be small, ≤ a few thousand). *)

val bounded_pareto : Rng.t -> alpha:float -> lo:int -> hi:int -> int
(** Integer bounded Pareto via inverse transform. *)

val shuffle : Rng.t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val sample_without_replacement : Rng.t -> k:int -> n:int -> int list
(** [k] distinct values from [0..n-1]. @raise Invalid_argument if k > n. *)
