#!/usr/bin/env python3
"""Schema check for experiments_main --data-dir TSVs.

Usage: check_experiments_tsv.py [--fig9] [--fig13] [--serve] DIR

Each flag validates one exported file:
  --fig9    fig9_quality.tsv  — exact header, a Cells(...) engine row,
            percentages parse and stay in [0, 100]
  --fig13   fig13_overhead.tsv — exact header, non-negative timings for
            both the aladdin and the engine-stack columns
  --serve   serve_sweep.tsv   — exact header, >= 1 point, strictly
            increasing rates, exact admission accounting
            (admitted = arrivals - rejected) and >= 1 saturated point
            (the sweep must reach backpressure)
"""

import os
import sys

FIG9_HEADER = ["panel", "scheduler", "violations_pct", "paper_pct", "anti_share_pct"]
FIG13_HEADER = [
    "machines", "order", "elapsed_s", "stack_elapsed_s", "paths",
    "migrations", "preemptions",
]
SERVE_HEADER = [
    "rate", "arrivals", "admitted", "rejected", "shed", "placed",
    "undeployed", "batches", "p50_ms", "p99_ms", "p999_ms", "max_ms",
    "queue_depth_max", "saturated",
]


def fail(msg):
    print(f"check_experiments_tsv: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(dirpath, name, header):
    path = os.path.join(dirpath, name)
    if not os.path.exists(path):
        fail(f"{name}: missing from {dirpath}")
    with open(path) as f:
        lines = [ln.rstrip("\n") for ln in f if ln.strip()]
    if not lines:
        fail(f"{name}: empty")
    got = lines[0].split("\t")
    if got != header:
        fail(f"{name}: header {got} != expected {header}")
    rows = [ln.split("\t") for ln in lines[1:]]
    if not rows:
        fail(f"{name}: no data rows")
    for i, row in enumerate(rows):
        if len(row) != len(header):
            fail(f"{name}: row {i + 1} has {len(row)} fields, expected {len(header)}")
    return [dict(zip(header, row)) for row in rows]


def as_float(name, row, key):
    try:
        return float(row[key])
    except ValueError:
        fail(f"{name}: {key}={row[key]!r} is not a number")


def as_int(name, row, key):
    try:
        return int(row[key])
    except ValueError:
        fail(f"{name}: {key}={row[key]!r} is not an integer")


def check_fig9(dirpath):
    rows = load(dirpath, "fig9_quality.tsv", FIG9_HEADER)
    for r in rows:
        pct = as_float("fig9_quality.tsv", r, "violations_pct")
        if not 0.0 <= pct <= 100.0:
            fail(f"fig9_quality.tsv: violations_pct {pct} out of [0, 100]")
        if r["paper_pct"] != "-":
            as_float("fig9_quality.tsv", r, "paper_pct")
        as_float("fig9_quality.tsv", r, "anti_share_pct")
    cells = [r for r in rows if r["scheduler"].startswith("Cells(")]
    if not cells:
        fail("fig9_quality.tsv: no Cells(...) engine row")
    panels = {r["panel"] for r in rows}
    for p in panels:
        if not any(r["panel"] == p for r in cells):
            fail(f"fig9_quality.tsv: panel {p!r} lacks a Cells row")
    print(f"fig9_quality.tsv OK: {len(rows)} rows, {len(panels)} panels, "
          f"{len(cells)} cells rows")


def check_fig13(dirpath):
    rows = load(dirpath, "fig13_overhead.tsv", FIG13_HEADER)
    for r in rows:
        if as_float("fig13_overhead.tsv", r, "elapsed_s") < 0:
            fail("fig13_overhead.tsv: negative elapsed_s")
        if as_float("fig13_overhead.tsv", r, "stack_elapsed_s") < 0:
            fail("fig13_overhead.tsv: negative stack_elapsed_s")
        if as_int("fig13_overhead.tsv", r, "paths") <= 0:
            fail("fig13_overhead.tsv: paths must be positive")
    print(f"fig13_overhead.tsv OK: {len(rows)} points")


def check_serve(dirpath):
    rows = load(dirpath, "serve_sweep.tsv", SERVE_HEADER)
    prev_rate = -1.0
    for r in rows:
        rate = as_float("serve_sweep.tsv", r, "rate")
        if rate <= prev_rate:
            fail("serve_sweep.tsv: rates not strictly increasing")
        prev_rate = rate
        arrivals = as_int("serve_sweep.tsv", r, "arrivals")
        admitted = as_int("serve_sweep.tsv", r, "admitted")
        rejected = as_int("serve_sweep.tsv", r, "rejected")
        if admitted != arrivals - rejected:
            fail(f"serve_sweep.tsv: admitted {admitted} != arrivals {arrivals}"
                 f" - rejected {rejected}")
        for key in ("p50_ms", "p99_ms", "p999_ms", "max_ms"):
            if as_float("serve_sweep.tsv", r, key) < 0:
                fail(f"serve_sweep.tsv: negative {key}")
        if r["saturated"] not in ("true", "false"):
            fail(f"serve_sweep.tsv: saturated={r['saturated']!r} not true/false")
    if not any(r["saturated"] == "true" for r in rows):
        fail("serve_sweep.tsv: sweep never reached saturation")
    print(f"serve_sweep.tsv OK: {len(rows)} points, saturation reached")


def main(argv):
    flags = [a for a in argv if a.startswith("--")]
    dirs = [a for a in argv if not a.startswith("--")]
    if len(dirs) != 1 or not flags:
        print(__doc__, file=sys.stderr)
        return 2
    dirpath = dirs[0]
    known = {"--fig9": check_fig9, "--fig13": check_fig13, "--serve": check_serve}
    for f in flags:
        if f not in known:
            fail(f"unknown flag {f}")
    for f in flags:
        known[f](dirpath)
    print("check_experiments_tsv: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
