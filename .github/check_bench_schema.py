#!/usr/bin/env python3
"""Validate the shape of BENCH_sched.json written by bench/main.exe.

Fails (exit 1) on missing sections, wrong types, length mismatches between
the per-batch series, or non-positive latencies — so CI catches a solver or
serialisation regression even when the bench itself exits 0.
"""
import json
import sys


def fail(msg):
    print(f"BENCH_sched.json schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def check_summary(summary, where="summary"):
    for key in (
        "solver_cold_total_ms",
        "solver_warm_total_ms",
        "solver_speedup",
        "sched_cold_total_ms",
        "sched_warm_total_ms",
        "sched_speedup",
    ):
        if not isinstance(summary.get(key), (int, float)):
            fail(f"{where}.{key} must be a number")
    if summary["solver_speedup"] <= 0 or summary["sched_speedup"] <= 0:
        fail(f"{where}: speedups must be positive")


def check_gc(gc, where):
    for col in ("solver_cold", "solver_warm"):
        sub = gc.get(col)
        if not isinstance(sub, dict):
            fail(f"{where}.{col} must be an object")
        for key in ("minor_words", "major_words", "compactions"):
            v = sub.get(key)
            if not isinstance(v, int) or v < 0:
                fail(f"{where}.{col}.{key} must be a nonnegative int")


def check_cells(cells, where, require_speedup=None):
    counts = cells.get("counts")
    if not isinstance(counts, list) or not counts or \
            not all(isinstance(c, int) and c > 0 for c in counts):
        fail(f"{where}.counts must be a non-empty array of positive ints")
    runs = cells.get("runs")
    if not isinstance(runs, dict) or sorted(runs) != sorted(str(c) for c in counts):
        fail(f"{where}.runs keys must match {where}.counts")
    for key, run in runs.items():
        rw = f"{where}.runs[{key!r}]"
        batch_ms = run.get("batch_ms")
        if not isinstance(batch_ms, list) or not batch_ms or \
                not all(isinstance(x, (int, float)) and x >= 0 for x in batch_ms):
            fail(f"{rw}.batch_ms must be a non-empty array of nonnegative numbers")
        for field in ("total_ms", "critical_path_ms", "fixup_ms",
                      "active_cells_per_batch", "speedup_vs_first"):
            v = run.get(field)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{rw}.{field} must be a nonnegative number")
        placed = run.get("placed")
        if not isinstance(placed, int) or placed < 0:
            fail(f"{rw}.placed must be a nonnegative int")
        if run["critical_path_ms"] > run["total_ms"] + 1e-6:
            fail(f"{rw}: critical path exceeds total time")
    placed_set = {runs[str(c)]["placed"] for c in counts}
    if len(placed_set) != 1:
        fail(f"{where}: placement counts differ across cell counts "
             f"({sorted(placed_set)}) — sharding changed the outcome")
    if require_speedup is not None and len(counts) > 1:
        best = max(runs[str(c)]["speedup_vs_first"] for c in counts[1:])
        if best < require_speedup:
            fail(f"{where}: best cells speedup {best:.3f}x is below the "
                 f"required {require_speedup:.2f}x")


# Counter families of the cell-supervision layer and the crash-consistent
# serving recovery path; the bench snapshots them into the "supervision"
# section and Obs dumps them into obs.counters.
SUPERVISION_COUNTERS = (
    "cells.supervisor.cell_failures",
    "cells.supervisor.retries",
    "cells.supervisor.stalls",
    "cells.supervisor.quarantines",
    "cells.supervisor.reinstatements",
    "cells.supervisor.probes",
    "cells.supervisor.redistributed_machines",
    "cells.batch_retries",
    "serve.resume.resumes",
    "serve.resume.replayed_batches",
    "serve.resume.replayed_requests",
    "serve.taken_requests",
    "fault.cell_crashes",
    "fault.cell_stalls",
    "fault.cell_slowdowns",
    "fault.cell_corruptions",
)


def check_supervision(sup):
    where = "supervision"
    if not isinstance(sup, dict):
        fail(f"{where} must be an object")
    if not isinstance(sup.get("enabled"), bool):
        fail(f"{where}.enabled must be a bool")
    counters = sup.get("counters")
    if not isinstance(counters, dict):
        fail(f"{where}.counters must be an object")
    for key in SUPERVISION_COUNTERS:
        v = counters.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"{where}.counters[{key!r}] must be a nonnegative int")


def check_serve(serve, require_saturation=False):
    where = "serve"
    cfg = serve.get("config")
    if not isinstance(cfg, dict):
        fail(f"{where}.config must be an object")
    for key in ("queue_bound", "watermark", "batch_size", "seed"):
        if not isinstance(cfg.get(key), int):
            fail(f"{where}.config.{key} must be an int")
    if cfg["queue_bound"] <= 0 or not (0 < cfg["watermark"] <= cfg["queue_bound"]):
        fail(f"{where}.config: need 0 < watermark <= queue_bound")
    if cfg["batch_size"] <= 0:
        fail(f"{where}.config.batch_size must be positive")
    for key in ("rate", "duration_s", "batch_deadline_ms", "overload_deadline_ms"):
        v = cfg.get(key)
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"{where}.config.{key} must be a nonnegative number")
    if cfg.get("modulation") not in ("steady", "burst", "diurnal"):
        fail(f"{where}.config.modulation must be steady/burst/diurnal")
    base_rate = serve.get("base_rate")
    if not isinstance(base_rate, (int, float)) or base_rate <= 0:
        fail(f"{where}.base_rate must be positive")
    if not isinstance(serve.get("calibrated"), bool):
        fail(f"{where}.calibrated must be a bool")
    points = serve.get("points")
    if not isinstance(points, list) or not points:
        fail(f"{where}.points must be a non-empty array")
    prev_rate = 0.0
    for i, p in enumerate(points):
        pw = f"{where}.points[{i}]"
        for key in ("arrivals", "admitted", "rejected", "shed", "placed",
                    "undeployed", "failed_requests", "removed",
                    "noop_removes", "batches", "failed_batches",
                    "overload_batches"):
            v = p.get(key)
            if not isinstance(v, int) or v < 0:
                fail(f"{pw}.{key} must be a nonnegative int")
        if p["admitted"] != p["arrivals"] - p["rejected"]:
            fail(f"{pw}: admitted must equal arrivals - rejected")
        rate = p.get("rate")
        if not isinstance(rate, (int, float)) or rate <= prev_rate:
            fail(f"{pw}.rate must increase along the sweep")
        prev_rate = rate
        lat = p.get("latency_ms")
        if not isinstance(lat, dict):
            fail(f"{pw}.latency_ms must be an object")
        if not isinstance(lat.get("samples"), int) or lat["samples"] < 0:
            fail(f"{pw}.latency_ms.samples must be a nonnegative int")
        for key in ("p50", "p99", "p999", "max", "mean"):
            v = lat.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{pw}.latency_ms.{key} must be a nonnegative number")
        eps = 1e-6
        if not (lat["p50"] <= lat["p99"] + eps
                and lat["p99"] <= lat["p999"] + eps
                and lat["p999"] <= lat["max"] + eps):
            fail(f"{pw}.latency_ms: tails must be monotone "
                 f"(p50 <= p99 <= p999 <= max)")
        depth = p.get("queue_depth")
        if not isinstance(depth, dict) or \
                not isinstance(depth.get("max"), int) or depth["max"] < 0 or \
                not isinstance(depth.get("mean"), (int, float)) or depth["mean"] < 0:
            fail(f"{pw}.queue_depth needs nonnegative max/mean")
        if not isinstance(p.get("saturated"), bool):
            fail(f"{pw}.saturated must be a bool")
    if require_saturation:
        last = points[-1]
        if not last["saturated"]:
            fail(f"{where}: sweep never saturated (last point "
                 f"rate {last['rate']})")
        if last["rejected"] + last["shed"] <= 0:
            fail(f"{where}: saturated point shows no shed/rejected requests")
        if not any(p["arrivals"] > 0 and p["batches"] > 0 for p in points):
            fail(f"{where}: no point actually served traffic")


def check_tier(name, tier, require_warm_win=False, require_cells_speedup=None):
    where = f"tiers[{name!r}]"
    for section in ("config", "summary", "gc", "containers_placed", "cells"):
        if section not in tier:
            fail(f"{where} missing section {section!r}")
    cfg = tier["config"]
    if cfg.get("tier") != name:
        fail(f"{where}.config.tier must equal the tier key")
    label = cfg.get("label")
    if label not in ("headline", "deadline-ladder"):
        fail(f"{where}.config.label must be 'headline' or 'deadline-ladder'")
    for key in ("machines", "batches", "containers", "per_batch", "seed"):
        if not isinstance(cfg.get(key), int) or cfg[key] < 0:
            fail(f"{where}.config.{key} must be a nonnegative int")
    check_summary(tier["summary"], where=f"{where}.summary")
    check_gc(tier["gc"], where=f"{where}.gc")
    placed = tier["containers_placed"]
    for col in ("cold", "warm"):
        v = placed.get(col)
        if not isinstance(v, int) or v < 0:
            fail(f"{where}.containers_placed.{col} must be a nonnegative int")
    # The headline (no-deadline) config must actually schedule work: a
    # zero here means the bench measured an empty workload.
    if label == "headline" and (placed["cold"] <= 0 or placed["warm"] <= 0):
        fail(f"{where}: headline config placed no containers")
    check_cells(tier["cells"], where=f"{where}.cells",
                require_speedup=require_cells_speedup)
    if require_warm_win:
        s = tier["summary"]
        if s["sched_speedup"] <= 1.0:
            fail(f"{where}: warm scheduler is not faster than cold "
                 f"(sched_speedup {s['sched_speedup']:.3f})")
        if s["solver_speedup"] <= 1.0:
            fail(f"{where}: warm solver is not faster than cold "
                 f"(solver_speedup {s['solver_speedup']:.3f})")


def main(path, chaos=False, tiers=None, require_warm_win=False,
         require_cells_speedup=None, require_serve_saturation=False):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    for section in ("config", "solver", "per_batch", "summary", "cells",
                    "tiers", "serve", "supervision", "obs"):
        if section not in doc:
            fail(f"missing section {section!r}")

    solver = doc["solver"]
    backend = solver.get("backend")
    if not isinstance(backend, str) or not backend:
        fail("solver.backend must be a non-empty string")
    for key in ("min_cost", "supports_max_flow", "warm_start"):
        if not isinstance(solver.get(key), bool):
            fail(f"solver.{key} must be a bool")

    config = doc["config"]
    for key in ("machines", "batches", "containers", "seed"):
        if not isinstance(config.get(key), int):
            fail(f"config.{key} must be an int")
    if config["machines"] <= 0 or config["batches"] <= 0:
        fail("config.machines and config.batches must be positive")
    deadline_ms = config.get("deadline_ms")
    if not isinstance(deadline_ms, (int, float)) or deadline_ms < 0:
        fail("config.deadline_ms must be a nonnegative number")
    ladder = config.get("ladder")
    if not isinstance(ladder, str):
        fail("config.ladder must be a string")
    if (deadline_ms > 0) != bool(ladder):
        fail("config.ladder must be set exactly when config.deadline_ms > 0")

    per_batch = doc["per_batch"]
    series = ("solver_cold_ms", "solver_warm_ms", "sched_cold_ms", "sched_warm_ms")
    lengths = set()
    for key in series:
        xs = per_batch.get(key)
        if not isinstance(xs, list) or not xs:
            fail(f"per_batch.{key} must be a non-empty array")
        if not all(isinstance(x, (int, float)) and x >= 0 for x in xs):
            fail(f"per_batch.{key} must contain nonnegative numbers")
        lengths.add(len(xs))
    if len(lengths) != 1:
        fail(f"per_batch series have mismatched lengths: {sorted(lengths)}")
    if lengths.pop() != config["batches"]:
        fail("per_batch series length disagrees with config.batches")

    summary = doc["summary"]
    check_summary(summary)

    # Top-level cells section mirrors the last (largest) tier; the
    # speedup gate, when requested, applies here so small smoke tiers
    # don't have to show parallel wins.
    check_cells(doc["cells"], where="cells",
                require_speedup=require_cells_speedup)

    tier_map = doc["tiers"]
    if not isinstance(tier_map, dict) or not tier_map:
        fail("tiers must be a non-empty object")
    for name, tier in tier_map.items():
        check_tier(name, tier, require_warm_win=require_warm_win)
    for required in tiers or []:
        if required not in tier_map:
            fail(f"required tier {required!r} missing "
                 f"(present: {sorted(tier_map)})")

    check_serve(doc["serve"], require_saturation=require_serve_saturation)
    check_supervision(doc["supervision"])

    obs = doc["obs"]
    for key in ("counters", "histograms"):
        if not isinstance(obs.get(key), dict):
            fail(f"obs.{key} must be an object")
    # The registry instruments every backend; the one the bench ran must
    # have recorded solves. Warm-hit accounting only exists for the
    # warm-start-capable mincost backend.
    if obs["counters"].get(f"solver.{backend}.solves", 0) <= 0:
        fail(f"obs.counters['solver.{backend}.solves'] should be positive after the bench")
    # GC accounting around every solve: the counters must exist (the bench
    # registers them unconditionally) and be sane. Allocation budgets are
    # asserted by the bench binary itself, where per-solve context exists.
    for col in ("gc.solver_cold", "gc.solver_warm"):
        for key in ("minor_words", "major_words", "compactions"):
            v = obs["counters"].get(f"{col}.{key}")
            if not isinstance(v, int) or v < 0:
                fail(f"obs.counters['{col}.{key}'] must be a nonnegative int")
    errs = obs["counters"].get(f"solver.{backend}.errors")
    if not isinstance(errs, int) or errs < 0:
        fail(f"obs.counters['solver.{backend}.errors'] must be a nonnegative int")
    if backend == "mincost" and obs["counters"].get("mincost.warm_hits", 0) <= 0:
        fail("obs.counters['mincost.warm_hits'] should be positive after the bench")

    # Recovery counters must be present (registration proves the error-path
    # modules are linked) and sane; they are only nonzero under fault
    # injection, so >= 0 is the invariant here.
    for key in (
        "aladdin.fallback_to_cold",
        "aladdin.rejected_batches",
        "trace.parse_errors",
        "fault.injected_solver_failures",
        "replay.failed_batches",
        "mincost.errors",
        # graceful-degradation families: registered whenever the deadline /
        # ladder / auditor / journal modules are linked, nonzero only when
        # the corresponding mechanism actually fired.
        "deadline.exceeded",
        "ladder.escalations",
        "ladder.shed_containers",
        "audit.batches",
        "audit.violations",
        "audit.repairs",
        "audit.unrepaired",
        "journal.commits",
        "journal.corrupt_records",
        "journal.dropped_commits",
        "journal.resumes",
        "journal.resume_drops",
        "fault.process_kills",
        # sharded-cells family: registered whenever the cells coordinator
        # is linked; batches/placed are positive after any cells bench run,
        # desyncs/rejections only under races or faults.
        "cells.batches",
        "cells.containers_placed",
        "cells.active_cells",
        "cells.resyncs",
        "cells.desyncs",
        "cells.rejected_batches",
        "cells.fixup_containers",
        "cells.fixup_placed",
        # typed solver-error channel of the sharded cells solver
        "cells.solver.errors",
        # serving front end: registered whenever lib/serve is linked; the
        # serve phase always runs, so arrivals/batches are checked via the
        # serve section itself, >= 0 here.
        "serve.arrivals",
        "serve.admitted",
        "serve.rejected",
        "serve.shed",
        "serve.placed",
        "serve.failed_requests",
        "serve.batches",
        "serve.failed_batches",
        "serve.overload_batches",
        # cell supervision + crash-consistent serving recovery: registered
        # whenever the supervisor / runner are linked, nonzero only when
        # cells misbehave or a serve run resumes from its journal.
        *SUPERVISION_COUNTERS,
    ):
        v = obs["counters"].get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"obs.counters[{key!r}] must be a nonnegative int")

    counters = obs["counters"]
    if deadline_ms > 0:
        # A deadline-bounded bench schedules every batch through the
        # ladder: some rung must have won each attempt, the auditor must
        # have run, and nothing may be left unrepaired.
        rung_total = sum(v for k, v in counters.items()
                         if k.startswith("ladder.rung."))
        if rung_total <= 0:
            fail("deadline active but no ladder.rung.* counter is positive")
        if counters.get("audit.batches", 0) <= 0:
            fail("deadline active but the auditor never ran")
        if counters.get("audit.unrepaired", 0) != 0:
            fail("auditor left violations unrepaired")

    if chaos:
        if deadline_ms <= 0:
            fail("--chaos requires a deadline-bounded bench run")
        if counters.get("deadline.exceeded", 0) <= 0:
            fail("chaos run recorded no deadline.exceeded")
        if counters.get("ladder.escalations", 0) < 1:
            fail("chaos run recorded no ladder escalation")
        # the supervision/resume families must be wired end to end: every
        # counter the bench snapshots into the supervision section must
        # also be visible in the obs dump
        for key in SUPERVISION_COUNTERS:
            if key not in counters:
                fail(f"chaos run is missing obs counter {key!r}")

    cells_runs = doc["cells"]["runs"]
    best_cells = max(r["speedup_vs_first"] for r in cells_runs.values())
    serve_points = doc["serve"]["points"]
    print(f"{path}: schema OK "
          f"(tiers {sorted(tier_map)}, {config['batches']} batches, "
          f"solver speedup {summary['solver_speedup']:.2f}x, "
          f"cells {sorted(doc['cells']['counts'])} "
          f"best {best_cells:.2f}x, "
          f"serve {len(serve_points)} points"
          f"{' saturated' if serve_points and serve_points[-1]['saturated'] else ''})")


if __name__ == "__main__":
    args = sys.argv[1:]
    chaos_flag = "--chaos" in args
    warm_win_flag = "--require-warm-win" in args
    serve_sat_flag = "--require-serve-saturation" in args
    args = [a for a in args
            if a not in ("--chaos", "--require-warm-win",
                         "--require-serve-saturation")]
    tiers_arg = []
    cells_speedup = None
    for a in list(args):
        if a.startswith("--tiers="):
            tiers_arg = [t for t in a[len("--tiers="):].split(",") if t]
            args.remove(a)
        elif a.startswith("--require-cells-speedup="):
            cells_speedup = float(a[len("--require-cells-speedup="):])
            args.remove(a)
    main(args[0] if args else "BENCH_sched.json", chaos=chaos_flag,
         tiers=tiers_arg, require_warm_win=warm_win_flag,
         require_cells_speedup=cells_speedup,
         require_serve_saturation=serve_sat_flag)
