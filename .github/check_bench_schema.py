#!/usr/bin/env python3
"""Validate the shape of BENCH_sched.json written by bench/main.exe.

Fails (exit 1) on missing sections, wrong types, length mismatches between
the per-batch series, or non-positive latencies — so CI catches a solver or
serialisation regression even when the bench itself exits 0.
"""
import json
import sys


def fail(msg):
    print(f"BENCH_sched.json schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    for section in ("config", "solver", "per_batch", "summary", "obs"):
        if section not in doc:
            fail(f"missing section {section!r}")

    solver = doc["solver"]
    backend = solver.get("backend")
    if not isinstance(backend, str) or not backend:
        fail("solver.backend must be a non-empty string")
    for key in ("min_cost", "supports_max_flow", "warm_start"):
        if not isinstance(solver.get(key), bool):
            fail(f"solver.{key} must be a bool")

    config = doc["config"]
    for key in ("machines", "batches", "containers", "seed"):
        if not isinstance(config.get(key), int):
            fail(f"config.{key} must be an int")
    if config["machines"] <= 0 or config["batches"] <= 0:
        fail("config.machines and config.batches must be positive")

    per_batch = doc["per_batch"]
    series = ("solver_cold_ms", "solver_warm_ms", "sched_cold_ms", "sched_warm_ms")
    lengths = set()
    for key in series:
        xs = per_batch.get(key)
        if not isinstance(xs, list) or not xs:
            fail(f"per_batch.{key} must be a non-empty array")
        if not all(isinstance(x, (int, float)) and x >= 0 for x in xs):
            fail(f"per_batch.{key} must contain nonnegative numbers")
        lengths.add(len(xs))
    if len(lengths) != 1:
        fail(f"per_batch series have mismatched lengths: {sorted(lengths)}")
    if lengths.pop() != config["batches"]:
        fail("per_batch series length disagrees with config.batches")

    summary = doc["summary"]
    for key in (
        "solver_cold_total_ms",
        "solver_warm_total_ms",
        "solver_speedup",
        "sched_cold_total_ms",
        "sched_warm_total_ms",
        "sched_speedup",
    ):
        if not isinstance(summary.get(key), (int, float)):
            fail(f"summary.{key} must be a number")
    if summary["solver_speedup"] <= 0 or summary["sched_speedup"] <= 0:
        fail("speedups must be positive")

    obs = doc["obs"]
    for key in ("counters", "histograms"):
        if not isinstance(obs.get(key), dict):
            fail(f"obs.{key} must be an object")
    # The registry instruments every backend; the one the bench ran must
    # have recorded solves. Warm-hit accounting only exists for the
    # warm-start-capable mincost backend.
    if obs["counters"].get(f"solver.{backend}.solves", 0) <= 0:
        fail(f"obs.counters['solver.{backend}.solves'] should be positive after the bench")
    errs = obs["counters"].get(f"solver.{backend}.errors")
    if not isinstance(errs, int) or errs < 0:
        fail(f"obs.counters['solver.{backend}.errors'] must be a nonnegative int")
    if backend == "mincost" and obs["counters"].get("mincost.warm_hits", 0) <= 0:
        fail("obs.counters['mincost.warm_hits'] should be positive after the bench")

    # Recovery counters must be present (registration proves the error-path
    # modules are linked) and sane; they are only nonzero under fault
    # injection, so >= 0 is the invariant here.
    for key in (
        "aladdin.fallback_to_cold",
        "aladdin.rejected_batches",
        "trace.parse_errors",
        "fault.injected_solver_failures",
        "replay.failed_batches",
        "mincost.errors",
    ):
        v = obs["counters"].get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"obs.counters[{key!r}] must be a nonnegative int")

    print(f"{path}: schema OK "
          f"({config['batches']} batches, solver speedup {summary['solver_speedup']:.2f}x)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_sched.json")
