(* CLI driver: reproduce any table/figure of the paper by id. Stack
   configuration (--sched/--cells/--serve/...) goes through the engine's
   one parser, so anything expressible here is the same stack the bench
   and fault drivers build. *)

let known =
  [
    ("table1", fun (_ : Exp_config.t) -> Table1.print ());
    ("fig8", Fig8.print);
    ("fig9", Fig9.print);
    ("fig10", Fig10.print);
    ("fig11", Fig10.print);
    (* Fig. 11 is printed by the Fig. 10 driver *)
    ("fig12", Fig12.print);
    ("fig13", Fig13.print);
    ("ablations", Ablations.print);
    ("hetero", Heterogeneous.print);
    ("online", Online.print);
    ("failure", Failure.print);
  ]

let run_one cfg id =
  match List.assoc_opt id known with
  | Some f -> f cfg
  | None ->
      Format.eprintf "unknown experiment %S@." id;
      exit 2

(* Open-loop serving sweep over the experiment workload, through the
   configured stack (ROADMAP item 3: the serving path is no longer
   bench-only). *)
let run_serve cfg spec data_dir =
  let w = Exp_config.workload cfg in
  Format.printf "== Serving sweep: %s over %d machines ==@."
    (Engine.Stack.label spec) cfg.Exp_config.machines;
  let r =
    Engine.Stack.serve_sweep ~n_machines:cfg.Exp_config.machines spec
      ~workload:w
  in
  if r.Serve.Runner.calibrated then
    Format.printf "calibrated base rate: %.1f req/s@." r.Serve.Runner.base_rate;
  List.iter
    (fun (p : Serve.Runner.point) ->
      Format.printf
        "  rate %9.1f/s: p50 %8.3f ms  p99 %9.3f ms  p999 %9.3f ms  depth_max \
         %5d  shed %d  rejected %d%s@."
        p.Serve.Runner.rate p.Serve.Runner.p50_ms p.Serve.Runner.p99_ms
        p.Serve.Runner.p999_ms p.Serve.Runner.queue_depth_max
        p.Serve.Runner.shed p.Serve.Runner.rejected
        (if p.Serve.Runner.saturated then "  [saturated]" else ""))
    r.Serve.Runner.points;
  match data_dir with
  | Some dir ->
      List.iter (fun p -> Format.printf "wrote %s@." p) (Data_export.serve ~dir r)
  | None -> ()

open Cmdliner

let ids =
  let doc =
    "Experiments to run: table1, fig8, fig9, fig10, fig11, fig12, fig13, \
     ablations, hetero, or 'all'."
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let scale =
  let doc = "Scale factor relative to the paper (1.0 = 10k machines/100k containers)." in
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let seed =
  let doc = "Workload generation seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let data_dir =
  let doc = "Also write each figure's raw data as TSV files into this directory." in
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)

(* Stack flags: collected back into the engine's one argv vocabulary so
   Engine.Stack.of_args stays the single parser. *)
let sched =
  let doc =
    "Scheduler stack for the extra Fig. 9/13 column and --serve: aladdin, \
     aladdin-warm, cells, firmament[-quincy|-trivial|-octopus], medea, \
     gokube, ladder, or a solver backend name."
  in
  Arg.(value & opt (some string) None & info [ "sched" ] ~docv:"NAME" ~doc)

let solver =
  let doc = "Pin a Flownet.Registry solver backend by name." in
  Arg.(value & opt (some string) None & info [ "solver" ] ~docv:"NAME" ~doc)

let dijkstra =
  let doc = "Dijkstra queue policy: auto, heap or dial." in
  Arg.(value & opt (some string) None & info [ "dijkstra" ] ~docv:"POLICY" ~doc)

let cells =
  let doc = "Cell count for the sharded cells stack." in
  Arg.(value & opt (some int) None & info [ "cells" ] ~docv:"N" ~doc)

let cells_mode =
  let doc = "Cells coordinator mode: auto, domains or sequential." in
  Arg.(value & opt (some string) None & info [ "cells-mode" ] ~docv:"MODE" ~doc)

let deadline_ms =
  let doc = "Per-batch deadline (ms); wraps the stack in the ladder + auditor." in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let ladder =
  let doc = "Comma-separated ladder rungs behind the configured stack." in
  Arg.(value & opt (some string) None & info [ "ladder" ] ~docv:"RUNGS" ~doc)

let serve_flag =
  let doc =
    "Run an open-loop serving sweep of the configured stack over the \
     experiment workload (ALADDIN_SERVE_* tune rate/duration/queue)."
  in
  Arg.(value & flag & info [ "serve" ] ~doc)

let supervise_flag =
  let doc =
    "Attach the cell supervisor to the cells stack: per-cell retry with \
     backoff, join timeouts, quarantine with machine redistribution. \
     Implied by any --supervise-* knob."
  in
  Arg.(value & flag & info [ "supervise" ] ~doc)

let supervise_retries =
  let doc = "Per-cell phase-1 retries for transient errors." in
  Arg.(value & opt (some int) None & info [ "supervise-retries" ] ~docv:"N" ~doc)

let supervise_threshold =
  let doc = "Consecutive cell failures before quarantine." in
  Arg.(
    value & opt (some int) None & info [ "supervise-threshold" ] ~docv:"N" ~doc)

let supervise_cooldown =
  let doc = "Batches a quarantined cell sits out before its probe." in
  Arg.(
    value & opt (some int) None & info [ "supervise-cooldown" ] ~docv:"N" ~doc)

let supervise_timeout_ms =
  let doc = "Phase-1 join timeout (ms) for hung domains; 0 disables." in
  Arg.(
    value
    & opt (some float) None
    & info [ "supervise-timeout-ms" ] ~docv:"MS" ~doc)

let supervise_backoff_ms =
  let doc = "Base retry backoff (ms), doubled per attempt with jitter." in
  Arg.(
    value
    & opt (some float) None
    & info [ "supervise-backoff-ms" ] ~docv:"MS" ~doc)

let stack_argv sched solver dijkstra cells cells_mode deadline_ms ladder serve
    supervise sup_retries sup_threshold sup_cooldown sup_timeout sup_backoff =
  let opt flag = function Some v -> [ flag; v ] | None -> [] in
  List.concat
    [
      opt "--sched" sched;
      opt "--solver" solver;
      opt "--dijkstra" dijkstra;
      opt "--cells" (Option.map string_of_int cells);
      opt "--cells-mode" cells_mode;
      opt "--deadline-ms" (Option.map string_of_float deadline_ms);
      opt "--ladder" ladder;
      (if serve then [ "--serve" ] else []);
      (if supervise then [ "--supervise" ] else []);
      opt "--supervise-retries" (Option.map string_of_int sup_retries);
      opt "--supervise-threshold" (Option.map string_of_int sup_threshold);
      opt "--supervise-cooldown" (Option.map string_of_int sup_cooldown);
      opt "--supervise-timeout-ms" (Option.map string_of_float sup_timeout);
      opt "--supervise-backoff-ms" (Option.map string_of_float sup_backoff);
    ]

let main ids scale seed data_dir sched solver dijkstra cells cells_mode
    deadline_ms ladder serve supervise sup_retries sup_threshold sup_cooldown
    sup_timeout sup_backoff =
  let argv =
    stack_argv sched solver dijkstra cells cells_mode deadline_ms ladder serve
      supervise sup_retries sup_threshold sup_cooldown sup_timeout sup_backoff
  in
  let stack =
    if argv = [] then None
    else
      match Engine.Stack.of_args argv with
      | Ok spec -> Some spec
      | Error e ->
          Format.eprintf "%s@." e;
          exit 2
  in
  let cfg = Exp_config.make ~seed ?stack ~factor:scale () in
  let ids =
    if List.mem "all" ids then List.map fst known
    else ids
  in
  (* fig11 duplicates fig10's driver; drop it when both are requested. *)
  let ids =
    if List.mem "fig10" ids then List.filter (fun i -> i <> "fig11") ids
    else ids
  in
  (match data_dir with
  | Some dir ->
      let written = Data_export.export ~ids ~dir cfg in
      List.iter (fun p -> Format.printf "wrote %s@." p) written
  | None -> ());
  List.iter (run_one cfg) ids;
  match stack with
  | Some spec when spec.Engine.Stack.serve <> None ->
      run_serve cfg spec data_dir
  | _ -> ()

let cmd =
  let doc = "Reproduce the Aladdin paper's tables and figures" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      const main $ ids $ scale $ seed $ data_dir $ sched $ solver $ dijkstra
      $ cells $ cells_mode $ deadline_ms $ ladder $ serve_flag
      $ supervise_flag $ supervise_retries $ supervise_threshold
      $ supervise_cooldown $ supervise_timeout_ms $ supervise_backoff_ms)

let () = exit (Cmd.eval cmd)
