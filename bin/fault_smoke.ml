(* Fuzz smoke driver: run the trace parsers, flow solvers, replay loop and
   both scheduler flavours under an installed fault configuration for a
   bounded wall-clock budget. Any exception escaping a Result API or the
   recovery machinery is a bug — the process exits nonzero.

   Knobs:
     ALADDIN_FAULT_SMOKE_SECS   wall-clock budget (default 5)
     ALADDIN_FAULT_SMOKE_SEED   base seed (default 1337)
     ALADDIN_FAULT_RATE         probability for every fault class (default 0.3)
     ALADDIN_DEADLINE_MS        per-attempt budget for the ladder exercise
                                (default 0.05 — tight on purpose, so the
                                degradation ladder and auditor actually fire)

   Each round also crash-drills the journal: a replay is killed mid-run by
   a process-kill probe, resumed from the last committed batch, and the
   resumed placements are checked bit-for-bit against an uninterrupted
   run of the same fault stream.

   Two domain-level drills ride every round as well: a supervised cells
   stack is driven through deterministic cell crashes (quarantine +
   reinstatement), mirror corruption (Desync batch retry) and a stalling
   domain (join-timeout abandonment); and the serving front end is killed
   mid-sweep by a process-kill probe and resumed from its journal, with
   the resumed placements and accounting checked against an uninterrupted
   run. *)

let budget_s = float_of_int (Engine.Env.int "ALADDIN_FAULT_SMOKE_SECS" 5)
let base_seed = Engine.Env.int "ALADDIN_FAULT_SMOKE_SEED" 1337

(* The stack knobs (fault rate, ladder deadline, solver pin) come from the
   engine's one env parser; this driver's defaults are deliberately hot —
   a 0.3 fault rate and a 0.05 ms deadline so the recovery machinery and
   the degradation ladder actually fire. *)
let base_spec =
  Engine.Stack.of_env
    ~base:
      { Engine.Stack.default with fault_rate = 0.3; deadline_ms = 0.05 }
    ()

let rate = base_spec.Engine.Stack.fault_rate
let deadline_ms = base_spec.Engine.Stack.deadline_ms

(* Middleware-free spec of one kind: the replay/baseline/journal
   exercises run the bare schedulers, the ladder exercise adds the
   deadline + auditor back. *)
let bare kind =
  { base_spec with Engine.Stack.kind; deadline_ms = 0.; audit = false }

let sched_of spec = (Engine.Stack.build spec).Engine.Stack.scheduler
let now_s () = Int64.to_float (Obs.now_ns ()) *. 1e-9

let fault_config ~seed ~budget =
  Fault.make ~trace_line_corruption:rate ~arc_cost_flip:rate
    ~arc_capacity_drop:rate ~machine_revocation:rate ~solver_step_failure:rate
    ~solver_failure_budget:budget ~seed ()

(* ---- individual exercises (each runs under an installed config) ---- *)

let exercise_parsers rng base_trace base_csv =
  let mangle s =
    String.concat "\n"
      (List.map Fault.corrupt_line (String.split_on_char '\n' s))
  in
  for _ = 1 to 50 do
    (match Trace_io.of_string (mangle base_trace) with Ok _ | Error _ -> ());
    (match Alibaba_csv.of_string (mangle base_csv) with Ok _ | Error _ -> ());
    let junk =
      String.init (Rng.int rng 80) (fun _ -> Char.chr (32 + Rng.int rng 95))
    in
    match Trace_io.of_string junk with Ok _ | Error _ -> ()
  done

(* The backend under test comes from ALADDIN_SOLVER (CI runs this smoke
   once per registered backend). *)
let solver_backend = Flownet.Registry.of_env ()

let exercise_solver rng =
  for _ = 1 to 20 do
    let n = 4 + Rng.int rng 12 in
    let g = Flownet.Graph.create ~arc_hint:(n * 4) n in
    for _ = 1 to n * 3 do
      let s = Rng.int rng n and d = Rng.int rng n in
      if s <> d then begin
        let cost, cap =
          Fault.perturb_arc ~cost:(Rng.int rng 12) ~capacity:(1 + Rng.int rng 9)
        in
        ignore (Flownet.Graph.add_arc g ~src:s ~dst:d ~cap ~cost)
      end
    done;
    match Flownet.Registry.solve solver_backend g ~src:0 ~dst:(n - 1) with
    | Ok _ | Error _ -> ()
  done

let exercise_replay w ~n_machines ~warm =
  let sched =
    sched_of
      (bare
         (if warm then Engine.Stack.Aladdin_warm else Engine.Stack.Aladdin))
  in
  let r = Replay.run_workload ~batch:32 sched w ~n_machines in
  ignore r.Replay.elapsed_s

let exercise_baselines w ~n_machines =
  List.iter
    (fun kind ->
      ignore
        (Replay.run_workload ~batch:32 (sched_of (bare kind)) w ~n_machines))
    [ Engine.Stack.Gokube; Engine.Stack.Medea; Engine.Stack.Firmament ]

(* Degradation ladder under faults: Aladdin first rung, registry rungs
   behind it, the invariant auditor outermost. Unrepaired violations are
   exactly the silent-corruption bugs this driver exists to catch. *)
let exercise_ladder w ~n_machines =
  let sched =
    sched_of { base_spec with Engine.Stack.kind = Engine.Stack.Aladdin;
               deadline_ms; audit = true }
  in
  ignore (Replay.run_workload ~batch:32 sched w ~n_machines);
  let unrepaired = Obs.count (Obs.counter "audit.unrepaired") in
  if unrepaired > 0 then
    failwith (Printf.sprintf "auditor left %d violations unrepaired" unrepaired)

let fresh_cluster w ~n_machines =
  Cluster.create
    (Workload.topology w ~n_machines)
    ~constraints:(Workload.constraint_set w)

(* Crash drill: kill a journaled replay after a couple of commits, resume
   from the journal, and demand the resumed run land the exact placements
   of an uninterrupted one. Deadline-free: the ladder's wall-clock budget
   would make the comparison nondeterministic. *)
let exercise_journal w ~n_machines ~seed =
  let cfg () =
    Fault.make ~machine_revocation:rate ~solver_step_failure:(rate /. 4.)
      ~seed ()
  in
  Fault.install (cfg ());
  let r_ref =
    Replay.run ~batch:32
      (sched_of (bare Engine.Stack.Aladdin))
      ~cluster:(fresh_cluster w ~n_machines)
      ~containers:w.Workload.containers
  in
  let fp_ref =
    Journal.placement_fingerprint (Cluster.placements r_ref.Replay.cluster)
  in
  let path = Filename.temp_file "fault_smoke_journal" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let j = Journal.create path in
      Fault.install { (cfg ()) with Fault.process_kill_after = 2 };
      (match
         Replay.run ~batch:32 ~journal:j
           (sched_of (bare Engine.Stack.Aladdin))
           ~cluster:(fresh_cluster w ~n_machines)
           ~containers:w.Workload.containers
       with
      | _ -> failwith "journal crash drill: kill probe never fired"
      | exception Fault.Killed _ -> ());
      Journal.close j;
      match Journal.last path with
      | None -> failwith "journal crash drill: no durable commit survived"
      | Some commit ->
          Fault.install (cfg ());
          let j2 = Journal.open_append path in
          let r2 =
            Fun.protect
              ~finally:(fun () -> Journal.close j2)
              (fun () ->
                Replay.run ~batch:32 ~journal:j2 ~resume:commit
                  (sched_of (bare Engine.Stack.Aladdin))
                  ~cluster:(fresh_cluster w ~n_machines)
                  ~containers:w.Workload.containers)
          in
          let fp =
            Journal.placement_fingerprint
              (Cluster.placements r2.Replay.cluster)
          in
          if fp <> fp_ref then
            failwith "journal crash drill: resumed placements diverged")

(* ---- domain-level drills: cell supervision, serve crash recovery ---- *)

(* Cells 4 needs a topology with at least four racks; the default rack
   width would want hundreds of machines, so the cells drills run on a
   narrow 4-machines-per-rack layout. *)
let cells_cluster w ~n_machines =
  Cluster.create
    (Workload.topology w ~machines_per_rack:4 ~racks_per_group:2 ~n_machines)
    ~constraints:(Workload.constraint_set w)

let supervised_spec ~mode ~supervise =
  {
    (bare Engine.Stack.Cells) with
    Engine.Stack.cells = Some 4;
    cells_mode = Some mode;
    supervise = Some supervise;
  }

let run_supervised spec w ~n_machines =
  let built = Engine.Stack.build spec in
  Fun.protect ~finally:built.Engine.Stack.shutdown (fun () ->
      ignore
        (Replay.run ~batch:16 built.Engine.Stack.scheduler
           ~cluster:(cells_cluster w ~n_machines)
           ~containers:w.Workload.containers))

(* Supervised cells under domain faults. Three deterministic phases:
   a cell crashing on every probe until it is quarantined (then healthy
   again, so the half-open probe reinstates it); mirror corruption
   forcing a phase-2 Desync and a batch retry; and a stalling domain
   abandoned at the join timeout. Every phase must complete the full
   workload — supervision converts domain faults into degraded batches,
   never into lost runs. *)
let exercise_supervised_cells w ~n_machines ~seed =
  let sup =
    {
      Cells.Supervisor.default with
      Cells.Supervisor.max_retries = 1;
      failure_threshold = 2;
      cooldown = 2;
      join_timeout_ms = 500.;
      seed;
    }
  in
  let quarantines = Obs.counter "cells.supervisor.quarantines" in
  let before = Obs.count quarantines in
  Fault.install
    (Fault.make ~cell_crash:1.0 ~cell_targets:[ 1 ] ~cell_fault_budget:4 ~seed
       ());
  run_supervised (supervised_spec ~mode:`Sequential ~supervise:sup) w
    ~n_machines;
  if Obs.count quarantines = before then
    failwith "supervised cells: crashing cell was never quarantined";
  Fault.install
    (Fault.make ~cell_corrupt:1.0 ~cell_targets:[ 0 ] ~cell_fault_budget:1
       ~seed ());
  run_supervised (supervised_spec ~mode:`Sequential ~supervise:sup) w
    ~n_machines;
  Fault.install
    (Fault.make ~cell_slow:1.0 ~cell_stall_s:0.02 ~cell_targets:[ 3 ]
       ~cell_fault_budget:2 ~seed ());
  run_supervised (supervised_spec ~mode:`Sequential ~supervise:sup) w
    ~n_machines;
  let sup_timeout = { sup with Cells.Supervisor.join_timeout_ms = 30. } in
  Fault.install
    (Fault.make ~cell_stall:1.0 ~cell_stall_s:0.1 ~cell_targets:[ 2 ]
       ~cell_fault_budget:1 ~seed ());
  run_supervised (supervised_spec ~mode:`Domains ~supervise:sup_timeout) w
    ~n_machines

(* Serve crash drill: a journaled serving run under a fixed virtual
   service time is killed mid-sweep by a process-kill probe and resumed
   from the journal; the resumed run must land the exact placements and
   admission accounting of an uninterrupted one. *)
let exercise_serve_resume w ~n_machines ~seed =
  let cfg =
    {
      Serve.Runner.rate = 400.;
      duration = 0.3;
      queue_bound = 128;
      watermark = 96;
      batch_size = 16;
      batch_deadline = 0.005;
      overload_deadline_ms = 25.;
      service_ms = 2.;
      seed;
      modulation = Serve.Arrivals.Steady;
    }
  in
  let run ?journal () =
    let cluster = fresh_cluster w ~n_machines in
    let p =
      Serve.Runner.run ?journal cfg
        ~sched:(sched_of (bare Engine.Stack.Gokube))
        ~cluster ~workload:w
    in
    (p, Journal.placement_fingerprint (Cluster.placements cluster))
  in
  Fault.clear ();
  let p_ref, fp_ref = run () in
  let path = Filename.temp_file "fault_smoke_serve" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fault.install (Fault.make ~process_kill_after:3 ~seed ());
      (match run ~journal:path () with
      | _ -> failwith "serve crash drill: kill probe never fired"
      | exception Fault.Killed _ -> ());
      Fault.clear ();
      let p, fp = run ~journal:path () in
      if fp <> fp_ref then
        failwith "serve crash drill: resumed placements diverged";
      if
        p.Serve.Runner.admitted <> p_ref.Serve.Runner.admitted
        || p.Serve.Runner.batches <> p_ref.Serve.Runner.batches
        || p.Serve.Runner.placed <> p_ref.Serve.Runner.placed
      then failwith "serve crash drill: resumed accounting diverged")

let () =
  let w =
    Alibaba.generate { (Alibaba.scaled 0.005) with Alibaba.seed = base_seed }
  in
  let total =
    (Resource.to_array (Workload.total_demand w)).(Resource.cpu_dim)
  in
  let per =
    (Resource.to_array w.Workload.machine_capacity).(Resource.cpu_dim)
  in
  let n_machines =
    max 4 (int_of_float (ceil (1.3 *. float_of_int total /. float_of_int per)))
  in
  let base_trace = Trace_io.to_string w in
  let base_csv =
    "container_id,machine_id,time_stamp,app_du,status,cpu_request,cpu_limit,mem_size\n\
     c1,m1,0,app_A,started,400,800,50\n\
     c2,m2,0,app_B,started,800,800,25\n\
     c3,m3,0,app_B,started,800,800,25\n"
  in
  let deadline = now_s () +. budget_s in
  let round = ref 0 in
  (try
     while now_s () < deadline do
       incr round;
       let seed = base_seed + !round in
       let rng = Rng.create seed in
       Fault.install (fault_config ~seed ~budget:(-1));
       exercise_parsers rng base_trace base_csv;
       exercise_solver rng;
       exercise_replay w ~n_machines ~warm:(!round mod 2 = 0);
       if !round mod 3 = 0 then exercise_baselines w ~n_machines;
       exercise_ladder w ~n_machines;
       (* finite budgets walk the fallback-to-cold and reject paths *)
       Fault.install (fault_config ~seed ~budget:(1 + (!round mod 2)));
       exercise_replay w ~n_machines ~warm:true;
       exercise_journal w ~n_machines ~seed;
       exercise_supervised_cells w ~n_machines ~seed;
       exercise_serve_resume w ~n_machines ~seed;
       Fault.clear ()
     done
   with e ->
     Fault.clear ();
     Printf.eprintf "fault_smoke: uncaught exception in round %d: %s\n%!"
       !round (Printexc.to_string e);
     exit 1);
  Printf.printf "fault_smoke: %d rounds in %.1fs, no uncaught exceptions\n"
    !round budget_s;
  List.iter
    (fun name -> Printf.printf "  %-32s %d\n" name (Obs.count (Obs.counter name)))
    [
      "fault.injected_solver_failures";
      "fault.corrupted_lines";
      "fault.flipped_arcs";
      "fault.revoked_machines";
      "trace.parse_errors";
      "mincost.errors";
      Printf.sprintf "solver.%s.solves" (Flownet.Registry.name solver_backend);
      Printf.sprintf "solver.%s.errors" (Flownet.Registry.name solver_backend);
      "aladdin.fallback_to_cold";
      "aladdin.rejected_batches";
      "aladdin.restore_drops";
      "replay.machine_revocations";
      "replay.failed_batches";
      "deadline.exceeded";
      "ladder.escalations";
      "ladder.shed_containers";
      "audit.violations";
      "audit.repairs";
      "audit.unrepaired";
      "journal.commits";
      "journal.resumes";
      "fault.process_kills";
      "cells.desyncs";
      "cells.batch_retries";
      "cells.rejected_batches";
      "cells.supervisor.cell_failures";
      "cells.supervisor.retries";
      "cells.supervisor.stalls";
      "cells.supervisor.quarantines";
      "cells.supervisor.reinstatements";
      "cells.supervisor.probes";
      "cells.supervisor.redistributed_machines";
      "serve.taken_requests";
      "serve.resume.resumes";
      "serve.resume.replayed_batches";
      "serve.resume.replayed_requests";
      "fault.cell_crashes";
      "fault.cell_stalls";
      "fault.cell_slowdowns";
      "fault.cell_corruptions";
    ]
