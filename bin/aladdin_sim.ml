(* aladdin-sim: generate workloads, replay them with any scheduler, and
   compare schedulers — the operational CLI around the library. *)

open Cmdliner

let scale_arg =
  let doc = "Workload scale relative to the paper's trace (1.0 = ~100k containers)." in
  Arg.(value & opt float 0.02 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let seed_arg =
  let doc = "Deterministic generation seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let machines_arg =
  let doc = "Cluster size (machines). 0 = derive from the workload (10 containers/machine)." in
  Arg.(value & opt int 0 & info [ "machines"; "m" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Replay this saved trace file instead of generating one. Files ending \
     in .csv are parsed as the public Alibaba cluster-trace \
     container_meta schema."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let order_arg =
  let doc = "Arrival order: submitted, CHP, CLP, CLA or CSA." in
  Arg.(value & opt string "submitted" & info [ "order" ] ~docv:"ORDER" ~doc)

let scheduler_arg =
  let doc =
    "Scheduler: aladdin, aladdin-plain, aladdin-il, gokube, medea, \
     firmament-trivial, firmament-quincy, firmament-octopus."
  in
  Arg.(value & opt string "aladdin" & info [ "scheduler"; "s" ] ~docv:"NAME" ~doc)

let reschd_arg =
  let doc = "Firmament rescheduling budget reschd(i)." in
  Arg.(value & opt int 4 & info [ "reschd" ] ~docv:"I" ~doc)

let medea_weights_arg =
  let doc = "Medea weights a,b,c." in
  Arg.(value & opt (t3 ~sep:',' float float float) (1., 1., 0.) & info [ "weights" ] ~docv:"A,B,C" ~doc)

let load_workload trace scale seed =
  let unwrap path = function
    | Ok w -> w
    | Error e ->
        Format.eprintf "error: %s: %s@." path (Trace_error.to_string e);
        exit 1
  in
  match trace with
  | Some path when Filename.check_suffix path ".csv" ->
      unwrap path (Alibaba_csv.load path)
  | Some path -> unwrap path (Trace_io.load path)
  | None ->
      Alibaba.generate { (Alibaba.scaled scale) with Alibaba.seed = seed }

let scheduler_of_name name reschd (a, b, c) =
  match String.lowercase_ascii name with
  | "aladdin" -> Some (Sched_zoo.aladdin ())
  | "aladdin-plain" -> Some (Sched_zoo.aladdin ~il:false ~dl:false ())
  | "aladdin-il" -> Some (Sched_zoo.aladdin ~il:true ~dl:false ())
  | "gokube" | "go-kube" -> Some (Sched_zoo.gokube ())
  | "medea" -> Some (Sched_zoo.medea ~a ~b ~c)
  | "firmament-trivial" ->
      Some (Sched_zoo.firmament Cost_model.Trivial ~reschd)
  | "firmament-quincy" -> Some (Sched_zoo.firmament Cost_model.Quincy ~reschd)
  | "firmament-octopus" ->
      Some (Sched_zoo.firmament Cost_model.Octopus ~reschd)
  | _ -> None

let derive_machines machines w =
  if machines > 0 then machines
  else max 4 (Workload.n_containers w / 10)

let report_run (r : Replay.run) =
  let total = r.Replay.n_submitted in
  Format.printf "scheduler : %s@." r.Replay.scheduler;
  Format.printf "outcome   : %a@." Scheduler.pp_outcome r.Replay.outcome;
  Format.printf "undeployed: %s@."
    (Report.pct (Metrics.undeployed_pct r.Replay.outcome ~total));
  Format.printf "machines  : %d used@." (Cluster.used_machines r.Replay.cluster);
  Format.printf "latency   : %.3f ms/container (%.3f s total)@."
    (Replay.per_container_ms r) r.Replay.elapsed_s;
  Format.printf "utilization: %a@." Metrics.pp_util
    (Metrics.utilization_summary r.Replay.cluster)

(* ---- generate ---- *)

let generate out scale seed =
  let w = Alibaba.generate { (Alibaba.scaled scale) with Alibaba.seed = seed } in
  Trace_io.save w out;
  Format.printf "wrote %s@.%a@." out Workload_stats.pp (Workload_stats.compute w)

let generate_cmd =
  let out =
    Arg.(value & opt string "trace.txt" & info [ "o"; "output" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate and save a calibrated synthetic trace")
    Term.(const generate $ out $ scale_arg $ seed_arg)

(* ---- replay ---- *)

let replay trace scale seed machines order name reschd weights =
  let w = load_workload trace scale seed in
  let order =
    match Arrival.of_string order with Some o -> o | None -> Arrival.As_submitted
  in
  match scheduler_of_name name reschd weights with
  | None ->
      Format.eprintf "unknown scheduler %S@." name;
      exit 2
  | Some sched ->
      let n_machines = derive_machines machines w in
      Format.printf "workload: %d containers, %d apps; cluster: %d machines@."
        (Workload.n_containers w) (Workload.n_apps w) n_machines;
      report_run (Replay.run_workload ~order sched w ~n_machines)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a workload with one scheduler")
    Term.(
      const replay $ trace_arg $ scale_arg $ seed_arg $ machines_arg
      $ order_arg $ scheduler_arg $ reschd_arg $ medea_weights_arg)

(* ---- compare ---- *)

let compare_ trace scale seed machines order =
  let w = load_workload trace scale seed in
  let order =
    match Arrival.of_string order with Some o -> o | None -> Arrival.As_submitted
  in
  let n_machines = derive_machines machines w in
  let total = Workload.n_containers w in
  Format.printf "workload: %d containers, %d apps; cluster: %d machines@.@."
    total (Workload.n_apps w) n_machines;
  let schedulers =
    [
      Sched_zoo.aladdin ();
      Sched_zoo.firmament Cost_model.Quincy ~reschd:8;
      Sched_zoo.firmament Cost_model.Trivial ~reschd:8;
      Sched_zoo.firmament Cost_model.Octopus ~reschd:8;
      Sched_zoo.medea ~a:1. ~b:1. ~c:0.;
      Sched_zoo.gokube ();
    ]
  in
  Report.table
    ~header:
      [ "scheduler"; "undeployed"; "violations"; "used"; "ms/container" ]
    (List.map
       (fun sched ->
         let r = Replay.run_workload ~order sched w ~n_machines in
         [
           r.Replay.scheduler;
           Report.pct (Metrics.undeployed_pct r.Replay.outcome ~total);
           string_of_int (List.length r.Replay.outcome.Scheduler.violations);
           string_of_int (Cluster.used_machines r.Replay.cluster);
           Printf.sprintf "%.3f" (Replay.per_container_ms r);
         ])
       schedulers)

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every scheduler on the same workload")
    Term.(
      const compare_ $ trace_arg $ scale_arg $ seed_arg $ machines_arg
      $ order_arg)

(* ---- stats ---- *)

let stats trace scale seed =
  let w = load_workload trace scale seed in
  Format.printf "%a@.@." Workload_stats.pp (Workload_stats.compute w);
  let sizes =
    Histogram.of_list
      (Array.to_list w.Workload.apps
      |> List.map (fun (a : Application.t) ->
             float_of_int a.Application.n_containers))
  in
  let cpus =
    Histogram.of_list
      (Array.to_list w.Workload.containers
      |> List.map (fun (c : Container.t) -> Resource.cpu c.Container.demand))
  in
  let degrees =
    let d = Workload.anti_affinity_degrees w in
    Histogram.of_list
      (Hashtbl.fold (fun _ v acc -> float_of_int v :: acc) d [])
  in
  Format.printf "app sizes           : %a@." Histogram.pp sizes;
  Format.printf "container cpu       : %a@." Histogram.pp cpus;
  Format.printf "anti-affinity degree: %a@.@." Histogram.pp degrees;
  Format.printf "app-size buckets:@.";
  List.iter
    (fun (lo, hi, n) -> Format.printf "  [%6.0f, %6.0f)  %d@." lo hi n)
    (Histogram.buckets sizes ~n:10)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Characterise a trace (histograms, percentiles)")
    Term.(const stats $ trace_arg $ scale_arg $ seed_arg)

let () =
  let doc = "Aladdin cluster-scheduling simulator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "aladdin-sim" ~doc)
          [ generate_cmd; replay_cmd; compare_cmd; stats_cmd ]))
