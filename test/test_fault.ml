(* Fault-injection and error-path hardening tests: the Result-returning
   parser/solver APIs must never raise on fuzzed inputs, negative-cycle
   reports must describe a real cycle, and the batch-level recovery in the
   Aladdin scheduler must fall back to a cold solve (with identical
   placements) or reject the batch transactionally. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fresh_cluster w ~n_machines =
  Cluster.create
    (Workload.topology w ~n_machines)
    ~constraints:(Workload.constraint_set w)

let machines_for w ~headroom =
  let total =
    (Resource.to_array (Workload.total_demand w)).(Resource.cpu_dim)
  in
  let per =
    (Resource.to_array w.Workload.machine_capacity).(Resource.cpu_dim)
  in
  max 4 (int_of_float (ceil (headroom *. float_of_int total /. float_of_int per)))

let waves containers ~n_batches =
  let n = Array.length containers in
  let per = max 1 ((n + n_batches - 1) / n_batches) in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min per (n - i) in
      go (i + len) (Array.sub containers i len :: acc)
  in
  go 0 []

let sorted_placements cl = List.sort compare (Cluster.placements cl)

(* ---------- parser fuzz: Result APIs never raise ---------- *)

(* 10k seeded corruptions of a valid trace (plus raw junk): of_string must
   return Ok or Error, never escape with an exception. *)
let test_parsers_never_raise () =
  let w = Alibaba.generate { (Alibaba.scaled 0.01) with Alibaba.seed = 21 } in
  let base = Trace_io.to_string w in
  let base_lines = String.split_on_char '\n' base in
  let csv_base =
    "container_id,machine_id,time_stamp,app_du,status,cpu_request,cpu_limit,mem_size\n\
     c1,m1,0,app_A,started,400,800,50\n\
     c2,m2,0,app_B,started,800,800,25\n"
  in
  let csv_lines = String.split_on_char '\n' csv_base in
  let rng = Rng.create 0xFA117 in
  Fault.install
    (Fault.make ~trace_line_corruption:0.6 ~seed:0xFA117 ());
  Fun.protect ~finally:Fault.clear (fun () ->
      for case = 1 to 10_000 do
        let input =
          match case mod 5 with
          | 0 ->
              (* pure junk *)
              String.init (Rng.int rng 60) (fun _ ->
                  Char.chr (32 + Rng.int rng 95))
          | 1 ->
              (* shuffled valid lines *)
              let a = Array.of_list base_lines in
              Distribution.shuffle rng a;
              String.concat "\n" (Array.to_list a)
          | _ ->
              (* per-line seeded mangling through the harness *)
              String.concat "\n" (List.map Fault.corrupt_line base_lines)
        in
        (match Trace_io.of_string input with Ok _ | Error _ -> ());
        let csv_input =
          if case mod 2 = 0 then
            String.concat "\n" (List.map Fault.corrupt_line csv_lines)
          else input
        in
        match Alibaba_csv.of_string csv_input with Ok _ | Error _ -> ()
      done);
  check bool "corpus exercised" true (Obs.count (Obs.counter "trace.parse_errors") > 0)

(* ---------- solver fuzz: negative cycles reported, never raised ---------- *)

let random_graph rng ~n ~m ~max_cap ~min_cost ~max_cost =
  let g = Flownet.Graph.create ~arc_hint:(m + 4) n in
  for _ = 1 to m do
    let s = Rng.int rng n and d = Rng.int rng n in
    if s <> d then
      ignore
        (Flownet.Graph.add_arc g ~src:s ~dst:d
           ~cap:(1 + Rng.int rng max_cap)
           ~cost:(min_cost + Rng.int rng (max_cost - min_cost + 1)))
  done;
  g

let assert_valid_cycle g arcs =
  check bool "cycle nonempty" true (arcs <> []);
  let total = List.fold_left (fun acc a -> acc + Flownet.Graph.cost g a) 0 arcs in
  check bool "cycle cost negative" true (total < 0);
  let rec chained = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
        Flownet.Graph.dst g a = Flownet.Graph.src g b && chained rest
  in
  check bool "arcs head-to-tail" true (chained arcs);
  let first = List.hd arcs and last = List.nth arcs (List.length arcs - 1) in
  check int "cycle closes" (Flownet.Graph.src g first) (Flownet.Graph.dst g last)

let test_solvers_never_raise () =
  let rng = Rng.create 0x50F7 in
  let cycles = ref 0 in
  for _case = 1 to 800 do
    let n = 3 + Rng.int rng 10 in
    let m = n * (1 + Rng.int rng 4) in
    let g = random_graph rng ~n ~m ~max_cap:8 ~min_cost:(-6) ~max_cost:10 in
    (match Flownet.Spfa.run g ~src:0 with
    | Ok _ -> ()
    | Error (Flownet.Error.Negative_cycle arcs) ->
        incr cycles;
        assert_valid_cycle g arcs
    | Error _ -> ());
    Flownet.Graph.reset_flows g;
    match Flownet.Mincost.run g ~src:0 ~dst:(n - 1) with
    | Ok _ | Error _ -> ()
  done;
  check bool "corpus hit negative cycles" true (!cycles > 0)

(* ---------- scheduler recovery ---------- *)

let small_workload seed =
  Alibaba.generate { (Alibaba.scaled 0.004) with Alibaba.seed = seed }

(* A warm scheduler whose first batch trips an injected solver failure must
   fall back to a cold solve and end up with exactly the placements of a
   never-faulted cold run. *)
let test_fallback_matches_cold () =
  let w = small_workload 31 in
  let n_machines = machines_for w ~headroom:1.25 in
  let ws = waves w.Workload.containers ~n_batches:6 in
  let cl_ref = fresh_cluster w ~n_machines in
  let cold = Aladdin.Aladdin_scheduler.make () in
  List.iter (fun wave -> ignore (cold.Scheduler.schedule cl_ref wave)) ws;
  let c_fallback = Obs.counter "aladdin.fallback_to_cold" in
  let c_rejected = Obs.counter "aladdin.rejected_batches" in
  let fb0 = Obs.count c_fallback and rj0 = Obs.count c_rejected in
  let cl = fresh_cluster w ~n_machines in
  let warm = Aladdin.Aladdin_scheduler.make_warm () in
  Fault.install
    (Fault.make ~solver_step_failure:1.0 ~solver_failure_budget:1 ~seed:7 ());
  Fun.protect ~finally:Fault.clear (fun () ->
      List.iter (fun wave -> ignore (warm.Scheduler.schedule cl wave)) ws);
  check int "one fallback to cold" (fb0 + 1) (Obs.count c_fallback);
  check int "no rejected batches" rj0 (Obs.count c_rejected);
  check bool "fallback placements = cold placements" true
    (sorted_placements cl = sorted_placements cl_ref)

(* When the cold retry fails too, the batch is rejected: every pre-batch
   placement survives and the whole wave is reported undeployed. *)
let test_rejected_batch_is_transactional () =
  let w = small_workload 32 in
  let n_machines = machines_for w ~headroom:1.25 in
  let ws = waves w.Workload.containers ~n_batches:4 in
  let wave1, wave2 =
    match ws with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "need 2 waves"
  in
  let cl = fresh_cluster w ~n_machines in
  let warm = Aladdin.Aladdin_scheduler.make_warm () in
  ignore (warm.Scheduler.schedule cl wave1);
  let before = sorted_placements cl in
  check bool "wave 1 placed something" true (before <> []);
  let c_rejected = Obs.counter "aladdin.rejected_batches" in
  let rj0 = Obs.count c_rejected in
  Fault.install
    (Fault.make ~solver_step_failure:1.0 ~solver_failure_budget:2 ~seed:7 ());
  let outcome =
    Fun.protect ~finally:Fault.clear (fun () ->
        warm.Scheduler.schedule cl wave2)
  in
  check int "batch rejected" (rj0 + 1) (Obs.count c_rejected);
  check int "whole wave undeployed" (Array.length wave2)
    (List.length outcome.Scheduler.undeployed);
  check int "nothing placed" 0 (List.length outcome.Scheduler.placed);
  check bool "pre-batch placements restored" true
    (sorted_placements cl = before);
  (* the scheduler keeps working once the budget is exhausted *)
  let outcome2 = warm.Scheduler.schedule cl wave2 in
  check bool "recovers after faults stop" true
    (outcome2.Scheduler.placed <> [])

(* ---------- replay under faults ---------- *)

let test_replay_survives_faults () =
  let w = small_workload 33 in
  let n_machines = machines_for w ~headroom:1.3 in
  let c_revoked = Obs.counter "replay.machine_revocations" in
  let rv0 = Obs.count c_revoked in
  Fault.install
    (Fault.make ~machine_revocation:0.8 ~solver_step_failure:0.2 ~seed:42 ());
  let r =
    Fun.protect ~finally:Fault.clear (fun () ->
        Replay.run_workload ~batch:24
          (Aladdin.Aladdin_scheduler.make_warm ())
          w ~n_machines)
  in
  check bool "monotonic elapsed" true (r.Replay.elapsed_s >= 0.);
  check bool "revocations fired" true (Obs.count c_revoked > rv0);
  check int "every container accounted for" r.Replay.n_submitted
    (List.length r.Replay.outcome.Scheduler.placed
    + List.length r.Replay.outcome.Scheduler.undeployed)

let test_replay_monotonic_clock () =
  let w = small_workload 34 in
  let r =
    Replay.run_workload (Aladdin.Aladdin_scheduler.make ()) w ~n_machines:8
  in
  check bool "elapsed non-negative" true (r.Replay.elapsed_s >= 0.);
  check bool "per-container latency finite" true
    (Float.is_finite (Replay.per_container_ms r))

let () =
  Alcotest.run "fault"
    [
      ( "fuzz",
        [
          Alcotest.test_case "parsers never raise" `Quick
            test_parsers_never_raise;
          Alcotest.test_case "solvers never raise" `Quick
            test_solvers_never_raise;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "fallback matches cold" `Quick
            test_fallback_matches_cold;
          Alcotest.test_case "rejected batch is transactional" `Quick
            test_rejected_batch_is_transactional;
        ] );
      ( "replay",
        [
          Alcotest.test_case "survives faults" `Quick
            test_replay_survives_faults;
          Alcotest.test_case "monotonic clock" `Quick
            test_replay_monotonic_clock;
        ] );
    ]
