(* Warm-start regression suite: the incremental scheduling core must be
   behaviourally identical to from-scratch — same placements, batch for
   batch, over a multi-batch replay in every arrival order — and Aladdin
   placements must never violate a constraint, with or without IL/DL. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Workload sizing, batch splitting and fingerprint helpers come from the
   shared [Gen] module. *)
let mincost_exn = Gen.mincost_exn
let fresh_cluster = Gen.fresh_cluster
let machines_for = Gen.machines_for
let waves = Gen.waves
let sorted_placements = Gen.sorted_placements
let ids = Gen.ids

(* ---------- equivalence: warm scheduler == from-scratch scheduler ---------- *)

(* 50-batch replay in all four arrival orders: the warm scheduler (carried
   Search + equivalence classes) must reproduce the from-scratch placement
   sequence exactly, batch for batch. *)
let test_warm_equals_cold_all_orders () =
  let params = { (Alibaba.scaled 0.005) with Alibaba.seed = 7 } in
  let base = Alibaba.generate params in
  let n_machines = machines_for base ~headroom:1.15 in
  List.iter
    (fun (abbrev, order) ->
      if order <> Arrival.As_submitted then begin
        let w = Arrival.apply order base in
        let cold = Aladdin.Aladdin_scheduler.make () in
        let warm = Aladdin.Aladdin_scheduler.make_warm () in
        let cl_cold = fresh_cluster w ~n_machines in
        let cl_warm = fresh_cluster w ~n_machines in
        let batch_no = ref 0 in
        List.iter
          (fun wave ->
            incr batch_no;
            let o_cold = cold.Scheduler.schedule cl_cold wave in
            let o_warm = warm.Scheduler.schedule cl_warm wave in
            let ctx what =
              Printf.sprintf "%s: batch %d: %s" abbrev !batch_no what
            in
            if o_cold.Scheduler.placed <> o_warm.Scheduler.placed then
              Alcotest.fail (ctx "placements differ");
            if
              ids o_cold.Scheduler.undeployed
              <> ids o_warm.Scheduler.undeployed
            then Alcotest.fail (ctx "undeployed differ");
            check int (ctx "migrations") o_cold.Scheduler.migrations
              o_warm.Scheduler.migrations;
            check int (ctx "preemptions") o_cold.Scheduler.preemptions
              o_warm.Scheduler.preemptions;
            if sorted_placements cl_cold <> sorted_placements cl_warm then
              Alcotest.fail (ctx "cluster states diverged"))
          (waves w.Workload.containers ~n_batches:50);
        check bool (abbrev ^ ": replay ran batches") true (!batch_no >= 2)
      end)
    Arrival.all

(* ---------- equivalence: incremental projection == fresh projection ---------- *)

(* Across an evolving cluster, the cached arena's max flow and min cost must
   equal the from-scratch projection's, and the warm min-cost solve must
   equal a cold solve on the same arena. *)
let test_incremental_projection_equals_fresh () =
  let params = { (Alibaba.scaled 0.003) with Alibaba.seed = 11 } in
  let w = Alibaba.generate params in
  let n_machines = machines_for w ~headroom:1.3 in
  let cl = fresh_cluster w ~n_machines in
  let sched = Aladdin.Aladdin_scheduler.make () in
  let cache =
    Aladdin.Flow_graph.projection_cache
      ~machine_cost:(fun m -> 1 + (Machine.id m * 13 mod 97))
      ()
  in
  let warm = Aladdin.Flow_graph.projection_warm cache in
  let batch_no = ref 0 in
  List.iter
    (fun wave ->
      incr batch_no;
      let fg = Aladdin.Flow_graph.build cl wave in
      let g_fresh, s_fresh, t_fresh = Aladdin.Flow_graph.scalar_projection fg in
      let fresh_flow = Flownet.Dinic.run g_fresh ~src:s_fresh ~dst:t_fresh in
      let g, src, dst =
        Aladdin.Flow_graph.scalar_projection_incremental cache fg
      in
      let cold = mincost_exn g ~src ~dst in
      Flownet.Graph.reset_flows g;
      let rewarm = mincost_exn ~warm g ~src ~dst in
      let ctx what = Printf.sprintf "batch %d: %s" !batch_no what in
      check int (ctx "incremental flow = fresh flow") fresh_flow
        cold.Flownet.Mincost.flow;
      check int (ctx "warm flow = cold flow") cold.Flownet.Mincost.flow
        rewarm.Flownet.Mincost.flow;
      check int (ctx "warm cost = cold cost") cold.Flownet.Mincost.cost
        rewarm.Flownet.Mincost.cost;
      let delta = Aladdin.Flow_graph.projection_delta cache in
      if !batch_no = 1 then
        check bool (ctx "first batch rebuilds") true
          delta.Aladdin.Flow_graph.rebuilt
      else begin
        check bool (ctx "later batches reuse the arena") false
          delta.Aladdin.Flow_graph.rebuilt;
        check bool (ctx "fixed arcs reused") true
          (delta.Aladdin.Flow_graph.arcs_reused > 0)
      end;
      (* evolve the cluster so the next batch sees changed free vectors *)
      ignore (sched.Scheduler.schedule cl wave))
    (waves w.Workload.containers ~n_batches:20)

(* ---------- property: placements never violate constraints ---------- *)

(* Over seeded Alibaba workloads, every deployed placement is free of
   anti-affinity violations — whatever the IL/DL setting. *)
let test_no_violations_property () =
  List.iter
    (fun seed ->
      let params = { (Alibaba.scaled 0.002) with Alibaba.seed = seed } in
      let w = Alibaba.generate params in
      let n_machines = machines_for w ~headroom:1.1 in
      List.iter
        (fun (label, options) ->
          let sched = Aladdin.Aladdin_scheduler.make ~options () in
          let r =
            Replay.run ~batch:16 sched ~cluster:(fresh_cluster w ~n_machines)
              ~containers:w.Workload.containers
          in
          let ctx what = Printf.sprintf "seed %d %s: %s" seed label what in
          check int (ctx "tolerated violations") 0
            (List.length r.Replay.outcome.Scheduler.violations);
          check int (ctx "violations in final placement") 0
            (List.length (Cluster.current_violations r.Replay.cluster)))
        [
          ("plain", Aladdin.Aladdin_scheduler.plain);
          ("with_il", Aladdin.Aladdin_scheduler.with_il);
          ("il+dl", Aladdin.Aladdin_scheduler.default_options);
        ])
    [ 3; 17; 42 ]

(* ---------- refresh: per-batch state matches a fresh create ---------- *)

let test_refresh_matches_create_stats () =
  let params = { (Alibaba.scaled 0.002) with Alibaba.seed = 5 } in
  let w = Alibaba.generate params in
  let n_machines = machines_for w ~headroom:1.3 in
  let cl = fresh_cluster w ~n_machines in
  let wave_list = waves w.Workload.containers ~n_batches:10 in
  let first = List.hd wave_list in
  let fg0 = Aladdin.Flow_graph.build cl first in
  let warm_search = Aladdin.Search.create ~eq:true fg0 in
  List.iter
    (fun wave ->
      let fg = Aladdin.Flow_graph.build cl wave in
      Aladdin.Search.refresh warm_search fg;
      let st = Aladdin.Search.stats warm_search in
      check int "refresh zeroes paths_explored" 0
        st.Aladdin.Search.paths_explored;
      check int "refresh zeroes il_skips" 0 st.Aladdin.Search.il_skips;
      check int "refresh zeroes dl_cuts" 0 st.Aladdin.Search.dl_cuts;
      check int "refresh zeroes eq_skips" 0 st.Aladdin.Search.eq_skips;
      let fresh = Aladdin.Search.create fg in
      (* identical machine choice for every container of the batch, and the
         same placements applied to the shared cluster *)
      Array.iter
        (fun c ->
          let a = Aladdin.Search.find_machine warm_search c in
          let b = Aladdin.Search.find_machine fresh c in
          check bool "same machine choice" true (a = b);
          match a with
          | Some mid ->
              (match Cluster.place cl c mid with
              | Ok () -> ()
              | Error _ -> Alcotest.fail "refresh: inadmissible placement");
              Aladdin.Search.note_placement warm_search mid;
              Aladdin.Search.note_placement fresh mid
          | None -> ())
        wave)
    wave_list

let () =
  Alcotest.run "incremental"
    [
      ( "equivalence",
        [
          Alcotest.test_case "warm scheduler = from-scratch (CHP/CLP/CLA/CSA)"
            `Quick test_warm_equals_cold_all_orders;
          Alcotest.test_case "incremental projection = fresh projection"
            `Quick test_incremental_projection_equals_fresh;
          Alcotest.test_case "search refresh = fresh create" `Quick
            test_refresh_matches_create_stats;
        ] );
      ( "properties",
        [
          Alcotest.test_case "no violations with and without IL/DL" `Quick
            test_no_violations_property;
        ] );
    ]
