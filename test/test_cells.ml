(* Differential suite for the sharded scheduling cells: the sharded
   composite must reproduce the unsharded scheduler exactly at one cell,
   be deterministic (and identical between sequential and domain-parallel
   execution) at any cell count, stay audit-clean under adversarial
   partitions and fault injection, and the sharded flow solve must equal
   the global max flow for every registry backend. Also home to the Obs
   multi-domain merge regressions, since this is the multicore suite. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let seeds = [ 3; 17; 42 ]
let cell_counts = [ 1; 2; 4; 8 ]

(* Small racks so even small test clusters have >= 8 of them to shard. *)
let mpr = 4

let fresh w ~n_machines =
  Gen.fresh_cluster ~machines_per_rack:mpr ~racks_per_group:2 w ~n_machines

let audit_clean ctx cl ~batch ~outcome =
  match Audit.check cl ~batch ~outcome with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%s: audit violation: %s" ctx
        (Format.asprintf "%a" Audit.pp_violation v)

(* Replay every wave, asserting the audit invariants after each batch, and
   return one fingerprint per batch plus the outcome summaries. *)
let replay ?(audit = true) sched cl waves_list =
  List.mapi
    (fun i wave ->
      let o = sched.Scheduler.schedule cl wave in
      let n_placed = List.length o.Scheduler.placed in
      let n_undep = List.length o.Scheduler.undeployed in
      check int
        (Printf.sprintf "batch %d: placed + undeployed = batch" i)
        (Array.length wave) (n_placed + n_undep);
      if audit then
        audit_clean (Printf.sprintf "batch %d" i) cl ~batch:wave ~outcome:o;
      (Gen.placement_fingerprint cl, o))
    waves_list

let case seed =
  let rng = Rng.create seed in
  let w = Gen.random_workload rng in
  let n_machines = Gen.machines_for w ~headroom:1.2 in
  let batches = Gen.random_waves rng w.Workload.containers ~max_batch:12 in
  (w, n_machines, batches)

let total_undeployed outs =
  List.fold_left
    (fun acc (_, o) -> acc + List.length o.Scheduler.undeployed)
    0 outs

(* ---------- one cell == the unsharded scheduler, exactly ---------- *)

let test_one_cell_equals_unsharded () =
  List.iter
    (fun seed ->
      let w, n_machines, batches = case seed in
      let cl_ref = fresh w ~n_machines in
      let cl_cells = fresh w ~n_machines in
      let reference = Aladdin.Aladdin_scheduler.make_warm () in
      let cells =
        Aladdin.Cells_scheduler.make ~cells:1 ~mode:`Sequential ()
      in
      let ref_run = replay reference cl_ref batches in
      let cells_run = replay cells cl_cells batches in
      List.iteri
        (fun i ((fp_ref, o_ref), (fp_cells, o_cells)) ->
          let ctx what = Printf.sprintf "seed %d batch %d: %s" seed i what in
          if o_ref.Scheduler.placed <> o_cells.Scheduler.placed then
            Alcotest.fail (ctx "placements differ");
          if
            Gen.ids o_ref.Scheduler.undeployed
            <> Gen.ids o_cells.Scheduler.undeployed
          then Alcotest.fail (ctx "undeployed differ");
          check int (ctx "migrations") o_ref.Scheduler.migrations
            o_cells.Scheduler.migrations;
          check int (ctx "preemptions") o_ref.Scheduler.preemptions
            o_cells.Scheduler.preemptions;
          check bool (ctx "fingerprints equal") true (fp_ref = fp_cells))
        (List.combine ref_run cells_run))
    seeds

(* ---------- determinism and sequential == domains ---------- *)

let test_deterministic_and_mode_independent () =
  List.iter
    (fun seed ->
      List.iter
        (fun n_cells ->
          let run mode =
            let w, n_machines, batches = case seed in
            let cl = fresh w ~n_machines in
            let sched = Aladdin.Cells_scheduler.make ~cells:n_cells ~mode () in
            List.map fst (replay sched cl batches)
          in
          let a = run `Sequential in
          let b = run `Sequential in
          let c = run `Domains in
          let ctx what = Printf.sprintf "seed %d cells %d: %s" seed n_cells what in
          check bool (ctx "two sequential runs identical") true (a = b);
          check bool (ctx "domains run = sequential run") true (a = c))
        cell_counts)
    [ 3; 17 ]

(* ---------- bounded quality delta vs the unsharded scheduler ---------- *)

(* Sharding may strand capacity inside cells; the global fix-up phase is
   there to claw it back. The guarantee we pin: over a whole replay, the
   sharded composite leaves at most 10% of the workload (plus a constant
   slack) more undeployed than the unsharded scheduler — for every cell
   count, on every seed. *)
let test_bounded_undeployed_delta () =
  List.iter
    (fun seed ->
      let w, n_machines, batches = case seed in
      let cl_ref = fresh w ~n_machines in
      let reference = Aladdin.Aladdin_scheduler.make_warm () in
      let ref_undep = total_undeployed (replay reference cl_ref batches) in
      let n_total = Array.length w.Workload.containers in
      let bound = ref_undep + 3 + (n_total / 10) in
      List.iter
        (fun n_cells ->
          let cl = fresh w ~n_machines in
          let sched =
            Aladdin.Cells_scheduler.make ~cells:n_cells ~mode:`Sequential ()
          in
          let undep = total_undeployed (replay sched cl batches) in
          if undep > bound then
            Alcotest.failf
              "seed %d cells %d: %d undeployed vs %d unsharded (bound %d)"
              seed n_cells undep ref_undep bound)
        cell_counts)
    seeds

(* ---------- sharded flow == global flow, per backend ---------- *)

let test_sharded_flow_equals_global () =
  List.iter
    (fun seed ->
      let w, n_machines, batches = case seed in
      let cl = fresh w ~n_machines in
      (* schedule a prefix so later solves see a partially-filled cluster *)
      let sched = Aladdin.Aladdin_scheduler.make () in
      (match batches with
      | first :: _ -> ignore (sched.Scheduler.schedule cl first)
      | [] -> ());
      let batch = Array.concat (List.tl batches) in
      List.iter
        (fun n_cells ->
          let comp =
            Aladdin.Cells_scheduler.create ~cells:n_cells ~mode:`Sequential ()
          in
          let coord = Aladdin.Cells_scheduler.coordinator comp in
          List.iter
            (fun backend ->
              let name = Flownet.Registry.name backend in
              let fg = Aladdin.Flow_graph.build cl batch in
              let g, src, dst = Aladdin.Flow_graph.scalar_projection fg in
              let global = Gen.solve_exn backend g ~src ~dst in
              let sharded =
                match Aladdin.Cells_solver.solve ~backend coord cl batch with
                | Ok r -> r
                | Error e ->
                    Alcotest.failf "cells solve failed: %s"
                      (Aladdin.Aladdin_error.to_string e)
              in
              check int
                (Printf.sprintf "seed %d cells %d %s: sharded flow = global"
                   seed n_cells name)
                global.Flownet.Mincost.flow
                sharded.Aladdin.Cells_solver.total_flow)
            (Gen.registered ()))
        cell_counts)
    seeds

(* ---------- adversarial partitions ---------- *)

(* Every cell but one is fully offline: assignment must funnel the whole
   workload into the live cell, stay audit-clean, and resync cleanly when
   the machines come back. *)
let test_all_but_one_cell_offline () =
  let rng = Rng.create 99 in
  let w = Gen.random_workload ~n_apps:6 rng in
  let n_machines = 8 * mpr in
  let cl = fresh w ~n_machines in
  (* cells = 4 -> cell 0 owns machines [0, 2*mpr) *)
  let live = 2 * mpr in
  for m = live to n_machines - 1 do
    Cluster.set_offline cl m true
  done;
  let sched = Aladdin.Cells_scheduler.make ~cells:4 ~mode:`Sequential () in
  let batches = Gen.random_waves rng w.Workload.containers ~max_batch:10 in
  List.iteri
    (fun i wave ->
      let o = sched.Scheduler.schedule cl wave in
      audit_clean (Printf.sprintf "offline batch %d" i) cl ~batch:wave
        ~outcome:o;
      List.iter
        (fun (_, mid) ->
          if mid >= live then
            Alcotest.failf "batch %d: placement on offline machine %d" i mid)
        o.Scheduler.placed)
    batches;
  (* bring the dark cells back; the version bump must force a resync and
     the next batches may use the whole cluster again *)
  let resyncs = Obs.counter "cells.resyncs" in
  let before = Obs.count resyncs in
  for m = live to n_machines - 1 do
    Cluster.set_offline cl m false
  done;
  let extra_rng = Rng.create 100 in
  let w2 = Gen.random_workload ~n_apps:4 extra_rng in
  List.iteri
    (fun i wave ->
      let o = sched.Scheduler.schedule cl wave in
      audit_clean (Printf.sprintf "revived batch %d" i) cl ~batch:wave
        ~outcome:o)
    (Gen.waves w2.Workload.containers ~n_batches:3);
  check bool "resync counted after out-of-band recovery" true
    (Obs.count resyncs > before)

(* A clique of mutually anti-affine apps spanning every cell pair: no
   tolerated violation, none in the final cluster, placements spread over
   more than one cell. *)
let test_cross_cell_anti_affinity_clique () =
  let n_apps = 8 in
  let apps =
    Array.init n_apps (fun i ->
        Application.make ~id:i ~n_containers:4
          ~demand:(Resource.make ~cpu:2. ~mem_gb:4.) ~anti_affinity_within:true
          ~anti_affinity_across:
            (List.filter (fun j -> j <> i) (List.init n_apps Fun.id))
          ())
  in
  let containers =
    Array.of_list
      (List.concat_map
         (fun (a : Application.t) ->
           Application.containers a ~first_id:0 ~first_arrival:0)
         (Array.to_list apps))
  in
  let containers =
    Array.mapi
      (fun i (c : Container.t) -> { c with Container.id = i; arrival = i })
      containers
  in
  let w =
    Workload.make ~apps ~containers
      ~machine_capacity:(Resource.make ~cpu:16. ~mem_gb:32.)
  in
  (* one machine per container needed: every pair of containers conflicts *)
  let n_machines = Array.length containers + mpr in
  let cl = fresh w ~n_machines in
  let sched = Aladdin.Cells_scheduler.make ~cells:4 ~mode:`Domains () in
  List.iteri
    (fun i wave ->
      let o = sched.Scheduler.schedule cl wave in
      check int
        (Printf.sprintf "clique batch %d: tolerated violations" i)
        0
        (List.length o.Scheduler.violations);
      audit_clean (Printf.sprintf "clique batch %d" i) cl ~batch:wave
        ~outcome:o)
    (Gen.waves containers ~n_batches:4);
  check int "clique: no violations in final placement" 0
    (List.length (Cluster.current_violations cl));
  let cells_used =
    List.sort_uniq compare
      (List.map (fun (_, mid) -> mid / (2 * mpr)) (Cluster.placements cl))
  in
  check bool "clique: placements span multiple cells" true
    (List.length cells_used > 1)

(* A cell whose machines are all saturated before the batch: its
   sub-batches must overflow to other cells (assignment) or the fix-up
   phase, never fail. *)
let test_cell_with_no_feasible_machines () =
  let rng = Rng.create 7 in
  let w0 = Gen.random_workload ~n_apps:6 rng in
  (* the filler app must be in the constraint set for place to accept it *)
  let filler_app =
    Application.make
      ~id:(Array.length w0.Workload.apps)
      ~n_containers:(2 * mpr)
      ~demand:(Resource.make ~cpu:16. ~mem_gb:32.) ~anti_affinity_within:false
      ()
  in
  let w =
    Workload.make
      ~apps:(Array.append w0.Workload.apps [| filler_app |])
      ~containers:w0.Workload.containers
      ~machine_capacity:w0.Workload.machine_capacity
  in
  let n_machines = 8 * mpr in
  let cl = fresh w ~n_machines in
  (* saturate cell 0 (machines [0, 2*mpr) under cells=4) with filler *)
  List.iteri
    (fun i (c : Container.t) ->
      let c = { c with Container.id = 100_000 + i } in
      match Cluster.place ~force:true cl c i with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "filler %d rejected" i)
    (Application.containers filler_app ~first_id:0 ~first_arrival:0);
  let sched = Aladdin.Cells_scheduler.make ~cells:4 ~mode:`Sequential () in
  List.iteri
    (fun i wave ->
      let o = sched.Scheduler.schedule cl wave in
      audit_clean (Printf.sprintf "saturated batch %d" i) cl ~batch:wave
        ~outcome:o;
      List.iter
        (fun (_, mid) ->
          if mid < 2 * mpr then
            Alcotest.failf "batch %d: placement on saturated machine %d" i mid)
        o.Scheduler.placed)
    (Gen.random_waves rng w.Workload.containers ~max_batch:8)

(* ---------- fault injection and deadline stress ---------- *)

(* A deterministic injection (rate 1, budget 1) fires on the very first
   coordinator probe: batch 0 is rejected whole, the cluster is untouched,
   and every later batch proceeds normally — identically in sequential and
   domain-parallel mode. *)
let test_fault_rejects_first_batch_identically () =
  let run mode =
    Fault.install
      (Fault.make ~solver_step_failure:1.0 ~solver_failure_budget:1 ~seed:5 ());
    Fun.protect ~finally:Fault.clear (fun () ->
        let rng = Rng.create 21 in
        let w = Gen.random_workload ~n_apps:8 rng in
        let n_machines = Gen.machines_for w ~headroom:1.2 in
        let cl = fresh w ~n_machines in
        let sched = Aladdin.Cells_scheduler.make ~cells:4 ~mode () in
        let batches = Gen.random_waves rng w.Workload.containers ~max_batch:10 in
        let outs = replay sched cl batches in
        (match (batches, outs) with
        | first :: _, (_, o0) :: _ ->
            check int "batch 0 rejected whole" (Array.length first)
              (List.length o0.Scheduler.undeployed)
        | _ -> Alcotest.fail "no batches generated");
        List.map fst outs)
  in
  let rejected = Obs.counter "cells.rejected_batches" in
  let before = Obs.count rejected in
  let seq = run `Sequential in
  check int "sequential: one rejected batch counted" (before + 1)
    (Obs.count rejected);
  let dom = run `Domains in
  check int "domains: one rejected batch counted" (before + 2)
    (Obs.count rejected);
  check bool "fault run: domains fingerprints = sequential" true (seq = dom)

(* A solver-step fault tripping inside a per-cell solve must come back as
   a typed [Error] from [Cells_solver.solve] — the old path [failwith]'d
   through the worker pool, killing every domain instead of degrading. *)
let test_cells_solver_fault_is_typed_error () =
  let rng = Rng.create 33 in
  let w = Gen.random_workload ~n_apps:6 rng in
  let n_machines = Gen.machines_for w ~headroom:1.3 in
  let cl = fresh w ~n_machines in
  let comp = Aladdin.Cells_scheduler.create ~cells:4 ~mode:`Sequential () in
  let coord = Aladdin.Cells_scheduler.coordinator comp in
  let batch = w.Workload.containers in
  let errors = Obs.counter "cells.solver.errors" in
  let before = Obs.count errors in
  Fault.install
    (Fault.make ~solver_step_failure:1.0 ~solver_failure_budget:1 ~seed:7 ());
  let r =
    Fun.protect ~finally:Fault.clear (fun () ->
        Aladdin.Cells_solver.solve coord cl batch)
  in
  (match r with
  | Error (Aladdin.Aladdin_error.Injected_fault _) -> ()
  | Error e ->
      Alcotest.failf "expected Injected_fault, got %s"
        (Aladdin.Aladdin_error.to_string e)
  | Ok _ -> Alcotest.fail "fault did not trip");
  check int "cells.solver.errors counted" (before + 1) (Obs.count errors);
  (* harness cleared: the same solve must now run clean *)
  match Aladdin.Cells_solver.solve coord cl batch with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "clean solve failed: %s"
        (Aladdin.Aladdin_error.to_string e)

(* An ambient step deadline expiring inside a cell solve must propagate
   out of the coordinator with the outer cluster untouched; the same batch
   then succeeds once the deadline is lifted. *)
let test_deadline_expiry_leaves_outer_untouched () =
  let rng = Rng.create 31 in
  let w = Gen.random_workload ~n_apps:8 rng in
  let n_machines = Gen.machines_for w ~headroom:1.2 in
  let cl = fresh w ~n_machines in
  let sched = Aladdin.Cells_scheduler.make ~cells:4 ~mode:`Domains () in
  let batches = Gen.waves w.Workload.containers ~n_batches:4 in
  let first, second =
    match batches with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "waves"
  in
  ignore (sched.Scheduler.schedule cl first);
  let fp_before = Gen.placement_fingerprint cl in
  let expired =
    try
      Flownet.Deadline.with_ambient
        (Flownet.Deadline.make ~steps:3 ())
        (fun () -> ignore (sched.Scheduler.schedule cl second));
      false
    with Flownet.Deadline.Expired _ -> true
  in
  check bool "tiny step budget expires inside a cell" true expired;
  check bool "outer cluster untouched after expiry" true
    (Gen.placement_fingerprint cl = fp_before);
  let o = sched.Scheduler.schedule cl second in
  audit_clean "post-expiry batch" cl ~batch:second ~outcome:o

(* ---------- Obs: per-domain shards never lose updates ---------- *)

let test_obs_no_lost_updates_across_domains () =
  let c = Obs.counter "test.cells.mc_counter" in
  let h = Obs.histogram "test.cells.mc_hist" in
  let n = 100_000 in
  let before_c = Obs.count c in
  let before_h = (Obs.histogram_stats h).Obs.samples in
  let work () =
    for i = 1 to n do
      Obs.incr c;
      if i mod 100 = 0 then Obs.observe_ns h (Int64.of_int i)
    done
  in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  work ();
  Domain.join d1;
  Domain.join d2;
  check int "counter merged across 3 domains" (before_c + (3 * n))
    (Obs.count c);
  check int "histogram samples merged across 3 domains"
    (before_h + (3 * (n / 100)))
    (Obs.histogram_stats h).Obs.samples

(* The same property through the worker pool the coordinator uses. *)
let test_obs_counts_through_pool () =
  let c = Obs.counter "test.cells.pool_counter" in
  let before = Obs.count c in
  let pool = Cells.Pool.create ~workers:3 in
  Fun.protect
    ~finally:(fun () -> Cells.Pool.shutdown pool)
    (fun () ->
      let tasks =
        Array.init 16 (fun _ () ->
            for _ = 1 to 10_000 do
              Obs.incr c
            done)
      in
      let results = Cells.Pool.run pool tasks in
      Array.iter
        (function Ok () -> () | Error e -> raise e)
        results);
  check int "pool tasks' increments all visible" (before + 160_000)
    (Obs.count c)

let () =
  Alcotest.run "cells"
    [
      ( "equivalence",
        [
          Alcotest.test_case "one cell = unsharded scheduler" `Quick
            test_one_cell_equals_unsharded;
          Alcotest.test_case "deterministic; domains = sequential" `Quick
            test_deterministic_and_mode_independent;
          Alcotest.test_case "bounded undeployed delta" `Quick
            test_bounded_undeployed_delta;
        ] );
      ( "solver",
        [
          Alcotest.test_case "sharded flow = global flow (all backends)"
            `Quick test_sharded_flow_equals_global;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "all but one cell offline" `Quick
            test_all_but_one_cell_offline;
          Alcotest.test_case "cross-cell anti-affinity clique" `Quick
            test_cross_cell_anti_affinity_clique;
          Alcotest.test_case "cell with no feasible machines" `Quick
            test_cell_with_no_feasible_machines;
        ] );
      ( "stress",
        [
          Alcotest.test_case "fault rejects first batch, both modes" `Quick
            test_fault_rejects_first_batch_identically;
          Alcotest.test_case "cells solver fault is a typed error" `Quick
            test_cells_solver_fault_is_typed_error;
          Alcotest.test_case "deadline expiry leaves outer untouched" `Quick
            test_deadline_expiry_leaves_outer_untouched;
        ] );
      ( "obs",
        [
          Alcotest.test_case "no lost counter updates across domains" `Quick
            test_obs_no_lost_updates_across_domains;
          Alcotest.test_case "counts through the worker pool" `Quick
            test_obs_counts_through_pool;
        ] );
    ]
