(* Drill suite for the cell supervision layer: exception safety and timed
   joins in the domain pool, quarantine with machine redistribution and
   half-open reinstatement in the supervised coordinator, join-timeout
   abandonment of a stalled domain, and Desync batch retry after mirror
   corruption. Every drill is deterministic: faults come from the seeded
   side-stream with explicit cell targets and budgets. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let count name = Obs.count (Obs.counter name)

(* ---------- Pool regressions ---------- *)

let test_pool_survives_raising_task () =
  let p = Cells.Pool.create ~workers:2 in
  (match
     Cells.Pool.run p
       [| (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) |]
   with
  | [| Ok 1; Error (Failure _); Ok 3 |] -> ()
  | _ -> Alcotest.fail "unexpected results from a raising job");
  (* a raising task must not poison the pool for the next job *)
  (match Cells.Pool.run p [| (fun () -> 7) |] with
  | [| Ok 7 |] -> ()
  | _ -> Alcotest.fail "pool unusable after a raising task");
  check bool "not abandoned" false (Cells.Pool.abandoned p);
  Cells.Pool.shutdown p

let test_pool_inline_never_times_out () =
  let p = Cells.Pool.create ~workers:0 in
  (match
     Cells.Pool.run_within p ~timeout_s:0.001
       [| (fun () -> Unix.sleepf 0.01; 5) |]
   with
  | `Done [| Ok 5 |] -> ()
  | _ -> Alcotest.fail "workers=0 must run inline to completion");
  Cells.Pool.shutdown p

let test_pool_timed_join_abandons () =
  let p = Cells.Pool.create ~workers:2 in
  (match
     Cells.Pool.run_within p ~timeout_s:0.05
       [| (fun () -> 1); (fun () -> Unix.sleepf 0.4; 2) |]
   with
  | `Timed_out partial ->
      check int "partial results per task" 2 (Array.length partial);
      (match partial.(0) with
      | Some (Ok 1) -> ()
      | _ -> Alcotest.fail "finished task must be harvested")
  | `Done _ -> Alcotest.fail "join must time out on the stalled task");
  check bool "pool abandoned" true (Cells.Pool.abandoned p);
  (match Cells.Pool.run p [| (fun () -> 1) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "abandoned pool must refuse further work");
  (* a replacement pool works while the straggler finishes on its own *)
  let p2 = Cells.Pool.create ~workers:2 in
  (match Cells.Pool.run p2 [| (fun () -> 9) |] with
  | [| Ok 9 |] -> ()
  | _ -> Alcotest.fail "replacement pool must work");
  Cells.Pool.shutdown p2;
  (* shutdown joins the straggler instead of leaking the domain *)
  Cells.Pool.shutdown p

(* ---------- supervised coordinator drills ---------- *)

let mpr = 4

let fresh w ~n_machines =
  Gen.fresh_cluster ~machines_per_rack:mpr ~racks_per_group:2 w ~n_machines

let chunks ~size arr =
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min size (n - i) in
      go (i + len) (Array.sub arr i len :: acc)
  in
  go 0 []

let drill_workload seed =
  Alibaba.generate { (Alibaba.scaled 0.004) with Alibaba.seed = seed }

(* Run every wave through a supervised cells stack, asserting each batch
   stays fully accounted, and return (placed, undeployed) totals plus the
   final placement fingerprint. *)
let run_waves ~mode ~supervise w ~n_machines waves =
  let comp =
    Aladdin.Cells_scheduler.create ~cells:4 ~mode ?supervise ()
  in
  let sched = Aladdin.Cells_scheduler.scheduler comp in
  let cl = fresh w ~n_machines in
  let totals =
    List.fold_left
      (fun (p, u) wave ->
        let o = sched.Scheduler.schedule cl wave in
        check int "batch fully accounted" (Array.length wave)
          (List.length o.Scheduler.placed
          + List.length o.Scheduler.undeployed);
        (p + List.length o.Scheduler.placed,
         u + List.length o.Scheduler.undeployed))
      (0, 0) waves
  in
  Aladdin.Cells_scheduler.shutdown comp;
  (totals, Gen.placement_fingerprint cl)

let sup_cfg =
  {
    Cells.Supervisor.default with
    Cells.Supervisor.max_retries = 1;
    failure_threshold = 2;
    cooldown = 2;
  }

let test_supervision_neutral_without_faults () =
  Fault.clear ();
  let w = drill_workload 19 in
  let n_machines = Gen.machines_for w ~headroom:1.2 in
  let waves = chunks ~size:16 w.Workload.containers in
  let _, fp_plain =
    run_waves ~mode:`Sequential ~supervise:None w ~n_machines waves
  in
  let _, fp_sup =
    run_waves ~mode:`Sequential ~supervise:(Some sup_cfg) w ~n_machines waves
  in
  check bool "supervision is behaviour-neutral without faults" true
    (fp_plain = fp_sup)

(* A cell crashing on every probe: retried, then quarantined at the
   failure threshold (machines resliced to its neighbours), then — once
   its fault budget is exhausted and the cooldown has elapsed — probed
   half-open and reinstated. The batches meanwhile stay accounted and the
   undeployed overhead stays bounded. *)
let test_quarantine_redistributes_and_reinstates () =
  Fault.clear ();
  let w = drill_workload 21 in
  let n_machines = Gen.machines_for w ~headroom:1.3 in
  let waves = chunks ~size:16 w.Workload.containers in
  if List.length waves < 6 then Alcotest.fail "drill needs >= 6 batches";
  let (placed_h, undep_h), _ =
    run_waves ~mode:`Sequential ~supervise:(Some sup_cfg) w ~n_machines waves
  in
  let q0 = count "cells.supervisor.quarantines" in
  let r0 = count "cells.supervisor.reinstatements" in
  let m0 = count "cells.supervisor.redistributed_machines" in
  let f0 = count "cells.supervisor.retries" in
  Fault.install
    (Fault.make ~cell_crash:1.0 ~cell_targets:[ 1 ] ~cell_fault_budget:4
       ~seed:5 ());
  let (placed_f, undep_f), _ =
    Fun.protect ~finally:Fault.clear (fun () ->
        run_waves ~mode:`Sequential ~supervise:(Some sup_cfg) w ~n_machines
          waves)
  in
  check bool "crashing cell retried" true
    (count "cells.supervisor.retries" > f0);
  check bool "quarantine tripped" true
    (count "cells.supervisor.quarantines" > q0);
  check bool "machines redistributed to neighbours" true
    (count "cells.supervisor.redistributed_machines" > m0);
  check bool "healthy again: half-open probe reinstated the cell" true
    (count "cells.supervisor.reinstatements" > r0);
  check bool "work still placed under quarantine" true (placed_f > 0);
  check bool "undeployed overhead bounded" true
    (undep_f - undep_h <= 2 * 16);
  check int "no work lost" (placed_h + undep_h) (placed_f + undep_f)

(* A domain stalling past the join timeout is abandoned: the batch
   completes without it (its sub-batch rides phase-2 fix-up), the pool is
   replaced, and later batches run normally. *)
let test_stalled_domain_abandoned () =
  Fault.clear ();
  let w = drill_workload 23 in
  let n_machines = Gen.machines_for w ~headroom:1.3 in
  let waves = chunks ~size:16 w.Workload.containers in
  let s0 = count "cells.supervisor.stalls" in
  Fault.install
    (Fault.make ~cell_stall:1.0 ~cell_stall_s:0.3 ~cell_targets:[ 2 ]
       ~cell_fault_budget:1 ~seed:7 ());
  let (placed, _), _ =
    Fun.protect ~finally:Fault.clear (fun () ->
        run_waves ~mode:`Domains
          ~supervise:
            (Some { sup_cfg with Cells.Supervisor.join_timeout_ms = 40. })
          w ~n_machines waves)
  in
  check bool "stalled domain abandoned at the join timeout" true
    (count "cells.supervisor.stalls" > s0);
  check bool "batches kept placing work" true (placed > 0)

(* Mirror corruption surfaces as a phase-2 Desync: supervised stacks
   retry the batch instead of rejecting it. *)
let test_corruption_retries_batch () =
  Fault.clear ();
  let w = drill_workload 25 in
  let n_machines = Gen.machines_for w ~headroom:1.3 in
  let waves = chunks ~size:16 w.Workload.containers in
  let d0 = count "cells.desyncs" in
  let r0 = count "cells.batch_retries" in
  let rej0 = count "cells.rejected_batches" in
  Fault.install
    (Fault.make ~cell_corrupt:1.0 ~cell_targets:[ 0 ] ~cell_fault_budget:1
       ~seed:9 ());
  let (placed, _), _ =
    Fun.protect ~finally:Fault.clear (fun () ->
        run_waves ~mode:`Sequential ~supervise:(Some sup_cfg) w ~n_machines
          waves)
  in
  check bool "corruption desynced phase 2" true (count "cells.desyncs" > d0);
  check bool "batch retried" true (count "cells.batch_retries" > r0);
  check int "no batch rejected" rej0 (count "cells.rejected_batches");
  check bool "retried batch placed work" true (placed > 0)

let () =
  Alcotest.run "supervisor"
    [
      ( "pool",
        [
          Alcotest.test_case "raising task leaves the pool reusable" `Quick
            test_pool_survives_raising_task;
          Alcotest.test_case "inline pool never times out" `Quick
            test_pool_inline_never_times_out;
          Alcotest.test_case "timed join abandons a stalled domain" `Quick
            test_pool_timed_join_abandons;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "behaviour-neutral without faults" `Quick
            test_supervision_neutral_without_faults;
          Alcotest.test_case "quarantine, redistribution, reinstatement"
            `Quick test_quarantine_redistributes_and_reinstates;
          Alcotest.test_case "stalled domain abandoned at join timeout"
            `Quick test_stalled_domain_abandoned;
          Alcotest.test_case "mirror corruption retries the batch" `Quick
            test_corruption_retries_batch;
        ] );
    ]
