(* Tests for the Aladdin core: priority weights (Eq. 3-5), the tiered flow
   graph, Algorithm 1's search with IL/DL, migration & preemption (Fig. 3
   and Fig. 7), and the end-to-end scheduler invariants. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let cap32 = Resource.cpu_only 32.

let mk ?(id = 0) ?(app = 0) ?(priority = 0) ?(arrival = 0) cpu =
  Container.make ~id ~app ~demand:(Resource.cpu_only cpu) ~priority ~arrival

let cluster_of apps ~n_machines ~machine_cpu =
  let topo =
    Topology.homogeneous ~machines_per_rack:2 ~racks_per_group:2 ~n_machines
      ~capacity:(Resource.cpu_only machine_cpu) ()
  in
  Cluster.create topo ~constraints:(Constraint_set.of_apps apps)

(* ---------- weights ---------- *)

let test_weights_eq5_guarantee () =
  let batch =
    [| mk ~id:0 ~priority:0 16.; mk ~id:1 ~priority:1 0.5; mk ~id:2 ~priority:2 1. |]
  in
  let w = Aladdin.Weights.compute batch ~capacity:cap32 in
  check bool "Eq.5 holds" true (Aladdin.Weights.satisfies_eq5 w batch);
  check int "lowest weight is 1" 1 (Aladdin.Weights.weight w ~priority:0);
  check bool "monotone" true
    (Aladdin.Weights.weight w ~priority:2 > Aladdin.Weights.weight w ~priority:1)

let test_weights_fixed_base () =
  let batch = [| mk ~id:0 ~priority:0 1.; mk ~id:1 ~priority:1 1.; mk ~id:2 ~priority:2 1. |] in
  let w = Aladdin.Weights.fixed ~base:16 batch ~capacity:cap32 in
  check int "w0" 1 (Aladdin.Weights.weight w ~priority:0);
  check int "w1" 16 (Aladdin.Weights.weight w ~priority:1);
  check int "w2" 256 (Aladdin.Weights.weight w ~priority:2);
  Alcotest.check_raises "base too small"
    (Invalid_argument "Weights.fixed: base must be >= 2") (fun () ->
      ignore (Aladdin.Weights.fixed ~base:1 batch ~capacity:cap32))

let test_weights_magnitude () =
  let w = Aladdin.Weights.compute [| mk 16. |] ~capacity:cap32 in
  check int "16 of 32 cpu = 500 per-mille" 500
    (Aladdin.Weights.magnitude w (mk 16.));
  check bool "tiny demand still >= 1" true
    (Aladdin.Weights.magnitude w (mk 0.001) >= 1)

let prop_weights_eq5_random =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (pair (int_range 0 3) (oneofl [ 0.5; 1.; 2.; 4.; 8.; 16. ])))
  in
  QCheck.Test.make ~count:300 ~name:"Eq.5 guarantee on random batches"
    (QCheck.make gen) (fun specs ->
      let batch =
        Array.of_list
          (List.mapi (fun i (p, cpu) -> mk ~id:i ~priority:p cpu) specs)
      in
      let w = Aladdin.Weights.compute batch ~capacity:cap32 in
      Aladdin.Weights.satisfies_eq5 w batch)

(* ---------- flow graph ---------- *)

let test_flow_graph_edges () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:4 ~demand:(Resource.cpu_only 1.) ();
      Application.make ~id:1 ~n_containers:2 ~demand:(Resource.cpu_only 2.) ();
    |]
  in
  let cl = cluster_of apps ~n_machines:8 ~machine_cpu:32. in
  let batch =
    Array.append
      (Array.init 4 (fun i -> mk ~id:i ~app:0 1.))
      (Array.init 2 (fun i -> mk ~id:(4 + i) ~app:1 2.))
  in
  let fg = Aladdin.Flow_graph.build cl batch in
  Alcotest.(check (list int)) "apps" [ 0; 1 ] (Aladdin.Flow_graph.app_ids fg);
  Alcotest.(check (list int)) "containers of app 0" [ 0; 1; 2; 3 ]
    (Aladdin.Flow_graph.container_indices_of_app fg 0);
  (* 8 machines / 2 per rack / 2 racks per group: 4 racks, 2 groups *)
  check int "vertices" (2 + 6 + 2 + 2 + 4 + 8) (Aladdin.Flow_graph.n_vertices fg);
  check bool "fewer edges than naive" true
    (Aladdin.Flow_graph.n_edges fg < Aladdin.Flow_graph.naive_edges fg + 8 * 6);
  check int "naive" 48 (Aladdin.Flow_graph.naive_edges fg)

let test_flow_graph_projection () =
  let apps =
    [| Application.make ~id:0 ~n_containers:3 ~demand:(Resource.cpu_only 16.) () |]
  in
  let cl = cluster_of apps ~n_machines:2 ~machine_cpu:32. in
  let batch = Array.init 3 (fun i -> mk ~id:i ~app:0 16.) in
  let fg = Aladdin.Flow_graph.build cl batch in
  let g, src, sink = Aladdin.Flow_graph.scalar_projection fg in
  let max_flow = Flownet.Dinic.run g ~src ~dst:sink in
  (* two machines of 32 cap the flow at 64k millis = 64000; the batch only
     supplies 48k *)
  check int "projection max flow = min(supply, capacity)" 48_000 max_flow

(* ---------- search: IL & DL ---------- *)

let one_app_cluster () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:8 ~demand:(Resource.cpu_only 8.)
        ~anti_affinity_within:true ();
      Application.make ~id:1 ~n_containers:8 ~demand:(Resource.cpu_only 4.) ();
    |]
  in
  cluster_of apps ~n_machines:4 ~machine_cpu:32.

let test_search_finds_and_respects_blacklist () =
  let cl = one_app_cluster () in
  let batch = [| mk ~id:0 ~app:0 8.; mk ~id:1 ~app:0 8. |] in
  let fg = Aladdin.Flow_graph.build cl batch in
  let s = Aladdin.Search.create fg in
  (match Aladdin.Search.find_machine s batch.(0) with
  | Some mid ->
      Alcotest.(check bool) "place" true (Cluster.place cl batch.(0) mid = Ok ());
      Aladdin.Search.note_placement s mid;
      (match Aladdin.Search.find_machine s batch.(1) with
      | Some mid2 -> check bool "sibling on another machine" true (mid2 <> mid)
      | None -> Alcotest.fail "second machine expected")
  | None -> Alcotest.fail "machine expected")

let test_search_dl_cuts_paths () =
  let cl = one_app_cluster () in
  let batch = [| mk ~id:0 ~app:1 4. |] in
  let fg = Aladdin.Flow_graph.build cl batch in
  let with_dl = Aladdin.Search.create ~dl:true fg in
  ignore (Aladdin.Search.find_machine with_dl batch.(0));
  let without_dl = Aladdin.Search.create ~dl:false fg in
  ignore (Aladdin.Search.find_machine without_dl batch.(0));
  check bool "DL explores fewer paths" true
    ((Aladdin.Search.stats with_dl).Aladdin.Search.paths_explored
    < (Aladdin.Search.stats without_dl).Aladdin.Search.paths_explored)

let test_search_il_skips_siblings () =
  (* app 0 demands more than any machine: first container fails everywhere,
     siblings must be skipped via the app-level cache. *)
  let apps =
    [| Application.make ~id:0 ~n_containers:3 ~demand:(Resource.cpu_only 64.) () |]
  in
  let cl = cluster_of apps ~n_machines:4 ~machine_cpu:32. in
  let batch = Array.init 3 (fun i -> mk ~id:i ~app:0 64.) in
  let fg = Aladdin.Flow_graph.build cl batch in
  let s = Aladdin.Search.create ~il:true fg in
  Array.iter (fun c -> ignore (Aladdin.Search.find_machine s c)) batch;
  let st = Aladdin.Search.stats s in
  check int "only the first sibling scanned" 4 st.Aladdin.Search.paths_explored;
  check bool "il skips recorded" true (st.Aladdin.Search.il_skips >= 2)

let test_search_parks_dead_machines_and_revives () =
  (* all machines full: the search parks them; invalidate revives. *)
  let apps =
    [| Application.make ~id:0 ~n_containers:16 ~demand:(Resource.cpu_only 8.) () |]
  in
  let cl = cluster_of apps ~n_machines:2 ~machine_cpu:32. in
  for i = 0 to 3 do
    ignore (Cluster.place cl (mk ~id:i ~app:0 8.) 0);
    ignore (Cluster.place cl (mk ~id:(10 + i) ~app:0 8.) 1)
  done;
  let batch = Array.init 4 (fun i -> mk ~id:(100 + i) ~app:0 8.) in
  let fg = Aladdin.Flow_graph.build cl batch in
  let s = Aladdin.Search.create fg in
  Alcotest.(check bool) "nothing fits" true
    (Aladdin.Search.find_machine s batch.(0) = None);
  let before = (Aladdin.Search.stats s).Aladdin.Search.paths_explored in
  (* parked: a second query does not rescan full machines *)
  Alcotest.(check bool) "still nothing" true
    (Aladdin.Search.find_machine s batch.(1) = None);
  let after = (Aladdin.Search.stats s).Aladdin.Search.paths_explored in
  check bool "parked machines not rescanned" true (after <= before + 1);
  (* free a spot, tell the search, and find it again *)
  Cluster.remove cl 0;
  Aladdin.Search.invalidate s;
  Alcotest.(check bool) "revived after invalidate" true
    (Aladdin.Search.find_machine s batch.(2) = Some 0)

let test_search_prefers_used_machines () =
  let apps =
    [| Application.make ~id:0 ~n_containers:8 ~demand:(Resource.cpu_only 2.) () |]
  in
  let cl = cluster_of apps ~n_machines:4 ~machine_cpu:32. in
  ignore (Cluster.place cl (mk ~id:0 ~app:0 2.) 2);
  let batch = [| mk ~id:1 ~app:0 2. |] in
  let fg = Aladdin.Flow_graph.build cl batch in
  let s = Aladdin.Search.create fg in
  check bool "packs onto the active machine" true
    (Aladdin.Search.find_machine s batch.(0) = Some 2)

(* DL returns the same machine the full scan would pick (the first
   admissible in preference order) — placements must be identical. *)
let prop_dl_preserves_placement =
  let gen = QCheck.Gen.(list_size (int_range 1 25) (int_range 0 3)) in
  QCheck.Test.make ~count:200 ~name:"IL/DL do not change placements"
    (QCheck.make gen) (fun app_choices ->
      let apps =
        Array.init 4 (fun i ->
            Application.make ~id:i ~n_containers:30
              ~demand:(Resource.cpu_only (float_of_int (1 + i)))
              ~anti_affinity_within:(i mod 2 = 0) ())
      in
      let batch =
        Array.of_list
          (List.mapi (fun i app -> mk ~id:i ~app (float_of_int (1 + app))) app_choices)
      in
      let run il dl =
        let cl = cluster_of apps ~n_machines:5 ~machine_cpu:8. in
        let sched =
          Aladdin.Aladdin_scheduler.make
            ~options:{ Aladdin.Aladdin_scheduler.default_options with il; dl }
            ()
        in
        let o = sched.Scheduler.schedule cl batch in
        List.sort compare o.Scheduler.placed
      in
      run false false = run true true)

(* ---------- migration & preemption scenarios ---------- *)

(* Fig. 3(b): A (high prio) runs on M; B (low prio, anti to A) fits only on
   M; A can run on N too → migrate A, deploy B. *)
let test_fig3b_migration () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:1 ~demand:(Resource.cpu_only 8.)
        ~priority:1 ~anti_affinity_across:[ 1 ] ();
      Application.make ~id:1 ~n_containers:1 ~demand:(Resource.cpu_only 24.) ();
      Application.make ~id:2 ~n_containers:1 ~demand:(Resource.cpu_only 16.) ();
    |]
  in
  let cl = cluster_of apps ~n_machines:2 ~machine_cpu:32. in
  let a = mk ~id:0 ~app:0 ~priority:1 8. in
  let b = mk ~id:1 ~app:1 24. in
  (* A on machine 0; machine 1 partially filled by an unrelated app so B
     (24 cpu) only fits on machine 0, where A blocks it. *)
  Alcotest.(check bool) "A placed" true (Cluster.place cl a 0 = Ok ());
  let stuff = mk ~id:9 ~app:2 16. in
  Alcotest.(check bool) "filler placed" true (Cluster.place cl stuff 1 = Ok ());
  (match
     Aladdin.Migration.find_and_apply_migration cl b ~max_moves:4
   with
  | Some plan ->
      check int "B lands on machine 0" 0 plan.Aladdin.Migration.target;
      check int "one move" 1 (List.length plan.Aladdin.Migration.moves);
      let mv = List.hd plan.Aladdin.Migration.moves in
      check int "A migrated to 1" 1 mv.Aladdin.Migration.to_machine;
      Alcotest.(check bool) "B now placeable" true (Cluster.place cl b 0 = Ok ())
  | None -> Alcotest.fail "migration plan expected")

(* Fig. 7: machine full of small tasks; a large task needs room → the
   planner relocates enough of them (rescheduling-for-capacity). *)
let test_fig7_capacity_migration () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:8 ~demand:(Resource.cpu_only 8.) ();
      Application.make ~id:1 ~n_containers:1 ~demand:(Resource.cpu_only 24.) ();
    |]
  in
  let cl = cluster_of apps ~n_machines:2 ~machine_cpu:32. in
  (* fill both machines to 16/32 with app-0 tasks *)
  for i = 0 to 1 do
    Alcotest.(check bool) "fill m0" true (Cluster.place cl (mk ~id:i ~app:0 8.) 0 = Ok ());
    Alcotest.(check bool) "fill m1" true
      (Cluster.place cl (mk ~id:(10 + i) ~app:0 8.) 1 = Ok ())
  done;
  let big = mk ~id:99 ~app:1 24. in
  (* 16 free on each machine: stuck without migration *)
  Alcotest.(check bool) "blocked everywhere" true
    (Cluster.admissible cl big 0 = Error Cluster.No_capacity
    && Cluster.admissible cl big 1 = Error Cluster.No_capacity);
  (match Aladdin.Migration.find_and_apply_migration cl big ~max_moves:4 with
  | Some plan ->
      check bool "moves happened" true (List.length plan.Aladdin.Migration.moves >= 1);
      Alcotest.(check bool) "big fits now" true
        (Cluster.place cl big plan.Aladdin.Migration.target = Ok ())
  | None -> Alcotest.fail "capacity migration expected")

(* Fig. 3(a): preemption only ever evicts strictly lower weights. *)
let test_preemption_priority_safe () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:4 ~demand:(Resource.cpu_only 16.) ();
      Application.make ~id:1 ~n_containers:1 ~demand:(Resource.cpu_only 32.)
        ~priority:2 ();
    |]
  in
  let cl = cluster_of apps ~n_machines:2 ~machine_cpu:32. in
  for i = 0 to 1 do
    ignore (Cluster.place cl (mk ~id:i ~app:0 16.) 0);
    ignore (Cluster.place cl (mk ~id:(10 + i) ~app:0 16.) 1)
  done;
  let batch = [| mk ~id:99 ~app:1 ~priority:2 32. |] in
  let w = Aladdin.Weights.compute
      (Array.append batch [| mk ~id:100 ~app:0 16. |]) ~capacity:cap32
  in
  (match Aladdin.Migration.find_and_apply_preemption cl w batch.(0) with
  | Some plan ->
      check int "evicts both low-priority" 2
        (List.length plan.Aladdin.Migration.evicted);
      List.iter
        (fun (e : Container.t) -> check int "victims are low priority" 0 e.Container.priority)
        plan.Aladdin.Migration.evicted
  | None -> Alcotest.fail "preemption expected");
  (* reverse direction: a low-priority container must never preempt *)
  let low = mk ~id:200 ~app:0 ~priority:0 16. in
  ignore (Cluster.place cl batch.(0) 0);
  Alcotest.(check bool) "low cannot preempt high" true
    (Aladdin.Migration.find_and_apply_preemption cl w low = None)

(* ---------- end-to-end scheduler invariants ---------- *)

let random_workload_gen =
  QCheck.Gen.(int_range 0 10_000)

let scheduler_outcome seed =
  let params = { (Alibaba.scaled 0.01) with Alibaba.seed = seed } in
  let w = Alibaba.generate params in
  let sched = Aladdin.Aladdin_scheduler.make () in
  let machines = max 4 (Workload.n_containers w / 10) in
  Replay.run_workload sched w ~n_machines:machines

let prop_aladdin_never_violates =
  QCheck.Test.make ~count:20 ~name:"Aladdin placements never violate"
    (QCheck.make random_workload_gen) (fun seed ->
      let r = scheduler_outcome seed in
      r.Replay.outcome.Scheduler.violations = []
      && Cluster.current_violations r.Replay.cluster = [])

let prop_aladdin_capacity_respected =
  QCheck.Test.make ~count:20 ~name:"machine capacity respected"
    (QCheck.make random_workload_gen) (fun seed ->
      let r = scheduler_outcome seed in
      Array.for_all
        (fun m ->
          Resource.fits ~demand:(Machine.used m) ~within:(Machine.capacity m))
        (Cluster.machines r.Replay.cluster))

let prop_aladdin_accounting =
  QCheck.Test.make ~count:20 ~name:"placed + undeployed = batch"
    (QCheck.make random_workload_gen) (fun seed ->
      let r = scheduler_outcome seed in
      List.length r.Replay.outcome.Scheduler.placed
      + List.length r.Replay.outcome.Scheduler.undeployed
      = r.Replay.n_submitted)

let test_scheduler_deploys_all_at_paper_ratio () =
  let r = scheduler_outcome 42 in
  check int "zero undeployed" 0
    (List.length r.Replay.outcome.Scheduler.undeployed)

(* Golden placement fingerprint on the seed-42 scaled trace. The solver
   engine refactor (CSR views, registry, middleware) must not change a
   single placement decision of the default Aladdin stack: this hash was
   captured before the refactor and replayed identically after it. If an
   intentional algorithm change moves it, re-capture and update. *)
let test_placement_identity_seed42 () =
  let w = Alibaba.generate { (Alibaba.scaled 0.005) with Alibaba.seed = 42 } in
  let total =
    (Resource.to_array (Workload.total_demand w)).(Resource.cpu_dim)
  in
  let per =
    (Resource.to_array w.Workload.machine_capacity).(Resource.cpu_dim)
  in
  let n_machines =
    max 4 (int_of_float (ceil (1.2 *. float_of_int total /. float_of_int per)))
  in
  let cl =
    Cluster.create
      (Workload.topology w ~n_machines)
      ~constraints:(Workload.constraint_set w)
  in
  let sched = Aladdin.Aladdin_scheduler.make () in
  let containers = w.Workload.containers in
  let n = Array.length containers in
  let per_batch = max 1 ((n + 9) / 10) in
  let i = ref 0 in
  while !i < n do
    let len = min per_batch (n - !i) in
    ignore (sched.Scheduler.schedule cl (Array.sub containers !i len));
    i := !i + len
  done;
  let fingerprint =
    List.fold_left
      (fun acc (cid, mid) -> (acc * 1_000_003) + (cid * 8191) + mid)
      17
      (List.sort compare (Cluster.placements cl))
  in
  check int "every container placed" n
    (List.length (Cluster.placements cl));
  check int "placement fingerprint" (-4400591963670697737) fingerprint

let test_scheduler_names () =
  check bool "plain" true
    (Aladdin.Aladdin_scheduler.name_of_options Aladdin.Aladdin_scheduler.plain
    = "Aladdin");
  check bool "il" true
    (Aladdin.Aladdin_scheduler.name_of_options Aladdin.Aladdin_scheduler.with_il
    = "Aladdin+IL");
  check bool "default" true
    (Aladdin.Aladdin_scheduler.name_of_options
       Aladdin.Aladdin_scheduler.default_options
    = "Aladdin+IL+DL");
  check bool "base" true
    (Aladdin.Aladdin_scheduler.name_of_options
       { Aladdin.Aladdin_scheduler.default_options with weight_base = Some 16 }
    = "Aladdin+IL+DL(16)")

(* Regression: a later low-priority batch must never evict deployed
   high-priority containers, even though its batch-local weight table does
   not know the higher classes. *)
let test_cross_batch_preemption_safety () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:2 ~demand:(Resource.cpu_only 8.)
        ~priority:2 ();
      Application.make ~id:1 ~n_containers:1 ~demand:(Resource.cpu_only 32.) ();
    |]
  in
  let cl = cluster_of apps ~n_machines:1 ~machine_cpu:32. in
  let sched = Aladdin.Aladdin_scheduler.make () in
  let high = [| mk ~id:0 ~app:0 ~priority:2 8.; mk ~id:1 ~app:0 ~priority:2 8. |] in
  let o1 = sched.Scheduler.schedule cl high in
  check int "high placed" 2 (List.length o1.Scheduler.placed);
  (* a big low-priority container arrives in its own batch *)
  let o2 = sched.Scheduler.schedule cl [| mk ~id:9 ~app:1 ~priority:0 32. |] in
  check int "low-priority undeployed" 1 (List.length o2.Scheduler.undeployed);
  check bool "high-priority still deployed" true
    (Cluster.machine_of cl 0 <> None && Cluster.machine_of cl 1 <> None)

(* priority honored: with low-priority-first arrival, every high-priority
   container still deploys (preemption pushes the low ones out). *)
let test_priority_respected_under_clp () =
  let params = { (Alibaba.scaled 0.01) with Alibaba.seed = 7 } in
  let w = Alibaba.generate params in
  let sched = Aladdin.Aladdin_scheduler.make () in
  let machines = max 4 (Workload.n_containers w / 10) in
  let r =
    Replay.run_workload ~order:Arrival.Low_priority_first sched w
      ~n_machines:machines
  in
  List.iter
    (fun (c : Container.t) ->
      check int "undeployed are lowest priority only" 0 c.Container.priority)
    r.Replay.outcome.Scheduler.undeployed

let test_gang_all_or_nothing () =
  (* app 0 needs 3 distinct machines but only 2 exist: without gang, 2 of
     3 deploy; with gang, the whole app rolls back. *)
  let apps =
    [|
      Application.make ~id:0 ~n_containers:3 ~demand:(Resource.cpu_only 4.)
        ~anti_affinity_within:true ();
      Application.make ~id:1 ~n_containers:1 ~demand:(Resource.cpu_only 4.) ();
    |]
  in
  let batch =
    Array.append
      (Array.init 3 (fun i -> mk ~id:i ~app:0 4.))
      [| mk ~id:10 ~app:1 4. |]
  in
  let run gang =
    let cl = cluster_of apps ~n_machines:2 ~machine_cpu:32. in
    let sched =
      Aladdin.Aladdin_scheduler.make
        ~options:{ Aladdin.Aladdin_scheduler.default_options with gang }
        ()
    in
    (cl, sched.Scheduler.schedule cl batch)
  in
  let _, without = run false in
  check int "partial placement without gang" 3 (List.length without.Scheduler.placed);
  let cl, with_gang = run true in
  check int "gang rolls the app back" 1 (List.length with_gang.Scheduler.placed);
  check int "three undeployed" 3 (List.length with_gang.Scheduler.undeployed);
  (* the independent app survives *)
  check bool "other app stays" true (Cluster.machine_of cl 10 <> None);
  check int "cluster consistent" 1 (Cluster.n_placed cl)

let test_flow_graph_dot () =
  let apps =
    [| Application.make ~id:0 ~n_containers:2 ~demand:(Resource.cpu_only 1.) () |]
  in
  let cl = cluster_of apps ~n_machines:4 ~machine_cpu:32. in
  let fg = Aladdin.Flow_graph.build cl (Array.init 2 (fun i -> mk ~id:i ~app:0 1.)) in
  let dot = Aladdin.Flow_graph.to_dot fg in
  check bool "digraph" true (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  let contains needle =
    let nl = String.length needle and hl = String.length dot in
    let rec go i = i + nl <= hl && (String.sub dot i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "has app vertex" true (contains "A0");
  check bool "has machine vertex" true (contains "N3");
  check bool "has sink edges" true (contains "-> t")

(* ---------- lifecycle ---------- *)

let lifecycle_cluster () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:8 ~demand:(Resource.cpu_only 8.)
        ~priority:1 ~anti_affinity_within:true ();
      Application.make ~id:1 ~n_containers:8 ~demand:(Resource.cpu_only 4.) ();
    |]
  in
  cluster_of apps ~n_machines:8 ~machine_cpu:32.

let app0 () =
  Application.make ~id:0 ~n_containers:8 ~demand:(Resource.cpu_only 8.)
    ~priority:1 ~anti_affinity_within:true ()

let test_lifecycle_scale_out_in () =
  let cl = lifecycle_cluster () in
  let o = Aladdin.Lifecycle.scale_out cl ~app:(app0 ()) ~replicas:4 ~first_id:100 in
  check int "scaled out" 4 (List.length o.Scheduler.placed);
  check int "running" 4 (List.length (Aladdin.Lifecycle.running cl ~app:0));
  (* anti-within: all on distinct machines *)
  let machines =
    List.filter_map (fun (cid, _) -> Cluster.machine_of cl cid) o.Scheduler.placed
  in
  check int "distinct machines" 4 (List.length (List.sort_uniq compare machines));
  let removed = Aladdin.Lifecycle.scale_in cl ~app:0 ~replicas:2 in
  check int "scaled in" 2 (List.length removed);
  check int "running after scale-in" 2
    (List.length (Aladdin.Lifecycle.running cl ~app:0));
  check bool "highest ids removed first" true
    (List.for_all (fun id -> id >= 102) removed)

let test_lifecycle_failure_recovery () =
  let cl = lifecycle_cluster () in
  let _ = Aladdin.Lifecycle.scale_out cl ~app:(app0 ()) ~replicas:6 ~first_id:0 in
  (* pick a machine hosting one replica and fail it *)
  let victim =
    match Cluster.machine_of cl 0 with Some m -> m | None -> Alcotest.fail "placed"
  in
  let report = Aladdin.Lifecycle.fail_machine cl victim in
  check int "one displaced" 1 (List.length report.Aladdin.Lifecycle.displaced);
  check int "recovered" 1 (List.length report.Aladdin.Lifecycle.recovered);
  check int "none lost" 0 (List.length report.Aladdin.Lifecycle.lost);
  check bool "machine offline" true (Cluster.is_offline cl victim);
  check int "machine empty" 0 (Machine.n_containers (Cluster.machine cl victim));
  (* the recovered replica is NOT on the failed machine and not with a
     sibling *)
  check int "still 6 running" 6 (List.length (Aladdin.Lifecycle.running cl ~app:0));
  check int "no violations" 0 (List.length (Cluster.current_violations cl));
  (* nothing can be placed on the offline machine *)
  check bool "offline rejects" true
    (Cluster.admissible cl (mk ~id:777 ~app:1 1.) victim = Error Cluster.No_capacity);
  Aladdin.Lifecycle.recover_machine cl victim;
  check bool "back online" true
    (Cluster.admissible cl (mk ~id:777 ~app:1 1.) victim = Ok ())

let test_lifecycle_rolling_restart () =
  let cl = lifecycle_cluster () in
  let _ = Aladdin.Lifecycle.scale_out cl ~app:(app0 ()) ~replicas:5 ~first_id:0 in
  let before = List.length (Aladdin.Lifecycle.running cl ~app:0) in
  let report = Aladdin.Lifecycle.rolling_restart cl ~app:0 in
  check int "all restarted" 5 (List.length report.Aladdin.Lifecycle.restarted);
  check int "none stuck" 0 (List.length report.Aladdin.Lifecycle.stuck);
  check int "replica count preserved" before
    (List.length (Aladdin.Lifecycle.running cl ~app:0));
  check int "no violations" 0 (List.length (Cluster.current_violations cl))

let test_lifecycle_validation () =
  let cl = lifecycle_cluster () in
  Alcotest.check_raises "unknown app"
    (Invalid_argument "Constraint_set.app: unknown id") (fun () ->
      ignore
        (Aladdin.Lifecycle.scale_out cl
           ~app:
             (Application.make ~id:99 ~n_containers:1
                ~demand:(Resource.cpu_only 1.) ())
           ~replicas:1 ~first_id:0));
  Alcotest.check_raises "bad replicas"
    (Invalid_argument "Lifecycle.scale_out: replicas") (fun () ->
      ignore (Aladdin.Lifecycle.scale_out cl ~app:(app0 ()) ~replicas:0 ~first_id:0))

let () =
  Alcotest.run "aladdin"
    [
      ( "weights",
        [
          Alcotest.test_case "Eq.5 guarantee" `Quick test_weights_eq5_guarantee;
          Alcotest.test_case "fixed base" `Quick test_weights_fixed_base;
          Alcotest.test_case "magnitude" `Quick test_weights_magnitude;
          QCheck_alcotest.to_alcotest prop_weights_eq5_random;
        ] );
      ( "flow-graph",
        [
          Alcotest.test_case "tiers and edges" `Quick test_flow_graph_edges;
          Alcotest.test_case "scalar projection" `Quick test_flow_graph_projection;
        ] );
      ( "search",
        [
          Alcotest.test_case "blacklist respected" `Quick
            test_search_finds_and_respects_blacklist;
          Alcotest.test_case "DL cuts paths" `Quick test_search_dl_cuts_paths;
          Alcotest.test_case "IL skips siblings" `Quick test_search_il_skips_siblings;
          Alcotest.test_case "parks and revives machines" `Quick
            test_search_parks_dead_machines_and_revives;
          Alcotest.test_case "prefers used machines" `Quick
            test_search_prefers_used_machines;
          QCheck_alcotest.to_alcotest prop_dl_preserves_placement;
        ] );
      ( "migration",
        [
          Alcotest.test_case "Fig.3(b) migration" `Quick test_fig3b_migration;
          Alcotest.test_case "Fig.7 capacity migration" `Quick
            test_fig7_capacity_migration;
          Alcotest.test_case "preemption priority-safe" `Quick
            test_preemption_priority_safe;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "deploys all at paper ratio" `Quick
            test_scheduler_deploys_all_at_paper_ratio;
          Alcotest.test_case "policy names" `Quick test_scheduler_names;
          Alcotest.test_case "placement identity (seed 42)" `Quick
            test_placement_identity_seed42;
          Alcotest.test_case "priority under CLP" `Quick
            test_priority_respected_under_clp;
          Alcotest.test_case "cross-batch preemption safety" `Quick
            test_cross_batch_preemption_safety;
          QCheck_alcotest.to_alcotest prop_aladdin_never_violates;
          QCheck_alcotest.to_alcotest prop_aladdin_capacity_respected;
          QCheck_alcotest.to_alcotest prop_aladdin_accounting;
        ] );
      ( "gang",
        [
          Alcotest.test_case "all-or-nothing" `Quick test_gang_all_or_nothing;
          Alcotest.test_case "dot export" `Quick test_flow_graph_dot;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "scale out/in" `Quick test_lifecycle_scale_out_in;
          Alcotest.test_case "failure recovery" `Quick
            test_lifecycle_failure_recovery;
          Alcotest.test_case "rolling restart" `Quick
            test_lifecycle_rolling_restart;
          Alcotest.test_case "validation" `Quick test_lifecycle_validation;
        ] );
    ]
